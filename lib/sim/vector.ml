(* Whole-grid vectorized execution backend.

   The lockstep interpreter ([Interp]) simulates a block by running each
   statement across every thread before moving to the next statement,
   with per-thread register files ([int array]/[float array] indexed by
   the thread id) and closures taking the thread id as argument. That
   machinery exists to make barriers, early exit and shared-memory
   hazard tracking expressible — but most production stencil kernels
   need none of it: a guard, a couple of index computations, a loop of
   global reads and one global write.

   When a launch is proved to be in that fragment (see [prepare]), this
   backend compiles it once per chunk into plain [unit -> _] closures
   over a single scalar "lane" — six mutable thread/block coordinates
   plus two flat slot-indexed register arrays — and runs the whole grid
   as flat loops: for each block, for each warp, for each thread, run
   the statement list. No per-thread closure arguments, no epoch or
   liveness bookkeeping, no double guard evaluation; global accesses use
   [Array.unsafe_get/set] when the [kft_absint] prover (installed via
   [set_prover]) has proved every access in bounds.

   Bit-identity with the [affine:false] reference interpreter is a hard
   contract (asserted by differential tests and the bench sweeps), and
   rests on the eligibility proof:

   - Per-thread scalar state is thread-private in both backends, and
     each thread executes the same statement sequence in the same order,
     so fusing the statement loop into the thread loop only reorders
     work across threads *between different statements*.
   - That reordering touches memory only through global arrays, and the
     single-writer-statement rule (every written array has all its
     accesses inside one top-level statement) makes cross-statement
     array traffic commute. Within one statement both backends run the
     threads in ascending order.
   - Definite assignment (every scalar is written before it is read on
     all paths) makes the initial register-file contents unobservable,
     so reusing one lane for the whole grid cannot leak state between
     threads.
   - Float expressions are compiled with the same association and the
     same operation set as the reference, so rounding is identical, and
     every stats addend is an exact integer (see [Simc.diff_stats]), so
     per-warp/per-block accumulation order cannot change totals.
   - Top-level guards are pure integer conditions, so evaluating each
     once per thread (counting warp divergence inline) is
     indistinguishable from the reference's separate divergence pass. *)

open Kft_cuda.Ast
module Engine = Kft_engine.Engine
module S = Simc
module A1 = Bigarray.Array1

(* Installed by kft_absint at link time (the sim library cannot depend
   on the analyzer without a cycle): returns true when every global
   access of the launch is proved in bounds, licensing unchecked
   accesses. Defaults to "nothing proved", which only costs bounds
   checks, never soundness. *)
let prover : (program -> launch -> bool) ref = ref (fun _ _ -> false)
let set_prover f = prover := f

(* ------------------------------------------------------------------ *)
(* Eligibility                                                         *)
(* ------------------------------------------------------------------ *)

exception Ineligible

type prep = {
  p_kernel : kernel;
  p_bound : (string * arg) list;
  p_body : stmt list;  (* blockDim/gridDim substituted, affine-rewritten *)
  p_table : (string, S.binding) Hashtbl.t;
  p_n_int : int;
  p_n_float : int;
}

(* every scalar read is dominated by a write on all paths; assignments
   inside a loop body are not assumed to have happened after it (the
   body may run zero times), and branch assignments only count when both
   arms perform them — conservative, but exact for the affine-rewritten
   stencil kernels this backend targets *)
let check_def_assign params body =
  let module SS = Set.Make (String) in
  let check_expr defined e =
    fold_expr
      (fun () e ->
        match e with
        | Var v when not (SS.mem v defined) -> raise Ineligible
        | _ -> ())
      () e
  in
  let check_exprs defined es = List.iter (check_expr defined) es in
  let rec go defined stmts =
    List.fold_left
      (fun defined s ->
        match s with
        | Decl (_, _, None) -> defined
        | Decl (_, v, Some e) | Assign (Lvar v, e) ->
            check_expr defined e;
            SS.add v defined
        | Assign (Lindex (_, idxs), e) ->
            check_exprs defined idxs;
            check_expr defined e;
            defined
        | If (c, t, e) ->
            check_expr defined c;
            SS.inter (go defined t) (go defined e)
        | For l ->
            check_expr defined l.lo;
            check_expr defined l.hi;
            let d = SS.add l.index defined in
            ignore (go d l.body);
            d
        | Shared_decl _ | Syncthreads | Return -> raise Ineligible)
      defined stmts
  in
  ignore (go (SS.of_list params) body)

let prepare prog (l : launch) : prep option =
  match
    let kernel = find_kernel prog l.l_kernel in
    let bound = bind_args kernel l.l_args in
    let bx, by, bz = l.l_block in
    let gx, gy, gz = grid_of_launch l in
    if bx * by * bz <= 0 then raise Ineligible;
    let body =
      map_exprs_in_stmts
        (function
          | Builtin (Block_dim X) -> Int_lit bx
          | Builtin (Block_dim Y) -> Int_lit by
          | Builtin (Block_dim Z) -> Int_lit bz
          | Builtin (Grid_dim X) -> Int_lit gx
          | Builtin (Grid_dim Y) -> Int_lit gy
          | Builtin (Grid_dim Z) -> Int_lit gz
          | e -> e)
        kernel.k_body
    in
    (* barriers, early exit and shared memory need the lockstep machine *)
    if
      fold_stmts
        (fun acc s ->
          acc || match s with Syncthreads | Return | Shared_decl _ -> true | _ -> false)
        false body
    then raise Ineligible;
    let body = Affine.rewrite_stmts body in
    let table, n_int, n_float, shared =
      S.collect_scalar_slots kernel.k_name body kernel.k_params
    in
    if shared <> [] then raise Ineligible;
    List.iter
      (fun (p, a) ->
        let b =
          match a with
          | Arg_array _ -> S.Global Memory.empty_buf  (* placeholder, rebound per run *)
          | Arg_int i -> S.Const_int i
          | Arg_double f -> S.Const_float f
        in
        Hashtbl.replace table p b)
      bound;
    let lookup v =
      match Hashtbl.find_opt table v with Some b -> b | None -> raise Ineligible
    in
    (* top-level guards drive the warp-divergence accounting with a
       single inline evaluation per thread: they must be pure integer
       conditions for that to be unobservable *)
    List.iter
      (function
        | If (c, _, _) when not (S.pure_int_cond lookup c) -> raise Ineligible
        | _ -> ())
      body;
    let host_of p =
      match List.assoc_opt p bound with Some (Arg_array h) -> Some h | _ -> None
    in
    (* every indexed name must be a bound array parameter (aliasing is
       tracked by host array, not parameter name) *)
    List.iter
      (fun a -> if host_of a = None then raise Ineligible)
      (arrays_read body @ arrays_written body);
    check_def_assign (List.map fst bound) body;
    (* single-writer-statement rule: a host array that is written
       anywhere must have ALL its accesses (reads and writes, through
       any alias) inside one top-level statement, so that fusing the
       statement loop into the thread loop cannot reorder a read of one
       statement against a write of another *)
    let hosts names = List.filter_map host_of names |> List.sort_uniq compare in
    let per_stmt =
      List.map
        (fun s -> (hosts (arrays_read [ s ] @ arrays_written [ s ]), hosts (arrays_written [ s ])))
        body
    in
    let written = List.concat_map snd per_stmt |> List.sort_uniq compare in
    List.iter
      (fun h ->
        let touching = List.filter (fun (acc, _) -> List.mem h acc) per_stmt in
        if List.length touching > 1 then raise Ineligible)
      written;
    { p_kernel = kernel; p_bound = bound; p_body = body; p_table = table;
      p_n_int = n_int; p_n_float = n_float }
  with
  | prep -> Some prep
  | exception (Ineligible | Not_found | Invalid_argument _ | S.Sim_error _) -> None

(* Preparation and the analyzer's bounds proof are pure functions of the
   (program, launch) pair, and production schedules launch the same
   kernels over and over — so memoize both and pay them once per
   distinct launch, not once per execution. Keyed by {e physical}
   program identity (a transformed program is a fresh AST, so stale
   entries are unreachable, not wrong) plus structural launch equality;
   bounded so long fuzzing runs over thousands of throwaway programs
   don't accumulate dead preps. The prover verdict is filled lazily on
   the first run that wants unchecked accesses. *)
module Memo_key = struct
  type t = program * launch

  let equal ((p1 : program), (l1 : launch)) (p2, l2) = p1 == p2 && l1 = l2
  let hash ((p : program), (l : launch)) = Hashtbl.hash (p.p_name, l)
end

module Memo = Hashtbl.Make (Memo_key)

type memo_entry = { me_prep : prep option; mutable me_proved : bool option }

let memo : memo_entry Memo.t = Memo.create 64

let prepared prog l =
  match Memo.find_opt memo (prog, l) with
  | Some e -> e
  | None ->
      if Memo.length memo > 256 then Memo.reset memo;
      let e = { me_prep = prepare prog l; me_proved = None } in
      Memo.add memo (prog, l) e;
      e

let proved prog l e =
  match e.me_proved with
  | Some b -> b
  | None ->
      let b = !prover prog l in
      e.me_proved <- Some b;
      b

let eligible prog l = (prepared prog l).me_prep <> None

(* ------------------------------------------------------------------ *)
(* Lane compilation                                                    *)
(* ------------------------------------------------------------------ *)

type lane = {
  mutable tx : int;
  mutable ty : int;
  mutable tz : int;
  mutable bix : int;
  mutable biy : int;
  mutable biz : int;
  ir : int array;  (* slot-indexed scalar registers of the current thread *)
  fr : float array;
}

type env = {
  lane : lane;
  stats : S.stats;
  unsafe : bool;  (* bounds proved: elide global access range checks *)
  kname : string;
  lookup : string -> S.binding;
  read_flags : (string, bool ref) Hashtbl.t;
  write_flags : (string, bool ref) Hashtbl.t;
  acc : S.facc;
      (* float-expression accumulator: compiled float closures are
         [unit -> unit] writing here instead of returning a float (a
         float return across an indirect call is boxed — an allocation
         per expression node per thread, which the steady-state
         zero-allocation contract forbids) *)
  flacc : S.facc;
      (* flop accumulator; folded into [stats.flops] once per block (a
         [float] store into the mixed [stats] record boxes) *)
}

let err env msg = raise (S.Sim_error { kernel = env.kname; message = msg })

let int_slot env v = match env.lookup v with S.Int_slot s -> Some s | _ -> None

let rec compile_int env e : unit -> int =
  match S.static_int env.lookup e with
  | Some c -> fun () -> c
  | None -> (
      match e with
      | Int_lit i -> fun () -> i
      | Builtin b -> (
          let ln = env.lane in
          match b with
          | Thread_idx X -> fun () -> ln.tx
          | Thread_idx Y -> fun () -> ln.ty
          | Thread_idx Z -> fun () -> ln.tz
          | Block_idx X -> fun () -> ln.bix
          | Block_idx Y -> fun () -> ln.biy
          | Block_idx Z -> fun () -> ln.biz
          | Block_dim _ | Grid_dim _ ->
              err env "blockDim/gridDim must be compiled to constants")
      | Var v -> (
          match env.lookup v with
          | S.Const_int i -> fun () -> i
          | S.Int_slot s ->
              let ir = env.lane.ir in
              fun () -> Array.unsafe_get ir s
          | S.Const_float _ | S.Float_slot _ ->
              err env (Printf.sprintf "variable %s used as integer but is double" v)
          | S.Global _ | S.Shared _ -> err env (Printf.sprintf "array %s used as scalar" v))
      (* slot +/- constant in one closure (the post-affine hot shape) *)
      | (Binop (Add, Var v, Int_lit c) | Binop (Add, Int_lit c, Var v))
        when int_slot env v <> None ->
          let s = Option.get (int_slot env v) in
          let ir = env.lane.ir in
          fun () -> Array.unsafe_get ir s + c
      | Binop (Sub, Var v, Int_lit c) when int_slot env v <> None ->
          let s = Option.get (int_slot env v) in
          let ir = env.lane.ir in
          fun () -> Array.unsafe_get ir s - c
      | Binop (op, a, b) -> (
          let fa = compile_int env a and fb = compile_int env b in
          match op with
          | Add -> fun () -> fa () + fb ()
          | Sub -> fun () -> fa () - fb ()
          | Mul -> fun () -> fa () * fb ()
          | Div ->
              fun () ->
                let d = fb () in
                if d = 0 then err env "integer division by zero" else fa () / d
          | Mod ->
              fun () ->
                let d = fb () in
                if d = 0 then err env "integer modulo by zero" else fa () mod d
          | Lt -> fun () -> if fa () < fb () then 1 else 0
          | Le -> fun () -> if fa () <= fb () then 1 else 0
          | Gt -> fun () -> if fa () > fb () then 1 else 0
          | Ge -> fun () -> if fa () >= fb () then 1 else 0
          | Eq -> fun () -> if fa () = fb () then 1 else 0
          | Ne -> fun () -> if fa () <> fb () then 1 else 0
          | And -> fun () -> if fa () <> 0 && fb () <> 0 then 1 else 0
          | Or -> fun () -> if fa () <> 0 || fb () <> 0 then 1 else 0)
      | Unop (Neg, a) ->
          let f = compile_int env a in
          fun () -> -f ()
      | Unop (Not, a) ->
          let f = compile_int env a in
          fun () -> if f () = 0 then 1 else 0
      | Call ("min", [ a; b ]) ->
          let fa = compile_int env a and fb = compile_int env b in
          fun () -> min (fa ()) (fb ())
      | Call ("max", [ a; b ]) ->
          let fa = compile_int env a and fb = compile_int env b in
          fun () -> max (fa ()) (fb ())
      | Call ("abs", [ a ]) ->
          let f = compile_int env a in
          fun () -> abs (f ())
      | Ternary (c, a, b) ->
          let fc = compile_int env c
          and fa = compile_int env a
          and fb = compile_int env b in
          fun () -> if fc () <> 0 then fa () else fb ()
      | Double_lit _ -> err env "double literal in integer context"
      | Index (a, _) -> err env (Printf.sprintf "array %s read in integer context" a)
      | Call (f, _) -> err env (Printf.sprintf "call to %s in integer context" f))

and compile_cond env e : unit -> int =
  match e with
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b)
    when S.join (S.ty_of env.lookup a) (S.ty_of env.lookup b) = S.EFloat -> (
      (* accumulator form with a direct (monomorphic, allocation-free)
         comparison per operator: a generic [float -> float -> bool]
         closure would box both arguments at every call *)
      let acc = env.acc in
      let fa = compile_float env a and fb = compile_float env b in
      match op with
      | Lt ->
          fun () ->
            fa ();
            let x = acc.S.v in
            fb ();
            if x < acc.S.v then 1 else 0
      | Le ->
          fun () ->
            fa ();
            let x = acc.S.v in
            fb ();
            if x <= acc.S.v then 1 else 0
      | Gt ->
          fun () ->
            fa ();
            let x = acc.S.v in
            fb ();
            if x > acc.S.v then 1 else 0
      | Ge ->
          fun () ->
            fa ();
            let x = acc.S.v in
            fb ();
            if x >= acc.S.v then 1 else 0
      | Eq ->
          fun () ->
            fa ();
            let x = acc.S.v in
            fb ();
            if x = acc.S.v then 1 else 0
      | Ne ->
          fun () ->
            fa ();
            let x = acc.S.v in
            fb ();
            if x <> acc.S.v then 1 else 0
      | _ -> assert false)
  | Binop (And, a, b) ->
      let fa = compile_cond env a and fb = compile_cond env b in
      fun () -> if fa () <> 0 && fb () <> 0 then 1 else 0
  | Binop (Or, a, b) ->
      let fa = compile_cond env a and fb = compile_cond env b in
      fun () -> if fa () <> 0 || fb () <> 0 then 1 else 0
  | Unop (Not, a) ->
      let f = compile_cond env a in
      fun () -> if f () = 0 then 1 else 0
  | e -> compile_int env e

(* Accumulator float compilation: closures deposit their result in
   [env.acc] instead of returning it, so the steady-state inner loop
   performs no allocation at all (a float returned across an indirect
   call is boxed by the compiler). Every combination saves the left
   operand in an unboxed local between the two accumulator runs,
   reproducing the reference's left-associative evaluation — and
   therefore its rounding — bit for bit.
   [count = false]: the caller statically counted this statement's
   global reads and bumps [global_read_bytes] once per execution; only
   valid when the read count is not data-dependent. *)
and compile_float ?(count = true) env e : unit -> unit =
  let acc = env.acc in
  match S.ty_of env.lookup e with
  | S.EInt ->
      let f = compile_int env e in
      fun () -> acc.S.v <- float_of_int (f ())
  | S.EFloat -> (
      match e with
      | Double_lit f -> fun () -> acc.S.v <- f
      | Var v -> (
          match env.lookup v with
          | S.Const_float f -> fun () -> acc.S.v <- f
          | S.Float_slot s ->
              let fr = env.lane.fr in
              fun () -> acc.S.v <- Array.unsafe_get fr s
          | S.Const_int i ->
              let f = float_of_int i in
              fun () -> acc.S.v <- f
          | S.Int_slot s ->
              let ir = env.lane.ir in
              fun () -> acc.S.v <- float_of_int (Array.unsafe_get ir s)
          | S.Global _ | S.Shared _ ->
              err env (Printf.sprintf "array %s used as scalar" v))
      | Index (a, idxs) -> (
          match env.lookup a with
          | S.Global data -> (
              let single =
                match idxs with
                | [ i ] -> i
                | _ ->
                    err env
                      (Printf.sprintf "global array %s must use a single linearized index" a)
              in
              let n = A1.dim data in
              let stats = env.stats in
              let touched = S.usage_flag env.read_flags a in
              let oob i =
                err env
                  (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
              in
              let ir = env.lane.ir in
              let fused =
                match single with
                | Var v -> Option.map (fun s -> (s, 0)) (int_slot env v)
                | Binop (Add, Var v, Int_lit c) | Binop (Add, Int_lit c, Var v) ->
                    Option.map (fun s -> (s, c)) (int_slot env v)
                | Binop (Sub, Var v, Int_lit c) ->
                    Option.map (fun s -> (s, -c)) (int_slot env v)
                | _ -> None
              in
              (* the fused (slot, offset) shape is inlined straight into
                 the access closure: one call, one register load, one
                 data load — no separate index closure on the hot path *)
              match (fused, env.unsafe, count) with
              | Some (s, off), true, true ->
                  fun () ->
                    stats.global_read_bytes <- stats.global_read_bytes + 8;
                    touched := true;
                    acc.S.v <- A1.unsafe_get data (Array.unsafe_get ir s + off)
              | Some (s, off), true, false ->
                  fun () ->
                    touched := true;
                    acc.S.v <- A1.unsafe_get data (Array.unsafe_get ir s + off)
              | Some (s, off), false, true ->
                  fun () ->
                    let i = Array.unsafe_get ir s + off in
                    if i < 0 || i >= n then oob i
                    else begin
                      stats.global_read_bytes <- stats.global_read_bytes + 8;
                      touched := true;
                      acc.S.v <- A1.unsafe_get data i
                    end
              | Some (s, off), false, false ->
                  fun () ->
                    let i = Array.unsafe_get ir s + off in
                    if i < 0 || i >= n then oob i
                    else begin
                      touched := true;
                      acc.S.v <- A1.unsafe_get data i
                    end
              | None, unsafe, count -> (
                  let idx = compile_int env single in
                  match (unsafe, count) with
                  | true, true ->
                      fun () ->
                        stats.global_read_bytes <- stats.global_read_bytes + 8;
                        touched := true;
                        acc.S.v <- A1.unsafe_get data (idx ())
                  | true, false ->
                      fun () ->
                        touched := true;
                        acc.S.v <- A1.unsafe_get data (idx ())
                  | false, true ->
                      fun () ->
                        let i = idx () in
                        if i < 0 || i >= n then oob i
                        else begin
                          stats.global_read_bytes <- stats.global_read_bytes + 8;
                          touched := true;
                          acc.S.v <- A1.unsafe_get data i
                        end
                  | false, false ->
                      fun () ->
                        let i = idx () in
                        if i < 0 || i >= n then oob i
                        else begin
                          touched := true;
                          acc.S.v <- A1.unsafe_get data i
                        end))
          | S.Shared _ -> err env "internal: shared memory on the vector path"
          | _ -> err env (Printf.sprintf "%s indexed but is not an array" a))
      | Binop ((Add | Sub), _, _)
        when (let ts = S.sum_terms e [] in
              let k = List.length ts in
              (* every term float-typed: an all-int prefix would be
                 evaluated in integer arithmetic by the nested
                 compilation, which flattening must not change *)
              k >= 3 && k <= 8
              && List.for_all (fun (_, term) -> S.ty_of env.lookup term = S.EFloat) ts) -> (
          (* flatten the chain into one closure: same left-associative
             combination (and thus the same rounding) as the nested
             [Binop] compilation, without the intermediate dispatches —
             the stencil-sum hot shape, exactly as on the affine path *)
          let fns =
            List.map
              (fun (sign, term) ->
                let f = compile_float ~count env term in
                if sign then f
                else
                  fun () ->
                    f ();
                    acc.S.v <- -.acc.S.v)
              (S.sum_terms e [])
          in
          match Array.of_list fns with
          | [| a; b; c |] ->
              fun () ->
                a ();
                let s = acc.S.v in
                b ();
                let s = s +. acc.S.v in
                c ();
                acc.S.v <- s +. acc.S.v
          | [| a; b; c; d |] ->
              fun () ->
                a ();
                let s = acc.S.v in
                b ();
                let s = s +. acc.S.v in
                c ();
                let s = s +. acc.S.v in
                d ();
                acc.S.v <- s +. acc.S.v
          | [| a; b; c; d; e |] ->
              fun () ->
                a ();
                let s = acc.S.v in
                b ();
                let s = s +. acc.S.v in
                c ();
                let s = s +. acc.S.v in
                d ();
                let s = s +. acc.S.v in
                e ();
                acc.S.v <- s +. acc.S.v
          | [| a; b; c; d; e; f |] ->
              fun () ->
                a ();
                let s = acc.S.v in
                b ();
                let s = s +. acc.S.v in
                c ();
                let s = s +. acc.S.v in
                d ();
                let s = s +. acc.S.v in
                e ();
                let s = s +. acc.S.v in
                f ();
                acc.S.v <- s +. acc.S.v
          | [| a; b; c; d; e; f; g |] ->
              fun () ->
                a ();
                let s = acc.S.v in
                b ();
                let s = s +. acc.S.v in
                c ();
                let s = s +. acc.S.v in
                d ();
                let s = s +. acc.S.v in
                e ();
                let s = s +. acc.S.v in
                f ();
                let s = s +. acc.S.v in
                g ();
                acc.S.v <- s +. acc.S.v
          | [| a; b; c; d; e; f; g; h |] ->
              fun () ->
                a ();
                let s = acc.S.v in
                b ();
                let s = s +. acc.S.v in
                c ();
                let s = s +. acc.S.v in
                d ();
                let s = s +. acc.S.v in
                e ();
                let s = s +. acc.S.v in
                f ();
                let s = s +. acc.S.v in
                g ();
                let s = s +. acc.S.v in
                h ();
                acc.S.v <- s +. acc.S.v
          | _ -> assert false (* arity guarded above *))
      | Binop (Mul, a, b) when S.const_float_of env.lookup a <> None ->
          let c = Option.get (S.const_float_of env.lookup a) in
          let fb = compile_float ~count env b in
          fun () ->
            fb ();
            acc.S.v <- c *. acc.S.v
      | Binop (Mul, a, b) when S.const_float_of env.lookup b <> None ->
          let c = Option.get (S.const_float_of env.lookup b) in
          let fa = compile_float ~count env a in
          fun () ->
            fa ();
            acc.S.v <- acc.S.v *. c
      | Binop (op, a, b) -> (
          let fa = compile_float ~count env a and fb = compile_float ~count env b in
          match op with
          | Add ->
              fun () ->
                fa ();
                let x = acc.S.v in
                fb ();
                acc.S.v <- x +. acc.S.v
          | Sub ->
              fun () ->
                fa ();
                let x = acc.S.v in
                fb ();
                acc.S.v <- x -. acc.S.v
          | Mul ->
              fun () ->
                fa ();
                let x = acc.S.v in
                fb ();
                acc.S.v <- x *. acc.S.v
          | Div ->
              fun () ->
                fa ();
                let x = acc.S.v in
                fb ();
                acc.S.v <- x /. acc.S.v
          | Mod ->
              fun () ->
                fa ();
                let x = acc.S.v in
                fb ();
                acc.S.v <- Float.rem x acc.S.v
          | _ -> err env "comparison in float context")
      | Unop (Neg, a) ->
          let f = compile_float ~count env a in
          fun () ->
            f ();
            acc.S.v <- -.acc.S.v
      | Unop (Not, _) -> err env "logical not in float context"
      | Ternary (c, a, b) ->
          (* branches count per-read, as in the reference: a [Ternary]
             anywhere forces [count = true] on the whole statement *)
          let fc = compile_cond env c
          and fa = compile_float env a
          and fb = compile_float env b in
          fun () -> if fc () <> 0 then fa () else fb ()
      | Call (fname, args) -> (
          let fargs = List.map (compile_float ~count env) args in
          match (fname, fargs) with
          | "sqrt", [ a ] ->
              fun () ->
                a ();
                acc.S.v <- sqrt acc.S.v
          | ("fabs" | "abs"), [ a ] ->
              fun () ->
                a ();
                acc.S.v <- Float.abs acc.S.v
          | "exp", [ a ] ->
              fun () ->
                a ();
                acc.S.v <- exp acc.S.v
          | "log", [ a ] ->
              fun () ->
                a ();
                acc.S.v <- log acc.S.v
          | "sin", [ a ] ->
              fun () ->
                a ();
                acc.S.v <- sin acc.S.v
          | "cos", [ a ] ->
              fun () ->
                a ();
                acc.S.v <- cos acc.S.v
          | "pow", [ a; b ] ->
              fun () ->
                a ();
                let x = acc.S.v in
                b ();
                acc.S.v <- Float.pow x acc.S.v
          | ("min" | "fmin"), [ a; b ] ->
              (* Stdlib [Float.min] inlined (its indirect call would box
                 both arguments): same -0.0 / nan discipline, bit for bit *)
              fun () ->
                a ();
                let x = acc.S.v in
                b ();
                let y = acc.S.v in
                acc.S.v <-
                  (if y > x || ((not (Float.sign_bit y)) && Float.sign_bit x) then
                     if y <> y then y else x
                   else if x <> x then x
                   else y)
          | ("max" | "fmax"), [ a; b ] ->
              (* Stdlib [Float.max] inlined, same rationale *)
              fun () ->
                a ();
                let x = acc.S.v in
                b ();
                let y = acc.S.v in
                acc.S.v <-
                  (if y > x || ((not (Float.sign_bit y)) && Float.sign_bit x) then
                     if x <> x then x else y
                   else if y <> y then y
                   else x)
          | "fma", [ a; b; c ] ->
              fun () ->
                a ();
                let x = acc.S.v in
                b ();
                let y = acc.S.v in
                c ();
                acc.S.v <- Float.fma x y acc.S.v
          | _ ->
              err env (Printf.sprintf "unsupported function %s/%d" fname (List.length args)))
      | Int_lit _ | Builtin _ -> assert false (* EInt-typed *))

let rec compile_seq env stmts : unit -> unit =
  match List.map (compile_stmt env) stmts with
  | [] -> fun () -> ()
  | [ f ] -> f
  | [ f; g ] ->
      fun () ->
        f ();
        g ()
  | [ f; g; h ] ->
      fun () ->
        f ();
        g ();
        h ()
  | fns ->
      let a = Array.of_list fns in
      let n = Array.length a in
      fun () ->
        for i = 0 to n - 1 do
          (Array.unsafe_get a i) ()
        done

and compile_stmt env s : unit -> unit =
  let stats = env.stats in
  match s with
  | Decl (_, v, None) ->
      ignore (env.lookup v);
      fun () -> ()
  | Decl (_, v, Some e) | Assign (Lvar v, e) -> (
      match env.lookup v with
      | S.Int_slot slot -> (
          let ir = env.lane.ir in
          match e with
          (* induction-variable increments from the affine pass *)
          | Binop (Add, Var v', Int_lit c) when v' = v ->
              fun () -> Array.unsafe_set ir slot (Array.unsafe_get ir slot + c)
          | Binop (Add, Var v', Var s2) when v' = v && int_slot env s2 <> None ->
              let s2 = Option.get (int_slot env s2) in
              fun () ->
                Array.unsafe_set ir slot (Array.unsafe_get ir slot + Array.unsafe_get ir s2)
          | _ ->
              let f = compile_int env e in
              fun () -> Array.unsafe_set ir slot (f ()))
      | S.Float_slot slot ->
          let sreads = S.static_read_count env.lookup e in
          let rb = match sreads with Some k -> 8 * k | None -> 0 in
          let f = compile_float ~count:(sreads = None) env e in
          let flops = float_of_int (S.float_flops env.lookup e) in
          let fr = env.lane.fr in
          let acc = env.acc and fl = env.flacc in
          (* flops accrue in the unboxed [flacc] cell and are synced to
             [stats.flops] once per block — a float store into the mixed
             int/float stats record would box on every statement *)
          if rb = 0 && flops = 0.0 then
            fun () ->
              f ();
              Array.unsafe_set fr slot acc.S.v
          else if rb = 0 then
            fun () ->
              f ();
              Array.unsafe_set fr slot acc.S.v;
              fl.S.v <- fl.S.v +. flops
          else if flops = 0.0 then
            fun () ->
              f ();
              Array.unsafe_set fr slot acc.S.v;
              stats.global_read_bytes <- stats.global_read_bytes + rb
          else
            fun () ->
              f ();
              Array.unsafe_set fr slot acc.S.v;
              stats.global_read_bytes <- stats.global_read_bytes + rb;
              fl.S.v <- fl.S.v +. flops
      | _ -> err env (Printf.sprintf "assignment to non-scalar %s" v))
  | Assign (Lindex (a, idxs), e) -> (
      match env.lookup a with
      | S.Global data -> (
          let single =
            match idxs with
            | [ i ] -> i
            | _ ->
                err env (Printf.sprintf "global array %s must use a single linearized index" a)
          in
          let sreads = S.static_read_count env.lookup e in
          let rb = match sreads with Some k -> 8 * k | None -> 0 in
          let rhs = compile_float ~count:(sreads = None) env e in
          let flops = float_of_int (S.float_flops env.lookup e) in
          let acc = env.acc and fl = env.flacc in
          let n = A1.dim data in
          let touched = S.usage_flag env.write_flags a in
          let oob i =
            err env (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
          in
          let ir = env.lane.ir in
          let fused =
            match single with
            | Var v -> Option.map (fun s -> (s, 0)) (int_slot env v)
            | Binop (Add, Var v, Int_lit c) | Binop (Add, Int_lit c, Var v) ->
                Option.map (fun s -> (s, c)) (int_slot env v)
            | Binop (Sub, Var v, Int_lit c) ->
                Option.map (fun s -> (s, -c)) (int_slot env v)
            | _ -> None
          in
          match (fused, env.unsafe) with
          | Some (s, off), true ->
              fun () ->
                rhs ();
                A1.unsafe_set data (Array.unsafe_get ir s + off) acc.S.v;
                stats.global_read_bytes <- stats.global_read_bytes + rb;
                stats.global_write_bytes <- stats.global_write_bytes + 8;
                fl.S.v <- fl.S.v +. flops;
                touched := true
          | Some (s, off), false ->
              fun () ->
                let i = Array.unsafe_get ir s + off in
                if i < 0 || i >= n then oob i
                else begin
                  rhs ();
                  A1.unsafe_set data i acc.S.v;
                  stats.global_read_bytes <- stats.global_read_bytes + rb;
                  stats.global_write_bytes <- stats.global_write_bytes + 8;
                  fl.S.v <- fl.S.v +. flops;
                  touched := true
                end
          | None, true ->
              let idx = compile_int env single in
              fun () ->
                let i = idx () in
                rhs ();
                A1.unsafe_set data i acc.S.v;
                stats.global_read_bytes <- stats.global_read_bytes + rb;
                stats.global_write_bytes <- stats.global_write_bytes + 8;
                fl.S.v <- fl.S.v +. flops;
                touched := true
          | None, false ->
              let idx = compile_int env single in
              fun () ->
                let i = idx () in
                if i < 0 || i >= n then oob i
                else begin
                  rhs ();
                  A1.unsafe_set data i acc.S.v;
                  stats.global_read_bytes <- stats.global_read_bytes + rb;
                  stats.global_write_bytes <- stats.global_write_bytes + 8;
                  fl.S.v <- fl.S.v +. flops;
                  touched := true
                end)
      | _ -> err env (Printf.sprintf "%s is not an array" a))
  | If (c, tb, eb) ->
      (* nested conditional: plain dispatch, no divergence accounting —
         exactly the reference behaviour for non-top-level guards *)
      let fc = compile_cond env c in
      let ft = compile_seq env tb and fe = compile_seq env eb in
      fun () -> if fc () <> 0 then ft () else fe ()
  | For l -> (
      match env.lookup l.index with
      | S.Int_slot slot ->
          let flo = compile_int env l.lo and fhi = compile_int env l.hi in
          let ir = env.lane.ir in
          let step = l.step in
          let body = compile_seq env l.body in
          fun () ->
            let hi = fhi () in
            let i = ref (flo ()) in
            Array.unsafe_set ir slot !i;
            while !i < hi do
              body ();
              i := !i + step;
              Array.unsafe_set ir slot !i
            done
      | _ -> err env (Printf.sprintf "loop index %s is not an int slot" l.index))
  | Return | Syncthreads | Shared_decl _ ->
      err env "internal: statement excluded by vector eligibility"

(* Top-level statements: guards get an inline warp-divergence counter.
   [ones.(k)] accumulates, per warp, the threads whose k-th top-level
   guard was true; the per-warp flush in the grid loop turns the counts
   into [warp_cond_evals]/[divergent_warp_cond_evals] bumps identical to
   the reference's separate divergence pass (pure guards + full warps:
   every thread evaluates every top-level guard exactly once). *)
let compile_top env body =
  let nifs = List.fold_left (fun n s -> match s with If _ -> n + 1 | _ -> n) 0 body in
  let ones = Array.make (max nifs 1) 0 in
  let next = ref 0 in
  let fns =
    List.map
      (fun s ->
        match s with
        | If (c, tb, eb) ->
            let k = !next in
            incr next;
            let fc = compile_cond env c in
            let ft = compile_seq env tb and fe = compile_seq env eb in
            fun () ->
              if fc () <> 0 then begin
                Array.unsafe_set ones k (Array.unsafe_get ones k + 1);
                ft ()
              end
              else fe ()
        | s -> compile_stmt env s)
      body
  in
  (Array.of_list fns, ones, nifs)

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

(* Runs the launch if it is in the vectorizable fragment; [None] demurs
   to the lockstep backends. Returns the merged stats, the observed
   (read, written) PARAMETER name lists, and the chunk count used. *)
let try_run ?engine mem prog (l : launch) =
  let entry = prepared prog l in
  match entry.me_prep with
  | None -> None
  | Some prep ->
      let kernel = prep.p_kernel in
      let sizes_declared = ref true in
      List.iter
        (fun (p, a) ->
          match a with
          | Arg_array host -> (
              match Memory.get mem host with
              | data ->
                  Hashtbl.replace prep.p_table p (S.Global data);
                  (match find_array prog host with
                  | decl -> if A1.dim data <> array_cells decl then sizes_declared := false
                  | exception Not_found -> sizes_declared := false)
              | exception Memory.Unknown_array name ->
                  raise
                    (S.Sim_error
                       { kernel = kernel.k_name; message = "unknown device array " ^ name }))
          | Arg_int _ | Arg_double _ -> ())
        prep.p_bound;
      (* unchecked accesses need both the analyzer's in-bounds proof and
         backing arrays of exactly the declared extents the proof was
         computed against *)
      let unsafe = !sizes_declared && proved prog l entry in
      let bx, by, bz = l.l_block in
      let gx, gy, gz = grid_of_launch l in
      let nthreads = bx * by * bz in
      let blocks = gx * gy * gz in
      let txs = Array.init nthreads (fun t -> t mod bx)
      and tys = Array.init nthreads (fun t -> t / bx mod by)
      and tzs = Array.init nthreads (fun t -> t / (bx * by)) in
      let per_block =
        Array.init blocks (fun _ -> S.zero_stats ~shared_bytes_per_block:0 ~blocks_launched:1)
      in
      let run_chunk (b_lo, b_hi) =
        let lane =
          { tx = 0; ty = 0; tz = 0; bix = 0; biy = 0; biz = 0;
            ir = Array.make (max prep.p_n_int 1) 0;
            fr = Array.make (max prep.p_n_float 1) 0.0 }
        in
        let stats = S.zero_stats ~shared_bytes_per_block:0 ~blocks_launched:1 in
        let env =
          {
            lane;
            stats;
            unsafe;
            kname = kernel.k_name;
            lookup =
              (fun v ->
                match Hashtbl.find_opt prep.p_table v with
                | Some b -> b
                | None ->
                    raise
                      (S.Sim_error
                         { kernel = kernel.k_name; message = "unbound identifier " ^ v }));
            read_flags = Hashtbl.create 8;
            write_flags = Hashtbl.create 8;
            acc = { S.v = 0.0 };
            flacc = { S.v = 0.0 };
          }
        in
        let fns, ones, nifs = compile_top env prep.p_body in
        let nstmts = Array.length fns in
        for b = b_lo to b_hi do
          let base = S.copy_stats stats in
          lane.bix <- b mod gx;
          lane.biy <- b / gx mod gy;
          lane.biz <- b / (gx * gy);
          let t = ref 0 in
          while !t < nthreads do
            let wn = min 32 (nthreads - !t) in
            for q = !t to !t + wn - 1 do
              lane.tx <- Array.unsafe_get txs q;
              lane.ty <- Array.unsafe_get tys q;
              lane.tz <- Array.unsafe_get tzs q;
              for s = 0 to nstmts - 1 do
                (Array.unsafe_get fns s) ()
              done
            done;
            for k = 0 to nifs - 1 do
              stats.warp_cond_evals <- stats.warp_cond_evals + 1;
              let o = Array.unsafe_get ones k in
              if o > 0 && o < wn then
                stats.divergent_warp_cond_evals <- stats.divergent_warp_cond_evals + 1;
              Array.unsafe_set ones k 0
            done;
            t := !t + wn
          done;
          stats.threads_active <- stats.threads_active + nthreads;
          (* flops were accrued in the unboxed [flacc] cell; sync before
             diffing so the per-block delta is exact *)
          stats.flops <- env.flacc.S.v;
          per_block.(b) <- S.diff_stats stats base
        done;
        let observed tbl = Hashtbl.fold (fun p r acc -> if !r then p :: acc else acc) tbl [] in
        (observed env.read_flags, observed env.write_flags)
      in
      let jobs = match engine with Some e -> Engine.jobs e | None -> 1 in
      let workers = match engine with Some e -> Engine.workers e | None -> 1 in
      let nchunks = S.chunks_for ~jobs ~workers ~blocks in
      let ranges =
        List.init nchunks (fun c -> (c * blocks / nchunks, ((c + 1) * blocks / nchunks) - 1))
      in
      let usages =
        match engine with
        | Some e when nchunks > 1 -> Engine.map e run_chunk ranges
        | _ -> List.map run_chunk ranges
      in
      (* deterministic merge: block-index order, independent of chunking *)
      let stats = S.zero_stats ~shared_bytes_per_block:0 ~blocks_launched:blocks in
      stats.threads_launched <- nthreads * blocks;
      Array.iter
        (fun b ->
          stats.global_read_bytes <- stats.global_read_bytes + b.S.global_read_bytes;
          stats.global_write_bytes <- stats.global_write_bytes + b.S.global_write_bytes;
          stats.flops <- stats.flops +. b.S.flops;
          stats.warp_cond_evals <- stats.warp_cond_evals + b.S.warp_cond_evals;
          stats.divergent_warp_cond_evals <-
            stats.divergent_warp_cond_evals + b.S.divergent_warp_cond_evals;
          stats.shared_hazards <- stats.shared_hazards + b.S.shared_hazards;
          stats.threads_active <- stats.threads_active + b.S.threads_active)
        per_block;
      let reads = List.concat_map fst usages and writes = List.concat_map snd usages in
      Some
        ( stats,
          (List.sort_uniq compare reads, List.sort_uniq compare writes),
          nchunks )
