(** Device global memory for the GPU simulator.

    Arrays are flat float64 {!Bigarray.Array1} views into one
    contiguous off-heap arena per memory, addressed by the linearized
    index the kernels compute; dimensions are kept for reporting and
    halo checks. Only double-precision arrays are supported — the
    evaluation of the paper is entirely double precision
    (Section 6.1.2).

    The off-heap representation buys three things with zero behavioural
    change (float64 Bigarray cells are the same IEEE-754 doubles as
    [float array] cells): the GC never scans grid payloads,
    {!snapshot} / {!restore} / {!copy} are single [Array1.blit]s
    (memcpy), and arenas are recycled through {!Pool} across the GGA's
    thousands of fitness simulations. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Backing store of one array: a zero-copy sub-view of the memory's
    arena. Element [i] is read as [b.{i}] (or [Array1.unsafe_get] on
    proved paths). *)

val empty_buf : buf
(** A zero-length buffer, for placeholder bindings. *)

val alloc_buf : int -> buf
(** A fresh (non-pooled, uninitialized) buffer of [n] cells. *)

type t

exception Unknown_array of string
(** Raised by {!get} / {!dims} for an array name this memory does not
    hold. Carries the offending name; the interpreter re-wraps it in
    [Interp.Sim_error] together with the launching kernel. *)

type layout = {
  l_offsets : (string * int) list;  (** array name -> cell offset *)
  l_total : int;  (** arena cells; <= packed total when slots are shared *)
  l_seed_order : string list;
      (** seeding order; arrays whose initial values must survive on a
          shared slot come last *)
}
(** A liveness-driven overlay placement (Kft_schedflow.Schedflow
    [arena_layout]): arrays whose live ranges never need both values at
    once may share arena cells. Sound only for runs whose final memory
    is discarded — the overlay preserves every value any read observes
    during the schedule, not the end-of-run contents of shared slots. *)

val create : ?layout:layout -> Kft_cuda.Ast.array_decl list -> t
(** Allocate every array, zero-initialized, in one pooled arena —
    packed in sorted name order by default, or placed by [layout].
    Raises [Invalid_argument] on duplicate names, non-double element
    types, or a layout that misses an array / overflows its arena. *)

val init_seeded : t -> seed:int -> unit
(** Fill every array with a deterministic pseudo-random pattern derived
    from [seed] and the array name, so that identical programs started
    from the same seed are bit-comparable. Arrays are filled in the
    memory's seeding order (name order by default, [l_seed_order] under
    an overlay layout, where later arrays win on shared cells). *)

val get : t -> string -> buf
(** The backing store of an array — an aliasing view, not a copy.
    Raises {!Unknown_array}. *)

val get_array : t -> string -> float array
(** A heap copy of an array's contents, for callers that want plain
    [float array] access (tests, reporting). Raises {!Unknown_array}. *)

val dims : t -> string -> int list
(** Raises {!Unknown_array}. *)

val mem : t -> string -> bool

val names : t -> string list

val copy : t -> t
(** An independent memory with the same contents: one pooled arena
    acquisition plus one blit. *)

val release : t -> unit
(** Return the memory's arena to {!Pool} for recycling. The memory must
    not be used afterwards ({!get} / {!copy} / {!snapshot} raise
    [Invalid_argument]); releasing twice raises [Invalid_argument].
    Releasing is optional — an unreleased memory is reclaimed by the GC
    like before, its arena simply bypasses the pool. *)

type snapshot
(** An immutable-by-convention capture of a memory: the used arena
    prefix (entries are packed in sorted name order) blitted into a
    fresh exact-size buffer, plus the shared (name, dims, offset)
    directory. Do not mutate a snapshot's interior. *)

val snapshot : t -> snapshot
(** Capture the current contents: one [Array1.blit], no serialization;
    cheap enough to take per cached simulation run. The snapshot's
    buffer is deliberately not pooled — snapshots live indefinitely
    inside the profile cache. *)

val restore : snapshot -> t
(** A fresh memory with the captured contents (one pooled acquisition
    plus one blit). Restoring twice yields independent memories
    ([restore s != restore s] arrays). *)

val max_abs_diff : t -> t -> (string * float) list
(** For every array name present in {e either} memory, the maximum
    absolute elementwise difference. An array missing on one side — or
    present with a different length — is reported as [infinity] rather
    than silently dropped. Sorted by name. *)

val equal_within : tol:float -> t -> t -> bool
(** True when every array of either memory agrees within [tol] (so a
    one-sided array makes this false). *)

(** Arena recycling across simulations. Global, mutex-guarded;
    smallest-fit over a bounded free list of released arenas. *)
module Pool : sig
  type stats = {
    requests : int;  (** arena acquisitions: create + copy + restore *)
    hits : int;  (** served by recycling a released arena *)
    misses : int;  (** served by a fresh allocation *)
    cells_requested : int;  (** total cells across all requests *)
    high_water : int;  (** peak cells simultaneously checked out *)
  }

  val stats : unit -> stats

  val reset : unit -> unit
  (** Drop retained arenas and zero the counters (tests, bench). *)
end
