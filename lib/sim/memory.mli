(** Device global memory for the GPU simulator.

    Arrays are flat [float array]s addressed by the linearized index the
    kernels compute; dimensions are kept for reporting and halo checks.
    Only double-precision arrays are supported — the evaluation of the
    paper is entirely double precision (Section 6.1.2). *)

type t

exception Unknown_array of string
(** Raised by {!get} / {!dims} for an array name this memory does not
    hold. Carries the offending name; the interpreter re-wraps it in
    [Interp.Sim_error] together with the launching kernel. *)

val create : Kft_cuda.Ast.array_decl list -> t
(** Allocate every array, zero-initialized. Raises [Invalid_argument] on
    duplicate names or non-double element types. *)

val init_seeded : t -> seed:int -> unit
(** Fill every array with a deterministic pseudo-random pattern derived
    from [seed] and the array name, so that identical programs started
    from the same seed are bit-comparable. *)

val get : t -> string -> float array
(** The backing store of an array. Raises {!Unknown_array}. *)

val dims : t -> string -> int list
(** Raises {!Unknown_array}. *)

val mem : t -> string -> bool

val names : t -> string list

val copy : t -> t

type snapshot
(** An immutable-by-convention capture of a memory: every array packed
    into one contiguous buffer with a (name, dims, offset) directory in
    sorted name order. Do not mutate a snapshot's interior. *)

val snapshot : t -> snapshot
(** Capture the current contents. [Array.blit]-based — no
    serialization; cheap enough to take per cached simulation run. *)

val restore : snapshot -> t
(** A fresh memory with the captured contents. Restoring twice yields
    independent memories ([restore s != restore s] arrays). *)

val max_abs_diff : t -> t -> (string * float) list
(** For every array name present in {e either} memory, the maximum
    absolute elementwise difference. An array missing on one side — or
    present with a different length — is reported as [infinity] rather
    than silently dropped. Sorted by name. *)

val equal_within : tol:float -> t -> t -> bool
(** True when every array of either memory agrees within [tol] (so a
    one-sided array makes this false). *)
