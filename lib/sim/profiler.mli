(** The nvprof stand-in: execute a program on the simulator and produce
    per-kernel performance profiles (Section 5.1's single profiled run
    of the instrumented code). *)

type kernel_profile = {
  kernel : string;
  launch : Kft_cuda.Ast.launch;
  stats : Interp.stats;
  timing : Timing.breakdown;
  regs_per_thread : int;
  cost : Kft_analysis.Cost.t;
  access : (Kft_analysis.Access.kernel_access_info, Kft_analysis.Access.failure_reason) result;
}

type run = {
  profiles : kernel_profile list;  (** in schedule order, one per launch *)
  total_time_us : float;  (** sum of modeled kernel runtimes *)
  memory : Memory.t;  (** final device memory *)
}

val profile :
  ?engine:Kft_engine.Engine.t -> ?affine:bool -> ?backend:Interp.backend ->
  ?trace:Kft_trace.Trace.t -> ?layout:Memory.layout -> ?seed:int ->
  Kft_device.Device.t -> Kft_cuda.Ast.program -> run
(** Allocate and seed device memory (default seed 42), then run the full
    schedule. [engine] and [affine] are passed through to
    {!Interp.launch}, as is [backend] (backend selection never changes
    the profile — all backends are bit-identical — only how fast it is
    produced). [layout] places the arrays by a liveness-driven overlay
    (see {!Memory.layout}): statistics and timings are bit-identical,
    only the arena is smaller — use when the run's memory is discarded.
    [trace] records one span per launch. *)

val profile_with_memory :
  ?engine:Kft_engine.Engine.t -> ?affine:bool -> ?backend:Interp.backend ->
  ?trace:Kft_trace.Trace.t ->
  Kft_device.Device.t -> Memory.t -> Kft_cuda.Ast.program -> run
(** Run against caller-provided memory (mutated in place); used to
    compare two program versions from identical initial state. *)

val verify :
  ?engine:Kft_engine.Engine.t -> ?affine:bool -> ?backend:Interp.backend ->
  ?trace:Kft_trace.Trace.t -> ?seed:int -> ?tol:float ->
  Kft_device.Device.t ->
  original:Kft_cuda.Ast.program -> transformed:Kft_cuda.Ast.program ->
  (unit, (string * float) list) result
(** Run both programs from identical seeded memory and compare all
    arrays common to both; [Error diffs] lists offending arrays with
    their max absolute difference. This is the output verification the
    paper performed "for every single run" (Section 6.1.2). *)

val speedup : original:run -> transformed:run -> float
(** Ratio of total modeled times. *)
