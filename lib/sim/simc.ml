(* Shared simulator-compiler substrate: the execution statistics record,
   the binding environment, type inference over the CUDA subset and the
   static expression analyses (flop counts, read counts, constant
   folding, guard purity).  Both execution backends — the lockstep
   interpreter ([Interp]) and the whole-grid vectorized backend
   ([Vector]) — compile against exactly these definitions, which is what
   makes their statistics bit-comparable: every flop/byte/divergence
   addend is derived from the same static analysis. *)

open Kft_cuda.Ast

type stats = {
  mutable global_read_bytes : int;
  mutable global_write_bytes : int;
  mutable flops : float;
  mutable warp_cond_evals : int;
  mutable divergent_warp_cond_evals : int;
  mutable shared_hazards : int;
  mutable threads_launched : int;
  mutable threads_active : int;
  shared_bytes_per_block : int;
  blocks_launched : int;
}

let divergence_fraction s =
  if s.warp_cond_evals = 0 then 0.0
  else float_of_int s.divergent_warp_cond_evals /. float_of_int s.warp_cond_evals

let copy_stats s = { s with global_read_bytes = s.global_read_bytes }

let zero_stats ~shared_bytes_per_block ~blocks_launched =
  {
    global_read_bytes = 0;
    global_write_bytes = 0;
    flops = 0.0;
    warp_cond_evals = 0;
    divergent_warp_cond_evals = 0;
    shared_hazards = 0;
    threads_launched = 0;
    threads_active = 0;
    shared_bytes_per_block;
    blocks_launched;
  }

(* Per-block counter deltas against a snapshot taken at block entry. All
   flop addends are [float_of_int] of static counts, so every partial sum
   is an exactly-represented integer and the subtraction is exact: the
   per-block deltas re-summed in block order reproduce the sequential
   accumulator bit for bit. *)
let diff_stats cur base =
  {
    global_read_bytes = cur.global_read_bytes - base.global_read_bytes;
    global_write_bytes = cur.global_write_bytes - base.global_write_bytes;
    flops = cur.flops -. base.flops;
    warp_cond_evals = cur.warp_cond_evals - base.warp_cond_evals;
    divergent_warp_cond_evals =
      cur.divergent_warp_cond_evals - base.divergent_warp_cond_evals;
    shared_hazards = cur.shared_hazards - base.shared_hazards;
    threads_launched = 0;
    threads_active = cur.threads_active - base.threads_active;
    shared_bytes_per_block = cur.shared_bytes_per_block;
    blocks_launched = 1;
  }

exception Sim_error of { kernel : string; message : string }

(* Single-float-field record: OCaml stores the field flat (unboxed), so
   [acc.v <- x] is a plain store. The fast-path float compilers thread
   one of these through every compiled closure instead of returning
   floats — a float returned across an indirect closure call is boxed
   (an allocation per call), which is exactly what the steady-state
   zero-allocation contract of the affine/vector paths forbids. *)
type facc = { mutable v : float }

(* ------------------------------------------------------------------ *)
(* Compilation environment                                             *)
(* ------------------------------------------------------------------ *)

type binding =
  | Const_int of int
  | Const_float of float
  | Int_slot of int
  | Float_slot of int
  | Global of Memory.buf
  | Shared of int * int list  (* slot, declared dims *)

let usage_flag tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref false in
      Hashtbl.replace tbl name r;
      r

(* ------------------------------------------------------------------ *)
(* Type inference over the subset                                      *)
(* ------------------------------------------------------------------ *)

type ety = EInt | EFloat

let join a b = match (a, b) with EInt, EInt -> EInt | _ -> EFloat

let rec ty_of lookup e =
  match e with
  | Int_lit _ -> EInt
  | Double_lit _ -> EFloat
  | Builtin _ -> EInt
  | Var v -> (
      match lookup v with
      | Const_int _ | Int_slot _ -> EInt
      | Const_float _ | Float_slot _ -> EFloat
      | Global _ | Shared _ -> EFloat)
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> join (ty_of lookup a) (ty_of lookup b)
  | Binop (_, _, _) -> EInt
  | Unop (Not, _) -> EInt
  | Unop (Neg, a) -> ty_of lookup a
  | Index _ -> EFloat
  | Call (("min" | "max" | "abs"), args) ->
      List.fold_left (fun acc a -> join acc (ty_of lookup a)) EInt args
  | Call _ -> EFloat
  | Ternary (_, a, b) -> join (ty_of lookup a) (ty_of lookup b)

(* static flop count of an expression (arithmetic on any operands;
   integer index arithmetic is excluded by construction because we only
   charge flops for float-typed subtrees) *)
let rec float_flops lookup e =
  match ty_of lookup e with
  | EInt -> 0
  | EFloat -> (
      match e with
      | Int_lit _ | Double_lit _ | Var _ | Builtin _ | Index _ -> 0
      | Binop ((Add | Sub | Mul | Div | Mod), a, b) ->
          1 + float_flops lookup a + float_flops lookup b
      | Binop (_, a, b) -> float_flops lookup a + float_flops lookup b
      | Unop (_, a) -> float_flops lookup a
      | Call ("fma", args) -> 2 + List.fold_left (fun acc a -> acc + float_flops lookup a) 0 args
      | Call (("sqrt" | "exp" | "log" | "pow" | "sin" | "cos"), args) ->
          4 + List.fold_left (fun acc a -> acc + float_flops lookup a) 0 args
      | Call (_, args) -> List.fold_left (fun acc a -> acc + float_flops lookup a) 0 args
      | Ternary (c, a, b) ->
          float_flops lookup c + max (float_flops lookup a) (float_flops lookup b))

(* Left-leaning [+]/[-] chains, leftmost term first. [a + b - c] yields
   [(true, a); (true, b); (false, c)]: the sign belongs to the term, and
   since IEEE subtraction is addition of the negated operand, folding the
   sign into the leaf closure is bit-exact. *)
let rec sum_terms e acc =
  match e with
  | Binop (Add, l, r) -> sum_terms l ((true, r) :: acc)
  | Binop (Sub, l, r) -> sum_terms l ((false, r) :: acc)
  | _ -> (true, e) :: acc

(* compile-time integer constants: literals, bound scalar parameters and
   non-trapping arithmetic over them (Div/Mod are left to the runtime so
   a division by zero still raises per-thread, as the reference does) *)
let rec static_int lookup e =
  match e with
  | Int_lit i -> Some i
  | Var v -> ( match lookup v with Const_int i -> Some i | _ -> None)
  | Binop (op, a, b) -> (
      match (static_int lookup a, static_int lookup b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div | Mod -> None
          | Lt -> Some (if x < y then 1 else 0)
          | Le -> Some (if x <= y then 1 else 0)
          | Gt -> Some (if x > y then 1 else 0)
          | Ge -> Some (if x >= y then 1 else 0)
          | Eq -> Some (if x = y then 1 else 0)
          | Ne -> Some (if x <> y then 1 else 0)
          | And -> Some (if x <> 0 && y <> 0 then 1 else 0)
          | Or -> Some (if x <> 0 || y <> 0 then 1 else 0))
      | _ -> None)
  | Unop (Neg, a) -> Option.map (fun x -> -x) (static_int lookup a)
  | Unop (Not, a) -> Option.map (fun x -> if x = 0 then 1 else 0) (static_int lookup a)
  | _ -> None

(* compile-time float constants (literals and bound scalar parameters) *)
let const_float_of lookup e =
  match e with
  | Double_lit f -> Some f
  | Int_lit i -> Some (float_of_int i)
  | Var v -> (
      match lookup v with
      | Const_float f -> Some f
      | Const_int i -> Some (float_of_int i)
      | _ -> None)
  | _ -> None

(* integer-only, side-effect-free, non-trapping conditions: evaluating
   them once or twice is indistinguishable — no stats, no memory
   traffic, no Sim_error *)
let rec pure_int_cond lookup e =
  match e with
  | Int_lit _ -> true
  | Builtin (Thread_idx _ | Block_idx _) -> true
  | Builtin _ -> false
  | Var v -> ( match lookup v with Const_int _ | Int_slot _ -> true | _ -> false)
  | Binop ((Div | Mod), _, _) -> false
  | Binop (_, a, b) -> pure_int_cond lookup a && pure_int_cond lookup b
  | Unop (_, a) -> pure_int_cond lookup a
  | Ternary (c, a, b) ->
      pure_int_cond lookup c && pure_int_cond lookup a && pure_int_cond lookup b
  | Double_lit _ | Index _ | Call _ -> false

(* number of global-array reads one evaluation of [e] performs, or
   [None] when the count is data-dependent (a [Ternary] picks a branch
   at run time). Shared-memory reads are excluded: they do not touch
   [global_read_bytes] and keep their per-access hazard accounting. *)
let static_read_count lookup e =
  let rec go e =
    match e with
    | Index (a, _) -> ( match lookup a with Global _ -> 1 | _ -> 0)
    | Binop (_, a, b) -> go a + go b
    | Unop (_, a) -> go a
    | Call (_, args) -> List.fold_left (fun acc a -> acc + go a) 0 args
    | Ternary _ -> raise Exit
    | Int_lit _ | Double_lit _ | Var _ | Builtin _ -> 0
  in
  try Some (go e) with Exit -> None

let stmts_read_var v stmts =
  let found = ref false in
  ignore
    (map_exprs_in_stmts
       (fun e ->
         (match e with Var x when x = v -> found := true | _ -> ());
         e)
       stmts);
  !found

(* ------------------------------------------------------------------ *)
(* Scalar slot collection                                              *)
(* ------------------------------------------------------------------ *)

let collect_scalar_slots kernel_name body params =
  (* name -> ety, slot index; loop indices and decls *)
  let table : (string, binding) Hashtbl.t = Hashtbl.create 32 in
  let int_slots = ref 0 and float_slots = ref 0 in
  let add_var name ety =
    match Hashtbl.find_opt table name with
    | Some (Int_slot _) when ety = EInt -> ()
    | Some (Float_slot _) when ety = EFloat -> ()
    | Some _ ->
        raise
          (Sim_error
             {
               kernel = kernel_name;
               message = Printf.sprintf "variable %s redeclared with a different type" name;
             })
    | None ->
        let b =
          match ety with
          | EInt ->
              incr int_slots;
              Int_slot (!int_slots - 1)
          | EFloat ->
              incr float_slots;
              Float_slot (!float_slots - 1)
        in
        Hashtbl.replace table name b
  in
  ignore params;
  let shared_slots = ref [] in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | Decl (Int, v, _) | Decl (Bool, v, _) -> add_var v EInt
        | Decl (Double, v, _) -> add_var v EFloat
        | Shared_decl (_, n, dims) ->
            if not (List.mem_assoc n !shared_slots) then
              shared_slots := !shared_slots @ [ (n, dims) ]
        | For l ->
            add_var l.index EInt;
            walk l.body
        | If (_, t, e) ->
            walk t;
            walk e
        | Assign _ | Syncthreads | Return -> ())
      stmts
  in
  walk body;
  (table, !int_slots, !float_slots, !shared_slots)

(* ------------------------------------------------------------------ *)
(* Block-range chunking policy (shared by both parallel backends)      *)
(* ------------------------------------------------------------------ *)

(* test hook: force a chunk count so the ordered-merge path can be
   exercised deterministically even on a single-core host (where the
   adaptive policy below always picks 1) *)
let chunk_override : int option ref = ref None

(* Each chunk recompiles the kernel against its own lane/register state,
   so chunking only pays off when there are real worker domains and
   enough blocks per chunk to amortize the per-chunk compilation: small
   launches (blocks < ~4 x workers) and single-worker pools stay
   sequential — paying pool coordination with zero usable parallelism is
   exactly the Fluam block-parallel regression. Splitting scales with the
   domains actually spawned, not the requested width. *)
let chunks_for ~jobs ~workers ~blocks =
  match !chunk_override with
  | Some n -> max 1 (min n (max 1 blocks))
  | None ->
      if jobs <= 1 || workers <= 1 || blocks < 4 * workers then 1
      else min (workers * 2) (blocks / 4)
