open Kft_cuda.Ast

(* Constant-folding smart constructors keep decompositions canonical, so
   structurally identical source indexes land in the same (core, stride)
   group no matter how they were nested. *)

let add a b =
  match (a, b) with
  | Int_lit 0, e | e, Int_lit 0 -> e
  | Int_lit x, Int_lit y -> Int_lit (x + y)
  | _ -> Binop (Add, a, b)

let sub a b =
  match (a, b) with
  | e, Int_lit 0 -> e
  | Int_lit x, Int_lit y -> Int_lit (x - y)
  | _ -> Binop (Sub, a, b)

let mul a b =
  match (a, b) with
  | Int_lit 0, _ | _, Int_lit 0 -> Int_lit 0
  | Int_lit 1, e | e, Int_lit 1 -> e
  | Int_lit x, Int_lit y -> Int_lit (x * y)
  | _ -> Binop (Mul, a, b)

let neg = function
  | Int_lit x -> Int_lit (-x)
  | e -> Binop (Sub, Int_lit 0, e)

let occurs v e = fold_expr (fun acc x -> acc || x = Var v) false e

(* [e = base + v * stride] with neither side mentioning [v]. *)
let rec decompose v e =
  if not (occurs v e) then Some (e, Int_lit 0)
  else
    match e with
    | Var x when x = v -> Some (Int_lit 0, Int_lit 1)
    | Binop (Add, a, b) -> (
        match (decompose v a, decompose v b) with
        | Some (ba, sa), Some (bb, sb) -> Some (add ba bb, add sa sb)
        | _ -> None)
    | Binop (Sub, a, b) -> (
        match (decompose v a, decompose v b) with
        | Some (ba, sa), Some (bb, sb) -> Some (sub ba bb, sub sa sb)
        | _ -> None)
    | Binop (Mul, a, b) ->
        if occurs v a && occurs v b then None
        else if occurs v a then
          Option.map (fun (ba, sa) -> (mul ba b, mul sa b)) (decompose v a)
        else Option.map (fun (bb, sb) -> (mul a bb, mul a sb)) (decompose v b)
    | Unop (Neg, a) ->
        Option.map (fun (ba, sa) -> (neg ba, neg sa)) (decompose v a)
    | _ -> None

(* Hoisting evaluates the expression earlier (at loop entry) and possibly
   on iterations where the guarded access never runs, so it must be pure
   and total: integer +/-/* over scalars only. *)
let rec hoistable e =
  match e with
  | Int_lit _ | Var _ | Builtin _ -> true
  | Binop ((Add | Sub | Mul), a, b) -> hoistable a && hoistable b
  | Unop (Neg, a) -> hoistable a
  | _ -> false

(* Pull top-level additive integer constants out of [e], so the stencil
   neighbours base+1 / base-1 share one induction variable. *)
let rec split_const e =
  match e with
  | Int_lit n -> (Int_lit 0, n)
  | Binop (Add, a, b) ->
      let ca, na = split_const a and cb, nb = split_const b in
      (add ca cb, na + nb)
  | Binop (Sub, a, b) ->
      let ca, na = split_const a and cb, nb = split_const b in
      (sub ca cb, na - nb)
  | _ -> (e, 0)

let expr_size e = fold_expr (fun n _ -> n + 1) 0 e

let expr_vars e =
  fold_expr (fun acc x -> match x with Var v -> v :: acc | _ -> acc) [] e

let assigned_vars stmts =
  fold_stmts
    (fun acc s ->
      match s with
      | Decl (_, v, _) | Assign (Lvar v, _) -> v :: acc
      | For l -> l.index :: acc
      | _ -> acc)
    [] stmts

(* Every single-index array access in source order: reads anywhere in an
   expression plus write targets. Multi-dimensional (shared) indexes are
   left alone. *)
let collect_sites stmts =
  let read acc e =
    fold_expr (fun acc x -> match x with Index (_, [ i ]) -> i :: acc | _ -> acc) acc e
  in
  let rec go_stmts acc stmts = List.fold_left go_stmt acc stmts
  and go_stmt acc s =
    match s with
    | Decl (_, _, Some e) | Assign (Lvar _, e) -> read acc e
    | Decl (_, _, None) | Shared_decl _ | Syncthreads | Return -> acc
    | Assign (Lindex (_, idxs), e) ->
        let acc =
          match idxs with
          | [ i ] -> i :: read acc i
          | _ -> List.fold_left read acc idxs
        in
        read acc e
    | If (c, t, e) -> go_stmts (go_stmts (read acc c) t) e
    | For l -> go_stmts (read (read acc l.lo) l.hi) l.body
  in
  List.rev (go_stmts [] stmts)

type group = {
  core : expr;
  stride : expr;
  g_var : string;  (* induction variable *)
  mutable g_inc : expr option;  (* per-iteration increment; None = loop-invariant *)
}

let assoc_eq key l = List.find_opt (fun (k, _) -> k = key) l

(* Rewrite one loop whose body has already been processed (innermost
   first). Returns the replacement statement list: hoisted declarations,
   the loop with substituted accesses, increments appended to the body. *)
let transform_loop counter (l : for_loop) =
  let banned = l.index :: assigned_vars l.body in
  let invariant e = List.for_all (fun v -> not (List.mem v banned)) (expr_vars e) in
  let groups = ref [] (* in first-seen order, reversed *) in
  let subst = ref [] (* site expr -> replacement expr *) in
  List.iter
    (fun site ->
      if assoc_eq site !subst = None && expr_size site >= 4 then
        match decompose l.index site with
        | None -> ()
        | Some (base, stride) ->
            if hoistable base && hoistable stride && invariant base && invariant stride
            then begin
              let core, offset = split_const base in
              let g =
                match
                  List.find_opt (fun g -> g.core = core && g.stride = stride) !groups
                with
                | Some g -> g
                | None ->
                    let g =
                      {
                        core;
                        stride;
                        g_var = Printf.sprintf "__aff%d" !counter;
                        g_inc = None;
                      }
                    in
                    incr counter;
                    groups := g :: !groups;
                    g
              in
              let repl =
                if offset = 0 then Var g.g_var
                else if offset > 0 then Binop (Add, Var g.g_var, Int_lit offset)
                else Binop (Sub, Var g.g_var, Int_lit (-offset))
              in
              subst := (site, repl) :: !subst
            end)
    (collect_sites l.body);
  match !groups with
  | [] -> [ For l ]
  | _ ->
      let groups = List.rev !groups in
      let table = !subst in
      let fix_idx i =
        match assoc_eq i table with Some (_, r) -> r | None -> i
      in
      let fix_expr =
        map_expr (function Index (a, [ i ]) -> Index (a, [ fix_idx i ]) | e -> e)
      in
      let body =
        map_stmts
          (function
            | Assign (Lindex (a, [ i ]), e) -> Assign (Lindex (a, [ fix_idx i ]), e)
            | s -> s)
          (map_exprs_in_stmts fix_expr l.body)
      in
      let decls =
        List.concat_map
          (fun g ->
            let init = add g.core (mul l.lo g.stride) in
            match mul (Int_lit l.step) g.stride with
            | Int_lit 0 -> [ Decl (Int, g.g_var, Some init) ]
            | Int_lit k ->
                g.g_inc <- Some (Int_lit k);
                [ Decl (Int, g.g_var, Some init) ]
            | inc ->
                let sv = g.g_var ^ "_s" in
                g.g_inc <- Some (Var sv);
                [ Decl (Int, sv, Some inc); Decl (Int, g.g_var, Some init) ])
          groups
      in
      let incs =
        List.filter_map
          (fun g ->
            Option.map
              (fun inc -> Assign (Lvar g.g_var, Binop (Add, Var g.g_var, inc)))
              g.g_inc)
          groups
      in
      decls @ [ For { l with body = body @ incs } ]

let rewrite_stmts stmts =
  let counter = ref 0 in
  let rec go_stmts stmts = List.concat_map go_stmt stmts
  and go_stmt s =
    match s with
    | If (c, t, e) -> [ If (c, go_stmts t, go_stmts e) ]
    | For l -> transform_loop counter { l with body = go_stmts l.body }
    | s -> [ s ]
  in
  go_stmts stmts

let rewrite_kernel k = { k with k_body = rewrite_stmts k.k_body }
