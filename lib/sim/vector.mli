(** Whole-grid vectorized execution backend.

    When a launch is proved to be in the "uniform, barrier-free,
    shared-memory-free" fragment, the kernel is compiled to flat scalar
    loops over the backing [float array]s — one mutable lane instead of
    per-thread register files and closures — and executed in a single
    pass over the grid. Results (memory, statistics, observed usage) are
    bit-identical to the [affine:false] reference interpreter; the
    eligibility conditions exist precisely to make that reordering
    unobservable (see the implementation header for the argument).

    Selection between this backend and the lockstep ones lives in
    {!Interp.launch_ext} (the [?backend] parameter). *)

open Kft_cuda.Ast

val set_prover : (program -> launch -> bool) -> unit
(** Install the bounds prover consulted per launch: [true] licenses
    unchecked ([Array.unsafe_get/set]) global accesses. Registered by
    [kft_absint] at link time (the analyzer result [res_all_proved]);
    the default prover proves nothing, so accesses stay range-checked.
    Must be conservative: a [true] for a launch with an out-of-bounds
    access is memory-unsafe. *)

val eligible : program -> launch -> bool
(** [eligible prog l] is [true] when the launch can run on this
    backend: the kernel exists, its arguments bind, and its
    (blockDim/gridDim-substituted, affine-rewritten) body has no
    barrier, early [return] or shared memory, pure integer top-level
    guards, definite assignment of every scalar, and all accesses to
    any written host array confined to a single top-level statement. *)

val try_run :
  ?engine:Kft_engine.Engine.t ->
  Memory.t ->
  program ->
  launch ->
  (Simc.stats * (string list * string list) * int) option
(** Execute the launch if {!eligible}, returning
    [(stats, (read_params, written_params), chunks)] with the observed
    parameter-name usage sorted. [None] means "not in the fragment" —
    the caller falls back to a lockstep backend. With an [engine], the
    block range fans out over the worker pool in contiguous chunks
    (per-block stats deltas merged in block-index order, so results do
    not depend on the chunking); the adaptive policy keeps small grids
    sequential. Raises {!Simc.Sim_error} (re-exported as
    [Interp.Sim_error]) for runtime faults exactly as the reference
    backend does. *)
