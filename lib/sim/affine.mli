(** Affine index precomputation (strength reduction) for the simulator's
    hot path.

    Every stencil kernel spends its inner (vertical) loop re-evaluating
    full linearized index expressions like [(k*ny + j)*nx + i] for each
    array access on each iteration. For a loop [for (v = lo; v < hi;
    v += step)] this pass rewrites each single-index access whose index
    is affine in [v] — [index = core + v*stride + offset] with [core],
    [stride] invariant in the loop body — into a reference to a fresh
    induction variable:

    {v
    int __affN_s = step * stride;      // hoisted, once per (block, thread)
    int __affN   = core + lo * stride;
    for (v = lo; v < hi; v += step) {
      ... A[__affN + offset] ...       // one offset per neighbour
      __affN = __affN + __affN_s;
    }
    v}

    Accesses sharing [(core, stride)] (e.g. the [+1]/[-1] stencil
    neighbours) share one induction variable and differ only in their
    constant [offset]. Loop-invariant indexes ([stride = 0]) are hoisted
    with no increment.

    The rewrite is applied innermost-loop first and is semantics- and
    stats-preserving: hoisted expressions are restricted to pure, total
    integer [+ - *] over scalars not assigned in the loop body (no
    division, calls, or array reads may be moved), accesses keep their
    order, addresses and bounds checks, and the introduced statements
    are integer-typed so flop and divergence counters are untouched.
    {!Interp} applies it internally (after blockDim/gridDim constant
    substitution) when launched with [~affine:true], the default. *)

val rewrite_stmts : Kft_cuda.Ast.stmt list -> Kft_cuda.Ast.stmt list
(** Rewrite a kernel body. Fresh names use the reserved [__aff] prefix. *)

val rewrite_kernel : Kft_cuda.Ast.kernel -> Kft_cuda.Ast.kernel
(** {!rewrite_stmts} on the kernel's body. *)
