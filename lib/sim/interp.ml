open Kft_cuda.Ast
module Engine = Kft_engine.Engine
module Trace = Kft_trace.Trace
module A1 = Bigarray.Array1

(* The stats record, binding environment, type inference and static
   expression analyses are shared with the vectorized backend (module
   [Simc]) and re-exported here with type equations so existing users of
   [Interp.stats] etc. are unaffected. *)

type stats = Simc.stats = {
  mutable global_read_bytes : int;
  mutable global_write_bytes : int;
  mutable flops : float;
  mutable warp_cond_evals : int;
  mutable divergent_warp_cond_evals : int;
  mutable shared_hazards : int;
  mutable threads_launched : int;
  mutable threads_active : int;
  shared_bytes_per_block : int;
  blocks_launched : int;
}

let divergence_fraction = Simc.divergence_fraction
let copy_stats = Simc.copy_stats
let zero_stats = Simc.zero_stats
let diff_stats = Simc.diff_stats

exception Sim_error = Simc.Sim_error

exception Thread_exit

(* ------------------------------------------------------------------ *)
(* Compilation environment                                             *)
(* ------------------------------------------------------------------ *)

type binding = Simc.binding =
  | Const_int of int
  | Const_float of float
  | Int_slot of int
  | Float_slot of int
  | Global of Memory.buf
  | Shared of int * int list  (* slot, declared dims *)

type st = {
  kernel_name : string;
  bx : int;
  by : int;
  bz : int;
  nthreads : int;
  txs : int array;
  tys : int array;
  tzs : int array;
  mutable bix : int;
  mutable biy : int;
  mutable biz : int;
  iregs : int array array;  (* slot-major: iregs.(slot).(thread) *)
  fregs : float array array;
  shmem : float array array;
  sh_writer : int array array;
  sh_epoch : int array array;
  mutable epoch : int;
  alive : bool array;
  stats : stats;
  has_return : bool;  (* no [return] anywhere: threads can never die *)
  fast : bool;
      (* compile the optimized closure forms (fused index reads, unsafe
         register-file accesses behind the interpreter's own bounds
         checks, single-pass guard evaluation). [false] keeps the plain
         reference compilation, which the bit-identity tests run the
         optimized path against. *)
  read_flags : (string, bool ref) Hashtbl.t;
  write_flags : (string, bool ref) Hashtbl.t;
  acc : Simc.facc;
      (* float-expression accumulator for the fast path: compiled float
         closures are [int -> unit] writing here instead of returning a
         float, because a float returned across an indirect call is
         boxed — an allocation per expression node per thread. The store
         to a single-float-field record is flat. *)
  flacc : Simc.facc;
      (* fast-path flop accumulator; folded into [stats.flops] once per
         block (a [float] store into the mixed [stats] record boxes) *)
}

let err st msg = raise (Sim_error { kernel = st.kernel_name; message = msg })

(* test hook: when set, every in-bounds global access on the
   interpretive (non-affine) path reports (write, array, linear index);
   the optimized affine path does not trace, so run with [affine:false].
   Used by the absint footprint-soundness property tests. *)
let access_trace : (write:bool -> string -> int -> unit) option ref = ref None

let usage_flag = Simc.usage_flag

(* ------------------------------------------------------------------ *)
(* Type inference over the subset (shared with the vector backend)     *)
(* ------------------------------------------------------------------ *)

type ety = Simc.ety = EInt | EFloat

let join = Simc.join
let ty_of = Simc.ty_of
let float_flops = Simc.float_flops

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let shared_addr st dims idx_fns name t =
  let rec go dims fns acc =
    match (dims, fns) with
    | [], [] -> acc
    | d :: dims', f :: fns' ->
        let i = f t in
        if i < 0 || i >= d then
          err st (Printf.sprintf "shared array %s index %d out of bounds [0,%d)" name i d)
        else go dims' fns' ((acc * d) + i)
    | _ -> err st (Printf.sprintf "shared array %s: wrong number of indices" name)
  in
  go dims idx_fns 0

let sum_terms = Simc.sum_terms
let static_int = Simc.static_int
let const_float_of = Simc.const_float_of

let rec compile_int st lookup e : int -> int =
  match (if st.fast then static_int lookup e else None) with
  | Some c -> fun _ -> c
  | None -> (
  match e with
  | Int_lit i -> fun _ -> i
  | Builtin b -> (
      let { txs; tys; tzs; _ } = st in
      match b with
      | Thread_idx X ->
          if st.fast then fun t -> Array.unsafe_get txs t else fun t -> txs.(t)
      | Thread_idx Y ->
          if st.fast then fun t -> Array.unsafe_get tys t else fun t -> tys.(t)
      | Thread_idx Z ->
          if st.fast then fun t -> Array.unsafe_get tzs t else fun t -> tzs.(t)
      | Block_idx X -> fun _ -> st.bix
      | Block_idx Y -> fun _ -> st.biy
      | Block_idx Z -> fun _ -> st.biz
      | Block_dim _ | Grid_dim _ -> err st "blockDim/gridDim must be compiled to constants")
  | Var v -> (
      match lookup v with
      | Const_int i -> fun _ -> i
      | Int_slot s ->
          let arr = st.iregs.(s) in
          if st.fast then fun t -> Array.unsafe_get arr t else fun t -> arr.(t)
      | Const_float _ | Float_slot _ -> err st (Printf.sprintf "variable %s used as integer but is double" v)
      | Global _ | Shared _ -> err st (Printf.sprintf "array %s used as scalar" v))
  (* peepholes for the post-affine hot shapes: slot +/- constant in one
     closure instead of three. Register files are indexed by the thread
     id, which the exec loops keep inside [0, nthreads), so the checked
     access is provably redundant. *)
  | (Binop (Add, Var v, Int_lit c) | Binop (Add, Int_lit c, Var v))
    when st.fast && (match lookup v with Int_slot _ -> true | _ -> false) ->
      let arr = match lookup v with Int_slot s -> st.iregs.(s) | _ -> assert false in
      fun t -> Array.unsafe_get arr t + c
  | Binop (Sub, Var v, Int_lit c)
    when st.fast && (match lookup v with Int_slot _ -> true | _ -> false) ->
      let arr = match lookup v with Int_slot s -> st.iregs.(s) | _ -> assert false in
      fun t -> Array.unsafe_get arr t - c
  | (Binop (Add, a, Int_lit c) | Binop (Add, Int_lit c, a)) when st.fast ->
      let fa = compile_int st lookup a in
      fun t -> fa t + c
  | Binop (Sub, a, Int_lit c) when st.fast ->
      let fa = compile_int st lookup a in
      fun t -> fa t - c
  | (Binop (Mul, a, Int_lit c) | Binop (Mul, Int_lit c, a)) when st.fast ->
      let fa = compile_int st lookup a in
      fun t -> fa t * c
  (* the canonical thread-id expression [blockIdx.d * blockDim.d +
     threadIdx.d'] in one closure *)
  | Binop (Add, Binop (Mul, Builtin (Block_idx db), Int_lit c), Builtin (Thread_idx dt))
    when st.fast ->
      let tarr = match dt with X -> st.txs | Y -> st.tys | Z -> st.tzs in
      (match db with
      | X -> fun t -> (st.bix * c) + Array.unsafe_get tarr t
      | Y -> fun t -> (st.biy * c) + Array.unsafe_get tarr t
      | Z -> fun t -> (st.biz * c) + Array.unsafe_get tarr t)
  (* guard compares against compile-time constants in one closure *)
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), Var v, b)
    when st.fast
         && (match lookup v with Int_slot _ -> true | _ -> false)
         && static_int lookup b <> None -> (
      let arr = match lookup v with Int_slot s -> st.iregs.(s) | _ -> assert false in
      let c = Option.get (static_int lookup b) in
      match op with
      | Lt -> fun t -> if Array.unsafe_get arr t < c then 1 else 0
      | Le -> fun t -> if Array.unsafe_get arr t <= c then 1 else 0
      | Gt -> fun t -> if Array.unsafe_get arr t > c then 1 else 0
      | Ge -> fun t -> if Array.unsafe_get arr t >= c then 1 else 0
      | Eq -> fun t -> if Array.unsafe_get arr t = c then 1 else 0
      | Ne -> fun t -> if Array.unsafe_get arr t <> c then 1 else 0
      | _ -> assert false)
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, Var v)
    when st.fast
         && (match lookup v with Int_slot _ -> true | _ -> false)
         && static_int lookup a <> None -> (
      let arr = match lookup v with Int_slot s -> st.iregs.(s) | _ -> assert false in
      let c = Option.get (static_int lookup a) in
      match op with
      | Lt -> fun t -> if c < Array.unsafe_get arr t then 1 else 0
      | Le -> fun t -> if c <= Array.unsafe_get arr t then 1 else 0
      | Gt -> fun t -> if c > Array.unsafe_get arr t then 1 else 0
      | Ge -> fun t -> if c >= Array.unsafe_get arr t then 1 else 0
      | Eq -> fun t -> if c = Array.unsafe_get arr t then 1 else 0
      | Ne -> fun t -> if c <> Array.unsafe_get arr t then 1 else 0
      | _ -> assert false)
  | Binop (op, a, b) -> (
      let fa = compile_int st lookup a and fb = compile_int st lookup b in
      match op with
      | Add -> fun t -> fa t + fb t
      | Sub -> fun t -> fa t - fb t
      | Mul -> fun t -> fa t * fb t
      | Div ->
          fun t ->
            let d = fb t in
            if d = 0 then err st "integer division by zero" else fa t / d
      | Mod ->
          fun t ->
            let d = fb t in
            if d = 0 then err st "integer modulo by zero" else fa t mod d
      | Lt -> fun t -> if fa t < fb t then 1 else 0
      | Le -> fun t -> if fa t <= fb t then 1 else 0
      | Gt -> fun t -> if fa t > fb t then 1 else 0
      | Ge -> fun t -> if fa t >= fb t then 1 else 0
      | Eq -> fun t -> if fa t = fb t then 1 else 0
      | Ne -> fun t -> if fa t <> fb t then 1 else 0
      | And -> fun t -> if fa t <> 0 && fb t <> 0 then 1 else 0
      | Or -> fun t -> if fa t <> 0 || fb t <> 0 then 1 else 0)
  | Unop (Neg, a) ->
      let f = compile_int st lookup a in
      fun t -> -f t
  | Unop (Not, a) ->
      let f = compile_int st lookup a in
      fun t -> if f t = 0 then 1 else 0
  | Call ("min", [ a; b ]) ->
      let fa = compile_int st lookup a and fb = compile_int st lookup b in
      fun t -> min (fa t) (fb t)
  | Call ("max", [ a; b ]) ->
      let fa = compile_int st lookup a and fb = compile_int st lookup b in
      fun t -> max (fa t) (fb t)
  | Call ("abs", [ a ]) ->
      let f = compile_int st lookup a in
      fun t -> abs (f t)
  | Ternary (c, a, b) ->
      let fc = compile_int st lookup c
      and fa = compile_int st lookup a
      and fb = compile_int st lookup b in
      fun t -> if fc t <> 0 then fa t else fb t
  | Double_lit _ -> err st "double literal in integer context"
  | Index (a, _) -> err st (Printf.sprintf "array %s read in integer context" a)
  | Call (f, _) -> err st (Printf.sprintf "call to %s in integer context" f))

(* Comparison/logic over possibly-float operands, yielding int 0/1. *)
and compile_cond st lookup e : int -> int =
  match e with
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b)
    when join (ty_of lookup a) (ty_of lookup b) = EFloat ->
      if st.fast then begin
        (* accumulator form with a direct (monomorphic, allocation-free)
           comparison per operator: the generic [cmp] closure below would
           box both float arguments at every call *)
        let acc = st.acc in
        let fa = acompile_float st lookup a and fb = acompile_float st lookup b in
        match op with
        | Lt ->
            fun t ->
              fa t;
              let x = acc.Simc.v in
              fb t;
              if x < acc.Simc.v then 1 else 0
        | Le ->
            fun t ->
              fa t;
              let x = acc.Simc.v in
              fb t;
              if x <= acc.Simc.v then 1 else 0
        | Gt ->
            fun t ->
              fa t;
              let x = acc.Simc.v in
              fb t;
              if x > acc.Simc.v then 1 else 0
        | Ge ->
            fun t ->
              fa t;
              let x = acc.Simc.v in
              fb t;
              if x >= acc.Simc.v then 1 else 0
        | Eq ->
            fun t ->
              fa t;
              let x = acc.Simc.v in
              fb t;
              if x = acc.Simc.v then 1 else 0
        | Ne ->
            fun t ->
              fa t;
              let x = acc.Simc.v in
              fb t;
              if x <> acc.Simc.v then 1 else 0
        | _ -> assert false
      end
      else
        let fa = compile_float st lookup a and fb = compile_float st lookup b in
        let cmp : float -> float -> bool =
          match op with
          | Lt -> ( < )
          | Le -> ( <= )
          | Gt -> ( > )
          | Ge -> ( >= )
          | Eq -> ( = )
          | Ne -> ( <> )
          | _ -> assert false
        in
        fun t -> if cmp (fa t) (fb t) then 1 else 0
  | Binop (And, a, b) ->
      let fa = compile_cond st lookup a and fb = compile_cond st lookup b in
      fun t -> if fa t <> 0 && fb t <> 0 then 1 else 0
  | Binop (Or, a, b) ->
      let fa = compile_cond st lookup a and fb = compile_cond st lookup b in
      fun t -> if fa t <> 0 || fb t <> 0 then 1 else 0
  | Unop (Not, a) ->
      let f = compile_cond st lookup a in
      fun t -> if f t = 0 then 1 else 0
  | e -> compile_int st lookup e

(* Reference float compilation ([st.fast = false] launches): closures
   return their float (boxed per indirect call — fine for the reference
   semantics the bit-identity tests diff the fast paths against), every
   global read is individually checked, counted and access-traced. *)
and compile_float st lookup e : int -> float =
  match ty_of lookup e with
  | EInt ->
      let f = compile_int st lookup e in
      fun t -> float_of_int (f t)
  | EFloat -> (
      match e with
      | Double_lit f -> fun _ -> f
      | Var v -> (
          match lookup v with
          | Const_float f -> fun _ -> f
          | Float_slot s ->
              let arr = st.fregs.(s) in
              fun t -> arr.(t)
          | Const_int i -> fun _ -> float_of_int i
          | Int_slot s ->
              let arr = st.iregs.(s) in
              fun t -> float_of_int arr.(t)
          | Global _ | Shared _ -> err st (Printf.sprintf "array %s used as scalar" v))
      | Index (a, idxs) -> (
          match lookup a with
          | Global data ->
              let idx =
                match idxs with
                | [ i ] -> compile_int st lookup i
                | _ -> err st (Printf.sprintf "global array %s must use a single linearized index" a)
              in
              let n = A1.dim data in
              let stats = st.stats in
              let touched = usage_flag st.read_flags a in
              fun t ->
                let i = idx t in
                if i < 0 || i >= n then
                  err st (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
                else begin
                  (match !access_trace with Some f -> f ~write:false a i | None -> ());
                  stats.global_read_bytes <- stats.global_read_bytes + 8;
                  touched := true;
                  A1.unsafe_get data i
                end
          | Shared (slot, dims) ->
              let idx_fns = List.map (compile_int st lookup) idxs in
              let stats = st.stats in
              fun t ->
                let addr = shared_addr st dims idx_fns a t in
                if st.sh_epoch.(slot).(addr) = st.epoch && st.sh_writer.(slot).(addr) <> t
                   && st.sh_writer.(slot).(addr) >= 0
                then stats.shared_hazards <- stats.shared_hazards + 1;
                st.shmem.(slot).(addr)
          | _ -> err st (Printf.sprintf "%s indexed but is not an array" a))
      | Binop (op, a, b) -> (
          let fa = compile_float st lookup a
          and fb = compile_float st lookup b in
          match op with
          | Add -> fun t -> fa t +. fb t
          | Sub -> fun t -> fa t -. fb t
          | Mul -> fun t -> fa t *. fb t
          | Div -> fun t -> fa t /. fb t
          | Mod -> fun t -> Float.rem (fa t) (fb t)
          | _ -> err st "comparison in float context")
      | Unop (Neg, a) ->
          let f = compile_float st lookup a in
          fun t -> -.f t
      | Unop (Not, _) -> err st "logical not in float context"
      | Ternary (c, a, b) ->
          let fc = compile_cond st lookup c
          and fa = compile_float st lookup a
          and fb = compile_float st lookup b in
          fun t -> if fc t <> 0 then fa t else fb t
      | Call (fname, args) -> (
          let fargs = List.map (compile_float st lookup) args in
          match (fname, fargs) with
          | ("sqrt", [ a ]) -> fun t -> sqrt (a t)
          | ("fabs", [ a ]) | ("abs", [ a ]) -> fun t -> Float.abs (a t)
          | ("exp", [ a ]) -> fun t -> exp (a t)
          | ("log", [ a ]) -> fun t -> log (a t)
          | ("sin", [ a ]) -> fun t -> sin (a t)
          | ("cos", [ a ]) -> fun t -> cos (a t)
          | ("pow", [ a; b ]) -> fun t -> Float.pow (a t) (b t)
          | (("min" | "fmin"), [ a; b ]) -> fun t -> Float.min (a t) (b t)
          | (("max" | "fmax"), [ a; b ]) -> fun t -> Float.max (a t) (b t)
          | ("fma", [ a; b; c ]) -> fun t -> Float.fma (a t) (b t) (c t)
          | _ ->
              err st
                (Printf.sprintf "unsupported function %s/%d" fname (List.length args)))
      | Int_lit _ | Builtin _ -> assert false (* EInt-typed *))

(* Fast-path float compilation: closures deposit their result in
   [st.acc] instead of returning it, so the steady-state inner loop
   performs no allocation at all (a float return across an indirect call
   is boxed by the compiler). Every combination saves the left operand
   in an unboxed local between the two accumulator runs, reproducing the
   reference's left-associative evaluation — and therefore its rounding —
   bit for bit. [count = false] elides the per-read
   [global_read_bytes] bump: the caller has statically counted the reads
   in the whole expression and bumps the total once per statement
   execution. Only valid when the read count is not data-dependent (no
   [Ternary] on any path). *)
and acompile_float ?(count = true) st lookup e : int -> unit =
  let acc = st.acc in
  match ty_of lookup e with
  | EInt ->
      let f = compile_int st lookup e in
      fun t -> acc.Simc.v <- float_of_int (f t)
  | EFloat -> (
      match e with
      | Double_lit f -> fun _ -> acc.Simc.v <- f
      | Var v -> (
          match lookup v with
          | Const_float f -> fun _ -> acc.Simc.v <- f
          | Float_slot s ->
              let arr = st.fregs.(s) in
              fun t -> acc.Simc.v <- Array.unsafe_get arr t
          | Const_int i ->
              let f = float_of_int i in
              fun _ -> acc.Simc.v <- f
          | Int_slot s ->
              let arr = st.iregs.(s) in
              fun t -> acc.Simc.v <- float_of_int (Array.unsafe_get arr t)
          | Global _ | Shared _ -> err st (Printf.sprintf "array %s used as scalar" v))
      | Index (a, idxs) -> (
          match lookup a with
          | Global data -> (
              let single =
                match idxs with
                | [ i ] -> i
                | _ -> err st (Printf.sprintf "global array %s must use a single linearized index" a)
              in
              let n = A1.dim data in
              let stats = st.stats in
              let touched = usage_flag st.read_flags a in
              let oob i =
                err st (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
              in
              let slot v = match lookup v with Int_slot s -> Some st.iregs.(s) | _ -> None in
              (* fuse the post-affine index shapes (slot, slot +/- c) into
                 the read closure: one call, one bounds check, one load *)
              let fused =
                match single with
                | Var v -> Option.map (fun arr -> (arr, 0)) (slot v)
                | Binop (Add, Var v, Int_lit c) | Binop (Add, Int_lit c, Var v) ->
                    Option.map (fun arr -> (arr, c)) (slot v)
                | Binop (Sub, Var v, Int_lit c) -> Option.map (fun arr -> (arr, -c)) (slot v)
                | _ -> None
              in
              match fused with
              | Some (arr, off) when count ->
                  fun t ->
                    let i = Array.unsafe_get arr t + off in
                    if i < 0 || i >= n then oob i
                    else begin
                      stats.global_read_bytes <- stats.global_read_bytes + 8;
                      touched := true;
                      acc.Simc.v <- A1.unsafe_get data i
                    end
              | Some (arr, off) ->
                  fun t ->
                    let i = Array.unsafe_get arr t + off in
                    if i < 0 || i >= n then oob i
                    else begin
                      touched := true;
                      acc.Simc.v <- A1.unsafe_get data i
                    end
              | None ->
                  let idx = compile_int st lookup single in
                  if count then
                    fun t ->
                      let i = idx t in
                      if i < 0 || i >= n then oob i
                      else begin
                        stats.global_read_bytes <- stats.global_read_bytes + 8;
                        touched := true;
                        acc.Simc.v <- A1.unsafe_get data i
                      end
                  else
                    fun t ->
                      let i = idx t in
                      if i < 0 || i >= n then oob i
                      else begin
                        touched := true;
                        acc.Simc.v <- A1.unsafe_get data i
                      end)
          | Shared (slot, dims) ->
              let idx_fns = List.map (compile_int st lookup) idxs in
              let stats = st.stats in
              fun t ->
                let addr = shared_addr st dims idx_fns a t in
                if st.sh_epoch.(slot).(addr) = st.epoch && st.sh_writer.(slot).(addr) <> t
                   && st.sh_writer.(slot).(addr) >= 0
                then stats.shared_hazards <- stats.shared_hazards + 1;
                acc.Simc.v <- st.shmem.(slot).(addr)
          | _ -> err st (Printf.sprintf "%s indexed but is not an array" a))
      | Binop ((Add | Sub), _, _)
        when (let ts = sum_terms e [] in
              let k = List.length ts in
              (* every term float-typed: an all-int prefix would be
                 evaluated in integer arithmetic by the nested
                 compilation, which flattening must not change *)
              k >= 3 && k <= 8
              && List.for_all (fun (_, term) -> ty_of lookup term = EFloat) ts) -> (
          (* flatten the chain into one closure: same left-associative
             combination (and thus the same rounding) as the nested
             [Binop] compilation, without the intermediate dispatches *)
          let fns =
            List.map
              (fun (sign, term) ->
                let f = acompile_float ~count st lookup term in
                if sign then f
                else
                  fun t ->
                    f t;
                    acc.Simc.v <- -.acc.Simc.v)
              (sum_terms e [])
          in
          match Array.of_list fns with
          | [| a; b; c |] ->
              fun t ->
                a t;
                let s = acc.Simc.v in
                b t;
                let s = s +. acc.Simc.v in
                c t;
                acc.Simc.v <- s +. acc.Simc.v
          | [| a; b; c; d |] ->
              fun t ->
                a t;
                let s = acc.Simc.v in
                b t;
                let s = s +. acc.Simc.v in
                c t;
                let s = s +. acc.Simc.v in
                d t;
                acc.Simc.v <- s +. acc.Simc.v
          | [| a; b; c; d; e |] ->
              fun t ->
                a t;
                let s = acc.Simc.v in
                b t;
                let s = s +. acc.Simc.v in
                c t;
                let s = s +. acc.Simc.v in
                d t;
                let s = s +. acc.Simc.v in
                e t;
                acc.Simc.v <- s +. acc.Simc.v
          | [| a; b; c; d; e; f |] ->
              fun t ->
                a t;
                let s = acc.Simc.v in
                b t;
                let s = s +. acc.Simc.v in
                c t;
                let s = s +. acc.Simc.v in
                d t;
                let s = s +. acc.Simc.v in
                e t;
                let s = s +. acc.Simc.v in
                f t;
                acc.Simc.v <- s +. acc.Simc.v
          | [| a; b; c; d; e; f; g |] ->
              fun t ->
                a t;
                let s = acc.Simc.v in
                b t;
                let s = s +. acc.Simc.v in
                c t;
                let s = s +. acc.Simc.v in
                d t;
                let s = s +. acc.Simc.v in
                e t;
                let s = s +. acc.Simc.v in
                f t;
                let s = s +. acc.Simc.v in
                g t;
                acc.Simc.v <- s +. acc.Simc.v
          | [| a; b; c; d; e; f; g; h |] ->
              fun t ->
                a t;
                let s = acc.Simc.v in
                b t;
                let s = s +. acc.Simc.v in
                c t;
                let s = s +. acc.Simc.v in
                d t;
                let s = s +. acc.Simc.v in
                e t;
                let s = s +. acc.Simc.v in
                f t;
                let s = s +. acc.Simc.v in
                g t;
                let s = s +. acc.Simc.v in
                h t;
                acc.Simc.v <- s +. acc.Simc.v
          | _ -> assert false (* arity guarded above *))
      | Binop (Mul, a, b) when const_float_of lookup a <> None ->
          let c = Option.get (const_float_of lookup a) in
          let fb = acompile_float ~count st lookup b in
          fun t ->
            fb t;
            acc.Simc.v <- c *. acc.Simc.v
      | Binop (Mul, a, b) when const_float_of lookup b <> None ->
          let c = Option.get (const_float_of lookup b) in
          let fa = acompile_float ~count st lookup a in
          fun t ->
            fa t;
            acc.Simc.v <- acc.Simc.v *. c
      | Binop (op, a, b) -> (
          let fa = acompile_float ~count st lookup a
          and fb = acompile_float ~count st lookup b in
          match op with
          | Add ->
              fun t ->
                fa t;
                let x = acc.Simc.v in
                fb t;
                acc.Simc.v <- x +. acc.Simc.v
          | Sub ->
              fun t ->
                fa t;
                let x = acc.Simc.v in
                fb t;
                acc.Simc.v <- x -. acc.Simc.v
          | Mul ->
              fun t ->
                fa t;
                let x = acc.Simc.v in
                fb t;
                acc.Simc.v <- x *. acc.Simc.v
          | Div ->
              fun t ->
                fa t;
                let x = acc.Simc.v in
                fb t;
                acc.Simc.v <- x /. acc.Simc.v
          | Mod ->
              fun t ->
                fa t;
                let x = acc.Simc.v in
                fb t;
                acc.Simc.v <- Float.rem x acc.Simc.v
          | _ -> err st "comparison in float context")
      | Unop (Neg, a) ->
          let f = acompile_float ~count st lookup a in
          fun t ->
            f t;
            acc.Simc.v <- -.acc.Simc.v
      | Unop (Not, _) -> err st "logical not in float context"
      | Ternary (c, a, b) ->
          let fc = compile_cond st lookup c
          and fa = acompile_float st lookup a
          and fb = acompile_float st lookup b in
          fun t -> if fc t <> 0 then fa t else fb t
      | Call (fname, args) -> (
          let fargs = List.map (acompile_float ~count st lookup) args in
          match (fname, fargs) with
          | ("sqrt", [ a ]) ->
              fun t ->
                a t;
                acc.Simc.v <- sqrt acc.Simc.v
          | ("fabs", [ a ]) | ("abs", [ a ]) ->
              fun t ->
                a t;
                acc.Simc.v <- Float.abs acc.Simc.v
          | ("exp", [ a ]) ->
              fun t ->
                a t;
                acc.Simc.v <- exp acc.Simc.v
          | ("log", [ a ]) ->
              fun t ->
                a t;
                acc.Simc.v <- log acc.Simc.v
          | ("sin", [ a ]) ->
              fun t ->
                a t;
                acc.Simc.v <- sin acc.Simc.v
          | ("cos", [ a ]) ->
              fun t ->
                a t;
                acc.Simc.v <- cos acc.Simc.v
          | ("pow", [ a; b ]) ->
              fun t ->
                a t;
                let x = acc.Simc.v in
                b t;
                acc.Simc.v <- Float.pow x acc.Simc.v
          | (("min" | "fmin"), [ a; b ]) ->
              (* Stdlib [Float.min] inlined (its indirect call would box
                 both arguments): same -0.0 / nan discipline, bit for bit *)
              fun t ->
                a t;
                let x = acc.Simc.v in
                b t;
                let y = acc.Simc.v in
                acc.Simc.v <-
                  (if y > x || ((not (Float.sign_bit y)) && Float.sign_bit x) then
                     if y <> y then y else x
                   else if x <> x then x
                   else y)
          | (("max" | "fmax"), [ a; b ]) ->
              (* Stdlib [Float.max] inlined, same rationale *)
              fun t ->
                a t;
                let x = acc.Simc.v in
                b t;
                let y = acc.Simc.v in
                acc.Simc.v <-
                  (if y > x || ((not (Float.sign_bit y)) && Float.sign_bit x) then
                     if x <> x then x else y
                   else if y <> y then y
                   else x)
          | ("fma", [ a; b; c ]) ->
              fun t ->
                a t;
                let x = acc.Simc.v in
                b t;
                let y = acc.Simc.v in
                c t;
                acc.Simc.v <- Float.fma x y acc.Simc.v
          | _ ->
              err st
                (Printf.sprintf "unsupported function %s/%d" fname (List.length args)))
      | Int_lit _ | Builtin _ -> assert false (* EInt-typed *))

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

type cstmt =
  | Leaf of { fn : int -> unit; cond : (int -> int) option }
  | GLeaf of (int -> int) * (int -> unit) * (int -> unit)
      (* sync-free [If] whose condition is pure integer arithmetic
         (no array reads, calls, or trapping Div/Mod): the condition is
         evaluated once per thread, serving both the warp-divergence
         accounting and the branch dispatch, where [Leaf] evaluates it
         twice. Purity makes the single evaluation observationally
         identical. *)
  | CIf of (int -> int) * cstmt list * cstmt list
  | CFor of {
      set : int -> int -> unit;  (* thread -> value -> () *)
      get_lo : int -> int;
      get_hi : int -> int;
      step : int;
      body : cstmt list;
    }
  | CSync

let has_sync stmts =
  fold_stmts (fun acc s -> acc || s = Syncthreads) false stmts

let stmts_read_var = Simc.stmts_read_var

(* integer-only, side-effect-free, non-trapping conditions: evaluating
   them once (GLeaf) or twice (Leaf: divergence pass + dispatch) is
   indistinguishable — no stats, no memory traffic, no Sim_error *)
let pure_int_cond = Simc.pure_int_cond

let static_read_count = Simc.static_read_count

(* compile a statement list into a single per-thread closure (no syncs
   inside, guaranteed by caller) *)
let rec compile_thread_fn st lookup stmts : int -> unit =
  let fns = List.map (compile_thread_stmt st lookup) stmts in
  match fns with
  | [ f ] -> f
  | [ f; g ] when st.fast ->
      fun t ->
        f t;
        g t
  | [ f; g; h ] when st.fast ->
      fun t ->
        f t;
        g t;
        h t
  | fns when st.fast ->
      let a = Array.of_list fns in
      let n = Array.length a in
      fun t ->
        for i = 0 to n - 1 do
          (Array.unsafe_get a i) t
        done
  | fns -> fun t -> List.iter (fun f -> f t) fns

and compile_thread_stmt st lookup s : int -> unit =
  let stats = st.stats in
  match s with
  | Decl (_, v, None) ->
      ignore (lookup v);
      fun _ -> ()
  | Decl (_, v, Some e) | Assign (Lvar v, e) -> (
      match lookup v with
      | Int_slot slot -> (
          let arr = st.iregs.(slot) in
          match e with
          (* induction-variable increments from the affine pass *)
          | Binop (Add, Var v', Int_lit c) when st.fast && v' = v ->
              fun t -> Array.unsafe_set arr t (Array.unsafe_get arr t + c)
          | Binop (Add, Var v', Var s)
            when st.fast && v' = v && (match lookup s with Int_slot _ -> true | _ -> false) ->
              let sarr = match lookup s with Int_slot i -> st.iregs.(i) | _ -> assert false in
              fun t -> Array.unsafe_set arr t (Array.unsafe_get arr t + Array.unsafe_get sarr t)
          | _ ->
              let f = compile_int st lookup e in
              if st.fast then fun t -> Array.unsafe_set arr t (f t) else fun t -> arr.(t) <- f t)
      | Float_slot slot ->
          let flops = float_of_int (float_flops lookup e) in
          let arr = st.fregs.(slot) in
          if st.fast then begin
            (* fast mode: count the statement's global reads statically
               and bump the byte counter once per execution instead of
               once per read (the per-read order is only observable on an
               aborting launch, whose stats are unspecified); flops go to
               the unboxed [flacc] accumulator, folded into [stats.flops]
               at block exit *)
            let sreads = static_read_count lookup e in
            let rb = match sreads with Some k -> 8 * k | None -> 0 in
            let f = acompile_float ~count:(sreads = None) st lookup e in
            let acc = st.acc and fl = st.flacc in
            if rb = 0 && flops = 0.0 then
              fun t ->
                f t;
                Array.unsafe_set arr t acc.Simc.v
            else if rb = 0 then
              fun t ->
                f t;
                Array.unsafe_set arr t acc.Simc.v;
                fl.Simc.v <- fl.Simc.v +. flops
            else if flops = 0.0 then
              fun t ->
                f t;
                Array.unsafe_set arr t acc.Simc.v;
                stats.global_read_bytes <- stats.global_read_bytes + rb
            else
              fun t ->
                f t;
                Array.unsafe_set arr t acc.Simc.v;
                stats.global_read_bytes <- stats.global_read_bytes + rb;
                fl.Simc.v <- fl.Simc.v +. flops
          end
          else
            let f = compile_float st lookup e in
            if flops = 0.0 then fun t -> arr.(t) <- f t
            else
              fun t ->
                arr.(t) <- f t;
                stats.flops <- stats.flops +. flops
      | _ -> err st (Printf.sprintf "assignment to non-scalar %s" v))
  | Assign (Lindex (a, idxs), e) -> (
      match lookup a with
      | Global data when st.fast -> (
          let single =
            match idxs with
            | [ i ] -> i
            | _ -> err st (Printf.sprintf "global array %s must use a single linearized index" a)
          in
          let sreads = static_read_count lookup e in
          let rb = match sreads with Some k -> 8 * k | None -> 0 in
          let rhs = acompile_float ~count:(sreads = None) st lookup e in
          let flops = float_of_int (float_flops lookup e) in
          let n = A1.dim data in
          let touched = usage_flag st.write_flags a in
          let oob i =
            err st (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
          in
          let acc = st.acc and fl = st.flacc in
          let slot v = match lookup v with Int_slot s -> Some st.iregs.(s) | _ -> None in
          let fused =
            match single with
            | Var v -> Option.map (fun arr -> (arr, 0)) (slot v)
            | Binop (Add, Var v, Int_lit c) | Binop (Add, Int_lit c, Var v) ->
                Option.map (fun arr -> (arr, c)) (slot v)
            | Binop (Sub, Var v, Int_lit c) -> Option.map (fun arr -> (arr, -c)) (slot v)
            | _ -> None
          in
          match fused with
          | Some (arr, off) when rb = 0 ->
              fun t ->
                let i = Array.unsafe_get arr t + off in
                if i < 0 || i >= n then oob i
                else begin
                  rhs t;
                  A1.unsafe_set data i acc.Simc.v;
                  stats.global_write_bytes <- stats.global_write_bytes + 8;
                  fl.Simc.v <- fl.Simc.v +. flops;
                  touched := true
                end
          | Some (arr, off) ->
              fun t ->
                let i = Array.unsafe_get arr t + off in
                if i < 0 || i >= n then oob i
                else begin
                  rhs t;
                  A1.unsafe_set data i acc.Simc.v;
                  stats.global_read_bytes <- stats.global_read_bytes + rb;
                  stats.global_write_bytes <- stats.global_write_bytes + 8;
                  fl.Simc.v <- fl.Simc.v +. flops;
                  touched := true
                end
          | None ->
              let idx = compile_int st lookup single in
              fun t ->
                let i = idx t in
                if i < 0 || i >= n then oob i
                else begin
                  rhs t;
                  A1.unsafe_set data i acc.Simc.v;
                  stats.global_read_bytes <- stats.global_read_bytes + rb;
                  stats.global_write_bytes <- stats.global_write_bytes + 8;
                  fl.Simc.v <- fl.Simc.v +. flops;
                  touched := true
                end)
      | Global data ->
          let single =
            match idxs with
            | [ i ] -> i
            | _ -> err st (Printf.sprintf "global array %s must use a single linearized index" a)
          in
          let rhs = compile_float st lookup e in
          let flops = float_of_int (float_flops lookup e) in
          let n = A1.dim data in
          let touched = usage_flag st.write_flags a in
          let idx = compile_int st lookup single in
          fun t ->
            let i = idx t in
            if i < 0 || i >= n then
              err st (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
            else begin
              (match !access_trace with Some f -> f ~write:true a i | None -> ());
              A1.unsafe_set data i (rhs t);
              stats.global_write_bytes <- stats.global_write_bytes + 8;
              stats.flops <- stats.flops +. flops;
              touched := true
            end
      | Shared (slot, dims) ->
          let idx_fns = List.map (compile_int st lookup) idxs in
          let flops = float_of_int (float_flops lookup e) in
          if st.fast then
            let rhs = acompile_float st lookup e in
            let acc = st.acc and fl = st.flacc in
            fun t ->
              let addr = shared_addr st dims idx_fns a t in
              rhs t;
              st.shmem.(slot).(addr) <- acc.Simc.v;
              st.sh_writer.(slot).(addr) <- t;
              st.sh_epoch.(slot).(addr) <- st.epoch;
              fl.Simc.v <- fl.Simc.v +. flops
          else
            let rhs = compile_float st lookup e in
            fun t ->
              let addr = shared_addr st dims idx_fns a t in
              st.shmem.(slot).(addr) <- rhs t;
              st.sh_writer.(slot).(addr) <- t;
              st.sh_epoch.(slot).(addr) <- st.epoch;
              stats.flops <- stats.flops +. flops
      | _ -> err st (Printf.sprintf "%s is not an array" a))
  | If (c, tb, eb) ->
      let fc = compile_cond st lookup c in
      let ft = compile_thread_fn st lookup tb and fe = compile_thread_fn st lookup eb in
      fun t -> if fc t <> 0 then ft t else fe t
  | For l -> (
      match lookup l.index with
      | Int_slot slot ->
          let flo = compile_int st lookup l.lo and fhi = compile_int st lookup l.hi in
          let arr = st.iregs.(slot) in
          let step = l.step in
          if st.fast && not (stmts_read_var l.index l.body) then begin
            (* the body never reads the loop variable (the affine pass
               replaced every use): keep it in the local ref and publish
               only the final value, which is all later statements can
               observe *)
            (* split the trailing run of induction increments
               (v = v + c, v = v + stride — the shape the affine pass
               appends) off the body and drive them from parallel arrays:
               the hot loop then pays one indirect call per iteration
               instead of one per increment *)
            let inc_of s =
              match s with
              | Assign (Lvar v, Binop (Add, Var v', addend)) when v = v' -> (
                  match lookup v with
                  | Int_slot sl -> (
                      let nthreads = Array.length arr in
                      match addend with
                      | Int_lit c -> Some (st.iregs.(sl), Array.make nthreads c)
                      | Var sv -> (
                          match lookup sv with
                          | Int_slot ss -> Some (st.iregs.(sl), st.iregs.(ss))
                          | Const_int c -> Some (st.iregs.(sl), Array.make nthreads c)
                          | _ -> None)
                      | _ -> None)
                  | _ -> None)
              | _ -> None
            in
            let rec take_incs rev acc =
              match rev with
              | s :: rest -> (
                  match inc_of s with
                  | Some i -> take_incs rest (i :: acc)
                  | None -> (List.rev rev, acc))
              | [] -> ([], acc)
            in
            let prefix, incs = take_incs (List.rev l.body) [] in
            if List.length incs >= 2 then begin
              let body = compile_thread_fn st lookup prefix in
              let tgt = Array.of_list (List.map fst incs) in
              let adds = Array.of_list (List.map snd incs) in
              let k = Array.length tgt in
              fun t ->
                let hi = fhi t in
                let i = ref (flo t) in
                Array.unsafe_set arr t !i;
                while !i < hi do
                  body t;
                  for j = 0 to k - 1 do
                    let a = Array.unsafe_get tgt j in
                    Array.unsafe_set a t
                      (Array.unsafe_get a t
                      + Array.unsafe_get (Array.unsafe_get adds j) t)
                  done;
                  i := !i + step
                done;
                Array.unsafe_set arr t !i
            end
            else
              let body = compile_thread_fn st lookup l.body in
              fun t ->
                let hi = fhi t in
                let i = ref (flo t) in
                Array.unsafe_set arr t !i;
                while !i < hi do
                  body t;
                  i := !i + step
                done;
                Array.unsafe_set arr t !i
          end
          else
            let body = compile_thread_fn st lookup l.body in
            fun t ->
              let hi = fhi t in
              let i = ref (flo t) in
              arr.(t) <- !i;
              while !i < hi do
                body t;
                i := !i + step;
                arr.(t) <- !i
              done
      | _ -> err st (Printf.sprintf "loop index %s is not an int slot" l.index))
  | Return -> fun t -> st.alive.(t) <- false; raise Thread_exit
  | Shared_decl _ -> fun _ -> ()
  | Syncthreads -> err st "internal: __syncthreads inside a per-thread region"

let rec compile_stmt st lookup s : cstmt =
  if not (has_sync [ s ]) then
    match s with
    | If (c, tb, eb) when st.fast && pure_int_cond lookup c ->
        GLeaf
          ( compile_cond st lookup c,
            compile_thread_fn st lookup tb,
            compile_thread_fn st lookup eb )
    | _ ->
        let cond =
          match s with If (c, _, _) -> Some (compile_cond st lookup c) | _ -> None
        in
        Leaf { fn = compile_thread_stmt st lookup s; cond }
  else
    match s with
    | Syncthreads -> CSync
    | If (c, tb, eb) ->
        CIf (compile_cond st lookup c, compile_stmts st lookup tb, compile_stmts st lookup eb)
    | For l -> (
        match lookup l.index with
        | Int_slot slot ->
            let arr = st.iregs.(slot) in
            CFor
              {
                set = (fun t v -> arr.(t) <- v);
                get_lo = compile_int st lookup l.lo;
                get_hi = compile_int st lookup l.hi;
                step = l.step;
                body = compile_stmts st lookup l.body;
              }
        | _ -> err st (Printf.sprintf "loop index %s is not an int slot" l.index))
    | _ -> err st "internal: unexpected sync-carrying statement"

and compile_stmts st lookup stmts = List.map (compile_stmt st lookup) stmts

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let record_divergence st cond =
  let stats = st.stats in
  let n = st.nthreads in
  let warp_count = (n + 31) / 32 in
  for w = 0 to warp_count - 1 do
    let ones = ref 0 and zeros = ref 0 in
    for t = w * 32 to min n ((w + 1) * 32) - 1 do
      if st.alive.(t) then if cond t <> 0 then incr ones else incr zeros
    done;
    if !ones + !zeros > 0 then begin
      stats.warp_cond_evals <- stats.warp_cond_evals + 1;
      if !ones > 0 && !zeros > 0 then
        stats.divergent_warp_cond_evals <- stats.divergent_warp_cond_evals + 1
    end
  done

let first_alive st =
  let rec go t = if t >= st.nthreads then None else if st.alive.(t) then Some t else go (t + 1) in
  go 0

let rec exec_lockstep st cstmts = List.iter (exec_cstmt st) cstmts

and exec_cstmt st c =
  match c with
  | CSync -> st.epoch <- st.epoch + 1
  | Leaf { fn; cond } ->
      (match cond with Some f -> record_divergence st f | None -> ());
      if st.has_return then
        for t = 0 to st.nthreads - 1 do
          if st.alive.(t) then try fn t with Thread_exit -> ()
        done
      else
        (* no [return] in the kernel: alive never changes and Thread_exit
           cannot be raised, so run the tight loop *)
        for t = 0 to st.nthreads - 1 do
          fn t
        done
  | GLeaf (cond, ft, fe) ->
      (* one condition evaluation per thread feeds both the warp
         accounting and the branch dispatch; totals match the Leaf path
         (divergence pass then execution) because the condition is pure *)
      let stats = st.stats in
      let n = st.nthreads in
      let warp_count = (n + 31) / 32 in
      for w = 0 to warp_count - 1 do
        let ones = ref 0 and zeros = ref 0 in
        if st.has_return then
          for t = w * 32 to min n ((w + 1) * 32) - 1 do
            if st.alive.(t) then begin
              let c = cond t <> 0 in
              if c then incr ones else incr zeros;
              try if c then ft t else fe t with Thread_exit -> ()
            end
          done
        else
          for t = w * 32 to min n ((w + 1) * 32) - 1 do
            let c = cond t <> 0 in
            if c then incr ones else incr zeros;
            if c then ft t else fe t
          done;
        if !ones + !zeros > 0 then begin
          stats.warp_cond_evals <- stats.warp_cond_evals + 1;
          if !ones > 0 && !zeros > 0 then
            stats.divergent_warp_cond_evals <- stats.divergent_warp_cond_evals + 1
        end
      done
  | CIf (cond, tb, eb) -> (
      match first_alive st with
      | None -> ()
      | Some t0 ->
          let v0 = cond t0 <> 0 in
          for t = 0 to st.nthreads - 1 do
            if st.alive.(t) && cond t <> 0 <> v0 then
              err st "barrier divergence: non-uniform condition guards a __syncthreads region"
          done;
          exec_lockstep st (if v0 then tb else eb))
  | CFor { set; get_lo; get_hi; step; body } -> (
      match first_alive st with
      | None -> ()
      | Some t0 ->
          let lo = get_lo t0 and hi = get_hi t0 in
          for t = 0 to st.nthreads - 1 do
            if st.alive.(t) && (get_lo t <> lo || get_hi t <> hi) then
              err st "barrier divergence: non-uniform loop bounds around a __syncthreads region"
          done;
          let v = ref lo in
          while !v < hi do
            for t = 0 to st.nthreads - 1 do
              if st.alive.(t) then set t !v
            done;
            exec_lockstep st body;
            v := !v + step
          done)

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

let collect_scalar_slots = Simc.collect_scalar_slots

(* the flags are keyed by PARAMETER names; translate to host array names *)
let usage_to_host (kernel : kernel) args (read_params, write_params) =
  let binding = bind_args kernel args in
  let host p = match List.assoc_opt p binding with Some (Arg_array h) -> Some h | _ -> None in
  let collect params = List.filter_map host params |> List.sort_uniq compare in
  (collect read_params, collect write_params)

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

type backend = Auto | Interpret | Affine | Vector

let backend_name = function
  | Auto -> "auto"
  | Interpret -> "interp"
  | Affine -> "affine"
  | Vector -> "vector"

let backend_of_string = function
  | "auto" -> Some Auto
  | "interp" -> Some Interpret
  | "affine" -> Some Affine
  | "vector" -> Some Vector
  | _ -> None

(* the concrete backend a launch will execute on; pure — used by the
   framework stage report. [Vector] demurs to [Affine] when the launch
   is outside the vectorizable fragment. *)
let selected_backend ?(affine = true) ?backend prog l =
  match backend with
  | Some (Auto | Vector) -> if Vector.eligible prog l then Vector else Affine
  | Some Affine -> Affine
  | Some Interpret -> Interpret
  | None -> if affine then Affine else Interpret

(* test hook (re-exported from [Simc]): force the chunk count so the
   ordered-merge path is exercisable on single-core hosts *)
let chunk_override = Simc.chunk_override

(* Blocks are independent in the executed subset (no inter-block sync or
   atomics; kft_verify additionally proves per-thread write disjointness
   for verified kernels), so the grid loop fans out over the engine's
   domain pool in contiguous chunks of the linearized block range. Every
   per-block [stats] delta is recorded, then merged in block-index order
   whatever the chunking, so stats and memory are bit-identical at any
   jobs setting. Kernels with cross-block write overlap are undefined
   behaviour in CUDA itself; for those the sequential path keeps the
   last-writer-in-block-order result while parallel chunks may differ. *)
let launch_ext ?engine ?(affine = true) ?backend ?trace mem prog (l : launch) =
  Trace.with_span trace ("launch:" ^ l.l_kernel) @@ fun () ->
  let resolved =
    match backend with
    | Some Interpret -> `Lockstep false
    | Some Affine -> `Lockstep true
    | Some (Auto | Vector) -> `Try_vector
    | None -> `Lockstep affine
  in
  let vec =
    match resolved with
    | `Try_vector -> Vector.try_run ?engine mem prog l
    | `Lockstep _ -> None
  in
  match vec with
  | Some (stats, usage, nchunks) ->
      let kernel = find_kernel prog l.l_kernel in
      Trace.add trace "blocks" stats.blocks_launched;
      Trace.add trace "threads" stats.threads_launched;
      Trace.add trace "read_bytes" stats.global_read_bytes;
      Trace.add trace "write_bytes" stats.global_write_bytes;
      (* which backend ran is a pure function of the launch (eligibility
         is static), so it lives in the canonical channel; the chunk
         split varies with the worker count and stays a side note *)
      Trace.set trace "backend" (Trace.Str "vector");
      Trace.note trace "chunks" (Trace.Int nchunks);
      (stats, usage_to_host kernel l.l_args usage)
  | None ->
  let affine =
    match resolved with
    | `Lockstep a -> a
    | `Try_vector -> true  (* outside the fragment: best lockstep mode *)
  in
  let kernel = find_kernel prog l.l_kernel in
  let bound = bind_args kernel l.l_args in
  let bx, by, bz = l.l_block in
  let gx, gy, gz = grid_of_launch l in
  let nthreads = bx * by * bz in
  if nthreads <= 0 then raise (Sim_error { kernel = l.l_kernel; message = "empty thread block" });
  (* substitute blockDim/gridDim by constants, then strength-reduce the
     affine index expressions, before slot collection and compilation *)
  let body =
    map_exprs_in_stmts
      (function
        | Builtin (Block_dim X) -> Int_lit bx
        | Builtin (Block_dim Y) -> Int_lit by
        | Builtin (Block_dim Z) -> Int_lit bz
        | Builtin (Grid_dim X) -> Int_lit gx
        | Builtin (Grid_dim Y) -> Int_lit gy
        | Builtin (Grid_dim Z) -> Int_lit gz
        | e -> e)
      kernel.k_body
  in
  let body = if affine then Affine.rewrite_stmts body else body in
  let table, n_int, n_float, shared_decls =
    collect_scalar_slots kernel.k_name body kernel.k_params
  in
  (* parameters become constants / array bindings *)
  List.iter
    (fun (p, a) ->
      let b =
        match (p, a) with
        | _, Arg_array host -> (
            match Memory.get mem host with
            | data -> Global data
            | exception Memory.Unknown_array name ->
                raise
                  (Sim_error
                     { kernel = kernel.k_name; message = "unknown device array " ^ name }))
        | _, Arg_int i -> Const_int i
        | _, Arg_double f -> Const_float f
      in
      Hashtbl.replace table p b)
    bound;
  List.iteri
    (fun i (n, dims) -> Hashtbl.replace table n (Shared (i, dims)))
    shared_decls;
  let shared_bytes =
    List.fold_left (fun acc (_, dims) -> acc + (8 * List.fold_left ( * ) 1 dims)) 0 shared_decls
  in
  let blocks = gx * gy * gz in
  let has_return = fold_stmts (fun acc s -> acc || s = Return) false body in
  let txs = Array.init nthreads (fun t -> t mod bx)
  and tys = Array.init nthreads (fun t -> t / bx mod by)
  and tzs = Array.init nthreads (fun t -> t / (bx * by)) in
  let per_block =
    Array.init blocks (fun _ -> zero_stats ~shared_bytes_per_block:shared_bytes ~blocks_launched:1)
  in
  (* Each chunk compiles against its own state (closures capture the
     register files), walks its contiguous block range and returns the
     parameter names it observed reading/writing. [table] and [body] are
     shared read-only. *)
  let run_chunk (b_lo, b_hi) =
    let st =
      {
        kernel_name = kernel.k_name;
        bx; by; bz;
        nthreads;
        txs; tys; tzs;
        bix = 0; biy = 0; biz = 0;
        iregs = Array.init n_int (fun _ -> Array.make nthreads 0);
        fregs = Array.init n_float (fun _ -> Array.make nthreads 0.0);
        shmem = Array.of_list (List.map (fun (_, d) -> Array.make (List.fold_left ( * ) 1 d) 0.0) shared_decls);
        sh_writer = Array.of_list (List.map (fun (_, d) -> Array.make (List.fold_left ( * ) 1 d) (-1)) shared_decls);
        sh_epoch = Array.of_list (List.map (fun (_, d) -> Array.make (List.fold_left ( * ) 1 d) (-1)) shared_decls);
        epoch = 0;
        alive = Array.make nthreads true;
        stats = zero_stats ~shared_bytes_per_block:shared_bytes ~blocks_launched:1;
        has_return;
        fast = affine;
        read_flags = Hashtbl.create 8;
        write_flags = Hashtbl.create 8;
        acc = { Simc.v = 0.0 };
        flacc = { Simc.v = 0.0 };
      }
    in
    let lookup v =
      match Hashtbl.find_opt table v with
      | Some b -> b
      | None -> err st (Printf.sprintf "unbound identifier %s" v)
    in
    let compiled = compile_stmts st lookup body in
    let stats = st.stats in
    for b = b_lo to b_hi do
      let base = copy_stats stats in
      st.bix <- b mod gx;
      st.biy <- b / gx mod gy;
      st.biz <- b / (gx * gy);
      if has_return then Array.fill st.alive 0 nthreads true;
      st.epoch <- 0;
      Array.iter (fun a -> Array.fill a 0 (Array.length a) 0.0) st.shmem;
      Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) st.sh_writer;
      Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) st.sh_epoch;
      exec_lockstep st compiled;
      Array.iter (fun alive -> if alive then stats.threads_active <- stats.threads_active + 1) st.alive;
      (* fold the fast path's unboxed flop accumulator into the stats
         record once per block — [base] saw the previous block's fold, so
         the delta below is exactly this block's contribution *)
      if st.fast then stats.flops <- st.flacc.Simc.v;
      per_block.(b) <- diff_stats stats base
    done;
    let observed tbl = Hashtbl.fold (fun p r acc -> if !r then p :: acc else acc) tbl [] in
    (observed st.read_flags, observed st.write_flags)
  in
  let jobs = match engine with Some e -> Engine.jobs e | None -> 1 in
  let workers = match engine with Some e -> Engine.workers e | None -> 1 in
  (* adaptive serial fallback (see [Simc.chunks_for]): launches smaller
     than ~4 blocks per worker, or pools with a single worker domain,
     pay chunked recompilation and pool coordination without usable
     parallelism — those run sequentially *)
  let nchunks = Simc.chunks_for ~jobs ~workers ~blocks in
  let ranges =
    List.init nchunks (fun c ->
        (c * blocks / nchunks, ((c + 1) * blocks / nchunks) - 1))
  in
  let usages =
    match engine with
    | Some e when nchunks > 1 -> Engine.map e run_chunk ranges
    | _ -> List.map run_chunk ranges
  in
  (* deterministic merge: block-index order, independent of chunking *)
  let stats = zero_stats ~shared_bytes_per_block:shared_bytes ~blocks_launched:blocks in
  stats.threads_launched <- nthreads * blocks;
  Array.iter
    (fun b ->
      stats.global_read_bytes <- stats.global_read_bytes + b.global_read_bytes;
      stats.global_write_bytes <- stats.global_write_bytes + b.global_write_bytes;
      stats.flops <- stats.flops +. b.flops;
      stats.warp_cond_evals <- stats.warp_cond_evals + b.warp_cond_evals;
      stats.divergent_warp_cond_evals <-
        stats.divergent_warp_cond_evals + b.divergent_warp_cond_evals;
      stats.shared_hazards <- stats.shared_hazards + b.shared_hazards;
      stats.threads_active <- stats.threads_active + b.threads_active)
    per_block;
  let reads = List.concat_map fst usages and writes = List.concat_map snd usages in
  (* per-launch trace record: block/byte totals are pure functions of the
     launch (canonical channel); the chunk split varies with the worker
     count and stays in the side channel *)
  Trace.add trace "blocks" blocks;
  Trace.add trace "threads" stats.threads_launched;
  Trace.add trace "read_bytes" stats.global_read_bytes;
  Trace.add trace "write_bytes" stats.global_write_bytes;
  Trace.set trace "backend" (Trace.Str (if affine then "affine" else "interp"));
  Trace.note trace "chunks" (Trace.Int nchunks);
  (stats, usage_to_host kernel l.l_args (List.sort_uniq compare reads, List.sort_uniq compare writes))

let launch ?engine ?affine ?backend ?trace mem prog l =
  fst (launch_ext ?engine ?affine ?backend ?trace mem prog l)

let launch_with_usage = launch_ext

let run_schedule ?engine ?affine ?backend ?trace mem prog =
  List.filter_map
    (function
      | Launch l -> Some (l, launch ?engine ?affine ?backend ?trace mem prog l)
      | Copy_to_device _ | Copy_to_host _ -> None)
    prog.p_schedule
