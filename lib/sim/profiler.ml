open Kft_cuda.Ast

type kernel_profile = {
  kernel : string;
  launch : launch;
  stats : Interp.stats;
  timing : Timing.breakdown;
  regs_per_thread : int;
  cost : Kft_analysis.Cost.t;
  access : (Kft_analysis.Access.kernel_access_info, Kft_analysis.Access.failure_reason) result;
}

type run = {
  profiles : kernel_profile list;
  total_time_us : float;
  memory : Memory.t;
}

let profile_launch ?engine ?affine ?backend ?trace device mem prog l =
  let kernel = find_kernel prog l.l_kernel in
  let stats = Interp.launch ?engine ?affine ?backend ?trace mem prog l in
  let env = Kft_analysis.Access.env_of_launch prog l in
  let cost = Kft_analysis.Cost.of_kernel kernel env in
  let regs_per_thread = Kft_analysis.Cost.estimate_registers kernel in
  let timing =
    Timing.evaluate
      { device; stats; block = l.l_block; regs_per_thread; dependent_chain = cost.dependent_chain }
  in
  let access = Kft_analysis.Access.analyze_result kernel env in
  { kernel = l.l_kernel; launch = l; stats; timing; regs_per_thread; cost; access }

let profile_with_memory ?engine ?affine ?backend ?trace device mem prog =
  let profiles =
    List.filter_map
      (function
        | Launch l -> Some (profile_launch ?engine ?affine ?backend ?trace device mem prog l)
        | Copy_to_device _ | Copy_to_host _ -> None)
      prog.p_schedule
  in
  {
    profiles;
    total_time_us = List.fold_left (fun acc p -> acc +. p.timing.Timing.runtime_us) 0.0 profiles;
    memory = mem;
  }

let profile ?engine ?affine ?backend ?trace ?layout ?(seed = 42) device prog =
  let mem = Memory.create ?layout prog.p_arrays in
  Memory.init_seeded mem ~seed;
  profile_with_memory ?engine ?affine ?backend ?trace device mem prog

let verify ?engine ?affine ?backend ?trace ?(seed = 42) ?(tol = 1e-9) device ~original ~transformed =
  let run p =
    let mem = Memory.create p.p_arrays in
    Memory.init_seeded mem ~seed;
    ignore (profile_with_memory ?engine ?affine ?backend ?trace device mem p);
    mem
  in
  let m1 = run original and m2 = run transformed in
  (* [max_abs_diff] spans the union of array names; verification keeps
     its documented contract of comparing arrays common to both
     programs (a transformation may add or drop temporaries) *)
  let diffs =
    List.filter
      (fun (n, d) -> Memory.mem m1 n && Memory.mem m2 n && d > tol)
      (Memory.max_abs_diff m1 m2)
  in
  (* both memories are private to this verification: recycle their
     arenas instead of waiting for the GC *)
  Memory.release m1;
  Memory.release m2;
  if diffs = [] then Ok () else Error diffs

let speedup ~original ~transformed =
  if transformed.total_time_us <= 0.0 then infinity
  else original.total_time_us /. transformed.total_time_us
