open Kft_cuda.Ast

module A1 = Bigarray.Array1

(* Off-heap storage: the GC never scans a Bigarray's payload, so
   multi-hundred-KB grids cost nothing per minor collection, and
   [A1.blit] over float64 is a straight memcpy. float64 Bigarray cells
   and [float array] cells are the same IEEE-754 doubles, so swapping
   the representation cannot perturb a single bit of any result. *)
type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let alloc_buf n : buf = A1.create Bigarray.Float64 Bigarray.C_layout n

let empty_buf : buf = alloc_buf 0

type entry = { data : buf; edims : int list }

(* One contiguous arena per memory; every entry is a zero-copy
   [A1.sub] view into it, laid out in sorted name order (the same
   packing order snapshots have always used). [directory] rows are
   (name, dims, offset); a row's length is the product of its dims, so
   an overlay layout may alias rows onto shared cells. *)
type t = {
  arena : buf;  (** may be larger than [total] when recycled from the pool *)
  total : int;  (** cells actually used, starting at offset 0 *)
  directory : (string * int list * int) array;
  tbl : (string, entry) Hashtbl.t;
  seed_order : string list;
      (** [init_seeded] fills arrays in this order; under an overlay
          layout later names win on shared cells *)
  mutable released : bool;
}

(* A liveness-driven overlay: entries whose live ranges never require
   both values at once may share arena cells, so [l_total] can be
   smaller than the packed sum of extents. Produced by
   Kft_schedflow.Schedflow.arena_layout; only sound for runs whose
   final memory is discarded (the overlay preserves every value any
   read observes, not the end-of-run contents of shared slots). *)
type layout = {
  l_offsets : (string * int) list;  (** array name -> cell offset *)
  l_total : int;  (** arena cells; <= packed total when slots are shared *)
  l_seed_order : string list;
      (** seeding order; arrays whose initial values must survive on a
          shared slot come last *)
}

exception Unknown_array of string

(* ------------------------------------------------------------------ *)
(* Arena pool                                                          *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type stats = {
    requests : int;  (** arena acquisitions: create + copy + restore *)
    hits : int;  (** served by recycling a released arena *)
    misses : int;  (** served by a fresh allocation *)
    cells_requested : int;  (** total cells across all requests *)
    high_water : int;  (** peak cells simultaneously checked out *)
  }

  let m = Mutex.create ()

  (* free arenas sorted by capacity ascending, so acquisition is
     smallest-fit: the first arena large enough wins, keeping big
     arenas available for big requests *)
  let free : buf list ref = ref []

  (* bound the arenas we hoard: a long bench run cycles through many
     differently-sized programs, and beyond this depth recycling stops
     paying for the retained address space. A dropped arena is freed by
     the Bigarray finalizer like any other. *)
  let max_free = 32

  let requests = ref 0
  let hits = ref 0
  let misses = ref 0
  let cells_requested = ref 0
  let live = ref 0
  let high_water = ref 0

  let stats () =
    Mutex.protect m (fun () ->
        {
          requests = !requests;
          hits = !hits;
          misses = !misses;
          cells_requested = !cells_requested;
          high_water = !high_water;
        })

  let reset () =
    Mutex.protect m (fun () ->
        free := [];
        requests := 0;
        hits := 0;
        misses := 0;
        cells_requested := 0;
        live := 0;
        high_water := 0)

  let acquire n =
    Mutex.protect m (fun () ->
        incr requests;
        cells_requested := !cells_requested + n;
        let rec take acc = function
          | [] -> None
          | a :: rest when A1.dim a >= n ->
              free := List.rev_append acc rest;
              Some a
          | a :: rest -> take (a :: acc) rest
        in
        let arena =
          match take [] !free with
          | Some a ->
              incr hits;
              a
          | None ->
              incr misses;
              alloc_buf n
        in
        live := !live + A1.dim arena;
        if !live > !high_water then high_water := !live;
        arena)

  let release_arena a =
    Mutex.protect m (fun () ->
        live := !live - A1.dim a;
        if List.length !free < max_free then begin
          let d = A1.dim a in
          let rec insert = function
            | [] -> [ a ]
            | b :: rest when A1.dim b >= d -> a :: b :: rest
            | b :: rest -> b :: insert rest
          in
          free := insert !free
        end)
end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Build the view table over [arena] from a directory whose offsets are
   a packed prefix of length [total]. The directory is immutable and is
   shared freely between memories and snapshots. *)
let dims_cells dims = List.fold_left ( * ) 1 dims

let of_arena ?seed_order arena total directory =
  let n = Array.length directory in
  let tbl = Hashtbl.create (max 32 n) in
  Array.iter
    (fun (name, edims, off) ->
      Hashtbl.replace tbl name { data = A1.sub arena off (dims_cells edims); edims })
    directory;
  let seed_order =
    match seed_order with
    | Some o -> o
    | None -> Array.to_list (Array.map (fun (name, _, _) -> name) directory)
  in
  { arena; total; directory; tbl; seed_order; released = false }

let create ?layout decls =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d.a_name then
        invalid_arg ("Memory.create: duplicate array " ^ d.a_name);
      if d.a_elem_ty <> Double then
        invalid_arg ("Memory.create: only double arrays are supported: " ^ d.a_name);
      Hashtbl.replace seen d.a_name ())
    decls;
  let sorted = List.sort (fun a b -> compare a.a_name b.a_name) decls in
  let directory, total, seed_order =
    match layout with
    | None ->
        let off = ref 0 in
        let rows =
          List.map
            (fun d ->
              let row = (d.a_name, d.a_dims, !off) in
              off := !off + array_cells d;
              row)
            sorted
        in
        (Array.of_list rows, !off, None)
    | Some l ->
        let rows =
          List.map
            (fun d ->
              match List.assoc_opt d.a_name l.l_offsets with
              | None -> invalid_arg ("Memory.create: layout misses array " ^ d.a_name)
              | Some off ->
                  if off < 0 || off + array_cells d > l.l_total then
                    invalid_arg ("Memory.create: layout overflows arena at " ^ d.a_name);
                  (d.a_name, d.a_dims, off))
            sorted
        in
        List.iter
          (fun d ->
            if not (List.exists (fun n -> n = d.a_name) l.l_seed_order) then
              invalid_arg ("Memory.create: layout seed order misses " ^ d.a_name))
          sorted;
        (Array.of_list rows, l.l_total, Some l.l_seed_order)
  in
  let arena = Pool.acquire total in
  (* [A1.create] does not zero memory (and a recycled arena holds the
     previous tenant's data): restore the zero-initialized contract *)
  A1.fill (A1.sub arena 0 total) 0.0;
  of_arena ?seed_order arena total directory

(* splitmix64-style hash, kept in int range *)
let mix h =
  let h = h * 0x9E3779B1 land max_int in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA77 land max_int in
  h lxor (h lsr 13)

let init_seeded t ~seed =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | None -> ()
      | Some e ->
          let name_hash = Hashtbl.hash name in
          for i = 0 to A1.dim e.data - 1 do
            let h = mix (seed + (name_hash * 31) + (i * 2654435761)) in
            (* values in (-1, 1), never exactly 0 to catch masking bugs *)
            A1.unsafe_set e.data i
              ((float_of_int (h land 0xFFFFF) +. 1.0)
              /. 1048577.0
              *. (if h land 0x100000 = 0 then 1.0 else -1.0))
          done)
    t.seed_order

let find t name =
  if t.released then invalid_arg ("Memory.find: use after release: " ^ name);
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e
  | None -> raise (Unknown_array name)

let get t name = (find t name).data

let get_array t name =
  let b = (find t name).data in
  Array.init (A1.dim b) (fun i -> A1.unsafe_get b i)

let dims t name = (find t name).edims

let mem t name = Hashtbl.mem t.tbl name

let names t = Array.to_list (Array.map (fun (n, _, _) -> n) t.directory)

let copy t =
  if t.released then invalid_arg "Memory.copy: use after release";
  let arena = Pool.acquire t.total in
  A1.blit (A1.sub t.arena 0 t.total) (A1.sub arena 0 t.total);
  of_arena arena t.total t.directory

let release t =
  if t.released then invalid_arg "Memory.release: memory already released";
  t.released <- true;
  Hashtbl.reset t.tbl;
  Pool.release_arena t.arena

(* Snapshots reuse the arena layout directly: entries are already
   packed in sorted name order, so capture is one [A1.blit] of the used
   prefix into a fresh exact-size buffer (not pooled — snapshots live
   indefinitely inside Metadata.Sim_cache, and parking them in the pool
   would leak them out of cache entries). Restore is the mirror blit
   into a pooled arena. *)
type snapshot = {
  s_directory : (string * int list * int) array;
  s_total : int;
  s_buf : buf;
}

let snapshot t =
  if t.released then invalid_arg "Memory.snapshot: use after release";
  let buf = alloc_buf t.total in
  A1.blit (A1.sub t.arena 0 t.total) buf;
  { s_directory = t.directory; s_total = t.total; s_buf = buf }

let restore s =
  let arena = Pool.acquire s.s_total in
  A1.blit s.s_buf (A1.sub arena 0 s.s_total);
  of_arena arena s.s_total s.s_directory

let max_abs_diff a b =
  List.sort_uniq compare (names a @ names b)
  |> List.map (fun n ->
         if not (mem a n && mem b n) then (n, infinity)
         else
           let da = get a n and db = get b n in
           if A1.dim da <> A1.dim db then (n, infinity)
           else begin
             let m = ref 0.0 in
             for i = 0 to A1.dim da - 1 do
               let d = Float.abs (A1.unsafe_get da i -. A1.unsafe_get db i) in
               if d > !m then m := d
             done;
             (n, !m)
           end)

let equal_within ~tol a b = List.for_all (fun (_, d) -> d <= tol) (max_abs_diff a b)
