open Kft_cuda.Ast

type entry = { data : float array; edims : int list }

type t = (string, entry) Hashtbl.t

exception Unknown_array of string

let create decls =
  let t = Hashtbl.create 32 in
  List.iter
    (fun d ->
      if Hashtbl.mem t d.a_name then invalid_arg ("Memory.create: duplicate array " ^ d.a_name);
      if d.a_elem_ty <> Double then
        invalid_arg ("Memory.create: only double arrays are supported: " ^ d.a_name);
      Hashtbl.replace t d.a_name { data = Array.make (array_cells d) 0.0; edims = d.a_dims })
    decls;
  t

(* splitmix64-style hash, kept in int range *)
let mix h =
  let h = h * 0x9E3779B1 land max_int in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA77 land max_int in
  h lxor (h lsr 13)

let init_seeded t ~seed =
  Hashtbl.iter
    (fun name e ->
      let name_hash = Hashtbl.hash name in
      Array.iteri
        (fun i _ ->
          let h = mix (seed + (name_hash * 31) + (i * 2654435761)) in
          (* values in (-1, 1), never exactly 0 to catch masking bugs *)
          e.data.(i) <- (float_of_int (h land 0xFFFFF) +. 1.0) /. 1048577.0 *. (if h land 0x100000 = 0 then 1.0 else -1.0))
        e.data)
    t

let find t name =
  match Hashtbl.find_opt t name with
  | Some e -> e
  | None -> raise (Unknown_array name)

let get t name = (find t name).data

let dims t name = (find t name).edims

let mem t name = Hashtbl.mem t name

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let copy t =
  let t' = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun k e -> Hashtbl.replace t' k { e with data = Array.copy e.data }) t;
  t'

(* Snapshots pack every array into one contiguous buffer (entries in
   sorted name order, so snapshots of equal memories are structurally
   equal). Capture and restore are pure [Array.blit]s over float arrays —
   no per-element boxing, no serialization — which is what makes cache
   replay (Metadata.Sim_cache) cheap enough to matter. *)
type snapshot = { s_entries : (string * int list * int) array; s_buf : float array }

let snapshot t =
  let names_sorted = names t in
  let total = List.fold_left (fun acc n -> acc + Array.length (get t n)) 0 names_sorted in
  let buf = Array.make total 0.0 in
  let off = ref 0 in
  let entries =
    List.map
      (fun n ->
        let e = find t n in
        let len = Array.length e.data in
        Array.blit e.data 0 buf !off len;
        let entry = (n, e.edims, !off) in
        off := !off + len;
        entry)
      names_sorted
  in
  { s_entries = Array.of_list entries; s_buf = buf }

let restore s =
  let t = Hashtbl.create (Array.length s.s_entries) in
  let n = Array.length s.s_entries in
  Array.iteri
    (fun i (name, edims, off) ->
      let next = if i + 1 < n then (fun (_, _, o) -> o) s.s_entries.(i + 1) else Array.length s.s_buf in
      let data = Array.make (next - off) 0.0 in
      Array.blit s.s_buf off data 0 (next - off);
      Hashtbl.replace t name { data; edims })
    s.s_entries;
  t

let max_abs_diff a b =
  List.sort_uniq compare (names a @ names b)
  |> List.map (fun n ->
         if not (mem a n && mem b n) then (n, infinity)
         else
           let da = get a n and db = get b n in
           if Array.length da <> Array.length db then (n, infinity)
           else begin
             let m = ref 0.0 in
             Array.iteri (fun i v -> m := max !m (Float.abs (v -. db.(i)))) da;
             (n, !m)
           end)

let equal_within ~tol a b = List.for_all (fun (_, d) -> d <= tol) (max_abs_diff a b)
