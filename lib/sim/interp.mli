(** Functional GPU simulator: a bulk-synchronous lockstep interpreter
    for the CUDA subset.

    Execution model: thread blocks run independently (optionally in
    parallel over an engine's domain pool, see {!launch}); inside a
    block, statements that contain no [__syncthreads()] execute
    thread-by-thread (two observations make this sound for the supported
    subset: race-free kernels are order-insensitive, and racy ones are
    undefined behaviour in real CUDA — the hazard detector reports
    them); statements that do contain a barrier execute in lockstep with
    uniformity checks, exactly the discipline real CUDA requires of
    barriers.

    The interpreter doubles as the instrumentation layer of Section 5.1:
    it counts global traffic, floating-point operations, intra-warp
    divergence of conditionals and shared-memory hazards, which the
    profiler turns into the paper's performance metadata. *)

type stats = Simc.stats = {
  mutable global_read_bytes : int;
  mutable global_write_bytes : int;
  mutable flops : float;
  mutable warp_cond_evals : int;
      (** warp-granularity evaluations of thread-dependent conditionals *)
  mutable divergent_warp_cond_evals : int;
  mutable shared_hazards : int;
      (** same-epoch cross-thread shared-memory read-after-write pairs:
          potential races a missing barrier would expose *)
  mutable threads_launched : int;
  mutable threads_active : int;  (** threads never disabled by [return] and executing at least one write *)
  shared_bytes_per_block : int;
  blocks_launched : int;
}

val divergence_fraction : stats -> float

val copy_stats : stats -> stats
(** A fresh record with the same counters, so a cached profile can be
    replayed without aliasing its mutable fields. *)

exception
  Sim_error of {
    kernel : string;
    message : string;
  }
(** Out-of-bounds accesses, barrier divergence, unbound names, arity
    errors. The same exception (physically: a rebinding of
    {!Simc.Sim_error}) is raised by every execution backend. *)

type backend =
  | Auto  (** vectorized when the launch is eligible, affine otherwise *)
  | Interpret  (** the reference interpreter ([affine:false]) *)
  | Affine  (** lockstep with affine strength reduction (the default) *)
  | Vector  (** whole-grid vectorized; falls back to [Affine] when the
                launch is outside the provable fragment *)
(** Execution backend selection. All backends produce bit-identical
    memory, statistics and usage — backend choice is purely a
    performance decision, which is what licenses [Auto] as a default. *)

val backend_name : backend -> string
(** ["auto"] / ["interp"] / ["affine"] / ["vector"]. *)

val backend_of_string : string -> backend option
(** Inverse of {!backend_name} (the CLI flag values). *)

val selected_backend :
  ?affine:bool -> ?backend:backend ->
  Kft_cuda.Ast.program -> Kft_cuda.Ast.launch -> backend
(** The concrete backend ({!Interpret}, {!Affine} or {!Vector}) a launch
    with these options will execute on. Pure: runs the (static)
    eligibility analysis only. *)

val chunk_override : int option ref
(** Test hook (shared with the vector backend): force the block-range
    chunk count, bypassing the adaptive serial-fallback policy, so the
    ordered-merge path can be exercised deterministically on single-core
    hosts. Reset to [None] after use. *)

val access_trace : (write:bool -> string -> int -> unit) option ref
(** Test hook: when set, every in-bounds global-memory access taken on
    the interpretive (non-affine) path reports its direction, array name
    and linear element index. The optimized affine path does not trace —
    run with [affine:false] (and no [engine]: the callback is invoked
    from worker domains otherwise). Reset to [None] after use. *)

val launch :
  ?engine:Kft_engine.Engine.t -> ?affine:bool -> ?backend:backend ->
  ?trace:Kft_trace.Trace.t ->
  Memory.t -> Kft_cuda.Ast.program -> Kft_cuda.Ast.launch -> stats
(** Execute one kernel launch against device memory, returning its
    execution statistics.

    [engine] fans the grid's linearized block range out over the
    engine's domain pool in contiguous chunks (blocks are independent:
    the subset has no inter-block synchronization, and kft_verify proves
    per-thread write disjointness for verified kernels). Per-block stats
    deltas are merged in block-index order whatever the chunking, so
    stats and final memory are bit-identical at any jobs setting —
    including sequential (no engine, the default). A failing launch
    raises the same [Sim_error] (that of the lowest failing block) in
    either mode.

    [affine] (default [true]) enables {!Affine} strength reduction of
    index expressions before compilation; it is observation-preserving
    (same values, same stats), only faster.

    [backend] overrides the execution backend (see {!backend});
    when absent, [affine] picks between the two lockstep modes as
    before. [Auto]/[Vector] run the whole-grid vectorized backend when
    the launch is in the provable fragment — results are bit-identical
    whichever backend executes.

    [trace] records one [launch:<kernel>] span per call with block,
    thread and read/write byte totals plus the executed backend name in
    the canonical channel, and the block-chunk split in the side channel
    (see {!Kft_trace.Trace}). The trace is only touched from the calling
    (coordinator) domain. *)

val launch_with_usage :
  ?engine:Kft_engine.Engine.t -> ?affine:bool -> ?backend:backend ->
  ?trace:Kft_trace.Trace.t ->
  Memory.t -> Kft_cuda.Ast.program -> Kft_cuda.Ast.launch ->
  stats * (string list * string list)
(** Like {!launch}, additionally returning the host arrays the launch
    dynamically (actually) read and wrote. This is the "pre-run to
    detect the data usage pattern" the paper proposes as the practical
    answer to pointer aliasing (Section 7): a dynamic ground truth to
    validate the static dependence analysis against. *)

val run_schedule :
  ?engine:Kft_engine.Engine.t -> ?affine:bool -> ?backend:backend ->
  ?trace:Kft_trace.Trace.t ->
  Memory.t -> Kft_cuda.Ast.program -> (Kft_cuda.Ast.launch * stats) list
(** Execute every [Launch] of the program's schedule in order ([Copy_*]
    markers are no-ops for the simulator: memory is unified). *)
