open Ast

exception Parse_error of { line : int; col : int; message : string }

type state = { mutable toks : (Lexer.token * Loc.pos) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let pos st = match st.toks with (_, p) :: _ -> p | [] -> Loc.none

let fail st message =
  let p = pos st in
  raise (Parse_error { line = p.Loc.line; col = p.Loc.col; message })

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail st (Printf.sprintf "expected identifier but found %s" (Lexer.token_to_string t))

let expect_int st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | t -> fail st (Printf.sprintf "expected integer literal but found %s" (Lexer.token_to_string t))

let scalar_ty_of_token = function
  | Lexer.KW_INT -> Some Int
  | Lexer.KW_DOUBLE -> Some Double
  | Lexer.KW_BOOL -> Some Bool
  | _ -> None

let dim_of_string st = function
  | "x" -> X
  | "y" -> Y
  | "z" -> Z
  | s -> fail st (Printf.sprintf "expected dimension x, y or z but found %S" s)

let builtin_base = function
  | "threadIdx" -> Some (fun d -> Thread_idx d)
  | "blockIdx" -> Some (fun d -> Block_idx d)
  | "blockDim" -> Some (fun d -> Block_dim d)
  | "gridDim" -> Some (fun d -> Grid_dim d)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                   *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_or st in
  if peek st = Lexer.QUESTION then begin
    advance st;
    let a = parse_expr st in
    expect st Lexer.COLON;
    let b = parse_ternary st in
    Ternary (c, a, b)
  end
  else c

and parse_or st =
  let rec loop acc =
    if peek st = Lexer.BARBAR then begin
      advance st;
      loop (Binop (Or, acc, parse_and st))
    end
    else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if peek st = Lexer.AMPAMP then begin
      advance st;
      loop (Binop (And, acc, parse_equality st))
    end
    else acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    match peek st with
    | Lexer.EQEQ ->
        advance st;
        loop (Binop (Eq, acc, parse_relational st))
    | Lexer.NE ->
        advance st;
        loop (Binop (Ne, acc, parse_relational st))
    | _ -> acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    match peek st with
    | Lexer.LT -> advance st; loop (Binop (Lt, acc, parse_additive st))
    | Lexer.LE -> advance st; loop (Binop (Le, acc, parse_additive st))
    | Lexer.GT -> advance st; loop (Binop (Gt, acc, parse_additive st))
    | Lexer.GE -> advance st; loop (Binop (Ge, acc, parse_additive st))
    | _ -> acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Binop (Add, acc, parse_multiplicative st))
    | Lexer.MINUS -> advance st; loop (Binop (Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR -> advance st; loop (Binop (Mul, acc, parse_unary st))
    | Lexer.SLASH -> advance st; loop (Binop (Div, acc, parse_unary st))
    | Lexer.PERCENT -> advance st; loop (Binop (Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS -> (
      advance st;
      (* fold negated literals so printed negative constants re-parse to
         the same tree *)
      match parse_unary st with
      | Int_lit n -> Int_lit (-n)
      | Double_lit f -> Double_lit (-.f)
      | e -> Unop (Neg, e))
  | Lexer.BANG ->
      advance st;
      Unop (Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Int_lit i
  | Lexer.FLOAT f ->
      advance st;
      Double_lit f
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      advance st;
      match builtin_base name with
      | Some mk when peek st = Lexer.DOT ->
          advance st;
          let d = dim_of_string st (expect_ident st) in
          Builtin (mk d)
      | _ ->
          if peek st = Lexer.LPAREN then begin
            advance st;
            let args = parse_args st in
            expect st Lexer.RPAREN;
            Call (name, args)
          end
          else begin
            let idxs = parse_indices st in
            if idxs = [] then Var name else Index (name, idxs)
          end)
  | t -> fail st (Printf.sprintf "expected expression but found %s" (Lexer.token_to_string t))

and parse_args st =
  if peek st = Lexer.RPAREN then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if peek st = Lexer.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

and parse_indices st =
  let rec loop acc =
    if peek st = Lexer.LBRACK then begin
      advance st;
      let e = parse_expr st in
      expect st Lexer.RBRACK;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let desugar_compound lv op rhs =
  let as_expr = match lv with Lvar v -> Var v | Lindex (a, idxs) -> Index (a, idxs) in
  Assign (lv, Binop (op, as_expr, rhs))

let rec parse_stmt st =
  (* Capture the position of the statement's first token and remember it
     for the constructed node (see {!Loc}). *)
  let p = pos st in
  Loc.record (parse_stmt_raw st) p

and parse_stmt_raw st =
  match peek st with
  | Lexer.KW_SHARED ->
      advance st;
      let ty =
        match scalar_ty_of_token (peek st) with
        | Some ty ->
            advance st;
            ty
        | None -> fail st "expected element type after __shared__"
      in
      let name = expect_ident st in
      let rec dims acc =
        if peek st = Lexer.LBRACK then begin
          advance st;
          let d = expect_int st in
          expect st Lexer.RBRACK;
          dims (d :: acc)
        end
        else List.rev acc
      in
      let ds = dims [] in
      if ds = [] then fail st "__shared__ declaration requires constant array extents";
      expect st Lexer.SEMI;
      Shared_decl (ty, name, ds)
  | Lexer.KW_INT | Lexer.KW_DOUBLE | Lexer.KW_BOOL ->
      let ty = Option.get (scalar_ty_of_token (peek st)) in
      advance st;
      let name = expect_ident st in
      let init =
        if peek st = Lexer.ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Lexer.SEMI;
      Decl (ty, name, init)
  | Lexer.KW_SYNCTHREADS ->
      advance st;
      expect st Lexer.LPAREN;
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Syncthreads
  | Lexer.KW_RETURN ->
      advance st;
      expect st Lexer.SEMI;
      Return
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      let then_branch = parse_block_or_stmt st in
      let else_branch =
        if peek st = Lexer.KW_ELSE then begin
          advance st;
          parse_block_or_stmt st
        end
        else []
      in
      If (c, then_branch, else_branch)
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      expect st Lexer.KW_INT;
      let index = expect_ident st in
      expect st Lexer.ASSIGN;
      let lo = parse_expr st in
      expect st Lexer.SEMI;
      let cond_var = expect_ident st in
      if cond_var <> index then
        fail st
          (Printf.sprintf "for-loop condition must test the loop index %S, found %S" index cond_var);
      expect st Lexer.LT;
      let hi = parse_expr st in
      expect st Lexer.SEMI;
      let update_var = expect_ident st in
      if update_var <> index then
        fail st
          (Printf.sprintf "for-loop update must modify the loop index %S, found %S" index update_var);
      let step =
        match peek st with
        | Lexer.PLUSPLUS ->
            advance st;
            1
        | Lexer.PLUS_ASSIGN ->
            advance st;
            expect_int st
        | t -> fail st (Printf.sprintf "expected ++ or += in for-loop update, found %s" (Lexer.token_to_string t))
      in
      expect st Lexer.RPAREN;
      let body = parse_block_or_stmt st in
      For { index; lo; hi; step; body }
  | Lexer.IDENT _ ->
      let name = expect_ident st in
      let idxs = parse_indices st in
      let lv = if idxs = [] then Lvar name else Lindex (name, idxs) in
      let s =
        match peek st with
        | Lexer.ASSIGN ->
            advance st;
            Assign (lv, parse_expr st)
        | Lexer.PLUS_ASSIGN ->
            advance st;
            desugar_compound lv Add (parse_expr st)
        | Lexer.MINUS_ASSIGN ->
            advance st;
            desugar_compound lv Sub (parse_expr st)
        | Lexer.STAR_ASSIGN ->
            advance st;
            desugar_compound lv Mul (parse_expr st)
        | Lexer.SLASH_ASSIGN ->
            advance st;
            desugar_compound lv Div (parse_expr st)
        | t -> fail st (Printf.sprintf "expected assignment operator, found %s" (Lexer.token_to_string t))
      in
      expect st Lexer.SEMI;
      s
  | t -> fail st (Printf.sprintf "expected statement but found %s" (Lexer.token_to_string t))

and parse_block st =
  expect st Lexer.LBRACE;
  let rec loop acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else if peek st = Lexer.SEMI then begin
      (* stray empty statement *)
      advance st;
      loop acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_block_or_stmt st =
  if peek st = Lexer.LBRACE then parse_block st else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)
(* ------------------------------------------------------------------ *)

let parse_param st =
  let const = peek st = Lexer.KW_CONST in
  if const then advance st;
  let ty =
    match scalar_ty_of_token (peek st) with
    | Some ty ->
        advance st;
        ty
    | None -> fail st "expected parameter type"
  in
  if peek st = Lexer.STAR then begin
    advance st;
    let restrict = peek st = Lexer.KW_RESTRICT in
    if restrict then advance st;
    let name = expect_ident st in
    let quals = (if const then [ Const ] else []) @ if restrict then [ Restrict ] else [] in
    Array_param { name; elem_ty = ty; quals }
  end
  else begin
    if const then fail st "const scalar parameters are not supported";
    let name = expect_ident st in
    Scalar_param { name; ty }
  end

let parse_kernel st =
  expect st Lexer.KW_GLOBAL;
  expect st Lexer.KW_VOID;
  let k_name = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    if peek st = Lexer.RPAREN then []
    else
      let rec loop acc =
        let p = parse_param st in
        if peek st = Lexer.COMMA then begin
          advance st;
          loop (p :: acc)
        end
        else List.rev (p :: acc)
      in
      loop []
  in
  expect st Lexer.RPAREN;
  let k_body = parse_block st in
  { k_name; k_params = params; k_body }

let with_state src f =
  match Lexer.tokenize src with
  | toks -> f { toks }
  | exception Lexer.Lex_error { line; col; message } -> raise (Parse_error { line; col; message })

let kernels src =
  with_state src (fun st ->
      let rec loop acc =
        if peek st = Lexer.EOF then List.rev acc else loop (parse_kernel st :: acc)
      in
      loop [])

let kernel src =
  match kernels src with
  | [ k ] -> k
  | ks ->
      raise
        (Parse_error
           {
             line = 1;
             col = 1;
             message = Printf.sprintf "expected exactly one kernel, found %d" (List.length ks);
           })

let expr src =
  with_state src (fun st ->
      let e = parse_expr st in
      expect st Lexer.EOF;
      e)

let stmts src =
  with_state src (fun st ->
      let rec loop acc =
        if peek st = Lexer.EOF then List.rev acc
        else if peek st = Lexer.SEMI then begin
          advance st;
          loop acc
        end
        else loop (parse_stmt st :: acc)
      in
      loop [])

let _ = peek2
