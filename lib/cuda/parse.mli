(** Recursive-descent parser for the CUDA C subset (the ROSE frontend
    stand-in). Accepts exactly the statement/expression forms of
    {!Ast}; anything else raises {!Parse_error} with a line number and
    message, mirroring how the paper's frontend rejects unsupported
    stencil forms (Section 7). *)

exception Parse_error of { line : int; col : int; message : string }

val kernels : string -> Ast.kernel list
(** Parse a compilation unit of [__global__] function definitions.
    Non-kernel top-level text is not supported. *)

val kernel : string -> Ast.kernel
(** Parse exactly one kernel definition. *)

val expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and by programmer
    amendments to metadata files). *)

val stmts : string -> Ast.stmt list
(** Parse a standalone statement sequence (no surrounding braces). *)
