type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW_GLOBAL
  | KW_SHARED
  | KW_RESTRICT
  | KW_SYNCTHREADS
  | KW_VOID
  | KW_INT
  | KW_DOUBLE
  | KW_BOOL
  | KW_CONST
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | COMMA | SEMI | QUESTION | COLON | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE | AMPAMP | BARBAR | BANG
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PLUSPLUS
  | EOF

exception Lex_error of { line : int; col : int; message : string }

let keyword_table =
  [
    ("__global__", KW_GLOBAL);
    ("__shared__", KW_SHARED);
    ("__restrict__", KW_RESTRICT);
    ("__syncthreads", KW_SYNCTHREADS);
    ("void", KW_VOID);
    ("int", KW_INT);
    ("double", KW_DOUBLE);
    ("float", KW_DOUBLE); (* floats are widened: the subset is double-precision *)
    ("bool", KW_BOOL);
    ("const", KW_CONST);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("for", KW_FOR);
    ("return", KW_RETURN);
  ]

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | KW_GLOBAL -> "__global__"
  | KW_SHARED -> "__shared__"
  | KW_RESTRICT -> "__restrict__"
  | KW_SYNCTHREADS -> "__syncthreads"
  | KW_VOID -> "void"
  | KW_INT -> "int"
  | KW_DOUBLE -> "double"
  | KW_BOOL -> "bool"
  | KW_CONST -> "const"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACK -> "[" | RBRACK -> "]"
  | COMMA -> "," | SEMI -> ";" | QUESTION -> "?" | COLON -> ":" | DOT -> "."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NE -> "!="
  | AMPAMP -> "&&" | BARBAR -> "||" | BANG -> "!"
  | ASSIGN -> "=" | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-=" | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/=" | PLUSPLUS -> "++"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let line_start = ref 0 in
  let toks = ref [] in
  let emit_at start t =
    toks := (t, { Loc.line = !line; col = start - !line_start + 1 }) :: !toks
  in
  let error i msg = raise (Lex_error { line = !line; col = i - !line_start + 1; message = msg }) in
  let i = ref 0 in
  let emit t = emit_at !i t in
  while !i < n do
    let c = src.[!i] in
    let peek k = if !i + k < n then Some src.[!i + k] else None in
    match c with
    | '\n' ->
        incr line;
        incr i;
        line_start := !i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when peek 1 = Some '/' ->
        while !i < n && src.[!i] <> '\n' do incr i done
    | '/' when peek 1 = Some '*' ->
        i := !i + 2;
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '\n' then begin incr line; line_start := !i + 1 end;
          if src.[!i] = '*' && peek 1 = Some '/' then begin
            closed := true;
            i := !i + 2
          end
          else incr i
        done;
        if not !closed then error !i "unterminated comment"
    | c when is_ident_start c ->
        let start = !i in
        while !i < n && is_ident_char src.[!i] do incr i done;
        let word = String.sub src start (!i - start) in
        (match List.assoc_opt word keyword_table with
        | Some kw -> emit_at start kw
        | None -> emit_at start (IDENT word))
    | c when is_digit c ->
        let start = !i in
        while !i < n && is_digit src.[!i] do incr i done;
        let is_float = ref false in
        if !i < n && src.[!i] = '.' then begin
          is_float := true;
          incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          is_float := true;
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        (* C float suffixes *)
        if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then begin
          is_float := true;
          incr i
        end;
        let text = String.sub src start (!i - start) in
        let text =
          if String.length text > 0 && (text.[String.length text - 1] = 'f' || text.[String.length text - 1] = 'F')
          then String.sub text 0 (String.length text - 1)
          else text
        in
        if !is_float then emit_at start (FLOAT (float_of_string text))
        else emit_at start (INT (int_of_string text))
    | '(' -> emit LPAREN; incr i
    | ')' -> emit RPAREN; incr i
    | '{' -> emit LBRACE; incr i
    | '}' -> emit RBRACE; incr i
    | '[' -> emit LBRACK; incr i
    | ']' -> emit RBRACK; incr i
    | ',' -> emit COMMA; incr i
    | ';' -> emit SEMI; incr i
    | '?' -> emit QUESTION; incr i
    | ':' -> emit COLON; incr i
    | '.' -> emit DOT; incr i
    | '+' when peek 1 = Some '+' -> emit PLUSPLUS; i := !i + 2
    | '+' when peek 1 = Some '=' -> emit PLUS_ASSIGN; i := !i + 2
    | '+' -> emit PLUS; incr i
    | '-' when peek 1 = Some '=' -> emit MINUS_ASSIGN; i := !i + 2
    | '-' -> emit MINUS; incr i
    | '*' when peek 1 = Some '=' -> emit STAR_ASSIGN; i := !i + 2
    | '*' -> emit STAR; incr i
    | '/' when peek 1 = Some '=' -> emit SLASH_ASSIGN; i := !i + 2
    | '/' -> emit SLASH; incr i
    | '%' -> emit PERCENT; incr i
    | '<' when peek 1 = Some '=' -> emit LE; i := !i + 2
    | '<' -> emit LT; incr i
    | '>' when peek 1 = Some '=' -> emit GE; i := !i + 2
    | '>' -> emit GT; incr i
    | '=' when peek 1 = Some '=' -> emit EQEQ; i := !i + 2
    | '=' -> emit ASSIGN; incr i
    | '!' when peek 1 = Some '=' -> emit NE; i := !i + 2
    | '!' -> emit BANG; incr i
    | '&' when peek 1 = Some '&' -> emit AMPAMP; i := !i + 2
    | '|' when peek 1 = Some '|' -> emit BARBAR; i := !i + 2
    | c -> error !i (Printf.sprintf "unexpected character %C" c)
  done;
  emit EOF;
  List.rev !toks
