(* Command-line terms for the kft / kft-transform binaries.

   The binaries under bin/ are one-line wrappers over this library so
   the CLI smoke tests can evaluate the exact production terms
   in-process with [Cmd.eval ~argv] and capture their output, instead
   of depending on installed executables.  Nothing here calls [exit];
   every action returns the process exit code. *)

open Cmdliner
module L = Kft_absint.Lint
module Trace = Kft_trace.Trace

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* ------------------------------------------------------------------ *)
(* kft lint                                                            *)
(* ------------------------------------------------------------------ *)

let lint_apps () = Kft_apps.Apps.quickstart () :: Kft_apps.Apps.all ()

(* measured global traffic, summed per kernel over the schedule (the
   lint rule only consumes it for kernels launched exactly once) *)
let measured_of device (a : Kft_apps.Apps.app) =
  let run = Kft_sim.Profiler.profile device a.program in
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Kft_sim.Profiler.kernel_profile) ->
      let b =
        float_of_int
          (p.stats.Kft_sim.Interp.global_read_bytes
         + p.stats.Kft_sim.Interp.global_write_bytes)
      in
      let cur = match Hashtbl.find_opt tbl p.kernel with Some c -> c | None -> 0.0 in
      Hashtbl.replace tbl p.kernel (cur +. b))
    run.profiles;
  ( a.program.Kft_cuda.Ast.p_name,
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) )

let lint_run json jobs strict no_profile only trace_file =
  let apps = lint_apps () in
  let known (a : Kft_apps.Apps.app) = a.program.Kft_cuda.Ast.p_name in
  match
    ( only,
      List.filter (fun n -> not (List.exists (fun a -> known a = n) apps)) only )
  with
  | _ :: _, (_ :: _ as bad) ->
      Printf.eprintf "kft lint: unknown program%s %s (have: %s)\n"
        (if List.length bad = 1 then "" else "s")
        (String.concat ", " bad)
        (String.concat ", " (List.map known apps));
      2
  | only, _ ->
      let apps =
        match only with
        | [] -> apps
        | names -> List.filter (fun a -> List.mem (known a) names) apps
      in
      let trace =
        match trace_file with Some _ -> Some (Trace.create "kft-lint") | None -> None
      in
      let measured =
        if no_profile then []
        else List.map (measured_of Kft_device.Device.k20x) apps
      in
      let findings =
        Trace.with_span trace "lint" (fun () ->
            let fs =
              L.programs ~jobs ~measured
                (List.map (fun (a : Kft_apps.Apps.app) -> a.program) apps)
            in
            (* per-program child spans carry the per-rule counters; the
               batch above already ran, so these record counts only
               (their wall clock is a side channel anyway) *)
            List.iter
              (fun a ->
                Trace.with_span trace ("lint:" ^ known a) (fun () ->
                    let mine =
                      List.filter (fun f -> f.L.f_program = known a) fs
                    in
                    List.iter
                      (fun (rule, n) -> Trace.add trace rule n)
                      (L.rule_counts mine);
                    Trace.add trace "findings" (List.length mine)))
              apps;
            Trace.add trace "warnings" (L.warnings fs);
            Trace.add trace "infos" (L.infos fs);
            Trace.note trace "jobs" (Trace.Int jobs);
            fs)
      in
      (match (trace_file, trace) with
      | Some path, Some t -> write_file path (Trace.render_json t)
      | _ -> ());
      print_string (if json then L.render_json findings else L.render_human findings);
      if L.warnings findings > 0 || (strict && L.infos findings > 0) then 1 else 0

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON document (stable field order, byte-identical across $(b,--jobs) settings).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Analyze programs on $(docv) worker domains. The output is identical at any worker count.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on advisory (info) findings too, not just warnings.")
  in
  let no_profile =
    Arg.(value & flag & info [ "no-profile" ] ~doc:"Skip the simulator pre-run; disables the footprint-drift cross-check.")
  in
  let only =
    Arg.(value & opt_all string [] & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Lint only the named program(s); repeatable. Default: quickstart plus all bundled applications.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write a deterministic machine-JSON trace (kft_trace) with per-program, per-rule finding counters.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static diagnostics from the abstract-interpretation analyzer"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs kft_absint over every launch of every selected program and \
              reports: unprovable or out-of-bounds accesses ($(b,bounds)), \
              global accesses with a non-unit threadIdx.x stride \
              ($(b,uncoalesced)), shared-memory bank conflicts \
              ($(b,bank-conflict)), static/measured traffic disagreements \
              ($(b,footprint-drift)), undecidable thread-dependent guards \
              ($(b,divergent-guard)) and statically decided guards \
              ($(b,dead-guard)).";
           `P "Exits 1 if any warning is found (with $(b,--strict), any finding).";
         ])
    Term.(const lint_run $ json $ jobs $ strict $ no_profile $ only $ trace_file)

(* ------------------------------------------------------------------ *)
(* kft schedflow                                                       *)
(* ------------------------------------------------------------------ *)

module Sf = Kft_schedflow.Schedflow

(* analyze the selected programs, optionally on worker domains; the
   output order is the (deterministic) app order, so the rendering is
   byte-identical at any worker count *)
let schedflow_analyses ~jobs progs =
  let arr = Array.of_list progs in
  let n = Array.length arr in
  let out = Array.make n None in
  let work i = out.(i) <- Some (Sf.analyze arr.(i)) in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let domains =
      List.init jobs (fun j ->
          Domain.spawn (fun () ->
              let i = ref j in
              while !i < n do
                work !i;
                i := !i + jobs
              done))
    in
    List.iter Domain.join domains
  end;
  List.filter_map Fun.id (Array.to_list out)

let schedflow_run json jobs strict only trace_file =
  let apps = lint_apps () in
  let known (a : Kft_apps.Apps.app) = a.program.Kft_cuda.Ast.p_name in
  match
    ( only,
      List.filter (fun n -> not (List.exists (fun a -> known a = n) apps)) only )
  with
  | _ :: _, (_ :: _ as bad) ->
      Printf.eprintf "kft schedflow: unknown program%s %s (have: %s)\n"
        (if List.length bad = 1 then "" else "s")
        (String.concat ", " bad)
        (String.concat ", " (List.map known apps));
      2
  | only, _ ->
      let apps =
        match only with
        | [] -> apps
        | names -> List.filter (fun a -> List.mem (known a) names) apps
      in
      let trace =
        match trace_file with Some _ -> Some (Trace.create "kft-schedflow") | None -> None
      in
      let analyses =
        Trace.with_span trace "schedflow" (fun () ->
            let ts =
              schedflow_analyses ~jobs
                (List.map (fun (a : Kft_apps.Apps.app) -> a.program) apps)
            in
            List.iter
              (fun (sf : Sf.t) ->
                Trace.with_span trace ("schedflow:" ^ sf.Sf.program.Kft_cuda.Ast.p_name)
                  (fun () ->
                    let s = sf.Sf.stats in
                    Trace.add trace "ops" s.Sf.st_ops;
                    Trace.add trace "launches" s.st_launches;
                    Trace.add trace "arrays" s.st_arrays;
                    Trace.add trace "deps" s.st_deps;
                    Trace.add trace "deps_refined" s.st_deps_refined;
                    Trace.add trace "regions_proved" s.st_regions_proved;
                    Trace.add trace "regions_fallback" s.st_regions_fallback;
                    Trace.add trace "issues" (List.length sf.Sf.issues);
                    Trace.add trace "findings" (List.length (Sf.lint sf))))
              ts;
            Trace.note trace "jobs" (Trace.Int jobs);
            ts)
      in
      (match (trace_file, trace) with
      | Some path, Some t -> write_file path (Trace.render_json t)
      | _ -> ());
      print_string
        (if json then Sf.render_json analyses
         else String.concat "" (List.map Sf.render_human analyses));
      let findings = L.normalize (List.concat_map Sf.lint analyses) in
      let issues = List.concat_map (fun (sf : Sf.t) -> sf.Sf.issues) analyses in
      if
        issues <> []
        || L.warnings findings > 0
        || (strict && L.infos findings > 0)
      then 1
      else 0

let schedflow_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the analysis as one JSON document (stable field order, byte-identical across $(b,--jobs) settings).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Analyze programs on $(docv) worker domains. The output is identical at any worker count.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on advisory (info) findings too, not just dataflow issues and warnings.")
  in
  let only =
    Arg.(value & opt_all string [] & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Analyze only the named program(s); repeatable. Default: quickstart plus all bundled applications.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write a deterministic machine-JSON trace (kft_trace) with per-program dataflow counters.")
  in
  Cmd.v
    (Cmd.info "schedflow"
       ~doc:"Whole-schedule inter-kernel dataflow and liveness analysis"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the array-granularity schedule dependence graph of every \
              selected program: per-operation read/write sets (element regions \
              where the abstract domain proves them, whole arrays otherwise), \
              per-array liveness intervals, RAW/WAR/WAW dependences, and the \
              dataflow issues (non-input arrays read before any write, stores \
              never read back). Also reports the schedule-level lint rules: \
              arrays that are dead end-to-end ($(b,dead-array)), pure \
              copy launches whose proved footprints match ($(b,redundant-copy)) \
              and single-use temporaries that could live in faster storage \
              ($(b,transient-global)).";
           `P
             "Exits 1 on any dataflow issue or warning finding (with \
              $(b,--strict), any finding).";
         ])
    Term.(const schedflow_run $ json $ jobs $ strict $ only $ trace_file)

let kft_cmd =
  Cmd.group
    (Cmd.info "kft" ~version:"1.0.0"
       ~doc:"Static analysis companion tools for the transformation framework")
    [ lint_cmd; schedflow_cmd ]

let kft_main ?argv () = Cmd.eval' ?argv kft_cmd

(* ------------------------------------------------------------------ *)
(* kft-transform                                                       *)
(* ------------------------------------------------------------------ *)

let transform_apps () = Kft_apps.Apps.quickstart () :: Kft_apps.Apps.all ()

let list_apps () =
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      Printf.printf "%-13s %3d kernels, %3d arrays  -- %s\n" a.app_name
        (List.length a.program.p_kernels)
        (List.length a.program.p_arrays)
        a.description)
    (transform_apps ())

let transform_run app_name device_name generations population jobs no_memo no_sim_cache
    no_fission no_tuning expert_codegen filter verify seed out_dir emit_cuda quiet list
    trace_file chrome_file backend_name no_schedflow =
  if list then begin
    list_apps ();
    `Ok ()
  end
  else
    match Kft_sim.Interp.backend_of_string backend_name with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown backend %S (expected auto, interp, affine or vector)"
              backend_name )
    | Some backend -> (
    match Kft_apps.Apps.by_name app_name with
    | None ->
        `Error (false, Printf.sprintf "unknown application %S (try --list)" app_name)
    | Some app -> (
        match Kft_device.Device.by_name device_name with
        | None -> `Error (false, Printf.sprintf "unknown device %S" device_name)
        | Some base_device ->
            let device =
              (* the bundled apps are scaled down; scale the launch
                 overhead with them (see DESIGN.md) *)
              { base_device with kernel_launch_overhead_us = 0.3 }
            in
            let codegen_options =
              let base =
                if expert_codegen then Kft_codegen.Fusion.manual_options
                else Kft_codegen.Fusion.auto_options
              in
              { base with tune_blocks = not no_tuning }
            in
            let config =
              {
                Kft_framework.Framework.default_config with
                device;
                filter_mode =
                  (match filter with
                  | "auto" -> Kft_framework.Framework.Automated
                  | "manual" -> Kft_framework.Framework.Manual
                  | _ -> Kft_framework.Framework.No_filtering);
                verify_mode =
                  (match verify with
                  | "off" -> Kft_framework.Framework.Verify_off
                  | "fatal" -> Kft_framework.Framework.Verify_fatal
                  | _ -> Kft_framework.Framework.Verify_advisory);
                codegen_options;
                sim_cache =
                  (if no_sim_cache then None
                   else Kft_framework.Framework.default_config.sim_cache);
                seed;
                gga_params =
                  {
                    Kft_gga.Gga.default_params with
                    generations;
                    population;
                    fission_enabled = not no_fission;
                    seed;
                  };
                backend;
                schedflow = not no_schedflow;
              }
            in
            let trace =
              match (trace_file, chrome_file) with
              | None, None -> None
              | _ -> Some (Trace.create "kft-transform")
            in
            let report =
              Kft_engine.Engine.with_engine ~jobs ~memo:(not no_memo) (fun engine ->
                  Kft_framework.Framework.transform ~config ~engine ?trace app.program)
            in
            if not quiet then print_string (Kft_framework.Framework.stage_report report);
            (match (trace_file, trace) with
            | Some path, Some t ->
                write_file path (Trace.render_json t);
                if not quiet then Printf.printf "trace written to %s\n" path
            | _ -> ());
            (match (chrome_file, trace) with
            | Some path, Some t ->
                write_file path (Trace.render_chrome t);
                if not quiet then Printf.printf "chrome trace written to %s\n" path
            | _ -> ());
            (match out_dir with
            | Some dir ->
                if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
                Kft_metadata.Metadata.to_files report.metadata ~dir;
                let write name contents =
                  write_file (Filename.concat dir name) contents
                in
                write "ddg.dot" (Kft_ddg.Ddg.ddg_dot report.graphs);
                write "oeg.dot" (Kft_ddg.Ddg.oeg_dot report.graphs);
                write "ddg_new.dot" (Kft_ddg.Ddg.ddg_dot report.new_graphs);
                write "oeg_new.dot" (Kft_ddg.Ddg.oeg_dot report.new_graphs);
                write "gga.params" (Kft_gga.Gga.params_to_text config.gga_params);
                Printf.printf "stage artifacts written to %s/\n" dir
            | None -> ());
            (match emit_cuda with
            | Some path ->
                write_file path (Kft_cuda.Pp.program report.transformed);
                Printf.printf "transformed CUDA written to %s\n" path
            | None -> ());
            List.iter
              (fun d ->
                Printf.eprintf "kft-transform: [verify] %s\n"
                  (Kft_verify.Verify.pp_diagnostic d))
              report.verify_report.diagnostics;
            (match report.verified with
            | Ok () -> (
                match (verify, Kft_verify.Verify.is_clean report.verify_report) with
                | "fatal", false ->
                    `Error
                      ( false,
                        Printf.sprintf "static verification found %d defects"
                          (List.length report.verify_report.diagnostics) )
                | _ -> `Ok ())
            | Error diffs ->
                `Error
                  ( false,
                    Printf.sprintf "output verification failed on %d arrays"
                      (List.length diffs) ))))

let transform_cmd =
  let app_arg =
    Arg.(value & opt string "MITgcm" & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Application to transform (see --list).")
  in
  let device =
    Arg.(value & opt string "Tesla K20X" & info [ "device" ] ~docv:"NAME" ~doc:"Target device model (Tesla K20X, Tesla K40, Generic Kepler).")
  in
  let generations =
    Arg.(value & opt int 150 & info [ "generations" ] ~doc:"GGA generations (paper default: 500).")
  in
  let population =
    Arg.(value & opt int 40 & info [ "population" ] ~doc:"GGA population size (paper default: 100).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains shared by the GGA search and the simulator (profiling, verification and usage pre-runs fan each launch's thread blocks over the pool). Results are bit-identical at any worker count (the paper uses 8 Xeon cores).")
  in
  let no_memo =
    Arg.(value & flag & info [ "no-memo" ] ~doc:"Disable the genome-keyed fitness memo cache (ablation; results are unchanged, only slower).")
  in
  let no_sim_cache =
    Arg.(value & flag & info [ "no-sim-cache" ] ~doc:"Disable the keyed profile cache that replays repeated simulations (ablation; results are unchanged, only slower).")
  in
  let no_fission = Arg.(value & flag & info [ "no-fission" ] ~doc:"Disable lazy kernel fission.") in
  let no_tuning =
    Arg.(value & flag & info [ "no-tuning" ] ~doc:"Disable thread-block-size tuning.")
  in
  let expert =
    Arg.(value & flag & info [ "expert-codegen" ] ~doc:"Use the expert (hand-fusion-style) code generation switches.")
  in
  let filter =
    Arg.(value & opt string "auto" & info [ "filter" ] ~docv:"auto|manual|none" ~doc:"Target-filtering mode.")
  in
  let verify =
    Arg.(value & opt string "advisory" & info [ "verify" ] ~docv:"off|advisory|fatal" ~doc:"Static race/barrier/bounds verification and translation validation of the generated kernels: record diagnostics (advisory), reject flagged fused groups and fail on residual defects (fatal), or skip (off).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed (GGA + data).") in
  let out_dir =
    Arg.(value & opt (some string) None & info [ "o"; "artifacts" ] ~docv:"DIR" ~doc:"Dump stage artifacts (metadata files, DOT graphs, GGA parameters).")
  in
  let emit_cuda =
    Arg.(value & opt (some string) None & info [ "emit-cuda" ] ~docv:"FILE" ~doc:"Write the transformed CUDA program.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the stage report.") in
  let list = Arg.(value & flag & info [ "list" ] ~doc:"List bundled applications and exit.") in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the pipeline trace as deterministic machine JSON (kft_trace): hierarchical stage spans with counters, byte-identical at any $(b,--jobs) value.")
  in
  let chrome_file =
    Arg.(value & opt (some string) None & info [ "trace-chrome" ] ~docv:"FILE" ~doc:"Write the pipeline trace in Chrome trace_event format; load it in about:tracing or Perfetto.")
  in
  let backend_name =
    Arg.(value & opt string "auto" & info [ "backend" ] ~docv:"auto|interp|affine|vector" ~doc:"Simulator execution backend for every pipeline run. All backends produce bit-identical results; $(b,auto) picks the whole-grid vectorized backend for launches the abstract interpreter proves eligible and falls back to the affine lockstep interpreter otherwise.")
  in
  let no_schedflow =
    Arg.(value & flag & info [ "no-schedflow" ] ~doc:"Disable the whole-schedule dataflow stage: no schedflow stage report, no liveness-driven arena overlay for the fission pre-run, and no schedule-level lint rules.")
  in
  let term =
    Term.ret
      Term.(
        const transform_run $ app_arg $ device $ generations $ population $ jobs $ no_memo
        $ no_sim_cache $ no_fission $ no_tuning $ expert $ filter $ verify $ seed $ out_dir
        $ emit_cuda $ quiet $ list $ trace_file $ chrome_file $ backend_name $ no_schedflow)
  in
  Cmd.v
    (Cmd.info "kft-transform" ~version:"1.0.0"
       ~doc:"Automated GPU kernel fusion/fission transformation framework")
    term

let transform_main ?argv () = Cmd.eval ?argv transform_cmd
