(** Command-line entry points for the [kft] and [kft-transform]
    binaries, factored into a library so the test suite can evaluate the
    exact production terms in-process ([Cmdliner.Cmd.eval ~argv])
    instead of forking the installed executables.

    Both drivers expose the tracing layer ({!Kft_trace.Trace}):

    - [kft-transform --trace FILE] writes the deterministic machine-JSON
      trace of the whole pipeline; [--trace-chrome FILE] writes the same
      run in Chrome [trace_event] format (load in [about:tracing] or
      Perfetto). The JSON file is byte-identical at any [--jobs] value.
    - [kft lint --trace FILE] writes a per-program lint trace with
      per-rule finding counters.

    No function here calls [exit]; each returns the process exit code. *)

val transform_main : ?argv:string array -> unit -> int
(** Evaluate the [kft-transform] command line. [argv] defaults to
    [Sys.argv]. Returns the exit code: 0 on success, 1 on a failed
    transformation (output or fatal static verification), 124 on a
    command-line parse error. *)

val kft_main : ?argv:string array -> unit -> int
(** Evaluate the [kft] umbrella command line ([kft lint ...]). Returns
    0 when clean, 1 when the lint found warnings (or, with [--strict],
    any finding), 2 for an unknown program name, 124 on a command-line
    parse error. *)
