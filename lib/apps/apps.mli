(** The six evaluation applications of Section 6.1.1, rebuilt as
    synthetic CUDA-subset codebases.

    Each generator reproduces the *structure* the paper describes for
    the real code (kernel population mix, array-sharing topology, the
    features that drive its result), scaled down in grid size so the
    simulator stays fast; EXPERIMENTS.md records the scaling. All
    generators are deterministic. *)

type app = {
  app_name : string;
  description : string;
  program : Kft_cuda.Ast.program;
}

val bench_device : Kft_device.Device.t
(** K20X with the kernel-launch overhead scaled to the reduced grid
    sizes (0.3 us instead of 6 us), preserving the paper's ratio of
    per-kernel work to launch overhead. *)

val bench_device_k40 : Kft_device.Device.t

val scale_les : ?dims:Gen.dims -> ?chains:int -> unit -> app
(** Weather-model dynamical core: flux -> tendency -> update chains over
    a few dozen prognostic fields sharing a flux-array pool
    (multi-writer arrays exercise the DDG redundant-instance
    optimization), vertical-band integration kernels with depth-2 loop
    nests (the Figure 6 defect population), boundary-condition and
    compute-bound kernels that the target filter must exclude. *)

val homme : ?dims:Gen.dims -> ?chains:int -> unit -> app
(** Spectral-element dycore: like SCALE-LES but smaller, with kernel
    domains of differing width on the warp dimension, which makes fused
    guards diverge (the Figure 7 defect population). *)

val fluam : ?dims:Gen.dims -> ?chains:int -> unit -> app
(** Fluctuating hydrodynamics: stencil chains plus particle kernels with
    long dependent integer chains that look memory-bound to the Roofline
    filter but are latency-bound (the Figure 8 anomaly population), and
    many boundary kernels. *)

val mitgcm : ?dims:Gen.dims -> ?pairs:int -> unit -> app
(** Oceanic circulation, non-hydrostatic mode: conjugate-gradient-style
    Laplacian/AXPY pairs with plane (2D) stencils and already-efficient
    block sizes, so both fusion and tuning gains are modest. *)

val awp_odc : ?dims:Gen.dims -> unit -> app
(** Earthquake wave propagation: a few very large already-fused kernels
    (velocity/stress updates over many arrays, radius-2 staggered-grid
    stencils, large thread blocks) whose pairwise fusion exceeds the
    shared-memory capacity — only fission unlocks reuse. *)

val bcalm : ?dims:Gen.dims -> unit -> app
(** 3D-FDTD with multi-pole dispersion: large multi-output update
    kernels plus pole->field->field chains; fission followed by
    per-component pipeline fusion removes the intermediate traffic the
    paper highlights. *)

val quickstart : ?dims:Gen.dims -> unit -> app
(** The three-kernel diffuse/smooth/relax chain from the quickstart
    example, parsed from CUDA C text. Small enough for [dune runtest]
    guards (the bench [smoke] mode uses it to cross-check sequential vs
    block-parallel simulation); not part of {!all}. *)

val all : unit -> app list
(** The six apps at default (bench) sizes, in the paper's Table 1
    order. *)

val by_name : string -> app option
(** Case-insensitive lookup over {!quickstart} (at default dims) plus
    {!all} — every program the command-line drivers accept. *)
