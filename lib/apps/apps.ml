open Kft_cuda.Ast

type app = {
  app_name : string;
  description : string;
  program : program;
}

let bench_device = { Kft_device.Device.k20x with kernel_launch_overhead_us = 0.3 }

let bench_device_k40 = { Kft_device.Device.k40 with kernel_launch_overhead_us = 0.3 }

(* assemble built kernels into a program, deduplicating arrays by name *)
let assemble name description builts =
  let arrays = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (b : Gen.built) ->
      List.iter
        (fun a ->
          match Hashtbl.find_opt arrays a.a_name with
          | Some existing ->
              if existing.a_dims <> a.a_dims then
                invalid_arg
                  (Printf.sprintf "app %s: array %s declared with two different shapes" name
                     a.a_name)
          | None ->
              Hashtbl.replace arrays a.a_name a;
              order := a.a_name :: !order)
        b.arrays)
    builts;
  {
    p_name = name;
    p_arrays = List.rev_map (Hashtbl.find arrays) !order;
    p_kernels = List.map (fun (b : Gen.built) -> b.kernel) builts;
    p_schedule = List.map (fun (b : Gen.built) -> Launch b.launch) builts;
  }
  |> fun program -> { app_name = name; description; program }

let nm fmt = Printf.sprintf fmt

let star_2d r = [ (r, 0, 0); (-r, 0, 0); (0, r, 0); (0, -r, 0) ]

let star_3d r = star_2d r @ [ (0, 0, r); (0, 0, -r) ]

(* ------------------------------------------------------------------ *)
(* SCALE-LES                                                           *)
(* ------------------------------------------------------------------ *)

let scale_les ?(dims = { Gen.nx = 96; ny = 16; nz = 12 }) ?(chains = 28) () =
  let d = dims in
  let flux_pool = max 1 (chains / 2) in
  let builts = ref [] in
  let push b = builts := b :: !builts in
  for v = 1 to chains do
    let q = nm "Q%02d" v and q2 = nm "Q%02d" ((v mod chains) + 1) in
    let f = nm "F%02d" (((v - 1) mod flux_pool) + 1) in
    let t = nm "T%02d" v in
    (* flux: 3D star over the field, coupled to the neighbouring field *)
    push
      (Gen.stencil d ~name:(nm "flux_%02d" v) ~out:f
         ~ins:[ (q, star_3d 1 @ [ (0, 0, 0) ]); (q2, [ (0, 0, 0) ]) ]
         ~coef:0.16 ());
    (* tendency: horizontal star over the produced flux *)
    push
      (Gen.stencil d ~name:(nm "tend_%02d" v) ~out:t
         ~ins:[ (f, star_2d 1); (q, [ (0, 0, 0) ]) ]
         ~coef:0.25 ());
    (* every fourth variable gets a vertical-band integration kernel
       (depth-2 loop nest, the Figure 6 population); it reads the
       pre-update fields, so it is fusable with the flux/tendency pair *)
    if v mod 4 = 0 then
      push
        (Gen.deep_nest d ~name:(nm "vint_%02d" (v / 4))
           ~out:(nm "D%02d" (((v / 4 - 1) mod 4) + 1))
           ~band_in:q ~plane_ins:[ q2; t ] ~band:3 ~coef:0.2 ());
    (* update: pointwise, writes the field back *)
    push (Gen.pointwise d ~name:(nm "upd_%02d" v) ~out:q ~ins:[ t; q ] ~coef:0.5 ())
  done;
  for b = 1 to 12 do
    let q = nm "Q%02d" (((b - 1) mod chains) + 1) in
    push
      (Gen.boundary d ~name:(nm "bc_%02d" b) ~out:q ~src:q
         ~plane:(if b mod 2 = 0 then 0 else d.nz - 1)
         ())
  done;
  for cb = 1 to 10 do
    let q = nm "Q%02d" (((cb + 11) mod chains) + 1) in
    push (Gen.compute_bound d ~name:(nm "phys_%02d" cb) ~out:(nm "CB%02d" cb) ~src:q ())
  done;
  assemble "SCALE-LES" "next-generation weather model (dynamical core)" (List.rev !builts)

(* ------------------------------------------------------------------ *)
(* HOMME                                                               *)
(* ------------------------------------------------------------------ *)

let homme ?(dims = { Gen.nx = 96; ny = 16; nz = 12 }) ?(chains = 7) () =
  let d = dims in
  let builts = ref [] in
  let push b = builts := b :: !builts in
  for v = 1 to chains do
    let q = nm "E%02d" v and q2 = nm "E%02d" ((v mod chains) + 1) in
    let f = nm "G%02d" v and t = nm "H%02d" v in
    (* alternate domain widths on the warp dimension: fused guards
       diverge inside boundary warps (Figure 7) *)
    let width = if v mod 2 = 0 then Some (d.nx - 9) else None in
    (* two-statement kernels: the x- and y-component of the operator --
       under the automated per-statement guard placement the divergent
       boundary warps pay for every statement (Figure 7) *)
    push
      (Gen.stencil d ?width ~extra_out:(nm "GD%02d" v) ~name:(nm "grad_%02d" v) ~out:f
         ~ins:[ (q, star_3d 1 @ [ (0, 0, 0) ]); (q2, [ (0, 0, 0) ]) ]
         ~coef:0.15 ());
    push
      (Gen.stencil d ?width ~extra_out:(nm "HD%02d" v) ~name:(nm "div_%02d" v) ~out:t
         ~ins:[ (f, star_2d 1); (q, [ (0, 0, 0) ]) ]
         ~coef:0.3 ());
    if v = 1 then
      push
        (Gen.deep_nest d ~name:"vsum_01" ~out:"VS01" ~band_in:q ~plane_ins:[ q2 ] ~band:3 ());
    push (Gen.pointwise d ?width ~name:(nm "adv_%02d" v) ~out:q ~ins:[ t; q ] ~coef:0.45 ())
  done;
  for b = 1 to 12 do
    let q = nm "E%02d" (((b - 1) mod chains) + 1) in
    push
      (Gen.boundary d ~name:(nm "bc_%02d" b) ~out:q ~src:q
         ~plane:(if b mod 2 = 0 then 0 else d.nz - 1)
         ())
  done;
  for cb = 1 to 9 do
    let q = nm "E%02d" (((cb - 1) mod chains) + 1) in
    push (Gen.compute_bound d ~name:(nm "rhs_%02d" cb) ~out:(nm "CB%02d" cb) ~src:q ())
  done;
  assemble "HOMME" "CAM spectral-element dynamical core" (List.rev !builts)

(* ------------------------------------------------------------------ *)
(* Fluam                                                               *)
(* ------------------------------------------------------------------ *)

let fluam ?(dims = { Gen.nx = 64; ny = 16; nz = 12 }) ?(chains = 10) () =
  let d = dims in
  let builts = ref [] in
  let push b = builts := b :: !builts in
  for v = 1 to chains do
    let q = nm "U%02d" v and q2 = nm "U%02d" ((v mod chains) + 1) in
    let f = nm "W%02d" v and t = nm "R%02d" v in
    push
      (Gen.stencil d ~name:(nm "fvol_%02d" v) ~out:f
         ~ins:[ (q, star_3d 1 @ [ (0, 0, 0) ]); (q2, [ (0, 0, 0) ]) ]
         ~coef:0.2 ());
    push
      (Gen.stencil d ~name:(nm "rk_%02d" v) ~out:t
         ~ins:[ (f, star_2d 1); (q, [ (0, 0, 0) ]) ]
         ~coef:0.35 ());
    push (Gen.pointwise d ~name:(nm "acc_%02d" v) ~out:q ~ins:[ t; q ] ~coef:0.4 ())
  done;
  (* particle kernels: latency-bound, mistaken for memory-bound by the
     automated filter (Figure 8) *)
  for p = 1 to 12 do
    push
      (Gen.latency_bound ~cells:1024 ~name:(nm "part_%02d" p) ~out:(nm "PO%02d" p)
         ~src:(nm "PI%02d" ((p mod 6) + 1))
         ~hash_rounds:28 ())
  done;
  for b = 1 to 40 do
    let q = nm "U%02d" (((b - 1) mod chains) + 1) in
    let plane = match b mod 4 with 0 -> 0 | 1 -> 1 | 2 -> d.nz - 1 | _ -> d.nz - 2 in
    push (Gen.boundary d ~name:(nm "bc_%02d" b) ~out:q ~src:q ~plane ())
  done;
  for cb = 1 to 20 do
    let q = nm "U%02d" (((cb - 1) mod chains) + 1) in
    push (Gen.compute_bound d ~name:(nm "coll_%02d" cb) ~out:(nm "CB%02d" cb) ~src:q ())
  done;
  assemble "Fluam" "fluctuating particle hydrodynamics" (List.rev !builts)

(* ------------------------------------------------------------------ *)
(* MITgcm                                                              *)
(* ------------------------------------------------------------------ *)

let mitgcm ?(dims = { Gen.nx = 64; ny = 16; nz = 12 }) ?(pairs = 7) () =
  let d = dims in
  let builts = ref [] in
  let push b = builts := b :: !builts in
  (* occupancy-friendly block: Table 2 reports MITgcm already at 0.95 *)
  let block = (64, 4) in
  for i = 1 to pairs do
    let p = nm "P%02d" i and ap = nm "AP%02d" i and r = nm "RS%02d" i in
    let pn = nm "P%02d" (min pairs (i + 1)) in
    push
      (Gen.stencil d ~name:(nm "lap_%02d" i) ~out:ap
         ~ins:[ (p, star_2d 1 @ [ (0, 0, 0) ]) ]
         ~coef:0.24 ~block ());
    push
      (Gen.pointwise d ~name:(nm "axpy_%02d" i)
         ~out:(if i < pairs then pn else r)
         ~ins:[ ap; p; r ] ~coef:0.6 ~block ())
  done;
  for b = 1 to 14 do
    let p = nm "P%02d" (((b - 1) mod pairs) + 1) in
    push
      (Gen.boundary d ~name:(nm "obc_%02d" b) ~out:p ~src:p
         ~plane:(if b mod 2 = 0 then 0 else d.nz - 1)
         ~block ())
  done;
  for cb = 1 to 9 do
    let p = nm "P%02d" (((cb - 1) mod pairs) + 1) in
    push
      (Gen.compute_bound d ~name:(nm "eos_%02d" cb) ~out:(nm "CB%02d" cb) ~src:p ~block ())
  done;
  assemble "MITgcm" "oceanic general circulation model (non-hydrostatic)" (List.rev !builts)

(* ------------------------------------------------------------------ *)
(* AWP-ODC-GPU                                                         *)
(* ------------------------------------------------------------------ *)

let awp_odc ?(dims = { Gen.nx = 64; ny = 16; nz = 12 }) () =
  let d = dims in
  let block = (64, 16) in
  let r2 = star_2d 2 in
  let s i = nm "S%02d" i in
  let triple base = [ s base; s (base + 1); s (base + 2) ] in
  let builts =
    [
      (* two velocity-update kernels, each already-fused over three
         separable component groups; both read the same twelve stresses,
         so fusing them whole needs nine radius-2 tiles -- beyond the
         48 KB shared-memory capacity at the (64,16) production block.
         Only fission unlocks the reuse. *)
      Gen.multi_output d ~name:"vel_a"
        ~groups:
          [ ("VXA", triple 1, r2); ("VYA", triple 4, r2); ("VZA", triple 7, r2) ]
        ~coef:0.11 ~block ();
      Gen.multi_output d ~name:"vel_b"
        ~groups:
          [ ("VXB", triple 1, r2); ("VYB", triple 4, r2); ("VZB", triple 7, r2) ]
        ~coef:0.13 ~block ();
      (* stress updates consume the velocities (disjoint per component) *)
      Gen.multi_output d ~name:"str_a"
        ~groups:
          [ (s 1, [ "VXA" ], r2); (s 4, [ "VYA" ], r2); (s 7, [ "VZA" ], r2) ]
        ~coef:0.09 ~block ();
      Gen.multi_output d ~name:"str_b"
        ~groups:
          [ (s 2, [ "VXB" ], r2); (s 5, [ "VYB" ], r2); (s 8, [ "VZB" ], r2) ]
        ~coef:0.07 ~block ();
      Gen.pointwise d ~name:"damp_a" ~out:"DMA" ~ins:[ "VXA"; "VYA"; "VZA" ] ~coef:0.5
        ~block ();
      Gen.pointwise d ~name:"damp_b" ~out:"DMB" ~ins:[ "VXB"; "VYB"; "VZB" ] ~coef:0.5
        ~block ();
      Gen.boundary d ~name:"abs_01" ~out:"VXA" ~src:"VXA" ~plane:0 ~block ();
      Gen.boundary d ~name:"abs_02" ~out:"VYA" ~src:"VYA" ~plane:(d.nz - 1) ~block ();
      Gen.boundary d ~name:"abs_03" ~out:"VXB" ~src:"VXB" ~plane:0 ~block ();
      Gen.boundary d ~name:"abs_04" ~out:"VYB" ~src:"VYB" ~plane:(d.nz - 1) ~block ();
      Gen.compute_bound d ~name:"src_01" ~out:"CB01" ~src:"VZA" ~block ();
      Gen.compute_bound d ~name:"src_02" ~out:"CB02" ~src:"VZB" ~block ();
    ]
  in
  assemble "AWP-ODC-GPU" "earthquake wave propagation (staggered-grid FD)" builts

(* ------------------------------------------------------------------ *)
(* B-CALM                                                              *)
(* ------------------------------------------------------------------ *)

let bcalm ?(dims = { Gen.nx = 64; ny = 16; nz = 12 }) () =
  let d = dims in
  let block = (64, 8) in
  let r2 = star_2d 2 in
  let r1 = star_2d 1 in
  let qa = [ "QA1"; "QA2"; "QA3" ] and qb = [ "QB1"; "QB2"; "QB3" ] and qc = [ "QC1"; "QC2"; "QC3" ] in
  let pole name out_suffix coef =
    Gen.multi_output d ~name
      ~groups:
        [
          (nm "PA%s" out_suffix, qa, r2);
          (nm "PB%s" out_suffix, qb, r2);
          (nm "PC%s" out_suffix, qc, r2);
        ]
      ~coef ~block ()
  in
  let builts =
    [
      (* pole-update kernels: four of them read the same nine auxiliary
         fields at radius 2 -> pairwise whole-kernel fusion needs nine
         radius-2 tiles (> 48 KB); fission splits the components *)
      pole "pole_a" "1" 0.21;
      pole "pole_b" "2" 0.19;
      pole "pole_c" "3" 0.17;
      pole "pole_d" "4" 0.23;
      (* field updates consume the poles component-wise *)
      Gen.multi_output d ~name:"upd_e"
        ~groups:
          [
            ("EX", [ "PA1"; "PA2" ], r1);
            ("EY", [ "PB1"; "PB2" ], r1);
            ("EZ", [ "PC1"; "PC2" ], r1);
          ]
        ~coef:0.31 ~block ();
      Gen.multi_output d ~name:"upd_h"
        ~groups:
          [ ("HX", [ "EX" ], r1); ("HY", [ "EY" ], r1); ("HZ", [ "EZ" ], r1) ]
        ~coef:0.27 ~block ();
      Gen.pointwise d ~name:"flux_e" ~out:"FE" ~ins:[ "EX"; "EY"; "EZ" ] ~coef:0.5 ~block ();
      Gen.pointwise d ~name:"flux_h" ~out:"FH" ~ins:[ "HX"; "HY"; "HZ" ] ~coef:0.5 ~block ();
    ]
    @ List.init 10 (fun i ->
          let f = [| "EX"; "EY"; "EZ"; "HX"; "HY" |].(i mod 5) in
          Gen.boundary d ~name:(nm "pml_%02d" (i + 1)) ~out:f ~src:f
            ~plane:(if i mod 2 = 0 then 0 else d.nz - 1)
            ~block ())
    @ List.init 5 (fun i ->
          Gen.compute_bound d ~name:(nm "disp_%02d" (i + 1)) ~out:(nm "CB%02d" (i + 1))
            ~src:[| "QA1"; "QB1"; "QC1"; "QA2"; "QB2" |].(i) ~block ())
  in
  assemble "B-CALM" "3D-FDTD electromagnetics with multi-pole dispersion" builts

(* ------------------------------------------------------------------ *)
(* Quickstart                                                          *)
(* ------------------------------------------------------------------ *)

let quickstart_source =
  {|
__global__ void diffuse(const double *U, double *V, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
    for (int k = 1; k < nz - 1; k++) {
      V[(k * ny + j) * nx + i] = c * (U[(k * ny + j) * nx + i + 1] + U[(k * ny + j) * nx + i - 1]
        + U[(k * ny + (j + 1)) * nx + i] + U[(k * ny + (j - 1)) * nx + i]
        + U[((k + 1) * ny + j) * nx + i] + U[((k - 1) * ny + j) * nx + i]
        - 6.0 * U[(k * ny + j) * nx + i]);
    }
  }
}
__global__ void smooth(const double *V, const double *U, double *W, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      W[(k * ny + j) * nx + i] = 0.25 * (V[(k * ny + j) * nx + i + 1] + V[(k * ny + j) * nx + i - 1]
        + V[(k * ny + (j + 1)) * nx + i] + V[(k * ny + (j - 1)) * nx + i])
        + c * U[(k * ny + j) * nx + i];
    }
  }
}
__global__ void relax(const double *W, double *U2, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      U2[(k * ny + j) * nx + i] = c * W[(k * ny + j) * nx + i];
    }
  }
}
|}

let quickstart ?(dims = { Gen.nx = 64; ny = 16; nz = 12 }) () =
  let nx, ny, nz = (dims.Gen.nx, dims.Gen.ny, dims.Gen.nz) in
  let kernels = Kft_cuda.Parse.kernels quickstart_source in
  let arr name = { a_name = name; a_elem_ty = Double; a_dims = [ nx; ny; nz ] } in
  let dims_args = [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double 0.125 ] in
  let launch kernel args =
    Launch { l_kernel = kernel; l_domain = (nx, ny, 1); l_block = (32, 4, 1); l_args = args }
  in
  let program =
    {
      p_name = "quickstart";
      p_arrays = [ arr "U"; arr "V"; arr "W"; arr "U2" ];
      p_kernels = kernels;
      p_schedule =
        [
          launch "diffuse" ([ Arg_array "U"; Arg_array "V" ] @ dims_args);
          launch "smooth" ([ Arg_array "V"; Arg_array "U"; Arg_array "W" ] @ dims_args);
          launch "relax" ([ Arg_array "W"; Arg_array "U2" ] @ dims_args);
        ];
    }
  in
  { app_name = "quickstart"; description = "three-kernel diffuse/smooth/relax chain"; program }

let all () =
  [ scale_les (); homme (); fluam (); mitgcm (); awp_odc (); bcalm () ]

let by_name name =
  List.find_opt
    (fun a -> String.lowercase_ascii a.app_name = String.lowercase_ascii name)
    (quickstart () :: all ())
