(** The three metadata files of Section 3.2.1.

    After the gathering stage the framework writes (1) performance
    metadata quantifying metrics and device utilization per original
    kernel, (2) operations metadata describing the stencil operations,
    and (3) device metadata. Each is a typed value with a text
    round-trip so the programmer can amend the files between stages. *)

type perf_entry = {
  kernel : string;
  runtime_us : float;
  flops : float;
  bytes : float;  (** global-memory traffic *)
  effective_bw_gbs : float;
  shared_per_block : int;  (** bytes *)
  regs_per_thread : int;
  active_threads : int;
  active_blocks_per_sm : int;
  occupancy : float;
  divergence : float;
}

type array_op = {
  array : string;  (** host array name *)
  reads : int;  (** distinct read offsets *)
  writes : int;
  radius : int * int * int;
  array_flops : float;  (** FLOPs related to this data array (per thread) *)
}

type loop_op = { loop_var : string; trip : int; vertical : bool }

type ops_entry = {
  o_kernel : string;
  domain : int * int * int;
  block : int * int * int;
  arrays : array_op list;
  loops : loop_op list;
  nest_depth : int;
  active_fraction : float;
  stride : int;  (** unit-stride accesses in the canonical mapping *)
  shared_arrays : string list;  (** arrays also touched by other kernels *)
  irregular : string option;  (** why the kernel fell outside the subset, when it did *)
}

type t = {
  performance : perf_entry list;
  operations : ops_entry list;
  device : Kft_device.Device.t;
}

module Sim_cache : sig
  (** Keyed profile cache: each distinct simulation — keyed by the digest
      of the marshalled (program, seed, device) triple, which covers the
      canonicalized kernel ASTs, the grid/block configuration of every
      launch and the memory seed — runs at most once per cache. The
      execution backend is deliberately excluded from the key: backends
      are bit-identical, so one profile serves them all. Entries hold
      the final memory as a packed {!Kft_sim.Memory.snapshot}; a hit
      replays via [Array.blit] restore plus fresh stats records, so a
      replayed profile is bit-identical to the original run and
      mutation-safe. *)

  type t

  val create : unit -> t

  val global : t
  (** A process-wide cache, shared by default across framework stages and
      bench modes. *)

  val stats : t -> Kft_engine.Engine.Cache.stats
  (** Hit/miss/size counters (surfaced in the framework stage report). *)

  val clear : t -> unit

  val repr_tag : string
  (** The memory-representation tag baked into every key. Bumped when
      the device-memory substrate changes shape, so entries written
      under an older representation read as misses rather than
      replaying stale snapshots. *)

  val key : ?tag:string -> seed:int -> Kft_device.Device.t -> Kft_cuda.Ast.program -> string
  (** The cache key for one simulation. [tag] defaults to {!repr_tag};
      passing an explicit tag exists so tests can prove that entries
      written under another representation miss. *)
end

val profile :
  ?cache:Sim_cache.t -> ?engine:Kft_engine.Engine.t ->
  ?backend:Kft_sim.Interp.backend -> ?trace:Kft_trace.Trace.t ->
  ?layout:Kft_sim.Memory.layout -> ?seed:int ->
  Kft_device.Device.t -> Kft_cuda.Ast.program -> Kft_sim.Profiler.run
(** {!Kft_sim.Profiler.profile} through the cache: a hit replays the
    stored run (snapshot-restored) instead of re-simulating; a miss
    simulates — block-parallel when [engine] is given, on [backend] when
    given — and stores a private snapshot. [layout] runs under a
    liveness-driven arena overlay; the cache key then gains a
    schedflow-verdict tag (a digest of the layout), so overlay and
    packed runs of the same program never replay each other's
    snapshots. *)

val verify :
  ?cache:Sim_cache.t -> ?engine:Kft_engine.Engine.t ->
  ?backend:Kft_sim.Interp.backend -> ?trace:Kft_trace.Trace.t -> ?seed:int -> ?tol:float ->
  Kft_device.Device.t ->
  original:Kft_cuda.Ast.program -> transformed:Kft_cuda.Ast.program ->
  (unit, (string * float) list) result
(** {!Kft_sim.Profiler.verify} but sharing the cache: when both programs
    were already profiled (e.g. during gathering and the transformed
    run), verification costs two cache hits instead of two fresh
    simulations. *)

val gather :
  ?cache:Sim_cache.t -> ?engine:Kft_engine.Engine.t ->
  ?backend:Kft_sim.Interp.backend -> ?trace:Kft_trace.Trace.t ->
  ?layout:Kft_sim.Memory.layout -> ?seed:int ->
  Kft_device.Device.t -> Kft_cuda.Ast.program -> t * Kft_sim.Profiler.run
(** The metadata-gathering stage: one instrumented run on the simulated
    device plus static analysis of every kernel. [cache] memoizes the
    instrumented run; [engine] runs it block-parallel. *)

val find_perf : t -> string -> perf_entry
(** Raises [Not_found]. *)

val find_ops : t -> string -> ops_entry

val perf_to_text : perf_entry list -> string

val perf_of_text : string -> perf_entry list
(** Raises [Failure] with a line-oriented message on malformed input. *)

val ops_to_text : ops_entry list -> string

val ops_of_text : string -> ops_entry list

val to_files : t -> dir:string -> unit
(** Write [performance.meta], [operations.meta] and [device.meta]. *)

val of_files : dir:string -> t
