open Kft_cuda.Ast

type perf_entry = {
  kernel : string;
  runtime_us : float;
  flops : float;
  bytes : float;
  effective_bw_gbs : float;
  shared_per_block : int;
  regs_per_thread : int;
  active_threads : int;
  active_blocks_per_sm : int;
  occupancy : float;
  divergence : float;
}

type array_op = {
  array : string;
  reads : int;
  writes : int;
  radius : int * int * int;
  array_flops : float;
}

type loop_op = { loop_var : string; trip : int; vertical : bool }

type ops_entry = {
  o_kernel : string;
  domain : int * int * int;
  block : int * int * int;
  arrays : array_op list;
  loops : loop_op list;
  nest_depth : int;
  active_fraction : float;
  stride : int;
  shared_arrays : string list;
  irregular : string option;
}

type t = {
  performance : perf_entry list;
  operations : ops_entry list;
  device : Kft_device.Device.t;
}

(* ------------------------------------------------------------------ *)
(* Gathering                                                           *)
(* ------------------------------------------------------------------ *)

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter (fun x -> if Hashtbl.mem seen x then false else (Hashtbl.replace seen x (); true)) l

(* host array names touched by a launch, via the parameter binding *)
let touched_host_arrays prog (l : launch) =
  let k = find_kernel prog l.l_kernel in
  let binding = bind_args k l.l_args in
  let used = referenced_arrays k in
  List.filter_map
    (fun p ->
      match List.assoc (param_name p) binding with
      | Arg_array host when List.mem (param_name p) used -> Some host
      | _ -> None
      | exception Not_found -> None)
    k.k_params
  |> dedup

(* ------------------------------------------------------------------ *)
(* Profile cache                                                       *)
(* ------------------------------------------------------------------ *)

module Sim_cache = struct
  module Cache = Kft_engine.Engine.Cache

  (* A cached run holds the final memory as a packed {!Kft_sim.Memory}
     snapshot rather than a live hashtable of arrays: replaying a hit is
     then one contiguous [Array.blit] per array (Memory.restore) plus
     fresh stats records — the fast path Sim_cache replays were paying
     hashtable-copy overhead for. Profiles are stored with private stats
     so neither the cache nor any replay aliases a caller's counters. *)
  type entry = {
    e_profiles : Kft_sim.Profiler.kernel_profile list;
    e_total_us : float;
    e_memory : Kft_sim.Memory.snapshot;
  }

  type t = entry Cache.t

  let create () : t = Cache.create ()

  let global : t = create ()

  let stats : t -> Cache.stats = Cache.stats

  let clear : t -> unit = Cache.clear

  (* Structurally equal values marshal identically, so the digest of the
     marshalled (program, seed, device) triple keys "the same simulation":
     the program carries every kernel AST and the full launch schedule
     (grid/block configs and argument bindings), [seed] fixes the initial
     memory image, and the device fixes the timing model. The execution
     backend is deliberately not part of the key: all backends are
     bit-identical, so a profile produced under one backend is a valid
     hit for any other.

     The key additionally carries a memory-representation tag. Entries
     written under a different device-memory substrate must read as
     misses: their snapshots belong to the other representation, and a
     silent hit would replay stale state. Bumping [repr_tag] on a
     substrate change invalidates every old entry at once. *)
  let repr_tag = "mem:bigarray-arena-v1"

  let key ?(tag = repr_tag) ~seed device (prog : program) =
    Digest.to_hex (Digest.string (Marshal.to_string (tag, prog, seed, device) []))

  let copy_profiles ps =
    List.map
      (fun (p : Kft_sim.Profiler.kernel_profile) ->
        { p with Kft_sim.Profiler.stats = Kft_sim.Interp.copy_stats p.stats })
      ps

  let entry_of_run (r : Kft_sim.Profiler.run) =
    {
      e_profiles = copy_profiles r.Kft_sim.Profiler.profiles;
      e_total_us = r.Kft_sim.Profiler.total_time_us;
      e_memory = Kft_sim.Memory.snapshot r.Kft_sim.Profiler.memory;
    }

  let run_of_entry e : Kft_sim.Profiler.run =
    {
      Kft_sim.Profiler.profiles = copy_profiles e.e_profiles;
      total_time_us = e.e_total_us;
      memory = Kft_sim.Memory.restore e.e_memory;
    }
end

let profile ?cache ?engine ?backend ?trace ?layout ?(seed = 42) device prog =
  (* cache attribution is per profiled program: hit/miss counters are a
     pure function of the call sequence, so they stay in the canonical
     trace channel (byte-stable given a fresh cache per run) *)
  Kft_trace.Trace.with_span trace ("profile:" ^ prog.p_name) @@ fun () ->
  match cache with
  | None -> Kft_sim.Profiler.profile ?engine ?backend ?trace ?layout ~seed device prog
  | Some c -> (
      (* an overlay layout shares arena cells, so its snapshots are not
         interchangeable with packed ones: the key carries a verdict tag
         derived from the layout so each placement caches separately *)
      let tag =
        match layout with
        | None -> Sim_cache.repr_tag
        | Some l ->
            Sim_cache.repr_tag ^ "+schedflow-overlay-v1:"
            ^ Digest.to_hex (Digest.string (Marshal.to_string l []))
      in
      let key = Sim_cache.key ~tag ~seed device prog in
      match Sim_cache.Cache.find c key with
      | Some entry ->
          Kft_trace.Trace.add trace "sim_cache_hits" 1;
          Sim_cache.run_of_entry entry
      | None ->
          Kft_trace.Trace.add trace "sim_cache_misses" 1;
          let run = Kft_sim.Profiler.profile ?engine ?backend ?trace ?layout ~seed device prog in
          (* the cache holds a private snapshot: callers are free to
             mutate the run they got back without corrupting future hits *)
          Sim_cache.Cache.add c key (Sim_cache.entry_of_run run);
          run)

let verify ?cache ?engine ?backend ?trace ?(seed = 42) ?(tol = 1e-9) device ~original ~transformed =
  match cache with
  | None -> Kft_sim.Profiler.verify ?engine ?backend ?trace ~seed ~tol device ~original ~transformed
  | Some _ ->
      let m1 = (profile ?cache ?engine ?backend ?trace ~seed device original).Kft_sim.Profiler.memory in
      let m2 = (profile ?cache ?engine ?backend ?trace ~seed device transformed).Kft_sim.Profiler.memory in
      let diffs =
        List.filter
          (fun (n, d) -> Kft_sim.Memory.mem m1 n && Kft_sim.Memory.mem m2 n && d > tol)
          (Kft_sim.Memory.max_abs_diff m1 m2)
      in
      (* whether freshly simulated or restored from a snapshot, both
         memories are private to this verification — recycle them *)
      Kft_sim.Memory.release m1;
      Kft_sim.Memory.release m2;
      if diffs = [] then Ok () else Error diffs

let gather ?cache ?engine ?backend ?trace ?layout ?(seed = 42) device prog =
  let run = profile ?cache ?engine ?backend ?trace ?layout ~seed device prog in
  (* map: host array -> kernels touching it *)
  let array_users : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (function
      | Launch l ->
          List.iter
            (fun a ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt array_users a) in
              if not (List.mem l.l_kernel cur) then Hashtbl.replace array_users a (l.l_kernel :: cur))
            (touched_host_arrays prog l)
      | _ -> ())
    prog.p_schedule;
  let performance =
    List.map
      (fun (p : Kft_sim.Profiler.kernel_profile) ->
        let s = p.stats in
        {
          kernel = p.kernel;
          runtime_us = p.timing.runtime_us;
          flops = s.flops;
          bytes = float_of_int (s.global_read_bytes + s.global_write_bytes);
          effective_bw_gbs = p.timing.effective_bandwidth_gbs;
          shared_per_block = s.shared_bytes_per_block;
          regs_per_thread = p.regs_per_thread;
          active_threads = s.threads_launched;
          active_blocks_per_sm = p.timing.occupancy.active_blocks_per_sm;
          occupancy = p.timing.occupancy.occupancy;
          divergence = Kft_sim.Interp.divergence_fraction s;
        })
      run.profiles
  in
  let operations =
    List.map
      (fun (p : Kft_sim.Profiler.kernel_profile) ->
        let kernel = find_kernel prog p.kernel in
        let env = Kft_analysis.Access.env_of_launch prog p.launch in
        let host_of param =
          match List.assoc_opt param env.param_binding with Some h -> h | None -> param
        in
        match p.access with
        | Error reason ->
            {
              o_kernel = p.kernel;
              domain = p.launch.l_domain;
              block = p.launch.l_block;
              arrays =
                List.map
                  (fun a -> { array = host_of a; reads = 0; writes = 0; radius = (0, 0, 0); array_flops = 0.0 })
                  (referenced_arrays kernel);
              loops = [];
              nest_depth = 0;
              active_fraction = 1.0;
              stride = 1;
              shared_arrays = [];
              irregular = Some (Kft_analysis.Access.reason_to_string reason);
            }
        | Ok info ->
            let params = dedup (List.map (fun (a : Kft_analysis.Access.access) -> a.array) info.accesses) in
            let flops_per_thread = p.cost.flops_per_thread in
            let n_params = max 1 (List.length params) in
            let arrays =
              List.map
                (fun param ->
                  let reads =
                    List.length (Kft_analysis.Access.read_offsets info param)
                  in
                  let writes =
                    List.length
                      (List.filter
                         (fun (a : Kft_analysis.Access.access) -> a.array = param && a.rw = Write)
                         info.accesses)
                  in
                  {
                    array = host_of param;
                    reads;
                    writes;
                    radius = Kft_analysis.Access.stencil_radius info param;
                    array_flops = flops_per_thread /. float_of_int n_params;
                  })
                params
            in
            let shared_arrays =
              List.filter
                (fun a ->
                  match Hashtbl.find_opt array_users a.array with
                  | Some users -> List.exists (fun u -> u <> p.kernel) users
                  | None -> false)
                arrays
              |> List.map (fun a -> a.array)
            in
            {
              o_kernel = p.kernel;
              domain = p.launch.l_domain;
              block = p.launch.l_block;
              arrays;
              loops =
                List.map
                  (fun (l : Kft_analysis.Access.loop_info) ->
                    { loop_var = l.loop_var; trip = l.trip_count; vertical = l.dimension = `Vertical })
                  info.loops;
              nest_depth = info.max_nest_depth;
              active_fraction = info.active_fraction;
              stride = 1;
              shared_arrays;
              irregular = None;
            })
      run.profiles
  in
  ({ performance; operations; device }, run)

let find_perf t k = List.find (fun p -> p.kernel = k) t.performance

let find_ops t k = List.find (fun o -> o.o_kernel = k) t.operations

(* ------------------------------------------------------------------ *)
(* Text round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let triple_to_string (a, b, c) = Printf.sprintf "%d,%d,%d" a b c

let triple_of_string s =
  match String.split_on_char ',' s with
  | [ a; b; c ] -> (int_of_string a, int_of_string b, int_of_string c)
  | _ -> failwith ("malformed triple: " ^ s)

let perf_to_text entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "[kernel %s]\n" p.kernel);
      Buffer.add_string buf (Printf.sprintf "runtime_us = %.6f\n" p.runtime_us);
      Buffer.add_string buf (Printf.sprintf "flops = %.1f\n" p.flops);
      Buffer.add_string buf (Printf.sprintf "bytes = %.1f\n" p.bytes);
      Buffer.add_string buf (Printf.sprintf "effective_bw_gbs = %.4f\n" p.effective_bw_gbs);
      Buffer.add_string buf (Printf.sprintf "shared_per_block = %d\n" p.shared_per_block);
      Buffer.add_string buf (Printf.sprintf "regs_per_thread = %d\n" p.regs_per_thread);
      Buffer.add_string buf (Printf.sprintf "active_threads = %d\n" p.active_threads);
      Buffer.add_string buf (Printf.sprintf "active_blocks_per_sm = %d\n" p.active_blocks_per_sm);
      Buffer.add_string buf (Printf.sprintf "occupancy = %.4f\n" p.occupancy);
      Buffer.add_string buf (Printf.sprintf "divergence = %.4f\n\n" p.divergence))
    entries;
  Buffer.contents buf

type section = { header : string; kvs : (string * string) list; lines : string list }

let parse_sections text =
  let lines = String.split_on_char '\n' text in
  let sections = ref [] in
  let cur = ref None in
  let flush () =
    match !cur with
    | Some s -> sections := { s with kvs = List.rev s.kvs; lines = List.rev s.lines } :: !sections
    | None -> ()
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if line.[0] = '[' then begin
        flush ();
        let header = String.trim (String.sub line 1 (String.length line - 2)) in
        cur := Some { header; kvs = []; lines = [] }
      end
      else
        match !cur with
        | None -> failwith ("content outside a [section]: " ^ line)
        | Some s -> (
            let starts_with p =
              String.length line >= String.length p && String.sub line 0 (String.length p) = p
            in
            match String.index_opt line '=' with
            | Some i when i > 0 && not (starts_with "array " || starts_with "loop ") ->
                let k = String.trim (String.sub line 0 i) in
                let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
                cur := Some { s with kvs = (k, v) :: s.kvs }
            | _ -> cur := Some { s with lines = line :: s.lines }))
    lines;
  flush ();
  List.rev !sections

let kernel_of_header h =
  match String.split_on_char ' ' h with
  | [ "kernel"; name ] -> name
  | _ -> failwith ("expected [kernel <name>] section, got [" ^ h ^ "]")

let perf_of_text text =
  parse_sections text
  |> List.map (fun s ->
         let get k =
           match List.assoc_opt k s.kvs with
           | Some v -> v
           | None -> failwith (Printf.sprintf "performance metadata: missing %s in [%s]" k s.header)
         in
         {
           kernel = kernel_of_header s.header;
           runtime_us = float_of_string (get "runtime_us");
           flops = float_of_string (get "flops");
           bytes = float_of_string (get "bytes");
           effective_bw_gbs = float_of_string (get "effective_bw_gbs");
           shared_per_block = int_of_string (get "shared_per_block");
           regs_per_thread = int_of_string (get "regs_per_thread");
           active_threads = int_of_string (get "active_threads");
           active_blocks_per_sm = int_of_string (get "active_blocks_per_sm");
           occupancy = float_of_string (get "occupancy");
           divergence = float_of_string (get "divergence");
         })

let ops_to_text entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun o ->
      Buffer.add_string buf (Printf.sprintf "[kernel %s]\n" o.o_kernel);
      Buffer.add_string buf (Printf.sprintf "domain = %s\n" (triple_to_string o.domain));
      Buffer.add_string buf (Printf.sprintf "block = %s\n" (triple_to_string o.block));
      Buffer.add_string buf (Printf.sprintf "nest_depth = %d\n" o.nest_depth);
      Buffer.add_string buf (Printf.sprintf "active_fraction = %.4f\n" o.active_fraction);
      Buffer.add_string buf (Printf.sprintf "stride = %d\n" o.stride);
      Buffer.add_string buf
        (Printf.sprintf "shared_arrays = %s\n" (String.concat "," o.shared_arrays));
      (match o.irregular with
      | Some r -> Buffer.add_string buf (Printf.sprintf "irregular = %s\n" r)
      | None -> ());
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "array %s reads=%d writes=%d radius=%s flops=%.2f\n" a.array a.reads
               a.writes (triple_to_string a.radius) a.array_flops))
        o.arrays;
      List.iter
        (fun l ->
          Buffer.add_string buf
            (Printf.sprintf "loop %s trip=%d vertical=%b\n" l.loop_var l.trip l.vertical))
        o.loops;
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let split_ws s = String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let field fields name =
  let prefix = name ^ "=" in
  match
    List.find_opt (fun f -> String.length f > String.length prefix
                            && String.sub f 0 (String.length prefix) = prefix) fields
  with
  | Some f -> String.sub f (String.length prefix) (String.length f - String.length prefix)
  | None -> failwith ("missing field " ^ name)

let ops_of_text text =
  parse_sections text
  |> List.map (fun s ->
         let get k =
           match List.assoc_opt k s.kvs with
           | Some v -> v
           | None -> failwith (Printf.sprintf "operations metadata: missing %s in [%s]" k s.header)
         in
         let arrays =
           List.filter_map
             (fun line ->
               match split_ws line with
               | "array" :: name :: fields ->
                   Some
                     {
                       array = name;
                       reads = int_of_string (field fields "reads");
                       writes = int_of_string (field fields "writes");
                       radius = triple_of_string (field fields "radius");
                       array_flops = float_of_string (field fields "flops");
                     }
               | _ -> None)
             s.lines
         in
         let loops =
           List.filter_map
             (fun line ->
               match split_ws line with
               | "loop" :: name :: fields ->
                   Some
                     {
                       loop_var = name;
                       trip = int_of_string (field fields "trip");
                       vertical = bool_of_string (field fields "vertical");
                     }
               | _ -> None)
             s.lines
         in
         {
           o_kernel = kernel_of_header s.header;
           domain = triple_of_string (get "domain");
           block = triple_of_string (get "block");
           arrays;
           loops;
           nest_depth = int_of_string (get "nest_depth");
           active_fraction = float_of_string (get "active_fraction");
           stride = int_of_string (get "stride");
           shared_arrays =
             (match get "shared_arrays" with
             | "" -> []
             | s -> String.split_on_char ',' s);
           irregular = List.assoc_opt "irregular" s.kvs;
         })

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let to_files t ~dir =
  write_file (Filename.concat dir "performance.meta") (perf_to_text t.performance);
  write_file (Filename.concat dir "operations.meta") (ops_to_text t.operations);
  write_file (Filename.concat dir "device.meta") (Kft_device.Device.query_report t.device)

let of_files ~dir =
  {
    performance = perf_of_text (read_file (Filename.concat dir "performance.meta"));
    operations = ops_of_text (read_file (Filename.concat dir "operations.meta"));
    device = Kft_device.Device.of_query_report (read_file (Filename.concat dir "device.meta"));
  }
