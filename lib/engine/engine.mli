(** Parallel, memoized evaluation engine for the GGA search.

    The paper runs its search as "500 generations x 100 individuals on 8
    Xeon cores (~11 minutes)"; this module supplies the two mechanisms
    that make that budget tractable here: a fixed-size pool of OCaml 5
    domains for evaluating a generation's population in parallel, and a
    string-keyed memo cache so identical genomes (which a converging GA
    produces in bulk) are never re-evaluated.

    {b Determinism contract.} [Pool.map] reduces results in submission
    index order and never runs caller code concurrently with the
    submitting (coordinator) domain's own bookkeeping; as long as the
    mapped function is a pure function of its input, the list returned is
    bit-identical at any worker count. All random-number generation stays
    confined to the coordinator domain. The cache is transparent for pure
    functions: enabling or disabling it cannot change any returned value,
    only how often the function runs.

    Implemented on the stdlib only ([Domain] / [Mutex] / [Condition]) —
    no [domainslib] dependency (see DESIGN.md 3d). *)

module Pool : sig
  (** A fixed-size domain pool. [jobs <= 1] means "no worker domains":
      work runs inline in the caller, which is the reference sequential
      behaviour the parallel path must reproduce bit-for-bit. *)

  type t

  type stats = {
    st_jobs : int;
    st_workers : int;
    st_batches : int;  (** {!map} calls submitted over the pool's lifetime *)
    st_items : int;  (** total items across those batches *)
    st_max_queue : int;
        (** deepest total across the per-worker deques observed at
            submission *)
    st_steals : int;
        (** tasks a worker took from another worker's deque after
            draining its own. Scheduling-dependent — trace side-channel
            data only. *)
    st_worker_tasks : int list;
        (** tasks executed per worker, in worker index order (slot 0 also
            counts the inline sequential path). The split across workers
            is scheduling-dependent — trace side-channel data only. *)
  }

  val create : jobs:int -> t
  (** [jobs] is the evaluation width: with [jobs > 1], worker domains
      are spawned lazily on the first parallel {!map} (the coordinator
      blocks during {!map}); [jobs <= 1] never spawns and {!map}
      degenerates to [List.map]. Lazy spawning matters because even an
      idle domain taxes the whole process — every minor GC is a
      stop-the-world rendezvous across all domains — so a pool whose
      clients always take their serial fallback costs nothing. The
      number of domains spawned is capped at
      [Domain.recommended_domain_count ()] — oversubscribing cores only
      adds GC coordination, and the determinism contract makes the cap
      observationally invisible. {!jobs} always reports the requested
      width. *)

  val jobs : t -> int

  val workers : t -> int
  (** Domains the pool will use: [min jobs (recommended_domain_count)]
      (spawned on first parallel {!map}). Lets callers scale
      work-splitting to real parallelism instead of the requested
      width. *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Deterministic parallel map with work stealing: contiguous chunks
      of the input are dealt round-robin onto per-worker deques; a
      worker that drains its own deque steals from the back of another's
      (see {!stats}[.st_steals]). Stealing only moves work between
      domains — results are reduced in submission index order, so the
      returned list is bit-identical at any [jobs] setting. If one or
      more applications raise, every task still runs to completion (the
      pool stays reusable) and the exception of the {e lowest submission
      index} is re-raised in the caller. Raises [Invalid_argument] after
      {!shutdown}. *)

  val shutdown : t -> unit
  (** Join all worker domains. Idempotent. *)

  val stats : t -> stats
  (** Instrumentation snapshot: per-worker job counts, queue depth and
      submission-order batch totals. Call between batches (the counters
      are updated by the coordinator and by workers mid-batch). *)
end

module Cache : sig
  (** String-keyed memo cache with hit/miss/size counters. *)

  type 'a t

  type stats = { hits : int; misses : int; size : int }

  val create : unit -> 'a t

  val find : 'a t -> string -> 'a option
  (** Lookup, counting a hit or a miss. *)

  val peek : 'a t -> string -> 'a option
  (** Lookup without touching the counters. *)

  val add : 'a t -> string -> 'a -> unit
  (** Insert (first insertion wins: re-adding an existing key is a
      no-op, so concurrent duplicate computations cannot flip a cached
      value). *)

  val stats : 'a t -> stats

  val clear : 'a t -> unit
  (** Drop all entries and reset the counters. *)
end

type t
(** A pool plus the memoization policy: what [Gga.run ?engine] consumes. *)

val create : ?jobs:int -> ?memo:bool -> unit -> t
(** [jobs] defaults to [1] (sequential), [memo] to [true]. *)

val jobs : t -> int
val workers : t -> int
val memo_enabled : t -> bool

val pool_stats : t -> Pool.stats
(** {!Pool.stats} of the engine's pool. Execution-shape data (varies
    with [--jobs]); consumers put it in the trace's side channel. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!Pool.map} on the engine's pool. *)

val shutdown : t -> unit

val with_engine : ?jobs:int -> ?memo:bool -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); used for the engine's
    wall-time stats so they never perturb deterministic results. *)
