let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Fixed-size domain pool                                              *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* Two-list functional deque: [front] holds elements in pop order,
     [back] holds elements most-recently-pushed first. Owner operations
     ([push_back] at submission, [pop_front] by the owning worker) are
     O(1); a steal ([pop_back]) is amortized O(1). Always used under the
     pool mutex, so no per-deque synchronization. *)
  module Deque = struct
    type 'a t = { mutable front : 'a list; mutable back : 'a list }

    let create () = { front = []; back = [] }
    let length d = List.length d.front + List.length d.back
    let push_back d x = d.back <- x :: d.back

    let pop_front d =
      match d.front with
      | x :: rest ->
          d.front <- rest;
          Some x
      | [] -> (
          match List.rev d.back with
          | [] -> None
          | x :: rest ->
              d.back <- [];
              d.front <- rest;
              Some x)

    let pop_back d =
      match d.back with
      | x :: rest ->
          d.back <- rest;
          Some x
      | [] -> (
          match List.rev d.front with
          | [] -> None
          | x :: rest ->
              d.front <- [];
              d.back <- rest;
              Some x)
  end

  type stats = {
    st_jobs : int;
    st_workers : int;
    st_batches : int;
    st_items : int;
    st_max_queue : int;
    st_steals : int;
    st_worker_tasks : int list;
  }

  type t = {
    jobs : int;  (** requested evaluation width *)
    workers : int;  (** domains spawned on first use: capped at the core count *)
    mutable spawned : bool;
    mutable domains : unit Domain.t list;
    deques : (unit -> unit) Deque.t array;  (** one per worker *)
    mutable next_deque : int;  (** round-robin submission cursor *)
    m : Mutex.t;
    nonempty : Condition.t;
    mutable shut : bool;
    (* instrumentation (trace side channel): batches/items count [map]
       calls and their submission sizes; [max_queue] is the deepest total
       across the per-worker deques observed at submission; [steals]
       counts tasks a worker took from another worker's deque;
       [worker_tasks.(i)] counts tasks executed by worker [i] (slot 0
       doubles as the inline/sequential path). Each worker_tasks slot is
       written by exactly one domain and read only after the batch's
       completion handshake, so the reads are quiescent. *)
    mutable batches : int;
    mutable items : int;
    mutable max_queue : int;
    mutable steals : int;
    worker_tasks : int array;
  }

  let jobs t = t.jobs
  let workers t = t.workers

  let stats t =
    {
      st_jobs = t.jobs;
      st_workers = t.workers;
      st_batches = t.batches;
      st_items = t.items;
      st_max_queue = t.max_queue;
      st_steals = t.steals;
      st_worker_tasks = Array.to_list t.worker_tasks;
    }

  (* Take the next task for worker [i]: the worker's own deque first
     (front, FIFO — preserves submission locality), then a round-robin
     scan of the other workers' deques starting at [i+1], stealing from
     the back (the opposite end from the victim's own pops, the classic
     work-stealing discipline — here it only reduces contention on the
     shared list spines, since everything runs under the pool mutex).
     Must be called with the mutex held. Determinism is unaffected: a
     steal only changes {e which domain} runs a task, and [map] reduces
     results by submission index. *)
  let try_take pool i =
    match Deque.pop_front pool.deques.(i) with
    | Some _ as t -> t
    | None ->
        let w = Array.length pool.deques in
        let rec scan k =
          if k >= w then None
          else
            match Deque.pop_back pool.deques.((i + k) mod w) with
            | Some _ as t ->
                pool.steals <- pool.steals + 1;
                t
            | None -> scan (k + 1)
        in
        scan 1

  let rec worker pool i =
    Mutex.lock pool.m;
    let rec next () =
      match try_take pool i with
      | Some _ as t -> t
      | None ->
          if pool.shut then None
          else begin
            Condition.wait pool.nonempty pool.m;
            next ()
          end
    in
    let task = next () in
    Mutex.unlock pool.m;
    match task with
    | None -> ()
    | Some f ->
        f ();
        pool.worker_tasks.(i) <- pool.worker_tasks.(i) + 1;
        worker pool i

  let create ~jobs =
    let jobs = max 1 jobs in
    (* never oversubscribe: on a machine with fewer cores than [jobs],
       extra domains only add stop-the-world GC coordination without any
       extra throughput.  The determinism contract (results reduced in
       submission index order) makes the cap observationally invisible. *)
    let workers = min jobs (Domain.recommended_domain_count ()) in
    {
      jobs;
      workers;
      spawned = false;
      domains = [];
        deques = Array.init workers (fun _ -> Deque.create ());
      next_deque = 0;
      m = Mutex.create ();
      nonempty = Condition.create ();
      shut = false;
      batches = 0;
      items = 0;
      max_queue = 0;
      steals = 0;
      worker_tasks = Array.make workers 0;
    }

  (* Worker domains are spawned lazily on the first parallel [map]: even
     an idle extra domain taxes the whole process (every minor GC is a
     stop-the-world rendezvous across all domains), so an engine whose
     launches all take the adaptive serial fallback must cost nothing.
     Called with the pool mutex held, from the single [map] coordinator;
     the fresh workers block on that same mutex until submission
     completes and then find their deques already dealt. *)
  let ensure_spawned pool =
    if not pool.spawned then begin
      pool.spawned <- true;
      pool.domains <- List.init pool.workers (fun i -> Domain.spawn (fun () -> worker pool i))
    end

  let shutdown pool =
    let join_these =
      Mutex.protect pool.m (fun () ->
          if pool.shut then []
          else begin
            pool.shut <- true;
            Condition.broadcast pool.nonempty;
            let ds = pool.domains in
            pool.domains <- [];
            ds
          end)
    in
    List.iter Domain.join join_these

  let map pool f items =
    if Mutex.protect pool.m (fun () -> pool.shut) then
      invalid_arg "Engine.Pool.map: pool is shut down";
    match items with
    | [] -> []
    | items when pool.jobs <= 1 ->
        pool.batches <- pool.batches + 1;
        pool.items <- pool.items + List.length items;
        pool.worker_tasks.(0) <- pool.worker_tasks.(0) + 1;
        List.map f items
    | items ->
        let arr = Array.of_list items in
        let n = Array.length arr in
        let results = Array.make n None in
        let done_m = Mutex.create () in
        let done_c = Condition.create () in
        (* submit contiguous chunks rather than one task per item: the
           queue/condvar handshake costs the same per task regardless of
           task size, so chunking keeps the coordination overhead
           proportional to [jobs], not to [n].  A few chunks per worker
           smooths uneven per-item work. *)
        let chunks = min n (pool.workers * 4) in
        let chunk_size = (n + chunks - 1) / chunks in
        let remaining = ref ((n + chunk_size - 1) / chunk_size) in
        let n_chunks = !remaining in
        let task lo hi () =
          for i = lo to hi do
            results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e)
          done;
          Mutex.protect done_m (fun () ->
              decr remaining;
              if !remaining = 0 then Condition.signal done_c)
        in
        pool.batches <- pool.batches + 1;
        pool.items <- pool.items + n;
        (* deal chunks round-robin across the per-worker deques: an even
           initial split keeps most pops local, and the cursor persists
           across batches so short batches don't always land on worker 0 *)
        Mutex.protect pool.m (fun () ->
            ensure_spawned pool;
            for c = 0 to n_chunks - 1 do
              let lo = c * chunk_size in
              let hi = min (n - 1) (lo + chunk_size - 1) in
              Deque.push_back pool.deques.(pool.next_deque) (task lo hi);
              pool.next_deque <- (pool.next_deque + 1) mod Array.length pool.deques
            done;
            let depth = Array.fold_left (fun acc d -> acc + Deque.length d) 0 pool.deques in
            pool.max_queue <- max pool.max_queue depth;
            Condition.broadcast pool.nonempty);
        Mutex.lock done_m;
        while !remaining > 0 do
          Condition.wait done_c done_m
        done;
        Mutex.unlock done_m;
        (* reduce in submission index order; re-raise the lowest-index
           failure only after every task has finished, so the pool (and
           the results of unaffected tasks) stay consistent *)
        Array.to_list results
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
end

(* ------------------------------------------------------------------ *)
(* Memo cache                                                          *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type 'a t = {
    tbl : (string, 'a) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  type stats = { hits : int; misses : int; size : int }

  let create () = { tbl = Hashtbl.create 256; hits = 0; misses = 0 }

  let peek c key = Hashtbl.find_opt c.tbl key

  let find c key =
    match Hashtbl.find_opt c.tbl key with
    | Some _ as r ->
        c.hits <- c.hits + 1;
        r
    | None ->
        c.misses <- c.misses + 1;
        None

  let add c key v = if not (Hashtbl.mem c.tbl key) then Hashtbl.replace c.tbl key v

  let stats (c : 'a t) : stats = { hits = c.hits; misses = c.misses; size = Hashtbl.length c.tbl }

  let clear c =
    Hashtbl.reset c.tbl;
    c.hits <- 0;
    c.misses <- 0
end

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type t = { pool : Pool.t; memo : bool }

let create ?(jobs = 1) ?(memo = true) () = { pool = Pool.create ~jobs; memo }

let jobs t = Pool.jobs t.pool
let workers t = Pool.workers t.pool

let memo_enabled t = t.memo

let pool_stats t = Pool.stats t.pool

let map t f items = Pool.map t.pool f items

let shutdown t = Pool.shutdown t.pool

let with_engine ?jobs ?memo f =
  let e = create ?jobs ?memo () in
  Fun.protect ~finally:(fun () -> shutdown e) (fun () -> f e)
