let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Fixed-size domain pool                                              *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type task = Task of (unit -> unit) | Quit

  type stats = {
    st_jobs : int;
    st_workers : int;
    st_batches : int;
    st_items : int;
    st_max_queue : int;
    st_worker_tasks : int list;
  }

  type t = {
    jobs : int;  (** requested evaluation width *)
    workers : int;  (** domains actually spawned: capped at the core count *)
    mutable domains : unit Domain.t list;
    queue : task Queue.t;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable shut : bool;
    (* instrumentation (trace side channel): batches/items count [map]
       calls and their submission sizes; [max_queue] is the deepest queue
       observed at submission; [worker_tasks.(i)] counts tasks executed
       by worker [i] (slot 0 doubles as the inline/sequential path). Each
       slot is written by exactly one domain and read only after the
       batch's completion handshake, so the reads are quiescent. *)
    mutable batches : int;
    mutable items : int;
    mutable max_queue : int;
    worker_tasks : int array;
  }

  let jobs t = t.jobs
  let workers t = t.workers

  let stats t =
    {
      st_jobs = t.jobs;
      st_workers = t.workers;
      st_batches = t.batches;
      st_items = t.items;
      st_max_queue = t.max_queue;
      st_worker_tasks = Array.to_list t.worker_tasks;
    }

  let rec worker pool i =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.shut do
      Condition.wait pool.nonempty pool.m
    done;
    let task = if Queue.is_empty pool.queue then Quit else Queue.pop pool.queue in
    Mutex.unlock pool.m;
    match task with
    | Quit -> ()
    | Task f ->
        f ();
        pool.worker_tasks.(i) <- pool.worker_tasks.(i) + 1;
        worker pool i

  let create ~jobs =
    let jobs = max 1 jobs in
    (* never oversubscribe: on a machine with fewer cores than [jobs],
       extra domains only add stop-the-world GC coordination without any
       extra throughput.  The determinism contract (results reduced in
       submission index order) makes the cap observationally invisible. *)
    let workers = min jobs (Domain.recommended_domain_count ()) in
    let pool =
      {
        jobs;
        workers;
        domains = [];
        queue = Queue.create ();
        m = Mutex.create ();
        nonempty = Condition.create ();
        shut = false;
        batches = 0;
        items = 0;
        max_queue = 0;
        worker_tasks = Array.make workers 0;
      }
    in
    if jobs > 1 then
      pool.domains <- List.init workers (fun i -> Domain.spawn (fun () -> worker pool i));
    pool

  let shutdown pool =
    let join_these =
      Mutex.protect pool.m (fun () ->
          if pool.shut then []
          else begin
            pool.shut <- true;
            Condition.broadcast pool.nonempty;
            let ds = pool.domains in
            pool.domains <- [];
            ds
          end)
    in
    List.iter Domain.join join_these

  let map pool f items =
    if Mutex.protect pool.m (fun () -> pool.shut) then
      invalid_arg "Engine.Pool.map: pool is shut down";
    match items with
    | [] -> []
    | items when pool.jobs <= 1 ->
        pool.batches <- pool.batches + 1;
        pool.items <- pool.items + List.length items;
        pool.worker_tasks.(0) <- pool.worker_tasks.(0) + 1;
        List.map f items
    | items ->
        let arr = Array.of_list items in
        let n = Array.length arr in
        let results = Array.make n None in
        let done_m = Mutex.create () in
        let done_c = Condition.create () in
        (* submit contiguous chunks rather than one task per item: the
           queue/condvar handshake costs the same per task regardless of
           task size, so chunking keeps the coordination overhead
           proportional to [jobs], not to [n].  A few chunks per worker
           smooths uneven per-item work. *)
        let chunks = min n (pool.workers * 4) in
        let chunk_size = (n + chunks - 1) / chunks in
        let remaining = ref ((n + chunk_size - 1) / chunk_size) in
        let n_chunks = !remaining in
        let task lo hi () =
          for i = lo to hi do
            results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e)
          done;
          Mutex.protect done_m (fun () ->
              decr remaining;
              if !remaining = 0 then Condition.signal done_c)
        in
        pool.batches <- pool.batches + 1;
        pool.items <- pool.items + n;
        Mutex.protect pool.m (fun () ->
            for c = 0 to n_chunks - 1 do
              let lo = c * chunk_size in
              let hi = min (n - 1) (lo + chunk_size - 1) in
              Queue.add (Task (task lo hi)) pool.queue
            done;
            pool.max_queue <- max pool.max_queue (Queue.length pool.queue);
            Condition.broadcast pool.nonempty);
        Mutex.lock done_m;
        while !remaining > 0 do
          Condition.wait done_c done_m
        done;
        Mutex.unlock done_m;
        (* reduce in submission index order; re-raise the lowest-index
           failure only after every task has finished, so the pool (and
           the results of unaffected tasks) stay consistent *)
        Array.to_list results
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
end

(* ------------------------------------------------------------------ *)
(* Memo cache                                                          *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type 'a t = {
    tbl : (string, 'a) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  type stats = { hits : int; misses : int; size : int }

  let create () = { tbl = Hashtbl.create 256; hits = 0; misses = 0 }

  let peek c key = Hashtbl.find_opt c.tbl key

  let find c key =
    match Hashtbl.find_opt c.tbl key with
    | Some _ as r ->
        c.hits <- c.hits + 1;
        r
    | None ->
        c.misses <- c.misses + 1;
        None

  let add c key v = if not (Hashtbl.mem c.tbl key) then Hashtbl.replace c.tbl key v

  let stats (c : 'a t) : stats = { hits = c.hits; misses = c.misses; size = Hashtbl.length c.tbl }

  let clear c =
    Hashtbl.reset c.tbl;
    c.hits <- 0;
    c.misses <- 0
end

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type t = { pool : Pool.t; memo : bool }

let create ?(jobs = 1) ?(memo = true) () = { pool = Pool.create ~jobs; memo }

let jobs t = Pool.jobs t.pool
let workers t = Pool.workers t.pool

let memo_enabled t = t.memo

let pool_stats t = Pool.stats t.pool

let map t f items = Pool.map t.pool f items

let shutdown t = Pool.shutdown t.pool

let with_engine ?jobs ?memo f =
  let e = create ?jobs ?memo () in
  Fun.protect ~finally:(fun () -> shutdown e) (fun () -> f e)
