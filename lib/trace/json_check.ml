(* Minimal strict JSON syntax checker (RFC 8259 grammar, no semantic
   interpretation). The repo emits JSON from three hand-rolled printers
   (lint, trace, bench); this validates their output without adding a
   JSON library dependency. *)

exception Bad of { pos : int; message : string }

type st = { text : string; mutable pos : int }

let fail st message = raise (Bad { pos = st.pos; message })

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %C, got %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, got end of input" c)

let literal st word =
  let n = String.length word in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = word then
    st.pos <- st.pos + n
  else fail st ("expected literal " ^ word)

let string_ st =
  expect st '"';
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance st;
            go ()
        | Some 'u' ->
            advance st;
            for _ = 1 to 4 do
              match peek st with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance st
              | _ -> fail st "bad \\u escape"
            done;
            go ()
        | _ -> fail st "bad escape")
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character"
    | Some _ ->
        advance st;
        go ()
  in
  go ()

let number st =
  let digit () =
    match peek st with
    | Some ('0' .. '9') ->
        advance st;
        true
    | _ -> false
  in
  let digits what = if not (digit ()) then fail st ("expected digit in " ^ what) else while digit () do () done in
  (match peek st with Some '-' -> advance st | _ -> ());
  (match peek st with
  | Some '0' -> advance st
  | Some ('1' .. '9') -> digits "int"
  | _ -> fail st "expected digit");
  (match peek st with
  | Some '.' ->
      advance st;
      digits "fraction"
  | _ -> ());
  match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      digits "exponent"
  | _ -> ()

let rec value st =
  skip_ws st;
  match peek st with
  | Some '"' -> string_ st
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then advance st
      else begin
        let rec members () =
          skip_ws st;
          string_ st;
          skip_ws st;
          expect st ':';
          value st;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | _ -> expect st '}'
        in
        members ()
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then advance st
      else begin
        let rec elements () =
          value st;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | _ -> expect st ']'
        in
        elements ()
      end
  | Some 't' -> literal st "true"
  | Some 'f' -> literal st "false"
  | Some 'n' -> literal st "null"
  | Some ('-' | '0' .. '9') -> number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)
  | None -> fail st "unexpected end of input"

let check text =
  let st = { text; pos = 0 } in
  match
    value st;
    skip_ws st;
    if st.pos <> String.length text then fail st "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad { pos; message } -> Error (Printf.sprintf "invalid JSON at byte %d: %s" pos message)

let is_valid text = check text = Ok ()
