(** Deterministic end-to-end tracing: hierarchical spans plus monotonic
    counters for every pipeline stage, worker pool, simulator launch and
    search generation.

    {b Determinism contract.} A trace has two channels:

    - the {e canonical channel} — span tree, logical sequence numbers,
      counters and [set] args. Everything here is a pure function of the
      traced computation's inputs, never of its scheduling: all span
      opens/closes and counter bumps happen on the coordinator domain,
      in the same submission order that {!Kft_engine.Engine.Pool.map}
      reduces in, so {!render_json} is byte-identical at any [--jobs]
      value and across repeated runs (with a fresh profile cache).
    - the {e side channel} — wall-clock timestamps and [note] args
      (worker counts, chunk splits, queue depths: execution shape).
      Excluded from {!render_json}; shown by {!render_tree} and
      {!render_chrome}, which are diagnostic views, not golden surfaces.

    All operations besides rendering must be called from the domain that
    created the trace (the coordinator); instrumented libraries only
    touch the trace outside their worker-domain code. *)

type value = Int of int | Float of float | Bool of bool | Str of string

type t
(** A trace: a root span plus a cursor into the currently open span. *)

val create : ?clock:(unit -> float) -> string -> t
(** Fresh trace whose root span is named after the traced run.
    [clock] (default [Unix.gettimeofday]) feeds the side channel only;
    tests inject a fixed clock to pin renderer output. *)

val name : t -> string

(** {1 Recording}

    Every recording function takes a [t option] so instrumented code
    threads an optional trace with zero syntactic overhead: [None] makes
    each call a no-op. *)

val with_span : t option -> string -> (unit -> 'a) -> 'a
(** [with_span tr name f] opens a child span of the currently open span,
    runs [f], and closes it (also on exception). Span ids are logical
    sequence numbers assigned in open order. *)

val add : t option -> string -> int -> unit
(** Bump a monotonic counter on the currently open span (created at 0 on
    first use; counter order is first-use order — canonical channel). *)

val set : t option -> string -> value -> unit
(** Set a deterministic argument on the currently open span (canonical
    channel; last write wins). *)

val note : t option -> string -> value -> unit
(** Set a side-channel argument on the currently open span: execution
    shape (worker counts, chunking, queue depths) and anything else that
    may legitimately vary with [--jobs]. Excluded from {!render_json}. *)

(** {1 Inspection} *)

val top_spans : t -> (string * float) list
(** Direct children of the root span in sequence order, with wall-clock
    duration in seconds (side channel) — the per-stage breakdown the
    bench harness tabulates. *)

val counters : t -> string -> (string * int) list
(** Summed counters over every span named [name] (canonical channel). *)

(** {1 Exporters} *)

val render_tree : t -> string
(** Human-readable span tree with counters, args and wall-clock
    durations; appended to the stage report. Not a golden surface. *)

val render_json : t -> string
(** Canonical machine JSON (schema in README "Tracing"): the span tree
    with sequence numbers, counters and [set] args only. Byte-identical
    at any worker count and across repeated runs. *)

val render_chrome : t -> string
(** Chrome [trace_event] JSON (complete "X" events with microsecond
    timestamps relative to trace creation) loadable in about:tracing and
    Perfetto. Includes the side channel. *)
