(** Strict JSON syntax checker (RFC 8259 grammar; no interpretation).

    Validates the repo's hand-rolled JSON emitters — {!Trace.render_json},
    {!Trace.render_chrome}, [Lint.render_json], the bench tables — in
    tests and the [@trace] CI sweep without a JSON library dependency. *)

val check : string -> (unit, string) result
(** [Ok ()] iff the whole input is exactly one valid JSON value
    (surrounding whitespace allowed); [Error msg] pinpoints the first
    offending byte otherwise. *)

val is_valid : string -> bool
