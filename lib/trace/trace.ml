type value = Int of int | Float of float | Bool of bool | Str of string

type span = {
  sp_id : int;  (** logical sequence number: assigned in open order *)
  sp_name : string;
  mutable sp_counters : (string * int) list;  (** reversed first-use order *)
  mutable sp_args : (string * value) list;  (** reversed first-set order *)
  mutable sp_notes : (string * value) list;  (** side channel *)
  mutable sp_children : span list;  (** reversed open order *)
  sp_t0 : float;
  mutable sp_t1 : float;
}

type t = {
  tr_clock : unit -> float;
  tr_root : span;
  mutable tr_stack : span list;  (** open spans, innermost first; never empty *)
  mutable tr_next : int;
}

let create ?(clock = Unix.gettimeofday) name =
  let t0 = clock () in
  let root =
    {
      sp_id = 0;
      sp_name = name;
      sp_counters = [];
      sp_args = [];
      sp_notes = [];
      sp_children = [];
      sp_t0 = t0;
      sp_t1 = t0;
    }
  in
  { tr_clock = clock; tr_root = root; tr_stack = [ root ]; tr_next = 1 }

let name t = t.tr_root.sp_name

let current t = match t.tr_stack with s :: _ -> s | [] -> t.tr_root

let with_span opt name f =
  match opt with
  | None -> f ()
  | Some t ->
      let parent = current t in
      let sp =
        {
          sp_id = t.tr_next;
          sp_name = name;
          sp_counters = [];
          sp_args = [];
          sp_notes = [];
          sp_children = [];
          sp_t0 = t.tr_clock ();
          sp_t1 = 0.0;
        }
      in
      t.tr_next <- t.tr_next + 1;
      parent.sp_children <- sp :: parent.sp_children;
      t.tr_stack <- sp :: t.tr_stack;
      Fun.protect
        ~finally:(fun () ->
          sp.sp_t1 <- t.tr_clock ();
          (match t.tr_stack with
          | top :: rest when top == sp -> t.tr_stack <- rest
          | _ -> () (* unbalanced close: keep the trace usable *)))
        f

(* assoc update preserving first-use order (lists are kept reversed and
   reversed once at render time) *)
let bump assoc key n =
  let rec go acc = function
    | [] -> (key, n) :: assoc
    | (k, v) :: rest when k = key -> List.rev_append acc ((k, v + n) :: rest)
    | kv :: rest -> go (kv :: acc) rest
  in
  go [] assoc

let put assoc key v =
  let rec go acc = function
    | [] -> (key, v) :: assoc
    | (k, _) :: rest when k = key -> List.rev_append acc ((k, v) :: rest)
    | kv :: rest -> go (kv :: acc) rest
  in
  go [] assoc

let add opt key n =
  match opt with
  | None -> ()
  | Some t ->
      let sp = current t in
      sp.sp_counters <- bump sp.sp_counters key n

let set opt key v =
  match opt with
  | None -> ()
  | Some t ->
      let sp = current t in
      sp.sp_args <- put sp.sp_args key v

let note opt key v =
  match opt with
  | None -> ()
  | Some t ->
      let sp = current t in
      sp.sp_notes <- put sp.sp_notes key v

(* a span that was never closed (the root, or an unbalanced open) ends
   when its last descendant does *)
let rec span_end sp =
  let own = Float.max sp.sp_t0 sp.sp_t1 in
  if sp.sp_t1 > sp.sp_t0 then own
  else List.fold_left (fun acc c -> Float.max acc (span_end c)) own sp.sp_children

let wall sp = Float.max 0.0 (span_end sp -. sp.sp_t0)

let top_spans t =
  List.rev_map (fun sp -> (sp.sp_name, wall sp)) t.tr_root.sp_children

let counters t name =
  let acc = ref [] in
  let rec walk sp =
    if sp.sp_name = name then
      List.iter (fun (k, v) -> acc := bump !acc k v) (List.rev sp.sp_counters);
    List.iter walk (List.rev sp.sp_children)
  in
  walk t.tr_root;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every double and prints the same digits for the
   same bits, so floats in the canonical channel stay byte-stable *)
let value_text = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Bool b -> string_of_bool b
  | Str s -> s

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "\"%.17g\"" f
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let render_tree t =
  let b = Buffer.create 2048 in
  let fields sp =
    let cs =
      List.rev_map (fun (k, v) -> Printf.sprintf "%s=%d" k v) sp.sp_counters
    in
    let args = List.rev_map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_text v)) sp.sp_args in
    let notes =
      List.rev_map (fun (k, v) -> Printf.sprintf "%s~%s" k (value_text v)) sp.sp_notes
    in
    match cs @ args @ notes with
    | [] -> ""
    | fs -> "  [" ^ String.concat " " fs ^ "]"
  in
  let rec walk ~root prefix last sp =
    let branch, child_prefix =
      if root then ("", "")
      else if last then (prefix ^ "`- ", prefix ^ "   ")
      else (prefix ^ "|- ", prefix ^ "|  ")
    in
    Buffer.add_string b
      (Printf.sprintf "%s%s%s  %.1f ms\n" branch sp.sp_name (fields sp) (1000.0 *. wall sp));
    let children = List.rev sp.sp_children in
    let n = List.length children in
    List.iteri (fun i c -> walk ~root:false child_prefix (i = n - 1) c) children
  in
  walk ~root:true "" true t.tr_root;
  Buffer.contents b

let render_json t =
  let b = Buffer.create 4096 in
  let obj kvs = "{" ^ String.concat "," kvs ^ "}" in
  let rec span sp =
    let counters =
      obj (List.rev_map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) sp.sp_counters)
    in
    let args =
      obj
        (List.rev_map
           (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v))
           sp.sp_args)
    in
    Printf.sprintf "{\"seq\":%d,\"name\":\"%s\",\"counters\":%s,\"args\":%s,\"children\":[%s]}"
      sp.sp_id (json_escape sp.sp_name) counters args
      (String.concat "," (List.rev_map span sp.sp_children))
  in
  Buffer.add_string b "{\"tool\":\"kft-trace\",\"version\":1,\"root\":";
  Buffer.add_string b (span t.tr_root);
  Buffer.add_string b "}\n";
  Buffer.contents b

let render_chrome t =
  let b = Buffer.create 4096 in
  let t0 = t.tr_root.sp_t0 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let rec walk sp =
    if not !first then Buffer.add_char b ',';
    first := false;
    let args =
      List.rev_map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) sp.sp_counters
      @ List.rev_map
          (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v))
          sp.sp_args
      @ List.rev_map
          (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v))
          sp.sp_notes
    in
    Buffer.add_string b
      (Printf.sprintf
         "\n {\"name\":\"%s\",\"cat\":\"kft\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
         (json_escape sp.sp_name)
         (1e6 *. (sp.sp_t0 -. t0))
         (1e6 *. wall sp)
         (String.concat "," args));
    List.iter walk (List.rev sp.sp_children)
  in
  walk t.tr_root;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
