(* Forward abstract interpretation over the CUDA subset.

   Domain: reduced product of saturating integer intervals and symbolic
   affine forms sum(c_i * s_i) + c over a small symbol universe — the
   six launch builtins (threadIdx/blockIdx per dimension) plus one fresh
   symbol per loop induction variable.  blockDim, gridDim and integer
   kernel arguments are concrete at analysis time, so the affine forms
   of the usual stencil index expressions (gi = blockIdx.x * blockDim.x
   + threadIdx.x, idx = (k*ny + j)*nx + i) stay exact end-to-end: the
   interval of an affine form is the termwise sum over symbol ranges,
   and conditional narrowing on an affine variable knows precisely what
   fraction of threads survives (mixed-radix completeness check below).

   The same walk doubles as a guard simplifier: in [simplify] mode an
   [If] whose condition is decided is spliced out.  Everything is a
   sound over-approximation: joins at control merges, havoc for scalars
   mutated in loop bodies, a single abstract pass per loop body whose
   entry state subsumes every concrete iteration. *)

open Kft_cuda.Ast
module Loc = Kft_cuda.Loc
module Senv = Map.Make (String)
module Imap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* saturating intervals                                                *)
(* ------------------------------------------------------------------ *)

type itv = { lo : int; hi : int }

let big = 1 lsl 44
let clamp v = if v > big then big else if v < -big then -big else v
let sat_add a b = clamp (a + b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if abs a > big / abs b then if (a > 0) = (b > 0) then big else -big
  else clamp (a * b)

let itop = { lo = -big; hi = big }
let iconst n = { lo = clamp n; hi = clamp n }
let is_const i = i.lo = i.hi
let itv_width i = sat_add (sat_add i.hi (-i.lo)) 1
let pp_itv i = Printf.sprintf "[%d,%d]" i.lo i.hi
let ijoin a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let imeet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let iadd a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let isub a b = { lo = sat_add a.lo (-b.hi); hi = sat_add a.hi (-b.lo) }
let ineg a = { lo = -a.hi; hi = -a.lo }

let imul a b =
  let c1 = sat_mul a.lo b.lo
  and c2 = sat_mul a.lo b.hi
  and c3 = sat_mul a.hi b.lo
  and c4 = sat_mul a.hi b.hi in
  { lo = min (min c1 c2) (min c3 c4); hi = max (max c1 c2) (max c3 c4) }

(* OCaml division truncates toward zero; for a fixed nonzero divisor it
   is monotone in the dividend, so corners suffice.  A divisor interval
   that contains zero (or is unbounded) yields top. *)
let idiv a b =
  if is_const b && b.lo <> 0 then begin
    let d = b.lo in
    let x = a.lo / d and y = a.hi / d in
    { lo = min x y; hi = max x y }
  end
  else if b.lo >= 1 || b.hi <= -1 then begin
    let c1 = a.lo / b.lo and c2 = a.lo / b.hi and c3 = a.hi / b.lo and c4 = a.hi / b.hi in
    { lo = min (min c1 c2) (min c3 c4); hi = max (max c1 c2) (max c3 c4) }
  end
  else itop

(* a mod d in the subset follows OCaml semantics: result has the sign
   of a and magnitude < |d|.  Sound for any positive divisor range. *)
let imod a b =
  if b.lo >= 1 then begin
    let m = b.hi - 1 in
    let lo = max (min a.lo 0) (-m) and hi = min (max a.hi 0) m in
    { lo; hi }
  end
  else itop

let imin a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
let imax a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

let iabs a =
  if a.lo >= 0 then a
  else if a.hi <= 0 then ineg a
  else { lo = 0; hi = max (-a.lo) a.hi }

(* ------------------------------------------------------------------ *)
(* affine forms                                                        *)
(* ------------------------------------------------------------------ *)

type aff = { coef : int Imap.t; const : int }

let aconst n = { coef = Imap.empty; const = n }
let asym s = { coef = Imap.singleton s 1; const = 0 }

let aadd a b =
  {
    coef =
      Imap.union (fun _ x y -> if x + y = 0 then None else Some (x + y)) a.coef b.coef;
    const = a.const + b.const;
  }

let ascale k a =
  if k = 0 then aconst 0
  else { coef = Imap.map (fun c -> c * k) a.coef; const = a.const * k }

let aneg a = ascale (-1) a
let asub a b = aadd a (aneg b)

let adiv_exact a d =
  if d > 0 && a.const mod d = 0 && Imap.for_all (fun _ c -> c mod d = 0) a.coef then
    Some { coef = Imap.map (fun c -> c / d) a.coef; const = a.const / d }
  else None

let equal_aff a b = a.const = b.const && Imap.equal ( = ) a.coef b.coef

(* ------------------------------------------------------------------ *)
(* analysis context                                                    *)
(* ------------------------------------------------------------------ *)

type status = Proved | Oob | Unknown
type space = Global | Shared

type access = {
  acc_array : string;
  acc_space : space;
  acc_write : bool;
  acc_loc : Loc.pos;
  acc_status : status;
  acc_range : itv;
  acc_extent : int;
  acc_tx_stride : int option;
  acc_bytes : float;
  acc_exact : bool;
}

type guard = {
  gu_loc : Loc.pos;
  gu_cond : string;
  gu_decided : bool option;
  gu_thread_dep : bool;
  gu_frac : float;
}

type footprint = { fp_reads : itv option; fp_writes : itv option }

type result = {
  res_kernel : string;
  res_accesses : access list;
  res_guards : guard list;
  res_proved : int;
  res_unknown : int;
  res_oob : int;
  res_all_proved : bool;
  res_est_bytes : float;
  res_est_exact : bool;
  res_footprints : (string * footprint) list;
}

type sym_info = { rng : itv; s_uni : bool }

type ctx = {
  syms : (int, sym_info) Hashtbl.t;
  mutable next_sym : int;
  global_cells : (string * int) list;
  shared : (string, int list) Hashtbl.t;
  mutable record : bool;  (* off while deciding conditions *)
  mutable accesses : access list;  (* reversed *)
  mutable guards : guard list;  (* reversed *)
  mutable eliminated : int;
  mutable returns : bool;
  mutable cloc : Loc.pos;
  simplify : bool;
  threads : float;
}

let sym_tx = 0
let sym_ty = 1
let sym_tz = 2

let fresh_sym ctx info =
  let s = ctx.next_sym in
  ctx.next_sym <- s + 1;
  Hashtbl.replace ctx.syms s info;
  s

let sym_info ctx s =
  match Hashtbl.find_opt ctx.syms s with
  | Some i -> i
  | None -> { rng = itop; s_uni = false }

(* ------------------------------------------------------------------ *)
(* abstract values: reduced product                                    *)
(* ------------------------------------------------------------------ *)

type aval = { aff : aff option; itv : itv; uni : bool }
(* [uni]: the value is uniformly distributed over the integers of [itv]
   across the threads/iterations it ranges over — licenses exact
   narrowing fractions for traffic prediction (never affects
   soundness). *)

let top_val = { aff = None; itv = itop; uni = false }
let const_val n = { aff = Some (aconst (clamp n)); itv = iconst n; uni = true }

let range_of_aff ctx a =
  Imap.fold
    (fun s c acc ->
      let r = (sym_info ctx s).rng in
      iadd acc (imul (iconst c) r))
    a.coef (iconst a.const)

(* Mixed-radix completeness: sorted by |coef| ascending, the smallest
   coefficient is 1 and each next equals the product of the widths so
   far (gi = blockIdx.x*blockDim.x + threadIdx.x, tid = ty*bx + tx...).
   Then the affine form takes every integer of its range exactly once
   per sweep: uniform. *)
let covers ctx a =
  let terms = Imap.bindings a.coef in
  match terms with
  | [] -> true
  | _ ->
      List.for_all (fun (s, _) -> (sym_info ctx s).s_uni) terms
      && begin
           let sorted =
             List.sort (fun (_, c1) (_, c2) -> compare (abs c1) (abs c2)) terms
           in
           let rec go acc = function
             | [] -> true
             | (s, c) :: rest ->
                 abs c = acc && go (acc * itv_width (sym_info ctx s).rng) rest
           in
           go 1 sorted
         end

let mk ctx aff itv =
  match aff with
  | None -> { aff = None; itv; uni = is_const itv }
  | Some a ->
      let r = range_of_aff ctx a in
      let itv = match imeet itv r with Some m -> m | None -> itv in
      { aff; itv; uni = covers ctx a }

let sym_val ctx s = mk ctx (Some (asym s)) itop

let join_val ctx a b =
  match (a.aff, b.aff) with
  | Some x, Some y when equal_aff x y -> mk ctx (Some x) (ijoin a.itv b.itv)
  | _ -> mk ctx None (ijoin a.itv b.itv)

let join_env ctx a b =
  Senv.merge
    (fun _ x y ->
      match (x, y) with Some x, Some y -> Some (join_val ctx x y) | _ -> None)
    a b

(* ------------------------------------------------------------------ *)
(* expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

type weight = { trips : float; frac : float; w_exact : bool }

let bool_itv lo hi = { aff = None; itv = { lo; hi }; uni = false }

let builtin_val ctx ~block:(bx, by, bz) ~grid:(gx, gy, gz) = function
  | Thread_idx X -> sym_val ctx sym_tx
  | Thread_idx Y -> sym_val ctx sym_ty
  | Thread_idx Z -> sym_val ctx sym_tz
  | Block_idx X -> sym_val ctx 3
  | Block_idx Y -> sym_val ctx 4
  | Block_idx Z -> sym_val ctx 5
  | Block_dim X -> const_val bx
  | Block_dim Y -> const_val by
  | Block_dim Z -> const_val bz
  | Grid_dim X -> const_val gx
  | Grid_dim Y -> const_val gy
  | Grid_dim Z -> const_val gz

(* sign of a difference decides a comparison *)
let cmp_val op d =
  match op with
  | Lt -> if d.hi < 0 then Some true else if d.lo >= 0 then Some false else None
  | Le -> if d.hi <= 0 then Some true else if d.lo > 0 then Some false else None
  | Gt -> if d.lo > 0 then Some true else if d.hi <= 0 then Some false else None
  | Ge -> if d.lo >= 0 then Some true else if d.hi < 0 then Some false else None
  | Eq ->
      if d.lo = 0 && d.hi = 0 then Some true
      else if d.hi < 0 || d.lo > 0 then Some false
      else None
  | Ne ->
      if d.hi < 0 || d.lo > 0 then Some true
      else if d.lo = 0 && d.hi = 0 then Some false
      else None
  | _ -> None

type env = aval Senv.t

type state = {
  c : ctx;
  block : int * int * int;
  grid : int * int * int;
}

let rec eval st (env : env) ~w e : aval =
  let ctx = st.c in
  match e with
  | Int_lit n -> const_val n
  | Double_lit _ -> top_val
  | Var v -> ( match Senv.find_opt v env with Some a -> a | None -> top_val)
  | Builtin b -> builtin_val ctx ~block:st.block ~grid:st.grid b
  | Binop (op, a, b) -> eval_binop st env ~w op a b
  | Unop (Neg, a) ->
      let v = eval st env ~w a in
      mk ctx (Option.map aneg v.aff) (ineg v.itv)
  | Unop (Not, a) ->
      let v = eval st env ~w a in
      (* !x: 1 when x = 0 *)
      if v.itv.lo > 0 || v.itv.hi < 0 then const_val 0
      else if v.itv.lo = 0 && v.itv.hi = 0 then const_val 1
      else bool_itv 0 1
  | Index (a, idxs) ->
      let vals = List.map (eval st env ~w) idxs in
      if ctx.record then record_access st ~w ~write:false a vals;
      top_val
  | Call ("min", [ a; b ]) ->
      let x = eval st env ~w a and y = eval st env ~w b in
      mk ctx None (imin x.itv y.itv)
  | Call ("max", [ a; b ]) ->
      let x = eval st env ~w a and y = eval st env ~w b in
      mk ctx None (imax x.itv y.itv)
  | Call ("abs", [ a ]) ->
      let x = eval st env ~w a in
      mk ctx None (iabs x.itv)
  | Call (_, args) ->
      List.iter (fun a -> ignore (eval st env ~w a)) args;
      top_val
  | Ternary (c, a, b) -> (
      match decide st env c with
      | Some true -> eval st env ~w a
      | Some false -> eval st env ~w b
      | None -> join_val st.c (eval st env ~w a) (eval st env ~w b))

and eval_binop st env ~w op a b =
  let ctx = st.c in
  let x = eval st env ~w a and y = eval st env ~w b in
  match op with
  | Add ->
      let aff = match (x.aff, y.aff) with Some p, Some q -> Some (aadd p q) | _ -> None in
      mk ctx aff (iadd x.itv y.itv)
  | Sub ->
      let aff = match (x.aff, y.aff) with Some p, Some q -> Some (asub p q) | _ -> None in
      mk ctx aff (isub x.itv y.itv)
  | Mul ->
      let aff =
        if is_const x.itv then Option.map (ascale x.itv.lo) y.aff
        else if is_const y.itv then Option.map (ascale y.itv.lo) x.aff
        else None
      in
      mk ctx aff (imul x.itv y.itv)
  | Div ->
      let aff =
        if is_const y.itv && y.itv.lo > 0 then
          Option.bind x.aff (fun p -> adiv_exact p y.itv.lo)
        else None
      in
      mk ctx aff (idiv x.itv y.itv)
  | Mod -> mk ctx None (imod x.itv y.itv)
  | (Lt | Le | Gt | Ge | Eq | Ne) as op -> (
      match cmp_val op (isub x.itv y.itv) with
      | Some true -> const_val 1
      | Some false -> const_val 0
      | None -> bool_itv 0 1)
  | And ->
      let t v = v.itv.lo > 0 || v.itv.hi < 0 (* definitely nonzero *)
      and f v = v.itv.lo = 0 && v.itv.hi = 0 in
      if f x || f y then const_val 0 else if t x && t y then const_val 1 else bool_itv 0 1
  | Or ->
      let t v = v.itv.lo > 0 || v.itv.hi < 0 and f v = v.itv.lo = 0 && v.itv.hi = 0 in
      if t x || t y then const_val 1 else if f x && f y then const_val 0 else bool_itv 0 1

(* Three-valued truth of a condition; never records accesses. *)
and decide st env c : bool option =
  let ctx = st.c in
  let saved = ctx.record in
  ctx.record <- false;
  let r = decide_on st env c in
  ctx.record <- saved;
  r

and decide_on st env c =
  let w1 = { trips = 1.0; frac = 1.0; w_exact = false } in
  match c with
  | Int_lit n -> Some (n <> 0)
  | Binop (And, a, b) -> (
      match (decide_on st env a, decide_on st env b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Binop (Or, a, b) -> (
      match (decide_on st env a, decide_on st env b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Unop (Not, a) -> Option.map not (decide_on st env a)
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let x = eval st env ~w:w1 a and y = eval st env ~w:w1 b in
      let d =
        match (x.aff, y.aff) with
        | Some p, Some q ->
            (* difference through the affine form: correlated terms
               cancel, e.g. gi < gridDim.x*blockDim.x is decided even
               though both sides mention blockIdx.x *)
            (mk st.c (Some (asub p q)) (isub x.itv y.itv)).itv
        | _ -> isub x.itv y.itv
      in
      cmp_val op d
  | e ->
      let v = eval st env ~w:w1 e in
      if v.itv.lo > 0 || v.itv.hi < 0 then Some true
      else if v.itv.lo = 0 && v.itv.hi = 0 then Some false
      else None

(* Condition refinement for the then-branch: narrow interval bounds of
   plain variables compared against an evaluable expression.  Returns
   [None] when the condition is infeasible, else the refined
   environment, the estimated fraction of threads satisfying it, and
   whether that fraction is exact. *)
and refine st env c : (env * float * bool) option =
  match c with
  | Binop (And, a, b) ->
      Option.bind (refine st env a) (fun (env, f1, e1) ->
          Option.map (fun (env, f2, e2) -> (env, f1 *. f2, e1 && e2)) (refine st env b))
  | atom -> (
      match decide st env atom with
      | Some true -> Some (env, 1.0, true)
      | Some false -> None
      | None -> narrow_atom st env atom)

and narrow_atom st env atom =
  let ctx = st.c in
  let saved = ctx.record in
  ctx.record <- false;
  let w1 = { trips = 1.0; frac = 1.0; w_exact = false } in
  let r =
    let narrow v op rhs =
      match Senv.find_opt v env with
      | None -> Some (env, 1.0, false)
      | Some cur ->
          let rv = eval st env ~w:w1 rhs in
          let lo, hi = (cur.itv.lo, cur.itv.hi) in
          let lo', hi' =
            match op with
            | Lt -> (lo, min hi (sat_add rv.itv.hi (-1)))
            | Le -> (lo, min hi rv.itv.hi)
            | Gt -> (max lo (sat_add rv.itv.lo 1), hi)
            | Ge -> (max lo rv.itv.lo, hi)
            | Eq -> (max lo rv.itv.lo, min hi rv.itv.hi)
            | _ -> (lo, hi)
          in
          if lo' > hi' then None
          else begin
            let frac =
              float_of_int (hi' - lo' + 1) /. float_of_int (itv_width cur.itv)
            in
            let exact =
              cur.uni && is_const rv.itv
              && (match op with Ne -> false | _ -> true)
            in
            let refined = { cur with itv = { lo = lo'; hi = hi' } } in
            Some (Senv.add v refined env, frac, exact)
          end
    in
    let flip = function
      | Lt -> Gt
      | Le -> Ge
      | Gt -> Lt
      | Ge -> Le
      | op -> op
    in
    match atom with
    | Binop (((Lt | Le | Gt | Ge | Eq) as op), Var v, rhs) -> narrow v op rhs
    | Binop (((Lt | Le | Gt | Ge | Eq) as op), lhs, Var v) -> narrow v (flip op) lhs
    | _ -> Some (env, 1.0, false)
  in
  ctx.record <- saved;
  r

(* ------------------------------------------------------------------ *)
(* access recording                                                    *)
(* ------------------------------------------------------------------ *)

and record_access st ~w ~write a (vals : aval list) =
  let ctx = st.c in
  match Hashtbl.find_opt ctx.shared a with
  | Some dims ->
      (* shared array: per-dimension bounds against the declaration *)
      if List.length dims <> List.length vals then
        push_access ctx ~a ~space:Shared ~write ~status:Unknown ~range:itop
          ~extent:(List.fold_left ( * ) 1 dims)
          ~stride:None ~bytes:0.0 ~exact:false
      else begin
        let statuses =
          List.map2
            (fun d (v : aval) ->
              if v.itv.lo >= 0 && v.itv.hi < d then Proved
              else if v.itv.hi < 0 || v.itv.lo >= d then Oob
              else Unknown)
            dims vals
        in
        let status =
          if List.exists (( = ) Oob) statuses then Oob
          else if List.exists (( = ) Unknown) statuses then Unknown
          else Proved
        in
        (* linearize for the bank-conflict stride and the range *)
        let lin =
          List.fold_left2
            (fun acc d (v : aval) ->
              let scaled_itv = iadd (imul acc.itv (iconst d)) v.itv in
              let aff =
                match (acc.aff, v.aff) with
                | Some p, Some q -> Some (aadd (ascale d p) q)
                | _ -> None
              in
              mk ctx aff scaled_itv)
            (const_val 0) dims vals
        in
        let stride =
          Option.map
            (fun p -> match Imap.find_opt sym_tx p.coef with Some c -> c | None -> 0)
            lin.aff
        in
        push_access ctx ~a ~space:Shared ~write ~status ~range:lin.itv
          ~extent:(List.fold_left ( * ) 1 dims)
          ~stride ~bytes:0.0 ~exact:false
      end
  | None -> (
      match (List.assoc_opt a ctx.global_cells, vals) with
      | Some cells, [ v ] ->
          let status =
            if v.itv.lo >= 0 && v.itv.hi < cells then Proved
            else if v.itv.hi < 0 || v.itv.lo >= cells then Oob
            else Unknown
          in
          let stride =
            Option.map
              (fun p -> match Imap.find_opt sym_tx p.coef with Some c -> c | None -> 0)
              v.aff
          in
          let bytes = 8.0 *. ctx.threads *. w.frac *. w.trips in
          push_access ctx ~a ~space:Global ~write ~status ~range:v.itv ~extent:cells
            ~stride ~bytes ~exact:w.w_exact
      | Some cells, _ ->
          (* global arrays are linearized in the subset: anything else
             is outside the domain *)
          push_access ctx ~a ~space:Global ~write ~status:Unknown ~range:itop
            ~extent:cells ~stride:None ~bytes:0.0 ~exact:false
      | None, _ ->
          (* unknown array (not a parameter of this launch): imprecise *)
          push_access ctx ~a ~space:Global ~write ~status:Unknown ~range:itop ~extent:0
            ~stride:None ~bytes:0.0 ~exact:false)

and push_access ctx ~a ~space ~write ~status ~range ~extent ~stride ~bytes ~exact =
  ctx.accesses <-
    {
      acc_array = a;
      acc_space = space;
      acc_write = write;
      acc_loc = ctx.cloc;
      acc_status = status;
      acc_range = range;
      acc_extent = extent;
      acc_tx_stride = stride;
      acc_bytes = bytes;
      acc_exact = exact;
    }
    :: ctx.accesses

(* ------------------------------------------------------------------ *)
(* statements                                                          *)
(* ------------------------------------------------------------------ *)

let assigned_scalars stmts =
  fold_stmts
    (fun acc s ->
      match s with
      | Assign (Lvar v, _) | Decl (_, v, _) -> v :: acc
      | For l -> l.index :: acc
      | _ -> acc)
    [] stmts

(* does the condition depend on the thread id (directly or through the
   environment)? drives the divergence lint, not soundness *)
let thread_dep env c =
  fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Builtin (Thread_idx _) -> true
      | Var v -> (
          match Senv.find_opt v env with
          | Some { aff = Some p; _ } ->
              Imap.exists (fun s _ -> s = sym_tx || s = sym_ty || s = sym_tz) p.coef
          | _ -> false)
      | _ -> false)
    false c

let rec exec st env ~w stmts : env * stmt list =
  let ctx = st.c in
  let env, rev =
    List.fold_left
      (fun (env, acc) s ->
        let saved = ctx.cloc in
        let l = Loc.find s in
        if not (Loc.is_none l) then ctx.cloc <- l;
        let env, out = exec_stmt st env ~w s in
        ctx.cloc <- saved;
        (env, List.rev_append out acc))
      (env, []) stmts
  in
  (env, List.rev rev)

and exec_stmt st env ~w s : env * stmt list =
  let ctx = st.c in
  match s with
  | Decl (_, v, init) ->
      let value = match init with Some e -> eval st env ~w e | None -> top_val in
      (Senv.add v value env, [ s ])
  | Shared_decl (_, name, dims) ->
      Hashtbl.replace ctx.shared name dims;
      (env, [ s ])
  | Assign (Lvar v, e) -> (Senv.add v (eval st env ~w e) env, [ s ])
  | Assign (Lindex (a, idxs), e) ->
      ignore (eval st env ~w e);
      let vals = List.map (eval st env ~w) idxs in
      if ctx.record then record_access st ~w ~write:true a vals;
      (env, [ s ])
  | Syncthreads -> (env, [ s ])
  | Return ->
      ctx.returns <- true;
      (env, [ s ])
  | If (c, t, e) -> exec_if st env ~w s c t e
  | For l -> exec_for st env ~w s l

and exec_if st env ~w s c t e =
  let ctx = st.c in
  let d = decide st env c in
  (* accesses inside the condition itself (rare) are recorded once *)
  if ctx.record then ignore (eval st env ~w c);
  let tdep = thread_dep env c in
  let push_guard frac =
    ctx.guards <-
      {
        gu_loc = ctx.cloc;
        gu_cond = Kft_cuda.Pp.expr c;
        gu_decided = d;
        gu_thread_dep = tdep;
        gu_frac = frac;
      }
      :: ctx.guards
  in
  match d with
  | Some true ->
      push_guard 1.0;
      let env', t' = exec st env ~w t in
      if st.c.simplify then begin
        ctx.eliminated <- ctx.eliminated + 1;
        (env', t')
      end
      else (env', [ s ])
  | Some false ->
      push_guard 0.0;
      let env', e' = exec st env ~w e in
      if st.c.simplify then begin
        ctx.eliminated <- ctx.eliminated + 1;
        (env', e')
      end
      else (env', [ s ])
  | None ->
      let rt = refine st env c in
      let frac_t, exact_t = match rt with None -> (0.0, true) | Some (_, f, ex) -> (f, ex) in
      push_guard frac_t;
      let env_t, t', feasible_t =
        match rt with
        | None -> (env, t, false) (* then-branch unreachable *)
        | Some (env_c, _, _) ->
            let env1, t' =
              exec st env_c ~w:{ w with frac = w.frac *. frac_t; w_exact = w.w_exact && exact_t } t
            in
            (env1, t', true)
      in
      let frac_e = Float.max 0.0 (1.0 -. frac_t) in
      let env_e, e' =
        if e = [] then (env, [])
        else
          exec st env
            ~w:{ w with frac = w.frac *. frac_e; w_exact = w.w_exact && exact_t }
            e
      in
      let env' = if feasible_t then join_env st.c env_t env_e else env_e in
      (env', if st.c.simplify then [ If (c, t', e') ] else [ s ])

and exec_for st env ~w s (l : for_loop) =
  let ctx = st.c in
  let lov = eval st env ~w l.lo and hiv = eval st env ~w l.hi in
  if lov.itv.lo >= hiv.itv.hi then (env, [ s ]) (* proved zero-trip *)
  else begin
    let step = max 1 l.step in
    let trips, texact =
      if is_const lov.itv && is_const hiv.itv then
        (float_of_int (max 0 ((hiv.itv.lo - lov.itv.lo + step - 1) / step)), true)
      else
        (float_of_int (max 1 ((hiv.itv.hi - lov.itv.lo + step - 1) / step)), false)
    in
    let iv_rng = { lo = lov.itv.lo; hi = sat_add hiv.itv.hi (-1) } in
    let sym = fresh_sym ctx { rng = iv_rng; s_uni = step = 1 } in
    let saved_iv = Senv.find_opt l.index env in
    (* scalars mutated in the body may carry any value at body entry *)
    let env0 =
      List.fold_left
        (fun e v -> if Senv.mem v e then Senv.add v top_val e else e)
        env (assigned_scalars l.body)
    in
    let env0 = Senv.add l.index (mk ctx (Some (asym sym)) iv_rng) env0 in
    let env1, body' =
      exec st env0
        ~w:{ trips = w.trips *. trips; frac = w.frac; w_exact = w.w_exact && texact }
        l.body
    in
    let out = join_env st.c env env1 in
    let out =
      match saved_iv with
      | Some v -> Senv.add l.index v out
      | None -> Senv.remove l.index out
    in
    (out, if st.c.simplify then [ For { l with body = body' } ] else [ s ])
  end

(* ------------------------------------------------------------------ *)
(* drivers                                                             *)
(* ------------------------------------------------------------------ *)

let run ~simplify ~block ~grid ~int_params ~global_cells (k : kernel) =
  let bx, by, bz = block and gx, gy, gz = grid in
  let ctx =
    {
      syms = Hashtbl.create 16;
      next_sym = 6;
      global_cells;
      shared = Hashtbl.create 4;
      record = not simplify;
      accesses = [];
      guards = [];
      eliminated = 0;
      returns = false;
      cloc = Loc.none;
      simplify;
      threads = float_of_int (bx * by * bz) *. float_of_int (gx * gy * gz);
    }
  in
  List.iteri
    (fun i extent -> Hashtbl.replace ctx.syms i { rng = { lo = 0; hi = extent - 1 }; s_uni = true })
    [ bx; by; bz; gx; gy; gz ];
  (* shared declarations are in scope for the whole kernel *)
  fold_stmts
    (fun () s ->
      match s with Shared_decl (_, n, d) -> Hashtbl.replace ctx.shared n d | _ -> ())
    () k.k_body;
  let st = { c = ctx; block; grid } in
  let env0 =
    List.fold_left (fun e (n, v) -> Senv.add n (const_val v) e) Senv.empty int_params
  in
  let _, body' = exec st env0 ~w:{ trips = 1.0; frac = 1.0; w_exact = true } k.k_body in
  (ctx, body')

let result_of (ctx : ctx) k_name =
  let accesses = List.rev ctx.accesses in
  let count st = List.length (List.filter (fun a -> a.acc_status = st) accesses) in
  let globals = List.filter (fun a -> a.acc_space = Global) accesses in
  let est_bytes = List.fold_left (fun s a -> s +. a.acc_bytes) 0.0 globals in
  let est_exact =
    (not ctx.returns) && List.for_all (fun a -> a.acc_exact) globals
  in
  let fp_tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let cur =
        match Hashtbl.find_opt fp_tbl a.acc_array with
        | Some f -> f
        | None -> { fp_reads = None; fp_writes = None }
      in
      let upd side = match side with None -> Some a.acc_range | Some i -> Some (ijoin i a.acc_range) in
      let cur =
        if a.acc_write then { cur with fp_writes = upd cur.fp_writes }
        else { cur with fp_reads = upd cur.fp_reads }
      in
      Hashtbl.replace fp_tbl a.acc_array cur)
    globals;
  let footprints =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) fp_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let oob = count Oob and unknown = count Unknown in
  {
    res_kernel = k_name;
    res_accesses = accesses;
    res_guards = List.rev ctx.guards;
    res_proved = count Proved;
    res_unknown = unknown;
    res_oob = oob;
    res_all_proved = oob = 0 && unknown = 0;
    res_est_bytes = est_bytes;
    res_est_exact = est_exact;
    res_footprints = footprints;
  }

let analyze_kernel ~block ~grid ~int_params ~global_cells k =
  let ctx, _ = run ~simplify:false ~block ~grid ~int_params ~global_cells k in
  result_of ctx k.k_name

let analyze_launch (p : program) (l : launch) =
  match find_kernel p l.l_kernel with
  | exception Not_found -> None
  | k -> (
      match bind_args k l.l_args with
      | exception Invalid_argument _ -> None
      | bound ->
          let int_params =
            List.filter_map
              (fun (n, a) -> match a with Arg_int v -> Some (n, v) | _ -> None)
              bound
          in
          let global_cells =
            List.filter_map
              (fun (n, a) ->
                match a with
                | Arg_array host -> (
                    match find_array p host with
                    | exception Not_found -> None
                    | arr -> Some (n, array_cells arr))
                | _ -> None)
              bound
          in
          Some
            (analyze_kernel ~block:l.l_block ~grid:(grid_of_launch l) ~int_params
               ~global_cells k))

let simplify_kernel ~block ~grid ~int_params k =
  let ctx, body' = run ~simplify:true ~block ~grid ~int_params ~global_cells:[] k in
  ({ k with k_body = body' }, ctx.eliminated)

(* Install this analyzer as the vector backend's bounds prover: a launch
   whose every global access is proved in bounds may run with unchecked
   array accesses. Registered by side effect at link time because the
   sim library cannot depend on the analyzer (the analyzer's clients
   already depend on the sim library). Linking kft_absint is enough to
   activate it — the analyzer library is a dependency of every
   executable and of the framework, so all production entry points run
   with the prover installed. *)
let () =
  Kft_sim.Vector.set_prover (fun prog l ->
      match analyze_launch prog l with
      | Some r -> r.res_all_proved
      | None -> false)
