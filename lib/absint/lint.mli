(** [kft lint]: static diagnostics derived from the abstract
    interpreter's access and guard records, with advisory hardware-cost
    hints from the performance model.

    Rules (rule name — severity):
    - [bounds] — warning: an access the domain cannot prove in bounds
      (or proves out of bounds);
    - [uncoalesced] — warning: a global access whose lowest-dimension
      (threadIdx.x) stride is not 0 or ±1, with the modeled transaction
      amplification;
    - [bank-conflict] — warning: a shared-memory access whose linearized
      per-lane stride shares a factor with the warp size;
    - [footprint-drift] — warning: the statically derived per-kernel
      global traffic is exact yet disagrees with the measured profile;
    - [divergent-guard] — info: a thread-dependent guard the domain
      cannot decide, with the modeled warp-serialization penalty;
    - [dead-guard] — info: a guard decided statically (spliceable).

    Output is deterministic: findings are totally ordered by (program,
    kernel, line, col, rule, message) and deduplicated, so human and
    JSON renderings are byte-stable across [--jobs] settings. *)

type severity = Warn | Info

type finding = {
  f_program : string;
  f_kernel : string;
  f_loc : Kft_cuda.Loc.pos;
  f_rule : string;
  f_severity : severity;
  f_message : string;
}

val program :
  ?measured:(string * float) list -> Kft_cuda.Ast.program -> finding list
(** Lint every launch of one program. [measured] optionally maps kernel
    names to measured global-traffic bytes (profiler counters) for the
    [footprint-drift] cross-check; kernels launched more than once are
    exempt from that rule (their static estimates are per-launch). *)

val programs :
  ?jobs:int ->
  ?measured:(string * (string * float) list) list ->
  Kft_cuda.Ast.program list ->
  finding list
(** Lint several programs, optionally in parallel ([jobs] domains).
    [measured] is keyed by program name. The result is identical for
    every [jobs] value. *)

val normalize : finding list -> finding list
(** Sort into the total order and deduplicate. Producers of findings
    outside this module (the schedule-level rules of kft_schedflow)
    normalize through this so merged reports keep the byte-stability
    contract. *)

val severity_name : severity -> string
(** ["warning"] / ["info"] — the JSON field spelling. *)

val json_escape : string -> string
(** Minimal JSON string escaping used by {!render_json}. *)

val render : finding -> string
(** One line: [program:kernel:line:col: severity [rule] message]. *)

val render_human : finding list -> string
(** The full human report, one finding per line plus a summary line. *)

val render_json : finding list -> string
(** The whole report as one JSON document:
    [{"tool":"kft-lint","version":1,"findings":[...],"warnings":N,"infos":N}].
    Stable field order, no floats, LF line endings. *)

val warnings : finding list -> int
val infos : finding list -> int

val rule_counts : finding list -> (string * int) list
(** Finding count per rule, sorted by rule name (only rules that fired).
    Deterministic — the per-rule counters the trace layer records. *)
