(** Forward abstract interpreter over the CUDA subset.

    The domain is a reduced product of saturating integer intervals and
    symbolic affine forms over the launch symbols (threadIdx, blockIdx)
    and loop induction variables, with blockDim / gridDim / integer
    kernel arguments folded in as constants of a concrete launch.  On
    the stencil subset this is precise enough to *prove* every global
    and shared access in bounds, to decide generated guards, and to
    predict per-kernel global traffic exactly for affine kernels.

    Three clients:
    - {!analyze_kernel} / {!analyze_launch}: proved bounds and per-array
      footprints (replaces kft_verify's sampled bounds pass when every
      access is proved);
    - {!simplify_kernel}: guard elimination for fused kernels — an [If]
      whose condition is decided by the block domain is spliced away;
    - the access / guard records consumed by {!Lint}. *)

type itv = { lo : int; hi : int }
(** Closed integer interval, saturating at [+-big] (2{^44}). *)

val itv_width : itv -> int
val pp_itv : itv -> string

type status =
  | Proved  (** every concrete index lies inside the extent *)
  | Oob  (** every concrete index lies outside the extent *)
  | Unknown  (** the interval straddles the extent: fall back to sampling *)

type space = Global | Shared

type access = {
  acc_array : string;  (** kernel parameter name *)
  acc_space : space;
  acc_write : bool;
  acc_loc : Kft_cuda.Loc.pos;
  acc_status : status;
  acc_range : itv;  (** linearized index interval *)
  acc_extent : int;  (** cells (global) or product of declared dims (shared) *)
  acc_tx_stride : int option;
      (** d(linearized index)/d(threadIdx.x) when the index is affine *)
  acc_bytes : float;  (** estimated global traffic of this site, bytes *)
  acc_exact : bool;  (** the traffic estimate is exact, not an upper bound *)
}

type guard = {
  gu_loc : Kft_cuda.Loc.pos;
  gu_cond : string;  (** pretty-printed condition *)
  gu_decided : bool option;  (** [Some b]: statically decided, i.e. dead *)
  gu_thread_dep : bool;  (** condition depends on the thread id: divergent *)
  gu_frac : float;  (** estimated fraction of threads taking the then branch *)
}

type footprint = { fp_reads : itv option; fp_writes : itv option }

type result = {
  res_kernel : string;
  res_accesses : access list;  (** in evaluation order *)
  res_guards : guard list;
  res_proved : int;  (** accesses with status [Proved] *)
  res_unknown : int;
  res_oob : int;
  res_all_proved : bool;  (** no [Unknown], no [Oob]: bounds are proved *)
  res_est_bytes : float;  (** summed global-traffic estimate *)
  res_est_exact : bool;  (** every estimate exact and no early [return] *)
  res_footprints : (string * footprint) list;
      (** per global array (parameter name), sorted *)
}

val analyze_kernel :
  block:int * int * int ->
  grid:int * int * int ->
  int_params:(string * int) list ->
  global_cells:(string * int) list ->
  Kft_cuda.Ast.kernel ->
  result
(** Abstractly execute one kernel under a concrete launch shape.
    [int_params] binds integer scalar parameters to their argument
    values; [global_cells] gives the extent of each global array
    parameter.  Never raises on subset programs. *)

val analyze_launch :
  Kft_cuda.Ast.program -> Kft_cuda.Ast.launch -> result option
(** Resolve a launch against its program (kernel lookup, argument
    binding, array extents) and analyze it.  [None] if the kernel is
    missing or the arguments do not match the parameter list. *)

val simplify_kernel :
  block:int * int * int ->
  grid:int * int * int ->
  int_params:(string * int) list ->
  Kft_cuda.Ast.kernel ->
  Kft_cuda.Ast.kernel * int
(** Guard elimination: rebuild the kernel body, splicing away every
    [If] whose condition the domain decides ([If c t e] becomes [t]
    when [c] is proved true, [e] when proved false).  Returns the
    rewritten kernel and the number of guards eliminated.  Sound by
    construction — only decided conditions are touched — and intended
    to be translation-validated by kft_verify downstream. *)
