(* Lint rules over the abstract interpreter's access and guard records.
   Pure: all hardware numbers are advisory hints from Kft_perfmodel,
   deliberately decoupled from the GGA objective. *)

open Kft_cuda.Ast
module Loc = Kft_cuda.Loc
module Pm = Kft_perfmodel.Perfmodel

type severity = Warn | Info

type finding = {
  f_program : string;
  f_kernel : string;
  f_loc : Loc.pos;
  f_rule : string;
  f_severity : severity;
  f_message : string;
}

let severity_name = function Warn -> "warning" | Info -> "info"

(* total order: (program, kernel, line, col, rule, message) — the
   byte-stability contract of the JSON output *)
let compare_findings a b =
  let c = compare a.f_program b.f_program in
  if c <> 0 then c
  else
    let c = compare a.f_kernel b.f_kernel in
    if c <> 0 then c
    else
      let c = compare a.f_loc.Loc.line b.f_loc.Loc.line in
      if c <> 0 then c
      else
        let c = compare a.f_loc.Loc.col b.f_loc.Loc.col in
        if c <> 0 then c
        else
          let c = compare a.f_rule b.f_rule in
          if c <> 0 then c else compare a.f_message b.f_message

let normalize fs = List.sort_uniq compare_findings fs

(* ------------------------------------------------------------------ *)
(* rules                                                               *)
(* ------------------------------------------------------------------ *)

let access_findings pname kernel (a : Absint.access) =
  let mk rule severity message =
    {
      f_program = pname;
      f_kernel = kernel;
      f_loc = a.acc_loc;
      f_rule = rule;
      f_severity = severity;
      f_message = message;
    }
  in
  let dir = if a.acc_write then "write" else "read" in
  let space = match a.acc_space with Absint.Global -> "global" | Absint.Shared -> "shared" in
  let bounds =
    match a.acc_status with
    | Absint.Proved -> []
    | Absint.Oob ->
        [
          mk "bounds" Warn
            (Printf.sprintf "%s of %s %s proved out of bounds: index range %s vs extent %d"
               dir space a.acc_array
               (Absint.pp_itv a.acc_range)
               a.acc_extent);
        ]
    | Absint.Unknown ->
        [
          mk "bounds" Warn
            (Printf.sprintf
               "cannot prove %s of %s %s in bounds: index range %s vs extent %d \
                (verification falls back to sampling)"
               dir space a.acc_array
               (Absint.pp_itv a.acc_range)
               a.acc_extent);
        ]
  in
  let pattern =
    match (a.acc_space, a.acc_tx_stride) with
    | Absint.Global, Some s when abs s > 1 ->
        [
          mk "uncoalesced" Warn
            (Printf.sprintf
               "%s of %s strides %d elements across threadIdx.x: up to %.0fx transaction \
                amplification per warp"
               dir a.acc_array s
               (Pm.coalescing_amplification ~stride:s));
        ]
    | Absint.Shared, Some s when s <> 0 && Pm.bank_conflict_ways ~stride:s > 1 ->
        [
          mk "bank-conflict" Warn
            (Printf.sprintf
               "%s of %s has threadIdx.x stride %d: %d-way shared-memory bank conflict"
               dir a.acc_array s
               (Pm.bank_conflict_ways ~stride:s));
        ]
    | _ -> []
  in
  bounds @ pattern

let guard_findings pname kernel (g : Absint.guard) =
  let mk rule severity message =
    {
      f_program = pname;
      f_kernel = kernel;
      f_loc = g.gu_loc;
      f_rule = rule;
      f_severity = severity;
      f_message = message;
    }
  in
  match g.gu_decided with
  | Some b ->
      [
        mk "dead-guard" Info
          (Printf.sprintf "guard (%s) is statically %s: branch can be spliced away"
             g.gu_cond
             (if b then "true" else "false"));
      ]
  | None when g.gu_thread_dep ->
      [
        mk "divergent-guard" Info
          (Printf.sprintf
             "thread-dependent guard (%s) forces warp divergence: modeled serialization \
              factor %.2f"
             g.gu_cond
             (Pm.divergence_penalty ~taken_fraction:g.gu_frac));
      ]
  | None -> []

(* footprint cross-check: only when the static estimate is exact and the
   kernel is launched exactly once (the profiler counter is per kernel,
   the estimate per launch) *)
let drift_threshold = 0.25

let footprint_findings pname kernel ~launch_count ~measured (r : Absint.result) =
  match measured with
  | Some m when launch_count = 1 && r.Absint.res_est_exact && m > 0.0 ->
      let est = r.Absint.res_est_bytes in
      let drift = Float.abs (est -. m) /. m in
      if drift > drift_threshold then
        [
          {
            f_program = pname;
            f_kernel = kernel;
            f_loc = Loc.none;
            f_rule = "footprint-drift";
            f_severity = Warn;
            f_message =
              Printf.sprintf
                "static global-traffic estimate %.0f bytes disagrees with measured %.0f \
                 bytes (%.0f%% drift)"
                est m (drift *. 100.0);
          };
        ]
      else []
  | _ -> []

(* ------------------------------------------------------------------ *)
(* drivers                                                             *)
(* ------------------------------------------------------------------ *)

let launches p = List.filter_map (function Launch l -> Some l | _ -> None) p.p_schedule

let program ?(measured = []) (p : program) =
  let ls = launches p in
  let launch_count k = List.length (List.filter (fun l -> l.l_kernel = k) ls) in
  let per_launch =
    List.concat_map
      (fun l ->
        match Absint.analyze_launch p l with
        | None -> []
        | Some r ->
            let k = r.Absint.res_kernel in
            List.concat_map (access_findings p.p_name k) r.Absint.res_accesses
            @ List.concat_map (guard_findings p.p_name k) r.Absint.res_guards
            @ footprint_findings p.p_name k ~launch_count:(launch_count k)
                ~measured:(List.assoc_opt k measured) r)
      ls
  in
  normalize per_launch

let programs ?(jobs = 1) ?(measured = []) (ps : program list) =
  let arr = Array.of_list ps in
  let out = Array.make (Array.length arr) [] in
  let work i =
    let p = arr.(i) in
    let m = match List.assoc_opt p.p_name measured with Some m -> m | None -> [] in
    out.(i) <- program ~measured:m p
  in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let domains =
      List.init jobs (fun j ->
          Domain.spawn (fun () ->
              let i = ref j in
              while !i < n do
                work !i;
                i := !i + jobs
              done))
    in
    List.iter Domain.join domains
  end;
  (* per-program results are already normalized; the concatenation is
     sorted again so cross-program order never depends on scheduling *)
  normalize (List.concat (Array.to_list out))

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let warnings fs = List.length (List.filter (fun f -> f.f_severity = Warn) fs)
let infos fs = List.length (List.filter (fun f -> f.f_severity = Info) fs)

(* finding count per rule, sorted by rule name: the deterministic
   per-rule counters the trace layer records for the lint pass *)
let rule_counts fs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.f_rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.f_rule)))
    fs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let render f =
  Printf.sprintf "%s:%s:%d:%d: %s [%s] %s" f.f_program f.f_kernel f.f_loc.Loc.line
    f.f_loc.Loc.col (severity_name f.f_severity) f.f_rule f.f_message

let render_human fs =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (render f);
      Buffer.add_char b '\n')
    fs;
  Buffer.add_string b
    (Printf.sprintf "kft lint: %d warning%s, %d advisory note%s\n" (warnings fs)
       (if warnings fs = 1 then "" else "s")
       (infos fs)
       (if infos fs = 1 then "" else "s"));
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json fs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"tool\":\"kft-lint\",\"version\":1,\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"program\":\"%s\",\"kernel\":\"%s\",\"line\":%d,\"col\":%d,\"severity\":\"%s\",\"rule\":\"%s\",\"message\":\"%s\"}"
           (json_escape f.f_program) (json_escape f.f_kernel) f.f_loc.Loc.line
           f.f_loc.Loc.col (severity_name f.f_severity) (json_escape f.f_rule)
           (json_escape f.f_message)))
    fs;
  Buffer.add_string b
    (Printf.sprintf "\n],\"warnings\":%d,\"infos\":%d}\n" (warnings fs) (infos fs));
  Buffer.contents b
