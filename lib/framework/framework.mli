(** End-to-end transformation pipeline (Section 3, Figure 1).

    The five stages — metadata gathering, target identification, DDG/OEG
    construction, GGA search, code generation — run in sequence; after
    each stage the programmer can intervene through the [hooks], exactly
    mirroring the paper's programmer-guided transformation (Figure 2).
    Each stage's intermediate results are part of the {!report} so a
    caller (or the CLI) can stop after any stage, dump the text files /
    DOT graphs, and resume from amended versions. *)

type filter_mode =
  | Automated  (** Roofline + boundary filtering (Section 3.2.2) *)
  | Manual  (** expert filtering: additionally drops latency-bound kernels (Figure 8) *)
  | No_filtering  (** ablation: everything is a target (2.5x slower convergence claim) *)

type verify_mode =
  | Verify_off  (** skip static verification entirely *)
  | Verify_advisory
      (** run [Kft_verify] after code generation and record the report
          (the default) *)
  | Verify_fatal
      (** additionally reject any fused kernel carrying a diagnostic:
          its group is split back into singletons and code generation
          re-runs (bounded), so the transformed program ships without
          statically detected races / bounds / order violations *)

type config = {
  device : Kft_device.Device.t;
  gga_params : Kft_gga.Gga.params;
  codegen_options : Kft_codegen.Fusion.options;
  filter_mode : filter_mode;
  verify_mode : verify_mode;
  seed : int;
  verify_tolerance : float;
  sim_cache : Kft_metadata.Metadata.Sim_cache.t option;
      (** profile cache for every simulation the pipeline performs
          (gathering, the fissioned-variant run, the transformed run and
          output verification); [None] disables caching *)
  backend : Kft_sim.Interp.backend;
      (** simulator execution backend for those runs. Backends are
          bit-identical, so this only affects pipeline wall time; the
          default is {!Kft_sim.Interp.Auto}. *)
  schedflow : bool;
      (** run the whole-schedule dataflow analysis
          ({!Kft_schedflow.Schedflow}): a [schedflow] stage after DDG
          construction, a liveness-driven arena overlay for the
          discarded fission pre-run, and the schedule-level lint rules
          merged into [lint_findings]. On by default; [false] restores
          the previous pipeline exactly. *)
}

val default_config : config
(** K20X, the paper's GGA defaults, automated codegen, automated
    filtering, advisory static verification, the process-wide
    {!Kft_metadata.Metadata.Sim_cache.global} profile cache and the
    {!Kft_sim.Interp.Auto} execution backend. *)

type hooks = {
  amend_metadata : Kft_metadata.Metadata.t -> Kft_metadata.Metadata.t;
  amend_targets : (string * bool) list -> (string * bool) list;
      (** (invocation key, eligible) pairs *)
  amend_solution : string list list -> string list list;
      (** fusion groups over unit names, after the GGA *)
}

val no_hooks : hooks

type target_info = {
  invocation : Kft_ddg.Ddg.invocation;
  classification : Kft_analysis.Classify.kind;
  eligible : bool;
  reason : string;  (** why it was kept/excluded — part of the stage report *)
}

type report = {
  baseline : Kft_sim.Profiler.run;
  metadata : Kft_metadata.Metadata.t;
  graphs : Kft_ddg.Ddg.t;
  schedflow : Kft_schedflow.Schedflow.t option;
      (** whole-schedule dataflow analysis of the source program
          (liveness intervals, array-granularity dependences, read-
          before-write / dead-store issues); [None] when
          [config.schedflow] is [false] *)
  targets : target_info list;
  fission_plans : (string * Kft_fission.Fission.plan) list;
      (** lazy-fission pre-step: plan per fissionable target kernel *)
  gga : Kft_gga.Gga.result option;  (** [None] when fewer than two targets *)
  solution_groups : string list list;
  fissioned : string list;
  codegen : Kft_codegen.Codegen.result;
  transformed : Kft_cuda.Ast.program;
  transformed_run : Kft_sim.Profiler.run;
  speedup : float;
  verified : (unit, (string * float) list) result;
  verify_report : Kft_verify.Verify.report;
      (** static verification of the emitted kernels plus translation
          validation of every fused group ({!Kft_verify.Verify.validate});
          {!Kft_verify.Verify.empty_report} when [verify_mode] is
          {!Verify_off} *)
  lint_findings : Kft_absint.Lint.finding list;
      (** [kft lint] over the emitted program, with the measured
          per-kernel global traffic of [transformed_run] feeding the
          footprint-drift cross-check; always computed (cheap, pure) *)
  rejected_groups : (string * string) list;
      (** (fused kernel, reason) pairs for groups the fatal gate split
          back into singletons; always [] outside {!Verify_fatal} *)
  new_graphs : Kft_ddg.Ddg.t;  (** DDG/OEG of the transformed program *)
  sim_cache_stats : Kft_engine.Engine.Cache.stats option;
      (** profile-cache hits/misses attributable to this transform ([size]
          is the cache's total entry count afterwards); [None] when
          [config.sim_cache] is [None] *)
  pool_stats : Kft_sim.Memory.Pool.stats;
      (** arena-pool activity attributable to this transform: requests
          and cells are deltas over the run; [high_water] is the
          process-wide peak (the pool is global) *)
  backends : (string * string) list;
      (** (kernel, executed backend name) per distinct baseline launch
          kernel, under [config.backend] — part of the stage report *)
  trace : Kft_trace.Trace.t option;
      (** the trace handed to {!transform}, echoed back so callers can
          render it next to the report; [None] when tracing was off *)
}

val transform :
  ?config:config -> ?hooks:hooks -> ?engine:Kft_engine.Engine.t ->
  ?trace:Kft_trace.Trace.t ->
  Kft_cuda.Ast.program -> report
(** Run the full pipeline. The transformed program's output is verified
    against the original on the simulator (the paper verified every
    run); [speedup] is original/transformed modeled time.

    [engine] parallelizes two phases over its domain pool: the GGA
    search (stage 4) evaluates each generation's population in parallel
    with its memoization policy deciding whether identical genomes are
    re-scored (see {!Kft_engine.Engine} and [Gga.run ?engine]), and
    every simulation the pipeline runs — metadata gathering, the
    fissioned-variant run, the transformed run and output verification —
    executes its thread blocks in parallel ([Interp.launch ?engine]).
    Both are deterministic: the search result, the profiles and the
    simulated memory — and therefore the whole transformation — are
    bit-identical at any worker count. Defaults to sequential evaluation
    with the memo cache enabled. A caller-supplied engine is not shut
    down.

    [trace] records the pipeline under deterministic stage spans
    ([gather], [ddg], [schedflow], [filter], [fission], [search],
    [codegen], [verify], [profile-transformed], [output-verify],
    [lint]) with
    per-stage counters; jobs-dependent quantities (plan-cache hit/miss
    split, engine pool statistics) are recorded as side-channel notes
    only, so {!Kft_trace.Trace.render_json} stays byte-identical at any
    worker count. The [stage_report] appends the rendered tree when the
    report carries a trace. *)

val classify_invocation :
  filter_mode -> Kft_metadata.Metadata.t -> Kft_cuda.Ast.program ->
  Kft_ddg.Ddg.invocation -> Kft_analysis.Classify.kind
(** Exposed for tests and the filtering benchmarks. *)

val stage_report : report -> string
(** Human-readable multi-stage report (the "report on the output of each
    phase including hints of possible inefficiencies"). *)
