open Kft_cuda.Ast
module Ddg = Kft_ddg.Ddg
module Meta = Kft_metadata.Metadata
module Gga = Kft_gga.Gga
module Fission = Kft_fission.Fission
module Perfmodel = Kft_perfmodel.Perfmodel
module Codegen = Kft_codegen.Codegen
module Fusion = Kft_codegen.Fusion
module Canonical = Kft_codegen.Canonical
module Classify = Kft_analysis.Classify
module Verify = Kft_verify.Verify
module Schedflow = Kft_schedflow.Schedflow
module Trace = Kft_trace.Trace

type filter_mode = Automated | Manual | No_filtering

type verify_mode = Verify_off | Verify_advisory | Verify_fatal

type config = {
  device : Kft_device.Device.t;
  gga_params : Gga.params;
  codegen_options : Fusion.options;
  filter_mode : filter_mode;
  verify_mode : verify_mode;
  seed : int;
  verify_tolerance : float;
  sim_cache : Meta.Sim_cache.t option;
  backend : Kft_sim.Interp.backend;
  schedflow : bool;
}

let default_config =
  {
    device = Kft_device.Device.k20x;
    gga_params = Gga.default_params;
    codegen_options = Fusion.auto_options;
    filter_mode = Automated;
    verify_mode = Verify_advisory;
    seed = 42;
    verify_tolerance = 1e-9;
    sim_cache = Some Kft_metadata.Metadata.Sim_cache.global;
    (* Auto is safe as the default precisely because backends are
       bit-identical: it can only change how fast stage 1 runs *)
    backend = Kft_sim.Interp.Auto;
    schedflow = true;
  }

type hooks = {
  amend_metadata : Meta.t -> Meta.t;
  amend_targets : (string * bool) list -> (string * bool) list;
  amend_solution : string list list -> string list list;
}

let no_hooks =
  {
    amend_metadata = (fun m -> m);
    amend_targets = (fun t -> t);
    amend_solution = (fun s -> s);
  }

type target_info = {
  invocation : Ddg.invocation;
  classification : Classify.kind;
  eligible : bool;
  reason : string;
}

type report = {
  baseline : Kft_sim.Profiler.run;
  metadata : Meta.t;
  graphs : Ddg.t;
  schedflow : Schedflow.t option;
  targets : target_info list;
  fission_plans : (string * Fission.plan) list;
  gga : Gga.result option;
  solution_groups : string list list;
  fissioned : string list;
  codegen : Codegen.result;
  transformed : program;
  transformed_run : Kft_sim.Profiler.run;
  speedup : float;
  verified : (unit, (string * float) list) result;
  verify_report : Verify.report;
  lint_findings : Kft_absint.Lint.finding list;
  rejected_groups : (string * string) list;
  new_graphs : Ddg.t;
  sim_cache_stats : Kft_engine.Engine.Cache.stats option;
  pool_stats : Kft_sim.Memory.Pool.stats;
  backends : (string * string) list;
  trace : Trace.t option;
}

(* ------------------------------------------------------------------ *)
(* Target identification                                               *)
(* ------------------------------------------------------------------ *)

let max_array_cells prog (l : launch) =
  let reads, writes = Ddg.arrays_touched prog l in
  List.fold_left
    (fun acc a -> max acc (array_cells (find_array prog a)))
    0 (reads @ writes)

let classify_invocation mode (meta : Meta.t) prog (inv : Ddg.invocation) =
  let perf = Meta.find_perf meta inv.inv_kernel in
  let ops = Meta.find_ops meta inv.inv_kernel in
  let dx, dy, dz = ops.domain in
  (* spatial coverage includes the vertical loop the canonical mapping
     iterates inside the kernel *)
  let vertical_trip =
    List.fold_left (fun acc (l : Meta.loop_op) -> if l.vertical then max acc l.trip else acc) 1
      ops.loops
  in
  let args =
    ( perf.flops,
      perf.bytes,
      dx * dy * dz * vertical_trip,
      max_array_cells prog inv.inv_launch,
      ops.active_fraction )
  in
  let flops, bytes, domain_cells, max_cells, active = args in
  match mode with
  | No_filtering -> Classify.Memory_bound
  | Automated ->
      Classify.classify_static ~device:Kft_device.Device.k20x ~flops ~bytes ~domain_cells
        ~max_array_cells:max_cells ~active_fraction:active
  | Manual ->
      Classify.classify_measured ~device:Kft_device.Device.k20x ~flops ~bytes ~domain_cells
        ~max_array_cells:max_cells ~active_fraction:active ~runtime_us:perf.runtime_us

let identify_targets config meta prog (graphs : Ddg.t) =
  List.map
    (fun (inv : Ddg.invocation) ->
      let classification = classify_invocation config.filter_mode meta prog inv in
      let ops = Meta.find_ops meta inv.inv_kernel in
      let repeated = String.contains inv.inv_key '#' in
      let eligible, reason =
        if repeated then (false, "repeated invocation of an already-targeted kernel")
        else
          match (classification, ops.irregular) with
          | _, Some r -> (false, "irregular: " ^ r)
          | Classify.Compute_bound, _ -> (false, "compute-bound (Roofline)")
          | Classify.Boundary, _ -> (false, "boundary kernel (small iteration coverage)")
          | Classify.Latency_bound, _ -> (false, "latency-bound (low achieved bandwidth)")
          | Classify.Memory_bound, _ -> (true, "memory-bound target")
      in
      { invocation = inv; classification; eligible; reason })
    graphs.invocations

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let transform ?(config = default_config) ?(hooks = no_hooks) ?engine ?trace prog =
  (* stage 0: frontend validation -- a malformed program would otherwise
     surface as a confusing simulator fault deep in stage 1 *)
  (match Kft_cuda.Check.program prog with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Framework.transform: program %s fails validation:\n%s" prog.p_name
           (String.concat "\n" (List.map Kft_cuda.Check.pp_error errs))));
  let device = config.device in
  let cache = config.sim_cache in
  let backend = config.backend in
  let cache_stats_before = Option.map Meta.Sim_cache.stats cache in
  let pool_stats_before = Kft_sim.Memory.Pool.stats () in
  (* stage 1: metadata (simulation runs go through the profile cache, so
     re-transforming a program — or verifying against it later — replays
     the stored run instead of re-simulating) *)
  let meta, baseline =
    Trace.with_span trace "gather" (fun () ->
        let meta, baseline = Meta.gather ?cache ?engine ~backend ?trace ~seed:config.seed device prog in
        Trace.add trace "kernels" (List.length meta.Meta.performance);
        (meta, baseline))
  in
  let meta = hooks.amend_metadata meta in
  (* stage 2/3: graphs + targets *)
  let graphs =
    Trace.with_span trace "ddg" (fun () ->
        let g = Ddg.build prog in
        Trace.add trace "ddg_nodes" (Kft_graph.Digraph.node_count g.Ddg.ddg);
        Trace.add trace "ddg_edges" (Kft_graph.Digraph.edge_count g.Ddg.ddg);
        Trace.add trace "oeg_nodes" (Kft_graph.Digraph.node_count g.Ddg.oeg);
        Trace.add trace "oeg_edges" (Kft_graph.Digraph.edge_count g.Ddg.oeg);
        g)
  in
  (* stage 3b: whole-schedule dataflow / liveness. The array-granularity
     DDG complements [Ddg.build]'s invocation graph with element regions
     where the abstract domain proves them, and its liveness intervals
     drive the arena overlay of the fission pre-run below. *)
  let schedflow =
    if not config.schedflow then None
    else
      Trace.with_span trace "schedflow" (fun () ->
          let sf = Schedflow.analyze prog in
          Trace.add trace "ops" sf.Schedflow.stats.Schedflow.st_ops;
          Trace.add trace "launches" sf.stats.st_launches;
          Trace.add trace "deps" sf.stats.st_deps;
          Trace.add trace "deps_refined" sf.stats.st_deps_refined;
          Trace.add trace "regions_proved" sf.stats.st_regions_proved;
          Trace.add trace "regions_fallback" sf.stats.st_regions_fallback;
          Trace.add trace "issues" (List.length sf.Schedflow.issues);
          Some sf)
  in
  let targets, eligible =
    Trace.with_span trace "filter" (fun () ->
        let targets0 = identify_targets config meta prog graphs in
        let amended =
          hooks.amend_targets
            (List.map (fun t -> (t.invocation.inv_key, t.eligible)) targets0)
        in
        let targets =
          List.map
            (fun t ->
              match List.assoc_opt t.invocation.inv_key amended with
              | Some e when e <> t.eligible ->
                  { t with eligible = e; reason = t.reason ^ " (amended by programmer)" }
              | _ -> t)
            targets0
        in
        let eligible = List.filter (fun t -> t.eligible) targets in
        Trace.add trace "invocations" (List.length targets);
        Trace.add trace "targets" (List.length eligible);
        (targets, eligible))
  in
  (* lazy-fission pre-step: plans + one profiled run of the fully
     fissioned variant to collect part metadata (Section 4.1) *)
  let fission_plans, prog_fissioned, meta_fissioned =
    Trace.with_span trace "fission" (fun () ->
        let fission_plans =
          if not config.gga_params.fission_enabled then []
          else
            List.filter_map
              (fun t ->
                let k = find_kernel prog t.invocation.inv_kernel in
                Option.map (fun p -> (k.k_name, p)) (Fission.plan ~seed:config.seed k))
              eligible
        in
        let prog_fissioned =
          if fission_plans = [] then None
          else Some (Fission.apply_to_program ~plans:fission_plans prog)
        in
        let meta_fissioned =
          Option.map
            (fun p ->
              (* only the metadata survives this pre-step, so the run
                 qualifies for the liveness-driven arena overlay: arrays
                 whose live intervals never overlap share storage, and
                 the discarded arena is smaller. Stats and timings are
                 bit-identical either way (see [Memory.layout]). *)
              let layout =
                if config.schedflow then Schedflow.arena_layout (Schedflow.analyze p) else None
              in
              let m, grun =
                Meta.gather ?cache ?engine ~backend ?trace ?layout ~seed:config.seed device p
              in
              (* recycle the profiled run's arena instead of waiting for
                 the GC *)
              Kft_sim.Memory.release grun.Kft_sim.Profiler.memory;
              m)
            prog_fissioned
        in
        Trace.add trace "plans" (List.length fission_plans);
        (fission_plans, prog_fissioned, meta_fissioned))
  in
  (* canonical-member cache for codegen-level feasibility *)
  let member_cache : (string, (Canonical.member, string) Stdlib.result) Hashtbl.t =
    Hashtbl.create 64
  in
  let launch_of_key p key =
    let invs = (Ddg.build p).invocations in
    (List.find (fun (i : Ddg.invocation) -> i.inv_key = key) invs).inv_launch
  in
  let cache_member source_prog key =
    if not (Hashtbl.mem member_cache key) then begin
      let r =
        match
          Canonical.extract ~deep:config.codegen_options.deep_nest_strategy ~index:0 source_prog
            (launch_of_key source_prog key)
        with
        | m -> Ok m
        | exception Canonical.Not_canonical reason -> Error reason
        | exception Not_found -> Error "launch not found"
      in
      Hashtbl.replace member_cache key r
    end
  in
  List.iter (fun t -> cache_member prog t.invocation.inv_key) eligible;
  (match (prog_fissioned, fission_plans) with
  | Some pf, plans ->
      List.iter
        (fun (_, (plan : Fission.plan)) ->
          List.iter
            (fun (part : Fission.part) -> cache_member pf part.part_kernel.k_name)
            plan.parts)
        plans
  | None, _ -> ());
  (* schedule position of each unit (fission parts take their position in
     the fully-fissioned schedule); groups coming out of the GGA are
     unordered, while fusion feasibility and codegen are order-sensitive *)
  let unit_pos : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (inv : Ddg.invocation) -> Hashtbl.replace unit_pos inv.inv_key (inv.inv_index * 1000))
    graphs.invocations;
  List.iter
    (fun (orig, (plan : Fission.plan)) ->
      match Hashtbl.find_opt unit_pos orig with
      | None -> ()
      | Some base ->
          List.iteri
            (fun i (part : Fission.part) ->
              Hashtbl.replace unit_pos part.part_kernel.k_name (base + i + 1))
            plan.parts)
    fission_plans;
  let schedule_sort names =
    List.sort
      (fun a b ->
        compare
          (Option.value ~default:max_int (Hashtbl.find_opt unit_pos a))
          (Option.value ~default:max_int (Hashtbl.find_opt unit_pos b)))
      names
  in
  (* the plan cache is read and written from the engine's worker domains
     during the GGA search (via [feasible] / [shared_ok]); guard it with a
     mutex. The plan computation itself runs outside the critical section:
     two domains may compute the same key concurrently, but the result is
     a pure function of the key so the duplicate insert is benign (and
     [member_cache] / [unit_pos] are read-only by then). *)
  let group_plan_cache : (string, (Fusion.plan, string) Stdlib.result) Hashtbl.t =
    Hashtbl.create 256
  in
  let group_plan_mutex = Mutex.create () in
  (* hit/miss split is scheduling-dependent at jobs > 1 (two workers can
     miss on the same key concurrently) -> trace side channel; the entry
     count is the set of distinct keys queried -> deterministic *)
  let gp_hits = ref 0 and gp_misses = ref 0 in
  let group_plan names =
    let names = schedule_sort names in
    let key = String.concat "|" names in
    match
      Mutex.protect group_plan_mutex (fun () ->
          let r = Hashtbl.find_opt group_plan_cache key in
          (match r with Some _ -> incr gp_hits | None -> incr gp_misses);
          r)
    with
    | Some r -> r
    | None ->
        let r =
          let members =
            List.fold_left
              (fun acc name ->
                match acc with
                | Error _ -> acc
                | Ok ms -> (
                    match Hashtbl.find_opt member_cache name with
                    | Some (Ok m) -> Ok (m :: ms)
                    | Some (Error e) -> Error e
                    | None -> Error ("no canonical form cached for " ^ name)))
              (Ok []) names
          in
          match members with
          | Error e -> Error e
          | Ok ms ->
              let ms = List.rev ms in
              Fusion.check_group (List.mapi (fun i (m : Canonical.member) -> { m with m_index = i }) ms)
        in
        Mutex.protect group_plan_mutex (fun () ->
            if not (Hashtbl.mem group_plan_cache key) then Hashtbl.replace group_plan_cache key r);
        r
  in
  (* stage 4: GGA *)
  (* a fission part K__fN collapses back to K for OEG feasibility *)
  let original_of name =
    let is_digit c = c >= '0' && c <= '9' in
    let n = String.length name in
    let rec find i =
      if i + 3 > n then None
      else if String.sub name i 3 = "__f" && i + 3 < n && is_digit name.[i + 3] then Some i
      else find (i + 1)
    in
    match find 0 with Some i -> String.sub name 0 i | None -> name
  in
  let units =
    List.map (fun t -> Perfmodel.of_metadata meta t.invocation.inv_kernel) eligible
  in
  let fission_parts =
    match meta_fissioned with
    | None -> []
    | Some mf ->
        List.map
          (fun (orig, (plan : Fission.plan)) ->
            ( orig,
              List.map
                (fun (part : Fission.part) -> Perfmodel.of_metadata mf part.part_kernel.k_name)
                plan.parts ))
          fission_plans
  in
  let part_arrays =
    List.concat_map
      (fun (_, (plan : Fission.plan)) ->
        List.map
          (fun (part : Fission.part) ->
            ( part.part_kernel.k_name,
              match Hashtbl.find_opt member_cache part.part_kernel.k_name with
              | Some (Ok m) -> Canonical.touched_arrays m
              | _ -> part.part_arrays ))
          plan.parts)
      fission_plans
  in
  let feasible names =
    match names with
    | [] | [ _ ] -> true
    | _ ->
        let collapsed = List.sort_uniq compare (List.map original_of names) in
        Ddg.fusion_feasible graphs collapsed
        && (match group_plan names with Ok _ -> true | Error _ -> false)
  in
  let shared_ok models =
    match models with
    | [] | [ _ ] -> true
    | first :: _ -> (
        let names = List.map (fun (m : Perfmodel.unit_model) -> m.unit_name) models in
        match group_plan names with
        | Ok plan ->
            let bx, by, _ = first.block in
            plan.p_shared_bytes bx by <= device.shared_mem_per_block
        | Error _ -> true)
  in
  (* joint schedulability: expand OEG edges over the units actually
     present in a solution (parts replace their fissioned original),
     contract all groups at once and check acyclicity *)
  let parts_of =
    List.map
      (fun (orig, (plan : Fission.plan)) ->
        (orig, List.map (fun (p : Fission.part) -> p.part_kernel.k_name) plan.parts))
      fission_plans
  in
  let oeg_edges = Kft_graph.Digraph.edges graphs.oeg in
  let all_invocations = List.map (fun (i : Ddg.invocation) -> i.inv_key) graphs.invocations in
  let solution_feasible ~groups ~fissioned =
    let expand k =
      if List.mem k fissioned then
        match List.assoc_opt k parts_of with Some parts -> parts | None -> [ k ]
      else [ k ]
    in
    let g = Kft_graph.Digraph.create () in
    List.iter
      (fun k -> List.iter (fun u -> Kft_graph.Digraph.ensure_node g ~key:u ()) (expand k))
      all_invocations;
    List.iter
      (fun (a, b) ->
        List.iter
          (fun ua -> List.iter (fun ub -> Kft_graph.Digraph.add_edge g ua ub) (expand b))
          (expand a))
      oeg_edges;
    let gid = Hashtbl.create 64 in
    List.iteri
      (fun i group -> List.iter (fun u -> Hashtbl.replace gid u (Printf.sprintf "g%d" i)) group)
      groups;
    let group_of k = match Hashtbl.find_opt gid k with Some x -> x | None -> "solo:" ^ k in
    Kft_graph.Digraph.is_dag (Kft_graph.Digraph.quotient g ~group_of)
  in
  let problem =
    {
      Gga.units;
      fission_parts;
      part_arrays;
      feasible;
      solution_feasible;
      objective = Perfmodel.objective device;
      shared_ok;
    }
  in
  let gga_result =
    Trace.with_span trace "search" (fun () ->
        let r =
          if List.length units >= 2 then Some (Gga.run ?engine ?trace config.gga_params problem)
          else None
        in
        Trace.add trace "units" (List.length units);
        (match r with
        | Some g ->
            let es = g.Gga.engine_stats in
            Trace.add trace "memo_requested" es.Gga.es_requested;
            Trace.add trace "memo_computed" es.Gga.es_computed;
            Trace.set trace "memo" (Trace.Bool es.Gga.es_memo);
            Trace.note trace "jobs" (Trace.Int es.Gga.es_jobs);
            Trace.note trace "search_wall_s" (Trace.Float es.Gga.es_search_wall_s)
        | None -> ());
        Trace.add trace "plan_cache_entries" (Hashtbl.length group_plan_cache);
        Trace.note trace "plan_cache_hits" (Trace.Int !gp_hits);
        Trace.note trace "plan_cache_misses" (Trace.Int !gp_misses);
        r)
  in
  let solution_groups =
    match gga_result with
    | Some r -> r.best.groups
    | None -> List.map (fun (m : Perfmodel.unit_model) -> [ m.unit_name ]) units
  in
  let solution_groups = hooks.amend_solution solution_groups in
  let fissioned =
    match gga_result with Some r -> r.best.fissioned | None -> []
  in
  (* stage 5: apply fission, order groups, generate code *)
  let chosen_plans = List.filter (fun (k, _) -> List.mem k fissioned) fission_plans in
  let prog' =
    if chosen_plans = [] then prog else Fission.apply_to_program ~plans:chosen_plans prog
  in
  let graphs' = Ddg.build prog' in
  let gid_of : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i group -> List.iter (fun u -> Hashtbl.replace gid_of u (Printf.sprintf "g%d" i)) group)
    solution_groups;
  let group_of key =
    match Hashtbl.find_opt gid_of key with Some g -> g | None -> "solo:" ^ key
  in
  let quotient = Kft_graph.Digraph.quotient graphs'.oeg ~group_of:(fun k -> group_of k) in
  let ordered_gids =
    match Kft_graph.Digraph.topo_sort quotient with
    | order -> order
    | exception Kft_graph.Digraph.Cycle _ ->
        (* an infeasible grouping slipped through (penalized but still the
           best found, or forced by a programmer amendment): break every
           group up and run the original schedule *)
        Hashtbl.reset gid_of;
        List.map
          (fun (inv : Ddg.invocation) ->
            Hashtbl.replace gid_of inv.inv_key ("solo:" ^ inv.inv_key);
            "solo:" ^ inv.inv_key)
          graphs'.invocations
  in
  let launches_of_gid gid =
    List.filter_map
      (fun (inv : Ddg.invocation) ->
        if group_of inv.inv_key = gid then Some inv.inv_launch else None)
      graphs'.invocations
  in
  let groups = List.map launches_of_gid ordered_gids |> List.filter (fun g -> g <> []) in
  (* post-codegen verification gate: passes 1-3 of [Kft_verify] over every
     emitted kernel plus translation validation of each fused group
     against the (post-fission) source program. Advisory mode records the
     report; fatal mode additionally rejects any fused kernel carrying a
     diagnostic -- its group is split back into singletons and code
     generation re-runs, mirroring the codegen's own fallback for
     infeasible groups. *)
  let codegen_run groups =
    Trace.with_span trace "codegen" (fun () ->
        let cg = Codegen.transform ~options:config.codegen_options device prog' ~groups in
        Trace.add trace "kernels" (List.length cg.Codegen.reports);
        Trace.add trace "fused"
          (List.length
             (List.filter
                (fun (r : Codegen.kernel_report) -> r.fusion_kind <> `None)
                cg.Codegen.reports));
        cg)
  in
  let validate cg =
    Trace.with_span trace "verify" (fun () ->
        let vr =
          match config.verify_mode with
          | Verify_off -> Verify.empty_report
          | Verify_advisory | Verify_fatal ->
              Verify.validate ~options:config.codegen_options ~source:prog' cg
        in
        List.iter (fun (p, n) -> Trace.add trace p n) (Verify.pass_counts vr);
        Trace.add trace "launches_checked" vr.Verify.stats.launches_checked;
        Trace.add trace "bounds_proved" vr.Verify.stats.bounds_proved;
        Trace.add trace "bounds_fallback" vr.Verify.stats.bounds_fallback;
        Trace.add trace "sched_deps_checked" vr.Verify.stats.sched_deps_checked;
        Trace.add trace "sched_fallback" vr.Verify.stats.sched_fallback;
        vr)
  in
  let codegen0 = codegen_run groups in
  let rec gate attempts groups (cg : Codegen.result) (vr : Verify.report) rejected =
    if config.verify_mode <> Verify_fatal || Verify.is_clean vr || attempts <= 0 then
      (cg, vr, rejected)
    else begin
      let flagged_kernels =
        List.sort_uniq compare (List.map (fun (d : Verify.diagnostic) -> d.d_kernel) vr.diagnostics)
      in
      let flagged_reports =
        List.filter
          (fun (r : Codegen.kernel_report) ->
            r.fusion_kind <> `None && List.mem r.new_kernel flagged_kernels)
          cg.reports
      in
      if flagged_reports = [] then
        (* the defects are not attributable to fusion (they would have to
           come from the source kernels themselves); unfusing further
           cannot help *)
        (cg, vr, rejected)
      else begin
        let flagged_members =
          List.concat_map (fun (r : Codegen.kernel_report) -> r.members) flagged_reports
        in
        let groups' =
          List.concat_map
            (fun g ->
              if List.exists (fun (l : launch) -> List.mem l.l_kernel flagged_members) g
              then List.map (fun l -> [ l ]) g
              else [ g ])
            groups
        in
        let rejected' =
          rejected
          @ List.map
              (fun (r : Codegen.kernel_report) ->
                ( r.new_kernel,
                  Printf.sprintf "verification rejected the fused group [%s]"
                    (String.concat "," r.members) ))
              flagged_reports
        in
        let cg' = codegen_run groups' in
        gate (attempts - 1) groups' cg' (validate cg') rejected'
      end
    end
  in
  let codegen, verify_report, rejected_groups = gate 4 groups codegen0 (validate codegen0) [] in
  let transformed = codegen.program in
  let transformed_run =
    Trace.with_span trace "profile-transformed" (fun () ->
        Meta.profile ?cache ?engine ~backend ?trace ~seed:config.seed device transformed)
  in
  (* both programs are now cached, so output verification costs two cache
     hits rather than two fresh simulations *)
  let verified =
    Trace.with_span trace "output-verify" (fun () ->
        Meta.verify ?cache ?engine ~backend ?trace ~seed:config.seed
          ~tol:config.verify_tolerance device ~original:prog ~transformed)
  in
  (* lint the emitted program; the measured per-kernel traffic from the
     profile run feeds the footprint-drift cross-check *)
  let lint_findings =
    let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (p : Kft_sim.Profiler.kernel_profile) ->
        let b =
          float_of_int
            (p.stats.Kft_sim.Interp.global_read_bytes
           + p.stats.Kft_sim.Interp.global_write_bytes)
        in
        let cur = match Hashtbl.find_opt tbl p.kernel with Some c -> c | None -> 0.0 in
        Hashtbl.replace tbl p.kernel (cur +. b))
      transformed_run.profiles;
    let measured = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    Trace.with_span trace "lint" (fun () ->
        let fs = Kft_absint.Lint.program ~measured transformed in
        (* schedule-level rules (dead-array / redundant-copy /
           transient-global) join the per-kernel findings in the same
           normalized order *)
        let fs =
          if config.schedflow then
            Kft_absint.Lint.normalize (fs @ Schedflow.lint_program transformed)
          else fs
        in
        List.iter (fun (rule, n) -> Trace.add trace rule n) (Kft_absint.Lint.rule_counts fs);
        Trace.add trace "warnings" (Kft_absint.Lint.warnings fs);
        Trace.add trace "infos" (Kft_absint.Lint.infos fs);
        fs)
  in
  let sim_cache_stats =
    match (cache, cache_stats_before) with
    | Some c, Some s0 ->
        let s1 = Meta.Sim_cache.stats c in
        Some
          {
            s1 with
            Kft_engine.Engine.Cache.hits = s1.hits - s0.hits;
            misses = s1.misses - s0.misses;
          }
    | _ -> None
  in
  (match sim_cache_stats with
  | Some st ->
      Trace.add trace "sim_cache_hits" st.Kft_engine.Engine.Cache.hits;
      Trace.add trace "sim_cache_misses" st.Kft_engine.Engine.Cache.misses
  | None -> ());
  (* memory-pool accounting for this run. Requests and cells are a pure
     function of the simulation call sequence, so they live in the
     canonical (byte-stable) channel; hit/miss/high-water depend on how
     warm the pool is from earlier runs in the process, so they go to
     the note side channel like the scheduler counters below. *)
  let pool_stats =
    let s1 = Kft_sim.Memory.Pool.stats () in
    let s0 = pool_stats_before in
    {
      s1 with
      Kft_sim.Memory.Pool.requests = s1.requests - s0.requests;
      hits = s1.hits - s0.hits;
      misses = s1.misses - s0.misses;
      cells_requested = s1.cells_requested - s0.cells_requested;
    }
  in
  Trace.add trace "pool_requests" pool_stats.Kft_sim.Memory.Pool.requests;
  Trace.add trace "pool_cells" pool_stats.Kft_sim.Memory.Pool.cells_requested;
  Trace.note trace "pool_hits" (Trace.Int pool_stats.Kft_sim.Memory.Pool.hits);
  Trace.note trace "pool_misses" (Trace.Int pool_stats.Kft_sim.Memory.Pool.misses);
  Trace.note trace "pool_high_water" (Trace.Int pool_stats.Kft_sim.Memory.Pool.high_water);
  (* which concrete backend each baseline launch executes on under this
     config — a pure re-query of the (static) selection, for the stage
     report *)
  let backends =
    List.fold_left
      (fun acc sched ->
        match sched with
        | Launch l when not (List.mem_assoc l.l_kernel acc) ->
            ( l.l_kernel,
              Kft_sim.Interp.backend_name (Kft_sim.Interp.selected_backend ~backend prog l) )
            :: acc
        | _ -> acc)
      [] prog.p_schedule
    |> List.rev
  in
  (match engine with
  | Some e ->
      let ps = Kft_engine.Engine.pool_stats e in
      Trace.note trace "jobs" (Trace.Int ps.Kft_engine.Engine.Pool.st_jobs);
      Trace.note trace "workers" (Trace.Int ps.Kft_engine.Engine.Pool.st_workers);
      Trace.note trace "batches" (Trace.Int ps.Kft_engine.Engine.Pool.st_batches);
      Trace.note trace "batch_items" (Trace.Int ps.Kft_engine.Engine.Pool.st_items);
      Trace.note trace "max_queue" (Trace.Int ps.Kft_engine.Engine.Pool.st_max_queue);
      Trace.note trace "steals" (Trace.Int ps.Kft_engine.Engine.Pool.st_steals);
      Trace.note trace "worker_tasks"
        (Trace.Str
           (String.concat ","
              (List.map string_of_int ps.Kft_engine.Engine.Pool.st_worker_tasks)))
  | None -> ());
  {
    baseline;
    metadata = meta;
    graphs;
    schedflow;
    targets;
    fission_plans;
    gga = gga_result;
    solution_groups;
    fissioned;
    codegen;
    transformed;
    transformed_run;
    speedup = Kft_sim.Profiler.speedup ~original:baseline ~transformed:transformed_run;
    verified;
    verify_report;
    lint_findings;
    rejected_groups;
    new_graphs = Ddg.build transformed;
    sim_cache_stats;
    pool_stats;
    backends;
    trace;
  }

let stage_report r =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "== stage 1: metadata ==";
  p "kernels profiled: %d, baseline modeled time: %.1f us" (List.length r.metadata.performance)
    r.baseline.total_time_us;
  if r.backends <> [] then
    p "  execution backends: %s"
      (String.concat ", " (List.map (fun (k, b) -> k ^ ":" ^ b) r.backends));
  (match r.sim_cache_stats with
  | Some s ->
      p "  profile cache: %d hits, %d misses this run (%d cached simulations)"
        s.Kft_engine.Engine.Cache.hits s.misses s.size
  | None -> ());
  (let ps = r.pool_stats in
   if ps.Kft_sim.Memory.Pool.requests > 0 then
     p "  memory pool: %d arenas (%d recycled, %d fresh), %.1f Mcells requested"
       ps.Kft_sim.Memory.Pool.requests ps.hits ps.misses
       (float_of_int ps.cells_requested /. 1e6));
  p "";
  p "== stage 2: target identification ==";
  List.iter
    (fun t ->
      p "  %-24s %-14s %s %s" t.invocation.inv_key
        (Classify.to_string t.classification)
        (if t.eligible then "[target]" else "[excluded]")
        t.reason)
    r.targets;
  p "";
  p "== stage 3: DDG / OEG ==";
  p "DDG: %d nodes, %d edges; OEG: %d nodes, %d edges"
    (Kft_graph.Digraph.node_count r.graphs.ddg)
    (Kft_graph.Digraph.edge_count r.graphs.ddg)
    (Kft_graph.Digraph.node_count r.graphs.oeg)
    (Kft_graph.Digraph.edge_count r.graphs.oeg);
  List.iter
    (fun (a, n) -> p "  redundant instances added for multi-writer array %s (%d copies)" a n)
    r.graphs.versioned_arrays;
  (match r.schedflow with
  | None -> ()
  | Some sf ->
      let s = sf.Schedflow.stats in
      p "  schedflow: %d ops (%d launches), %d arrays, %d deps (%d refined away by proved regions)"
        s.Schedflow.st_ops s.st_launches s.st_arrays s.st_deps s.st_deps_refined;
      p "  schedflow regions: %d proved, %d whole-array fallback; %d dataflow issue%s"
        s.st_regions_proved s.st_regions_fallback
        (List.length sf.Schedflow.issues)
        (if List.length sf.Schedflow.issues = 1 then "" else "s");
      List.iter (fun i -> p "    %s" (Schedflow.pp_issue i)) sf.Schedflow.issues);
  p "";
  p "== stage 4: GGA search ==";
  (match r.gga with
  | None -> p "  skipped (fewer than two targets)"
  | Some g ->
      p "  best objective %.3f GFLOPS (raw %.3f), %d violations" g.best.fitness
        g.best.raw_objective g.best.violations;
      p "  fission events: %d (%.3f per generation), converged at generation %d"
        g.fission_events g.avg_fissions_per_generation g.converged_at;
      let es = g.engine_stats in
      p "  engine: jobs=%d memo=%s; %d evaluations (%d computed, %.1f%% memo hits); %.3f s (%.2f ms/generation)"
        es.es_jobs
        (if es.es_memo then "on" else "off")
        es.es_requested es.es_computed (100.0 *. es.es_hit_rate) es.es_search_wall_s
        (1000.0 *. es.es_gen_wall_s));
  p "  groups: %s"
    (String.concat " | " (List.map (fun g -> String.concat "+" g) r.solution_groups));
  (if r.fissioned <> [] then p "  fissioned kernels: %s" (String.concat ", " r.fissioned));
  p "";
  p "== stage 5: code generation ==";
  List.iter
    (fun (rep : Codegen.kernel_report) ->
      p "  %-10s <- [%s] %s staged:%d shared:%dB block:%s occ %.2f->%.2f%s" rep.new_kernel
        (String.concat "," rep.members)
        (match rep.fusion_kind with `None -> "copy" | `Simple -> "simple-fusion" | `Complex -> "complex-fusion")
        (List.length rep.staged_arrays) rep.shared_bytes
        (let a, b, c = rep.block in
         Printf.sprintf "(%d,%d,%d)" a b c)
        rep.occupancy_before rep.occupancy_after
        (match rep.notes with [] -> "" | n -> " !! " ^ String.concat "; " n))
    r.codegen.reports;
  p "";
  p "== verification (kft_verify) ==";
  (let v = r.verify_report in
   if v.stats.launches_checked = 0 && v.diagnostics = [] then p "  skipped (verify_mode = off)"
   else begin
     p "  %d launches checked, %d blocks sampled, %d threads walked, %d events%s"
       v.stats.launches_checked v.stats.blocks_sampled v.stats.threads_walked v.stats.events
       (if v.complete then "" else " (budget exhausted: report incomplete)");
     p "  bounds: %d launches proved by absint, %d on sampled fallback"
       v.stats.bounds_proved v.stats.bounds_fallback;
     if v.stats.sched_deps_checked > 0 || v.stats.sched_fallback > 0 then
       p "  schedule: %d source dependences checked end-to-end, %d launches unplaced"
         v.stats.sched_deps_checked v.stats.sched_fallback;
     (match v.diagnostics with
     | [] -> p "  clean: no races, barrier divergence, bounds violations or order violations"
     | ds -> List.iter (fun d -> p "  %s" (Verify.pp_diagnostic d)) ds);
     List.iter (fun (k, reason) -> p "  %s: %s" k reason) r.rejected_groups
   end);
  p "";
  p "== lint (kft_absint) ==";
  (let w = Kft_absint.Lint.warnings r.lint_findings in
   let i = Kft_absint.Lint.infos r.lint_findings in
   if w = 0 && i = 0 then p "  clean: no findings"
   else begin
     p "  %d warning%s, %d advisory note%s" w
       (if w = 1 then "" else "s")
       i
       (if i = 1 then "" else "s");
     List.iter
       (fun (f : Kft_absint.Lint.finding) ->
         if f.f_severity = Kft_absint.Lint.Warn then
           p "  %s" (Kft_absint.Lint.render f))
       r.lint_findings
   end);
  p "";
  p "== result ==";
  p "speedup: %.3fx (%.1f us -> %.1f us), verification: %s" r.speedup r.baseline.total_time_us
    r.transformed_run.total_time_us
    (match r.verified with
    | Ok () -> "OK"
    | Error diffs -> Printf.sprintf "FAILED on %d arrays" (List.length diffs));
  (match r.trace with
  | None -> ()
  | Some t ->
      p "";
      p "== trace ==";
      Buffer.add_string buf (Trace.render_tree t));
  Buffer.contents buf
