type params = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
  elitism : int;
  seed : int;
  c_violation : float;
  c_sm_stuck : float;
  fission_enabled : bool;
}

let default_params =
  {
    population = 100;
    generations = 500;
    crossover_rate = 0.8;
    mutation_rate = 0.25;
    tournament = 3;
    elitism = 2;
    seed = 7;
    c_violation = 50.0;
    c_sm_stuck = 20.0;
    fission_enabled = true;
  }

let params_to_text p =
  String.concat "\n"
    [
      Printf.sprintf "population = %d" p.population;
      Printf.sprintf "generations = %d" p.generations;
      Printf.sprintf "crossover_rate = %g" p.crossover_rate;
      Printf.sprintf "mutation_rate = %g" p.mutation_rate;
      Printf.sprintf "tournament = %d" p.tournament;
      Printf.sprintf "elitism = %d" p.elitism;
      Printf.sprintf "seed = %d" p.seed;
      Printf.sprintf "c_violation = %g" p.c_violation;
      Printf.sprintf "c_sm_stuck = %g" p.c_sm_stuck;
      Printf.sprintf "fission_enabled = %b" p.fission_enabled;
      "";
    ]

let params_of_text text =
  let kv = Hashtbl.create 16 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match String.index_opt line '=' with
           | Some i ->
               Hashtbl.replace kv
                 (String.trim (String.sub line 0 i))
                 (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
           | None -> failwith ("GGA parameter file: malformed line: " ^ line));
  let get name default conv =
    match Hashtbl.find_opt kv name with Some v -> conv v | None -> default
  in
  {
    population = get "population" default_params.population int_of_string;
    generations = get "generations" default_params.generations int_of_string;
    crossover_rate = get "crossover_rate" default_params.crossover_rate float_of_string;
    mutation_rate = get "mutation_rate" default_params.mutation_rate float_of_string;
    tournament = get "tournament" default_params.tournament int_of_string;
    elitism = get "elitism" default_params.elitism int_of_string;
    seed = get "seed" default_params.seed int_of_string;
    c_violation = get "c_violation" default_params.c_violation float_of_string;
    c_sm_stuck = get "c_sm_stuck" default_params.c_sm_stuck float_of_string;
    fission_enabled = get "fission_enabled" default_params.fission_enabled bool_of_string;
  }

type problem = {
  units : Kft_perfmodel.Perfmodel.unit_model list;
  fission_parts : (string * Kft_perfmodel.Perfmodel.unit_model list) list;
  part_arrays : (string * string list) list;
  feasible : string list -> bool;
  solution_feasible : groups:string list list -> fissioned:string list -> bool;
      (** joint schedulability: contracting every group at once must
          leave the order-of-execution graph acyclic *)
  objective : Kft_perfmodel.Perfmodel.unit_model list list -> float;
  shared_ok : Kft_perfmodel.Perfmodel.unit_model list -> bool;
}

type solution = {
  groups : string list list;
  fissioned : string list;
  fitness : float;
  raw_objective : float;
  violations : int;
}

type engine_stats = {
  es_jobs : int;
  es_memo : bool;
  es_requested : int;
  es_computed : int;
  es_hit_rate : float;
  es_search_wall_s : float;
  es_gen_wall_s : float;
}

type result = {
  best : solution;
  history : (int * float) list;
  fission_events : int;
  avg_fissions_per_generation : float;
  converged_at : int;
  evaluations : int;
  engine_stats : engine_stats;
}

module Engine = Kft_engine.Engine
module Trace = Kft_trace.Trace

(* genotype: groups of unit names + set of fissioned kernels *)
type genome = { g_groups : string list list; g_fissioned : string list }

(* canonical form: members sorted within groups, groups sorted, fissioned
   set sorted and deduplicated. Evaluation happens on the canonical form
   only, which makes the fitness a pure function of the canonical key --
   the property the memo cache and the parallel map both rely on (cache
   on/off and any worker count produce bit-identical results). *)
let normalize genome =
  {
    g_groups = List.map (List.sort compare) genome.g_groups |> List.sort compare;
    g_fissioned = List.sort_uniq compare genome.g_fissioned;
  }

(* memo key of a canonical genome *)
let cache_key genome =
  String.concat ";" (List.map (String.concat ",") genome.g_groups)
  ^ "#"
  ^ String.concat "," genome.g_fissioned

(* structural repair: make [genome] a valid partition of its *effective*
   unit set -- every original unit, with each fissioned original replaced
   by its pre-profiled parts. Crossover of parents whose fission states
   differ can otherwise leave an original and its parts alive at once, or
   drop units entirely. Keeps the first occurrence of each unit (group
   and member order preserved), expands stale originals in place, drops
   unknown names, and appends still-missing units as singletons. *)
let repair_partition ~units ~parts genome =
  let fissioned =
    List.sort_uniq compare (List.filter (fun u -> List.mem_assoc u parts) genome.g_fissioned)
  in
  let expansion u = if List.mem u fissioned then List.assoc u parts else [ u ] in
  let expected = List.concat_map expansion units in
  let in_expected = Hashtbl.create 32 in
  List.iter (fun u -> Hashtbl.replace in_expected u ()) expected;
  let placed = Hashtbl.create 32 in
  let keep u =
    if Hashtbl.mem in_expected u && not (Hashtbl.mem placed u) then begin
      Hashtbl.replace placed u ();
      true
    end
    else false
  in
  let groups =
    List.filter_map
      (fun g ->
        match List.filter keep (List.concat_map expansion g) with
        | [] -> None
        | g' -> Some g')
      genome.g_groups
  in
  let missing = List.filter (fun u -> not (Hashtbl.mem placed u)) expected in
  { g_groups = groups @ List.map (fun u -> [ u ]) missing; g_fissioned = fissioned }

let model_table problem =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (m : Kft_perfmodel.Perfmodel.unit_model) -> Hashtbl.replace tbl m.unit_name m) problem.units;
  List.iter
    (fun (_, parts) ->
      List.iter (fun (m : Kft_perfmodel.Perfmodel.unit_model) -> Hashtbl.replace tbl m.unit_name m) parts)
    problem.fission_parts;
  tbl

(* ------------------------------------------------------------------ *)
(* Evaluation with lazy fission                                        *)
(* ------------------------------------------------------------------ *)

let arrays_of_model (m : Kft_perfmodel.Perfmodel.unit_model) = List.map (fun a -> a.Kft_perfmodel.Perfmodel.host) m.arrays

let evaluate params problem tbl genome =
  let fission_counter = ref 0 in
  let model name =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None -> invalid_arg ("GGA: unknown unit " ^ name)
  in
  (* lazy fission repair: returns possibly-modified groups + fissioned *)
  let fissioned = ref genome.g_fissioned in
  let rec repair_group group =
    let models = List.map model group in
    if problem.shared_ok models || not params.fission_enabled then (group, [])
    else
      (* pick a fissionable member: an original kernel with pre-profiled parts *)
      match
        List.find_opt
          (fun u -> List.mem_assoc u problem.fission_parts && not (List.mem u !fissioned))
          group
      with
      | None -> (group, [])
      | Some victim ->
          incr fission_counter;
          fissioned := victim :: !fissioned;
          let parts = List.assoc victim problem.fission_parts in
          let others = List.filter (fun u -> u <> victim) group in
          let other_arrays =
            List.concat_map (fun u -> arrays_of_model (model u)) others
          in
          let stays, leaves =
            List.partition
              (fun (p : Kft_perfmodel.Perfmodel.unit_model) ->
                let pa =
                  match List.assoc_opt p.unit_name problem.part_arrays with
                  | Some a -> a
                  | None -> arrays_of_model p
                in
                List.exists (fun a -> List.mem a other_arrays) pa)
              parts
          in
          (* keep at least one part in the group to preserve grouping *)
          let stays, leaves =
            match (stays, leaves) with
            | [], p :: rest -> ([ p ], rest)
            | s, l -> (s, l)
          in
          let group' = others @ List.map (fun p -> p.Kft_perfmodel.Perfmodel.unit_name) stays in
          let singletons = List.map (fun p -> [ p.Kft_perfmodel.Perfmodel.unit_name ]) leaves in
          let group'', more = repair_group group' in
          (group'', singletons @ more)
  in
  (* when no further fission can relax a violating group, split it
     greedily along array-sharing affinity into fitting subgroups (the
     final step of the dynamic relaxation) *)
  let rec greedy_split group =
    if List.length group <= 1 || problem.shared_ok (List.map model group) then [ group ]
    else begin
      match group with
      | [] -> []
      | seed :: rest ->
          let arrays_of u = arrays_of_model (model u) in
          let rec grow current current_arrays candidates =
            let shares u = List.exists (fun a -> List.mem a current_arrays) (arrays_of u) in
            match
              List.find_opt
                (fun u -> shares u && problem.shared_ok (List.map model (u :: current)))
                candidates
            with
            | Some u ->
                grow (u :: current) (arrays_of u @ current_arrays)
                  (List.filter (fun v -> v <> u) candidates)
            | None -> (current, candidates)
          in
          let sub, remaining = grow [ seed ] (arrays_of seed) rest in
          List.rev sub :: greedy_split remaining
    end
  in
  let groups =
    List.concat_map
      (fun g ->
        let g', extra = repair_group g in
        greedy_split g' @ extra)
      genome.g_groups
  in
  let violations = ref 0 in
  if not (problem.solution_feasible ~groups ~fissioned:!fissioned) then incr violations;
  List.iter
    (fun g ->
      let models = List.map model g in
      if List.length g > 1 then begin
        if not (problem.feasible g) then incr violations;
        if List.exists (fun (m : Kft_perfmodel.Perfmodel.unit_model) -> not m.fusable) models then
          incr violations
      end;
      if not (problem.shared_ok models) then incr violations)
    groups;
  let raw = problem.objective (List.map (List.map model) groups) in
  (* the penalty has a constant term (the paper's C_i) plus a term
     proportional to the raw objective, so an infeasible grouping can
     never out-score a feasible one merely by projecting more reuse *)
  let scale = Float.abs raw in
  let stuck_groups =
    List.fold_left
      (fun acc g -> if problem.shared_ok (List.map model g) then acc else acc + 1)
      0 groups
  in
  let fitness =
    raw
    -. (float_of_int !violations *. (params.c_violation +. (0.75 *. scale)))
    -. (float_of_int stuck_groups *. (params.c_sm_stuck +. (0.15 *. scale)))
  in
  ( { groups; fissioned = List.sort_uniq compare !fissioned; fitness; raw_objective = raw; violations = !violations },
    { g_groups = groups; g_fissioned = List.sort_uniq compare !fissioned },
    !fission_counter )

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let random_partition rng units =
  let n = List.length units in
  let n_groups = 1 + Random.State.int rng (max 1 n) in
  let buckets = Array.make n_groups [] in
  List.iter (fun u -> let i = Random.State.int rng n_groups in buckets.(i) <- u :: buckets.(i)) units;
  Array.to_list buckets |> List.filter (fun g -> g <> [])

let crossover rng a b =
  (* inject a random selection of B's groups into A *)
  let injected = List.filter (fun _ -> Random.State.bool rng) b.g_groups in
  if injected = [] then a
  else begin
    let injected_units = List.concat injected in
    let remaining =
      List.filter_map
        (fun g ->
          match List.filter (fun u -> not (List.mem u injected_units)) g with
          | [] -> None
          | g' -> Some g')
        a.g_groups
    in
    (* units of A fissioned differently than B could mismatch; keep the
       union of fissioned sets and drop stale unit names *)
    { g_groups = remaining @ injected; g_fissioned = List.sort_uniq compare (a.g_fissioned @ b.g_fissioned) }
  end

let mutate rng tbl genome =
  let groups = Array.of_list genome.g_groups in
  let n = Array.length groups in
  if n = 0 then genome
  else
    match Random.State.int rng 5 with
    | (0 | 1) when n >= 2 -> (
        (* affinity merge: join two groups that touch a common array --
           the merges that can actually expose locality *)
        let arrays_of_group g =
          List.concat_map
            (fun u ->
              match Hashtbl.find_opt tbl u with
              | Some m -> arrays_of_model m
              | None -> [])
            g
        in
        let i = Random.State.int rng n in
        let ai = arrays_of_group groups.(i) in
        let candidates =
          List.filteri (fun j _ -> j <> i) (Array.to_list groups)
          |> List.filteri (fun _ g -> List.exists (fun a -> List.mem a ai) (arrays_of_group g))
        in
        match candidates with
        | [] -> genome
        | cs ->
            let pick = List.nth cs (Random.State.int rng (List.length cs)) in
            let rest =
              Array.to_list groups |> List.filteri (fun j _ -> j <> i) |> List.filter (fun g -> g <> pick)
            in
            { genome with g_groups = (groups.(i) @ pick) :: rest })
    | 2 when n >= 2 ->
        (* merge two random groups *)
        let i = Random.State.int rng n and j = Random.State.int rng n in
        if i = j then genome
        else begin
          let merged = groups.(i) @ groups.(j) in
          let rest = Array.to_list groups |> List.filteri (fun k _ -> k <> i && k <> j) in
          { genome with g_groups = merged :: rest }
        end
    | 3 ->
        (* split a random group *)
        let i = Random.State.int rng n in
        let g = groups.(i) in
        if List.length g < 2 then genome
        else begin
          let left, right = List.partition (fun _ -> Random.State.bool rng) g in
          if left = [] || right = [] then genome
          else begin
            let rest = Array.to_list groups |> List.filteri (fun k _ -> k <> i) in
            { genome with g_groups = left :: right :: rest }
          end
        end
    | _ ->
        (* move one unit to another (possibly new) group *)
        let i = Random.State.int rng n in
        let g = groups.(i) in
        if g = [] then genome
        else begin
          let u = List.nth g (Random.State.int rng (List.length g)) in
          let g' = List.filter (fun x -> x <> u) g in
          let dest = Random.State.int rng (n + 1) in
          let rest = Array.to_list groups |> List.mapi (fun k grp -> (k, grp)) in
          let new_groups =
            List.filter_map
              (fun (k, grp) ->
                let grp = if k = i then g' else grp in
                let grp = if k = dest then u :: grp else grp in
                if grp = [] then None else Some grp)
              rest
          in
          let new_groups = if dest = n then [ u ] :: new_groups else new_groups in
          { genome with g_groups = new_groups }
        end

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(on_generation = fun _ _ -> ()) ?engine ?trace params problem =
  (* when the caller supplies no engine, run sequentially with the memo
     cache on; the caller's engine is never shut down here *)
  let owned = match engine with None -> Some (Engine.create ~jobs:1 ()) | Some _ -> None in
  let engine = match engine with Some e -> e | None -> Option.get owned in
  Fun.protect ~finally:(fun () -> Option.iter Engine.shutdown owned) @@ fun () ->
  let t_search = Engine.now () in
  let rng = Random.State.make [| params.seed |] in
  let tbl = model_table problem in
  let unit_names = List.map (fun (m : Kft_perfmodel.Perfmodel.unit_model) -> m.unit_name) problem.units in
  let parts =
    List.map
      (fun (orig, ms) ->
        (orig, List.map (fun (m : Kft_perfmodel.Perfmodel.unit_model) -> m.unit_name) ms))
      problem.fission_parts
  in
  let memo = Engine.memo_enabled engine in
  let cache : (solution * genome * int) Engine.Cache.t = Engine.Cache.create () in
  let fission_counter = ref 0 in
  let requested = ref 0 in
  let computed = ref 0 in
  (* batched evaluation through the pool: genomes are repaired and
     canonicalized in the coordinator, de-duplicated against the memo
     cache, evaluated in parallel, and reduced in submission order. The
     per-genome fission count is replayed on memo hits so [fission_events]
     is independent of cache and worker-count settings. *)
  let eval_batch genomes =
    let keyed =
      List.map
        (fun g ->
          let g = normalize (repair_partition ~units:unit_names ~parts g) in
          (cache_key g, g))
        genomes
    in
    requested := !requested + List.length keyed;
    let to_compute =
      if not memo then keyed
      else begin
        let pending = Hashtbl.create 16 in
        List.filter
          (fun (k, _) ->
            Engine.Cache.find cache k = None
            && (not (Hashtbl.mem pending k))
            &&
            (Hashtbl.replace pending k ();
             true))
          keyed
      end
    in
    let results =
      Engine.map engine (fun (k, g) -> (k, evaluate params problem tbl g)) to_compute
    in
    computed := !computed + List.length results;
    if memo then begin
      List.iter (fun (k, r) -> Engine.Cache.add cache k r) results;
      List.map
        (fun (k, _) ->
          match Engine.Cache.peek cache k with
          | Some (s, g, fissions) ->
              fission_counter := !fission_counter + fissions;
              (s, g)
          | None -> assert false)
        keyed
    end
    else
      List.map
        (fun (_, (s, g, fissions)) ->
          fission_counter := !fission_counter + fissions;
          (s, g))
        results
  in
  let initial =
    List.init params.population (fun i ->
        if i = 0 then { g_groups = List.map (fun u -> [ u ]) unit_names; g_fissioned = [] }
        else { g_groups = random_partition rng unit_names; g_fissioned = [] })
  in
  let scored = ref [] in
  (* one span per generation (gen:0 is the initial scoring). Evaluation
     deltas and population fitness stats are deterministic at any worker
     count: de-duplication happens in the coordinator before submission,
     and the search itself is bit-identical (see DESIGN.md 3d). *)
  let traced_generation idx f =
    let r0 = !requested and c0 = !computed in
    Trace.with_span trace (Printf.sprintf "gen:%d" idx) (fun () ->
        f ();
        Trace.add trace "requested" (!requested - r0);
        Trace.add trace "computed" (!computed - c0);
        if trace <> None then begin
          let fs = List.map (fun (s, _) -> s.fitness) !scored in
          let n = float_of_int (max 1 (List.length fs)) in
          Trace.set trace "fit_best" (Trace.Float (List.fold_left Float.max neg_infinity fs));
          Trace.set trace "fit_min" (Trace.Float (List.fold_left Float.min infinity fs));
          Trace.set trace "fit_mean" (Trace.Float (List.fold_left ( +. ) 0.0 fs /. n))
        end)
  in
  traced_generation 0 (fun () -> scored := eval_batch initial);
  let best = ref (fst (List.hd !scored)) in
  List.iter (fun (s, _) -> if s.fitness > !best.fitness then best := s) !scored;
  let history = ref [ (0, !best.fitness) ] in
  let tournament pop =
    let n = Array.length pop in
    let pick () = pop.(Random.State.int rng n) in
    let rec go k champ =
      if k = 0 then champ
      else
        let c = pick () in
        go (k - 1) (if (fst c).fitness > (fst champ).fitness then c else champ)
    in
    go (params.tournament - 1) (pick ())
  in
  for gen = 1 to params.generations do
    traced_generation gen (fun () ->
        let pop = Array.of_list !scored in
        Array.sort (fun (a, _) (b, _) -> compare b.fitness a.fitness) pop;
        let elite =
          Array.to_list (Array.sub pop 0 (min params.elitism (Array.length pop)))
        in
        (* the whole generation is bred in the coordinator domain (all RNG
           draws happen here, in a fixed order), then scored as one batch *)
        let offspring = ref [] in
        for _ = 1 to params.population - List.length elite do
          let _, ga = tournament pop in
          let child =
            if Random.State.float rng 1.0 < params.crossover_rate then begin
              let _, gb = tournament pop in
              crossover rng ga gb
            end
            else ga
          in
          let child =
            if Random.State.float rng 1.0 < params.mutation_rate then mutate rng tbl child else child
          in
          offspring := child :: !offspring
        done;
        let children = eval_batch (List.rev !offspring) in
        scored := elite @ children;
        List.iter
          (fun (s, _) ->
            if s.fitness > !best.fitness then begin
              best := s;
              history := (gen, s.fitness) :: !history
            end)
          !scored;
        on_generation gen !best)
  done;
  let final = !best.fitness in
  let converged_at =
    let thr = final -. (Float.abs final *. 0.001) in
    List.fold_left (fun acc (gen, f) -> if f >= thr then min acc gen else acc) params.generations
      !history
  in
  let search_wall_s = Engine.now () -. t_search in
  {
    best = !best;
    history = List.rev !history;
    fission_events = !fission_counter;
    avg_fissions_per_generation =
      float_of_int !fission_counter /. float_of_int (max 1 params.generations);
    converged_at;
    evaluations = !requested;
    engine_stats =
      {
        es_jobs = Engine.jobs engine;
        es_memo = memo;
        es_requested = !requested;
        es_computed = !computed;
        es_hit_rate =
          (if !requested = 0 then 0.0
           else 1.0 -. (float_of_int !computed /. float_of_int !requested));
        es_search_wall_s = search_wall_s;
        es_gen_wall_s = search_wall_s /. float_of_int (max 1 params.generations);
      };
  }

(* ------------------------------------------------------------------ *)
(* Internals exposed for property testing                              *)
(* ------------------------------------------------------------------ *)

module Internal = struct
  type nonrec genome = genome = { g_groups : string list list; g_fissioned : string list }

  let model_table = model_table
  let normalize = normalize
  let cache_key = cache_key
  let repair_partition = repair_partition
  let random_partition = random_partition
  let crossover = crossover
  let mutate = mutate
  let evaluate = evaluate
end
