(** Customized Grouped Genetic Algorithm (Sections 2, 4.1, 5.4).

    Individuals are partitions of the target kernel invocations into
    fusion groups; the grouping-aware operators (Falkenauer-style group
    injection crossover, split/merge/move mutation) manipulate groups,
    not genes, so offspring remain valid partitions.

    Fitness is the projected-GFLOPS objective penalized per the dynamic
    penalty function of Section 4.1: each violated constraint adds a
    constant penalty [C_i]; a violated shared-memory capacity constraint
    is *relaxed* when some member can be fissioned — lazy fission
    replaces the member by its pre-profiled parts (keeping in the group
    only the parts that share data with the rest) — and penalized harder
    ([c_sm_stuck]) when no member can. *)

type params = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
  elitism : int;
  seed : int;
  c_violation : float;  (** [C_i]: penalty per violated precedence/subset constraint *)
  c_sm_stuck : float;  (** penalty when the shared-memory constraint is violated and no fission can relax it *)
  fission_enabled : bool;  (** lazy fission on/off (ablation) *)
}

val default_params : params
(** The paper's defaults: population 100, 500 generations. *)

val params_to_text : params -> string

val params_of_text : string -> params
(** Round-trip of the parameter file the programmer may edit
    (Section 3.2.4). Raises [Failure] on malformed input. *)

type problem = {
  units : Kft_perfmodel.Perfmodel.unit_model list;
      (** target kernel invocations (filtered; in schedule order) *)
  fission_parts : (string * Kft_perfmodel.Perfmodel.unit_model list) list;
      (** lazy-fission pre-step: per fissionable kernel, the models of
          its parts (each part name is unique) *)
  part_arrays : (string * string list) list;
      (** host arrays touched per fission part (to decide which parts
          stay in the violating group) *)
  feasible : string list -> bool;
      (** may this set of units be fused? (OEG quotient acyclicity) *)
  solution_feasible : groups:string list list -> fissioned:string list -> bool;
      (** joint schedulability of a whole solution: contracting every
          group simultaneously must leave the OEG acyclic (two
          individually feasible groups can still deadlock each other) *)
  objective : Kft_perfmodel.Perfmodel.unit_model list list -> float;
      (** black-box solution objective, higher is better (projected GFLOPS) *)
  shared_ok : Kft_perfmodel.Perfmodel.unit_model list -> bool;
      (** does the group's staging footprint fit per-block shared memory? *)
}

type solution = {
  groups : string list list;
  fissioned : string list;  (** original kernels replaced by their parts *)
  fitness : float;
  raw_objective : float;
  violations : int;
}

type engine_stats = {
  es_jobs : int;  (** evaluation width of the engine the search ran on *)
  es_memo : bool;  (** was the fitness memo cache enabled? *)
  es_requested : int;  (** fitness evaluations requested (= [evaluations]) *)
  es_computed : int;  (** distinct evaluations actually computed *)
  es_hit_rate : float;  (** [1 - computed/requested]: fraction served by the memo *)
  es_search_wall_s : float;  (** wall-clock seconds of the whole search *)
  es_gen_wall_s : float;  (** average wall-clock seconds per generation *)
}
(** Throughput statistics of one search. The wall-clock fields are the
    only non-deterministic part of a {!result}; everything else is
    bit-identical for a fixed [params.seed] at any worker count, with the
    memo cache on or off. *)

type result = {
  best : solution;
  history : (int * float) list;  (** (generation, best fitness) when improved *)
  fission_events : int;
  avg_fissions_per_generation : float;
  converged_at : int;  (** first generation within 0.1 % of the final best *)
  evaluations : int;  (** fitness evaluations requested (memo hits included) *)
  engine_stats : engine_stats;
}

val run :
  ?on_generation:(int -> solution -> unit) ->
  ?engine:Kft_engine.Engine.t ->
  ?trace:Kft_trace.Trace.t ->
  params -> problem -> result
(** Deterministic for a fixed [params.seed]: each generation is bred
    entirely in the calling (coordinator) domain — every RNG draw happens
    there, in a fixed order — and scored as one batch through the
    engine's pool, whose results are reduced in submission order. Genomes
    are canonicalized (sorted groups + fissioned set) before evaluation,
    making fitness a pure function of the canonical key, so the memo
    cache is transparent: [best]/[history]/[evaluations]/[fission_events]
    are bit-identical across [jobs] ∈ {1, 2, 4, ...} and cache on/off.

    [trace] records one [gen:<n>] span per generation ([gen:0] is the
    initial scoring) with evaluation-batch counters and population
    fitness stats — all deterministic, so they live in the trace's
    canonical channel.

    [engine] defaults to a private sequential engine with the memo cache
    enabled. A caller-supplied engine is not shut down by this function
    and may be reused across searches (the memo cache itself is
    per-search: keys are only unique within one problem). Requires the
    [problem] callbacks to be thread-safe when [jobs > 1]. *)

(** Search internals exposed for the property-test suite ([test_gga]):
    the grouping operators, structural repair, canonicalization and raw
    evaluation. Not part of the stable API. *)
module Internal : sig
  type genome = { g_groups : string list list; g_fissioned : string list }

  val model_table :
    problem -> (string, Kft_perfmodel.Perfmodel.unit_model) Hashtbl.t

  val normalize : genome -> genome
  (** Canonical form: members sorted within groups, groups sorted,
      fissioned set sorted + deduplicated. *)

  val cache_key : genome -> string
  (** Memo key of a canonical genome. *)

  val repair_partition :
    units:string list -> parts:(string * string list) list -> genome -> genome
  (** Make the genome a valid partition of its effective unit set (each
      fissioned original replaced by its parts): duplicates dropped,
      stale originals expanded, missing units appended as singletons.
      Idempotent. *)

  val random_partition : Random.State.t -> string list -> string list list

  val crossover : Random.State.t -> genome -> genome -> genome
  (** Falkenauer-style group injection. May leave the result in need of
      {!repair_partition} when the parents' fission states differ. *)

  val mutate :
    Random.State.t ->
    (string, Kft_perfmodel.Perfmodel.unit_model) Hashtbl.t ->
    genome -> genome

  val evaluate :
    params -> problem ->
    (string, Kft_perfmodel.Perfmodel.unit_model) Hashtbl.t ->
    genome -> solution * genome * int
  (** [solution, repaired genome, fission events]. Pure function of the
      (canonical) genome. The returned genome is a fixpoint: evaluating
      it again returns it unchanged. *)
end
