open Kft_cuda.Ast

module G = Kft_graph.Digraph

(* For each statement, the set of global arrays whose values flow into
   the statement's writes. Scalar temporaries carry their source-array
   sets forward. *)
let array_dependence_edges (k : kernel) =
  let globals = referenced_arrays k in
  let is_global a = List.mem a globals in
  (* taint: scalar name -> arrays its value derives from *)
  let taint : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let union a b = List.sort_uniq compare (a @ b) in
  let rec sources e =
    match e with
    | Int_lit _ | Double_lit _ | Builtin _ -> []
    | Var v -> ( match Hashtbl.find_opt taint v with Some s -> s | None -> [])
    | Index (a, idxs) ->
        let from_idx = List.concat_map sources idxs in
        if is_global a then union [ a ] from_idx else from_idx
    | Binop (_, a, b) -> union (sources a) (sources b)
    | Unop (_, a) -> sources a
    | Call (_, args) -> List.concat_map sources args |> List.sort_uniq compare
    | Ternary (c, a, b) -> union (sources c) (union (sources a) (sources b))
  in
  (* set-backed accumulator: wide kernels (one write fed by dozens of
     arrays under many guards) would make [List.mem] on a growing edge
     list quadratic in the edge count *)
  let edge_set : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let edges = ref [] in
  let add_edge a b =
    if a <> b then begin
      let p = if a < b then (a, b) else (b, a) in
      if not (Hashtbl.mem edge_set p) then begin
        Hashtbl.replace edge_set p ();
        edges := p :: !edges
      end
    end
  in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | Decl (_, v, Some e) -> Hashtbl.replace taint v (sources e)
        | Decl (_, v, None) -> Hashtbl.replace taint v []
        | Assign (Lvar v, e) ->
            let prev = match Hashtbl.find_opt taint v with Some s -> s | None -> [] in
            Hashtbl.replace taint v (union prev (sources e))
        | Assign (Lindex (a, idxs), e) ->
            let srcs = union (List.concat_map sources idxs) (sources e) in
            if is_global a then List.iter (fun b -> add_edge a b) srcs
        | If (c, t, els) ->
            (* control dependence: writes under the condition depend on
               the condition's source arrays *)
            let csrc = sources c in
            let tag stmts =
              fold_stmts
                (fun () s ->
                  match s with
                  | Assign (Lindex (a, _), _) when is_global a ->
                      List.iter (fun b -> add_edge a b) csrc
                  | _ -> ())
                () stmts
            in
            tag t;
            tag els;
            walk t;
            walk els
        | For l -> walk l.body
        | Shared_decl _ | Syncthreads | Return -> ())
      stmts
  in
  walk k.k_body;
  List.sort compare !edges

let separable_groups (k : kernel) =
  let globals = referenced_arrays k in
  let g = G.create () in
  List.iter (fun a -> G.ensure_node g ~key:a ()) globals;
  List.iter (fun (a, b) -> G.add_edge g a b) (array_dependence_edges k);
  G.components g
