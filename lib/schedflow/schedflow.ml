(* Whole-schedule dataflow: per-op array access sets (region-refined by
   the abstract interpreter where it proves every matching access),
   liveness intervals, the schedule DDG, schedule-level issues, three
   lint rules and the liveness-driven arena overlay. Pure — every
   client (verify pass, kft lint, Framework, bench) re-derives the same
   result from the program alone. *)

open Kft_cuda.Ast
module Loc = Kft_cuda.Loc
module Absint = Kft_absint.Absint
module Lint = Kft_absint.Lint
module Memory = Kft_sim.Memory

type region = Whole | Region of Absint.itv

type op_kind =
  | Launch_op of launch
  | Copy_in of string
  | Copy_out of string

type op = {
  op_index : int;
  op_kind : op_kind;
  op_launch : int option;
  op_reads : (string * region) list;
  op_writes : (string * region) list;
}

type array_info = {
  ai_name : string;
  ai_cells : int;
  ai_input : bool;
  ai_output : bool;
  ai_first : int option;
  ai_last : int option;
  ai_first_read : int option;
  ai_first_write : int option;
  ai_last_read : int option;
  ai_last_write : int option;
}

type dep_kind = Raw | War | Waw

let dep_kind_name = function Raw -> "raw" | War -> "war" | Waw -> "waw"

type dep = { dep_src : int; dep_dst : int; dep_array : string; dep_kind : dep_kind }

type issue =
  | Read_before_write of { rb_array : string; rb_op : int }
  | Dead_store of { ds_array : string; ds_op : int }

let pp_issue = function
  | Read_before_write { rb_array; rb_op } ->
      Printf.sprintf "array %s is read at op %d before any schedule write" rb_array rb_op
  | Dead_store { ds_array; ds_op } ->
      Printf.sprintf "the write to array %s at op %d is never read back (dead store)"
        ds_array ds_op

type stats = {
  st_ops : int;
  st_launches : int;
  st_arrays : int;
  st_deps : int;
  st_deps_refined : int;
  st_regions_proved : int;
  st_regions_fallback : int;
}

type t = {
  program : program;
  ops : op list;
  arrays : array_info list;
  deps : dep list;
  issues : issue list;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Per-op access sets                                                  *)
(* ------------------------------------------------------------------ *)

let itv_hull (a : Absint.itv) (b : Absint.itv) : Absint.itv =
  { lo = min a.lo b.lo; hi = max a.hi b.hi }

let whole_region p name =
  match List.find_opt (fun a -> a.a_name = name) p.p_arrays with
  | Some a -> Region { Absint.lo = 0; hi = array_cells a - 1 }
  | None -> Whole

(* Host arrays touched by a launch in one direction, each with a proved
   region when the abstract interpreter proved every access through
   every parameter bound to that array and recorded the footprint side
   (several parameters aliasing one array merge by interval hull). *)
let launch_sets p l =
  match find_kernel p l.l_kernel with
  | exception Not_found -> ([], [])
  | k -> (
      match bind_args k l.l_args with
      | exception Invalid_argument _ -> ([], [])
      | binds ->
          let array_binds =
            List.filter_map
              (fun (pname, arg) ->
                match arg with Arg_array h -> Some (pname, h) | _ -> None)
              binds
          in
          let res = Absint.analyze_launch p l in
          let direction ~write params_touched =
            let hosts =
              List.sort_uniq compare
                (List.filter_map
                   (fun (pname, h) ->
                     if List.mem pname params_touched then Some h else None)
                   array_binds)
            in
            List.map
              (fun h ->
                let params =
                  List.filter_map
                    (fun (pname, h') ->
                      if h' = h && List.mem pname params_touched then Some pname
                      else None)
                    array_binds
                in
                let region =
                  match res with
                  | None -> Whole
                  | Some r ->
                      let proved =
                        List.for_all
                          (fun pname ->
                            List.for_all
                              (fun (a : Absint.access) ->
                                a.acc_array <> pname
                                || a.acc_space <> Absint.Global
                                || a.acc_write <> write
                                || a.acc_status = Absint.Proved)
                              r.Absint.res_accesses)
                          params
                      in
                      let sides =
                        List.map
                          (fun pname ->
                            match List.assoc_opt pname r.Absint.res_footprints with
                            | Some fp ->
                                if write then fp.Absint.fp_writes else fp.Absint.fp_reads
                            | None -> None)
                          params
                      in
                      if proved && List.for_all Option.is_some sides then
                        match List.filter_map Fun.id sides with
                        | [] -> Whole
                        | s :: rest -> Region (List.fold_left itv_hull s rest)
                      else Whole
                in
                (h, region))
              hosts
          in
          ( direction ~write:false (arrays_read k.k_body),
            direction ~write:true (arrays_written k.k_body) ))

let build_ops p =
  let launches = ref 0 in
  List.mapi
    (fun i hop ->
      match hop with
      | Launch l ->
          let li = !launches in
          incr launches;
          let reads, writes = launch_sets p l in
          { op_index = i; op_kind = Launch_op l; op_launch = Some li;
            op_reads = reads; op_writes = writes }
      | Copy_to_device a ->
          { op_index = i; op_kind = Copy_in a; op_launch = None; op_reads = [];
            op_writes = [ (a, whole_region p a) ] }
      | Copy_to_host a ->
          { op_index = i; op_kind = Copy_out a; op_launch = None;
            op_reads = [ (a, whole_region p a) ]; op_writes = [] })
    p.p_schedule

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let build_arrays p ops =
  let copies_in =
    List.filter_map (function Copy_to_device a -> Some a | _ -> None) p.p_schedule
  in
  let copies_out =
    List.filter_map (function Copy_to_host a -> Some a | _ -> None) p.p_schedule
  in
  let info = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.replace info a.a_name
        {
          ai_name = a.a_name;
          ai_cells = array_cells a;
          ai_input = copies_in = [] || List.mem a.a_name copies_in;
          ai_output = copies_out = [] || List.mem a.a_name copies_out;
          ai_first = None;
          ai_last = None;
          ai_first_read = None;
          ai_first_write = None;
          ai_last_read = None;
          ai_last_write = None;
        })
    p.p_arrays;
  let touch ~write i name =
    match Hashtbl.find_opt info name with
    | None -> ()
    | Some ai ->
        let fst_of cur = match cur with None -> Some i | some -> some in
        let ai =
          {
            ai with
            ai_first = fst_of ai.ai_first;
            ai_last = Some i;
            ai_first_read = (if write then ai.ai_first_read else fst_of ai.ai_first_read);
            ai_first_write = (if write then fst_of ai.ai_first_write else ai.ai_first_write);
            ai_last_read = (if write then ai.ai_last_read else Some i);
            ai_last_write = (if write then Some i else ai.ai_last_write);
          }
        in
        Hashtbl.replace info name ai
  in
  List.iter
    (fun op ->
      List.iter (fun (a, _) -> touch ~write:false op.op_index a) op.op_reads;
      List.iter (fun (a, _) -> touch ~write:true op.op_index a) op.op_writes)
    ops;
  List.filter_map (fun a -> Hashtbl.find_opt info a.a_name) p.p_arrays
  |> List.sort (fun a b -> compare a.ai_name b.ai_name)

(* ------------------------------------------------------------------ *)
(* Schedule DDG                                                        *)
(* ------------------------------------------------------------------ *)

let regions_disjoint ra rb =
  match (ra, rb) with
  | Region a, Region b -> a.Absint.hi < b.Absint.lo || b.Absint.hi < a.Absint.lo
  | _ -> false

let build_deps ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let kept = ref [] and refined = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let consider kind side_i side_j =
        List.iter
          (fun (a, ri) ->
            match List.assoc_opt a side_j with
            | None -> ()
            | Some rj ->
                if regions_disjoint ri rj then incr refined
                else
                  kept :=
                    { dep_src = i; dep_dst = j; dep_array = a; dep_kind = kind }
                    :: !kept)
          side_i
      in
      consider Raw arr.(i).op_writes arr.(j).op_reads;
      consider War arr.(i).op_reads arr.(j).op_writes;
      consider Waw arr.(i).op_writes arr.(j).op_writes
    done
  done;
  let deps =
    List.sort
      (fun a b ->
        compare
          (a.dep_src, a.dep_dst, a.dep_array, dep_kind_name a.dep_kind)
          (b.dep_src, b.dep_dst, b.dep_array, dep_kind_name b.dep_kind))
      !kept
  in
  (deps, !refined)

(* ------------------------------------------------------------------ *)
(* Issues                                                              *)
(* ------------------------------------------------------------------ *)

let build_issues arrays =
  List.concat_map
    (fun ai ->
      let rbw =
        match (ai.ai_input, ai.ai_first_read) with
        | false, Some r
          when (match ai.ai_first_write with None -> true | Some w -> r <= w) ->
            (* a same-op read counts as before the write: the schedule
               grain cannot order accesses inside one launch *)
            [ Read_before_write { rb_array = ai.ai_name; rb_op = r } ]
        | _ -> []
      in
      let dead =
        match (ai.ai_output, ai.ai_last_write) with
        | false, Some w
          when (match ai.ai_last_read with None -> true | Some r -> r < w) ->
            [ Dead_store { ds_array = ai.ai_name; ds_op = w } ]
        | _ -> []
      in
      rbw @ dead)
    arrays

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let count_regions ops =
  List.fold_left
    (fun (p, f) op ->
      List.fold_left
        (fun (p, f) (_, r) -> match r with Region _ -> (p + 1, f) | Whole -> (p, f + 1))
        (p, f)
        (op.op_reads @ op.op_writes))
    (0, 0) ops

let analyze p =
  let ops = build_ops p in
  let arrays = build_arrays p ops in
  let deps, refined = build_deps ops in
  let issues = build_issues arrays in
  let proved, fallback = count_regions ops in
  {
    program = p;
    ops;
    arrays;
    deps;
    issues;
    stats =
      {
        st_ops = List.length ops;
        st_launches =
          List.length (List.filter (fun o -> o.op_launch <> None) ops);
        st_arrays = List.length arrays;
        st_deps = List.length deps;
        st_deps_refined = refined;
        st_regions_proved = proved;
        st_regions_fallback = fallback;
      };
  }

let live_interval t name =
  match List.find_opt (fun ai -> ai.ai_name = name) t.arrays with
  | Some { ai_first = Some f; ai_last = Some l; _ } -> Some (f, l)
  | _ -> None

let launch_deps t =
  let arr = Array.of_list t.ops in
  List.filter_map
    (fun d ->
      match (arr.(d.dep_src).op_launch, arr.(d.dep_dst).op_launch) with
      | Some a, Some b -> Some (a, b, d.dep_array)
      | _ -> None)
    t.deps
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Liveness-driven arena overlay                                       *)
(* ------------------------------------------------------------------ *)

type slot = { sid : int; mutable cap : int; mutable slast : int }

let arena_layout t =
  let packed_total = List.fold_left (fun s ai -> s + ai.ai_cells) 0 t.arrays in
  let birth ai = match ai.ai_first with Some f -> f | None -> max_int in
  let order =
    List.sort
      (fun a b -> compare (birth a, a.ai_name) (birth b, b.ai_name))
      t.arrays
  in
  let slots = ref [] in
  let assignment =
    List.map
      (fun ai ->
        let b = birth ai in
        let ai_last = match ai.ai_last with Some l -> l | None -> -1 in
        (* only never-read arrays may join a slot: no read ever
           observes the clobbered founder data, so every value any read
           sees is the packed run's value bit-for-bit *)
        let eligible =
          if ai.ai_first_read <> None then []
          else List.filter (fun s -> s.slast < b) !slots
        in
        let slot =
          match
            List.fold_left
              (fun best s ->
                match best with
                | Some b' when (b'.cap, -b'.sid) >= (s.cap, -s.sid) -> best
                | _ -> Some s)
              None eligible
          with
          | Some s ->
              s.cap <- max s.cap ai.ai_cells;
              s.slast <- max s.slast ai_last;
              s
          | None ->
              let s = { sid = List.length !slots; cap = ai.ai_cells; slast = ai_last } in
              slots := !slots @ [ s ];
              s
        in
        (ai.ai_name, slot))
      order
  in
  let l_total = List.fold_left (fun s sl -> s + sl.cap) 0 !slots in
  if l_total >= packed_total then None
  else begin
    let offsets = Hashtbl.create 8 in
    let off = ref 0 in
    List.iter
      (fun s ->
        Hashtbl.replace offsets s.sid !off;
        off := !off + s.cap)
      !slots;
    Some
      {
        Memory.l_offsets =
          List.map (fun (name, s) -> (name, Hashtbl.find offsets s.sid)) assignment
          |> List.sort compare;
        l_total;
        (* founders seed last so their pattern survives on shared slots;
           tenants are never read, so their lost pattern is unobservable *)
        l_seed_order = List.rev_map (fun (name, _) -> name) assignment;
      }
  end

(* ------------------------------------------------------------------ *)
(* Lint rules                                                          *)
(* ------------------------------------------------------------------ *)

let op_kernel op =
  match op.op_kind with Launch_op l -> l.l_kernel | Copy_in _ | Copy_out _ -> ""

let find_op t i = List.find (fun o -> o.op_index = i) t.ops

let mk_finding t kernel rule severity message =
  {
    Lint.f_program = t.program.p_name;
    f_kernel = kernel;
    f_loc = Loc.none;
    f_rule = rule;
    f_severity = severity;
    f_message = message;
  }

let dead_array_findings t =
  List.concat_map
    (fun ai ->
      if ai.ai_output then []
      else
        match (ai.ai_first, ai.ai_first_read) with
        | None, _ ->
            [
              mk_finding t "" "dead-array" Lint.Warn
                (Printf.sprintf "array %s is never accessed by any launch or copy"
                   ai.ai_name);
            ]
        | Some _, None ->
            let writer =
              match ai.ai_first_write with
              | Some w -> op_kernel (find_op t w)
              | None -> ""
            in
            [
              mk_finding t writer "dead-array" Lint.Warn
                (Printf.sprintf "array %s is written but never read" ai.ai_name);
            ]
        | _ -> [])
    t.arrays

(* A verbatim-copy kernel body: every global-array store is
   [dst[idx] = src[idx]] with syntactically identical index forms, one
   (dst, src) pair across the whole body. *)
let copy_shape k =
  let stores =
    fold_stmts
      (fun acc s ->
        match s with
        | Assign (Lindex (dst, idx), rhs) -> Some (dst, idx, rhs) :: acc
        | _ -> acc)
      [] k.k_body
  in
  let pairs =
    List.map
      (function
        | Some (dst, idx, Index (src, idx'))
          when src <> dst
               && List.length idx = List.length idx'
               && List.for_all2 equal_expr idx idx' ->
            Some (dst, src)
        | _ -> None)
      stores
  in
  match List.sort_uniq compare pairs with
  | [ Some (dst, src) ] when arrays_written k.k_body = [ dst ] -> Some (dst, src)
  | _ -> None

let redundant_copy_findings t =
  List.concat_map
    (fun op ->
      match op.op_kind with
      | Copy_in _ | Copy_out _ -> []
      | Launch_op l -> (
          match find_kernel t.program l.l_kernel with
          | exception Not_found -> []
          | k -> (
              match copy_shape k with
              | None -> []
              | Some (dst, src) -> (
                  match Absint.analyze_launch t.program l with
                  | Some r when r.Absint.res_all_proved -> (
                      let fp name side =
                        match List.assoc_opt name r.Absint.res_footprints with
                        | Some f -> side f
                        | None -> None
                      in
                      match
                        (fp dst (fun f -> f.Absint.fp_writes),
                         fp src (fun f -> f.Absint.fp_reads))
                      with
                      | Some w, Some rd when w = rd ->
                          let host name =
                            match
                              List.assoc_opt name (bind_args k l.l_args)
                            with
                            | Some (Arg_array h) -> h
                            | _ -> name
                          in
                          [
                            mk_finding t l.l_kernel "redundant-copy" Lint.Warn
                              (Printf.sprintf
                                 "launch copies %s into %s verbatim over the proved \
                                  region %s: the consumer could read %s directly"
                                 (host src) (host dst) (Absint.pp_itv w) (host src));
                          ]
                      | _ -> [])
                  | _ -> []))))
    t.ops

let transient_global_findings t =
  List.concat_map
    (fun ai ->
      match (ai.ai_input || ai.ai_output, ai.ai_first, ai.ai_last) with
      | false, Some f, Some l
        when f = l && ai.ai_first_read = Some f && ai.ai_first_write = Some f ->
          let kernel = op_kernel (find_op t f) in
          if kernel = "" then []
          else
            [
              mk_finding t kernel "transient-global" Lint.Info
                (Printf.sprintf
                   "array %s is live only inside this launch: a fused kernel could \
                    stage it in shared memory or registers"
                   ai.ai_name);
            ]
      | _ -> [])
    t.arrays

let lint t =
  Lint.normalize
    (dead_array_findings t @ redundant_copy_findings t @ transient_global_findings t)

let lint_program p = lint (analyze p)

let lint_programs ?(jobs = 1) ps =
  let arr = Array.of_list ps in
  let out = Array.make (Array.length arr) [] in
  let work i = out.(i) <- lint_program arr.(i) in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let domains =
      List.init jobs (fun j ->
          Domain.spawn (fun () ->
              let i = ref j in
              while !i < n do
                work !i;
                i := !i + jobs
              done))
    in
    List.iter Domain.join domains
  end;
  Lint.normalize (List.concat (Array.to_list out))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let region_text = function
  | Whole -> "whole"
  | Region i -> Printf.sprintf "[%d,%d]" i.Absint.lo i.Absint.hi

let op_text op =
  match op.op_kind with
  | Launch_op l -> Printf.sprintf "launch %s" l.l_kernel
  | Copy_in a -> Printf.sprintf "copy-in %s" a
  | Copy_out a -> Printf.sprintf "copy-out %s" a

let render_human t =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  p "schedule analysis: %s" t.program.p_name;
  p "  ops: %d (%d launches), arrays: %d, deps: %d (%d refined away), regions: %d proved / %d whole-array"
    t.stats.st_ops t.stats.st_launches t.stats.st_arrays t.stats.st_deps
    t.stats.st_deps_refined t.stats.st_regions_proved t.stats.st_regions_fallback;
  p "  liveness:";
  List.iter
    (fun ai ->
      let live =
        match (ai.ai_first, ai.ai_last) with
        | Some f, Some l -> Printf.sprintf "live [%d,%d]" f l
        | _ -> "never accessed"
      in
      p "    %-12s %8d cells  %-16s%s%s" ai.ai_name ai.ai_cells live
        (if ai.ai_input then " input" else "")
        (if ai.ai_output then " output" else ""))
    t.arrays;
  p "  ops:";
  List.iter
    (fun op ->
      let side tag l =
        if l = [] then ""
        else
          Printf.sprintf "  %s %s" tag
            (String.concat ","
               (List.map (fun (a, r) -> a ^ region_text r) l))
      in
      p "    op%-3d %-24s%s%s" op.op_index (op_text op)
        (side "reads" op.op_reads) (side "writes" op.op_writes))
    t.ops;
  p "  deps:";
  if t.deps = [] then p "    (none)"
  else
    List.iter
      (fun d ->
        p "    op%d -> op%d  %s  %s" d.dep_src d.dep_dst (dep_kind_name d.dep_kind)
          d.dep_array)
      t.deps;
  p "  issues:";
  if t.issues = [] then p "    (none)"
  else List.iter (fun i -> p "    %s" (pp_issue i)) t.issues;
  let findings = lint t in
  p "  findings:";
  if findings = [] then p "    (none)"
  else List.iter (fun f -> p "    %s" (Lint.render f)) findings;
  Buffer.contents b

let render_json ts =
  let b = Buffer.create 4096 in
  let esc = Lint.json_escape in
  let opt_int = function None -> "null" | Some i -> string_of_int i in
  Buffer.add_string b "{\"tool\":\"kft-schedflow\",\"version\":1,\"programs\":[";
  List.iteri
    (fun pi t ->
      if pi > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n {\"name\":\"%s\",\"stats\":{\"ops\":%d,\"launches\":%d,\"arrays\":%d,\"deps\":%d,\"deps_refined\":%d,\"regions_proved\":%d,\"regions_fallback\":%d}"
           (esc t.program.p_name) t.stats.st_ops t.stats.st_launches t.stats.st_arrays
           t.stats.st_deps t.stats.st_deps_refined t.stats.st_regions_proved
           t.stats.st_regions_fallback);
      Buffer.add_string b ",\n  \"arrays\":[";
      List.iteri
        (fun i ai ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "\n   {\"name\":\"%s\",\"cells\":%d,\"input\":%b,\"output\":%b,\"first\":%s,\"last\":%s,\"first_read\":%s,\"first_write\":%s,\"last_read\":%s,\"last_write\":%s}"
               (esc ai.ai_name) ai.ai_cells ai.ai_input ai.ai_output
               (opt_int ai.ai_first) (opt_int ai.ai_last) (opt_int ai.ai_first_read)
               (opt_int ai.ai_first_write) (opt_int ai.ai_last_read)
               (opt_int ai.ai_last_write)))
        t.arrays;
      Buffer.add_string b "],\n  \"ops\":[";
      List.iteri
        (fun i op ->
          if i > 0 then Buffer.add_char b ',';
          let kind, name =
            match op.op_kind with
            | Launch_op l -> ("launch", l.l_kernel)
            | Copy_in a -> ("copy-in", a)
            | Copy_out a -> ("copy-out", a)
          in
          let side l =
            String.concat ","
              (List.map
                 (fun (a, r) ->
                   Printf.sprintf "{\"array\":\"%s\",\"region\":%s}" (esc a)
                     (match r with
                     | Whole -> "\"whole\""
                     | Region i -> Printf.sprintf "[%d,%d]" i.Absint.lo i.Absint.hi))
                 l)
          in
          Buffer.add_string b
            (Printf.sprintf
               "\n   {\"op\":%d,\"kind\":\"%s\",\"target\":\"%s\",\"reads\":[%s],\"writes\":[%s]}"
               op.op_index kind (esc name) (side op.op_reads) (side op.op_writes)))
        t.ops;
      Buffer.add_string b "],\n  \"deps\":[";
      List.iteri
        (fun i d ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\n   {\"src\":%d,\"dst\":%d,\"array\":\"%s\",\"kind\":\"%s\"}"
               d.dep_src d.dep_dst (esc d.dep_array) (dep_kind_name d.dep_kind)))
        t.deps;
      Buffer.add_string b "],\n  \"issues\":[";
      List.iteri
        (fun i is ->
          if i > 0 then Buffer.add_char b ',';
          let kind, array, op =
            match is with
            | Read_before_write { rb_array; rb_op } ->
                ("read-before-write", rb_array, rb_op)
            | Dead_store { ds_array; ds_op } -> ("dead-store", ds_array, ds_op)
          in
          Buffer.add_string b
            (Printf.sprintf "\n   {\"kind\":\"%s\",\"array\":\"%s\",\"op\":%d}" kind
               (esc array) op))
        t.issues;
      Buffer.add_string b "],\n  \"findings\":[";
      List.iteri
        (fun i (f : Lint.finding) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "\n   {\"kernel\":\"%s\",\"severity\":\"%s\",\"rule\":\"%s\",\"message\":\"%s\"}"
               (esc f.f_kernel)
               (Lint.severity_name f.f_severity)
               (esc f.f_rule) (esc f.f_message)))
        (lint t);
      Buffer.add_string b "]}")
    ts;
  let all = List.concat_map lint ts in
  Buffer.add_string b
    (Printf.sprintf "\n],\"warnings\":%d,\"infos\":%d}\n" (Lint.warnings all)
       (Lint.infos all));
  Buffer.contents b
