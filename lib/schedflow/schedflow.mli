(** Whole-schedule inter-kernel dataflow and liveness analyzer.

    Every other analysis in the repository is per-kernel; this one
    looks at the host schedule as a whole. For each host op (kernel
    launch or host<->device copy) it derives the set of device arrays
    read and written — at array granularity always, refined to a proved
    linearized element region whenever the abstract interpreter
    ({!Kft_absint.Absint}) proves every matching access and records an
    exact footprint. From the per-op access sets it computes:

    - def-use chains and liveness intervals per array (first/last
      read/write, schedule positions);
    - a schedule DDG: every RAW / WAR / WAW dependence between two host
      ops on the same array, with dependences {e refined away} when
      both end regions are proved and disjoint;
    - schedule-level issues: arrays read before any write that are not
      program inputs, and stores never observed by any later read or
      program output.

    Three clients: the [schedule] pass of {!Kft_verify.Verify.validate}
    (issues + end-to-end schedule-DDG preservation of transformed
    schedules), three [kft lint] rules ({!lint}), and liveness-driven
    arena reuse ({!arena_layout} feeding {!Kft_sim.Memory.create}).

    Input/output conventions: with explicit [Copy_to_device] /
    [Copy_to_host] ops, the copied arrays are the program's inputs /
    outputs; a schedule with no copy ops (all bundled apps) treats
    {e every} array as both input and output, so the issue and lint
    predicates stay conservative there. *)

type region =
  | Whole  (** the whole extent (no proof, or a fallback) *)
  | Region of Kft_absint.Absint.itv
      (** proved linearized cell interval touched by the op *)

type op_kind =
  | Launch_op of Kft_cuda.Ast.launch
  | Copy_in of string  (** [Copy_to_device]: whole-extent write *)
  | Copy_out of string  (** [Copy_to_host]: whole-extent read *)

type op = {
  op_index : int;  (** position in the host schedule *)
  op_kind : op_kind;
  op_launch : int option;  (** position among launches, for launch ops *)
  op_reads : (string * region) list;  (** host arrays read, name-sorted *)
  op_writes : (string * region) list;  (** host arrays written, name-sorted *)
}

type array_info = {
  ai_name : string;
  ai_cells : int;
  ai_input : bool;  (** copied in, or no copy ops in the schedule *)
  ai_output : bool;  (** copied out, or no copy ops in the schedule *)
  ai_first : int option;  (** first accessing op *)
  ai_last : int option;  (** last accessing op *)
  ai_first_read : int option;
  ai_first_write : int option;
  ai_last_read : int option;
  ai_last_write : int option;
}

type dep_kind = Raw | War | Waw

val dep_kind_name : dep_kind -> string
(** ["raw"] / ["war"] / ["waw"]. *)

type dep = {
  dep_src : int;  (** earlier op index *)
  dep_dst : int;  (** later op index *)
  dep_array : string;
  dep_kind : dep_kind;
}

type issue =
  | Read_before_write of { rb_array : string; rb_op : int }
      (** a non-input array is read before any schedule write *)
  | Dead_store of { ds_array : string; ds_op : int }
      (** the last write to a non-output array is never read back *)

val pp_issue : issue -> string

type stats = {
  st_ops : int;
  st_launches : int;
  st_arrays : int;
  st_deps : int;  (** dependences kept in {!field-deps} *)
  st_deps_refined : int;  (** dropped: both end regions proved disjoint *)
  st_regions_proved : int;  (** access-set entries with a proved region *)
  st_regions_fallback : int;  (** entries that fell back to [Whole] *)
}

type t = {
  program : Kft_cuda.Ast.program;
  ops : op list;  (** in schedule order *)
  arrays : array_info list;  (** name-sorted, one per declared array *)
  deps : dep list;  (** ordered by (src, dst, array, kind) *)
  issues : issue list;
  stats : stats;
}

val analyze : Kft_cuda.Ast.program -> t
(** Pure and deterministic; never raises on subset programs (a launch
    that does not resolve contributes an empty access set). *)

val live_interval : t -> string -> (int * int) option
(** [first, last] accessing op of one array; [None] if never accessed
    or not declared. *)

val launch_deps : t -> (int * int * string) list
(** The schedule DDG restricted to launches, as (earlier launch
    position, later launch position, array) triples, deduplicated and
    sorted — the obligation set that a transformed schedule must
    preserve. *)

val arena_layout : t -> Kft_sim.Memory.layout option
(** Liveness-driven overlay placement: arrays that are never read may
    share arena cells with arrays whose last access precedes their
    first. [None] when no sharing opportunity exists (the overlay would
    not be smaller than the packed arena). Only sound for runs whose
    final memory is discarded; every value any read observes is
    preserved, so simulation statistics are bit-identical. *)

(** {2 Lint rules}

    Three schedule-level rules rendered through the kft_absint lint
    pipeline (same finding type, total order and byte-stable JSON):

    - [dead-array] (warning): a non-output array never accessed, or
      written but never read;
    - [redundant-copy] (warning): a launch whose kernel only copies one
      array into another verbatim (proved element-identical by the
      abstract interpreter: identical index forms, equal footprints,
      every access proved);
    - [transient-global] (info): a non-input non-output array whose
      whole live range sits inside a single launch — a candidate for
      shared-memory or register staging after fusion. *)

val lint : t -> Kft_absint.Lint.finding list
(** Findings of the three schedule rules, normalized. *)

val lint_program : Kft_cuda.Ast.program -> Kft_absint.Lint.finding list
(** [lint (analyze p)]. *)

val lint_programs :
  ?jobs:int -> Kft_cuda.Ast.program list -> Kft_absint.Lint.finding list
(** Analyze several programs, optionally on [jobs] domains; the result
    is identical at any worker count. *)

(** {2 Reports} *)

val render_human : t -> string
(** Multi-line human dump: liveness table, dependences, issues,
    findings. *)

val render_json : t list -> string
(** The whole analysis as one JSON document:
    [{"tool":"kft-schedflow","version":1,"programs":[...],
    "warnings":N,"infos":N}]. Stable field order, no floats, LF line
    endings — byte-identical across runs and [--jobs] settings. *)
