open Kft_cuda.Ast
module C = Canonical

type options = {
  deep_nest_strategy : [ `Sequential | `Inner_shared ];
  branch_scheme : [ `Per_statement | `Hoisted ];
  tune_blocks : bool;
  eliminate_guards : bool;
      (* splice away generated guards the abstract interpreter proves
         always-true under the block domain (kft_absint); the manual
         scheme keeps them, mirroring hand-written code *)
}

let auto_options =
  { deep_nest_strategy = `Sequential; branch_scheme = `Per_statement; tune_blocks = true;
    eliminate_guards = true }

let manual_options =
  { deep_nest_strategy = `Inner_shared; branch_scheme = `Hoisted; tune_blocks = false;
    eliminate_guards = false }

type stage_kind = Reuse | Produced of int

type stage = {
  s_array : string;
  s_kind : stage_kind;
  s_radius : int;
  s_tile : string;
}

type plan = {
  p_members : C.member list;
  p_stages : stage list;
  p_klo : int;
  p_khi : int;
  p_has_kloop : bool;
  p_shared_bytes : int -> int -> int;
}

let radius_cap = 4

(* ------------------------------------------------------------------ *)
(* Small expression helpers                                            *)
(* ------------------------------------------------------------------ *)

(* [e_add e n]: e + n with the literal folded for readability *)
let e_add e n =
  match e with
  | Int_lit x -> Int_lit (x + n)
  | e when n = 0 -> e
  | e when n < 0 -> Binop (Sub, e, Int_lit (-n))
  | e -> Binop (Add, e, Int_lit n)

let e_and a b = Binop (And, a, b)

let conj = function
  | [] -> None
  | c :: rest -> Some (List.fold_left e_and c rest)

(* ------------------------------------------------------------------ *)
(* Offset predicates                                                   *)
(* ------------------------------------------------------------------ *)

let xy_radius offs =
  List.fold_left (fun acc (dx, dy, _) -> max acc (max (abs dx) (abs dy))) 0 offs

let all_dz0 offs = List.for_all (fun (_, _, dz) -> dz = 0) offs

let only_origin offs = List.for_all (fun o -> o = (0, 0, 0)) offs

let only_column offs = List.for_all (fun (dx, dy, _) -> dx = 0 && dy = 0) offs

let dz0_offsets offs = List.filter (fun (_, _, dz) -> dz = 0) offs

(* ------------------------------------------------------------------ *)
(* Feasibility checking + staging plan                                 *)
(* ------------------------------------------------------------------ *)

let touched_union members =
  let seen = Hashtbl.create 16 in
  List.concat_map C.touched_arrays members
  |> List.filter (fun a -> if Hashtbl.mem seen a then false else (Hashtbl.replace seen a (); true))

exception Multi_writer_consumer of string

let check_group (members : C.member list) =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* () =
    if List.exists (fun (m : C.member) -> let _, _, dz = m.m_domain in dz <> 1) members then
      err "a member uses a 3D-mapped launch domain"
    else Ok ()
  in
  let has_kloop = List.exists (fun (m : C.member) -> m.m_kloop <> None) members in
  let aligned (m : C.member) = (not has_kloop) || m.m_kloop <> None in
  let arrays = touched_union members in
  let reads_of_idx i a = C.reads_of (List.nth members i) a in
  let n = List.length members in
  let idxs = List.init n (fun i -> i) in
  let member i = List.nth members i in
  (* validate per-array rules and collect stage candidates *)
  let rec check_arrays acc_stages = function
    | [] -> Ok acc_stages
    | a :: rest ->
        let writers = List.filter (fun i -> C.writes_of (member i) a <> []) idxs in
        let readers = List.filter (fun i -> reads_of_idx i a <> []) idxs in
        let* () =
          (* a member reading and writing the same array must touch only
             its own cell (in-place updates with offsets are racy even in
             the original programs) *)
          let self = List.filter (fun i -> List.mem i writers) readers in
          if List.for_all (fun i -> only_origin (reads_of_idx i a)) self then Ok ()
          else err "member reads and writes %s with a stencil offset" a
        in
        let* () =
          (* RAW pairs *)
          List.fold_left
            (fun acc w ->
              let* () = acc in
              List.fold_left
                (fun acc r ->
                  let* () = acc in
                  if r <= w then Ok ()
                  else
                    let offs = reads_of_idx r a in
                    match (aligned (member w), aligned (member r)) with
                    | true, true ->
                        if not (only_origin (C.writes_of (member w) a)) then
                          err "producer %s writes %s away from its own cell"
                            (member w).C.m_name a
                        else if not (all_dz0 offs) then
                          err
                            "consumer %s reads %s produced in-group with a vertical offset"
                            (member r).C.m_name a
                        else if xy_radius offs > radius_cap then
                          err "consumer halo for %s exceeds the radius cap" a
                        else Ok ()
                    | false, _ ->
                        (* unaligned writer completes at the first plane *)
                        if only_column offs then Ok ()
                        else err "reader of %s crosses blocks over an unaligned writer" a
                    | true, false ->
                        err "unaligned member %s consumes %s from an in-group producer"
                          (member r).C.m_name a)
                (Ok ()) readers)
            (Ok ()) writers
        in
        let* () =
          (* WAR pairs *)
          List.fold_left
            (fun acc r ->
              let* () = acc in
              List.fold_left
                (fun acc w ->
                  let* () = acc in
                  if w <= r || List.mem r writers then Ok ()
                  else
                    let offs = reads_of_idx r a in
                    if aligned (member r) then
                      if only_origin offs then Ok ()
                      else err "reader %s of %s precedes an in-group writer with offsets"
                             (member r).C.m_name a
                    else if only_column offs then Ok ()
                    else err "unaligned reader %s of %s precedes an in-group writer"
                           (member r).C.m_name a)
                (Ok ()) writers)
            (Ok ()) readers
        in
        (* staging decision *)
        let aligned_writers = List.filter (fun i -> aligned (member i)) writers in
        let stage =
          match aligned_writers with
          | [ w ] ->
              let consumers = List.filter (fun r -> r > w && aligned (member r)) readers in
              if consumers = [] then None
              else Some { s_array = a; s_kind = Produced w; s_radius = 0; s_tile = "s_" ^ a }
          | _ :: _ :: _ ->
              (* multiple writers: no coherent tile can be produced. An
                 aligned consumer reading beyond its own cell would see
                 stale values across block boundaries, so such groups are
                 infeasible; origin-only consumers are thread-local and
                 safe without staging. *)
              let unsafe_consumer =
                List.exists
                  (fun r ->
                    aligned (member r)
                    && List.exists (fun w -> w < r && w <> r) aligned_writers
                    && not (only_origin (reads_of_idx r a)))
                  readers
              in
              if unsafe_consumer then
                raise (Multi_writer_consumer a)
              else None
          | [] ->
              if writers <> [] then None
              else
                let dz0_readers =
                  List.filter
                    (fun r -> aligned (member r) && dz0_offsets (reads_of_idx r a) <> [])
                    readers
                in
                if List.length dz0_readers >= 2 then
                  Some { s_array = a; s_kind = Reuse; s_radius = 0; s_tile = "s_" ^ a }
                else None
        in
        check_arrays (match stage with Some s -> s :: acc_stages | None -> acc_stages) rest
  in
  let* stages0 =
    match check_arrays [] arrays with
    | r -> r
    | exception Multi_writer_consumer a ->
        err "array %s has several in-group writers feeding a stencil consumer" a
  in
  let stages0 = List.rev stages0 in
  (* radius fixpoint: a tile must cover every consumer's stencil reach,
     and a consumer that itself recomputes over an extended tile pushes
     its own tile radius outward *)
  let rad : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace rad s.s_array 0) stages0;
  let producer_of = List.filter_map (fun s -> match s.s_kind with Produced w -> Some (s.s_array, w) | Reuse -> None) stages0 in
  let member_tile_radius i =
    List.fold_left
      (fun acc (a, w) -> if w = i then max acc (Hashtbl.find rad a) else acc)
      0 producer_of
  in
  let eligible_reader s r =
    match s.s_kind with
    | Reuse -> aligned (member r) && dz0_offsets (reads_of_idx r s.s_array) <> []
    | Produced w -> r > w && aligned (member r) && reads_of_idx r s.s_array <> []
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 16 do
    changed := false;
    incr iters;
    List.iter
      (fun s ->
        let req =
          List.fold_left
            (fun acc r ->
              if eligible_reader s r then
                max acc (xy_radius (dz0_offsets (reads_of_idx r s.s_array)) + member_tile_radius r)
              else acc)
            0 idxs
        in
        if req > Hashtbl.find rad s.s_array then begin
          Hashtbl.replace rad s.s_array req;
          changed := true
        end)
      stages0;
    (* unify radii of tiles produced by the same member *)
    List.iter
      (fun (a, w) ->
        let r = member_tile_radius w in
        if Hashtbl.find rad a < r then begin
          Hashtbl.replace rad a r;
          changed := true
        end)
      producer_of
  done;
  (* reuse tiles over the cap are simply dropped (readers stay on global
     memory); produced tiles over the cap make the group infeasible *)
  let rec finalize acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        let r = Hashtbl.find rad s.s_array in
        match s.s_kind with
        | Produced _ when r > radius_cap -> err "produced tile for %s needs radius %d" s.s_array r
        | Reuse when r > radius_cap -> finalize acc rest
        | _ -> finalize ({ s with s_radius = r } :: acc) rest)
  in
  let* stages = finalize [] stages0 in
  (* producer strictness: a member that recomputes over an extended tile
     reads its inputs at halo positions too, so the privacy arguments
     behind the WAR / unaligned-writer rules (reads confined to the
     thread's own cell or column) no longer hold for it *)
  let member_final_radius i =
    List.fold_left
      (fun acc s -> match s.s_kind with Produced w when w = i -> max acc s.s_radius | _ -> acc)
      0 stages
  in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        let writers = List.filter (fun i -> C.writes_of (member i) a <> []) idxs in
        let readers = List.filter (fun i -> reads_of_idx i a <> []) idxs in
        List.fold_left
          (fun acc r ->
            let* () = acc in
            if member_final_radius r = 0 then Ok ()
            else if List.mem r writers then
              err "producer %s re-reads %s which it also writes" (member r).C.m_name a
            else if
              List.exists
                (fun w -> r < w || (w < r && not (aligned (member w))))
                writers
            then
              err "producer %s reads %s at halo positions across an in-group writer"
                (member r).C.m_name a
            else if
              (* an earlier aligned writer is only safe when the producer's
                 halo reads are served from that writer's tile; if the
                 array is not staged (e.g. it has several in-group
                 writers), the recompute would read global cells that
                 another block's writer is updating concurrently — a data
                 race the static verifier ([Kft_verify]) detects in the
                 emitted kernel *)
              writers <> []
              && not
                   (List.exists
                      (fun s ->
                        s.s_array = a
                        && match s.s_kind with Produced w -> w < r | Reuse -> false)
                      stages)
            then
              err "producer %s reads unstaged %s written earlier in the group"
                (member r).C.m_name a
            else Ok ())
          (Ok ()) readers)
      (Ok ()) arrays
  in
  let klo, khi =
    List.fold_left
      (fun (lo, hi) (m : C.member) ->
        match m.m_kloop with Some (l, h) -> (min lo l, max hi h) | None -> (lo, hi))
      (max_int, min_int) members
  in
  let klo, khi = if has_kloop then (klo, khi) else (0, 0) in
  let shared_bytes bx by =
    List.fold_left
      (fun acc s -> acc + ((bx + (2 * s.s_radius)) * (by + (2 * s.s_radius)) * 8))
      0 stages
  in
  Ok
    {
      p_members = members;
      p_stages = stages;
      p_klo = klo;
      p_khi = khi;
      p_has_kloop = has_kloop;
      p_shared_bytes = shared_bytes;
    }

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let gi = Var C.gi_var
let gj = Var C.gj_var
let kv = Var C.kv_var

type genctx = {
  plan : plan;
  bx : int;
  by : int;
  group_domain : int * int * int;
}

let aligned_in plan (m : C.member) = (not plan.p_has_kloop) || m.m_kloop <> None

let member_cond g (m : C.member) ~rename_gi ~rename_gj =
  let v_gi = Var rename_gi and v_gj = Var rename_gj in
  let guard =
    match m.m_guard with
    | Some e ->
        let e = if rename_gi <> C.gi_var then map_expr (function Var v when v = C.gi_var -> v_gi | x -> x) e else e in
        let e = if rename_gj <> C.gj_var then map_expr (function Var v when v = C.gj_var -> v_gj | x -> x) e else e in
        [ e ]
    | None -> []
  in
  let dxm, dym, _ = m.m_domain and gdx, gdy, _ = g.group_domain in
  let dom =
    (if m.m_guard = None || dxm < gdx then [ Binop (Lt, v_gi, Int_lit dxm) ] else [])
    @ if m.m_guard = None || dym < gdy then [ Binop (Lt, v_gj, Int_lit dym) ] else []
  in
  let kb =
    if not g.plan.p_has_kloop then []
    else
      match m.m_kloop with
      | Some (lo, hi) ->
          (if lo > g.plan.p_klo then [ Binop (Ge, kv, Int_lit lo) ] else [])
          @ if hi < g.plan.p_khi then [ Binop (Lt, kv, Int_lit hi) ] else []
      | None -> [ Binop (Eq, kv, Int_lit g.plan.p_klo) ]
  in
  conj (guard @ dom @ kb)

(* rewrite a member body's staged reads into tile accesses.
   [tiles] maps array -> (tile name, base_x expr, base_y expr).
   [coord_gi]/[coord_gj] name the coordinate variables the body uses. *)
let rewrite_staged_reads ~tiles ~coord_gi ~coord_gj body =
  let int_vars body =
    fold_stmts
      (fun acc s ->
        match s with
        | Decl (Int, v, _) -> v :: acc
        | For l -> l.index :: acc
        | _ -> acc)
      [] body
  in
  let vars = coord_gi :: coord_gj :: C.kv_var :: int_vars body in
  let rewrite_index a idx =
    match List.assoc_opt a tiles with
    | None -> None
    | Some (tile, base_x, base_y, decl) -> (
        match C.affine_over ~vars idx with
        | None -> None
        | Some (coeffs, const) ->
            let nx, ny, nz =
              match decl.a_dims with
              | [ nx ] -> (nx, 1, 1)
              | [ nx; ny ] -> (nx, ny, 1)
              | [ nx; ny; nz ] -> (nx, ny, nz)
              | _ -> (1, 1, 1)
            in
            let sx = 1 and sy = nx and sz = nx * ny in
            let ok =
              List.for_all
                (fun (v, c) ->
                  (v = coord_gi && c = sx)
                  || (v = coord_gj && c = sy)
                  || (v = C.kv_var && c = sz))
                coeffs
            in
            let has v = List.mem_assoc v coeffs in
            if not (ok && has coord_gi && (ny = 1 || has coord_gj)) then None
            else begin
              (* recover the small stencil offsets via nearest decomposition *)
              let div_nearest a b =
                if b = 0 then 0
                else if a >= 0 then (a + (b / 2)) / b
                else -((-a + (b / 2)) / b)
              in
              let dz = if nz > 1 then div_nearest const sz else 0 in
              let r = const - (dz * sz) in
              let dy = if ny > 1 then div_nearest r sy else 0 in
              let dx = r - (dy * sy) in
              if dz <> 0 then None
              else Some (Index (tile, [ e_add base_y dy; e_add base_x dx ]))
            end)
  in
  map_exprs_in_stmts
    (fun e ->
      map_expr
        (function
          | Index (a, [ idx ]) as orig -> (
              match rewrite_index a idx with Some e' -> e' | None -> orig)
          | e -> e)
        e)
    body

let rewrite_staged_writes ~produced body =
  map_stmts
    (function
      | Assign (Lindex (a, [ _ ]), rhs) when List.mem_assoc a produced ->
          let tile, lx, ly = List.assoc a produced in
          Assign (Lindex (tile, [ Var ly; Var lx ]), rhs)
      | s -> s)
    body

(* tiles visible to member [i] for plain (own-cell) reads *)
let tiles_for_member g decls i =
  List.filter_map
    (fun s ->
      let visible =
        match s.s_kind with Reuse -> true | Produced w -> i > w
      in
      if not visible then None
      else
        let r = s.s_radius in
        Some
          ( s.s_array,
            ( s.s_tile,
              e_add (Var "tx") r,
              e_add (Var "ty") r,
              List.assoc s.s_array decls ) ))
    g.plan.p_stages

let array_decls members =
  List.concat_map (fun (m : C.member) -> m.m_arrays) members
  |> List.sort_uniq compare

(* cooperative load of a reuse tile, one plane per iteration.

   For [Produced] tiles the load is additionally restricted to cells
   where the producer's recompute guard does {e not} hold: cells inside
   the producer's domain are overwritten by the cooperative recompute
   before any consumer reads them, so preloading them would be a dead
   read — and, worse, a cross-block data race, because the adjacent
   block writes the very same global cells back while this block is
   still preloading its halo (caught by the static race detector of
   [Kft_verify]). Cells outside the producer's guard keep the original
   global data, matching the unfused semantics. *)
let reuse_load g decls s =
  let r = s.s_radius in
  let w = g.bx + (2 * r) and h = g.by + (2 * r) in
  let decl = List.assoc s.s_array decls in
  let nx, ny, nz =
    match decl.a_dims with
    | [ nx ] -> (nx, 1, 1)
    | [ nx; ny ] -> (nx, ny, 1)
    | [ nx; ny; nz ] -> (nx, ny, nz)
    | _ -> (1, 1, 1)
  in
  let c = "c__" ^ s.s_array in
  let lx = "lx__" ^ s.s_array and ly = "ly__" ^ s.s_array in
  let gx = "gx__" ^ s.s_array and gy = "gy__" ^ s.s_array in
  let guard =
    [
      Binop (Ge, Var gx, Int_lit 0);
      Binop (Lt, Var gx, Int_lit nx);
    ]
    @ (if ny > 1 then [ Binop (Ge, Var gy, Int_lit 0); Binop (Lt, Var gy, Int_lit ny) ] else [])
    @
    if g.plan.p_has_kloop && nz > 1 then
      [ Binop (Ge, kv, Int_lit 0); Binop (Lt, kv, Int_lit nz) ]
    else []
  in
  let z = if nz > 1 then Some (if g.plan.p_has_kloop then kv else Int_lit 0) else None in
  let src = C.linear_index decl ~x:(Var gx) ~y:(Var gy) ~z in
  let assign =
    Assign (Lindex (s.s_tile, [ Var ly; Var lx ]), Index (s.s_array, [ src ]))
  in
  let hit =
    match s.s_kind with
    | Reuse -> [ assign ]
    | Produced w ->
        let m = List.find (fun (m : C.member) -> m.m_index = w) g.plan.p_members in
        let pc =
          match member_cond g m ~rename_gi:gx ~rename_gj:gy with
          | Some pc -> pc
          | None ->
              (* a producer guard always materializes (domain bounds at
                 minimum); defend against a future relaxation *)
              Int_lit 1
        in
        [ If (pc, [], [ assign ]) ]
  in
  For
    {
      index = c;
      lo = Var "tid";
      hi = Int_lit (w * h);
      step = g.bx * g.by;
      body =
        [
          Decl (Int, lx, Some (Binop (Mod, Var c, Int_lit w)));
          Decl (Int, ly, Some (Binop (Div, Var c, Int_lit w)));
          Decl
            ( Int,
              gx,
              Some (Binop (Sub, Binop (Add, Binop (Mul, Builtin (Block_idx X), Int_lit g.bx), Var lx), Int_lit r)) );
          Decl
            ( Int,
              gy,
              Some (Binop (Sub, Binop (Add, Binop (Mul, Builtin (Block_idx Y), Int_lit g.by), Var ly), Int_lit r)) );
          If (Option.get (conj guard), hit, []);
        ];
    }

(* producer member emitted as a cooperative extended-tile recompute *)
let producer_block g decls (m : C.member) produced_stages =
  let i = m.m_index in
  let rw = List.fold_left (fun acc s -> max acc s.s_radius) 0 produced_stages in
  let w = g.bx + (2 * rw) and h = g.by + (2 * rw) in
  let sfx = Printf.sprintf "__p%d" (i + 1) in
  let c = "c" ^ sfx and lx = "lx" ^ sfx and ly = "ly" ^ sfx in
  let gxv = "gx" ^ sfx and gyv = "gy" ^ sfx in
  (* body with coordinates remapped to the tile sweep *)
  let body = rename_var ~old:C.gi_var ~fresh:gxv m.m_body in
  let body = rename_var ~old:C.gj_var ~fresh:gyv body in
  (* reads from earlier tiles, at tile coordinates *)
  let tiles =
    List.filter_map
      (fun s ->
        let visible = match s.s_kind with Reuse -> true | Produced w' -> i > w' || List.exists (fun ps -> ps.s_array = s.s_array) produced_stages in
        if not visible then None
        else
          Some
            ( s.s_array,
              ( s.s_tile,
                e_add (Var lx) (s.s_radius - rw),
                e_add (Var ly) (s.s_radius - rw),
                List.assoc s.s_array decls ) ))
      g.plan.p_stages
  in
  (* own produced arrays: writes -> tile; own reads of them are origin-only
     and must keep reading global (old values), so exclude them from the
     read-tile map *)
  let produced_names = List.map (fun s -> s.s_array) produced_stages in
  let read_tiles = List.filter (fun (a, _) -> not (List.mem a produced_names)) tiles in
  let body = rewrite_staged_reads ~tiles:read_tiles ~coord_gi:gxv ~coord_gj:gyv body in
  let body =
    rewrite_staged_writes
      ~produced:(List.map (fun s -> (s.s_array, (s.s_tile, lx, ly))) produced_stages)
      body
  in
  let cond =
    let base = member_cond g m ~rename_gi:gxv ~rename_gj:gyv in
    let nonneg = [ Binop (Ge, Var gxv, Int_lit 0); Binop (Ge, Var gyv, Int_lit 0) ] in
    conj (nonneg @ Option.to_list base)
  in
  let tile_loop =
    For
      {
        index = c;
        lo = Var "tid";
        hi = Int_lit (w * h);
        step = g.bx * g.by;
        body =
          [
            Decl (Int, lx, Some (Binop (Mod, Var c, Int_lit w)));
            Decl (Int, ly, Some (Binop (Div, Var c, Int_lit w)));
            Decl
              ( Int,
                gxv,
                Some (Binop (Sub, Binop (Add, Binop (Mul, Builtin (Block_idx X), Int_lit g.bx), Var lx), Int_lit rw)) );
            Decl
              ( Int,
                gyv,
                Some (Binop (Sub, Binop (Add, Binop (Mul, Builtin (Block_idx Y), Int_lit g.by), Var ly), Int_lit rw)) );
            If (Option.get cond, body, []);
          ];
      }
  in
  (* own-cell writeback to global memory *)
  let writebacks =
    List.map
      (fun s ->
        let decl = List.assoc s.s_array decls in
        let nz = match decl.a_dims with [ _; _; nz ] -> nz | _ -> 1 in
        let z =
          if nz > 1 then Some (if g.plan.p_has_kloop then kv else Int_lit 0) else None
        in
        let dst = C.linear_index decl ~x:gi ~y:gj ~z in
        Assign
          ( Lindex (s.s_array, [ dst ]),
            Index (s.s_tile, [ e_add (Var "ty") s.s_radius; e_add (Var "tx") s.s_radius ]) ))
      produced_stages
  in
  let wb_cond = member_cond g m ~rename_gi:C.gi_var ~rename_gj:C.gj_var in
  let wb =
    match wb_cond with
    | Some c -> [ If (c, writebacks, []) ]
    | None -> writebacks
  in
  [ tile_loop; Syncthreads ] @ wb

let build device options ~name ~block:(bx, by) plan =
  let shared_bytes = plan.p_shared_bytes bx by in
  if shared_bytes > device.Kft_device.Device.shared_mem_per_block then
    Error
      (Printf.sprintf "staging needs %d bytes of shared memory per block (limit %d)" shared_bytes
         device.Kft_device.Device.shared_mem_per_block)
  else begin
    let members = plan.p_members in
    let decls = array_decls members in
    let group_domain =
      List.fold_left
        (fun (dx, dy, dz) (m : C.member) ->
          let mx, my, mz = m.m_domain in
          (max dx mx, max dy my, max dz mz))
        (1, 1, 1) members
    in
    let g = { plan; bx; by; group_domain } in
    let staged = plan.p_stages <> [] in
    let head =
      [
        Decl (Int, "tx", Some (Builtin (Thread_idx X)));
        Decl (Int, "ty", Some (Builtin (Thread_idx Y)));
      ]
      @ (if staged then [ Decl (Int, "tid", Some (Binop (Add, Binop (Mul, Var "ty", Int_lit bx), Var "tx"))) ] else [])
      @ [
          Decl (Int, C.gi_var, Some (Binop (Add, Binop (Mul, Builtin (Block_idx X), Int_lit bx), Var "tx")));
          Decl (Int, C.gj_var, Some (Binop (Add, Binop (Mul, Builtin (Block_idx Y), Int_lit by), Var "ty")));
        ]
      @ List.map
          (fun s ->
            Shared_decl (Double, s.s_tile, [ by + (2 * s.s_radius); bx + (2 * s.s_radius) ]))
          plan.p_stages
    in
    let plane =
      (* Reuse tiles are preloaded with the array's current values (the
         staging load itself); Produced tiles are preloaded only outside
         the producer's guard, so those cells read as the original global
         data while guarded cells come exclusively from the cooperative
         recompute (see [reuse_load] for the race this avoids) *)
      let loads = List.map (reuse_load g decls) plan.p_stages in
      let loads = if loads <> [] then loads @ [ Syncthreads ] else [] in
      let member_stmts =
        List.concat_map
          (fun (m : C.member) ->
            let produced =
              List.filter
                (fun s -> match s.s_kind with Produced w -> w = m.m_index | Reuse -> false)
                plan.p_stages
            in
            if produced <> [] then producer_block g decls m produced
            else begin
              let tiles = if aligned_in plan m then tiles_for_member g decls m.m_index else [] in
              let body = rewrite_staged_reads ~tiles ~coord_gi:C.gi_var ~coord_gj:C.gj_var m.m_body in
              let cond = member_cond g m ~rename_gi:C.gi_var ~rename_gj:C.gj_var in
              match (cond, options.branch_scheme) with
              | None, _ -> body
              | Some c, `Hoisted -> [ If (c, body, []) ]
              | Some c, `Per_statement -> List.map (fun s -> If (c, [ s ], [])) body
            end)
          members
      in
      let trailing = if staged && plan.p_has_kloop then [ Syncthreads ] else [] in
      loads @ member_stmts @ trailing
    in
    let body =
      if plan.p_has_kloop then
        head
        @ [ For { index = C.kv_var; lo = Int_lit plan.p_klo; hi = Int_lit plan.p_khi; step = 1; body = plane } ]
      else head @ plane
    in
    let written = List.concat_map (fun (m : C.member) -> List.map fst m.m_writes) members in
    let params =
      List.map
        (fun (a, _) ->
          Array_param
            { name = a; elem_ty = Double; quals = (if List.mem a written then [] else [ Const ]) })
        decls
      @ List.concat_map
          (fun (m : C.member) ->
            List.map (fun (p, _) -> Scalar_param { name = p; ty = Double }) m.m_double_args)
          members
    in
    let args =
      List.map (fun (a, _) -> Arg_array a) decls
      @ List.concat_map
          (fun (m : C.member) -> List.map (fun (_, v) -> Arg_double v) m.m_double_args)
          members
    in
    let kernel = { k_name = name; k_params = params; k_body = body } in
    let launch =
      { l_kernel = name; l_domain = group_domain; l_block = (bx, by, 1); l_args = args }
    in
    (* proof-driven guard elimination: conditions implied by the block
       domain (e.g. gi < dx when the grid tiles dx exactly) are decided
       by the abstract interpreter and spliced out; the result is
       translation-validated downstream like any other fused kernel *)
    let kernel, eliminated =
      if options.eliminate_guards then
        Kft_absint.Absint.simplify_kernel ~block:launch.l_block
          ~grid:(grid_of_launch launch) ~int_params:[] kernel
      else (kernel, 0)
    in
    Ok (kernel, launch, eliminated)
  end
