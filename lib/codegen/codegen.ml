open Kft_cuda.Ast
module C = Canonical

type kernel_report = {
  new_kernel : string;
  members : string list;
  fusion_kind : [ `None | `Simple | `Complex ];
  staged_arrays : (string * int) list;
  shared_bytes : int;
  block : int * int * int;
  tuned : bool;
  occupancy_before : float;
  occupancy_after : float;
  notes : string list;
}

type result = {
  program : Kft_cuda.Ast.program;
  reports : kernel_report list;
}

let occupancy_of device ~block:(bx, by, bz) ~regs ~shared =
  (Kft_device.Occupancy.calculate device
     { block_threads = bx * by * bz; regs_per_thread = regs; shared_per_block = shared })
    .occupancy

let has_top_guard (k : kernel) =
  let rec go = function
    | Decl _ :: rest | Shared_decl _ :: rest -> go rest
    | If (_, _, []) :: _ -> true
    | _ -> false
  in
  go k.k_body

let tune_single device prog (l : launch) =
  let k = find_kernel prog l.l_kernel in
  let regs = Kft_analysis.Cost.estimate_registers k in
  let shared =
    fold_stmts
      (fun acc s ->
        match s with Shared_decl (_, _, dims) -> acc + (8 * List.fold_left ( * ) 1 dims) | _ -> acc)
      0 k.k_body
  in
  let before = occupancy_of device ~block:l.l_block ~regs ~shared in
  if not (has_top_guard k) then (l.l_block, before, before)
  else begin
    let dims, result =
      Kft_device.Occupancy.tune device ~regs_per_thread:regs
        ~shared_per_block:(fun _ -> shared)
        ~current:l.l_block
    in
    (dims, before, result.occupancy)
  end

(* tuning for a fused kernel: the staging footprint depends on the block
   shape, so occupancy is evaluated per candidate with the plan's
   footprint function *)
let tune_fused device (plan : Fusion.plan) ~regs ~default_block =
  let shared_of (bx, by, _) = plan.p_shared_bytes bx by in
  let before = occupancy_of device ~block:default_block ~regs ~shared:(shared_of default_block) in
  let dims, result =
    Kft_device.Occupancy.tune device ~regs_per_thread:regs ~shared_per_block:shared_of
      ~current:default_block
  in
  (dims, before, result.occupancy)

let default_options = Fusion.auto_options

let transform ?(options = default_options) device prog ~groups =
  let reports = ref [] in
  let emitted_kernels : (string, kernel) Hashtbl.t = Hashtbl.create 32 in
  let kernel_order = ref [] in
  let emit_kernel k =
    if not (Hashtbl.mem emitted_kernels k.k_name) then begin
      Hashtbl.replace emitted_kernels k.k_name k;
      kernel_order := k.k_name :: !kernel_order
    end
  in
  let fused_counter = ref 0 in
  let schedule = ref [] in
  let emit_launch l = schedule := Launch l :: !schedule in

  let emit_single ?(notes = []) (l : launch) =
    let k = find_kernel prog l.l_kernel in
    emit_kernel k;
    let block, occ_before, occ_after =
      if options.tune_blocks then tune_single device prog l else (l.l_block, 0.0, 0.0)
    in
    let block = if options.tune_blocks then block else l.l_block in
    let occ_before, occ_after =
      if options.tune_blocks then (occ_before, occ_after)
      else begin
        let o =
          occupancy_of device ~block:l.l_block
            ~regs:(Kft_analysis.Cost.estimate_registers k)
            ~shared:0
        in
        (o, o)
      end
    in
    emit_launch { l with l_block = block };
    reports :=
      {
        new_kernel = l.l_kernel;
        members = [ l.l_kernel ];
        fusion_kind = `None;
        staged_arrays = [];
        shared_bytes = 0;
        block;
        tuned = block <> l.l_block;
        occupancy_before = occ_before;
        occupancy_after = occ_after;
        notes;
      }
      :: !reports
  in

  let emit_group launches =
    match launches with
    | [] -> ()
    | [ l ] -> emit_single l
    | launches -> (
        let members =
          try
            Ok
              (List.mapi
                 (fun i l -> C.extract ~deep:options.deep_nest_strategy ~index:i prog l)
                 launches)
          with C.Not_canonical reason -> Error reason
        in
        match Result.bind members Fusion.check_group with
        | Error reason ->
            List.iter
              (fun l -> emit_single ~notes:[ "fusion fell back: " ^ reason ] l)
              launches
        | Ok plan -> (
            incr fused_counter;
            let name = Printf.sprintf "K_f%02d" !fused_counter in
            let default_block =
              let bx, by, _ = (List.hd launches).l_block in
              (bx, by, 1)
            in
            (* estimate registers from a build at the default block *)
            let build block =
              let bx, by, _ = block in
              Fusion.build device options ~name ~block:(bx, by) plan
            in
            match build default_block with
            | Error reason ->
                decr fused_counter;
                List.iter
                  (fun l -> emit_single ~notes:[ "fusion fell back: " ^ reason ] l)
                  launches
            | Ok (k0, _, _) -> (
                let regs = Kft_analysis.Cost.estimate_registers k0 in
                let block, occ_before, occ_after =
                  if options.tune_blocks then tune_fused device plan ~regs ~default_block
                  else
                    let bx, by, _ = default_block in
                    let o = occupancy_of device ~block:default_block ~regs ~shared:(plan.p_shared_bytes bx by) in
                    (default_block, o, o)
                in
                match build block with
                | Error reason ->
                    decr fused_counter;
                    List.iter
                      (fun l -> emit_single ~notes:[ "fusion fell back: " ^ reason ] l)
                      launches
                | Ok (kernel, launch, eliminated) ->
                    emit_kernel kernel;
                    emit_launch launch;
                    let bx, by, _ = block in
                    reports :=
                      {
                        new_kernel = name;
                        members = List.map (fun l -> l.l_kernel) launches;
                        fusion_kind =
                          (if List.exists (fun s -> s.Fusion.s_kind <> Fusion.Reuse) plan.p_stages
                           then `Complex
                           else `Simple);
                        staged_arrays =
                          List.map (fun s -> (s.Fusion.s_array, s.s_radius)) plan.p_stages;
                        shared_bytes = plan.p_shared_bytes bx by;
                        block;
                        tuned = block <> default_block;
                        occupancy_before = occ_before;
                        occupancy_after = occ_after;
                        notes =
                          (if eliminated > 0 then
                             [ Printf.sprintf "eliminated %d provably-true guard%s" eliminated
                                 (if eliminated = 1 then "" else "s") ]
                           else []);
                      }
                      :: !reports)))
  in
  List.iter emit_group groups;
  (* preserve non-launch host operations at the end (the simulator treats
     them as no-ops; real memcpys would need liveness-aware placement) *)
  let copies =
    List.filter (function Copy_to_device _ | Copy_to_host _ -> true | Launch _ -> false) prog.p_schedule
  in
  let kernels = List.rev_map (Hashtbl.find emitted_kernels) !kernel_order in
  {
    program =
      { prog with p_kernels = kernels; p_schedule = List.rev !schedule @ copies };
    reports = List.rev !reports;
  }
