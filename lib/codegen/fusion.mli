(** Fused-kernel construction (Sections 5.5.2 and 5.5.3).

    Given the canonicalized members of one fusion group, the builder
    produces a single kernel:

    - {b simple fusion} (no precedence among members): member bodies are
      aggregated under one vertical loop; arrays read by two or more
      members are staged into shared-memory tiles once per plane and the
      member statements are rewritten to read the tiles; loop bounds are
      aligned with guard conditionals.
    - {b complex fusion} (producer -> consumer precedence): on top of the
      above, a producer's output is computed cooperatively over an
      extended tile (temporal blocking with halo layers sized by the
      consumers' stencil radii), a barrier separates it from the
      consumers, and the producer's own cell is written back to global
      memory so downstream kernels outside the group still see it.

    [check_group] encodes the soundness rules for the GPU memory model
    (block-scoped shared memory, no inter-block coherence): cross-member
    reads with a vertical offset, or halo reads across a
    write-after-read hazard, make a group infeasible. The same predicate
    is exposed to the GGA so the search never proposes groups the
    generator cannot implement. *)

type options = {
  deep_nest_strategy : [ `Sequential | `Inner_shared ];
      (** [`Sequential] (automated mode) keeps deep loop nests opaque —
          fused but without reuse (the Figure 6 defect); [`Inner_shared]
          (the manual/guided fix) hoists the outer vertical loop *)
  branch_scheme : [ `Per_statement | `Hoisted ];
      (** [`Per_statement] (automated mode) guards every member statement
          separately, multiplying divergent branch evaluations (the
          Figure 7 defect); [`Hoisted] (manual fix) guards once *)
  tune_blocks : bool;
  eliminate_guards : bool;
      (** drop generated guards whose condition the abstract interpreter
          (kft_absint) proves implied by the block domain; the rewrite
          is validated like any other fused kernel *)
}

val auto_options : options
(** What the automated transformation generates. *)

val manual_options : options
(** What the expert hand-written fusion of [28] looks like. *)

type stage_kind = Reuse | Produced of int  (** producer member index *)

type stage = {
  s_array : string;
  s_kind : stage_kind;
  s_radius : int;  (** halo layers, per the max consumer stencil radius *)
  s_tile : string;  (** shared-memory tile name *)
}

type plan = {
  p_members : Canonical.member list;
  p_stages : stage list;
  p_klo : int;
  p_khi : int;
  p_has_kloop : bool;
  p_shared_bytes : int -> int -> int;  (** per-block staging bytes at block (bx, by) *)
}

val check_group : Canonical.member list -> (plan, string) result
(** Feasibility + staging plan. [Error] carries the human-readable
    reason reported to the programmer. *)

val radius_cap : int
(** Maximum supported halo radius (stencils wider than this make the
    thread-block halo "exceedingly large", Section 7). *)

val build :
  Kft_device.Device.t ->
  options ->
  name:string ->
  block:(int * int) ->
  plan ->
  (Kft_cuda.Ast.kernel * Kft_cuda.Ast.launch * int, string) result
(** Generate the fused kernel and its launch; the [int] counts guards
    statically eliminated under [eliminate_guards]. [Error] when the
    staging footprint exceeds the device's per-block shared memory at
    this block size. *)
