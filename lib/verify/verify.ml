open Kft_cuda.Ast
module Loc = Kft_cuda.Loc
module Pp = Kft_cuda.Pp
module Access = Kft_analysis.Access
module Ddg = Kft_ddg.Ddg
module Fusion = Kft_codegen.Fusion
module Canonical = Kft_codegen.Canonical
module Codegen = Kft_codegen.Codegen
module Schedflow = Kft_schedflow.Schedflow

type pass = Race | Barrier | Bounds | Translation | Schedule | Engine

let pass_name = function
  | Race -> "race"
  | Barrier -> "barrier"
  | Bounds -> "bounds"
  | Translation -> "translation"
  | Schedule -> "schedule"
  | Engine -> "engine"

type diagnostic = {
  d_kernel : string;
  d_pass : pass;
  d_loc : Loc.pos;
  d_stmt : string;
  d_array : string;  (* array the finding is about, "" when not array-specific *)
  d_message : string;
}

let pp_diagnostic d =
  let loc = if Loc.is_none d.d_loc then "" else Loc.pp d.d_loc ^ ":" in
  let stmt = if d.d_stmt = "" then "" else Printf.sprintf " -- %s" d.d_stmt in
  Printf.sprintf "%s:%s[%s] %s%s" d.d_kernel loc (pass_name d.d_pass) d.d_message stmt

type stats = {
  launches_checked : int;
  blocks_sampled : int;
  threads_walked : int;
  events : int;
  bounds_proved : int;  (* launches whose every access absint proved in bounds *)
  bounds_fallback : int;  (* launches that needed the sampled bounds walk *)
  sched_deps_checked : int;  (* source schedule dependences checked end-to-end *)
  sched_fallback : int;  (* source launches the member mapping could not place *)
}

type report = { diagnostics : diagnostic list; stats : stats; complete : bool }

let empty_stats =
  {
    launches_checked = 0;
    blocks_sampled = 0;
    threads_walked = 0;
    events = 0;
    bounds_proved = 0;
    bounds_fallback = 0;
    sched_deps_checked = 0;
    sched_fallback = 0;
  }
let empty_report = { diagnostics = []; stats = empty_stats; complete = true }

(* per-pass finding counts in a fixed pass order (trace counters and the
   @trace sweep consume this; the fixed order keeps it byte-stable) *)
let pass_counts r =
  List.map
    (fun p ->
      ( pass_name p,
        List.length (List.filter (fun (d : diagnostic) -> d.d_pass = p) r.diagnostics) ))
    [ Race; Barrier; Bounds; Translation; Schedule; Engine ]

(* Diagnostics are kept in a canonical order — (kernel, line, col, pass,
   message, statement, array) — so that merged or parallel-produced
   reports render identically regardless of scheduling ([--jobs] sweeps
   must be byte-stable). [sort_uniq] also deduplicates across merged
   reports; the array name participates so two different-array findings
   at the same kernel:line:col never collapse into one. *)
let compare_diagnostics (a : diagnostic) (b : diagnostic) =
  let c = compare a.d_kernel b.d_kernel in
  if c <> 0 then c
  else
    let c = compare a.d_loc.line b.d_loc.line in
    if c <> 0 then c
    else
      let c = compare a.d_loc.col b.d_loc.col in
      if c <> 0 then c
      else
        let c = compare (pass_name a.d_pass) (pass_name b.d_pass) in
        if c <> 0 then c
        else
          let c = compare a.d_message b.d_message in
          if c <> 0 then c
          else
            let c = compare a.d_stmt b.d_stmt in
            if c <> 0 then c else compare a.d_array b.d_array

let normalize_diagnostics ds = List.sort_uniq compare_diagnostics ds

let merge a b =
  {
    diagnostics = normalize_diagnostics (a.diagnostics @ b.diagnostics);
    stats =
      {
        launches_checked = a.stats.launches_checked + b.stats.launches_checked;
        blocks_sampled = a.stats.blocks_sampled + b.stats.blocks_sampled;
        threads_walked = a.stats.threads_walked + b.stats.threads_walked;
        events = a.stats.events + b.stats.events;
        bounds_proved = a.stats.bounds_proved + b.stats.bounds_proved;
        bounds_fallback = a.stats.bounds_fallback + b.stats.bounds_fallback;
        sched_deps_checked = a.stats.sched_deps_checked + b.stats.sched_deps_checked;
        sched_fallback = a.stats.sched_fallback + b.stats.sched_fallback;
      };
    complete = a.complete && b.complete;
  }

let is_clean r = r.diagnostics = []
let default_budget = 10_000_000

(* ------------------------------------------------------------------ *)
(* Diagnostic collection                                               *)
(* ------------------------------------------------------------------ *)

type collector = {
  seen : (string, unit) Hashtbl.t;
  mutable out : diagnostic list;  (* reversed *)
  mutable events : int;
  budget : int;
  mutable complete : bool;
  mutable launches : int;
  mutable blocks : int;
  mutable threads : int;
  mutable bproved : int;
  mutable bfallback : int;
  mutable sdeps : int;
  mutable sfallback : int;
}

let new_collector budget =
  {
    seen = Hashtbl.create 64;
    out = [];
    events = 0;
    budget;
    complete = true;
    launches = 0;
    blocks = 0;
    threads = 0;
    bproved = 0;
    bfallback = 0;
    sdeps = 0;
    sfallback = 0;
  }

(* One-line statement rendering is quoted in diagnostics and in the
   access bookkeeping; the walker may reach the same physical statement
   millions of times, so the rendering is memoized on physical identity
   (same bucket/equality discipline as [Loc.Tbl]). *)
module Stmt_memo = Hashtbl.Make (struct
  type t = stmt

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let stmt_memo : string Stmt_memo.t = Stmt_memo.create 512

let stmt_line s =
  match Stmt_memo.find_opt stmt_memo s with
  | Some text -> text
  | None ->
      let text = Pp.stmt ~indent:0 s in
      let text =
        match String.index_opt text '\n' with Some i -> String.sub text 0 i | None -> text
      in
      let text = String.trim text in
      let text = if String.length text > 72 then String.sub text 0 69 ^ "..." else text in
      Stmt_memo.replace stmt_memo s text;
      text

let emit col ~pass ~kernel ~loc ~stmt ?(array = "") ~key fmt =
  Printf.ksprintf
    (fun msg ->
      (* the array participates in the dedupe key: two different-array
         findings at the same kernel:loc must both survive *)
      let k =
        Printf.sprintf "%s|%s|%s|%s|%s" (pass_name pass) kernel (Loc.pp loc) array key
      in
      if not (Hashtbl.mem col.seen k) then begin
        Hashtbl.replace col.seen k ();
        col.out <-
          {
            d_kernel = kernel;
            d_pass = pass;
            d_loc = loc;
            d_stmt = stmt;
            d_array = array;
            d_message = msg;
          }
          :: col.out
      end)
    fmt

let report_of col =
  {
    diagnostics = normalize_diagnostics (List.rev col.out);
    stats =
      {
        launches_checked = col.launches;
        blocks_sampled = col.blocks;
        threads_walked = col.threads;
        events = col.events;
        bounds_proved = col.bproved;
        bounds_fallback = col.bfallback;
        sched_deps_checked = col.sdeps;
        sched_fallback = col.sfallback;
      };
    complete = col.complete;
  }

(* ------------------------------------------------------------------ *)
(* Pass 2: barrier divergence (static taint analysis)                  *)
(* ------------------------------------------------------------------ *)

let contains_barrier stmts = fold_stmts (fun acc s -> acc || s = Syncthreads) false stmts
let contains_return stmts = fold_stmts (fun acc s -> acc || s = Return) false stmts

module Sset = Set.Make (String)

(* An expression is thread-dependent when its value can differ between
   threads of one block: it mentions threadIdx directly or a scalar
   tainted by it. blockIdx/blockDim/gridDim are uniform. A load is
   treated as uniform unless a subscript taints it (the subscripts are
   sub-expressions of the fold, so that case is already covered). *)
let tainted_expr tainted e =
  fold_expr
    (fun acc e ->
      acc
      || match e with Builtin (Thread_idx _) -> true | Var v -> Sset.mem v tainted | _ -> false)
    false e

let assigned_scalars stmts =
  fold_stmts
    (fun acc s ->
      match s with Assign (Lvar v, _) -> v :: acc | Decl (_, v, _) -> v :: acc | _ -> acc)
    [] stmts

(* Returns [true] when the kernel has (statically detectable) divergent
   barriers — the race pass is then skipped because barrier intervals
   are not well-defined. *)
let barrier_pass col kname body =
  let divergent = ref false in
  let has_barrier = contains_barrier body in
  let rec go tainted under loc0 stmts =
    List.fold_left
      (fun tainted s ->
        let loc =
          let l = Loc.find s in
          if Loc.is_none l then loc0 else l
        in
        match s with
        | Decl (_, v, Some e) when tainted_expr tainted e -> Sset.add v tainted
        | Decl _ -> tainted
        | Assign (Lvar v, e) when tainted_expr tainted e -> Sset.add v tainted
        | Assign _ -> tainted
        | If (c, t, e) ->
            let div = tainted_expr tainted c in
            if div && not under then begin
              if contains_barrier t || contains_barrier e then begin
                divergent := true;
                emit col ~pass:Barrier ~kernel:kname ~loc ~stmt:(stmt_line s) ~key:"div-if"
                  "__syncthreads() under thread-dependent conditional"
              end;
              if has_barrier && (contains_return t || contains_return e) then begin
                divergent := true;
                emit col ~pass:Barrier ~kernel:kname ~loc ~stmt:(stmt_line s) ~key:"div-return"
                  "thread-dependent early return in a kernel that uses __syncthreads()"
              end
            end;
            let t1 = go tainted (under || div) loc t in
            let t2 = go tainted (under || div) loc e in
            (* scalars assigned under a divergent condition become
               thread-dependent themselves *)
            let extra =
              if div then Sset.of_list (assigned_scalars t @ assigned_scalars e)
              else Sset.empty
            in
            Sset.union extra (Sset.union t1 t2)
        | For l ->
            let div = tainted_expr tainted l.lo || tainted_expr tainted l.hi in
            if div && (not under) && contains_barrier l.body then begin
              divergent := true;
              emit col ~pass:Barrier ~kernel:kname ~loc ~stmt:(stmt_line s) ~key:"div-for"
                "__syncthreads() inside loop with thread-dependent trip count"
            end;
            let inner = if div then Sset.add l.index tainted else tainted in
            go inner (under || div) loc l.body
        | Shared_decl _ | Syncthreads | Return -> tainted)
      tainted stmts
  in
  ignore (go Sset.empty false Loc.none body);
  !divergent

(* ------------------------------------------------------------------ *)
(* Passes 1 & 3: per-thread concrete walker                            *)
(* ------------------------------------------------------------------ *)

exception Returned
exception Budget

(* shared-access bookkeeping: per (array, barrier interval, linear cell) *)
type sacc = { s_tid : int; s_loc : Loc.pos; s_stmt : string }
type sentry = { mutable sw : sacc list; mutable sr : sacc list }

(* global-access bookkeeping: per (host array, linear cell) *)
type gacc = {
  g_bid : int;
  g_tid : int;
  g_iv : int;
  g_loc : Loc.pos;
  g_stmt : string;
  g_site : stmt option;  (* physical identity of the accessing statement *)
}

type gentry = { mutable gw : gacc list; mutable gr : gacc list }

type ctx = {
  col : collector;
  kname : string;
  block : int * int * int;
  grid : int * int * int;
  int_params : (string * int) list;
  host_of : (string * string) list;  (* array param -> host array *)
  global_cells : (string * int) list;  (* array param -> extent in cells *)
  shared : (string * int list) list;  (* shared array -> declared dims *)
  shared_tab : (string * int * int, sentry) Hashtbl.t;  (* reset per block *)
  global_tab : (string * int, gentry) Hashtbl.t;  (* per launch *)
  check_bounds : bool;
      (* false when kft_absint proved every access of this launch in
         bounds: the sampled walk then only feeds race analysis *)
}

type tstate = {
  mutable scalars : (string, int option) Hashtbl.t;
  mutable interval : int;
  mutable cloc : Loc.pos;
  mutable cstmt : stmt option;
  tid : int;
  bid : int;
  thread : int * int * int;
  block_idx : int * int * int;
}

(* Rendered lazily: most accesses never surface in a diagnostic, so the
   string is only built when emitting or remembering an access. *)
let stmt_of st = match st.cstmt with Some s -> stmt_line s | None -> ""

let same_site a b = match (a, b) with Some x, Some y -> x == y | _ -> false

(* classification of a subscript via the affine thread probe — quoted in
   race diagnostics so the reader sees the per-thread access pattern *)
let classify_subscripts ctx idxs =
  let one e =
    match Access.affine_threads ~bindings:ctx.int_params ~loops:[] e with
    | Some (coeffs, c0) ->
        let terms =
          List.map (fun (v, c) -> Printf.sprintf "%d*%s" c v) coeffs
          @ (if c0 <> 0 || coeffs = [] then [ string_of_int c0 ] else [])
        in
        "affine " ^ String.concat "+" terms
    | None -> "non-affine"
  in
  String.concat ", " (List.map one idxs)

let rec eval ctx st e =
  match e with
  | Int_lit i -> Some i
  | Double_lit _ -> None
  | Var v -> ( match Hashtbl.find_opt st.scalars v with Some x -> x | None -> None)
  | Builtin b -> (
      let tx, ty, tz = st.thread
      and bix, biy, biz = st.block_idx
      and bx, by, bz = ctx.block
      and gx, gy, gz = ctx.grid in
      match b with
      | Thread_idx X -> Some tx
      | Thread_idx Y -> Some ty
      | Thread_idx Z -> Some tz
      | Block_idx X -> Some bix
      | Block_idx Y -> Some biy
      | Block_idx Z -> Some biz
      | Block_dim X -> Some bx
      | Block_dim Y -> Some by
      | Block_dim Z -> Some bz
      | Grid_dim X -> Some gx
      | Grid_dim Y -> Some gy
      | Grid_dim Z -> Some gz)
  | Binop (And, a, b) -> (
      match eval ctx st a with
      | Some 0 -> Some 0 (* short circuit: b is not evaluated, so no access *)
      | Some _ -> (
          match eval ctx st b with Some vb -> Some (if vb <> 0 then 1 else 0) | None -> None)
      | None -> None)
  | Binop (Or, a, b) -> (
      match eval ctx st a with
      | Some v when v <> 0 -> Some 1
      | Some _ -> (
          match eval ctx st b with Some vb -> Some (if vb <> 0 then 1 else 0) | None -> None)
      | None -> None)
  | Binop (op, a, b) -> (
      let va = eval ctx st a and vb = eval ctx st b in
      match (va, vb) with
      | Some va, Some vb -> (
          match op with
          | Add -> Some (va + vb)
          | Sub -> Some (va - vb)
          | Mul -> Some (va * vb)
          | Div -> if vb = 0 then None else Some (va / vb)
          | Mod -> if vb = 0 then None else Some (va mod vb)
          | Lt -> Some (if va < vb then 1 else 0)
          | Le -> Some (if va <= vb then 1 else 0)
          | Gt -> Some (if va > vb then 1 else 0)
          | Ge -> Some (if va >= vb then 1 else 0)
          | Eq -> Some (if va = vb then 1 else 0)
          | Ne -> Some (if va <> vb then 1 else 0)
          | And | Or -> None (* handled above *))
      | _ -> None)
  | Unop (Neg, a) -> Option.map (fun v -> -v) (eval ctx st a)
  | Unop (Not, a) -> Option.map (fun v -> if v = 0 then 1 else 0) (eval ctx st a)
  | Ternary (c, a, b) -> (
      match eval ctx st c with
      | Some 0 -> eval ctx st b
      | Some _ -> eval ctx st a
      | None ->
          (* over-approximate: record accesses of both arms *)
          ignore (eval ctx st a);
          ignore (eval ctx st b);
          None)
  | Call ("min", [ a; b ]) -> (
      match (eval ctx st a, eval ctx st b) with
      | Some x, Some y -> Some (min x y)
      | _ -> None)
  | Call ("max", [ a; b ]) -> (
      match (eval ctx st a, eval ctx st b) with
      | Some x, Some y -> Some (max x y)
      | _ -> None)
  | Call ("abs", [ a ]) -> Option.map abs (eval ctx st a)
  | Call (_, args) ->
      List.iter (fun a -> ignore (eval ctx st a)) args;
      None
  | Index (a, idxs) ->
      record_access ctx st ~write:false a idxs;
      None

and record_access ctx st ~write a idxs =
  let loc = st.cloc in
  match List.assoc_opt a ctx.shared with
  | Some dims ->
      if List.length idxs <> List.length dims then () (* Check.kernel reports the rank error *)
      else begin
        let vals = List.map (eval ctx st) idxs in
        if List.exists (fun v -> v = None) vals then
          emit ctx.col ~pass:Engine ~kernel:ctx.kname ~loc ~stmt:(stmt_of st)
            ~key:("ssub|" ^ a)
            "subscript of shared %s is not statically evaluable; race/bounds analysis is incomplete for it"
            a
        else begin
          let ivals = List.map Option.get vals in
          let in_bounds = ref true in
          List.iteri
            (fun i (v, d) ->
              if v < 0 || v >= d then begin
                in_bounds := false;
                if ctx.check_bounds then
                  emit ctx.col ~pass:Bounds ~kernel:ctx.kname ~loc ~stmt:(stmt_of st)
                    ~key:(Printf.sprintf "sb|%s|%d" a i)
                    "subscript %d of shared %s out of range: %d not in [0,%d)" i a v d
              end)
            (List.combine ivals dims);
          if !in_bounds then
            let lin = List.fold_left2 (fun acc v d -> (acc * d) + v) 0 ivals dims in
            shared_conflicts ctx st ~write ~loc a idxs lin
        end
      end
  | None -> (
      match List.assoc_opt a ctx.global_cells with
      | None -> () (* unknown array: Check.kernel reports it *)
      | Some cells -> (
          match idxs with
          | [ idx ] -> (
              match eval ctx st idx with
              | None ->
                  emit ctx.col ~pass:Engine ~kernel:ctx.kname ~loc ~stmt:(stmt_of st)
                    ~key:("gsub|" ^ a)
                    "index of global %s is not statically evaluable; race/bounds analysis is incomplete for it"
                    a
              | Some v ->
                  let host =
                    match List.assoc_opt a ctx.host_of with Some h -> h | None -> a
                  in
                  if v < 0 || v >= cells then begin
                    if ctx.check_bounds then
                      emit ctx.col ~pass:Bounds ~kernel:ctx.kname ~loc ~stmt:(stmt_of st)
                        ~key:(Printf.sprintf "gb|%s|%s" a (if write then "w" else "r"))
                        "out-of-bounds %s of %s: index %d outside extent of %d cells (halo not guarded?)"
                        (if write then "write" else "read")
                        a v cells
                  end
                  else global_conflicts ctx st ~write ~loc host v)
          | _ -> () (* rank error: Check.kernel reports it *)))

and shared_conflicts ctx st ~write ~loc a idxs lin =
  let key = (a, st.interval, lin) in
  let entry =
    match Hashtbl.find_opt ctx.shared_tab key with
    | Some e -> e
    | None ->
        let e = { sw = []; sr = [] } in
        Hashtbl.replace ctx.shared_tab key e;
        e
  in
  let report kind (other : sacc) =
    emit ctx.col ~pass:Race ~kernel:ctx.kname ~loc ~stmt:(stmt_of st)
      ~key:(Printf.sprintf "%s|%s|%s|%s" kind a (Loc.pp other.s_loc) other.s_stmt)
      "%s race on shared %s: threads %d and %d of one block touch the same cell (index %d) \
       between the same barriers; other access%s: %s [subscripts: %s]"
      (if kind = "ww" then "write-write" else "read-write")
      a st.tid other.s_tid lin
      (if Loc.is_none other.s_loc then "" else " at " ^ Loc.pp other.s_loc)
      other.s_stmt (classify_subscripts ctx idxs)
  in
  if write then begin
    (match List.find_opt (fun w -> w.s_tid <> st.tid) entry.sw with
    | Some w -> report "ww" w
    | None -> ());
    (match List.find_opt (fun r -> r.s_tid <> st.tid) entry.sr with
    | Some r -> report "rw" r
    | None -> ());
    if (not (List.exists (fun w -> w.s_tid = st.tid) entry.sw)) && List.length entry.sw < 4
    then entry.sw <- { s_tid = st.tid; s_loc = loc; s_stmt = stmt_of st } :: entry.sw
  end
  else begin
    (match List.find_opt (fun w -> w.s_tid <> st.tid) entry.sw with
    | Some w -> report "rw" w
    | None -> ());
    if (not (List.exists (fun r -> r.s_tid = st.tid) entry.sr)) && List.length entry.sr < 4
    then entry.sr <- { s_tid = st.tid; s_loc = loc; s_stmt = stmt_of st } :: entry.sr
  end

and global_conflicts ctx st ~write ~loc host lin =
  let key = (host, lin) in
  let entry =
    match Hashtbl.find_opt ctx.global_tab key with
    | Some e -> e
    | None ->
        let e = { gw = []; gr = [] } in
        Hashtbl.replace ctx.global_tab key e;
        e
  in
  let distinct (o : gacc) = o.g_bid <> st.bid || o.g_tid <> st.tid in
  (* a barrier orders accesses of the same block in different intervals;
     nothing orders accesses of different blocks within one launch *)
  let unordered (o : gacc) = o.g_bid <> st.bid || o.g_iv = st.interval in
  let report kind (other : gacc) =
    emit ctx.col ~pass:Race ~kernel:ctx.kname ~loc ~stmt:(stmt_of st)
      ~key:(Printf.sprintf "%s|%s|%s|%s" kind host (Loc.pp other.g_loc) other.g_stmt)
      "%s race on global %s: %s threads access the same cell (index %d) with no ordering \
       barrier; other access%s: %s"
      (if kind = "ww" then "write-write" else "read-write")
      host
      (if other.g_bid <> st.bid then "different blocks'" else "two")
      lin
      (if Loc.is_none other.g_loc then "" else " at " ^ Loc.pp other.g_loc)
      other.g_stmt
  in
  let remember l mk cap =
    if
      (not
         (List.exists
            (fun (o : gacc) -> o.g_bid = st.bid && o.g_tid = st.tid && same_site o.g_site st.cstmt)
            l))
      && List.length l < cap
    then
      mk
        {
          g_bid = st.bid;
          g_tid = st.tid;
          g_iv = st.interval;
          g_loc = loc;
          g_stmt = stmt_of st;
          g_site = st.cstmt;
        }
  in
  if write then begin
    (* cooperative recompute in fused producers re-executes the same
       statement in several blocks' halos, duplicating an idempotent
       write: same-site write-write pairs are deliberately not races *)
    (match
       List.find_opt (fun w -> distinct w && unordered w && not (same_site w.g_site st.cstmt)) entry.gw
     with
    | Some w -> report "ww" w
    | None -> ());
    (match List.find_opt (fun r -> distinct r && unordered r) entry.gr with
    | Some r -> report "rw" r
    | None -> ());
    remember entry.gw (fun x -> entry.gw <- x :: entry.gw) 6
  end
  else begin
    (match List.find_opt (fun w -> distinct w && unordered w) entry.gw with
    | Some w -> report "rw" w
    | None -> ());
    remember entry.gr (fun x -> entry.gr <- x :: entry.gr) 6
  end

let rec exec ctx st stmts =
  List.iter
    (fun s ->
      ctx.col.events <- ctx.col.events + 1;
      if ctx.col.events > ctx.col.budget then raise Budget;
      let saved_loc = st.cloc and saved_stmt = st.cstmt in
      let l = Loc.find s in
      if not (Loc.is_none l) then st.cloc <- l;
      st.cstmt <- Some s;
      (match s with
      | Decl (_, v, init) ->
          let value = match init with Some e -> eval ctx st e | None -> None in
          Hashtbl.replace st.scalars v value
      | Shared_decl _ -> ()
      | Assign (Lvar v, e) -> Hashtbl.replace st.scalars v (eval ctx st e)
      | Assign (Lindex (a, idxs), e) ->
          ignore (eval ctx st e);
          record_access ctx st ~write:true a idxs
      | If (c, t, els) -> (
          match eval ctx st c with
          | Some 0 -> exec ctx st els
          | Some _ -> exec ctx st t
          | None ->
              if contains_barrier t || contains_barrier els then begin
                (* pass 2 proved the condition uniform, but we cannot
                   resolve it — taking one branch would desynchronize the
                   interval counter, so flag and follow the then-branch *)
                emit ctx.col ~pass:Engine ~kernel:ctx.kname ~loc:st.cloc ~stmt:(stmt_line s)
                  ~key:"if-barrier"
                  "conditional guarding __syncthreads() is not statically evaluable";
                exec ctx st t
              end
              else begin
                let snapshot = Hashtbl.copy st.scalars in
                exec ctx st t;
                let after_t = st.scalars in
                st.scalars <- snapshot;
                exec ctx st els;
                (* merge: agreeing bindings survive, the rest go unknown *)
                let merged = Hashtbl.create (Hashtbl.length after_t) in
                Hashtbl.iter
                  (fun k v ->
                    match Hashtbl.find_opt after_t k with
                    | Some v' when v' = v -> Hashtbl.replace merged k v
                    | Some _ -> Hashtbl.replace merged k None
                    | None -> Hashtbl.replace merged k None)
                  st.scalars;
                Hashtbl.iter
                  (fun k v ->
                    if not (Hashtbl.mem merged k) then
                      Hashtbl.replace merged k (if Hashtbl.mem st.scalars k then None else v))
                  after_t;
                st.scalars <- merged
              end)
      | For l -> (
          let lo = eval ctx st l.lo and hi = eval ctx st l.hi in
          let saved = Hashtbl.find_opt st.scalars l.index in
          let restore () =
            match saved with
            | Some v -> Hashtbl.replace st.scalars l.index v
            | None -> Hashtbl.remove st.scalars l.index
          in
          match (lo, hi) with
          | Some lo, Some hi ->
              let i = ref lo in
              while !i < hi do
                Hashtbl.replace st.scalars l.index (Some !i);
                exec ctx st l.body;
                i := !i + l.step
              done;
              restore ()
          | _ ->
              if contains_barrier l.body then
                emit ctx.col ~pass:Engine ~kernel:ctx.kname ~loc:st.cloc ~stmt:(stmt_line s)
                  ~key:"for-barrier"
                  "bounds of loop containing __syncthreads() are not statically evaluable";
              Hashtbl.replace st.scalars l.index None;
              exec ctx st l.body;
              restore ())
      | Syncthreads -> st.interval <- st.interval + 1
      | Return ->
          st.cloc <- saved_loc;
          st.cstmt <- saved_stmt;
          raise Returned);
      st.cloc <- saved_loc;
      st.cstmt <- saved_stmt)
    stmts

(* ------------------------------------------------------------------ *)
(* Launch driver                                                       *)
(* ------------------------------------------------------------------ *)

(* corner blocks plus the first interior neighbours, where halo overlap
   between adjacent blocks materializes; capped at 8 blocks *)
let sample_blocks (gx, gy, gz) =
  let axis n = List.sort_uniq compare (List.filter (fun v -> v >= 0 && v < n) [ 0; 1; n - 1 ]) in
  let out = ref [] in
  List.iter
    (fun z ->
      List.iter (fun y -> List.iter (fun x -> out := (x, y, z) :: !out) (axis gx)) (axis gy))
    (axis gz);
  let all = List.rev !out in
  let rec take n = function [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r in
  take 8 all

let verify_launch_into col prog (l : launch) =
  match find_kernel prog l.l_kernel with
  | exception Not_found -> () (* Check.program reports it *)
  | k ->
      col.launches <- col.launches + 1;
      let bound = try bind_args k l.l_args with Invalid_argument _ -> [] in
      let int_params =
        List.filter_map (function name, Arg_int v -> Some (name, v) | _ -> None) bound
      in
      let host_of =
        List.filter_map (function name, Arg_array a -> Some (name, a) | _ -> None) bound
      in
      let global_cells =
        List.filter_map
          (fun (p, a) ->
            match find_array prog a with
            | d -> Some (p, array_cells d)
            | exception Not_found -> None)
          host_of
      in
      let shared =
        fold_stmts
          (fun acc s -> match s with Shared_decl (_, n, dims) -> (n, dims) :: acc | _ -> acc)
          [] k.k_body
      in
      (* sound bounds pass: abstract interpretation over the launch
         domain.  When it proves every access in bounds the sampled walk
         below stops double-checking subscripts (race analysis only);
         any access it cannot prove falls back to the sampled bounds
         checks.  Proved out-of-bounds accesses are reported here with
         the same dedupe keys the walker would use, so the two passes
         never double-report one defect. *)
      let absint =
        Kft_absint.Absint.analyze_kernel ~block:l.l_block ~grid:(grid_of_launch l)
          ~int_params ~global_cells k
      in
      let bounds_proved = absint.Kft_absint.Absint.res_all_proved in
      if bounds_proved then col.bproved <- col.bproved + 1
      else col.bfallback <- col.bfallback + 1;
      List.iter
        (fun (a : Kft_absint.Absint.access) ->
          match (a.acc_status, a.acc_space) with
          | Kft_absint.Absint.Oob, Kft_absint.Absint.Global ->
              emit col ~pass:Bounds ~kernel:k.k_name ~loc:a.acc_loc ~stmt:""
                ~key:(Printf.sprintf "gb|%s|%s" a.acc_array (if a.acc_write then "w" else "r"))
                "out-of-bounds %s of %s: proved index range %s entirely outside extent of %d                  cells"
                (if a.acc_write then "write" else "read")
                a.acc_array
                (Kft_absint.Absint.pp_itv a.acc_range)
                a.acc_extent
          | _ -> ())
        absint.Kft_absint.Absint.res_accesses;
      let divergent = barrier_pass col k.k_name k.k_body in
      if divergent then
        emit col ~pass:Engine ~kernel:k.k_name ~loc:Loc.none ~stmt:"" ~key:"skip-races"
          "race analysis skipped: kernel has statically divergent barriers"
      else begin
        let grid = grid_of_launch l in
        let bx, by, bz = l.l_block in
        let gx, gy, _ = grid in
        let ctx =
          {
            col;
            kname = k.k_name;
            block = l.l_block;
            grid;
            int_params;
            host_of;
            global_cells;
            shared;
            shared_tab = Hashtbl.create 1024;
            global_tab = Hashtbl.create 4096;
            check_bounds = not bounds_proved;
          }
        in
        try
          List.iter
            (fun (bix, biy, biz) ->
              col.blocks <- col.blocks + 1;
              Hashtbl.reset ctx.shared_tab;
              let bid = ((biz * gy) + biy) * gx + bix in
              for tz = 0 to bz - 1 do
                for ty = 0 to by - 1 do
                  for tx = 0 to bx - 1 do
                    col.threads <- col.threads + 1;
                    let scalars = Hashtbl.create 32 in
                    List.iter (fun (p, v) -> Hashtbl.replace scalars p (Some v)) int_params;
                    let st =
                      {
                        scalars;
                        interval = 0;
                        cloc = Loc.none;
                        cstmt = None;
                        tid = ((tz * by) + ty) * bx + tx;
                        bid;
                        thread = (tx, ty, tz);
                        block_idx = (bix, biy, biz);
                      }
                    in
                    try exec ctx st k.k_body with Returned -> ()
                  done
                done
              done)
            (sample_blocks grid)
        with Budget ->
          col.complete <- false;
          emit col ~pass:Engine ~kernel:k.k_name ~loc:Loc.none ~stmt:"" ~key:"budget"
            "verification event budget exhausted; analysis incomplete"
      end

let verify_launch ?(budget = default_budget) prog l =
  let col = new_collector budget in
  verify_launch_into col prog l;
  report_of col

let verify_program ?(budget = default_budget) prog =
  let col = new_collector budget in
  List.iter
    (fun op ->
      match op with
      | Launch l when col.complete -> verify_launch_into col prog l
      | _ -> ())
    prog.p_schedule;
  report_of col

(* ------------------------------------------------------------------ *)
(* Pass 4: translation validation                                      *)
(* ------------------------------------------------------------------ *)

let validate ?(budget = default_budget) ?(options = Fusion.auto_options) ~source
    (res : Codegen.result) =
  let col = new_collector budget in
  (* passes 1-3 over everything the generator emitted *)
  List.iter
    (fun op ->
      match op with
      | Launch l when col.complete -> verify_launch_into col res.program l
      | _ -> ())
    res.program.p_schedule;
  (* member-order dependences + legality re-derivation for fused kernels *)
  let graphs = Ddg.build source in
  let launch_of name =
    List.find_map
      (function Launch l when l.l_kernel = name -> Some l | _ -> None)
      source.p_schedule
  in
  List.iter
    (fun (rep : Codegen.kernel_report) ->
      let fused = rep.fusion_kind <> `None && List.length rep.members >= 2 in
      if fused then begin
        let members = Array.of_list rep.members in
        let n = Array.length members in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if Ddg.oeg_precedes graphs members.(j) members.(i) then
              emit col ~pass:Translation ~kernel:rep.new_kernel ~loc:Loc.none ~stmt:""
                ~key:(Printf.sprintf "order|%s|%s" members.(i) members.(j))
                "fused member order violates the source DDG: %s must execute before %s"
                members.(j) members.(i)
          done
        done;
        (* re-derive group legality from scratch *)
        match
          List.mapi
            (fun i name ->
              match launch_of name with
              | None -> raise Not_found
              | Some l ->
                  Canonical.extract ~deep:options.deep_nest_strategy ~index:i source l)
            rep.members
        with
        | ms -> (
            match Fusion.check_group ms with
            | Ok _ -> ()
            | Error e ->
                emit col ~pass:Translation ~kernel:rep.new_kernel ~loc:Loc.none ~stmt:""
                  ~key:"legality" "legality re-check of the fused group failed: %s" e)
        | exception Canonical.Not_canonical r ->
            emit col ~pass:Translation ~kernel:rep.new_kernel ~loc:Loc.none ~stmt:""
              ~key:"canon" "a fused member is no longer canonical on re-extraction: %s" r
        | exception Not_found ->
            emit col ~pass:Translation ~kernel:rep.new_kernel ~loc:Loc.none ~stmt:""
              ~key:"launch" "a fused member has no launch in the source schedule"
      end)
    res.reports;
  (* schedule pass: whole-schedule dataflow issues on the transformed
     schedule, then end-to-end preservation of the source schedule DDG
     (the per-group member-order check above only sees pairs inside one
     fused kernel; this check covers every source dependence) *)
  let sf_out = Schedflow.analyze res.program in
  let out_ops = Array.of_list sf_out.Schedflow.ops in
  let op_kernel i =
    match out_ops.(i).Schedflow.op_kind with
    | Schedflow.Launch_op l -> l.l_kernel
    | _ -> ""
  in
  List.iter
    (fun issue ->
      match issue with
      | Schedflow.Read_before_write { rb_array; rb_op } ->
          emit col ~pass:Schedule ~kernel:(op_kernel rb_op) ~loc:Loc.none ~stmt:""
            ~array:rb_array
            ~key:(Printf.sprintf "rbw|%d" rb_op)
            "array %s is read at schedule op %d before any write" rb_array rb_op
      | Schedflow.Dead_store { ds_array; ds_op } ->
          emit col ~pass:Schedule ~kernel:(op_kernel ds_op) ~loc:Loc.none ~stmt:""
            ~array:ds_array
            ~key:(Printf.sprintf "dead|%d" ds_op)
            "the write to array %s at schedule op %d is never read back" ds_array ds_op)
    sf_out.Schedflow.issues;
  let deps = Schedflow.launch_deps (Schedflow.analyze source) in
  (* transformed position of each source launch: reports are emitted in
     transformed schedule order and list their source members by kernel
     name, so per-kernel FIFO queues resolve re-launches in order *)
  let queues : (string, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun ti (rep : Codegen.kernel_report) ->
      List.iter
        (fun m ->
          let q =
            match Hashtbl.find_opt queues m with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace queues m q;
                q
          in
          Queue.add ti q)
        rep.members)
    res.reports;
  let src_launches =
    List.filter_map (function Launch l -> Some l | _ -> None) source.p_schedule
    |> Array.of_list
  in
  let pos =
    Array.map
      (fun (l : launch) ->
        match Hashtbl.find_opt queues l.l_kernel with
        | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
        | _ -> None)
      src_launches
  in
  let unplaced =
    Array.fold_left (fun n p -> if p = None then n + 1 else n) 0 pos
  in
  let leftover =
    Hashtbl.fold (fun _ q n -> n + Queue.length q) queues 0
  in
  col.sdeps <- col.sdeps + List.length deps;
  if unplaced > 0 || leftover > 0 then begin
    col.sfallback <- col.sfallback + unplaced + leftover;
    emit col ~pass:Schedule ~kernel:"" ~loc:Loc.none ~stmt:"" ~key:"coverage"
      "schedule DDG validation incomplete: %d source launch%s unplaced, %d transformed member%s unmatched"
      unplaced
      (if unplaced = 1 then "" else "es")
      leftover
      (if leftover = 1 then "" else "s")
  end;
  List.iter
    (fun (i, j, a) ->
      match (pos.(i), pos.(j)) with
      | Some pi, Some pj when pi > pj ->
          emit col ~pass:Schedule ~kernel:src_launches.(j).l_kernel ~loc:Loc.none
            ~stmt:"" ~array:a
            ~key:(Printf.sprintf "ddg|%d|%d" i j)
            "transformed schedule reorders a source dependence on %s: %s (launch %d) \
             must precede %s (launch %d)"
            a
            src_launches.(i).l_kernel i src_launches.(j).l_kernel j
      | _ -> ())
    deps;
  report_of col
