(** Static race / barrier / bounds verifier with translation validation
    ("kft_verify").

    The transformation pipeline's soundness story used to rest on the
    informal legality rules of [Fusion.check_group] plus dynamic checks
    in the simulator: a race or a divergent barrier in a {e generated}
    fused kernel was only caught if a test input happened to trip it.
    This module proves the absence of those defects statically, per
    launch, with four cooperating passes:

    {ol
    {- {b Shared-memory race detection} — a may-happen-in-parallel
       analysis. Each kernel body is segmented at [__syncthreads()]
       barriers (sound because pass 2 first proves every barrier is
       uniform); per-thread index expressions of shared-array accesses
       are evaluated exactly for every thread of a sampled set of
       blocks (the affine probe of [Analysis.Access.affine_threads]
       classifies the subscripts; the concrete walker decides overlap,
       which also covers the non-affine cooperative-load subscripts
       [c % w] / [c / w] the code generator emits). Two accesses to the
       same cell by distinct threads inside one barrier interval with at
       least one write is a race.}
    {- {b Barrier divergence} — statically proves no barrier sits under
       a thread-dependent conditional or inside a loop whose trip count
       depends on [threadIdx] (a taint analysis from [threadIdx] through
       scalar assignments; the simulator only catches this dynamically).}
    {- {b Bounds / halo checking} — every global access's linearized
       index is checked against the bound array's extent for every
       walked thread, and shared subscripts against the declared tile
       shape, so an out-of-bounds halo read is reported with the exact
       offending index.}
    {- {b Translation validation} — passes 1–3 run over every kernel
       [Codegen]/[Fusion] emit, and fused kernels are additionally
       checked to preserve the member-order dependences recorded in the
       source program's DDG/OEG, with the group's legality re-derived
       through [Fusion.check_group]. A failed validation rejects the
       group (the framework re-emits its members unfused), mirroring
       {e and} cross-checking the forward legality rules.}
    {- {b Schedule validation} — the whole-schedule dataflow analysis
       of [Kft_schedflow.Schedflow] runs over the transformed schedule
       (flagging non-input arrays read before any write and stores
       never read back) and every RAW / WAR / WAW dependence of the
       source schedule DDG is checked to hold end-to-end in the
       transformed schedule, complementing the per-group member-order
       check with inter-kernel coverage.}}

    Sampling: blocks are enumerated at the grid corners plus the first
    interior neighbours (where halo overlap between adjacent blocks
    materializes); threads are enumerated exhaustively within each
    sampled block. An event budget bounds the walk; exhausting it marks
    the report incomplete rather than wrong. *)

type pass = Race | Barrier | Bounds | Translation | Schedule | Engine

val pass_name : pass -> string

type diagnostic = {
  d_kernel : string;  (** kernel the defect was found in *)
  d_pass : pass;
  d_loc : Kft_cuda.Loc.pos;
      (** source position of the offending statement when the kernel was
          parsed from text; {!Kft_cuda.Loc.none} for synthesized ASTs *)
  d_stmt : string;  (** one-line rendering of the offending statement *)
  d_array : string;
      (** array the finding is about, [""] when not array-specific. Part
          of the dedupe/order key, so two different-array findings at
          the same kernel:line:col both survive {!merge}. *)
  d_message : string;
}

val pp_diagnostic : diagnostic -> string
(** [kernel:line:col:[pass] message -- statement], matching the uniform
    [where:what] shape of [Cuda.Check.pp_error]. *)

type stats = {
  launches_checked : int;
  blocks_sampled : int;
  threads_walked : int;
  events : int;  (** statements executed by the per-thread walker *)
  bounds_proved : int;
      (** launches whose every access the kft_absint bounds pass proved
          in bounds (no sampling needed for subscripts) *)
  bounds_fallback : int;
      (** launches with at least one access the abstract domain could
          not decide: the sampled bounds walk remains authoritative *)
  sched_deps_checked : int;
      (** source schedule dependences checked end-to-end by {!validate} *)
  sched_fallback : int;
      (** source launches (or transformed members) the schedule mapping
          could not place — 0 means full schedule-DDG coverage *)
}

type report = {
  diagnostics : diagnostic list;
  stats : stats;
  complete : bool;  (** [false] when the event budget was exhausted *)
}

val empty_report : report

val pass_counts : report -> (string * int) list
(** Finding count per pass, always all six passes in declaration order
    — the deterministic per-pass counters the trace layer records. *)

val merge : report -> report -> report

val is_clean : report -> bool
(** No diagnostics at all (engine notes included: an advisory the engine
    could not resolve statically is not a clean bill). *)

val default_budget : int

val verify_launch :
  ?budget:int -> Kft_cuda.Ast.program -> Kft_cuda.Ast.launch -> report
(** Passes 1–3 over one launch of the program's schedule. *)

val verify_program : ?budget:int -> Kft_cuda.Ast.program -> report
(** Passes 1–3 over every launch of the schedule. *)

val validate :
  ?budget:int ->
  ?options:Kft_codegen.Fusion.options ->
  source:Kft_cuda.Ast.program ->
  Kft_codegen.Codegen.result ->
  report
(** Translation validation (passes 4–5) of a code-generation result
    against the [source] program it was derived from (post-fission):
    verifies every emitted kernel with passes 1–3, re-checks each fused
    group's legality through [Fusion.check_group] on freshly extracted
    canonical members, rejects fused kernels whose member order
    contradicts the source OEG, and validates the whole transformed
    schedule against the source schedule DDG (pass [schedule]: issue
    checks plus end-to-end dependence preservation, with
    [sched_deps_checked] / [sched_fallback] recorded in the stats).
    Diagnostics carry the {e fused} kernel's name. *)
