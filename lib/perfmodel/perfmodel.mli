(** The codeless performance projection used as the GGA objective
    function (Section 2, building on [28]).

    "Codeless" means the model never inspects kernel code: it works from
    the measured performance metadata and the statically extracted
    operations metadata only, which keeps objective evaluation cheap
    enough for hundreds of thousands of GA evaluations.

    For a candidate fusion group the model projects the group's traffic
    after reuse: the first member to touch an array pays its full
    traffic; later readers of the same array are served from on-chip
    staging and pay only the halo reload overhead. The projected group
    time is the memory-bound roofline over the reduced traffic, plus one
    kernel-launch overhead instead of one per member. The objective of a
    whole solution is its projected GFLOPS — total FLOPs over total
    projected time — matching the paper's "float value of a projected
    performance bound in GFLOPS". *)

type array_info = {
  host : string;
  reads : int;
  writes : int;
  radius : int * int * int;
  traffic_share : float;  (** this array's share of the kernel's measured traffic *)
}

type unit_model = {
  unit_name : string;  (** invocation key (original kernel or fission part) *)
  flops : float;
  bytes : float;
  runtime_us : float;
  arrays : array_info list;
  block : int * int * int;
  domain : int * int * int;
  nest_depth : int;
  fusable : bool;  (** false for irregular kernels *)
}

val of_metadata : Kft_metadata.Metadata.t -> string -> unit_model
(** Build the model of one kernel from gathered metadata. Raises
    [Not_found] when the kernel has no entries. *)

type group_eval = {
  projected_time_us : float;
  traffic_bytes : float;  (** after reuse *)
  raw_bytes : float;  (** before reuse *)
  group_flops : float;
  shared_bytes_needed : int;  (** staging footprint per thread block *)
  shared_ok : bool;  (** footprint fits the device's per-block shared memory *)
  saved_launches : int;
}

val halo_fraction : block:(int * int * int) -> radius:(int * int * int) -> float
(** Extra fraction of a tile loaded as halo: ((bx+2rx)(by+2ry) - bx·by) / bx·by. *)

val eval_group : Kft_device.Device.t -> unit_model list -> group_eval

val shared_bytes_for_group :
  block:(int * int * int) -> unit_model list -> int
(** Per-block staging bytes: one 2D tile (block + halo) per array touched
    by two or more members. *)

val objective : Kft_device.Device.t -> unit_model list list -> float
(** Projected GFLOPS of a whole solution (a partition of the target
    kernels into groups). This is the default objective; the GGA accepts
    any function of the same shape (Section 3.2.4's pluggable objective). *)

val objective_traffic : Kft_device.Device.t -> unit_model list list -> float
(** Alternative objective (the paper lets the programmer plug in his own
    black-box objective and select it in the parameter file): maximize
    the inverse of projected traffic + launch overheads. *)

val nested_loop_reuse_discount : float
(** Members with loop-nest depth >= 2 realize only this fraction of the
    projected reuse (the auto-codegen inefficiency of Figure 6 — kept in
    the model so projections stay honest about the generated code). *)

val warp_size : int
(** Lanes per warp on the modeled device class (32 for Kepler). *)

val divergence_penalty : taken_fraction:float -> float
(** Modeled execution-cost factor of a thread-dependent guard: when a
    warp's lanes disagree the hardware serializes the two sides, so a
    branch taken by a fraction f of the threads costs up to
    [2 - |2f - 1|] times a uniform branch (1.0 at f = 0 or 1, 2.0 at
    f = 0.5). Advisory: used by [kft lint] to rank divergent guards, not
    by {!objective}. *)

val coalescing_amplification : stride:int -> float
(** Modeled transaction amplification of a global access whose
    lowest-dimension (threadIdx.x) stride is [stride] elements: a warp
    touching consecutive cells coalesces into one transaction
    (factor 1); a strided warp needs up to [min |stride| warp_size]
    transactions. Advisory, for [kft lint]. *)

val bank_conflict_ways : stride:int -> int
(** Modeled shared-memory bank-conflict degree of a per-thread stride:
    [gcd stride warp_size] simultaneous lanes hit the same bank (1 = no
    conflict). Advisory, for [kft lint]. *)
