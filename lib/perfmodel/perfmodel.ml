module M = Kft_metadata.Metadata

type array_info = {
  host : string;
  reads : int;
  writes : int;
  radius : int * int * int;
  traffic_share : float;
}

type unit_model = {
  unit_name : string;
  flops : float;
  bytes : float;
  runtime_us : float;
  arrays : array_info list;
  block : int * int * int;
  domain : int * int * int;
  nest_depth : int;
  fusable : bool;
}

let of_metadata (meta : M.t) kernel =
  let perf = M.find_perf meta kernel in
  let ops = M.find_ops meta kernel in
  let total_accesses =
    List.fold_left (fun acc (a : M.array_op) -> acc + a.reads + a.writes) 0 ops.arrays
  in
  let arrays =
    List.map
      (fun (a : M.array_op) ->
        {
          host = a.array;
          reads = a.reads;
          writes = a.writes;
          radius = a.radius;
          traffic_share =
            (if total_accesses = 0 then 0.0
             else float_of_int (a.reads + a.writes) /. float_of_int total_accesses);
        })
      ops.arrays
  in
  {
    unit_name = kernel;
    flops = perf.flops;
    bytes = perf.bytes;
    runtime_us = perf.runtime_us;
    arrays;
    block = ops.block;
    domain = ops.domain;
    nest_depth = ops.nest_depth;
    fusable = ops.irregular = None;
  }

type group_eval = {
  projected_time_us : float;
  traffic_bytes : float;
  raw_bytes : float;
  group_flops : float;
  shared_bytes_needed : int;
  shared_ok : bool;
  saved_launches : int;
}

let halo_fraction ~block:(bx, by, _) ~radius:(rx, ry, _) =
  let tile = float_of_int (bx * by) in
  let padded = float_of_int ((bx + (2 * rx)) * (by + (2 * ry))) in
  (padded -. tile) /. tile

let nested_loop_reuse_discount = 0.25

(* arrays touched by >= 2 members, with the max read radius over members *)
let reused_arrays models =
  let tbl : (string, int * (int * int * int)) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun a ->
          let cnt, (rx, ry, rz) =
            Option.value ~default:(0, (0, 0, 0)) (Hashtbl.find_opt tbl a.host)
          in
          let ax, ay, az = a.radius in
          Hashtbl.replace tbl a.host (cnt + 1, (max rx ax, max ry ay, max rz az)))
        m.arrays)
    models;
  Hashtbl.fold (fun host (cnt, r) acc -> if cnt >= 2 then (host, r) :: acc else acc) tbl []
  |> List.sort compare

let shared_bytes_for_group ~block:(bx, by, _) models =
  List.fold_left
    (fun acc (_, (rx, ry, _)) -> acc + ((bx + (2 * rx)) * (by + (2 * ry)) * 8))
    0
    (reused_arrays models)

let eval_group (d : Kft_device.Device.t) models =
  match models with
  | [] -> invalid_arg "Perfmodel.eval_group: empty group"
  | first :: _ ->
      let block = first.block in
      let raw_bytes = List.fold_left (fun acc m -> acc +. m.bytes) 0.0 models in
      let group_flops = List.fold_left (fun acc m -> acc +. m.flops) 0.0 models in
      let reused = reused_arrays models in
      (* savings: every member after the first to touch a reused array is
         served on-chip for that array's read traffic *)
      let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let savings = ref 0.0 in
      List.iter
        (fun m ->
          let discount = if m.nest_depth >= 2 then nested_loop_reuse_discount else 1.0 in
          List.iter
            (fun a ->
              match List.assoc_opt a.host reused with
              | None -> ()
              | Some radius ->
                  if Hashtbl.mem seen a.host then begin
                    let read_frac =
                      if a.reads + a.writes = 0 then 0.0
                      else float_of_int a.reads /. float_of_int (a.reads + a.writes)
                    in
                    let reuse_eff =
                      Float.max 0.0 (1.0 -. halo_fraction ~block ~radius)
                    in
                    savings :=
                      !savings +. (m.bytes *. a.traffic_share *. read_frac *. reuse_eff *. discount)
                  end
                  else Hashtbl.replace seen a.host ())
            m.arrays)
        models;
      let traffic_bytes = Float.max 0.0 (raw_bytes -. !savings) in
      let shared_bytes_needed = shared_bytes_for_group ~block models in
      (* the staging footprint bounds occupancy, and DRAM bandwidth only
         saturates with enough warps in flight -- without this term the
         search would chase mega-groups whose tiles evict all parallelism *)
      let bx, by, bz = block in
      let occ =
        (Kft_device.Occupancy.calculate d
           {
             block_threads = bx * by * bz;
             regs_per_thread = 32;
             shared_per_block = shared_bytes_needed;
           })
          .occupancy
      in
      let bw_factor = Float.max 0.05 (Float.min 1.0 (occ /. 0.45)) in
      let mem_time = traffic_bytes /. (d.peak_bandwidth_gbs *. 1e3 *. bw_factor) in
      let comp_time = group_flops /. (d.peak_gflops_double *. 1e3) in
      let projected_time_us = Float.max mem_time comp_time +. d.kernel_launch_overhead_us in
      {
        projected_time_us;
        traffic_bytes;
        raw_bytes;
        group_flops;
        shared_bytes_needed;
        shared_ok = shared_bytes_needed <= d.shared_mem_per_block;
        saved_launches = List.length models - 1;
      }

let objective d groups =
  let time, flops =
    List.fold_left
      (fun (t, f) g ->
        let e = eval_group d g in
        (t +. e.projected_time_us, f +. e.group_flops))
      (0.0, 0.0) groups
  in
  if time <= 0.0 then 0.0 else flops /. (time *. 1e3)

(* An alternative black-box objective (Section 3.2.4 lets the programmer
   swap the objective function): minimize projected global traffic plus
   launch overheads, expressed as a score to maximize. Useful when the
   device's compute roof is irrelevant and the search should chase pure
   reuse. *)
let objective_traffic d groups =
  let cost =
    List.fold_left
      (fun acc g ->
        let e = eval_group d g in
        acc +. (e.traffic_bytes /. 1e6) +. (d.Kft_device.Device.kernel_launch_overhead_us /. 10.0))
      0.0 groups
  in
  if cost <= 0.0 then 0.0 else 1000.0 /. cost

(* ------------------------------------------------------------------ *)
(* Advisory hardware-cost hints for the lint surface (kft lint).       *)
(* Pure functions of the access pattern; deliberately not folded into  *)
(* [objective] so search results and goldens are unaffected.           *)
(* ------------------------------------------------------------------ *)

let warp_size = 32

let divergence_penalty ~taken_fraction =
  let f = Float.min 1.0 (Float.max 0.0 taken_fraction) in
  2.0 -. Float.abs ((2.0 *. f) -. 1.0)

let coalescing_amplification ~stride =
  float_of_int (min (abs stride) warp_size)
  |> Float.max 1.0

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let bank_conflict_ways ~stride =
  let s = abs stride in
  if s = 0 then warp_size (* all lanes hit one cell: broadcast reads are
                             fine, but writes serialize; report the way
                             count and let the caller decide *)
  else gcd warp_size s
