(* kft-transform: command-line driver for the end-to-end transformation
   (paper Section 3.2). The command terms live in Kft_cli.Cli so the
   test suite can evaluate them in-process. *)

let () = exit (Kft_cli.Cli.transform_main ())
