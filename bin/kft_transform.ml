(* kft-transform: command-line driver for the end-to-end transformation.

   Mirrors the paper's workflow control (Section 3.2): the programmer
   runs the framework over a program, dumps the intermediate artifacts of
   every stage (metadata text files, DDG/OEG DOT graphs, the GGA
   parameter file), and emits the new CUDA code. The bundled evaluation
   applications are available via --app. *)

open Cmdliner

let list_apps () =
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      Printf.printf "%-13s %3d kernels, %3d arrays  -- %s\n" a.app_name
        (List.length a.program.p_kernels)
        (List.length a.program.p_arrays)
        a.description)
    (Kft_apps.Apps.all ())

let run app_name device_name generations population jobs no_memo no_sim_cache no_fission
    no_tuning expert_codegen filter verify seed out_dir emit_cuda quiet list =
  if list then begin
    list_apps ();
    `Ok ()
  end
  else
    match Kft_apps.Apps.by_name app_name with
    | None ->
        `Error (false, Printf.sprintf "unknown application %S (try --list)" app_name)
    | Some app -> (
        match Kft_device.Device.by_name device_name with
        | None -> `Error (false, Printf.sprintf "unknown device %S" device_name)
        | Some base_device ->
            let device =
              (* the bundled apps are scaled down; scale the launch
                 overhead with them (see DESIGN.md) *)
              { base_device with kernel_launch_overhead_us = 0.3 }
            in
            let codegen_options =
              let base =
                if expert_codegen then Kft_codegen.Fusion.manual_options
                else Kft_codegen.Fusion.auto_options
              in
              { base with tune_blocks = not no_tuning }
            in
            let config =
              {
                Kft_framework.Framework.default_config with
                device;
                filter_mode =
                  (match filter with
                  | "auto" -> Kft_framework.Framework.Automated
                  | "manual" -> Kft_framework.Framework.Manual
                  | _ -> Kft_framework.Framework.No_filtering);
                verify_mode =
                  (match verify with
                  | "off" -> Kft_framework.Framework.Verify_off
                  | "fatal" -> Kft_framework.Framework.Verify_fatal
                  | _ -> Kft_framework.Framework.Verify_advisory);
                codegen_options;
                sim_cache =
                  (if no_sim_cache then None
                   else Kft_framework.Framework.default_config.sim_cache);
                seed;
                gga_params =
                  {
                    Kft_gga.Gga.default_params with
                    generations;
                    population;
                    fission_enabled = not no_fission;
                    seed;
                  };
              }
            in
            let report =
              Kft_engine.Engine.with_engine ~jobs ~memo:(not no_memo) (fun engine ->
                  Kft_framework.Framework.transform ~config ~engine app.program)
            in
            if not quiet then print_string (Kft_framework.Framework.stage_report report);
            (match out_dir with
            | Some dir ->
                if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
                Kft_metadata.Metadata.to_files report.metadata ~dir;
                let write name contents =
                  let oc = open_out (Filename.concat dir name) in
                  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
                      output_string oc contents)
                in
                write "ddg.dot" (Kft_ddg.Ddg.ddg_dot report.graphs);
                write "oeg.dot" (Kft_ddg.Ddg.oeg_dot report.graphs);
                write "ddg_new.dot" (Kft_ddg.Ddg.ddg_dot report.new_graphs);
                write "oeg_new.dot" (Kft_ddg.Ddg.oeg_dot report.new_graphs);
                write "gga.params" (Kft_gga.Gga.params_to_text config.gga_params);
                Printf.printf "stage artifacts written to %s/\n" dir
            | None -> ());
            (match emit_cuda with
            | Some path ->
                let oc = open_out path in
                Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
                    output_string oc (Kft_cuda.Pp.program report.transformed));
                Printf.printf "transformed CUDA written to %s\n" path
            | None -> ());
            List.iter
              (fun d ->
                Printf.eprintf "kft-transform: [verify] %s\n"
                  (Kft_verify.Verify.pp_diagnostic d))
              report.verify_report.diagnostics;
            (match report.verified with
            | Ok () -> (
                match (verify, Kft_verify.Verify.is_clean report.verify_report) with
                | "fatal", false ->
                    `Error
                      ( false,
                        Printf.sprintf "static verification found %d defects"
                          (List.length report.verify_report.diagnostics) )
                | _ -> `Ok ())
            | Error diffs ->
                `Error
                  ( false,
                    Printf.sprintf "output verification failed on %d arrays"
                      (List.length diffs) )))

let cmd =
  let app_arg =
    Arg.(value & opt string "MITgcm" & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Application to transform (see --list).")
  in
  let device =
    Arg.(value & opt string "Tesla K20X" & info [ "device" ] ~docv:"NAME" ~doc:"Target device model (Tesla K20X, Tesla K40, Generic Kepler).")
  in
  let generations =
    Arg.(value & opt int 150 & info [ "generations" ] ~doc:"GGA generations (paper default: 500).")
  in
  let population =
    Arg.(value & opt int 40 & info [ "population" ] ~doc:"GGA population size (paper default: 100).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains shared by the GGA search and the simulator (profiling, verification and usage pre-runs fan each launch's thread blocks over the pool). Results are bit-identical at any worker count (the paper uses 8 Xeon cores).")
  in
  let no_memo =
    Arg.(value & flag & info [ "no-memo" ] ~doc:"Disable the genome-keyed fitness memo cache (ablation; results are unchanged, only slower).")
  in
  let no_sim_cache =
    Arg.(value & flag & info [ "no-sim-cache" ] ~doc:"Disable the keyed profile cache that replays repeated simulations (ablation; results are unchanged, only slower).")
  in
  let no_fission = Arg.(value & flag & info [ "no-fission" ] ~doc:"Disable lazy kernel fission.") in
  let no_tuning =
    Arg.(value & flag & info [ "no-tuning" ] ~doc:"Disable thread-block-size tuning.")
  in
  let expert =
    Arg.(value & flag & info [ "expert-codegen" ] ~doc:"Use the expert (hand-fusion-style) code generation switches.")
  in
  let filter =
    Arg.(value & opt string "auto" & info [ "filter" ] ~docv:"auto|manual|none" ~doc:"Target-filtering mode.")
  in
  let verify =
    Arg.(value & opt string "advisory" & info [ "verify" ] ~docv:"off|advisory|fatal" ~doc:"Static race/barrier/bounds verification and translation validation of the generated kernels: record diagnostics (advisory), reject flagged fused groups and fail on residual defects (fatal), or skip (off).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed (GGA + data).") in
  let out_dir =
    Arg.(value & opt (some string) None & info [ "o"; "artifacts" ] ~docv:"DIR" ~doc:"Dump stage artifacts (metadata files, DOT graphs, GGA parameters).")
  in
  let emit_cuda =
    Arg.(value & opt (some string) None & info [ "emit-cuda" ] ~docv:"FILE" ~doc:"Write the transformed CUDA program.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the stage report.") in
  let list = Arg.(value & flag & info [ "list" ] ~doc:"List bundled applications and exit.") in
  let term =
    Term.ret
      Term.(
        const run $ app_arg $ device $ generations $ population $ jobs $ no_memo
        $ no_sim_cache $ no_fission $ no_tuning $ expert $ filter $ verify $ seed $ out_dir
        $ emit_cuda $ quiet $ list)
  in
  Cmd.v
    (Cmd.info "kft-transform" ~version:"1.0.0"
       ~doc:"Automated GPU kernel fusion/fission transformation framework")
    term

let () = exit (Cmd.eval cmd)
