(* kft: umbrella driver for the static tooling.

   The first subcommand is [kft lint]: run the abstract-interpretation
   analyzer (kft_absint) over the quickstart example and the six bundled
   evaluation applications, and report bounds, memory-pattern and guard
   diagnostics.  The footprint-drift rule cross-checks the static
   per-kernel global-traffic estimate against the simulator's measured
   counters, so by default every program is profiled once first
   (disable with --no-profile).

   Output is deterministic: findings are totally ordered and
   deduplicated, so --json output is byte-stable for every --jobs
   value. *)

open Cmdliner
module L = Kft_absint.Lint

let lint_apps () = Kft_apps.Apps.quickstart () :: Kft_apps.Apps.all ()

(* measured global traffic, summed per kernel over the schedule (the
   lint rule only consumes it for kernels launched exactly once) *)
let measured_of device (a : Kft_apps.Apps.app) =
  let run = Kft_sim.Profiler.profile device a.program in
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Kft_sim.Profiler.kernel_profile) ->
      let b =
        float_of_int
          (p.stats.Kft_sim.Interp.global_read_bytes
         + p.stats.Kft_sim.Interp.global_write_bytes)
      in
      let cur = match Hashtbl.find_opt tbl p.kernel with Some c -> c | None -> 0.0 in
      Hashtbl.replace tbl p.kernel (cur +. b))
    run.profiles;
  ( a.program.Kft_cuda.Ast.p_name,
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) )

let lint_run json jobs strict no_profile only =
  let apps = lint_apps () in
  let apps =
    match only with
    | [] -> apps
    | names -> (
        let known (a : Kft_apps.Apps.app) = a.program.Kft_cuda.Ast.p_name in
        match
          List.filter (fun n -> not (List.exists (fun a -> known a = n) apps)) names
        with
        | [] -> List.filter (fun a -> List.mem (known a) names) apps
        | bad ->
            Printf.eprintf "kft lint: unknown program%s %s (have: %s)\n"
              (if List.length bad = 1 then "" else "s")
              (String.concat ", " bad)
              (String.concat ", " (List.map known apps));
            exit 2)
  in
  let measured =
    if no_profile then []
    else List.map (measured_of Kft_device.Device.k20x) apps
  in
  let findings =
    L.programs ~jobs ~measured
      (List.map (fun (a : Kft_apps.Apps.app) -> a.program) apps)
  in
  print_string (if json then L.render_json findings else L.render_human findings);
  if L.warnings findings > 0 || (strict && L.infos findings > 0) then exit 1

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON document (stable field order, byte-identical across $(b,--jobs) settings).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Analyze programs on $(docv) worker domains. The output is identical at any worker count.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on advisory (info) findings too, not just warnings.")
  in
  let no_profile =
    Arg.(value & flag & info [ "no-profile" ] ~doc:"Skip the simulator pre-run; disables the footprint-drift cross-check.")
  in
  let only =
    Arg.(value & opt_all string [] & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Lint only the named program(s); repeatable. Default: quickstart plus all bundled applications.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static diagnostics from the abstract-interpretation analyzer"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs kft_absint over every launch of every selected program and \
              reports: unprovable or out-of-bounds accesses ($(b,bounds)), \
              global accesses with a non-unit threadIdx.x stride \
              ($(b,uncoalesced)), shared-memory bank conflicts \
              ($(b,bank-conflict)), static/measured traffic disagreements \
              ($(b,footprint-drift)), undecidable thread-dependent guards \
              ($(b,divergent-guard)) and statically decided guards \
              ($(b,dead-guard)).";
           `P "Exits 1 if any warning is found (with $(b,--strict), any finding).";
         ])
    Term.(const lint_run $ json $ jobs $ strict $ no_profile $ only)

let cmd =
  Cmd.group
    (Cmd.info "kft" ~version:"1.0.0"
       ~doc:"Static analysis companion tools for the transformation framework")
    [ lint_cmd ]

let () = exit (Cmd.eval cmd)
