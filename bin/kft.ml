(* kft: umbrella driver for the static tooling. The command terms live
   in Kft_cli.Cli so the test suite can evaluate them in-process. *)

let () = exit (Kft_cli.Cli.kft_main ())
