(* Weather-model walkthrough: the SCALE-LES-like application through the
   full pipeline, dumping every intermediate artifact the paper lets the
   programmer inspect and amend (Figure 2):

   - the three metadata text files,
   - the DDG and OEG in GraphViz DOT,
   - the per-stage report,
   - the generated CUDA for the largest fused kernel.

   Artifacts are written under _artifacts/weather/. Run with:

     dune exec examples/weather_model.exe
*)

let out_dir = "_artifacts/weather"

let write path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents);
  Printf.printf "wrote %s\n" path

let () =
  let app = (Kft_apps.Apps.scale_les ()).program in
  let config =
    {
      Kft_framework.Framework.default_config with
      device = Kft_apps.Apps.bench_device;
      gga_params = { Kft_gga.Gga.default_params with generations = 100; population = 40 };
    }
  in
  let report = Kft_framework.Framework.transform ~config app in
  (try Unix.mkdir "_artifacts" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Kft_metadata.Metadata.to_files report.metadata ~dir:out_dir;
  Printf.printf "wrote %s/{performance,operations,device}.meta\n" out_dir;
  write (Filename.concat out_dir "ddg.dot") (Kft_ddg.Ddg.ddg_dot report.graphs);
  write (Filename.concat out_dir "oeg.dot") (Kft_ddg.Ddg.oeg_dot report.graphs);
  write (Filename.concat out_dir "oeg_new.dot") (Kft_ddg.Ddg.oeg_dot report.new_graphs);
  write
    (Filename.concat out_dir "transformed.cu")
    (Kft_cuda.Pp.program report.transformed);
  print_newline ();
  print_string (Kft_framework.Framework.stage_report report);
  (* show the largest generated kernel, the way a programmer would review
     it before compiling with nvcc *)
  let largest =
    List.fold_left
      (fun acc (rep : Kft_codegen.Codegen.kernel_report) ->
        match acc with
        | Some (best : Kft_codegen.Codegen.kernel_report)
          when List.length best.members >= List.length rep.members ->
            acc
        | _ -> Some rep)
      None report.codegen.reports
  in
  match largest with
  | Some rep when List.length rep.members > 1 ->
      Printf.printf "\n=== largest fused kernel (%s <- %s) ===\n" rep.new_kernel
        (String.concat ", " rep.members);
      let k = Kft_cuda.Ast.find_kernel report.transformed rep.new_kernel in
      print_string (Kft_cuda.Pp.kernel k)
  | _ -> print_endline "no fused kernels were generated"
