(* Quickstart: transform a three-kernel CUDA program end-to-end.

   The program is written as CUDA C text, parsed by the frontend,
   transformed by the full pipeline (metadata -> filtering -> DDG/OEG ->
   GGA -> codegen) and verified on the GPU simulator. Run with:

     dune exec examples/quickstart.exe
*)

open Kft_cuda.Ast

let cuda_source =
  {|
__global__ void diffuse(const double *U, double *V, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
    for (int k = 1; k < nz - 1; k++) {
      V[(k * ny + j) * nx + i] = c * (U[(k * ny + j) * nx + i + 1] + U[(k * ny + j) * nx + i - 1]
        + U[(k * ny + (j + 1)) * nx + i] + U[(k * ny + (j - 1)) * nx + i]
        + U[((k + 1) * ny + j) * nx + i] + U[((k - 1) * ny + j) * nx + i]
        - 6.0 * U[(k * ny + j) * nx + i]);
    }
  }
}
__global__ void smooth(const double *V, const double *U, double *W, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      W[(k * ny + j) * nx + i] = 0.25 * (V[(k * ny + j) * nx + i + 1] + V[(k * ny + j) * nx + i - 1]
        + V[(k * ny + (j + 1)) * nx + i] + V[(k * ny + (j - 1)) * nx + i])
        + c * U[(k * ny + j) * nx + i];
    }
  }
}
__global__ void relax(const double *W, double *U2, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      U2[(k * ny + j) * nx + i] = c * W[(k * ny + j) * nx + i];
    }
  }
}
|}

let () =
  let nx, ny, nz = (64, 16, 12) in
  let kernels = Kft_cuda.Parse.kernels cuda_source in
  let arr name = { a_name = name; a_elem_ty = Double; a_dims = [ nx; ny; nz ] } in
  let dims_args = [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double 0.125 ] in
  let launch kernel args =
    Launch { l_kernel = kernel; l_domain = (nx, ny, 1); l_block = (32, 4, 1); l_args = args }
  in
  let program =
    {
      p_name = "quickstart";
      p_arrays = [ arr "U"; arr "V"; arr "W"; arr "U2" ];
      p_kernels = kernels;
      p_schedule =
        [
          launch "diffuse" ([ Arg_array "U"; Arg_array "V" ] @ dims_args);
          launch "smooth" ([ Arg_array "V"; Arg_array "U"; Arg_array "W" ] @ dims_args);
          launch "relax" ([ Arg_array "W"; Arg_array "U2" ] @ dims_args);
        ];
    }
  in
  print_endline "=== original program ===";
  print_string (Kft_cuda.Pp.program program);
  print_newline ();
  let config =
    {
      Kft_framework.Framework.default_config with
      gga_params = { Kft_gga.Gga.default_params with generations = 80; population = 30 };
    }
  in
  let report = Kft_framework.Framework.transform ~config program in
  print_endline "=== pipeline report ===";
  print_string (Kft_framework.Framework.stage_report report);
  print_newline ();
  print_endline "=== transformed program (compile with nvcc, no runtime dependencies) ===";
  print_string (Kft_cuda.Pp.program report.transformed)
