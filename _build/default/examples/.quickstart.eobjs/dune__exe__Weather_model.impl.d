examples/weather_model.ml: Filename Fun Kft_apps Kft_codegen Kft_cuda Kft_ddg Kft_framework Kft_gga Kft_metadata List Printf String Unix
