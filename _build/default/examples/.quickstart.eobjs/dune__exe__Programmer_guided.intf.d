examples/programmer_guided.mli:
