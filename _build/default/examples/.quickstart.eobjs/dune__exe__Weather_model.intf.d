examples/weather_model.mli:
