examples/quickstart.ml: Kft_cuda Kft_framework Kft_gga
