examples/quickstart.mli:
