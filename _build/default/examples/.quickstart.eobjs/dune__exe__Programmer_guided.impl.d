examples/programmer_guided.ml: Kft_apps Kft_codegen Kft_framework Kft_gga Kft_metadata List Printf String
