examples/seismic_fission.mli:
