examples/seismic_fission.ml: Kft_apps Kft_codegen Kft_cuda Kft_fission Kft_framework Kft_gga List Printf String
