(* Programmer-guided transformation (Section 3.2 / Figure 2).

   The framework runs every stage automatically, but the programmer can
   intervene at the pivotal points. This example demonstrates all three
   hooks on the HOMME-like application:

   1. amend_metadata  - pretend a kernel's measured runtime was noisy and
                        correct it in the performance metadata;
   2. amend_targets   - re-include a kernel the automated filter dropped
                        (or drop one the programmer knows is unprofitable);
   3. amend_solution  - override the GGA's grouping for two kernels the
                        programmer wants fused together.

   Run with: dune exec examples/programmer_guided.exe
*)

module F = Kft_framework.Framework

let () =
  let app = Kft_apps.Apps.homme () in
  let config =
    {
      F.default_config with
      device = Kft_apps.Apps.bench_device;
      gga_params = { Kft_gga.Gga.default_params with generations = 100; population = 40 };
    }
  in
  (* fully automated run for reference *)
  let auto = F.transform ~config app.program in
  Printf.printf "automated:          %.3fx (verification %s)\n%!" auto.speedup
    (match auto.verified with Ok () -> "OK" | Error _ -> "FAILED");

  (* guided run: the programmer amends the intermediate results *)
  let hooks =
    {
      F.amend_metadata =
        (fun meta ->
          (* the programmer knows vsum_01's profiled runtime included a
             cold-cache effect; halve it so the objective stops
             over-valuing groups containing it *)
          let performance =
            List.map
              (fun (p : Kft_metadata.Metadata.perf_entry) ->
                if p.kernel = "vsum_01" then { p with runtime_us = p.runtime_us /. 2.0 } else p)
              meta.performance
          in
          { meta with performance });
      amend_targets =
        (fun targets ->
          (* drop a kernel the programmer knows never profits from fusion *)
          List.map (fun (k, e) -> if k = "adv_07" then (k, false) else (k, e)) targets);
      amend_solution =
        (fun groups ->
          (* force grad_01 and div_01 into the same group, wherever the
             search left them *)
          let wanted = [ "grad_01"; "div_01" ] in
          let stripped =
            List.filter_map
              (fun g ->
                match List.filter (fun u -> not (List.mem u wanted)) g with
                | [] -> None
                | g' -> Some g')
              groups
          in
          wanted :: stripped);
    }
  in
  let guided =
    F.transform
      ~config:{ config with codegen_options = Kft_codegen.Fusion.manual_options }
      ~hooks app.program
  in
  Printf.printf "programmer-guided:  %.3fx (verification %s)\n" guided.speedup
    (match guided.verified with Ok () -> "OK" | Error _ -> "FAILED");
  Printf.printf "\nguided groups:\n";
  List.iter
    (fun g -> if List.length g > 1 then Printf.printf "  %s\n" (String.concat " + " g))
    guided.solution_groups;
  (* confirm the forced pair survived codegen *)
  let forced =
    List.find_opt
      (fun (rep : Kft_codegen.Codegen.kernel_report) ->
        List.mem "grad_01" rep.members && List.mem "div_01" rep.members)
      guided.codegen.reports
  in
  match forced with
  | Some rep ->
      Printf.printf "\nforced group became %s (%s fusion, %d staged arrays)\n" rep.new_kernel
        (match rep.fusion_kind with `Complex -> "complex" | `Simple -> "simple" | `None -> "no")
        (List.length rep.staged_arrays)
  | None -> print_endline "\nforced group fell back (see report notes)"
