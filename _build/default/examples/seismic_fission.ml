(* Seismic-simulation walkthrough: kernel fission on already-fused
   kernels (the AWP-ODC scenario, and the Figure 3 example).

   The velocity-update kernel writes three separable component groups;
   Algorithm 2 splits it, and the pipeline then fuses matching parts of
   the two velocity kernels to reuse the stress fields they share --
   locality that plain fusion cannot reach because staging all twelve
   arrays would exceed the shared-memory capacity. Run with:

     dune exec examples/seismic_fission.exe
*)

let () =
  let app = Kft_apps.Apps.awp_odc () in
  let program = app.program in
  (* --- Figure 3: fission of one kernel, shown as CUDA text --- *)
  let vel_a = Kft_cuda.Ast.find_kernel program "vel_a" in
  print_endline "=== original already-fused kernel (Kern_A of Figure 3) ===";
  print_string (Kft_cuda.Pp.kernel vel_a);
  (match Kft_fission.Fission.plan vel_a with
  | None -> print_endline "kernel has no separable arrays"
  | Some plan ->
      Printf.printf "\n=== Algorithm 2 found %d separable groups ===\n"
        (List.length plan.parts);
      List.iter
        (fun (part : Kft_fission.Fission.part) ->
          Printf.printf "--- part %s (owns: %s) ---\n" part.part_kernel.k_name
            (String.concat ", " part.part_arrays);
          print_string (Kft_cuda.Pp.kernel part.part_kernel))
        plan.parts);
  (* --- the full pipeline: fission enables the fusion --- *)
  let config fission =
    {
      Kft_framework.Framework.default_config with
      device = Kft_apps.Apps.bench_device;
      gga_params =
        { Kft_gga.Gga.default_params with generations = 150; population = 40;
          fission_enabled = fission };
      codegen_options = { Kft_codegen.Fusion.auto_options with tune_blocks = false };
    }
  in
  let without = Kft_framework.Framework.transform ~config:(config false) program in
  let with_f = Kft_framework.Framework.transform ~config:(config true) program in
  Printf.printf "\nfusion only:      %.3fx speedup (%d kernels fissioned)\n" without.speedup
    (List.length without.fissioned);
  Printf.printf "fission + fusion: %.3fx speedup (%d kernels fissioned: %s)\n" with_f.speedup
    (List.length with_f.fissioned)
    (String.concat ", " with_f.fissioned);
  print_newline ();
  print_string (Kft_framework.Framework.stage_report with_f)
