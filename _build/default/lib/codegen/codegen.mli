(** Transformation driver: turn a fusion/fission solution into a new
    CUDA program (Section 3.2.5) plus the per-kernel report the
    programmer reviews.

    Groups that the generator cannot implement (non-canonical members,
    infeasible staging) fall back to emitting their members unfused,
    with the reason recorded — the paper's framework likewise reports
    "hints of possible inefficiencies" rather than failing. *)

type kernel_report = {
  new_kernel : string;
  members : string list;  (** original kernel names aggregated into it *)
  fusion_kind : [ `None | `Simple | `Complex ];
  staged_arrays : (string * int) list;  (** array, halo radius *)
  shared_bytes : int;
  block : int * int * int;
  tuned : bool;
  occupancy_before : float;
  occupancy_after : float;
  notes : string list;
}

type result = {
  program : Kft_cuda.Ast.program;
  reports : kernel_report list;
}

val transform :
  ?options:Fusion.options ->
  Kft_device.Device.t ->
  Kft_cuda.Ast.program ->
  groups:Kft_cuda.Ast.launch list list ->
  result
(** [groups] must cover every launch of the schedule exactly once, with
    groups already ordered so that inter-group precedences point forward
    (the framework topologically orders them from the OEG). Non-launch
    schedule entries (memcpys) are preserved at the end of the schedule
    they followed. *)

val tune_single :
  Kft_device.Device.t ->
  Kft_cuda.Ast.program ->
  Kft_cuda.Ast.launch ->
  (int * int * int) * float * float
(** Thread-block tuning of an unfused kernel: returns (new block,
    occupancy before, occupancy after). Kernels without a top-level
    guard are left untouched (the grid may not overshoot their domain). *)
