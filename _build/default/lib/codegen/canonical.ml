open Kft_cuda.Ast
module Access = Kft_analysis.Access

type member = {
  m_name : string;
  m_index : int;
  m_launch : launch;
  m_guard : expr option;
  m_kloop : (int * int) option;
  m_body : stmt list;
  m_domain : int * int * int;
  m_nest_depth : int;
  m_reads : (string * (int * int * int) list) list;
  m_writes : (string * (int * int * int) list) list;
  m_double_args : (string * float) list;
  m_arrays : (string * array_decl) list;
}

exception Not_canonical of string

let gi_var = "gi"
let gj_var = "gj"
let kv_var = "kv"

let wild_offset = 9999

let fail fmt = Printf.ksprintf (fun s -> raise (Not_canonical s)) fmt

(* ------------------------------------------------------------------ *)
(* Expression building helpers                                         *)
(* ------------------------------------------------------------------ *)

let add a b =
  match (a, b) with
  | Int_lit 0, e | e, Int_lit 0 -> e
  | Int_lit x, Int_lit y -> Int_lit (x + y)
  | e, Int_lit n when n < 0 -> Binop (Sub, e, Int_lit (-n))
  | a, b -> Binop (Add, a, b)

let mul c e =
  match (c, e) with
  | 0, _ -> Int_lit 0
  | 1, e -> e
  | c, Int_lit n -> Int_lit (c * n)
  | c, e -> Binop (Mul, Int_lit c, e)

let sum_terms terms const = List.fold_left add (Int_lit const) terms

let dims3 = function
  | [ nx ] -> (nx, 1, 1)
  | [ nx; ny ] -> (nx, ny, 1)
  | [ nx; ny; nz ] -> (nx, ny, nz)
  | dims -> fail "array with %d dimensions is not supported" (List.length dims)

let linear_index (decl : array_decl) ~x ~y ~z =
  let nx, ny, nz = dims3 decl.a_dims in
  let base =
    match z with
    | Some z when nz > 1 -> add (mul ny z) y
    | _ -> y
  in
  if ny > 1 || nz > 1 then add (mul nx base) x else x

(* ------------------------------------------------------------------ *)
(* Offset decomposition                                                *)
(* ------------------------------------------------------------------ *)

let div_nearest a b =
  if b = 0 then 0
  else if a >= 0 then (a + (b / 2)) / b
  else -((-a + (b / 2)) / b)

let decompose ~nx ~ny ~nz d =
  let sz = nx * ny and sy = nx in
  let dz = if nz > 1 then div_nearest d sz else 0 in
  let r = d - (dz * sz) in
  let dy = if ny > 1 then div_nearest r sy else 0 in
  let dx = r - (dy * sy) in
  (dx, dy, dz)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  env : Access.launch_env;
  prog : program;
  rename : (string, string) Hashtbl.t;
  kloop_var : string option;
  reads_acc : (string, (int * int * int) list) Hashtbl.t;
  writes_acc : (string, (int * int * int) list) Hashtbl.t;
}

let renamed ctx v = match Hashtbl.find_opt ctx.rename v with Some v' -> v' | None -> v

let record tbl host off =
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl host) in
  if not (List.mem off cur) then Hashtbl.replace tbl host (off :: cur)

let var_of_coeff ctx name =
  match name with
  | "gx" -> Var gi_var
  | "gy" -> Var gj_var
  | "gz" -> fail "accesses indexed by a z thread coordinate are not canonical"
  | v -> Var (renamed ctx v)

(* canonical rewrite of one global-array index expression *)
let canon_index ctx ~scope ~param idx =
  let host =
    match List.assoc_opt param ctx.env.param_binding with
    | Some h -> h
    | None -> fail "array parameter %s is not bound to a device array" param
  in
  let decl = find_array ctx.prog host in
  let nx, ny, nz = dims3 decl.a_dims in
  let sx = 1 and sy = nx and sz = nx * ny in
  match Access.affine_of_expr ctx.env ~loops:scope idx with
  | None -> fail "non-affine index for array %s" host
  | Some (coeffs, const) ->
      let xs = ref [] and ys = ref [] and zs = ref [] in
      List.iter
        (fun (name, c) ->
          let v = var_of_coeff ctx name in
          if nz > 1 && c = sz then zs := v :: !zs
          else if ny > 1 && c = sy then ys := v :: !ys
          else if c = sx then xs := v :: !xs
          else fail "stride %d of %s in array %s does not match any dimension" c name host)
        coeffs;
      let dx, dy, dz = decompose ~nx ~ny ~nz const in
      if dx + (dy * sy) + (dz * sz) <> const then fail "offset decomposition failed for %s" host;
      let x = sum_terms !xs dx and y = sum_terms !ys dy in
      let z = if nz > 1 then Some (sum_terms !zs dz) else None in
      (* bookkeeping: an access swept by a loop variable other than the
         canonical coordinate is not a fixed stencil offset — record the
         wild sentinel so the fusion feasibility rules treat it as
         reaching arbitrarily far along that dimension *)
      let wild terms allowed d =
        if List.for_all (fun t -> t = allowed) terms then d else wild_offset
      in
      let dx = wild !xs (Var gi_var) dx
      and dy = wild !ys (Var gj_var) dy
      and dz = wild !zs (Var kv_var) dz in
      (host, (dx, dy, dz), linear_index decl ~x ~y ~z)

let affine_side ctx ~scope e =
  match Access.affine_of_expr ctx.env ~loops:scope e with
  | Some (coeffs, const) ->
      Some (sum_terms (List.map (fun (n, c) -> mul c (var_of_coeff ctx n)) coeffs) const)
  | None -> None

(* top-down expression rewrite: global indices become canonical, scalar
   names are renamed, comparisons over affine-int sides are rebuilt *)
let rec rw_expr ctx ~scope e =
  match e with
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), l, r) -> (
      match (affine_side ctx ~scope l, affine_side ctx ~scope r) with
      | Some l', Some r' -> Binop (op, l', r')
      | _ -> Binop (op, rw_expr ctx ~scope l, rw_expr ctx ~scope r))
  | Binop (op, a, b) -> Binop (op, rw_expr ctx ~scope a, rw_expr ctx ~scope b)
  | Unop (op, a) -> Unop (op, rw_expr ctx ~scope a)
  | Index (param, [ idx ]) ->
      let host, off, canon = canon_index ctx ~scope ~param idx in
      record ctx.reads_acc host off;
      Index (host, [ canon ])
  | Index (a, _) -> fail "multi-dimensional index on global array %s" a
  | Call (f, args) -> Call (f, List.map (rw_expr ctx ~scope) args)
  | Ternary (c, a, b) -> Ternary (rw_expr ctx ~scope c, rw_expr ctx ~scope a, rw_expr ctx ~scope b)
  | Var v -> Var (renamed ctx v)
  | Int_lit _ | Double_lit _ -> e
  | Builtin _ -> (
      (* a bare thread coordinate in a value position: rebuild as affine *)
      match affine_side ctx ~scope e with
      | Some e' -> e'
      | None -> fail "thread builtin in unsupported position")

let rec rw_stmts ctx ~scope stmts = List.map (rw_stmt ctx ~scope) stmts

and rw_stmt ctx ~scope s =
  match s with
  | Decl (ty, v, init) -> Decl (ty, renamed ctx v, Option.map (rw_expr ctx ~scope) init)
  | Assign (Lvar v, e) -> Assign (Lvar (renamed ctx v), rw_expr ctx ~scope e)
  | Assign (Lindex (param, [ idx ]), e) ->
      let host, off, canon = canon_index ctx ~scope ~param idx in
      record ctx.writes_acc host off;
      Assign (Lindex (host, [ canon ]), rw_expr ctx ~scope e)
  | Assign (Lindex (a, _), _) -> fail "multi-dimensional write to global array %s" a
  | If (c, t, e) -> If (rw_expr ctx ~scope c, rw_stmts ctx ~scope t, rw_stmts ctx ~scope e)
  | For l ->
      let lo =
        match affine_side ctx ~scope l.lo with Some e -> e | None -> rw_expr ctx ~scope l.lo
      in
      let hi =
        match affine_side ctx ~scope l.hi with Some e -> e | None -> rw_expr ctx ~scope l.hi
      in
      For
        {
          index = renamed ctx l.index;
          lo;
          hi;
          step = l.step;
          body = rw_stmts ctx ~scope:(scope @ [ l.index ]) l.body;
        }
  | Shared_decl (_, n, _) -> fail "kernel already uses shared memory (%s); not fusable" n
  | Syncthreads -> fail "kernel already contains __syncthreads; not fusable"
  | Return -> fail "return statements are not canonical (use a guard)"

let max_depth body =
  let rec go depth stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | For l -> max acc (go (depth + 1) l.body)
        | If (_, t, e) -> max acc (max (go depth t) (go depth e))
        | _ -> acc)
      depth stmts
  in
  go 0 body

let collect_locals body =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec go stmts =
    List.iter
      (fun s ->
        match s with
        | Decl (_, v, _) -> add v
        | For l ->
            add l.index;
            go l.body
        | If (_, t, e) ->
            go t;
            go e
        | Assign (Lvar v, _) -> add v
        | _ -> ())
      stmts
  in
  go body;
  List.rev !acc

let const_eval e =
  let probe = { Access.thread = (0, 0, 0); block_idx = (0, 0, 0); bindings = [] } in
  match Access.eval_int probe e with
  | v -> v
  | exception Access.Not_integer m -> fail "loop bound is not a launch constant: %s" m

let extract ~deep ~index prog (l : launch) =
  let kernel = find_kernel prog l.l_kernel in
  let env = Access.env_of_launch prog l in
  let body = Access.specialize env kernel in
  let nest_depth = max_depth body in
  (* split: leading double declarations, optional guard, content *)
  let rec split_decls acc = function
    | (Decl (Double, _, _) as d) :: rest -> split_decls (d :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let lead_decls, content = split_decls [] body in
  let guard, content =
    match content with
    | [ If (g, inner, []) ] -> (Some g, inner)
    | other -> (None, other)
  in
  let kloop, kloop_var, content =
    match content with
    | [ For fl ] when nest_depth < 2 || deep = `Inner_shared ->
        if fl.step <> 1 then fail "vertical loop with step %d is not canonical" fl.step;
        (Some (const_eval fl.lo, const_eval fl.hi), Some fl.index, fl.body)
    | other -> (None, None, other)
  in
  let suffix = Printf.sprintf "__m%d" (index + 1) in
  let rename = Hashtbl.create 16 in
  (match kloop_var with Some v -> Hashtbl.replace rename v kv_var | None -> ());
  List.iter
    (fun v -> if Some v <> kloop_var then Hashtbl.replace rename v (v ^ suffix))
    (collect_locals (lead_decls @ content));
  (* double scalar parameters *)
  let binding = bind_args kernel l.l_args in
  let double_args =
    List.filter_map
      (function
        | name, Arg_double v ->
            Hashtbl.replace rename name (name ^ suffix);
            Some (name ^ suffix, v)
        | _ -> None)
      binding
  in
  let ctx =
    {
      env;
      prog;
      rename;
      kloop_var;
      reads_acc = Hashtbl.create 16;
      writes_acc = Hashtbl.create 16;
    }
  in
  let base_scope = match kloop_var with Some v -> [ v ] | None -> [] in
  let guard' = Option.map (rw_expr ctx ~scope:[]) guard in
  let lead' = rw_stmts ctx ~scope:[] lead_decls in
  let content' = rw_stmts ctx ~scope:base_scope content in
  let to_list tbl = Hashtbl.fold (fun k v acc -> (k, List.sort compare v) :: acc) tbl [] |> List.sort compare in
  let m_arrays =
    List.map (fun (_, host) -> (host, find_array prog host)) env.param_binding
    |> List.sort_uniq compare
  in
  {
    m_name = kernel.k_name;
    m_index = index;
    m_launch = l;
    m_guard = guard';
    m_kloop = kloop;
    m_body = lead' @ content';
    m_domain = l.l_domain;
    m_nest_depth = nest_depth;
    m_reads = to_list ctx.reads_acc;
    m_writes = to_list ctx.writes_acc;
    m_double_args = double_args;
    m_arrays;
  }

(* numeric evaluation of a pure integer expression over Var bindings *)
let rec eval_pure bind e =
  let ( let* ) = Option.bind in
  match e with
  | Int_lit i -> Some i
  | Var v -> bind v
  | Binop (op, a, b) -> (
      let* va = eval_pure bind a in
      let* vb = eval_pure bind b in
      match op with
      | Add -> Some (va + vb)
      | Sub -> Some (va - vb)
      | Mul -> Some (va * vb)
      | Div -> if vb = 0 then None else Some (va / vb)
      | Mod -> if vb = 0 then None else Some (va mod vb)
      | Lt -> Some (if va < vb then 1 else 0)
      | Le -> Some (if va <= vb then 1 else 0)
      | Gt -> Some (if va > vb then 1 else 0)
      | Ge -> Some (if va >= vb then 1 else 0)
      | Eq -> Some (if va = vb then 1 else 0)
      | Ne -> Some (if va <> vb then 1 else 0)
      | And -> Some (if va <> 0 && vb <> 0 then 1 else 0)
      | Or -> Some (if va <> 0 || vb <> 0 then 1 else 0))
  | Unop (Neg, a) -> Option.map (fun v -> -v) (eval_pure bind a)
  | Unop (Not, a) -> Option.map (fun v -> if v = 0 then 1 else 0) (eval_pure bind a)
  | Ternary (c, a, b) -> (
      let* vc = eval_pure bind c in
      if vc <> 0 then eval_pure bind a else eval_pure bind b)
  | Double_lit _ | Builtin _ | Index _ | Call _ -> None

let affine_over ~vars e =
  let ( let* ) = Option.bind in
  let eval assign = eval_pure (fun v -> List.assoc_opt v assign) e in
  let zeros = List.map (fun v -> (v, 0)) vars in
  let* f0 = eval zeros in
  let rec coeffs acc = function
    | [] -> Some (List.rev acc)
    | v :: rest ->
        let displaced d = List.map (fun (x, b) -> (x, if x = v then b + d else b)) zeros in
        let* f1 = eval (displaced 1) in
        let* f2 = eval (displaced 2) in
        let c = f1 - f0 in
        if f2 - f0 <> 2 * c then None
        else coeffs (if c = 0 then acc else (v, c) :: acc) rest
  in
  let* cs = coeffs [] vars in
  (* one pairwise cross-check *)
  match cs with
  | (v1, c1) :: (v2, c2) :: _ ->
      let assign =
        List.map (fun (x, _) -> (x, if x = v1 || x = v2 then 1 else 0)) zeros
      in
      let* fp = eval assign in
      if fp - f0 <> c1 + c2 then None else Some (cs, f0)
  | _ -> Some (cs, f0)

let reads_of m host = Option.value ~default:[] (List.assoc_opt host m.m_reads)

let writes_of m host = Option.value ~default:[] (List.assoc_opt host m.m_writes)

let touched_arrays m =
  let names = List.map fst m.m_reads @ List.map fst m.m_writes in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n -> if Hashtbl.mem seen n then false else (Hashtbl.replace seen n (); true))
    names
