(** Canonicalization of fusion members.

    Before kernels can be fused their bodies must agree on a common
    coordinate system. This pass rewrites a kernel launch into the
    canonical form of the paper's supported subset: a 2D CUDA grid over
    the horizontal plane (global coordinates [gi], [gj]), an optional
    vertical loop ([kv]), and statements whose global-array accesses are
    explicit stencil offsets from the thread's own cell.

    Scalar parameters and problem dimensions are specialized to the
    launch constants (generated code is specialized to the profiled
    problem size); double-precision scalars and locals are suffixed with
    the member index so several members can coexist in one fused body. *)

type member = {
  m_name : string;  (** original kernel name *)
  m_index : int;  (** position within the fusion group *)
  m_launch : Kft_cuda.Ast.launch;
  m_guard : Kft_cuda.Ast.expr option;  (** canonical guard over [gi]/[gj] *)
  m_kloop : (int * int) option;  (** vertical loop bounds [lo, hi) *)
  m_body : Kft_cuda.Ast.stmt list;
      (** canonicalized statements; vertical loop variable is ["kv"],
          global coordinates are ["gi"]/["gj"] *)
  m_domain : int * int * int;
  m_nest_depth : int;
  m_reads : (string * (int * int * int) list) list;
      (** host array -> read offsets (deduplicated) *)
  m_writes : (string * (int * int * int) list) list;
  m_double_args : (string * float) list;  (** fused parameter name -> value *)
  m_arrays : (string * Kft_cuda.Ast.array_decl) list;  (** host array name -> declaration *)
}

exception Not_canonical of string

val gi_var : string
val gj_var : string
val kv_var : string

val wild_offset : int
(** Sentinel magnitude recorded for accesses swept by a loop variable
    other than the canonical coordinates (e.g. a vertical-band inner
    loop): such an access is not a fixed stencil offset and defeats the
    locality rules that rely on one. *)

val extract :
  deep:[ `Sequential | `Inner_shared ] ->
  index:int ->
  Kft_cuda.Ast.program ->
  Kft_cuda.Ast.launch ->
  member
(** Raises {!Not_canonical} when the kernel falls outside the supported
    subset (the framework then reports the kernel as unfusable and emits
    it unchanged). Under [`Sequential], kernels with loop-nest depth >= 2
    keep their whole nest opaque (no [m_kloop]) — the auto-codegen
    behaviour behind the Figure 6 performance gap; under
    [`Inner_shared] the outermost vertical loop is hoisted so staging
    can happen inside it. *)

val reads_of : member -> string -> (int * int * int) list

val writes_of : member -> string -> (int * int * int) list

val touched_arrays : member -> string list
(** Host arrays read or written, in first-touch order. *)

val affine_over :
  vars:string list -> Kft_cuda.Ast.expr -> ((string * int) list * int) option
(** Affine coefficients of a pure integer expression over the named
    variables (all other identifiers make it non-affine). Used by the
    fusion builder to recover stencil offsets from already-canonical
    index expressions. Zero coefficients are omitted. *)

val linear_index :
  Kft_cuda.Ast.array_decl ->
  x:Kft_cuda.Ast.expr ->
  y:Kft_cuda.Ast.expr ->
  z:Kft_cuda.Ast.expr option ->
  Kft_cuda.Ast.expr
(** Rebuild the canonical linearized index [((z·NY)+y)·NX+x] for an
    array, folding away degenerate dimensions. *)
