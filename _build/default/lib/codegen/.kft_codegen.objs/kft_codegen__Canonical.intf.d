lib/codegen/canonical.mli: Kft_cuda
