lib/codegen/codegen.ml: Canonical Fusion Hashtbl Kft_analysis Kft_cuda Kft_device List Printf Result
