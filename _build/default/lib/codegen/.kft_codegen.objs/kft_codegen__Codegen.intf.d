lib/codegen/codegen.mli: Fusion Kft_cuda Kft_device
