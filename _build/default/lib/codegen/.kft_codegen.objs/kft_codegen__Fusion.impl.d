lib/codegen/fusion.ml: Canonical Hashtbl Kft_cuda Kft_device List Option Printf Result
