lib/codegen/canonical.ml: Hashtbl Kft_analysis Kft_cuda List Option Printf
