lib/codegen/fusion.mli: Canonical Kft_cuda Kft_device
