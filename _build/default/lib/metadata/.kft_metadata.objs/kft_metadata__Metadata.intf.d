lib/metadata/metadata.mli: Kft_cuda Kft_device Kft_sim
