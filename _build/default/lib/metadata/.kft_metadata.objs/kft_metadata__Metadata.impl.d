lib/metadata/metadata.ml: Buffer Filename Fun Hashtbl Kft_analysis Kft_cuda Kft_device Kft_sim List Option Printf String
