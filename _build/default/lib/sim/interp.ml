open Kft_cuda.Ast

type stats = {
  mutable global_read_bytes : int;
  mutable global_write_bytes : int;
  mutable flops : float;
  mutable warp_cond_evals : int;
  mutable divergent_warp_cond_evals : int;
  mutable shared_hazards : int;
  mutable threads_launched : int;
  mutable threads_active : int;
  shared_bytes_per_block : int;
  blocks_launched : int;
}

let divergence_fraction s =
  if s.warp_cond_evals = 0 then 0.0
  else float_of_int s.divergent_warp_cond_evals /. float_of_int s.warp_cond_evals

exception Sim_error of { kernel : string; message : string }

exception Thread_exit

(* ------------------------------------------------------------------ *)
(* Compilation environment                                             *)
(* ------------------------------------------------------------------ *)

type binding =
  | Const_int of int
  | Const_float of float
  | Int_slot of int
  | Float_slot of int
  | Global of float array
  | Shared of int * int list  (* slot, declared dims *)

type st = {
  kernel_name : string;
  bx : int;
  by : int;
  bz : int;
  nthreads : int;
  txs : int array;
  tys : int array;
  tzs : int array;
  mutable bix : int;
  mutable biy : int;
  mutable biz : int;
  iregs : int array array;  (* slot-major: iregs.(slot).(thread) *)
  fregs : float array array;
  shmem : float array array;
  sh_writer : int array array;
  sh_epoch : int array array;
  mutable epoch : int;
  alive : bool array;
  stats : stats;
  read_flags : (string, bool ref) Hashtbl.t;
  write_flags : (string, bool ref) Hashtbl.t;
}

let err st msg = raise (Sim_error { kernel = st.kernel_name; message = msg })

let usage_flag tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref false in
      Hashtbl.replace tbl name r;
      r

(* ------------------------------------------------------------------ *)
(* Type inference over the subset                                      *)
(* ------------------------------------------------------------------ *)

type ety = EInt | EFloat

let join a b = match (a, b) with EInt, EInt -> EInt | _ -> EFloat

let rec ty_of lookup e =
  match e with
  | Int_lit _ -> EInt
  | Double_lit _ -> EFloat
  | Builtin _ -> EInt
  | Var v -> (
      match lookup v with
      | Const_int _ | Int_slot _ -> EInt
      | Const_float _ | Float_slot _ -> EFloat
      | Global _ | Shared _ -> EFloat)
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> join (ty_of lookup a) (ty_of lookup b)
  | Binop (_, _, _) -> EInt
  | Unop (Not, _) -> EInt
  | Unop (Neg, a) -> ty_of lookup a
  | Index _ -> EFloat
  | Call (("min" | "max" | "abs"), args) ->
      List.fold_left (fun acc a -> join acc (ty_of lookup a)) EInt args
  | Call _ -> EFloat
  | Ternary (_, a, b) -> join (ty_of lookup a) (ty_of lookup b)

(* static flop count of an expression (arithmetic on any operands;
   integer index arithmetic is excluded by construction because we only
   charge flops for float-typed subtrees) *)
let rec float_flops lookup e =
  match ty_of lookup e with
  | EInt -> 0
  | EFloat -> (
      match e with
      | Int_lit _ | Double_lit _ | Var _ | Builtin _ | Index _ -> 0
      | Binop ((Add | Sub | Mul | Div | Mod), a, b) ->
          1 + float_flops lookup a + float_flops lookup b
      | Binop (_, a, b) -> float_flops lookup a + float_flops lookup b
      | Unop (_, a) -> float_flops lookup a
      | Call ("fma", args) -> 2 + List.fold_left (fun acc a -> acc + float_flops lookup a) 0 args
      | Call (("sqrt" | "exp" | "log" | "pow" | "sin" | "cos"), args) ->
          4 + List.fold_left (fun acc a -> acc + float_flops lookup a) 0 args
      | Call (_, args) -> List.fold_left (fun acc a -> acc + float_flops lookup a) 0 args
      | Ternary (c, a, b) ->
          float_flops lookup c + max (float_flops lookup a) (float_flops lookup b))

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let shared_addr st dims idx_fns name t =
  let rec go dims fns acc =
    match (dims, fns) with
    | [], [] -> acc
    | d :: dims', f :: fns' ->
        let i = f t in
        if i < 0 || i >= d then
          err st (Printf.sprintf "shared array %s index %d out of bounds [0,%d)" name i d)
        else go dims' fns' ((acc * d) + i)
    | _ -> err st (Printf.sprintf "shared array %s: wrong number of indices" name)
  in
  go dims idx_fns 0

let rec compile_int st lookup e : int -> int =
  match e with
  | Int_lit i -> fun _ -> i
  | Builtin b -> (
      let { txs; tys; tzs; _ } = st in
      match b with
      | Thread_idx X -> fun t -> txs.(t)
      | Thread_idx Y -> fun t -> tys.(t)
      | Thread_idx Z -> fun t -> tzs.(t)
      | Block_idx X -> fun _ -> st.bix
      | Block_idx Y -> fun _ -> st.biy
      | Block_idx Z -> fun _ -> st.biz
      | Block_dim _ | Grid_dim _ -> err st "blockDim/gridDim must be compiled to constants")
  | Var v -> (
      match lookup v with
      | Const_int i -> fun _ -> i
      | Int_slot s ->
          let arr = st.iregs.(s) in
          fun t -> arr.(t)
      | Const_float _ | Float_slot _ -> err st (Printf.sprintf "variable %s used as integer but is double" v)
      | Global _ | Shared _ -> err st (Printf.sprintf "array %s used as scalar" v))
  | Binop (op, a, b) -> (
      let fa = compile_int st lookup a and fb = compile_int st lookup b in
      match op with
      | Add -> fun t -> fa t + fb t
      | Sub -> fun t -> fa t - fb t
      | Mul -> fun t -> fa t * fb t
      | Div ->
          fun t ->
            let d = fb t in
            if d = 0 then err st "integer division by zero" else fa t / d
      | Mod ->
          fun t ->
            let d = fb t in
            if d = 0 then err st "integer modulo by zero" else fa t mod d
      | Lt -> fun t -> if fa t < fb t then 1 else 0
      | Le -> fun t -> if fa t <= fb t then 1 else 0
      | Gt -> fun t -> if fa t > fb t then 1 else 0
      | Ge -> fun t -> if fa t >= fb t then 1 else 0
      | Eq -> fun t -> if fa t = fb t then 1 else 0
      | Ne -> fun t -> if fa t <> fb t then 1 else 0
      | And -> fun t -> if fa t <> 0 && fb t <> 0 then 1 else 0
      | Or -> fun t -> if fa t <> 0 || fb t <> 0 then 1 else 0)
  | Unop (Neg, a) ->
      let f = compile_int st lookup a in
      fun t -> -f t
  | Unop (Not, a) ->
      let f = compile_int st lookup a in
      fun t -> if f t = 0 then 1 else 0
  | Call ("min", [ a; b ]) ->
      let fa = compile_int st lookup a and fb = compile_int st lookup b in
      fun t -> min (fa t) (fb t)
  | Call ("max", [ a; b ]) ->
      let fa = compile_int st lookup a and fb = compile_int st lookup b in
      fun t -> max (fa t) (fb t)
  | Call ("abs", [ a ]) ->
      let f = compile_int st lookup a in
      fun t -> abs (f t)
  | Ternary (c, a, b) ->
      let fc = compile_int st lookup c
      and fa = compile_int st lookup a
      and fb = compile_int st lookup b in
      fun t -> if fc t <> 0 then fa t else fb t
  | Double_lit _ -> err st "double literal in integer context"
  | Index (a, _) -> err st (Printf.sprintf "array %s read in integer context" a)
  | Call (f, _) -> err st (Printf.sprintf "call to %s in integer context" f)

(* Comparison/logic over possibly-float operands, yielding int 0/1. *)
and compile_cond st lookup e : int -> int =
  match e with
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b)
    when join (ty_of lookup a) (ty_of lookup b) = EFloat ->
      let fa = compile_float st lookup a and fb = compile_float st lookup b in
      let cmp : float -> float -> bool =
        match op with
        | Lt -> ( < )
        | Le -> ( <= )
        | Gt -> ( > )
        | Ge -> ( >= )
        | Eq -> ( = )
        | Ne -> ( <> )
        | _ -> assert false
      in
      fun t -> if cmp (fa t) (fb t) then 1 else 0
  | Binop (And, a, b) ->
      let fa = compile_cond st lookup a and fb = compile_cond st lookup b in
      fun t -> if fa t <> 0 && fb t <> 0 then 1 else 0
  | Binop (Or, a, b) ->
      let fa = compile_cond st lookup a and fb = compile_cond st lookup b in
      fun t -> if fa t <> 0 || fb t <> 0 then 1 else 0
  | Unop (Not, a) ->
      let f = compile_cond st lookup a in
      fun t -> if f t = 0 then 1 else 0
  | e -> compile_int st lookup e

and compile_float st lookup e : int -> float =
  match ty_of lookup e with
  | EInt ->
      let f = compile_int st lookup e in
      fun t -> float_of_int (f t)
  | EFloat -> (
      match e with
      | Double_lit f -> fun _ -> f
      | Var v -> (
          match lookup v with
          | Const_float f -> fun _ -> f
          | Float_slot s ->
              let arr = st.fregs.(s) in
              fun t -> arr.(t)
          | Const_int i -> fun _ -> float_of_int i
          | Int_slot s ->
              let arr = st.iregs.(s) in
              fun t -> float_of_int arr.(t)
          | Global _ | Shared _ -> err st (Printf.sprintf "array %s used as scalar" v))
      | Index (a, idxs) -> (
          match lookup a with
          | Global data ->
              let idx =
                match idxs with
                | [ i ] -> compile_int st lookup i
                | _ -> err st (Printf.sprintf "global array %s must use a single linearized index" a)
              in
              let n = Array.length data in
              let stats = st.stats in
              let touched = usage_flag st.read_flags a in
              fun t ->
                let i = idx t in
                if i < 0 || i >= n then
                  err st (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
                else begin
                  stats.global_read_bytes <- stats.global_read_bytes + 8;
                  touched := true;
                  data.(i)
                end
          | Shared (slot, dims) ->
              let idx_fns = List.map (compile_int st lookup) idxs in
              let stats = st.stats in
              fun t ->
                let addr = shared_addr st dims idx_fns a t in
                if st.sh_epoch.(slot).(addr) = st.epoch && st.sh_writer.(slot).(addr) <> t
                   && st.sh_writer.(slot).(addr) >= 0
                then stats.shared_hazards <- stats.shared_hazards + 1;
                st.shmem.(slot).(addr)
          | _ -> err st (Printf.sprintf "%s indexed but is not an array" a))
      | Binop (op, a, b) -> (
          let fa = compile_float st lookup a and fb = compile_float st lookup b in
          match op with
          | Add -> fun t -> fa t +. fb t
          | Sub -> fun t -> fa t -. fb t
          | Mul -> fun t -> fa t *. fb t
          | Div -> fun t -> fa t /. fb t
          | Mod -> fun t -> Float.rem (fa t) (fb t)
          | _ -> err st "comparison in float context")
      | Unop (Neg, a) ->
          let f = compile_float st lookup a in
          fun t -> -.f t
      | Unop (Not, _) -> err st "logical not in float context"
      | Ternary (c, a, b) ->
          let fc = compile_cond st lookup c
          and fa = compile_float st lookup a
          and fb = compile_float st lookup b in
          fun t -> if fc t <> 0 then fa t else fb t
      | Call (fname, args) -> (
          let fargs = List.map (compile_float st lookup) args in
          match (fname, fargs) with
          | ("sqrt", [ a ]) -> fun t -> sqrt (a t)
          | ("fabs", [ a ]) | ("abs", [ a ]) -> fun t -> Float.abs (a t)
          | ("exp", [ a ]) -> fun t -> exp (a t)
          | ("log", [ a ]) -> fun t -> log (a t)
          | ("sin", [ a ]) -> fun t -> sin (a t)
          | ("cos", [ a ]) -> fun t -> cos (a t)
          | ("pow", [ a; b ]) -> fun t -> Float.pow (a t) (b t)
          | (("min" | "fmin"), [ a; b ]) -> fun t -> Float.min (a t) (b t)
          | (("max" | "fmax"), [ a; b ]) -> fun t -> Float.max (a t) (b t)
          | ("fma", [ a; b; c ]) -> fun t -> Float.fma (a t) (b t) (c t)
          | _ ->
              err st
                (Printf.sprintf "unsupported function %s/%d" fname (List.length args)))
      | Int_lit _ | Builtin _ -> assert false (* EInt-typed *))

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

type cstmt =
  | Leaf of { fn : int -> unit; cond : (int -> int) option }
  | CIf of (int -> int) * cstmt list * cstmt list
  | CFor of {
      set : int -> int -> unit;  (* thread -> value -> () *)
      get_lo : int -> int;
      get_hi : int -> int;
      step : int;
      body : cstmt list;
    }
  | CSync

let has_sync stmts =
  fold_stmts (fun acc s -> acc || s = Syncthreads) false stmts

(* compile a statement list into a single per-thread closure (no syncs
   inside, guaranteed by caller) *)
let rec compile_thread_fn st lookup stmts : int -> unit =
  let fns = List.map (compile_thread_stmt st lookup) stmts in
  match fns with
  | [ f ] -> f
  | fns -> fun t -> List.iter (fun f -> f t) fns

and compile_thread_stmt st lookup s : int -> unit =
  let stats = st.stats in
  match s with
  | Decl (_, v, None) ->
      ignore (lookup v);
      fun _ -> ()
  | Decl (_, v, Some e) | Assign (Lvar v, e) -> (
      match lookup v with
      | Int_slot slot ->
          let f = compile_int st lookup e in
          let arr = st.iregs.(slot) in
          fun t -> arr.(t) <- f t
      | Float_slot slot ->
          let f = compile_float st lookup e in
          let flops = float_flops lookup e in
          let arr = st.fregs.(slot) in
          fun t ->
            arr.(t) <- f t;
            stats.flops <- stats.flops +. float_of_int flops
      | _ -> err st (Printf.sprintf "assignment to non-scalar %s" v))
  | Assign (Lindex (a, idxs), e) -> (
      match lookup a with
      | Global data ->
          let idx =
            match idxs with
            | [ i ] -> compile_int st lookup i
            | _ -> err st (Printf.sprintf "global array %s must use a single linearized index" a)
          in
          let rhs = compile_float st lookup e in
          let flops = float_flops lookup e in
          let n = Array.length data in
          let touched = usage_flag st.write_flags a in
          fun t ->
            let i = idx t in
            if i < 0 || i >= n then
              err st (Printf.sprintf "global array %s index %d out of bounds [0,%d)" a i n)
            else begin
              data.(i) <- rhs t;
              stats.global_write_bytes <- stats.global_write_bytes + 8;
              stats.flops <- stats.flops +. float_of_int flops;
              touched := true
            end
      | Shared (slot, dims) ->
          let idx_fns = List.map (compile_int st lookup) idxs in
          let rhs = compile_float st lookup e in
          let flops = float_flops lookup e in
          fun t ->
            let addr = shared_addr st dims idx_fns a t in
            st.shmem.(slot).(addr) <- rhs t;
            st.sh_writer.(slot).(addr) <- t;
            st.sh_epoch.(slot).(addr) <- st.epoch;
            stats.flops <- stats.flops +. float_of_int flops
      | _ -> err st (Printf.sprintf "%s is not an array" a))
  | If (c, tb, eb) ->
      let fc = compile_cond st lookup c in
      let ft = compile_thread_fn st lookup tb and fe = compile_thread_fn st lookup eb in
      fun t -> if fc t <> 0 then ft t else fe t
  | For l -> (
      match lookup l.index with
      | Int_slot slot ->
          let flo = compile_int st lookup l.lo and fhi = compile_int st lookup l.hi in
          let body = compile_thread_fn st lookup l.body in
          let arr = st.iregs.(slot) in
          let step = l.step in
          fun t ->
            let hi = fhi t in
            arr.(t) <- flo t;
            while arr.(t) < hi do
              body t;
              arr.(t) <- arr.(t) + step
            done
      | _ -> err st (Printf.sprintf "loop index %s is not an int slot" l.index))
  | Return -> fun t -> st.alive.(t) <- false; raise Thread_exit
  | Shared_decl _ -> fun _ -> ()
  | Syncthreads -> err st "internal: __syncthreads inside a per-thread region"

let rec compile_stmt st lookup s : cstmt =
  if not (has_sync [ s ]) then
    let cond =
      match s with If (c, _, _) -> Some (compile_cond st lookup c) | _ -> None
    in
    Leaf { fn = compile_thread_stmt st lookup s; cond }
  else
    match s with
    | Syncthreads -> CSync
    | If (c, tb, eb) ->
        CIf (compile_cond st lookup c, compile_stmts st lookup tb, compile_stmts st lookup eb)
    | For l -> (
        match lookup l.index with
        | Int_slot slot ->
            let arr = st.iregs.(slot) in
            CFor
              {
                set = (fun t v -> arr.(t) <- v);
                get_lo = compile_int st lookup l.lo;
                get_hi = compile_int st lookup l.hi;
                step = l.step;
                body = compile_stmts st lookup l.body;
              }
        | _ -> err st (Printf.sprintf "loop index %s is not an int slot" l.index))
    | _ -> err st "internal: unexpected sync-carrying statement"

and compile_stmts st lookup stmts = List.map (compile_stmt st lookup) stmts

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let record_divergence st cond =
  let stats = st.stats in
  let n = st.nthreads in
  let warp_count = (n + 31) / 32 in
  for w = 0 to warp_count - 1 do
    let ones = ref 0 and zeros = ref 0 in
    for t = w * 32 to min n ((w + 1) * 32) - 1 do
      if st.alive.(t) then if cond t <> 0 then incr ones else incr zeros
    done;
    if !ones + !zeros > 0 then begin
      stats.warp_cond_evals <- stats.warp_cond_evals + 1;
      if !ones > 0 && !zeros > 0 then
        stats.divergent_warp_cond_evals <- stats.divergent_warp_cond_evals + 1
    end
  done

let first_alive st =
  let rec go t = if t >= st.nthreads then None else if st.alive.(t) then Some t else go (t + 1) in
  go 0

let rec exec_lockstep st cstmts = List.iter (exec_cstmt st) cstmts

and exec_cstmt st c =
  match c with
  | CSync -> st.epoch <- st.epoch + 1
  | Leaf { fn; cond } ->
      (match cond with Some f -> record_divergence st f | None -> ());
      for t = 0 to st.nthreads - 1 do
        if st.alive.(t) then try fn t with Thread_exit -> ()
      done
  | CIf (cond, tb, eb) -> (
      match first_alive st with
      | None -> ()
      | Some t0 ->
          let v0 = cond t0 <> 0 in
          for t = 0 to st.nthreads - 1 do
            if st.alive.(t) && cond t <> 0 <> v0 then
              err st "barrier divergence: non-uniform condition guards a __syncthreads region"
          done;
          exec_lockstep st (if v0 then tb else eb))
  | CFor { set; get_lo; get_hi; step; body } -> (
      match first_alive st with
      | None -> ()
      | Some t0 ->
          let lo = get_lo t0 and hi = get_hi t0 in
          for t = 0 to st.nthreads - 1 do
            if st.alive.(t) && (get_lo t <> lo || get_hi t <> hi) then
              err st "barrier divergence: non-uniform loop bounds around a __syncthreads region"
          done;
          let v = ref lo in
          while !v < hi do
            for t = 0 to st.nthreads - 1 do
              if st.alive.(t) then set t !v
            done;
            exec_lockstep st body;
            v := !v + step
          done)

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

let collect_scalar_slots kernel_name body params =
  (* name -> ety, slot index; loop indices and decls *)
  let table : (string, binding) Hashtbl.t = Hashtbl.create 32 in
  let int_slots = ref 0 and float_slots = ref 0 in
  let add_var name ety =
    match Hashtbl.find_opt table name with
    | Some (Int_slot _) when ety = EInt -> ()
    | Some (Float_slot _) when ety = EFloat -> ()
    | Some _ ->
        raise
          (Sim_error
             {
               kernel = kernel_name;
               message = Printf.sprintf "variable %s redeclared with a different type" name;
             })
    | None ->
        let b =
          match ety with
          | EInt ->
              incr int_slots;
              Int_slot (!int_slots - 1)
          | EFloat ->
              incr float_slots;
              Float_slot (!float_slots - 1)
        in
        Hashtbl.replace table name b
  in
  ignore params;
  let shared_slots = ref [] in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | Decl (Int, v, _) | Decl (Bool, v, _) -> add_var v EInt
        | Decl (Double, v, _) -> add_var v EFloat
        | Shared_decl (_, n, dims) ->
            if not (List.mem_assoc n !shared_slots) then
              shared_slots := !shared_slots @ [ (n, dims) ]
        | For l ->
            add_var l.index EInt;
            walk l.body
        | If (_, t, e) ->
            walk t;
            walk e
        | Assign _ | Syncthreads | Return -> ())
      stmts
  in
  walk body;
  (table, !int_slots, !float_slots, !shared_slots)

(* the flags are keyed by PARAMETER names; translate to host array names *)
let observed_usage st (kernel : kernel) args =
  let binding = bind_args kernel args in
  let host p = match List.assoc_opt p binding with Some (Arg_array h) -> Some h | _ -> None in
  let collect tbl =
    Hashtbl.fold (fun p r acc -> if !r then match host p with Some h -> h :: acc | None -> acc else acc) tbl []
    |> List.sort_uniq compare
  in
  (collect st.read_flags, collect st.write_flags)

let launch_ext mem prog (l : launch) =
  let kernel = find_kernel prog l.l_kernel in
  let bound = bind_args kernel l.l_args in
  let bx, by, bz = l.l_block in
  let gx, gy, gz = grid_of_launch l in
  let nthreads = bx * by * bz in
  if nthreads <= 0 then raise (Sim_error { kernel = l.l_kernel; message = "empty thread block" });
  let table, n_int, n_float, shared_decls =
    collect_scalar_slots kernel.k_name kernel.k_body kernel.k_params
  in
  (* parameters become constants / array bindings *)
  List.iter
    (fun (p, a) ->
      let b =
        match (p, a) with
        | _, Arg_array host -> (
            match Memory.get mem host with
            | data -> Global data
            | exception Not_found ->
                raise
                  (Sim_error
                     { kernel = kernel.k_name; message = "unknown device array " ^ host }))
        | _, Arg_int i -> Const_int i
        | _, Arg_double f -> Const_float f
      in
      Hashtbl.replace table p b)
    (List.map2 (fun p a -> (param_name p, a)) kernel.k_params l.l_args);
  ignore bound;
  List.iteri
    (fun i (n, dims) -> Hashtbl.replace table n (Shared (i, dims)))
    shared_decls;
  let shared_bytes =
    List.fold_left (fun acc (_, dims) -> acc + (8 * List.fold_left ( * ) 1 dims)) 0 shared_decls
  in
  let blocks = gx * gy * gz in
  let stats =
    {
      global_read_bytes = 0;
      global_write_bytes = 0;
      flops = 0.0;
      warp_cond_evals = 0;
      divergent_warp_cond_evals = 0;
      shared_hazards = 0;
      threads_launched = nthreads * blocks;
      threads_active = 0;
      shared_bytes_per_block = shared_bytes;
      blocks_launched = blocks;
    }
  in
  let txs = Array.init nthreads (fun t -> t mod bx)
  and tys = Array.init nthreads (fun t -> t / bx mod by)
  and tzs = Array.init nthreads (fun t -> t / (bx * by)) in
  let st =
    {
      kernel_name = kernel.k_name;
      bx; by; bz;
      nthreads;
      txs; tys; tzs;
      bix = 0; biy = 0; biz = 0;
      iregs = Array.init n_int (fun _ -> Array.make nthreads 0);
      fregs = Array.init n_float (fun _ -> Array.make nthreads 0.0);
      shmem = Array.of_list (List.map (fun (_, d) -> Array.make (List.fold_left ( * ) 1 d) 0.0) shared_decls);
      sh_writer = Array.of_list (List.map (fun (_, d) -> Array.make (List.fold_left ( * ) 1 d) (-1)) shared_decls);
      sh_epoch = Array.of_list (List.map (fun (_, d) -> Array.make (List.fold_left ( * ) 1 d) (-1)) shared_decls);
      epoch = 0;
      alive = Array.make nthreads true;
      stats;
      read_flags = Hashtbl.create 8;
      write_flags = Hashtbl.create 8;
    }
  in
  (* substitute blockDim/gridDim by constants before compiling *)
  let body =
    map_exprs_in_stmts
      (function
        | Builtin (Block_dim X) -> Int_lit bx
        | Builtin (Block_dim Y) -> Int_lit by
        | Builtin (Block_dim Z) -> Int_lit bz
        | Builtin (Grid_dim X) -> Int_lit gx
        | Builtin (Grid_dim Y) -> Int_lit gy
        | Builtin (Grid_dim Z) -> Int_lit gz
        | e -> e)
      kernel.k_body
  in
  let lookup v =
    match Hashtbl.find_opt table v with
    | Some b -> b
    | None -> err st (Printf.sprintf "unbound identifier %s" v)
  in
  let compiled = compile_stmts st lookup body in
  for biz = 0 to gz - 1 do
    for biy = 0 to gy - 1 do
      for bix = 0 to gx - 1 do
        st.bix <- bix;
        st.biy <- biy;
        st.biz <- biz;
        Array.fill st.alive 0 nthreads true;
        st.epoch <- 0;
        Array.iter (fun a -> Array.fill a 0 (Array.length a) 0.0) st.shmem;
        Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) st.sh_writer;
        Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) st.sh_epoch;
        exec_lockstep st compiled;
        Array.iter (fun alive -> if alive then stats.threads_active <- stats.threads_active + 1) st.alive
      done
    done
  done;
  (stats, observed_usage st kernel l.l_args)

let launch mem prog l = fst (launch_ext mem prog l)

let launch_with_usage = launch_ext

let run_schedule mem prog =
  List.filter_map
    (function
      | Launch l -> Some (l, launch mem prog l)
      | Copy_to_device _ | Copy_to_host _ -> None)
    prog.p_schedule
