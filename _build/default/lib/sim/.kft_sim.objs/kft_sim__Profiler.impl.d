lib/sim/profiler.ml: Interp Kft_analysis Kft_cuda List Memory Timing
