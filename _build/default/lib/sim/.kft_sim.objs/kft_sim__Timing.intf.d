lib/sim/timing.mli: Interp Kft_device
