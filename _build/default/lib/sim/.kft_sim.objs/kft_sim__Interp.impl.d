lib/sim/interp.ml: Array Float Hashtbl Kft_cuda List Memory Printf
