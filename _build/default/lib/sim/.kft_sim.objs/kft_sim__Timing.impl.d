lib/sim/timing.ml: Float Interp Kft_device
