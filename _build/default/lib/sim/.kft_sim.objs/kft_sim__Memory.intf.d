lib/sim/memory.mli: Kft_cuda
