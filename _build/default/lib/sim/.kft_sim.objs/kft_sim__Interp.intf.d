lib/sim/interp.mli: Kft_cuda Memory
