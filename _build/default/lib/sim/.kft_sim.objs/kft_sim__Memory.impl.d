lib/sim/memory.ml: Array Float Hashtbl Kft_cuda List
