lib/sim/profiler.mli: Interp Kft_analysis Kft_cuda Kft_device Memory Timing
