type input = {
  device : Kft_device.Device.t;
  stats : Interp.stats;
  block : int * int * int;
  regs_per_thread : int;
  dependent_chain : int;
}

type breakdown = {
  runtime_us : float;
  memory_time_us : float;
  compute_time_us : float;
  latency_time_us : float;
  occupancy : Kft_device.Occupancy.result;
  effective_bandwidth_gbs : float;
}

let bandwidth_saturation_occupancy = 0.45

(* each divergent warp-level conditional evaluation wastes roughly two
   32-lane transactions' worth of memory slots *)
let divergent_eval_cost_bytes = 256.0

let divergence_compute_penalty = 1.0

(* latency of one dependent arithmetic/load step, microseconds *)
let op_latency_us = 0.012

(* instruction-level parallelism assumed inside one thread *)
let intra_thread_ilp = 2.0

let evaluate { device = d; stats; block = (bx, by, bz); regs_per_thread; dependent_chain } =
  let block_threads = bx * by * bz in
  let occ =
    Kft_device.Occupancy.calculate d
      {
        block_threads;
        regs_per_thread;
        shared_per_block = stats.Interp.shared_bytes_per_block;
      }
  in
  let div = Interp.divergence_fraction stats in
  let bytes = float_of_int (stats.global_read_bytes + stats.global_write_bytes) in
  let bw_factor = Float.min 1.0 (occ.occupancy /. bandwidth_saturation_occupancy) in
  let bw_factor = Float.max bw_factor 0.05 in
  let divergence_bytes =
    float_of_int stats.divergent_warp_cond_evals *. divergent_eval_cost_bytes
  in
  let memory_time_us =
    (bytes +. divergence_bytes) /. (d.peak_bandwidth_gbs *. 1e3 *. bw_factor)
  in
  let compute_time_us =
    stats.flops /. (d.peak_gflops_double *. 1e3) *. (1.0 +. (divergence_compute_penalty *. div))
  in
  (* chain latency: each thread serially walks [dependent_chain] ops;
     concurrency across warps hides it *)
  let warps_per_block = (block_threads + d.warp_size - 1) / d.warp_size in
  let total_warps = stats.blocks_launched * warps_per_block in
  let warps_per_sm =
    Float.min
      (float_of_int occ.active_warps_per_sm)
      (float_of_int total_warps /. float_of_int d.sm_count)
  in
  let warps_per_sm = Float.max warps_per_sm 1.0 in
  let latency_time_us =
    let serial_rounds =
      float_of_int stats.threads_launched
      /. (float_of_int d.sm_count *. warps_per_sm *. float_of_int d.warp_size)
    in
    serial_rounds *. float_of_int dependent_chain *. op_latency_us /. intra_thread_ilp
  in
  let busy = Float.max memory_time_us (Float.max compute_time_us latency_time_us) in
  let runtime_us = d.kernel_launch_overhead_us +. busy in
  {
    runtime_us;
    memory_time_us;
    compute_time_us;
    latency_time_us;
    occupancy = occ;
    effective_bandwidth_gbs = (if runtime_us > 0.0 then bytes /. (runtime_us *. 1e3) else 0.0);
  }
