(** Analytic timing model for simulated kernel launches.

    The model is the memory-bound roofline the paper's performance
    projection builds on, with three architecture effects the evaluation
    depends on:

    - {b occupancy-dependent bandwidth}: DRAM bandwidth saturates only
      when enough warps are in flight; effective bandwidth scales with
      occupancy up to a saturation point (~45%). This is what makes
      thread-block tuning (Section 4.2) show through in runtimes.
    - {b divergence}: intra-warp divergent conditionals serialize both
      lanes; memory time and compute time are inflated by the measured
      divergent-warp fraction (the HOMME defect of Figure 7).
    - {b latency}: kernels with long serially-dependent operation chains
      and too few in-flight warps are limited by neither roof (the Fluam
      anomaly of Figure 8); a chain-latency term models them.

    Absolute times are synthetic; every evaluation result in
    EXPERIMENTS.md is a ratio of two such times. *)

type input = {
  device : Kft_device.Device.t;
  stats : Interp.stats;
  block : int * int * int;
  regs_per_thread : int;
  dependent_chain : int;  (** from {!Kft_analysis.Cost.of_kernel} *)
}

type breakdown = {
  runtime_us : float;
  memory_time_us : float;
  compute_time_us : float;
  latency_time_us : float;
  occupancy : Kft_device.Occupancy.result;
  effective_bandwidth_gbs : float;  (** achieved bytes / runtime *)
}

val bandwidth_saturation_occupancy : float
(** Occupancy at which effective bandwidth reaches peak (0.45). *)

val divergent_eval_cost_bytes : float
(** Memory-slot cost (bytes) charged per divergent warp-level
    conditional evaluation: finer-grained guard placement (the automated
    codegen of Figure 7) multiplies these evaluations. *)

val divergence_compute_penalty : float

val evaluate : input -> breakdown
