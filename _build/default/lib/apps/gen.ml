open Kft_cuda.Ast

type dims = { nx : int; ny : int; nz : int }

type built = {
  kernel : kernel;
  launch : launch;
  arrays : array_decl list;
}

let arr3 d name = { a_name = name; a_elem_ty = Double; a_dims = [ d.nx; d.ny; d.nz ] }

let arr1 n name = { a_name = name; a_elem_ty = Double; a_dims = [ n ] }

(* shared index helpers: i/j are thread coordinates, k the vertical loop *)
let vi = Var "i"
let vj = Var "j"

let plus a b =
  match (a, b) with
  | Int_lit 0, e | e, Int_lit 0 -> e
  | Int_lit x, Int_lit y -> Int_lit (x + y)
  | a, Int_lit n when n < 0 -> Binop (Sub, a, Int_lit (-n))
  | a, b -> Binop (Add, a, b)

(* ((z * ny) + y) * nx + x with symbolic dims nx/ny *)
let idx3 ~z ~y ~x = plus (Binop (Mul, plus (Binop (Mul, z, Var "ny")) y, Var "nx")) x

let cell ?(off = (0, 0, 0)) ~k array =
  let dx, dy, dz = off in
  Index (array, [ idx3 ~z:(plus k (Int_lit dz)) ~y:(plus vj (Int_lit dy)) ~x:(plus vi (Int_lit dx)) ])

let decl_ij =
  [
    Decl (Int, "i", Some (Binop (Add, Binop (Mul, Builtin (Block_idx X), Builtin (Block_dim X)), Builtin (Thread_idx X))));
    Decl (Int, "j", Some (Binop (Add, Binop (Mul, Builtin (Block_idx Y), Builtin (Block_dim Y)), Builtin (Thread_idx Y))));
  ]

let guard ?width ~mx ~my () =
  let x_upper =
    match width with
    | Some w -> Int_lit (w - mx)
    | None -> Binop (Sub, Var "nx", Int_lit mx)
  in
  let cs =
    (if mx > 0 then [ Binop (Ge, vi, Int_lit mx) ] else [])
    @ [ Binop (Lt, vi, x_upper) ]
    @ (if my > 0 then [ Binop (Ge, vj, Int_lit my) ] else [])
    @ [ Binop (Lt, vj, Binop (Sub, Var "ny", Int_lit my)) ]
  in
  match cs with [] -> Int_lit 1 | c :: rest -> List.fold_left (fun a b -> Binop (And, a, b)) c rest

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter (fun x -> if Hashtbl.mem seen x then false else (Hashtbl.replace seen x (); true)) l

(* an array appearing among both inputs and outputs is declared once,
   writable (a kernel parameter list cannot name a pointer twice) *)
let pure_ins ~ins ~outs = List.filter (fun a -> not (List.mem a outs)) (dedup ins)

let params ~ins ~outs =
  let outs = dedup outs in
  List.map
    (fun a -> Array_param { name = a; elem_ty = Double; quals = [ Const ] })
    (pure_ins ~ins ~outs)
  @ List.map (fun a -> Array_param { name = a; elem_ty = Double; quals = [] }) outs
  @ [
      Scalar_param { name = "nx"; ty = Int };
      Scalar_param { name = "ny"; ty = Int };
      Scalar_param { name = "nz"; ty = Int };
      Scalar_param { name = "c"; ty = Double };
    ]

let args d ~ins ~outs ~coef =
  List.map (fun a -> Arg_array a) (pure_ins ~ins ~outs @ dedup outs)
  @ [ Arg_int d.nx; Arg_int d.ny; Arg_int d.nz; Arg_double coef ]

let sum_exprs = function
  | [] -> Double_lit 0.0
  | e :: rest -> List.fold_left (fun a b -> Binop (Add, a, b)) e rest

let max_offsets offs =
  List.fold_left
    (fun (mx, my, mz) (dx, dy, dz) -> (max mx (abs dx), max my (abs dy), max mz (abs dz)))
    (0, 0, 0) offs

let stencil d ?width ?extra_out ~name ~out ~ins ?(coef = 0.25) ?(block = (16, 8)) () =
  let all_offs = List.concat_map snd ins in
  let mx, my, mz = max_offsets all_offs in
  let k = Var "k" in
  let reads =
    List.concat_map (fun (a, offs) -> List.map (fun off -> cell ~off ~k a) offs) ins
  in
  let stmts =
    Assign (Lindex (out, [ idx3 ~z:k ~y:vj ~x:vi ]), Binop (Mul, Var "c", sum_exprs reads))
    ::
    (match extra_out with
    | Some o ->
        [
          Assign
            ( Lindex (o, [ idx3 ~z:k ~y:vj ~x:vi ]),
              Binop (Mul, Binop (Mul, Var "c", Double_lit 0.5), sum_exprs (List.rev reads)) );
        ]
    | None -> [])
  in
  let body =
    decl_ij
    @ [
        If
          ( guard ?width ~mx ~my (),
            [
              For
                {
                  index = "k";
                  lo = Int_lit mz;
                  hi = Binop (Sub, Var "nz", Int_lit mz);
                  step = 1;
                  body = stmts;
                };
            ],
            [] );
      ]
  in
  let in_names = List.map fst ins in
  let bx, by = block in
  {
    kernel =
      {
        k_name = name;
        k_params = params ~ins:in_names ~outs:(out :: Option.to_list extra_out);
        k_body = body;
      };
    launch =
      {
        l_kernel = name;
        l_domain = ((match width with Some w -> w | None -> d.nx), d.ny, 1);
        l_block = (bx, by, 1);
        l_args = args d ~ins:in_names ~outs:(out :: Option.to_list extra_out) ~coef;
      };
    arrays = List.map (arr3 d) (in_names @ (out :: Option.to_list extra_out));
  }

let pointwise d ?width ~name ~out ~ins ?(coef = 0.5) ?(block = (16, 8)) () =
  stencil d ?width ~name ~out ~ins:(List.map (fun a -> (a, [ (0, 0, 0) ])) ins) ~coef ~block ()

let boundary d ~name ~out ~src ?(plane = 0) ?(block = (16, 8)) () =
  let inner = if plane = 0 then 1 else plane - 1 in
  let body =
    decl_ij
    @ [
        If
          ( Binop (And, Binop (Lt, vi, Var "nx"), Binop (Lt, vj, Var "ny")),
            [
              Assign
                ( Lindex (out, [ idx3 ~z:(Int_lit plane) ~y:vj ~x:vi ]),
                  Binop (Mul, Var "c", Index (src, [ idx3 ~z:(Int_lit inner) ~y:vj ~x:vi ])) );
            ],
            [] );
      ]
  in
  let bx, by = block in
  {
    kernel = { k_name = name; k_params = params ~ins:[ src ] ~outs:[ out ]; k_body = body };
    launch =
      {
        l_kernel = name;
        l_domain = (d.nx, d.ny, 1);
        l_block = (bx, by, 1);
        l_args = args d ~ins:[ src ] ~outs:[ out ] ~coef:0.99;
      };
    arrays = [ arr3 d src; arr3 d out ];
  }

let compute_bound d ~name ~out ~src ?(terms = 32) ?(block = (16, 8)) () =
  let k = Var "k" in
  (* one load feeding many independent FMA chains: operational intensity
     well above the Roofline ridge *)
  let temps =
    List.init terms (fun t ->
        Decl
          ( Double,
            Printf.sprintf "t%d" t,
            Some
              (Binop
                 ( Add,
                   Binop (Mul, Var "x", Double_lit (1.0 +. (0.01 *. float_of_int t))),
                   Double_lit (0.5 *. float_of_int t) )) ))
  in
  let total = sum_exprs (List.init terms (fun t -> Var (Printf.sprintf "t%d" t))) in
  let body =
    decl_ij
    @ [
        If
          ( guard ~mx:0 ~my:0 (),
            [
              For
                {
                  index = "k";
                  lo = Int_lit 0;
                  hi = Var "nz";
                  step = 1;
                  body =
                    (Decl (Double, "x", Some (cell ~k src)) :: temps)
                    @ [ Assign (Lindex (out, [ idx3 ~z:k ~y:vj ~x:vi ]), Binop (Mul, Var "c", total)) ];
                };
            ],
            [] );
      ]
  in
  let bx, by = block in
  {
    kernel = { k_name = name; k_params = params ~ins:[ src ] ~outs:[ out ]; k_body = body };
    launch =
      {
        l_kernel = name;
        l_domain = (d.nx, d.ny, 1);
        l_block = (bx, by, 1);
        l_args = args d ~ins:[ src ] ~outs:[ out ] ~coef:0.001;
      };
    arrays = [ arr3 d src; arr3 d out ];
  }

let latency_bound ~cells ~name ~out ~src ?(hash_rounds = 28) () =
  (* integer hash chain: serially dependent address computation, almost
     no floating point -> low operational intensity, latency-limited *)
  let body =
    [
      Decl (Int, "i", Some (Binop (Add, Binop (Mul, Builtin (Block_idx X), Builtin (Block_dim X)), Builtin (Thread_idx X))));
      If
        ( Binop (Lt, vi, Var "nx"),
          [
            Decl (Int, "h", Some vi);
            For
              {
                index = "p";
                lo = Int_lit 0;
                hi = Int_lit hash_rounds;
                step = 1;
                body =
                  [
                    (* 7 dependent integer ops per round *)
                    Assign (Lvar "h", Binop (Add, Binop (Mul, Var "h", Int_lit 1103515245), Int_lit 12345));
                    Assign (Lvar "h", Binop (Mod, Var "h", Int_lit 1048576));
                    Assign (Lvar "h", Binop (Add, Var "h", Binop (Div, Var "h", Int_lit 3)));
                    Assign (Lvar "h", Binop (Mod, Var "h", Var "nx"));
                  ];
              };
            (* the hash result perturbs the value, not the address, so the
               access pattern stays canonical while the dependent integer
               chain dominates the runtime *)
            Assign
              ( Lindex (out, [ vi ]),
                Binop
                  ( Add,
                    Index (src, [ vi ]),
                    Binop (Mul, Var "c", Binop (Mul, Var "h", Double_lit 1e-9)) ) );
          ],
          [] );
    ]
  in
  let params =
    [
      Array_param { name = src; elem_ty = Double; quals = [ Const ] };
      Array_param { name = out; elem_ty = Double; quals = [] };
      Scalar_param { name = "nx"; ty = Int };
      Scalar_param { name = "c"; ty = Double };
    ]
  in
  {
    kernel = { k_name = name; k_params = params; k_body = body };
    launch =
      {
        l_kernel = name;
        l_domain = (cells, 1, 1);
        l_block = (32, 1, 1);
        l_args = [ Arg_array src; Arg_array out; Arg_int cells; Arg_double 0.125 ];
      };
    arrays = [ arr1 cells src; arr1 cells out ];
  }

let deep_nest d ~name ~out ~band_in ~plane_ins ?(band = 3) ?(coef = 0.2) ?(block = (16, 8)) () =
  let k = Var "k" in
  let plane_reads = List.map (fun a -> cell ~k a) plane_ins in
  let body =
    decl_ij
    @ [
        If
          ( guard ~mx:0 ~my:0 (),
            [
              For
                {
                  index = "k";
                  lo = Int_lit 0;
                  hi = Binop (Sub, Var "nz", Int_lit (band - 1));
                  step = 1;
                  body =
                    [
                      Decl (Double, "acc", Some (Double_lit 0.0));
                      For
                        {
                          index = "m";
                          lo = Int_lit 0;
                          hi = Int_lit band;
                          step = 1;
                          body =
                            [
                              Assign
                                ( Lvar "acc",
                                  Binop
                                    ( Add,
                                      Var "acc",
                                      Index
                                        ( band_in,
                                          [ idx3 ~z:(plus k (Var "m")) ~y:vj ~x:vi ] ) ) );
                            ];
                        };
                      Assign
                        ( Lindex (out, [ idx3 ~z:k ~y:vj ~x:vi ]),
                          Binop (Mul, Var "c", Binop (Add, Var "acc", sum_exprs plane_reads)) );
                    ];
                };
            ],
            [] );
      ]
  in
  let ins = band_in :: plane_ins in
  let bx, by = block in
  {
    kernel = { k_name = name; k_params = params ~ins ~outs:[ out ]; k_body = body };
    launch =
      {
        l_kernel = name;
        l_domain = (d.nx, d.ny, 1);
        l_block = (bx, by, 1);
        l_args = args d ~ins ~outs:[ out ] ~coef;
      };
    arrays = List.map (arr3 d) (ins @ [ out ]);
  }

let multi_output d ?width ~name ~groups ?(coef = 0.3) ?(block = (32, 8)) () =
  let all_offs = List.concat_map (fun (_, _, offs) -> offs) groups in
  let mx, my, mz = max_offsets all_offs in
  let k = Var "k" in
  let stmts =
    List.map
      (fun (out, ins, offs) ->
        let reads = List.concat_map (fun a -> List.map (fun off -> cell ~off ~k a) offs) ins in
        Assign (Lindex (out, [ idx3 ~z:k ~y:vj ~x:vi ]), Binop (Mul, Var "c", sum_exprs reads)))
      groups
  in
  let body =
    decl_ij
    @ [
        If
          ( guard ?width ~mx ~my (),
            [
              For
                {
                  index = "k";
                  lo = Int_lit mz;
                  hi = Binop (Sub, Var "nz", Int_lit mz);
                  step = 1;
                  body = stmts;
                };
            ],
            [] );
      ]
  in
  let ins = List.concat_map (fun (_, ins, _) -> ins) groups in
  let outs = List.map (fun (o, _, _) -> o) groups in
  let bx, by = block in
  {
    kernel = { k_name = name; k_params = params ~ins ~outs; k_body = body };
    launch =
      {
        l_kernel = name;
        l_domain = (d.nx, d.ny, 1);
        l_block = (bx, by, 1);
        l_args = args d ~ins ~outs ~coef;
      };
    arrays = List.map (arr3 d) (ins @ outs);
  }
