(** Kernel-construction combinators for the synthetic evaluation
    applications.

    Each builder emits a kernel in the canonical form the paper's
    frontend supports (2D horizontal grid mapping, vertical loop) plus
    the launch record binding it to device arrays. The kernel kinds map
    one-to-one onto the kernel populations described in Section 6.1.1:
    interior stencil sweeps, pointwise updates, boundary-condition
    kernels, compute-bound kernels, latency-bound kernels (integer
    address-computation chains), deep loop nests (vertical bands), and
    large "already-fused" kernels with separable array groups. *)

type dims = { nx : int; ny : int; nz : int }

type built = {
  kernel : Kft_cuda.Ast.kernel;
  launch : Kft_cuda.Ast.launch;
  arrays : Kft_cuda.Ast.array_decl list;  (** arrays this kernel introduces (dedup upstream) *)
}

val arr3 : dims -> string -> Kft_cuda.Ast.array_decl
(** 3D field sized to the grid. *)

val arr1 : int -> string -> Kft_cuda.Ast.array_decl

val stencil :
  dims ->
  ?width:int ->
  ?extra_out:string ->
  name:string ->
  out:string ->
  ins:(string * (int * int * int) list) list ->
  ?coef:float ->
  ?block:int * int ->
  unit ->
  built
(** Interior stencil sweep: guard margins derived from the offsets, a
    vertical loop, one output cell per thread. *)

val pointwise :
  dims ->
  ?width:int ->
  name:string ->
  out:string ->
  ins:string list ->
  ?coef:float ->
  ?block:int * int ->
  unit ->
  built
(** Zero-radius update ([out = c * (in0 + in1 + ...)] per cell). *)

val boundary :
  dims ->
  name:string ->
  out:string ->
  src:string ->
  ?plane:int ->
  ?block:int * int ->
  unit ->
  built
(** Copies/damps one z-plane — the boundary-condition kernels the target
    filter must exclude (coverage 1/nz). *)

val compute_bound :
  dims ->
  name:string ->
  out:string ->
  src:string ->
  ?terms:int ->
  ?block:int * int ->
  unit ->
  built
(** One load feeding many independent FMA chains per cell: operational
    intensity above the Roofline ridge. [terms] controls FLOPs per cell
    (default 32 ~ 96 flops vs 16 bytes, intensity 6). *)

val latency_bound :
  cells:int ->
  name:string ->
  out:string ->
  src:string ->
  ?hash_rounds:int ->
  unit ->
  built
(** 1D kernel whose per-thread work is a long serially-dependent integer
    hash chain (address computation), launched in one-warp blocks: low
    operational intensity (looks memory-bound to the Roofline filter)
    but limited by latency — the Fluam anomaly of Figure 8. *)

val deep_nest :
  dims ->
  name:string ->
  out:string ->
  band_in:string ->
  plane_ins:string list ->
  ?band:int ->
  ?coef:float ->
  ?block:int * int ->
  unit ->
  built
(** Vertical-band integration: an outer vertical loop with an inner loop
    summing [band_in] over a z-band, combined with zero-radius reads of
    [plane_ins]. Loop-nest depth 2: the kernels behind the SCALE-LES
    auto-codegen gap (Figure 6). *)

val multi_output :
  dims ->
  ?width:int ->
  name:string ->
  groups:(string * string list * (int * int * int) list) list ->
  ?coef:float ->
  ?block:int * int ->
  unit ->
  built
(** Large "already-fused" kernel: each [(out, ins, offsets)] group is a
    separable computation (disjoint arrays), so Algorithm 2 can fission
    it — the AWP-ODC / B-CALM shape. *)
