lib/apps/gen.ml: Hashtbl Kft_cuda List Option Printf
