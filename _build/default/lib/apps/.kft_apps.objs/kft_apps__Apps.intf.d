lib/apps/apps.mli: Gen Kft_cuda Kft_device
