lib/apps/gen.mli: Kft_cuda
