lib/apps/apps.ml: Array Gen Hashtbl Kft_cuda Kft_device List Printf String
