open Kft_cuda.Ast

type part = {
  part_kernel : kernel;
  part_arrays : string list;
}

type plan = {
  original : kernel;
  parts : part list;
}

let fissionable k = List.length (Kft_analysis.Deps.separable_groups k) >= 2

(* deterministic LCG shuffle, mirroring Algorithm 2's random root picks *)
let shuffle seed l =
  let arr = Array.of_list l in
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for i = Array.length arr - 1 downto 1 do
    let j = next () mod (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Scalar variables transitively needed to evaluate a set of statements:
   start from variables read by kept statements, then pull in the decls
   and scalar assignments defining them (walking backwards). *)
let used_vars_of_expr e =
  fold_expr (fun acc x -> match x with Var v -> v :: acc | _ -> acc) [] e

let rec prune_stmts keep_arrays needed stmts =
  (* process in reverse so that uses seen later mark earlier decls as needed *)
  let rev = List.rev stmts in
  let kept = ref [] in
  let needed = ref needed in
  let mark_expr e = needed := used_vars_of_expr e @ !needed in
  List.iter
    (fun s ->
      match s with
      | Assign (Lindex (a, idxs), e) ->
          if List.mem a keep_arrays then begin
            List.iter mark_expr idxs;
            mark_expr e;
            kept := s :: !kept
          end
      | Assign (Lvar v, e) ->
          if List.mem v !needed then begin
            mark_expr e;
            kept := s :: !kept
          end
      | Decl (_, v, init) ->
          if List.mem v !needed then begin
            (match init with Some e -> mark_expr e | None -> ());
            kept := s :: !kept
          end
      | Shared_decl (_, n, _) -> if List.mem n keep_arrays || List.mem n !needed then kept := s :: !kept
      | If (c, t, e) ->
          let t' = prune_stmts keep_arrays !needed t in
          let e' = prune_stmts keep_arrays !needed e in
          if t' <> [] || e' <> [] then begin
            mark_expr c;
            (* variables used inside the kept branches must be kept too *)
            needed := vars_used_in t' @ vars_used_in e' @ !needed;
            kept := If (c, t', e') :: !kept
          end
      | For l ->
          let body' = prune_stmts keep_arrays !needed l.body in
          if body' <> [] then begin
            mark_expr l.lo;
            mark_expr l.hi;
            needed := vars_used_in body' @ !needed;
            kept := For { l with body = body' } :: !kept
          end
      | Syncthreads -> kept := s :: !kept
      | Return -> kept := s :: !kept)
    rev;
  (* drop leading/trailing barriers that guard nothing *)
  !kept

and vars_used_in stmts = fold_exprs_in_stmts (fun acc e -> used_vars_of_expr e @ acc) [] stmts

(* remove barriers made redundant: a Syncthreads with no shared-memory
   statement somewhere before AND after it in the same block *)
let cleanup_barriers stmts =
  let touches_shared shared s =
    fold_stmts
      (fun acc s ->
        acc
        ||
        match s with
        | Assign (Lindex (a, _), _) when List.mem a shared -> true
        | Assign (_, e) | Decl (_, _, Some e) ->
            fold_expr
              (fun acc e -> acc || match e with Index (a, _) -> List.mem a shared | _ -> false)
              false e
        | _ -> false)
      false [ s ]
  in
  let shared =
    fold_stmts (fun acc s -> match s with Shared_decl (_, n, _) -> n :: acc | _ -> acc) [] stmts
  in
  let rec go before = function
    | [] -> []
    | Syncthreads :: rest ->
        let after_has = List.exists (touches_shared shared) rest in
        if before && after_has then Syncthreads :: go false rest else go before rest
    | s :: rest -> s :: go (before || touches_shared shared s) rest
  in
  let rec fix stmts =
    let stmts' =
      List.map
        (function
          | If (c, t, e) -> If (c, fix t, fix e)
          | For l -> For { l with body = fix l.body }
          | s -> s)
        stmts
    in
    go false stmts'
  in
  fix stmts

let part_of_group original idx group =
  let body = prune_stmts group [] original.k_body in
  let body = cleanup_barriers body in
  let used = vars_used_in body @ group in
  let arrays_touched =
    Kft_cuda.Ast.arrays_read body @ Kft_cuda.Ast.arrays_written body
  in
  let params =
    List.filter
      (fun p ->
        match p with
        | Array_param { name; _ } -> List.mem name arrays_touched
        | Scalar_param { name; _ } -> List.mem name used)
      original.k_params
  in
  {
    part_kernel =
      { k_name = Printf.sprintf "%s__f%d" original.k_name (idx + 1); k_params = params; k_body = body };
    part_arrays = group;
  }

let plan ?(seed = 1) k =
  let groups = Kft_analysis.Deps.separable_groups k in
  if List.length groups < 2 then None
  else
    let groups = shuffle seed groups in
    Some { original = k; parts = List.mapi (part_of_group k) groups }

let split_launch k plan (l : launch) =
  if l.l_kernel <> k.k_name || plan.original.k_name <> k.k_name then
    invalid_arg "Fission.split_launch: launch does not match plan";
  let binding = bind_args k l.l_args in
  List.map
    (fun part ->
      let args =
        List.map
          (fun p ->
            match List.assoc_opt (param_name p) binding with
            | Some a -> a
            | None -> invalid_arg ("Fission.split_launch: unbound param " ^ param_name p))
          part.part_kernel.k_params
      in
      { l_kernel = part.part_kernel.k_name; l_domain = l.l_domain; l_block = l.l_block; l_args = args })
    plan.parts

let apply_to_program ~plans prog =
  let kernels =
    List.concat_map
      (fun k ->
        match List.assoc_opt k.k_name plans with
        | Some p -> List.map (fun part -> part.part_kernel) p.parts
        | None -> [ k ])
      prog.p_kernels
  in
  let schedule =
    List.concat_map
      (fun op ->
        match op with
        | Launch l -> (
            match List.assoc_opt l.l_kernel plans with
            | Some p -> List.map (fun l' -> Launch l') (split_launch (find_kernel prog l.l_kernel) p l)
            | None -> [ op ])
        | op -> [ op ])
      prog.p_schedule
  in
  { prog with p_kernels = kernels; p_schedule = schedule }

let iterate_plan ?(seed = 1) k =
  match plan ~seed k with
  | None -> None
  | Some p ->
      let rec expand part =
        match plan ~seed part.part_kernel with
        | None -> [ part ]
        | Some sub ->
            List.concat_map
              (fun sp -> expand { sp with part_arrays = sp.part_arrays })
              sub.parts
      in
      let parts = List.concat_map expand p.parts in
      (* renumber *)
      let parts =
        List.mapi
          (fun i part ->
            {
              part with
              part_kernel =
                { part.part_kernel with k_name = Printf.sprintf "%s__f%d" k.k_name (i + 1) };
            })
          parts
      in
      Some { original = k; parts }
