lib/fission/fission.ml: Array Kft_analysis Kft_cuda List Printf
