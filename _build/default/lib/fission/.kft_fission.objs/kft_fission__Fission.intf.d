lib/fission/fission.mli: Kft_cuda
