(** Kernel fission (Section 4.1, Algorithm 2).

    A kernel is split into sub-kernels such that each data array — and
    every operation acting on it — lives in exactly one sub-kernel. The
    partition is given by the connected components of the array
    dependence graph ({!Kft_analysis.Deps}); a kernel whose graph is
    connected has no separable arrays and is not fissionable.

    Algorithm 2 enumerates components by BFS from random roots; the
    resulting component sets are independent of the root order, but we
    honour the seeded shuffle so the part *numbering* follows the
    algorithm faithfully. *)

type part = {
  part_kernel : Kft_cuda.Ast.kernel;
  part_arrays : string list;  (** array parameter names owned by this part *)
}

type plan = {
  original : Kft_cuda.Ast.kernel;
  parts : part list;  (** two or more; in (seeded) component order *)
}

val fissionable : Kft_cuda.Ast.kernel -> bool
(** True when the array dependence graph has >= 2 components. *)

val plan : ?seed:int -> Kft_cuda.Ast.kernel -> plan option
(** [None] when the kernel is not fissionable. Part [i] is named
    ["<kernel>__f<i>"]. Each part keeps the original control skeleton
    (guards, loops) restricted to the statements touching its arrays;
    scalar declarations not used by the kept statements are pruned;
    unreferenced parameters are dropped. *)

val split_launch : Kft_cuda.Ast.kernel -> plan -> Kft_cuda.Ast.launch -> Kft_cuda.Ast.launch list
(** Rewrite a launch of the original kernel into the launches of its
    parts (same domain and block; argument lists filtered per part).
    Raises [Invalid_argument] when the launch does not invoke the
    plan's original kernel. *)

val apply_to_program : plans:(string * plan) list -> Kft_cuda.Ast.program -> Kft_cuda.Ast.program
(** Replace each planned kernel by its parts, rewriting the schedule. *)

val iterate_plan : ?seed:int -> Kft_cuda.Ast.kernel -> plan option
(** Apply fission iteratively until no part has separable arrays left
    (the paper applies fission "iteratively as long as there is at least
    one separable data array", Section 5.5). With the component-based
    split a single pass is already maximal; this entry point re-checks
    and re-splits parts defensively and is used by tests as an oracle. *)
