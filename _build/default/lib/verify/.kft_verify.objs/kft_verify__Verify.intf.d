lib/verify/verify.mli: Kft_codegen Kft_cuda
