lib/verify/verify.ml: Array Hashtbl Kft_analysis Kft_codegen Kft_cuda Kft_ddg List Option Printf Set String
