(** Abstract syntax for the CUDA C subset the framework transforms.

    The paper restricts supported inputs to stencil kernels over dense
    Cartesian grids with the common mapping: the CUDA grid covers the
    horizontal plane, a loop iterates the vertical dimension
    (Section 7, "Limitations"). The AST mirrors that subset:

    - kernels are [__global__ void] functions over pointer + scalar
      parameters;
    - statements are declarations, (compound) assignments, [if]/[else],
      canonical [for] loops ([for (int v = lo; v < hi; v += s)]),
      [__shared__] declarations with constant extents, [__syncthreads()]
      and [return];
    - expressions are arithmetic/logic over scalars, array indexing and
      a few math builtins.

    A {!program} couples the kernels with a host model: device arrays,
    scalar bindings and an invocation schedule. *)

type scalar_ty = Int | Double | Bool

type dim = X | Y | Z

type builtin_var = Thread_idx of dim | Block_idx of dim | Block_dim of dim | Grid_dim of dim

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Double_lit of float
  | Var of string
  | Builtin of builtin_var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of string * expr list
      (** [Index (a, idxs)]: [a\[i0\]\[i1\]...]. Global arrays use a single
          linearized index; shared arrays use one index per declared
          dimension. *)
  | Call of string * expr list  (** math builtins: sqrt, fabs, min, max, exp, pow, fma *)
  | Ternary of expr * expr * expr

type lvalue = Lvar of string | Lindex of string * expr list

type stmt =
  | Decl of scalar_ty * string * expr option  (** [double t = e;] *)
  | Shared_decl of scalar_ty * string * int list  (** [__shared__ double s\[NY\]\[NX\];] *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of for_loop
  | Syncthreads
  | Return

and for_loop = {
  index : string;
  lo : expr;
  hi : expr;  (** exclusive upper bound: [index < hi] *)
  step : int;
  body : stmt list;
}

type qualifier = Const | Restrict

type param =
  | Array_param of { name : string; elem_ty : scalar_ty; quals : qualifier list }
  | Scalar_param of { name : string; ty : scalar_ty }

type kernel = { k_name : string; k_params : param list; k_body : stmt list }

(** {1 Host model} *)

type array_decl = { a_name : string; a_elem_ty : scalar_ty; a_dims : int list }
(** Device-resident global array; [a_dims] is [\[nx; ny; nz\]] (innermost
    first: the linear index of (i,j,k) is [(k*ny + j)*nx + i]). *)

type arg =
  | Arg_array of string  (** host array name bound to a pointer param *)
  | Arg_int of int
  | Arg_double of float

type launch = {
  l_kernel : string;
  l_domain : int * int * int;  (** iteration domain covered by the CUDA grid *)
  l_block : int * int * int;
  l_args : arg list;
}

type host_op = Launch of launch | Copy_to_device of string | Copy_to_host of string

type program = {
  p_name : string;
  p_arrays : array_decl list;
  p_kernels : kernel list;
  p_schedule : host_op list;
}

(** {1 Utilities} *)

val grid_of_launch : launch -> int * int * int
(** Number of blocks per grid dimension: ceil-division of the launch
    domain by the block shape. *)

val find_kernel : program -> string -> kernel
(** Raises [Not_found]. *)

val find_array : program -> string -> array_decl

val array_cells : array_decl -> int

val scalar_bytes : scalar_ty -> int

val param_name : param -> string

val bind_args : kernel -> arg list -> (string * arg) list
(** Pair parameter names with launch arguments. Raises [Invalid_argument]
    on arity mismatch. *)

val map_expr : (expr -> expr) -> expr -> expr
(** Bottom-up rewriting: children first, then the node itself. *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

val map_stmts : (stmt -> stmt) -> stmt list -> stmt list
(** Bottom-up over statement trees (children first). *)

val fold_stmts : ('a -> stmt -> 'a) -> 'a -> stmt list -> 'a

val map_exprs_in_stmts : (expr -> expr) -> stmt list -> stmt list
(** Apply {!map_expr} to every expression position, including loop bounds
    and lvalue indices. *)

val fold_exprs_in_stmts : ('a -> expr -> 'a) -> 'a -> stmt list -> 'a
(** Fold over top-level expression positions (not their sub-expressions);
    combine with {!fold_expr} to reach leaves. *)

val rename_var : old:string -> fresh:string -> stmt list -> stmt list
(** Rename a scalar variable everywhere (declarations, uses, loop
    indices). Array names are not touched. *)

val rename_array : old:string -> fresh:string -> stmt list -> stmt list
(** Rename an array in every [Index]/[Lindex] position. *)

val arrays_read : stmt list -> string list
(** Names appearing in [Index] read position, deduplicated, in first-use
    order. Includes shared arrays; filter by the kernel's parameters to
    get global arrays only. *)

val arrays_written : stmt list -> string list

val referenced_arrays : kernel -> string list
(** Array parameters of the kernel actually used in its body. *)

val equal_expr : expr -> expr -> bool

val equal_stmts : stmt list -> stmt list -> bool

val equal_kernel : kernel -> kernel -> bool
