(** Semantic validation of kernels and programs.

    The parser accepts anything syntactically in the subset; this module
    performs the frontend's semantic checks before a program enters the
    transformation pipeline: identifier resolution, duplicate
    declarations, arity and binding of launches, and the structural
    restrictions the paper places on supported kernels (no barrier under
    a thread-dependent conditional is checked dynamically by the
    simulator; everything statically checkable is here). *)

type error = {
  where : string;  (** kernel or launch the error was found in *)
  what : string;
}

val pp_error : error -> string

val kernel : Ast.kernel -> error list
(** Checks on one kernel:
    - every identifier is a parameter, a declared local, a loop index or
      a shared array;
    - no identifier is declared twice in the same scope chain;
    - scalars are not indexed and arrays are not used as scalars;
    - shared arrays are indexed with exactly their declared rank and
      global (pointer-parameter) arrays with a single linear index;
    - array parameters declared [const] are never written;
    - [__shared__] declarations have positive extents. *)

val program : Ast.program -> error list
(** All kernel checks, plus:
    - kernel names are unique and arrays are declared once;
    - every launch names a defined kernel with matching arity;
    - array arguments are declared device arrays and scalar arguments
      match the parameter's type;
    - launch domains and blocks are positive and blocks respect a
      1024-thread ceiling. *)
