(** Semantic validation of kernels and programs.

    The parser accepts anything syntactically in the subset; this module
    performs the frontend's semantic checks before a program enters the
    transformation pipeline: identifier resolution, duplicate
    declarations, arity and binding of launches, and the structural
    restrictions the paper places on supported kernels (no barrier under
    a thread-dependent conditional is checked dynamically by the
    simulator; everything statically checkable is here). *)

type error = {
  where : string;  (** kernel or launch the error was found in *)
  loc : Loc.pos;  (** source position of the offending statement, or {!Loc.none} *)
  what : string;
}

val pp_error : error -> string
(** Uniform [where:what] rendering; [where:line:col:what] when a source
    position is known. *)

val dedupe : error list -> error list
(** Drop exact duplicates (same kernel, position and message), keeping
    first-occurrence order. Applied by {!kernel} and {!program}
    already; exposed for callers that merge several reports. *)

val kernel : Ast.kernel -> error list
(** Checks on one kernel:
    - every identifier is a parameter, a declared local, a loop index or
      a shared array;
    - no identifier is declared twice in the same scope chain;
    - scalars are not indexed and arrays are not used as scalars;
    - shared arrays are indexed with exactly their declared rank and
      global (pointer-parameter) arrays with a single linear index;
    - array parameters declared [const] are never written;
    - [__shared__] declarations have positive extents;
    - no [__syncthreads()] sits under a statically thread-dependent
      conditional or inside a loop whose trip count depends on
      [threadIdx] (the statically-detectable core of barrier
      divergence; the full analysis lives in [Kft_verify]). *)

val program : Ast.program -> error list
(** All kernel checks, plus:
    - kernel names are unique and arrays are declared once;
    - every launch names a defined kernel with matching arity;
    - array arguments are declared device arrays and scalar arguments
      match the parameter's type;
    - launch domains and blocks are positive and blocks respect a
      1024-thread ceiling. *)
