type scalar_ty = Int | Double | Bool

type dim = X | Y | Z

type builtin_var = Thread_idx of dim | Block_idx of dim | Block_dim of dim | Grid_dim of dim

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Double_lit of float
  | Var of string
  | Builtin of builtin_var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of string * expr list
  | Call of string * expr list
  | Ternary of expr * expr * expr

type lvalue = Lvar of string | Lindex of string * expr list

type stmt =
  | Decl of scalar_ty * string * expr option
  | Shared_decl of scalar_ty * string * int list
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of for_loop
  | Syncthreads
  | Return

and for_loop = {
  index : string;
  lo : expr;
  hi : expr;
  step : int;
  body : stmt list;
}

type qualifier = Const | Restrict

type param =
  | Array_param of { name : string; elem_ty : scalar_ty; quals : qualifier list }
  | Scalar_param of { name : string; ty : scalar_ty }

type kernel = { k_name : string; k_params : param list; k_body : stmt list }

type array_decl = { a_name : string; a_elem_ty : scalar_ty; a_dims : int list }

type arg =
  | Arg_array of string
  | Arg_int of int
  | Arg_double of float

type launch = {
  l_kernel : string;
  l_domain : int * int * int;
  l_block : int * int * int;
  l_args : arg list;
}

type host_op = Launch of launch | Copy_to_device of string | Copy_to_host of string

type program = {
  p_name : string;
  p_arrays : array_decl list;
  p_kernels : kernel list;
  p_schedule : host_op list;
}

let cdiv a b = (a + b - 1) / b

let grid_of_launch l =
  let dx, dy, dz = l.l_domain and bx, by, bz = l.l_block in
  (cdiv dx bx, cdiv dy by, cdiv dz bz)

let find_kernel p name = List.find (fun k -> k.k_name = name) p.p_kernels

let find_array p name = List.find (fun a -> a.a_name = name) p.p_arrays

let array_cells a = List.fold_left ( * ) 1 a.a_dims

let scalar_bytes = function Int -> 4 | Double -> 8 | Bool -> 1

let param_name = function
  | Array_param { name; _ } -> name
  | Scalar_param { name; _ } -> name

let bind_args k args =
  if List.length k.k_params <> List.length args then
    invalid_arg
      (Printf.sprintf "bind_args: kernel %s expects %d args, got %d" k.k_name
         (List.length k.k_params) (List.length args));
  List.map2 (fun p a -> (param_name p, a)) k.k_params args

let rec map_expr f e =
  let e' =
    match e with
    | Int_lit _ | Double_lit _ | Var _ | Builtin _ -> e
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Index (a, idxs) -> Index (a, List.map (map_expr f) idxs)
    | Call (fn, args) -> Call (fn, List.map (map_expr f) args)
    | Ternary (c, a, b) -> Ternary (map_expr f c, map_expr f a, map_expr f b)
  in
  f e'

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Double_lit _ | Var _ | Builtin _ -> acc
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) -> fold_expr f acc a
  | Index (_, idxs) | Call (_, idxs) -> List.fold_left (fold_expr f) acc idxs
  | Ternary (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b

let rec map_stmt f s =
  let s' =
    match s with
    | Decl _ | Shared_decl _ | Assign _ | Syncthreads | Return -> s
    | If (c, t, e) -> If (c, map_stmts f t, map_stmts f e)
    | For l -> For { l with body = map_stmts f l.body }
  in
  f s'

and map_stmts f stmts = List.map (map_stmt f) stmts

let rec fold_stmt f acc s =
  let acc = f acc s in
  match s with
  | Decl _ | Shared_decl _ | Assign _ | Syncthreads | Return -> acc
  | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
  | For l -> fold_stmts f acc l.body

and fold_stmts f acc stmts = List.fold_left (fold_stmt f) acc stmts

let map_exprs_in_stmts f stmts =
  let fe = map_expr f in
  let on_stmt = function
    | Decl (ty, n, init) -> Decl (ty, n, Option.map fe init)
    | Assign (Lvar v, e) -> Assign (Lvar v, fe e)
    | Assign (Lindex (a, idxs), e) -> Assign (Lindex (a, List.map fe idxs), fe e)
    | If (c, t, e) -> If (fe c, t, e)
    | For l -> For { l with lo = fe l.lo; hi = fe l.hi }
    | (Shared_decl _ | Syncthreads | Return) as s -> s
  in
  map_stmts on_stmt stmts

let fold_exprs_in_stmts f acc stmts =
  fold_stmts
    (fun acc s ->
      match s with
      | Decl (_, _, Some e) -> f acc e
      | Decl (_, _, None) -> acc
      | Assign (Lvar _, e) -> f acc e
      | Assign (Lindex (_, idxs), e) -> f (List.fold_left f acc idxs) e
      | If (c, _, _) -> f acc c
      | For l -> f (f acc l.lo) l.hi
      | Shared_decl _ | Syncthreads | Return -> acc)
    acc stmts

let rename_var ~old ~fresh stmts =
  let fix_expr = map_expr (function Var v when v = old -> Var fresh | e -> e) in
  let on_stmt = function
    | Decl (ty, n, init) when n = old -> Decl (ty, fresh, init)
    | Assign (Lvar v, e) when v = old -> Assign (Lvar fresh, e)
    | For l when l.index = old -> For { l with index = fresh }
    | s -> s
  in
  map_stmts on_stmt (map_exprs_in_stmts (fun e -> fix_expr e) stmts)

let rename_array ~old ~fresh stmts =
  let fix = map_expr (function Index (a, idxs) when a = old -> Index (fresh, idxs) | e -> e) in
  let on_stmt = function
    | Assign (Lindex (a, idxs), e) when a = old -> Assign (Lindex (fresh, idxs), e)
    | Shared_decl (ty, n, dims) when n = old -> Shared_decl (ty, fresh, dims)
    | s -> s
  in
  map_stmts on_stmt (map_exprs_in_stmts (fun e -> fix e) stmts)

let dedup_keep_order names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.replace seen n ();
        true
      end)
    names

let arrays_read stmts =
  let reads_of_expr acc e =
    fold_expr (fun acc e -> match e with Index (a, _) -> a :: acc | _ -> acc) acc e
  in
  fold_exprs_in_stmts reads_of_expr [] stmts |> List.rev |> dedup_keep_order

let arrays_written stmts =
  fold_stmts
    (fun acc s -> match s with Assign (Lindex (a, _), _) -> a :: acc | _ -> acc)
    [] stmts
  |> List.rev |> dedup_keep_order

let referenced_arrays k =
  let array_params =
    List.filter_map (function Array_param { name; _ } -> Some name | Scalar_param _ -> None) k.k_params
  in
  let used = dedup_keep_order (arrays_read k.k_body @ arrays_written k.k_body) in
  List.filter (fun a -> List.mem a used) array_params

let equal_expr (a : expr) (b : expr) = a = b

let equal_stmts (a : stmt list) (b : stmt list) = a = b

let equal_kernel (a : kernel) (b : kernel) = a = b
