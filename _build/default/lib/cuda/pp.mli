(** Unparser: AST back to CUDA C text (the ROSE unparse step).

    The paper stresses that the generated kernels are "highly readable"
    so the programmer can amend them (Section 3.2.5); the printer
    therefore produces conventionally indented CUDA C, and the output of
    {!kernel} parses back with {!Parse.kernels} (round-trip property,
    tested). *)

val scalar_ty : Ast.scalar_ty -> string

val expr : Ast.expr -> string
(** Minimal parenthesization driven by operator precedence. *)

val stmt : ?indent:int -> Ast.stmt -> string

val body : ?indent:int -> Ast.stmt list -> string

val kernel : Ast.kernel -> string
(** Full [__global__ void ...] definition. *)

val kernels : Ast.kernel list -> string
(** All kernel definitions, blank-line separated. Unlike {!program}
    (whose host fragment uses [<<<...>>>] and comments), this text
    re-parses with {!Parse.kernels} — the round-trip surface. *)

val host_schedule : Ast.program -> string
(** The host-side driver fragment: array sizes as comments, kernel
    launches with explicit grid/block dimensions, and memcpy markers. *)

val program : Ast.program -> string
(** Kernels followed by the host fragment — a self-contained
    compilation-unit rendition of the program. *)
