open Ast

type error = {
  where : string;
  loc : Loc.pos;
  what : string;
}

let pp_error e =
  if Loc.is_none e.loc then Printf.sprintf "%s:%s" e.where e.what
  else Printf.sprintf "%s:%s:%s" e.where (Loc.pp e.loc) e.what

let dedupe errs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    errs

type binding = Scalar of scalar_ty | Global_array of bool (* writable *) | Shared_array of int

(* Scalars whose value may differ between threads of a block: anything
   (transitively) computed from threadIdx.  blockIdx/blockDim/gridDim are
   uniform across the block and do not taint. *)
let thread_dependent tainted e =
  fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Builtin (Thread_idx _) -> true
      | Var v -> List.mem v tainted
      | Index (_, _) ->
          (* a load's value may differ per thread as soon as any subscript
             does; subscripts are sub-expressions of this fold, so a
             conservative "tainted if any subscript is" is what the
             recursive fold already gives us. Treat the load itself as
             uniform unless a subscript taints it. *)
          false
      | _ -> false)
    false e

let kernel (k : kernel) =
  let errors = ref [] in
  let current_loc = ref Loc.none in
  let err fmt =
    Printf.ksprintf
      (fun what -> errors := { where = k.k_name; loc = !current_loc; what } :: !errors)
      fmt
  in
  let scope : (string, binding) Hashtbl.t = Hashtbl.create 32 in
  let declare name b =
    if Hashtbl.mem scope name then err "identifier %s declared twice" name
    else Hashtbl.replace scope name b
  in
  List.iter
    (fun p ->
      match p with
      | Array_param { name; quals; _ } -> declare name (Global_array (not (List.mem Const quals)))
      | Scalar_param { name; ty } -> declare name (Scalar ty))
    k.k_params;
  let rec check_expr e =
    match e with
    | Int_lit _ | Double_lit _ | Builtin _ -> ()
    | Var v -> (
        match Hashtbl.find_opt scope v with
        | Some (Scalar _) -> ()
        | Some (Global_array _ | Shared_array _) -> err "array %s used as a scalar" v
        | None -> err "undeclared identifier %s" v)
    | Binop (_, a, b) ->
        check_expr a;
        check_expr b
    | Unop (_, a) -> check_expr a
    | Index (a, idxs) ->
        (match Hashtbl.find_opt scope a with
        | Some (Global_array _) ->
            if List.length idxs <> 1 then
              err "global array %s must use a single linearized index" a
        | Some (Shared_array rank) ->
            if List.length idxs <> rank then
              err "shared array %s has rank %d but is indexed with %d subscripts" a rank
                (List.length idxs)
        | Some (Scalar _) -> err "scalar %s is indexed" a
        | None -> err "undeclared array %s" a);
        List.iter check_expr idxs
    | Call (_, args) -> List.iter check_expr args
    | Ternary (c, a, b) ->
        check_expr c;
        check_expr a;
        check_expr b
  in
  let contains_barrier stmts =
    fold_stmts (fun acc s -> acc || s = Syncthreads) false stmts
  in
  (* [tainted]: thread-dependent scalars in scope; [divergent]: are we
     statically under a thread-dependent conditional? *)
  let rec check_stmts ~tainted ~divergent stmts =
    let tainted = ref tainted in
    List.iter
      (fun s ->
        let saved = !current_loc in
        let here = Loc.find s in
        if not (Loc.is_none here) then current_loc := here;
        (match s with
        | Decl (ty, v, init) ->
            Option.iter check_expr init;
            (match init with
            | Some e when thread_dependent !tainted e -> tainted := v :: !tainted
            | _ -> ());
            declare v (Scalar ty)
        | Shared_decl (_, n, dims) ->
            if List.exists (fun d -> d <= 0) dims then
              err "shared array %s has a non-positive extent" n;
            declare n (Shared_array (List.length dims))
        | Assign (Lvar v, e) ->
            (match Hashtbl.find_opt scope v with
            | Some (Scalar _) -> ()
            | Some _ -> err "array %s assigned as a scalar" v
            | None -> err "assignment to undeclared identifier %s" v);
            if thread_dependent !tainted e then tainted := v :: !tainted;
            check_expr e
        | Assign (Lindex (a, idxs), e) ->
            (match Hashtbl.find_opt scope a with
            | Some (Global_array writable) ->
                if not writable then err "const array %s is written" a;
                if List.length idxs <> 1 then
                  err "global array %s must use a single linearized index" a
            | Some (Shared_array rank) ->
                if List.length idxs <> rank then
                  err "shared array %s has rank %d but is written with %d subscripts" a rank
                    (List.length idxs)
            | Some (Scalar _) -> err "scalar %s is indexed in a write" a
            | None -> err "write to undeclared array %s" a);
            List.iter check_expr idxs;
            check_expr e
        | If (c, t, e) ->
            check_expr c;
            let div_here = divergent || thread_dependent !tainted c in
            if (not divergent) && div_here && (contains_barrier t || contains_barrier e) then
              err "__syncthreads() under thread-dependent conditional";
            check_stmts ~tainted:!tainted ~divergent:div_here t;
            check_stmts ~tainted:!tainted ~divergent:div_here e
        | For l ->
            check_expr l.lo;
            check_expr l.hi;
            if l.step <= 0 then err "loop %s has non-positive step %d" l.index l.step;
            (* the loop index scopes over its body only, but redeclaring an
               outer name is still a (shadowing) error in the subset *)
            declare l.index (Scalar Int);
            let trip_divergent =
              thread_dependent !tainted l.lo || thread_dependent !tainted l.hi
            in
            if (not divergent) && trip_divergent && contains_barrier l.body then
              err "__syncthreads() inside loop with thread-dependent trip count";
            let tainted' =
              if trip_divergent then l.index :: !tainted else !tainted
            in
            check_stmts ~tainted:tainted' ~divergent:(divergent || trip_divergent) l.body;
            Hashtbl.remove scope l.index
        | Syncthreads | Return -> ());
        current_loc := saved)
      stmts
  in
  check_stmts ~tainted:[] ~divergent:false k.k_body;
  dedupe (List.rev !errors)

let program (p : program) =
  let errors = ref [] in
  let err where fmt =
    Printf.ksprintf (fun what -> errors := { where; loc = Loc.none; what } :: !errors) fmt
  in
  (* uniqueness *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun k ->
      if Hashtbl.mem seen k.k_name then err p.p_name "kernel %s defined twice" k.k_name
      else Hashtbl.replace seen k.k_name ())
    p.p_kernels;
  let seen_arr = Hashtbl.create 32 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen_arr a.a_name then err p.p_name "array %s declared twice" a.a_name
      else Hashtbl.replace seen_arr a.a_name ();
      if List.exists (fun d -> d <= 0) a.a_dims then
        err p.p_name "array %s has a non-positive extent" a.a_name)
    p.p_arrays;
  (* kernel-local checks *)
  List.iter
    (fun (k : Ast.kernel) -> errors := List.rev_append (List.rev (kernel k)) !errors)
    p.p_kernels;
  (* launches *)
  List.iteri
    (fun i op ->
      match op with
      | Copy_to_device a | Copy_to_host a ->
          if not (Hashtbl.mem seen_arr a) then
            err (Printf.sprintf "memcpy #%d" i) "unknown array %s" a
      | Launch l -> (
          let where = Printf.sprintf "launch #%d (%s)" i l.l_kernel in
          match List.find_opt (fun k -> k.k_name = l.l_kernel) p.p_kernels with
          | None -> err where "launch of undefined kernel"
          | Some k ->
              if List.length k.k_params <> List.length l.l_args then
                err where "expects %d arguments, got %d" (List.length k.k_params)
                  (List.length l.l_args)
              else
                List.iter2
                  (fun param arg ->
                    match (param, arg) with
                    | Array_param _, Arg_array a ->
                        if not (Hashtbl.mem seen_arr a) then
                          err where "argument %s is not a declared device array" a
                    | Array_param { name; _ }, (Arg_int _ | Arg_double _) ->
                        err where "scalar passed for array parameter %s" name
                    | Scalar_param { ty = Int; name }, a ->
                        if (match a with Arg_int _ -> false | _ -> true) then
                          err where "parameter %s expects an int argument" name
                    | Scalar_param { ty = Double; name }, a ->
                        if (match a with Arg_double _ -> false | _ -> true) then
                          err where "parameter %s expects a double argument" name
                    | Scalar_param { ty = Bool; name }, _ ->
                        err where "bool parameter %s is not supported in launches" name)
                  k.k_params l.l_args;
              let dx, dy, dz = l.l_domain and bx, by, bz = l.l_block in
              if dx <= 0 || dy <= 0 || dz <= 0 then err where "non-positive launch domain";
              if bx <= 0 || by <= 0 || bz <= 0 then err where "non-positive block";
              if bx * by * bz > 1024 then err where "block exceeds 1024 threads"))
    p.p_schedule;
  dedupe (List.rev !errors)
