type pos = { line : int; col : int }

let none = { line = 0; col = 0 }
let is_none p = p.line = 0
let pp p = if is_none p then "" else Printf.sprintf "%d:%d" p.line p.col

(* Side table keyed on the physical identity of statement values.
   Buckets come from the structural hash (cheap, depth-bounded); matches
   require pointer equality, so two structurally equal statements from
   different parses keep distinct positions.  Constant constructors
   (Syncthreads, Return) are immediates shared by every occurrence and
   are never stored. *)
module Tbl = Hashtbl.Make (struct
  type t = Ast.stmt

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let table : pos Tbl.t = Tbl.create 1024
let is_immediate (s : Ast.stmt) = Obj.is_int (Obj.repr s)

let record s p =
  if not (is_immediate s) then Tbl.replace table s p;
  s

let find s = if is_immediate s then none else try Tbl.find table s with Not_found -> none

let locate body s =
  let p = find s in
  if not (is_none p) then p
  else
    (* Fall back to the closest located ancestor (physical identity). *)
    let result = ref none in
    let rec walk inherited stmts =
      List.iter
        (fun (st : Ast.stmt) ->
          let here =
            let q = find st in
            if is_none q then inherited else q
          in
          if st == s && is_none !result then result := here;
          match st with
          | Ast.If (_, t, e) ->
              walk here t;
              walk here e
          | Ast.For f -> walk here f.body
          | _ -> ())
        stmts
    in
    walk none body;
    !result
