open Ast

let scalar_ty = function Int -> "int" | Double -> "double" | Bool -> "bool"

let dim_name = function X -> "x" | Y -> "y" | Z -> "z"

let builtin = function
  | Thread_idx d -> "threadIdx." ^ dim_name d
  | Block_idx d -> "blockIdx." ^ dim_name d
  | Block_dim d -> "blockDim." ^ dim_name d
  | Grid_dim d -> "gridDim." ^ dim_name d

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

(* C precedence levels (higher binds tighter) *)
let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec expr_prec level e =
  match e with
  | Int_lit i -> string_of_int i
  | Double_lit f -> float_lit f
  | Var v -> v
  | Builtin b -> builtin b
  | Binop (op, a, b) ->
      let p = prec op in
      let s = Printf.sprintf "%s %s %s" (expr_prec p a) (binop_str op) (expr_prec (p + 1) b) in
      if p < level then "(" ^ s ^ ")" else s
  | Unop (Neg, ((Unop (Neg, _) as a) | (Int_lit _ as a) | (Double_lit _ as a)))
    when (match a with
         | Unop (Neg, _) -> true
         | Int_lit n -> n < 0
         | Double_lit f -> f < 0.0
         | _ -> false) ->
      (* avoid "--x" (C lexes it as decrement) and "--4" *)
      Printf.sprintf "-(%s)" (expr_prec 0 a)
  | Unop (Neg, a) -> Printf.sprintf "-%s" (expr_prec 7 a)
  | Unop (Not, a) -> Printf.sprintf "!%s" (expr_prec 7 a)
  | Index (a, idxs) ->
      a ^ String.concat "" (List.map (fun i -> "[" ^ expr_prec 0 i ^ "]") idxs)
  | Call (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr_prec 0) args))
  | Ternary (c, a, b) ->
      let s = Printf.sprintf "%s ? %s : %s" (expr_prec 1 c) (expr_prec 0 a) (expr_prec 0 b) in
      if level > 0 then "(" ^ s ^ ")" else s

let expr e = expr_prec 0 e

let lvalue = function
  | Lvar v -> v
  | Lindex (a, idxs) -> a ^ String.concat "" (List.map (fun i -> "[" ^ expr i ^ "]") idxs)

let rec stmt ?(indent = 0) s =
  let pad = String.make indent ' ' in
  match s with
  | Decl (ty, n, None) -> Printf.sprintf "%s%s %s;" pad (scalar_ty ty) n
  | Decl (ty, n, Some e) -> Printf.sprintf "%s%s %s = %s;" pad (scalar_ty ty) n (expr e)
  | Shared_decl (ty, n, dims) ->
      Printf.sprintf "%s__shared__ %s %s%s;" pad (scalar_ty ty) n
        (String.concat "" (List.map (Printf.sprintf "[%d]") dims))
  | Assign (lv, e) -> Printf.sprintf "%s%s = %s;" pad (lvalue lv) (expr e)
  | If (c, t, []) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr c) (body ~indent:(indent + 2) t) pad
  | If (c, t, e) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr c)
        (body ~indent:(indent + 2) t)
        pad
        (body ~indent:(indent + 2) e)
        pad
  | For l ->
      let update =
        if l.step = 1 then Printf.sprintf "%s++" l.index
        else Printf.sprintf "%s += %d" l.index l.step
      in
      Printf.sprintf "%sfor (int %s = %s; %s < %s; %s) {\n%s\n%s}" pad l.index (expr l.lo)
        l.index (expr l.hi) update
        (body ~indent:(indent + 2) l.body)
        pad
  | Syncthreads -> pad ^ "__syncthreads();"
  | Return -> pad ^ "return;"

and body ?(indent = 0) stmts =
  if stmts = [] then String.make indent ' ' ^ ";"
  else String.concat "\n" (List.map (stmt ~indent) stmts)

let param = function
  | Array_param { name; elem_ty; quals } ->
      let q =
        (if List.mem Const quals then "const " else "")
        ^ scalar_ty elem_ty ^ " *"
        ^ if List.mem Restrict quals then "__restrict__ " else ""
      in
      q ^ name
  | Scalar_param { name; ty } -> scalar_ty ty ^ " " ^ name

let kernel k =
  Printf.sprintf "__global__ void %s(%s) {\n%s\n}\n" k.k_name
    (String.concat ", " (List.map param k.k_params))
    (body ~indent:2 k.k_body)

let kernels ks = String.concat "\n" (List.map kernel ks)

let arg = function
  | Arg_array a -> a
  | Arg_int i -> string_of_int i
  | Arg_double f -> float_lit f

let host_schedule p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "// host driver for %s\n" p.p_name);
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "// device array %s : %s[%s]\n" a.a_name (scalar_ty a.a_elem_ty)
           (String.concat " * " (List.map string_of_int a.a_dims))))
    p.p_arrays;
  List.iter
    (fun op ->
      match op with
      | Copy_to_device a -> Buffer.add_string buf (Printf.sprintf "cudaMemcpy(%s_d, %s_h, /*H2D*/);\n" a a)
      | Copy_to_host a -> Buffer.add_string buf (Printf.sprintf "cudaMemcpy(%s_h, %s_d, /*D2H*/);\n" a a)
      | Launch l ->
          let gx, gy, gz = grid_of_launch l and bx, by, bz = l.l_block in
          Buffer.add_string buf
            (Printf.sprintf "%s<<<dim3(%d, %d, %d), dim3(%d, %d, %d)>>>(%s);\n" l.l_kernel gx gy
               gz bx by bz
               (String.concat ", " (List.map arg l.l_args))))
    p.p_schedule;
  Buffer.contents buf

let program p =
  String.concat "\n" (List.map kernel p.p_kernels) ^ "\n" ^ host_schedule p
