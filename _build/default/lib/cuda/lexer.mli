(** Hand-written lexer for the CUDA C subset. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW_GLOBAL  (** [__global__] *)
  | KW_SHARED  (** [__shared__] *)
  | KW_RESTRICT
  | KW_SYNCTHREADS
  | KW_VOID
  | KW_INT
  | KW_DOUBLE
  | KW_BOOL
  | KW_CONST
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | COMMA | SEMI | QUESTION | COLON | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE | AMPAMP | BARBAR | BANG
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PLUSPLUS
  | EOF

exception Lex_error of { line : int; col : int; message : string }

val token_to_string : token -> string

val tokenize : string -> (token * Loc.pos) list
(** Token stream with the 1-based line/column of each token's first
    character; comments ([//] and [/* */]) and whitespace are skipped.
    Ends with [(EOF, pos)]. Raises {!Lex_error} on an unexpected
    character. *)
