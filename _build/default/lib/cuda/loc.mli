(** Source positions for the CUDA subset frontend.

    Positions are produced by {!Lexer.tokenize} and attached to
    statements by {!Parse} through a side table keyed on the physical
    identity of the statement value.  The AST itself stays free of
    location fields, so structural transformations ({!Ast.map_stmts},
    codegen, fusion) keep working unchanged; a rewritten statement
    simply has no recorded position.

    Constant constructors ([Syncthreads], [Return]) share one physical
    value, so the table never stores positions for them — clients that
    need to locate a barrier should report the position of the
    enclosing statement instead. *)

type pos = { line : int; col : int }
(** 1-based line and column. *)

val none : pos
(** [{ line = 0; col = 0 }] — used when no position is known. *)

val is_none : pos -> bool

val pp : pos -> string
(** ["LINE:COL"], or [""] for {!none}. *)

val record : Ast.stmt -> pos -> Ast.stmt
(** Remember [pos] for this exact (physically identical) statement
    value and return the statement.  Constant constructors are
    ignored. *)

val find : Ast.stmt -> pos
(** Position recorded for this statement, or {!none}. *)

val locate : Ast.stmt list -> Ast.stmt -> pos
(** [locate body s] is {!find}[ s] when recorded; otherwise the
    position of the closest located ancestor of [s] inside [body]
    (useful for constant constructors such as barriers). *)
