lib/cuda/lexer.mli:
