lib/cuda/lexer.mli: Loc
