lib/cuda/ast.mli:
