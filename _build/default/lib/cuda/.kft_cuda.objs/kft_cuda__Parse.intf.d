lib/cuda/parse.mli: Ast
