lib/cuda/loc.mli: Ast
