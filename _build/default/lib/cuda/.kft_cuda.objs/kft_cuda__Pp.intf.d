lib/cuda/pp.mli: Ast
