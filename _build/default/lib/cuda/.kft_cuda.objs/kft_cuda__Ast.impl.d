lib/cuda/ast.ml: Hashtbl List Option Printf
