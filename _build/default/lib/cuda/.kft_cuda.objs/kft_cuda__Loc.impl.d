lib/cuda/loc.ml: Ast Hashtbl List Obj Printf
