lib/cuda/check.ml: Ast Hashtbl List Loc Option Printf
