lib/cuda/check.ml: Ast Hashtbl List Option Printf
