lib/cuda/pp.ml: Ast Buffer Float List Printf String
