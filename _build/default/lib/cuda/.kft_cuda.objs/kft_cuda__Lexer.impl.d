lib/cuda/lexer.ml: List Printf String
