lib/cuda/lexer.ml: List Loc Printf String
