lib/cuda/check.mli: Ast Loc
