lib/cuda/check.mli: Ast
