lib/cuda/parse.ml: Ast Lexer List Option Printf
