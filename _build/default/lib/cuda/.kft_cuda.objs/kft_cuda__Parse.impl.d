lib/cuda/parse.ml: Ast Lexer List Loc Option Printf
