lib/framework/framework.mli: Kft_analysis Kft_codegen Kft_cuda Kft_ddg Kft_device Kft_fission Kft_gga Kft_metadata Kft_sim Kft_verify
