lib/framework/framework.ml: Buffer Hashtbl Kft_analysis Kft_codegen Kft_cuda Kft_ddg Kft_device Kft_fission Kft_gga Kft_graph Kft_metadata Kft_perfmodel Kft_sim List Option Printf Stdlib String
