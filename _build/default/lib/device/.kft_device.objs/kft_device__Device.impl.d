lib/device/device.ml: Hashtbl List Printf String
