lib/device/device.mli:
