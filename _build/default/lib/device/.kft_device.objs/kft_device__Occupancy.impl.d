lib/device/occupancy.ml: Device List
