lib/device/occupancy.mli: Device
