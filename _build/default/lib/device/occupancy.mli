(** CUDA occupancy calculator (Section 4.2).

    Reimplements the equation chain of Nvidia's occupancy calculator
    spreadsheet: given a thread-block size, the registers used per thread
    and the shared memory used per block, compute the number of
    simultaneously active blocks per SM and the resulting occupancy
    (active warps / maximum warps). Thread-block tuning enumerates all
    feasible block sizes and keeps one with maximal occupancy. *)

type usage = {
  block_threads : int;  (** threads per block (product of block dims) *)
  regs_per_thread : int;
  shared_per_block : int;  (** bytes, static + dynamic *)
}

type result = {
  active_blocks_per_sm : int;
  active_warps_per_sm : int;
  occupancy : float;  (** in [0, 1] *)
  limiter : [ `Warps | `Blocks | `Registers | `Shared_memory | `Infeasible ];
}

val calculate : Device.t -> usage -> result
(** [calculate device usage] follows the occupancy-calculator equations:
    warps per block are rounded up to whole warps; register allocation is
    per warp with the device granularity; shared memory is rounded up to
    the allocation granularity. An infeasible configuration (block too
    large, too many registers, block shared memory over the per-block
    limit) yields occupancy 0 and limiter [`Infeasible]. *)

type block_dims = int * int * int

val candidate_blocks : Device.t -> block_dims list
(** Enumerated 2D/3D block shapes used by the tuner: x dimension a
    multiple of the warp size for coalescing, total threads within the
    device limit. Sorted by total size then x-width. *)

val tune :
  Device.t ->
  regs_per_thread:int ->
  shared_per_block:(block_dims -> int) ->
  current:block_dims ->
  block_dims * result
(** [tune device ~regs_per_thread ~shared_per_block ~current] evaluates
    every candidate block shape ([shared_per_block] maps a shape to its
    shared-memory footprint, which depends on tile size) and returns a
    shape maximizing occupancy. The current shape wins ties, so tuning
    never churns a kernel for no gain. *)
