type t = {
  name : string;
  compute_capability : int * int;
  sm_count : int;
  warp_size : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_warps_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_sm : int;
  shared_mem_per_block : int;
  shared_alloc_granularity : int;
  regs_per_sm : int;
  max_regs_per_thread : int;
  reg_alloc_granularity : int;
  peak_gflops_double : float;
  peak_bandwidth_gbs : float;
  kernel_launch_overhead_us : float;
}

let kepler_base = {
  name = "Generic Kepler";
  compute_capability = (3, 5);
  sm_count = 14;
  warp_size = 32;
  max_threads_per_block = 1024;
  max_threads_per_sm = 2048;
  max_warps_per_sm = 64;
  max_blocks_per_sm = 16;
  shared_mem_per_sm = 49152;
  shared_mem_per_block = 49152;
  shared_alloc_granularity = 256;
  regs_per_sm = 65536;
  max_regs_per_thread = 255;
  reg_alloc_granularity = 256;
  peak_gflops_double = 1170.0;
  peak_bandwidth_gbs = 208.0;
  kernel_launch_overhead_us = 6.0;
}

let k20x =
  { kepler_base with
    name = "Tesla K20X";
    sm_count = 14;
    peak_gflops_double = 1310.0;
    peak_bandwidth_gbs = 250.0 }

let k40 =
  { kepler_base with
    name = "Tesla K40";
    sm_count = 15;
    peak_gflops_double = 1430.0;
    peak_bandwidth_gbs = 288.0 }

let generic_kepler = kepler_base

let all = [ k20x; k40; generic_kepler ]

let by_name s =
  let norm x = String.lowercase_ascii (String.trim x) in
  List.find_opt (fun d -> norm d.name = norm s) all

let query_report d =
  String.concat "\n"
    [
      Printf.sprintf "device.name = %s" d.name;
      Printf.sprintf "device.compute_capability = %d.%d" (fst d.compute_capability)
        (snd d.compute_capability);
      Printf.sprintf "device.sm_count = %d" d.sm_count;
      Printf.sprintf "device.warp_size = %d" d.warp_size;
      Printf.sprintf "device.max_threads_per_block = %d" d.max_threads_per_block;
      Printf.sprintf "device.max_threads_per_sm = %d" d.max_threads_per_sm;
      Printf.sprintf "device.max_warps_per_sm = %d" d.max_warps_per_sm;
      Printf.sprintf "device.max_blocks_per_sm = %d" d.max_blocks_per_sm;
      Printf.sprintf "device.shared_mem_per_sm = %d" d.shared_mem_per_sm;
      Printf.sprintf "device.shared_mem_per_block = %d" d.shared_mem_per_block;
      Printf.sprintf "device.shared_alloc_granularity = %d" d.shared_alloc_granularity;
      Printf.sprintf "device.regs_per_sm = %d" d.regs_per_sm;
      Printf.sprintf "device.max_regs_per_thread = %d" d.max_regs_per_thread;
      Printf.sprintf "device.reg_alloc_granularity = %d" d.reg_alloc_granularity;
      Printf.sprintf "device.peak_gflops_double = %g" d.peak_gflops_double;
      Printf.sprintf "device.peak_bandwidth_gbs = %g" d.peak_bandwidth_gbs;
      Printf.sprintf "device.kernel_launch_overhead_us = %g" d.kernel_launch_overhead_us;
      "";
    ]

let of_query_report s =
  let kv = Hashtbl.create 32 in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match String.index_opt line '=' with
         | None -> ()
         | Some i ->
             let k = String.trim (String.sub line 0 i) in
             let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
             Hashtbl.replace kv k v);
  let get k =
    match Hashtbl.find_opt kv ("device." ^ k) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Device.of_query_report: missing field %s" k)
  in
  let geti k = int_of_string (get k) in
  let getf k = float_of_string (get k) in
  let cc =
    match String.split_on_char '.' (get "compute_capability") with
    | [ a; b ] -> (int_of_string a, int_of_string b)
    | _ -> failwith "Device.of_query_report: bad compute_capability"
  in
  {
    name = get "name";
    compute_capability = cc;
    sm_count = geti "sm_count";
    warp_size = geti "warp_size";
    max_threads_per_block = geti "max_threads_per_block";
    max_threads_per_sm = geti "max_threads_per_sm";
    max_warps_per_sm = geti "max_warps_per_sm";
    max_blocks_per_sm = geti "max_blocks_per_sm";
    shared_mem_per_sm = geti "shared_mem_per_sm";
    shared_mem_per_block = geti "shared_mem_per_block";
    shared_alloc_granularity = geti "shared_alloc_granularity";
    regs_per_sm = geti "regs_per_sm";
    max_regs_per_thread = geti "max_regs_per_thread";
    reg_alloc_granularity = geti "reg_alloc_granularity";
    peak_gflops_double = getf "peak_gflops_double";
    peak_bandwidth_gbs = getf "peak_bandwidth_gbs";
    kernel_launch_overhead_us = getf "kernel_launch_overhead_us";
  }
