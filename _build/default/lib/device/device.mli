(** Target-device models.

    The paper gathers "device metadata" once per target device with a
    deviceQuery-style program (Section 5.1) and feeds it to the objective
    function and to the occupancy-based thread-block tuning. We model the
    two GPUs of the evaluation (Kepler K20X and K40) plus a generic
    Kepler part, as plain records. All capacities are per the CUDA
    compute-capability 3.5 tables. *)

type t = {
  name : string;
  compute_capability : int * int;
  sm_count : int;
  warp_size : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_warps_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_sm : int;  (** bytes *)
  shared_mem_per_block : int;  (** bytes *)
  shared_alloc_granularity : int;  (** bytes *)
  regs_per_sm : int;
  max_regs_per_thread : int;
  reg_alloc_granularity : int;  (** registers, allocated per warp *)
  peak_gflops_double : float;
  peak_bandwidth_gbs : float;  (** GB/s *)
  kernel_launch_overhead_us : float;
}

val k20x : t
val k40 : t
val generic_kepler : t

val by_name : string -> t option
(** Lookup among the built-in devices (case-insensitive). *)

val all : t list

val query_report : t -> string
(** Human-readable deviceQuery-style report; this is the "device
    metadata" text file of Section 3.2.1. *)

val of_query_report : string -> t
(** Parse a report produced by {!query_report} (possibly amended by the
    programmer). Raises [Failure] on malformed input. *)
