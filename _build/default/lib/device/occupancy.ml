type usage = {
  block_threads : int;
  regs_per_thread : int;
  shared_per_block : int;
}

type result = {
  active_blocks_per_sm : int;
  active_warps_per_sm : int;
  occupancy : float;
  limiter : [ `Warps | `Blocks | `Registers | `Shared_memory | `Infeasible ];
}

let round_up v granularity = (v + granularity - 1) / granularity * granularity

let infeasible = { active_blocks_per_sm = 0; active_warps_per_sm = 0; occupancy = 0.0; limiter = `Infeasible }

let calculate (d : Device.t) u =
  if
    u.block_threads <= 0
    || u.block_threads > d.max_threads_per_block
    || u.regs_per_thread > d.max_regs_per_thread
    || u.shared_per_block > d.shared_mem_per_block
  then infeasible
  else begin
    let warps_per_block = (u.block_threads + d.warp_size - 1) / d.warp_size in
    let by_warps = d.max_warps_per_sm / warps_per_block in
    let by_blocks = d.max_blocks_per_sm in
    let by_regs =
      if u.regs_per_thread = 0 then max_int
      else begin
        (* registers are allocated per warp, rounded to the granularity *)
        let regs_per_warp = round_up (u.regs_per_thread * d.warp_size) d.reg_alloc_granularity in
        let warps_by_regs = d.regs_per_sm / regs_per_warp in
        warps_by_regs / warps_per_block
      end
    in
    let by_shared =
      if u.shared_per_block = 0 then max_int
      else d.shared_mem_per_sm / round_up u.shared_per_block d.shared_alloc_granularity
    in
    let blocks = min (min by_warps by_blocks) (min by_regs by_shared) in
    if blocks <= 0 then infeasible
    else begin
      let limiter =
        if blocks = by_shared && by_shared < min (min by_warps by_blocks) by_regs then `Shared_memory
        else if blocks = by_regs && by_regs < min by_warps by_blocks then `Registers
        else if blocks = by_warps && by_warps <= by_blocks then `Warps
        else `Blocks
      in
      let active_warps = blocks * warps_per_block in
      {
        active_blocks_per_sm = blocks;
        active_warps_per_sm = active_warps;
        occupancy = float_of_int active_warps /. float_of_int d.max_warps_per_sm;
        limiter;
      }
    end
  end

type block_dims = int * int * int

let candidate_blocks (d : Device.t) =
  let xs = [ 32; 64; 128; 256; 512 ] in
  let ys = [ 1; 2; 4; 8; 16 ] in
  let cands =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y -> if x * y <= d.max_threads_per_block then Some (x, y, 1) else None)
          ys)
      xs
  in
  List.sort
    (fun (x1, y1, _) (x2, y2, _) ->
      match compare (x1 * y1) (x2 * y2) with 0 -> compare x1 x2 | c -> c)
    cands

let tune (d : Device.t) ~regs_per_thread ~shared_per_block ~current =
  let eval dims =
    let x, y, z = dims in
    calculate d
      { block_threads = x * y * z; regs_per_thread; shared_per_block = shared_per_block dims }
  in
  let current_result = eval current in
  let best =
    List.fold_left
      (fun ((_, best_r) as best) dims ->
        let r = eval dims in
        if r.occupancy > best_r.occupancy +. 1e-9 then (dims, r) else best)
      (current, current_result)
      (candidate_blocks d)
  in
  best
