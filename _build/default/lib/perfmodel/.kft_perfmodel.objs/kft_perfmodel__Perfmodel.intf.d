lib/perfmodel/perfmodel.mli: Kft_device Kft_metadata
