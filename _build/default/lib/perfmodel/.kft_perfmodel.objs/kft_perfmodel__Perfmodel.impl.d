lib/perfmodel/perfmodel.ml: Float Hashtbl Kft_device Kft_metadata List Option
