(** Directed graphs with string-keyed nodes carrying a payload.

    This is the graph substrate underneath the Data Dependency Graph and
    Order-of-Execution Graph of the paper (Section 3.2.3) and the array
    dependence graph used by kernel fission (Algorithm 2). Nodes are
    identified by unique string keys; payloads are arbitrary. All
    operations are imperative; [copy] gives an independent snapshot. *)

type 'a t

exception Cycle of string list
(** Raised by {!topo_sort} with one witness cycle (a list of node keys in
    order, first = last omitted). *)

exception Duplicate_node of string
exception No_such_node of string

val create : unit -> 'a t

val copy : 'a t -> 'a t

val add_node : 'a t -> key:string -> 'a -> unit
(** Raises {!Duplicate_node} if [key] is already present. *)

val ensure_node : 'a t -> key:string -> 'a -> unit
(** Like {!add_node} but a no-op when [key] is already present. *)

val remove_node : 'a t -> string -> unit
(** Removes the node and all incident edges. Raises {!No_such_node}. *)

val mem_node : 'a t -> string -> bool

val payload : 'a t -> string -> 'a
(** Raises {!No_such_node}. *)

val set_payload : 'a t -> string -> 'a -> unit

val add_edge : 'a t -> string -> string -> unit
(** [add_edge g a b] adds the edge a->b (idempotent). Both endpoints must
    exist; raises {!No_such_node} otherwise. *)

val remove_edge : 'a t -> string -> string -> unit

val mem_edge : 'a t -> string -> string -> bool

val succs : 'a t -> string -> string list
(** Successors in insertion order. *)

val preds : 'a t -> string -> string list

val nodes : 'a t -> string list
(** All node keys in insertion order. *)

val edges : 'a t -> (string * string) list

val node_count : 'a t -> int

val edge_count : 'a t -> int

val fold_nodes : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b

val iter_nodes : 'a t -> f:(string -> 'a -> unit) -> unit

val topo_sort : 'a t -> string list
(** Stable topological order (ties broken by insertion order). Raises
    {!Cycle} when the graph is cyclic. *)

val find_cycle : 'a t -> string list option
(** [Some cycle] when the graph has a directed cycle, [None] otherwise. *)

val is_dag : 'a t -> bool

val reachable : 'a t -> src:string -> dst:string -> bool
(** Directed reachability ([src] reaches itself). *)

val bfs : 'a t -> root:string -> string list
(** Nodes reachable from [root] following edges in either direction
    (i.e. BFS on the underlying undirected graph), in visit order. This
    is the traversal of Algorithm 2. *)

val components : 'a t -> string list list
(** Weakly connected components, each in BFS order from its first
    (insertion-order) node; components ordered by their first node. *)

val quotient : 'a t -> group_of:(string -> string) -> 'a t
(** Condense nodes by the partition [group_of]: the quotient node for
    group [g] carries the payload of the first member (insertion order)
    and key [g]. Self-loops arising from intra-group edges are dropped;
    parallel edges are merged. Used to test fusion feasibility: a fusion
    grouping is legal iff the quotient of the OEG is acyclic. *)

val to_dot :
  ?graph_name:string ->
  ?node_attrs:(string -> 'a -> (string * string) list) ->
  ?edge_attrs:(string -> string -> (string * string) list) ->
  'a t ->
  string
(** GraphViz DOT rendering (the paper's DDG/OEG DOT files). *)

val of_dot_edges : string -> (string * string) list
(** Minimal DOT reader: extracts ["a" -> "b"] edge lines from a DOT
    string previously produced by {!to_dot} (possibly hand-edited by the
    programmer, Section 3.2.4). Node attribute lines are ignored. *)
