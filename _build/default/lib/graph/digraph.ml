exception Cycle of string list
exception Duplicate_node of string
exception No_such_node of string

type 'a node = {
  mutable payload : 'a;
  mutable succs : string list; (* reverse insertion order *)
  mutable preds : string list;
  order : int; (* insertion index, for stable traversals *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  mutable insertions : int;
  mutable keys_rev : string list; (* insertion order, reversed *)
}

let create () = { tbl = Hashtbl.create 64; insertions = 0; keys_rev = [] }

let node g key =
  match Hashtbl.find_opt g.tbl key with
  | Some n -> n
  | None -> raise (No_such_node key)

let mem_node g key = Hashtbl.mem g.tbl key

let add_node g ~key payload =
  if mem_node g key then raise (Duplicate_node key);
  Hashtbl.replace g.tbl key
    { payload; succs = []; preds = []; order = g.insertions };
  g.insertions <- g.insertions + 1;
  g.keys_rev <- key :: g.keys_rev

let ensure_node g ~key payload = if not (mem_node g key) then add_node g ~key payload

let payload g key = (node g key).payload

let set_payload g key p = (node g key).payload <- p

let mem_edge g a b =
  match Hashtbl.find_opt g.tbl a with
  | None -> false
  | Some n -> List.mem b n.succs

let add_edge g a b =
  let na = node g a and nb = node g b in
  if not (List.mem b na.succs) then begin
    na.succs <- b :: na.succs;
    nb.preds <- a :: nb.preds
  end

let remove_edge g a b =
  let na = node g a and nb = node g b in
  na.succs <- List.filter (fun k -> k <> b) na.succs;
  nb.preds <- List.filter (fun k -> k <> a) nb.preds

let remove_node g key =
  let n = node g key in
  List.iter (fun s -> (node g s).preds <- List.filter (fun k -> k <> key) (node g s).preds) n.succs;
  List.iter (fun p -> (node g p).succs <- List.filter (fun k -> k <> key) (node g p).succs) n.preds;
  Hashtbl.remove g.tbl key;
  g.keys_rev <- List.filter (fun k -> k <> key) g.keys_rev

let succs g key = List.rev (node g key).succs

let preds g key = List.rev (node g key).preds

let nodes g = List.rev g.keys_rev

let node_count g = Hashtbl.length g.tbl

let edges g =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) (succs g a)) (nodes g)

let edge_count g = List.length (edges g)

let fold_nodes g ~init ~f =
  List.fold_left (fun acc k -> f acc k (payload g k)) init (nodes g)

let iter_nodes g ~f = List.iter (fun k -> f k (payload g k)) (nodes g)

let copy g =
  let g' = create () in
  iter_nodes g ~f:(fun k p -> add_node g' ~key:k p);
  List.iter (fun (a, b) -> add_edge g' a b) (edges g);
  g'

(* DFS restricted to [remaining]; used to produce a witness when Kahn's
   algorithm detects a cycle. *)
let find_cycle_among g remaining =
  let restricted = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace restricted k ()) remaining;
  let color = Hashtbl.create 16 in
  (* 1 = on stack, 2 = done *)
  let exception Found of string list in
  let rec dfs path k =
    match Hashtbl.find_opt color k with
    | Some 1 ->
        (* [path] holds the DFS stack most-recent-first; prepending while
           walking back to [k] restores chronological (edge) order *)
        let rec cut acc = function
          | [] -> k :: acc
          | x :: _ when x = k -> k :: acc
          | x :: tl -> cut (x :: acc) tl
        in
        raise (Found (cut [] path))
    | Some _ -> ()
    | None ->
        Hashtbl.replace color k 1;
        List.iter (fun s -> if Hashtbl.mem restricted s then dfs (k :: path) s) (succs g k);
        Hashtbl.replace color k 2
  in
  try
    List.iter (fun k -> dfs [] k) remaining;
    (* unreachable: callers guarantee a cycle among [remaining] *)
    assert false
  with Found c -> c

(* Kahn's algorithm with a stable frontier: among ready nodes always pick
   the one with the smallest insertion index. *)
let topo_sort g =
  let indeg = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace indeg k (List.length (preds g k))) (nodes g);
  let ready () =
    let best = ref None in
    Hashtbl.iter
      (fun k d ->
        if d = 0 then
          match !best with
          | Some b when (node g b).order < (node g k).order -> ()
          | _ -> best := Some k)
      indeg;
    !best
  in
  let rec loop acc =
    match ready () with
    | None ->
        if Hashtbl.length indeg = 0 then List.rev acc
        else
          (* remaining nodes all sit on cycles; report one *)
          let remaining = Hashtbl.fold (fun k _ l -> k :: l) indeg [] in
          raise (Cycle (find_cycle_among g remaining))
    | Some k ->
        Hashtbl.remove indeg k;
        List.iter
          (fun s ->
            match Hashtbl.find_opt indeg s with
            | Some d -> Hashtbl.replace indeg s (d - 1)
            | None -> ())
          (succs g k);
        loop (k :: acc)
  in
  loop []

let find_cycle g =
  match topo_sort g with
  | (_ : string list) -> None
  | exception Cycle c -> Some c

let is_dag g = Option.is_none (find_cycle g)

let reachable g ~src ~dst =
  let seen = Hashtbl.create 16 in
  let rec go k =
    k = dst
    ||
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.replace seen k ();
      List.exists go (succs g k)
    end
  in
  ignore (node g src);
  ignore (node g dst);
  go src

let neighbors g k = succs g k @ preds g k

let bfs g ~root =
  ignore (node g root);
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen root ();
  let q = Queue.create () in
  Queue.add root q;
  let out = ref [] in
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    out := k :: !out;
    let visit n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        Queue.add n q
      end
    in
    List.iter visit (neighbors g k)
  done;
  List.rev !out

let components g =
  let seen = Hashtbl.create 16 in
  let comps = ref [] in
  List.iter
    (fun k ->
      if not (Hashtbl.mem seen k) then begin
        let comp = bfs g ~root:k in
        List.iter (fun n -> Hashtbl.replace seen n ()) comp;
        comps := comp :: !comps
      end)
    (nodes g);
  List.rev !comps

let quotient g ~group_of =
  let q = create () in
  iter_nodes g ~f:(fun k p -> ensure_node q ~key:(group_of k) p);
  List.iter
    (fun (a, b) ->
      let ga = group_of a and gb = group_of b in
      if ga <> gb then add_edge q ga gb)
    (edges g);
  q

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string = function
  | [] -> ""
  | attrs ->
      let body =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (dot_escape v)) attrs
        |> String.concat ", "
      in
      Printf.sprintf " [%s]" body

let to_dot ?(graph_name = "G") ?(node_attrs = fun _ _ -> []) ?(edge_attrs = fun _ _ -> []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" graph_name);
  iter_nodes g ~f:(fun k p ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\"%s;\n" (dot_escape k) (attrs_to_string (node_attrs k p))));
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (dot_escape a) (dot_escape b)
           (attrs_to_string (edge_attrs a b))))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* substring search without the Str library *)
let index_of_sub line sub from =
  let n = String.length line and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub line i m = sub then Some i else go (i + 1) in
  go (max 0 from)

let of_dot_edges s =
  let lines = String.split_on_char '\n' s in
  let parse_line line =
    (* expected form:  "a" -> "b" [...]; *)
    let extract_quoted pos =
      match String.index_from_opt line pos '"' with
      | None -> None
      | Some start ->
          let buf = Buffer.create 16 in
          let rec find_end i =
            if i >= String.length line then None
            else
              match line.[i] with
              | '\\' when i + 1 < String.length line ->
                  Buffer.add_char buf line.[i + 1];
                  find_end (i + 2)
              | '"' -> Some (Buffer.contents buf, i)
              | c ->
                  Buffer.add_char buf c;
                  find_end (i + 1)
          in
          (match find_end (start + 1) with
          | None -> None
          | Some (name, endpos) -> Some (name, endpos + 1))
    in
    match extract_quoted 0 with
    | None -> None
    | Some (a, pos) -> (
        match index_of_sub line "->" pos with
        | None -> None
        | Some apos -> (
            match extract_quoted (apos + 2) with
            | Some (b, _) -> Some (a, b)
            | None -> None))
  in
  List.filter_map parse_line lines
