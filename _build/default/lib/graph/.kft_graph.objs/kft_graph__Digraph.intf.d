lib/graph/digraph.mli:
