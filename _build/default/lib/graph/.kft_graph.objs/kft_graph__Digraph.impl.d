lib/graph/digraph.ml: Buffer Hashtbl List Option Printf Queue String
