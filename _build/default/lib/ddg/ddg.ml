open Kft_cuda.Ast
module G = Kft_graph.Digraph

type invocation = {
  inv_key : string;
  inv_kernel : string;
  inv_index : int;
  inv_launch : launch;
}

type node =
  | Kernel_node of invocation
  | Array_node of { base : string; version : int }

type t = {
  ddg : node G.t;
  oeg : node G.t;
  invocations : invocation list;
  versioned_arrays : (string * int) list;
}

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter (fun x -> if Hashtbl.mem seen x then false else (Hashtbl.replace seen x (); true)) l

let arrays_touched prog (l : launch) =
  let k = find_kernel prog l.l_kernel in
  let binding = bind_args k l.l_args in
  let host p = match List.assoc_opt p binding with Some (Arg_array h) -> Some h | _ -> None in
  let shared_names =
    fold_stmts (fun acc s -> match s with Shared_decl (_, n, _) -> n :: acc | _ -> acc) [] k.k_body
  in
  let global p = not (List.mem p shared_names) in
  let reads =
    arrays_read k.k_body |> List.filter global |> List.filter_map host |> dedup
  in
  let writes =
    arrays_written k.k_body |> List.filter global |> List.filter_map host |> dedup
  in
  (reads, writes)

let array_key base version =
  if version = 0 then base else Printf.sprintf "%s@%d" base version

let build prog =
  let invocations =
    let counts = Hashtbl.create 16 in
    List.filteri (fun _ _ -> true) prog.p_schedule
    |> List.filter_map (function Launch l -> Some l | _ -> None)
    |> List.mapi (fun i l ->
           let n = Option.value ~default:0 (Hashtbl.find_opt counts l.l_kernel) in
           Hashtbl.replace counts l.l_kernel (n + 1);
           let inv_key = if n = 0 then l.l_kernel else Printf.sprintf "%s#%d" l.l_kernel (n + 1) in
           { inv_key; inv_kernel = l.l_kernel; inv_index = i; inv_launch = l })
  in
  let ddg = G.create () in
  (* multi-writer versioning: current version per array; a write by a
     second (or later) distinct invocation bumps the version, creating a
     redundant instance *)
  let version : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let writers : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let max_version : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let ensure_array base v =
    let key = array_key base v in
    G.ensure_node ddg ~key (Array_node { base; version = v });
    key
  in
  List.iter
    (fun inv ->
      G.add_node ddg ~key:inv.inv_key (Kernel_node inv);
      let reads, writes = arrays_touched prog inv.inv_launch in
      List.iter
        (fun a ->
          let v = Option.value ~default:0 (Hashtbl.find_opt version a) in
          let key = ensure_array a v in
          G.add_edge ddg key inv.inv_key)
        reads;
      List.iter
        (fun a ->
          let prev_writers = Option.value ~default:[] (Hashtbl.find_opt writers a) in
          let v =
            if prev_writers = [] || List.mem inv.inv_key prev_writers then
              Option.value ~default:0 (Hashtbl.find_opt version a)
            else begin
              (* a distinct second writer: redundant instance *)
              let v = Option.value ~default:0 (Hashtbl.find_opt max_version a) + 1 in
              Hashtbl.replace max_version a v;
              Hashtbl.replace version a v;
              v
            end
          in
          Hashtbl.replace writers a (inv.inv_key :: prev_writers);
          let key = ensure_array a v in
          G.add_edge ddg inv.inv_key key)
        writes)
    invocations;
  let versioned_arrays =
    Hashtbl.fold (fun a v acc -> (a, v + 1) :: acc) max_version [] |> List.sort compare
  in
  (* OEG: RAW / WAR / WAW between invocations in schedule order; the host
     invocation order orients every dependence, which is exactly the
     cycle-breaking heuristic of Section 3.2.3 *)
  let oeg = G.create () in
  List.iter (fun inv -> G.add_node oeg ~key:inv.inv_key (Kernel_node inv)) invocations;
  let touched = List.map (fun inv -> (inv, arrays_touched prog inv.inv_launch)) invocations in
  let rec pairs = function
    | [] -> ()
    | (inv_a, (ra, wa)) :: rest ->
        List.iter
          (fun (inv_b, (rb, wb)) ->
            let inter x y = List.exists (fun e -> List.mem e y) x in
            let raw = inter wa rb in
            let war = inter ra wb in
            let waw = inter wa wb in
            if raw || war || waw then G.add_edge oeg inv_a.inv_key inv_b.inv_key)
          rest;
        pairs rest
  in
  pairs touched;
  (* transitive reduction for readability (the DOT files the programmer
     inspects); reachability is preserved *)
  let edges = G.edges oeg in
  List.iter
    (fun (a, b) ->
      G.remove_edge oeg a b;
      if not (G.reachable oeg ~src:a ~dst:b) then G.add_edge oeg a b)
    edges;
  { ddg; oeg; invocations; versioned_arrays }

let oeg_precedes t a b = a <> b && G.reachable t.oeg ~src:a ~dst:b

let fusion_feasible t group =
  match group with
  | [] | [ _ ] -> true
  | _ ->
      let in_group k = List.mem k group in
      let group_of k = if in_group k then "__fused__" else k in
      let q = G.quotient t.oeg ~group_of in
      G.is_dag q

let group_has_internal_precedence t group =
  List.exists (fun a -> List.exists (fun b -> oeg_precedes t a b) group) group

let node_attrs _key = function
  | Kernel_node inv -> [ ("shape", "box"); ("label", inv.inv_key) ]
  | Array_node { base; version } ->
      [
        ("shape", "ellipse");
        ("label", if version = 0 then base else Printf.sprintf "%s (copy %d)" base version);
        ("style", "dashed");
      ]

let ddg_dot t = G.to_dot ~graph_name:"DDG" ~node_attrs:(fun k p -> node_attrs k p) t.ddg

let oeg_dot t = G.to_dot ~graph_name:"OEG" ~node_attrs:(fun k p -> node_attrs k p) t.oeg

let oeg_of_amended_dot t text =
  let known k = G.mem_node t.oeg k in
  G.of_dot_edges text |> List.filter (fun (a, b) -> known a && known b)
