lib/ddg/ddg.ml: Hashtbl Kft_cuda Kft_graph List Option Printf
