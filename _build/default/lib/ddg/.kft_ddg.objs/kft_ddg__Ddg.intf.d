lib/ddg/ddg.mli: Kft_cuda Kft_graph
