(** Data Dependency Graph and Order-of-Execution Graph (Section 3.2.3,
    Algorithm 1).

    The DDG has a node per kernel invocation and per data array target of
    locality; array->kernel edges express reads, kernel->array edges
    express writes. The OEG has kernel invocations only; its edges are
    the inter-kernel precedences that the transformation must not
    violate.

    Two graph optimizations from the paper are implemented:
    - write-read cycles between two kernels are broken by the precedence
      of host invocation order (the OEG heuristic);
    - arrays with several writers get redundant instances (one per
      writer) to relax false dependencies. *)

type invocation = {
  inv_key : string;  (** unique node key: kernel name, "#n"-suffixed on re-launch *)
  inv_kernel : string;
  inv_index : int;  (** position in the host schedule *)
  inv_launch : Kft_cuda.Ast.launch;
}

type node =
  | Kernel_node of invocation
  | Array_node of { base : string; version : int }
      (** [version > 0] marks a redundant instance introduced by the
          multi-writer optimization *)

type t = {
  ddg : node Kft_graph.Digraph.t;
  oeg : node Kft_graph.Digraph.t;
  invocations : invocation list;  (** in schedule order *)
  versioned_arrays : (string * int) list;
      (** arrays that received redundant instances, with instance count —
          reported to the programmer as changes made to optimize the
          graphs *)
}

val build : Kft_cuda.Ast.program -> t
(** Algorithm 1 + graph optimizations + OEG derivation. The OEG contains
    an edge Ki -> Kj (i earlier than j in the host schedule) for every
    RAW, WAR or WAW pair between the two invocations, reduced
    transitively. *)

val arrays_touched : Kft_cuda.Ast.program -> Kft_cuda.Ast.launch -> (string list * string list)
(** (read host arrays, written host arrays) of one launch. *)

val oeg_precedes : t -> string -> string -> bool
(** [oeg_precedes t a b]: invocation [a] must execute before [b]
    (transitive). *)

val fusion_feasible : t -> string list -> bool
(** A set of invocation keys may be fused iff contracting them to one
    node leaves the OEG acyclic (no path leaves the group and comes
    back). *)

val group_has_internal_precedence : t -> string list -> bool
(** True when some pair inside the group is ordered by the OEG — the
    "complex fusion" case of Section 5.5.3. *)

val ddg_dot : t -> string

val oeg_dot : t -> string

val oeg_of_amended_dot : t -> string -> (string * string) list
(** Re-read OEG edges from a programmer-amended DOT file, keeping only
    edges whose endpoints are known invocations (Section 3.2.4). *)
