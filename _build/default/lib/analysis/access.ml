open Kft_cuda.Ast

type rw = Read | Write

type access = {
  array : string;
  rw : rw;
  offset : int * int * int;
}

type loop_info = {
  loop_var : string;
  trip_count : int;
  dimension : [ `Vertical | `Other ];
}

type kernel_access_info = {
  accesses : access list;
  loops : loop_info list;
  max_nest_depth : int;
  active_fraction : float;
}

type failure_reason =
  | Non_affine_index of string
  | Non_canonical_mapping of string
  | Mutated_index_variable of string
  | Unsupported_feature of string

exception Irregular of failure_reason

let reason_to_string = function
  | Non_affine_index a -> Printf.sprintf "non-affine index expression for array %s" a
  | Non_canonical_mapping a -> Printf.sprintf "non-canonical grid mapping for array %s" a
  | Mutated_index_variable v -> Printf.sprintf "index variable %s is mutated" v
  | Unsupported_feature f -> Printf.sprintf "unsupported feature: %s" f

type launch_env = {
  block : int * int * int;
  domain : int * int * int;
  int_args : (string * int) list;
  array_dims : (string * int list) list;
  param_binding : (string * string) list;
}

let env_of_launch prog (l : launch) =
  let k = find_kernel prog l.l_kernel in
  let bound = bind_args k l.l_args in
  let int_args =
    List.filter_map (function name, Arg_int v -> Some (name, v) | _ -> None) bound
  in
  let param_binding =
    List.filter_map (function name, Arg_array a -> Some (name, a) | _ -> None) bound
  in
  let array_dims =
    List.map (fun (p, a) -> (p, (find_array prog a).a_dims)) param_binding
  in
  { block = l.l_block; domain = l.l_domain; int_args; array_dims; param_binding }

(* ------------------------------------------------------------------ *)
(* Integer evaluation of index expressions under a probe assignment    *)
(* ------------------------------------------------------------------ *)

exception Not_integer of string

type probe = {
  thread : int * int * int;  (* tx, ty, tz *)
  block_idx : int * int * int;  (* bix, biy, biz *)
  bindings : (string * int) list;  (* loop vars + inlined params *)
}

let rec eval_int env e =
  match e with
  | Int_lit i -> i
  | Double_lit _ -> raise (Not_integer "double literal in index expression")
  | Var v -> (
      match List.assoc_opt v env.bindings with
      | Some i -> i
      | None -> raise (Not_integer ("unbound variable " ^ v)))
  | Builtin b ->
      let tx, ty, tz = env.thread and bix, biy, biz = env.block_idx in
      (match b with
      | Thread_idx X -> tx
      | Thread_idx Y -> ty
      | Thread_idx Z -> tz
      | Block_idx X -> bix
      | Block_idx Y -> biy
      | Block_idx Z -> biz
      | Block_dim _ | Grid_dim _ -> raise (Not_integer "blockDim/gridDim must be inlined before probing"))
  | Binop (op, a, b) -> (
      let va = eval_int env a and vb = eval_int env b in
      match op with
      | Add -> va + vb
      | Sub -> va - vb
      | Mul -> va * vb
      | Div -> if vb = 0 then raise (Not_integer "division by zero") else va / vb
      | Mod -> if vb = 0 then raise (Not_integer "mod by zero") else va mod vb
      | Lt -> if va < vb then 1 else 0
      | Le -> if va <= vb then 1 else 0
      | Gt -> if va > vb then 1 else 0
      | Ge -> if va >= vb then 1 else 0
      | Eq -> if va = vb then 1 else 0
      | Ne -> if va <> vb then 1 else 0
      | And -> if va <> 0 && vb <> 0 then 1 else 0
      | Or -> if va <> 0 || vb <> 0 then 1 else 0)
  | Unop (Neg, a) -> -eval_int env a
  | Unop (Not, a) -> if eval_int env a = 0 then 1 else 0
  | Ternary (c, a, b) -> if eval_int env c <> 0 then eval_int env a else eval_int env b
  | Call ("min", [ a; b ]) -> min (eval_int env a) (eval_int env b)
  | Call ("max", [ a; b ]) -> max (eval_int env a) (eval_int env b)
  | Call ("abs", [ a ]) -> abs (eval_int env a)
  | Call (f, _) -> raise (Not_integer ("call to " ^ f ^ " in index expression"))
  | Index _ -> raise (Not_integer "array access inside an index expression")

(* ------------------------------------------------------------------ *)
(* Preprocessing: inline immutable int declarations and blockDim       *)
(* ------------------------------------------------------------------ *)

let mutated_scalars body =
  fold_stmts (fun acc s -> match s with Assign (Lvar v, _) -> v :: acc | _ -> acc) [] body

(* Substitute blockDim by launch constants; gridDim likewise. *)
let inline_launch_dims (bx, by, bz) (gx, gy, gz) stmts =
  map_exprs_in_stmts
    (function
      | Builtin (Block_dim X) -> Int_lit bx
      | Builtin (Block_dim Y) -> Int_lit by
      | Builtin (Block_dim Z) -> Int_lit bz
      | Builtin (Grid_dim X) -> Int_lit gx
      | Builtin (Grid_dim Y) -> Int_lit gy
      | Builtin (Grid_dim Z) -> Int_lit gz
      | e -> e)
    stmts

(* Inline scalar int declarations (in declaration order) into all
   subsequent expressions. Declarations of mutated variables are left
   alone. Returns the rewritten body. *)
let inline_int_decls body =
  let mutated = mutated_scalars body in
  let subst map e =
    map_expr (function Var v when List.mem_assoc v map -> List.assoc v map | e -> e) e
  in
  (* One pass: accumulate the substitution while rewriting. Loop bodies
     are handled recursively with the map captured at loop entry. *)
  let rec go map stmts =
    match stmts with
    | [] -> []
    | s :: rest -> (
        match s with
        | Decl (Int, v, Some init) when not (List.mem v mutated) ->
            let init' = subst map init in
            let map' = (v, init') :: List.remove_assoc v map in
            Decl (Int, v, Some init') :: go map' rest
        | Decl (ty, v, init) -> Decl (ty, v, Option.map (subst map) init) :: go map rest
        | Assign (Lvar v, e) -> Assign (Lvar v, subst map e) :: go map rest
        | Assign (Lindex (a, idxs), e) ->
            Assign (Lindex (a, List.map (subst map) idxs), subst map e) :: go map rest
        | If (c, t, e) -> If (subst map c, go map t, go map e) :: go map rest
        | For l ->
            (* the loop index shadows any earlier binding *)
            let inner_map = List.remove_assoc l.index map in
            For { l with lo = subst map l.lo; hi = subst map l.hi; body = go inner_map l.body }
            :: go map rest
        | (Shared_decl _ | Syncthreads | Return) as s -> s :: go map rest)
  in
  go [] body

(* ------------------------------------------------------------------ *)
(* Affine probing                                                      *)
(* ------------------------------------------------------------------ *)

type probe_var = Tx | Ty | Tz | Bix | Biy | Biz | Loop of string

let apply_displacement base v delta =
  let tx, ty, tz = base.thread and bix, biy, biz = base.block_idx in
  match v with
  | Tx -> { base with thread = (tx + delta, ty, tz) }
  | Ty -> { base with thread = (tx, ty + delta, tz) }
  | Tz -> { base with thread = (tx, ty, tz + delta) }
  | Bix -> { base with block_idx = (bix + delta, biy, biz) }
  | Biy -> { base with block_idx = (bix, biy + delta, biz) }
  | Biz -> { base with block_idx = (bix, biy, biz + delta) }
  | Loop lv ->
      let cur = try List.assoc lv base.bindings with Not_found -> 0 in
      { base with bindings = (lv, cur + delta) :: List.remove_assoc lv base.bindings }

(* Recover affine coefficients of [e] w.r.t. the probe variables; check
   linearity with a double-step and one pairwise probe. *)
let affine_coeffs ~array base vars e =
  let f env = try eval_int env e with Not_integer _ -> raise (Irregular (Non_affine_index array)) in
  let f0 = f base in
  let coeffs =
    List.map
      (fun v ->
        let c1 = f (apply_displacement base v 1) - f0 in
        let c2 = f (apply_displacement base v 2) - f0 in
        if c2 <> 2 * c1 then raise (Irregular (Non_affine_index array));
        (v, c1))
      vars
  in
  (* pairwise cross-check on the first two vars with nonzero coeffs *)
  (match List.filter (fun (_, c) -> c <> 0) coeffs with
  | (v1, c1) :: (v2, c2) :: _ ->
      let fp = f (apply_displacement (apply_displacement base v1 1) v2 1) in
      if fp - f0 <> c1 + c2 then raise (Irregular (Non_affine_index array))
  | _ -> ());
  (f0, coeffs)

(* Decompose a constant linear offset against strides (sx, sy, sz) into
   a small (dx, dy, dz), choosing the representative nearest to zero in
   each dimension. *)
let decompose_offset ~sx:_ ~sy ~sz d =
  let div_nearest a b =
    if b = 0 then 0
    else
      let q = if a >= 0 then (a + (b / 2)) / b else -((-a + (b / 2)) / b) in
      q
  in
  let dz = if sz > 0 then div_nearest d sz else 0 in
  let r = d - (dz * sz) in
  let dy = if sy > 0 then div_nearest r sy else 0 in
  let r = r - (dy * sy) in
  let dx = r in
  (dx, dy, dz)

let dims3 dims =
  match dims with
  | [ nx ] -> (nx, 1, 1)
  | [ nx; ny ] -> (nx, ny, 1)
  | [ nx; ny; nz ] -> (nx, ny, nz)
  | _ -> (1, 1, 1)

(* ------------------------------------------------------------------ *)
(* Main analysis                                                       *)
(* ------------------------------------------------------------------ *)

type collected = {
  c_array : string;
  c_rw : rw;
  c_expr : expr;
  c_loops : string list;  (* loop vars in scope, outermost first *)
  c_depth : int;
}

let collect_accesses body =
  let out = ref [] in
  let add array rw expr loops depth = out := { c_array = array; c_rw = rw; c_expr = expr; c_loops = loops; c_depth = depth } :: !out in
  let reads_in_expr loops depth e =
    ignore
      (fold_expr
         (fun () e -> match e with Index (a, [ idx ]) -> add a Read idx loops depth | _ -> ())
         () e)
  in
  let rec walk loops depth stmts =
    List.iter
      (fun s ->
        match s with
        | Decl (_, _, Some e) -> reads_in_expr loops depth e
        | Decl (_, _, None) -> ()
        | Assign (Lvar _, e) -> reads_in_expr loops depth e
        | Assign (Lindex (a, [ idx ]), e) ->
            add a Write idx loops depth;
            reads_in_expr loops depth idx;
            reads_in_expr loops depth e
        | Assign (Lindex (a, idxs), e) ->
            (* multi-dim index: shared arrays only; analysed separately *)
            List.iter (reads_in_expr loops depth) idxs;
            reads_in_expr loops depth e;
            ignore a
        | If (c, t, els) ->
            reads_in_expr loops depth c;
            walk loops depth t;
            walk loops depth els
        | For l ->
            reads_in_expr loops depth l.lo;
            reads_in_expr loops depth l.hi;
            walk (loops @ [ l.index ]) (depth + 1) l.body
        | Shared_decl _ | Syncthreads | Return -> ())
      stmts
  in
  walk [] 0 body;
  List.rev !out

let collect_loops body int_bindings =
  let base = { thread = (0, 0, 0); block_idx = (0, 0, 0); bindings = int_bindings } in
  let out = ref [] in
  let rec walk depth stmts =
    List.iter
      (fun s ->
        match s with
        | For l ->
            let trip =
              match (eval_int base l.lo, eval_int base l.hi) with
              | lo, hi -> max 0 ((hi - lo + l.step - 1) / l.step)
              | exception Not_integer _ -> 0
            in
            out := (l.index, trip, depth) :: !out;
            walk (depth + 1) l.body
        | If (_, t, e) ->
            walk depth t;
            walk depth e
        | _ -> ())
      stmts
  in
  walk 1 body;
  List.rev !out

let max_depth body =
  let rec go depth stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | For l -> max acc (go (depth + 1) l.body)
        | If (_, t, e) -> max acc (max (go depth t) (go depth e))
        | _ -> acc)
      depth stmts
  in
  go 0 body

(* Active fraction of the top-level guard, evaluated numerically. *)
let compute_active_fraction env body =
  let dx, dy, dz = env.domain in
  let guard =
    (* first If whose branches contain the bulk of the kernel: take the
       first top-level If following only declarations *)
    let rec find = function
      | Decl _ :: rest | Shared_decl _ :: rest -> find rest
      | If (c, _, []) :: _ -> Some c
      | _ -> None
    in
    find body
  in
  match guard with
  | None -> 1.0
  | Some c ->
      let bx, by, bz = env.block in
      let sample_z = if dz > 4 && dx * dy * dz > 1 lsl 18 then [ 0; dz / 2; dz - 1 ] else List.init dz (fun z -> z) in
      let active = ref 0 and total = ref 0 in
      for gx = 0 to dx - 1 do
        for gy = 0 to dy - 1 do
          List.iter
            (fun gz ->
              incr total;
              let env_probe =
                {
                  thread = (gx mod bx, gy mod by, gz mod bz);
                  block_idx = (gx / bx, gy / by, gz / bz);
                  bindings = env.int_args;
                }
              in
              match eval_int env_probe c with
              | 0 -> ()
              | _ -> incr active
              | exception Not_integer _ -> incr active)
            sample_z
        done
      done;
      if !total = 0 then 1.0 else float_of_int !active /. float_of_int !total

let analyze (k : kernel) env =
  let mutated = mutated_scalars k.k_body in
  let grid =
    let dx, dy, dz = env.domain and bx, by, bz = env.block in
    let cdiv a b = (a + b - 1) / b in
    (cdiv dx bx, cdiv dy by, cdiv dz bz)
  in
  let body = inline_launch_dims env.block grid k.k_body in
  let body = inline_int_decls body in
  let int_bindings = env.int_args in
  let shared_names =
    fold_stmts (fun acc s -> match s with Shared_decl (_, n, _) -> n :: acc | _ -> acc) [] body
  in
  let raw = collect_accesses body in
  let raw = List.filter (fun c -> not (List.mem c.c_array shared_names)) raw in
  (* any mutated scalar appearing in a global index expression is fatal *)
  List.iter
    (fun c ->
      ignore
        (fold_expr
           (fun () e ->
             match e with
             | Var v when List.mem v mutated -> raise (Irregular (Mutated_index_variable v))
             | _ -> ())
           () c.c_expr))
    raw;
  let loops = collect_loops body int_bindings in
  let base_bindings =
    int_bindings @ List.map (fun (v, _, _) -> (v, 0)) loops
  in
  let base = { thread = (0, 0, 0); block_idx = (0, 0, 0); bindings = base_bindings } in
  let bx, by, _bz = env.block in
  let loop_strides : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let accesses =
    List.map
      (fun c ->
        let dims =
          match List.assoc_opt c.c_array env.array_dims with
          | Some d -> d
          | None -> raise (Irregular (Unsupported_feature ("array " ^ c.c_array ^ " has no bound dimensions")))
        in
        let nx, ny, nz = dims3 dims in
        let sx = 1 and sy = nx and sz = nx * ny in
        ignore nz;
        let vars = [ Tx; Ty; Tz; Bix; Biy; Biz ] @ List.map (fun v -> Loop v) c.c_loops in
        let f0, coeffs = affine_coeffs ~array:c.c_array base vars c.c_expr in
        let coef v = try List.assoc v coeffs with Not_found -> 0 in
        (* thread coordinates must combine into global coordinates *)
        let check_pair ct cb bd =
          if cb <> ct * bd then raise (Irregular (Non_canonical_mapping c.c_array))
        in
        check_pair (coef Tx) (coef Bix) bx;
        check_pair (coef Ty) (coef Biy) by;
        check_pair (coef Tz) (coef Biz) _bz;
        let cgx = coef Tx and cgy = coef Ty and cgz = coef Tz in
        let valid c = c = 0 || c = sx || c = sy || c = sz in
        if not (valid cgx && valid cgy && valid cgz) then
          raise (Irregular (Non_canonical_mapping c.c_array));
        List.iter
          (fun lv ->
            let cl = coef (Loop lv) in
            if not (valid cl) then raise (Irregular (Non_canonical_mapping c.c_array));
            if cl <> 0 then Hashtbl.replace loop_strides lv (if cl = sz && nz > 1 then 3 else if cl = sy then 2 else 1))
          c.c_loops;
        let dx, dy, dz = decompose_offset ~sx ~sy ~sz f0 in
        (* sanity: reconstruct *)
        if dx + (dy * sy) + (dz * sz) <> f0 then raise (Irregular (Non_affine_index c.c_array));
        { array = c.c_array; rw = c.c_rw; offset = (dx, dy, dz) })
      raw
  in
  let loop_infos =
    List.map
      (fun (v, trip, _) ->
        let dimension =
          match Hashtbl.find_opt loop_strides v with Some 3 -> `Vertical | _ -> `Other
        in
        { loop_var = v; trip_count = trip; dimension })
      loops
  in
  {
    accesses;
    loops = loop_infos;
    max_nest_depth = max_depth body;
    active_fraction = compute_active_fraction env body;
  }

(* dead int-decl pruning after inlining: an inlined declaration is dead
   when its variable no longer occurs in any expression below it *)
let prune_dead_int_decls body =
  let var_used v stmts =
    fold_exprs_in_stmts
      (fun acc e -> acc || fold_expr (fun a e -> a || e = Var v) false e)
      false stmts
    ||
    fold_stmts
      (fun acc s -> acc || match s with Assign (Lvar x, _) -> x = v | For l -> l.index = v | _ -> false)
      false stmts
  in
  let rec go = function
    | [] -> []
    | Decl (Int, v, Some _) :: rest when not (var_used v rest) -> go rest
    | If (c, t, e) :: rest -> If (c, go t, go e) :: go rest
    | For l :: rest -> For { l with body = go l.body } :: go rest
    | s :: rest -> s :: go rest
  in
  go body

let specialize env (k : kernel) =
  let grid =
    let dx, dy, dz = env.domain and bx, by, bz = env.block in
    let cdiv a b = (a + b - 1) / b in
    (cdiv dx bx, cdiv dy by, cdiv dz bz)
  in
  let body = inline_launch_dims env.block grid k.k_body in
  let body =
    map_exprs_in_stmts
      (fun e ->
        match e with
        | Var v -> (
            match List.assoc_opt v env.int_args with Some i -> Int_lit i | None -> e)
        | e -> e)
      body
  in
  let body = inline_int_decls body in
  prune_dead_int_decls body

let affine_of_expr env ~loops e =
  let bx, by, bz = env.block in
  let base = { thread = (0, 0, 0); block_idx = (0, 0, 0); bindings = List.map (fun v -> (v, 0)) loops } in
  let vars = [ Tx; Ty; Tz; Bix; Biy; Biz ] @ List.map (fun v -> Loop v) loops in
  let f env_probe = try Some (eval_int env_probe e) with Not_integer _ -> None in
  match f base with
  | None -> None
  | Some f0 -> (
      let coeffs =
        List.fold_left
          (fun acc v ->
            match acc with
            | None -> None
            | Some acc -> (
                match (f (apply_displacement base v 1), f (apply_displacement base v 2)) with
                | Some c1v, Some c2v ->
                    let c1 = c1v - f0 and c2 = c2v - f0 in
                    if c2 <> 2 * c1 then None else Some ((v, c1) :: acc)
                | _ -> None))
          (Some []) vars
      in
      match coeffs with
      | None -> None
      | Some coeffs ->
          let coef v = try List.assoc v coeffs with Not_found -> 0 in
          (* thread/block coordinates must combine into globals *)
          if coef Bix <> coef Tx * bx || coef Biy <> coef Ty * by || coef Biz <> coef Tz * bz
          then None
          else begin
            let named =
              [ ("gx", coef Tx); ("gy", coef Ty); ("gz", coef Tz) ]
              @ List.map (fun v -> (v, coef (Loop v))) loops
            in
            Some (List.filter (fun (_, c) -> c <> 0) named, f0)
          end)

let affine_threads ?(block_idx = (0, 0, 0)) ~bindings ~loops e =
  let base = { thread = (0, 0, 0); block_idx; bindings = List.map (fun v -> (v, 0)) loops @ bindings } in
  let vars = [ Tx; Ty; Tz ] @ List.map (fun v -> Loop v) loops in
  let f env_probe = try Some (eval_int env_probe e) with Not_integer _ -> None in
  match f base with
  | None -> None
  | Some f0 -> (
      let coeffs =
        List.fold_left
          (fun acc v ->
            match acc with
            | None -> None
            | Some acc -> (
                match (f (apply_displacement base v 1), f (apply_displacement base v 2)) with
                | Some c1v, Some c2v ->
                    let c1 = c1v - f0 and c2 = c2v - f0 in
                    if c2 <> 2 * c1 then None else Some ((v, c1) :: acc)
                | _ -> None))
          (Some []) vars
      in
      match coeffs with
      | None -> None
      | Some coeffs ->
          (* pairwise cross-check on the first two nonzero coefficients,
             as in [affine_coeffs], to reject multiplicative mixing *)
          let nonzero = List.filter (fun (_, c) -> c <> 0) coeffs in
          let ok =
            match nonzero with
            | (v1, c1) :: (v2, c2) :: _ -> (
                match f (apply_displacement (apply_displacement base v1 1) v2 1) with
                | Some fp -> fp - f0 = c1 + c2
                | None -> false)
            | _ -> true
          in
          if not ok then None
          else
            let coef v = try List.assoc v coeffs with Not_found -> 0 in
            let named =
              [ ("tx", coef Tx); ("ty", coef Ty); ("tz", coef Tz) ]
              @ List.map (fun v -> (v, coef (Loop v))) loops
            in
            Some (List.filter (fun (_, c) -> c <> 0) named, f0))

let analyze_result k env =
  match analyze k env with
  | info -> Ok info
  | exception Irregular r -> Error r

let stencil_radius info array =
  List.fold_left
    (fun (rx, ry, rz) a ->
      if a.array = array && a.rw = Read then
        let dx, dy, dz = a.offset in
        (max rx (abs dx), max ry (abs dy), max rz (abs dz))
      else (rx, ry, rz))
    (0, 0, 0) info.accesses

let read_offsets info array =
  List.filter_map (fun a -> if a.array = array && a.rw = Read then Some a.offset else None) info.accesses
  |> List.sort_uniq compare

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter (fun x -> if Hashtbl.mem seen x then false else (Hashtbl.replace seen x (); true)) l

let writes_arrays info =
  dedup (List.filter_map (fun a -> if a.rw = Write then Some a.array else None) info.accesses)

let reads_arrays info =
  dedup (List.filter_map (fun a -> if a.rw = Read then Some a.array else None) info.accesses)
