(** Static stencil-access analysis (the "operations metadata" extractor,
    Section 5.1).

    For each global-memory access of a kernel, recover — under the
    paper's canonical mapping (CUDA grid covers the horizontal plane,
    possibly a loop iterating the vertical dimension) — the stencil
    offset (dx, dy, dz) relative to the thread's own cell.

    The analysis is numeric-affine: integer index declarations are
    inlined, then the index expression is probed at unit displacements of
    the thread coordinates and loop indices to recover its affine
    coefficients, which are matched against the array's strides. Kernels
    using non-affine or non-canonical indexing are reported as
    {!Irregular}, which downstream stages treat conservatively (excluded
    from fusion), mirroring the paper's "Data access" limitation. *)

type rw = Read | Write

type access = {
  array : string;
  rw : rw;
  offset : int * int * int;  (** (dx, dy, dz) stencil displacement *)
}

type loop_info = {
  loop_var : string;
  trip_count : int;
  dimension : [ `Vertical | `Other ];
      (** [`Vertical] when the loop strides the z dimension of the
          accessed arrays (the canonical k-loop). *)
}

type kernel_access_info = {
  accesses : access list;
  loops : loop_info list;
  max_nest_depth : int;  (** loop-nest depth; > 1 flags "deep nested loops" (Fig. 6 defect) *)
  active_fraction : float;
      (** fraction of launched threads passing the kernel's top-level
          guard (1.0 when unguarded); evaluated over the launch domain,
          sampled on one z-plane for large domains *)
}

type failure_reason =
  | Non_affine_index of string  (** array whose index defeated the probe *)
  | Non_canonical_mapping of string
  | Mutated_index_variable of string
  | Unsupported_feature of string

exception Irregular of failure_reason

val reason_to_string : failure_reason -> string

type launch_env = {
  block : int * int * int;
  domain : int * int * int;
  int_args : (string * int) list;  (** scalar int params bound at launch *)
  array_dims : (string * int list) list;
      (** dims of each array parameter's bound array, innermost first *)
  param_binding : (string * string) list;
      (** array parameter name -> host array name *)
}

val env_of_launch : Kft_cuda.Ast.program -> Kft_cuda.Ast.launch -> launch_env
(** Build the analysis environment from a program's launch record. *)

val analyze : Kft_cuda.Ast.kernel -> launch_env -> kernel_access_info
(** Raises {!Irregular} when the kernel falls outside the supported
    subset. *)

val analyze_result : Kft_cuda.Ast.kernel -> launch_env -> (kernel_access_info, failure_reason) result

val stencil_radius : kernel_access_info -> string -> int * int * int
(** Per-dimension radius (max |offset|) of reads of the given array;
    (0,0,0) when the array is only written or absent. *)

val read_offsets : kernel_access_info -> string -> (int * int * int) list

val writes_arrays : kernel_access_info -> string list

val reads_arrays : kernel_access_info -> string list

(** {1 Low-level probing API}

    Exposed for sibling analyses (cost estimation, classification) and
    tests. *)

type probe = {
  thread : int * int * int;
  block_idx : int * int * int;
  bindings : (string * int) list;
}

exception Not_integer of string

val eval_int : probe -> Kft_cuda.Ast.expr -> int
(** Integer evaluation of an index/guard expression under a probe
    assignment. Raises {!Not_integer} on non-integer constructs. *)

val specialize : launch_env -> Kft_cuda.Ast.kernel -> Kft_cuda.Ast.stmt list
(** Specialize a kernel body to its launch: substitute
    [blockDim]/[gridDim] and integer scalar parameters by their launch
    constants, inline immutable integer declarations into all uses, and
    drop the now-dead integer declarations. The result is the form the
    code generator rewrites (generated kernels are specialized to the
    profiled problem size — the paper's "sensitivity to input"
    limitation, Section 7). *)

val affine_of_expr :
  launch_env ->
  loops:string list ->
  Kft_cuda.Ast.expr ->
  ((string * int) list * int) option
(** Affine coefficients of a (specialized) integer expression over the
    pseudo-variables ["gx"], ["gy"], ["gz"] (global thread coordinates)
    and the loop variables in scope, plus the constant term. [None] when
    the expression is not affine or mixes thread/block indices in a
    non-canonical way. *)

val affine_threads :
  ?block_idx:int * int * int ->
  bindings:(string * int) list ->
  loops:string list ->
  Kft_cuda.Ast.expr ->
  ((string * int) list * int) option
(** Affine coefficients over the {e thread-local} variables ["tx"],
    ["ty"], ["tz"] and the loop variables in scope, with blockIdx pinned
    to [block_idx] (default origin) and free scalars bound by
    [bindings]; plus the constant term. Unlike {!affine_of_expr} no
    canonical grid-mapping is required, so thread-only expressions such
    as [threadIdx.x + 34 * threadIdx.y] succeed — this is the probe the
    static race detector ([Kft_verify]) uses to reason about
    shared-memory subscripts within one block. *)
