(** Static cost estimates used by the operations metadata and the
    register/occupancy estimation of the tuner (Sections 4.2 and 5.1). *)

type t = {
  flops_per_thread : float;
      (** arithmetic double-precision operations executed by one thread
          passing the guard, loop trip counts included *)
  global_reads_per_thread : float;  (** 8-byte global loads per thread *)
  global_writes_per_thread : float;
  dependent_chain : int;
      (** longest chain of serially dependent arithmetic operations per
          thread (through scalar temporaries); drives the latency term of
          the timing model *)
}

val of_kernel : Kft_cuda.Ast.kernel -> Access.launch_env -> t
(** Counts are static: a loop multiplies its body by the trip count
    (evaluated at the launch bindings), both branches of thread-dependent
    conditionals are averaged at weight 1/2 only for unguarded interior
    conditionals — the kernel-level guard is accounted separately via
    {!Access.kernel_access_info.active_fraction}. *)

val estimate_registers : Kft_cuda.Ast.kernel -> int
(** Register-per-thread estimate from declaration count, distinct arrays
    touched and expression depth — the analysis the paper leverages from
    its performance model to feed the occupancy calculator. Clamped to
    [16, 160]. *)

val flops_of_assignment : Kft_cuda.Ast.expr -> int
(** Arithmetic operation count of one right-hand side. *)
