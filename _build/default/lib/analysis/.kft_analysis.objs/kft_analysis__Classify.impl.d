lib/analysis/classify.ml: Kft_device
