lib/analysis/access.mli: Kft_cuda
