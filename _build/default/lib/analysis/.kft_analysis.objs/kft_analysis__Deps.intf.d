lib/analysis/deps.mli: Kft_cuda
