lib/analysis/access.ml: Hashtbl Kft_cuda List Option Printf
