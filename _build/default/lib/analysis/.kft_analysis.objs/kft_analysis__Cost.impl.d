lib/analysis/cost.ml: Access Hashtbl Kft_cuda List
