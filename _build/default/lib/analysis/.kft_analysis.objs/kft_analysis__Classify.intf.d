lib/analysis/classify.mli: Kft_device
