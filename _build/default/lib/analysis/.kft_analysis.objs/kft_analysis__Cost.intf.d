lib/analysis/cost.mli: Access Kft_cuda
