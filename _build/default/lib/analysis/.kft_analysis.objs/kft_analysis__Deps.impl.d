lib/analysis/deps.ml: Hashtbl Kft_cuda Kft_graph List
