open Kft_cuda.Ast

type t = {
  flops_per_thread : float;
  global_reads_per_thread : float;
  global_writes_per_thread : float;
  dependent_chain : int;
}

let rec flops_of_assignment e =
  match e with
  | Int_lit _ | Double_lit _ | Var _ | Builtin _ -> 0
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> 1 + flops_of_assignment a + flops_of_assignment b
  | Binop (_, a, b) -> flops_of_assignment a + flops_of_assignment b
  | Unop (_, a) -> flops_of_assignment a
  | Index (_, _) -> 0 (* addressing arithmetic is integer work, not FLOPs *)
  | Call ("fma", args) -> 2 + List.fold_left (fun acc a -> acc + flops_of_assignment a) 0 args
  | Call (("sqrt" | "exp" | "log" | "pow" | "sin" | "cos" | "fabs"), args) ->
      (* transcendental: count as several flops, matching profiler convention *)
      4 + List.fold_left (fun acc a -> acc + flops_of_assignment a) 0 args
  | Call (_, args) -> List.fold_left (fun acc a -> acc + flops_of_assignment a) 0 args
  | Ternary (c, a, b) ->
      flops_of_assignment c + max (flops_of_assignment a) (flops_of_assignment b)

let rec reads_in_expr e =
  match e with
  | Index (_, [ _ ]) -> 1
  | Index (_, idxs) -> List.fold_left (fun acc i -> acc + reads_in_expr i) 0 idxs
  | Binop (_, a, b) -> reads_in_expr a + reads_in_expr b
  | Unop (_, a) -> reads_in_expr a
  | Call (_, args) -> List.fold_left (fun acc a -> acc + reads_in_expr a) 0 args
  | Ternary (c, a, b) -> reads_in_expr c + reads_in_expr a + reads_in_expr b
  | Int_lit _ | Double_lit _ | Var _ | Builtin _ -> 0

(* Longest chain of dependent arithmetic ops through scalar temporaries.
   [depths] maps a scalar to the chain depth of its current value. *)
let rec expr_chain depths e =
  match e with
  | Int_lit _ | Double_lit _ | Builtin _ -> 0
  | Var v -> ( match Hashtbl.find_opt depths v with Some d -> d | None -> 0)
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> 1 + max (expr_chain depths a) (expr_chain depths b)
  | Binop (_, a, b) -> max (expr_chain depths a) (expr_chain depths b)
  | Unop (_, a) -> expr_chain depths a
  | Index (_, _) -> 1 (* a load feeding the chain *)
  | Call (("sqrt" | "exp" | "log" | "pow" | "sin" | "cos"), args) ->
      4 + List.fold_left (fun acc a -> max acc (expr_chain depths a)) 0 args
  | Call (_, args) -> 1 + List.fold_left (fun acc a -> max acc (expr_chain depths a)) 0 args
  | Ternary (c, a, b) ->
      max (expr_chain depths c) (max (expr_chain depths a) (expr_chain depths b))

let of_kernel (k : kernel) (env : Access.launch_env) =
  let trip lo hi step bindings =
    let base =
      { Access.thread = (0, 0, 0); block_idx = (0, 0, 0); bindings }
    in
    match (Access.eval_int base lo, Access.eval_int base hi) with
    | l, h -> max 1 ((h - l + step - 1) / step)
    | exception Access.Not_integer _ -> 1
  in
  let depths = Hashtbl.create 16 in
  let flops = ref 0.0 and reads = ref 0.0 and writes = ref 0.0 in
  let chain = ref 0 in
  let rec walk mult cond_weight bindings stmts =
    List.iter
      (fun s ->
        match s with
        | Decl (ty, v, Some e) ->
            (* integer declarations are index plumbing, not floating work *)
            if ty = Double then
              flops := !flops +. (mult *. cond_weight *. float_of_int (flops_of_assignment e));
            reads := !reads +. (mult *. cond_weight *. float_of_int (reads_in_expr e));
            Hashtbl.replace depths v (expr_chain depths e);
            chain := max !chain (Hashtbl.find depths v)
        | Decl (_, v, None) -> Hashtbl.replace depths v 0
        | Assign (lv, e) ->
            flops := !flops +. (mult *. cond_weight *. float_of_int (flops_of_assignment e));
            reads := !reads +. (mult *. cond_weight *. float_of_int (reads_in_expr e));
            let d = expr_chain depths e in
            (match lv with
            | Lvar v ->
                Hashtbl.replace depths v d;
                chain := max !chain d
            | Lindex (_, [ _ ]) ->
                writes := !writes +. (mult *. cond_weight);
                chain := max !chain d
            | Lindex (_, idxs) ->
                reads := !reads +. (mult *. cond_weight *. float_of_int (List.fold_left (fun a i -> a + reads_in_expr i) 0 idxs));
                chain := max !chain d)
        | If (c, t, e) ->
            reads := !reads +. (mult *. cond_weight *. float_of_int (reads_in_expr c));
            (* interior conditionals: average the branches *)
            let w = if e = [] then cond_weight else cond_weight *. 0.5 in
            walk mult w bindings t;
            walk mult (cond_weight *. 0.5) bindings e
        | For l ->
            let n = trip l.lo l.hi l.step bindings in
            (* a sequential loop multiplies the chain as well *)
            let before = !chain in
            walk (mult *. float_of_int n) cond_weight ((l.index, 0) :: bindings) l.body;
            let body_chain = !chain - before in
            if body_chain > 0 then chain := before + (body_chain * min n 64)
        | Shared_decl _ | Syncthreads | Return -> ())
      stmts
  in
  walk 1.0 1.0 env.int_args k.k_body;
  {
    flops_per_thread = !flops;
    global_reads_per_thread = !reads;
    global_writes_per_thread = !writes;
    dependent_chain = !chain;
  }

let estimate_registers (k : kernel) =
  let decls = fold_stmts (fun acc s -> match s with Decl _ -> acc + 1 | _ -> acc) 0 k.k_body in
  let arrays = List.length (referenced_arrays k) in
  let rec expr_depth e =
    match e with
    | Int_lit _ | Double_lit _ | Var _ | Builtin _ -> 1
    | Binop (_, a, b) -> 1 + max (expr_depth a) (expr_depth b)
    | Unop (_, a) -> 1 + expr_depth a
    | Index (_, idxs) | Call (_, idxs) -> 1 + List.fold_left (fun acc i -> max acc (expr_depth i)) 0 idxs
    | Ternary (c, a, b) -> 1 + max (expr_depth c) (max (expr_depth a) (expr_depth b))
  in
  let depth =
    fold_exprs_in_stmts (fun acc e -> max acc (expr_depth e)) 0 k.k_body
  in
  (* register allocators reuse registers aggressively: live ranges grow
     with distinct arrays and expression depth but far sublinearly with
     declaration count *)
  let est = 18 + (3 * arrays / 2) + (decls / 2) + min depth 16 in
  max 18 (min 128 est)
