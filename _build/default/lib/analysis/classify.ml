type kind = Compute_bound | Memory_bound | Boundary | Latency_bound

let to_string = function
  | Compute_bound -> "compute-bound"
  | Memory_bound -> "memory-bound"
  | Boundary -> "boundary"
  | Latency_bound -> "latency-bound"

let operational_intensity ~flops ~bytes = if bytes <= 0.0 then infinity else flops /. bytes

let ridge_point (d : Kft_device.Device.t) = d.peak_gflops_double /. d.peak_bandwidth_gbs

let boundary_coverage_threshold = 0.10

let coverage ~domain_cells ~max_array_cells ~active_fraction =
  if max_array_cells <= 0 then 1.0
  else active_fraction *. float_of_int domain_cells /. float_of_int max_array_cells

let classify_static ~device ~flops ~bytes ~domain_cells ~max_array_cells ~active_fraction =
  let oi = operational_intensity ~flops ~bytes in
  if oi > ridge_point device then Compute_bound
  else if coverage ~domain_cells ~max_array_cells ~active_fraction < boundary_coverage_threshold
  then Boundary
  else Memory_bound

let classify_measured ~device ~flops ~bytes ~domain_cells ~max_array_cells ~active_fraction
    ~runtime_us =
  match classify_static ~device ~flops ~bytes ~domain_cells ~max_array_cells ~active_fraction with
  | Memory_bound when runtime_us > 0.0 ->
      let achieved_bw_gbs = bytes /. (runtime_us *. 1e3) in
      let achieved_gflops = flops /. (runtime_us *. 1e3) in
      (* far from both roofs: neither bandwidth- nor compute-limited,
         hence limited by latency / overlap *)
      if
        achieved_bw_gbs < 0.25 *. device.peak_bandwidth_gbs
        && achieved_gflops < 0.25 *. device.peak_gflops_double
      then Latency_bound
      else Memory_bound
  | k -> k
