(** Intra-kernel dependence between data arrays (the statement-level
    dependence analysis feeding kernel fission, Algorithm 2).

    Array [A] depends on array [B] when some instruction chain inside the
    kernel lets values of [B] influence values written to [A] — directly
    ([A\[..\] = f(B\[..\])]) or through scalar temporaries. The fission
    dependence graph is undirected: Algorithm 2 only needs "altering one
    array has no side effect on the other". *)

val array_dependence_edges : Kft_cuda.Ast.kernel -> (string * string) list
(** Unordered dependent pairs over the kernel's global array parameters,
    with [fst < snd]; deduplicated. Scalar temporaries are tracked
    transitively: [t = f(B); A = g(t)] yields (A, B). Arrays co-written
    by the same statement are also paired. *)

val separable_groups : Kft_cuda.Ast.kernel -> string list list
(** Connected components of the dependence graph over the kernel's
    referenced arrays (deterministic order). A kernel with a single
    component has no separable data arrays and cannot be fissioned. *)
