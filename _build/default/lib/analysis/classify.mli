(** Kernel classification for target filtering (Section 3.2.2).

    Two kinds of kernels are excluded from the fusion search: compute-
    bound kernels (identified by mapping operational intensity onto the
    Roofline model) and boundary kernels (memory-bound kernels touching
    only a small subset of the grid, e.g. boundary-condition updates).

    The paper notes a third, problematic kind: latency-bound kernels with
    poor memory/compute overlap that *look* memory-bound to the automated
    filter (the Fluam anomaly of Figure 8). {!classify_measured} exposes
    the refined judgement a human expert would make from achieved
    bandwidth, used by the "manual filtering" baseline. *)

type kind = Compute_bound | Memory_bound | Boundary | Latency_bound

val to_string : kind -> string

val operational_intensity :
  flops:float -> bytes:float -> float
(** FLOPs per byte of global traffic. *)

val ridge_point : Kft_device.Device.t -> float
(** Operational intensity at which the Roofline turns flat:
    peak GFLOPS / peak bandwidth. *)

val classify_static :
  device:Kft_device.Device.t ->
  flops:float ->
  bytes:float ->
  domain_cells:int ->
  max_array_cells:int ->
  active_fraction:float ->
  kind
(** The automated filter: Roofline for compute-bound, small iteration
    coverage (domain x active fraction relative to the largest array
    touched) for boundary kernels. Never returns [Latency_bound] — the
    automated filter cannot see it, which is exactly the paper's
    observation. *)

val classify_measured :
  device:Kft_device.Device.t ->
  flops:float ->
  bytes:float ->
  domain_cells:int ->
  max_array_cells:int ->
  active_fraction:float ->
  runtime_us:float ->
  kind
(** The expert filter: additionally marks kernels whose achieved
    bandwidth and achieved GFLOPS are both far below the device roofline
    as [Latency_bound]. *)

val boundary_coverage_threshold : float
(** Fraction of the largest touched array below which a memory-bound
    kernel counts as a boundary kernel (default 0.10). *)
