(** Customized Grouped Genetic Algorithm (Sections 2, 4.1, 5.4).

    Individuals are partitions of the target kernel invocations into
    fusion groups; the grouping-aware operators (Falkenauer-style group
    injection crossover, split/merge/move mutation) manipulate groups,
    not genes, so offspring remain valid partitions.

    Fitness is the projected-GFLOPS objective penalized per the dynamic
    penalty function of Section 4.1: each violated constraint adds a
    constant penalty [C_i]; a violated shared-memory capacity constraint
    is *relaxed* when some member can be fissioned — lazy fission
    replaces the member by its pre-profiled parts (keeping in the group
    only the parts that share data with the rest) — and penalized harder
    ([c_sm_stuck]) when no member can. *)

type params = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
  elitism : int;
  seed : int;
  c_violation : float;  (** [C_i]: penalty per violated precedence/subset constraint *)
  c_sm_stuck : float;  (** penalty when the shared-memory constraint is violated and no fission can relax it *)
  fission_enabled : bool;  (** lazy fission on/off (ablation) *)
}

val default_params : params
(** The paper's defaults: population 100, 500 generations. *)

val params_to_text : params -> string

val params_of_text : string -> params
(** Round-trip of the parameter file the programmer may edit
    (Section 3.2.4). Raises [Failure] on malformed input. *)

type problem = {
  units : Kft_perfmodel.Perfmodel.unit_model list;
      (** target kernel invocations (filtered; in schedule order) *)
  fission_parts : (string * Kft_perfmodel.Perfmodel.unit_model list) list;
      (** lazy-fission pre-step: per fissionable kernel, the models of
          its parts (each part name is unique) *)
  part_arrays : (string * string list) list;
      (** host arrays touched per fission part (to decide which parts
          stay in the violating group) *)
  feasible : string list -> bool;
      (** may this set of units be fused? (OEG quotient acyclicity) *)
  solution_feasible : groups:string list list -> fissioned:string list -> bool;
      (** joint schedulability of a whole solution: contracting every
          group simultaneously must leave the OEG acyclic (two
          individually feasible groups can still deadlock each other) *)
  objective : Kft_perfmodel.Perfmodel.unit_model list list -> float;
      (** black-box solution objective, higher is better (projected GFLOPS) *)
  shared_ok : Kft_perfmodel.Perfmodel.unit_model list -> bool;
      (** does the group's staging footprint fit per-block shared memory? *)
}

type solution = {
  groups : string list list;
  fissioned : string list;  (** original kernels replaced by their parts *)
  fitness : float;
  raw_objective : float;
  violations : int;
}

type result = {
  best : solution;
  history : (int * float) list;  (** (generation, best fitness) when improved *)
  fission_events : int;
  avg_fissions_per_generation : float;
  converged_at : int;  (** first generation within 0.1 % of the final best *)
  evaluations : int;
}

val run : ?on_generation:(int -> solution -> unit) -> params -> problem -> result
(** Deterministic for a fixed [params.seed]. *)
