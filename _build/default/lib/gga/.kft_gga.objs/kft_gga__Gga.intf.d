lib/gga/gga.mli: Kft_perfmodel
