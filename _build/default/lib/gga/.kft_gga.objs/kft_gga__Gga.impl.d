lib/gga/gga.ml: Array Float Hashtbl Kft_perfmodel List Printf Random String
