(* Evaluation applications: structural invariants + baseline executability. *)

open Kft_cuda.Ast
module Apps = Kft_apps.Apps

let apps = lazy (Apps.all ())

let find name = List.find (fun (a : Apps.app) -> a.app_name = name) (Lazy.force apps)

let test_all_apps_present () =
  let names = List.map (fun (a : Apps.app) -> a.app_name) (Lazy.force apps) in
  Alcotest.(check (list string)) "paper order"
    [ "SCALE-LES"; "HOMME"; "Fluam"; "MITgcm"; "AWP-ODC-GPU"; "B-CALM" ]
    names

let test_by_name () =
  Alcotest.(check bool) "case-insensitive" true (Apps.by_name "b-calm" <> None);
  Alcotest.(check bool) "unknown" true (Apps.by_name "nope" = None)

let test_kernel_counts () =
  let expect =
    (* (kernels, min_arrays) mirroring the population mix of Table 1,
       scaled (see EXPERIMENTS.md) *)
    [ ("SCALE-LES", 113); ("HOMME", 43); ("Fluam", 102); ("MITgcm", 37);
      ("AWP-ODC-GPU", 12); ("B-CALM", 23) ]
  in
  List.iter
    (fun (name, kernels) ->
      let a = find name in
      Alcotest.(check int) (name ^ " kernels") kernels (List.length a.program.p_kernels))
    expect

let test_schedule_covers_kernels () =
  List.iter
    (fun (a : Apps.app) ->
      let launched =
        List.filter_map
          (function Launch l -> Some l.l_kernel | _ -> None)
          a.program.p_schedule
        |> List.sort_uniq compare
      in
      let declared = List.map (fun k -> k.k_name) a.program.p_kernels |> List.sort compare in
      Alcotest.(check (list string)) (a.app_name ^ " schedule covers kernels") declared launched)
    (Lazy.force apps)

let test_args_match_params () =
  List.iter
    (fun (a : Apps.app) ->
      List.iter
        (function
          | Launch l ->
              let k = find_kernel a.program l.l_kernel in
              Alcotest.(check int)
                (a.app_name ^ "/" ^ l.l_kernel ^ " arity")
                (List.length k.k_params) (List.length l.l_args)
          | _ -> ())
        a.program.p_schedule)
    (Lazy.force apps)

let test_arrays_declared () =
  List.iter
    (fun (a : Apps.app) ->
      List.iter
        (function
          | Launch l ->
              List.iter
                (function
                  | Arg_array arr ->
                      Alcotest.(check bool)
                        (a.app_name ^ " declares " ^ arr)
                        true
                        (List.exists (fun d -> d.a_name = arr) a.program.p_arrays)
                  | _ -> ())
                l.l_args
          | _ -> ())
        a.program.p_schedule)
    (Lazy.force apps)

let test_baselines_execute () =
  (* every app's original program runs on the simulator without faults *)
  List.iter
    (fun (a : Apps.app) ->
      match Util.run_to_memory a.program with
      | (_ : Kft_sim.Memory.t) -> ()
      | exception Kft_sim.Interp.Sim_error { kernel; message } ->
          Alcotest.fail (Printf.sprintf "%s: %s: %s" a.app_name kernel message))
    (Lazy.force apps)

let test_deterministic_baseline () =
  let a = find "MITgcm" in
  let m1 = Util.run_to_memory a.program and m2 = Util.run_to_memory a.program in
  Alcotest.(check bool) "bit-identical reruns" true (Kft_sim.Memory.equal_within ~tol:0.0 m1 m2)

let test_awp_separable () =
  let a = find "AWP-ODC-GPU" in
  List.iter
    (fun name ->
      let k = find_kernel a.program name in
      Alcotest.(check bool) (name ^ " fissionable") true (Kft_fission.Fission.fissionable k))
    [ "vel_a"; "vel_b"; "str_a"; "str_b" ]

let test_bcalm_capacity_pressure () =
  (* fusing two pole kernels whole must exceed the per-block shared
     memory at the production block size: the fission trigger *)
  let a = find "B-CALM" in
  let extract i name =
    Kft_codegen.Canonical.extract ~deep:`Sequential ~index:i a.program
      (Util.launch_of a.program name)
  in
  let m0 = extract 0 "pole_a" and m1 = extract 1 "pole_b" in
  match Kft_codegen.Fusion.check_group [ m0; m1 ] with
  | Ok plan ->
      let bx, by, _ = (Util.launch_of a.program "pole_a").l_block in
      Alcotest.(check bool) "over capacity" true
        (plan.p_shared_bytes bx by > Util.device.shared_mem_per_block)
  | Error e -> Alcotest.fail e

let test_homme_width_mix () =
  let a = find "HOMME" in
  let widths =
    List.filter_map
      (function Launch l -> Some (let x, _, _ = l.l_domain in x) | _ -> None)
      a.program.p_schedule
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "two domain widths" true (List.length widths >= 2)

let test_fluam_latency_population () =
  let a = find "Fluam" in
  let parts =
    List.filter (fun k -> String.length k.k_name >= 4 && String.sub k.k_name 0 4 = "part")
      a.program.p_kernels
  in
  Alcotest.(check int) "12 particle kernels" 12 (List.length parts)

let suite =
  [
    Alcotest.test_case "all six apps" `Quick test_all_apps_present;
    Alcotest.test_case "lookup by name" `Quick test_by_name;
    Alcotest.test_case "kernel counts" `Quick test_kernel_counts;
    Alcotest.test_case "schedule covers kernels" `Quick test_schedule_covers_kernels;
    Alcotest.test_case "launch arities" `Quick test_args_match_params;
    Alcotest.test_case "arrays declared" `Quick test_arrays_declared;
    Alcotest.test_case "baselines execute" `Slow test_baselines_execute;
    Alcotest.test_case "deterministic baseline" `Quick test_deterministic_baseline;
    Alcotest.test_case "AWP kernels separable" `Quick test_awp_separable;
    Alcotest.test_case "B-CALM capacity pressure" `Quick test_bcalm_capacity_pressure;
    Alcotest.test_case "HOMME width mix" `Quick test_homme_width_mix;
    Alcotest.test_case "Fluam latency population" `Quick test_fluam_latency_population;
  ]
