(* Device models and the occupancy calculator. *)

module D = Kft_device.Device
module O = Kft_device.Occupancy

let k20x = D.k20x

let test_device_lookup () =
  Alcotest.(check bool) "k20x by name" true (D.by_name "tesla k20x" = Some D.k20x);
  Alcotest.(check bool) "k40 by name" true (D.by_name "Tesla K40" = Some D.k40);
  Alcotest.(check bool) "unknown" true (D.by_name "H100" = None)

let test_report_roundtrip () =
  List.iter
    (fun d ->
      let d' = D.of_query_report (D.query_report d) in
      Alcotest.(check bool) ("roundtrip " ^ d.D.name) true (d = d'))
    D.all

let test_report_amend () =
  (* the programmer can edit the device metadata file *)
  let text = D.query_report k20x in
  let text =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line >= 22 && String.sub line 0 22 = "device.peak_bandwidth_" then
             "device.peak_bandwidth_gbs = 199"
           else line)
         (String.split_on_char '\n' text))
  in
  let d = D.of_query_report text in
  Util.check_float "amended bandwidth" 199.0 d.D.peak_bandwidth_gbs

let occ ?(regs = 32) ?(shared = 0) threads =
  O.calculate k20x { block_threads = threads; regs_per_thread = regs; shared_per_block = shared }

let test_full_occupancy () =
  (* 256 threads, low registers, no shared memory: warp-limited at 1.0 *)
  let r = occ ~regs:16 256 in
  Util.check_float "occupancy 1.0" 1.0 r.O.occupancy;
  Alcotest.(check int) "8 blocks" 8 r.O.active_blocks_per_sm

let test_block_limit () =
  (* tiny blocks: capped at 16 blocks/SM -> 16 warps of 64 *)
  let r = occ ~regs:16 32 in
  Alcotest.(check int) "16 blocks" 16 r.O.active_blocks_per_sm;
  Util.check_float "occupancy 0.25" 0.25 r.O.occupancy;
  Alcotest.(check bool) "limited by blocks" true (r.O.limiter = `Blocks)

let test_register_limit () =
  (* 128 regs/thread, 256-thread blocks: 128*32=4096 regs per warp,
     65536/4096 = 16 warps -> 2 blocks of 8 warps *)
  let r = occ ~regs:128 256 in
  Alcotest.(check int) "2 blocks" 2 r.O.active_blocks_per_sm;
  Alcotest.(check bool) "limited by registers" true (r.O.limiter = `Registers)

let test_shared_limit () =
  (* 24 KB per block: 2 blocks fit in 48 KB *)
  let r = occ ~regs:16 ~shared:24576 256 in
  Alcotest.(check int) "2 blocks" 2 r.O.active_blocks_per_sm;
  Alcotest.(check bool) "limited by shared" true (r.O.limiter = `Shared_memory)

let test_infeasible () =
  Alcotest.(check bool) "block too large" true ((occ 2048).O.limiter = `Infeasible);
  Alcotest.(check bool) "shared too large" true ((occ ~shared:100000 256).O.limiter = `Infeasible);
  Util.check_float "zero occupancy" 0.0 (occ 2048).O.occupancy;
  (* 1024-thread blocks with >64 regs/thread never fit on Kepler *)
  Alcotest.(check int) "reg-starved 1024 blocks" 0 (occ ~regs:80 1024).O.active_blocks_per_sm

let test_shared_granularity () =
  (* 100 bytes rounds up to 256: 48K/256 = 192, capped by other limits *)
  let a = occ ~regs:16 ~shared:100 256 and b = occ ~regs:16 ~shared:256 256 in
  Alcotest.(check int) "granularity rounding" a.O.active_blocks_per_sm b.O.active_blocks_per_sm

let test_tune_improves () =
  (* shared footprint grows with the block: the tuner balances *)
  let shared (bx, by, _) = (bx + 2) * (by + 2) * 8 in
  let dims, result =
    O.tune k20x ~regs_per_thread:32 ~shared_per_block:shared ~current:(512, 2, 1)
  in
  let before =
    O.calculate k20x
      { block_threads = 1024; regs_per_thread = 32; shared_per_block = shared (512, 2, 1) }
  in
  Alcotest.(check bool) "tuned at least as good" true (result.O.occupancy >= before.O.occupancy);
  let bx, by, bz = dims in
  Alcotest.(check bool) "dims feasible" true (bx * by * bz <= k20x.D.max_threads_per_block)

let test_tune_keeps_current_on_tie () =
  let dims, _ = O.tune k20x ~regs_per_thread:16 ~shared_per_block:(fun _ -> 0) ~current:(256, 1, 1) in
  (* (256,1,1) already achieves 1.0 occupancy: must be kept *)
  Alcotest.(check bool) "current kept" true (dims = (256, 1, 1))

let prop_occupancy_bounded =
  QCheck.Test.make ~name:"occupancy in [0,1]" ~count:200
    QCheck.(triple (int_range 1 1024) (int_range 0 255) (int_range 0 65536))
    (fun (threads, regs, shared) ->
      let r = occ ~regs ~shared threads in
      r.O.occupancy >= 0.0 && r.O.occupancy <= 1.0)

let prop_occupancy_antitone_regs =
  QCheck.Test.make ~name:"occupancy non-increasing in registers" ~count:200
    QCheck.(pair (int_range 1 512) (int_range 16 120))
    (fun (threads, regs) ->
      (occ ~regs threads).O.occupancy >= (occ ~regs:(regs + 32) threads).O.occupancy)

let prop_occupancy_antitone_shared =
  QCheck.Test.make ~name:"occupancy non-increasing in shared memory" ~count:200
    QCheck.(pair (int_range 1 512) (int_range 0 24000))
    (fun (threads, shared) ->
      (occ ~shared threads).O.occupancy >= (occ ~shared:(shared + 8192) threads).O.occupancy)

let suite =
  [
    Alcotest.test_case "device lookup" `Quick test_device_lookup;
    Alcotest.test_case "query report roundtrip" `Quick test_report_roundtrip;
    Alcotest.test_case "query report amendable" `Quick test_report_amend;
    Alcotest.test_case "full occupancy" `Quick test_full_occupancy;
    Alcotest.test_case "block-count limit" `Quick test_block_limit;
    Alcotest.test_case "register limit" `Quick test_register_limit;
    Alcotest.test_case "shared-memory limit" `Quick test_shared_limit;
    Alcotest.test_case "infeasible configurations" `Quick test_infeasible;
    Alcotest.test_case "shared granularity" `Quick test_shared_granularity;
    Alcotest.test_case "tuning improves occupancy" `Quick test_tune_improves;
    Alcotest.test_case "tuning keeps current on tie" `Quick test_tune_keeps_current_on_tie;
    QCheck_alcotest.to_alcotest prop_occupancy_bounded;
    QCheck_alcotest.to_alcotest prop_occupancy_antitone_regs;
    QCheck_alcotest.to_alcotest prop_occupancy_antitone_shared;
  ]
