(* Grouped genetic algorithm: parameters, operators, lazy fission. *)

module Gga = Kft_gga.Gga
module PM = Kft_perfmodel.Perfmodel

let test_params_roundtrip () =
  let p = { Gga.default_params with generations = 77; crossover_rate = 0.65; seed = 3 } in
  let p' = Gga.params_of_text (Gga.params_to_text p) in
  Alcotest.(check bool) "roundtrip" true (p = p')

let test_params_partial_file () =
  let p = Gga.params_of_text "generations = 9\n# a comment\npopulation = 5\n" in
  Alcotest.(check int) "generations" 9 p.generations;
  Alcotest.(check int) "population" 5 p.population;
  Alcotest.(check int) "default seed kept" Gga.default_params.seed p.seed

let test_params_malformed () =
  match Gga.params_of_text "what is this" with
  | (_ : Gga.params) -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

(* a synthetic problem: units u0..u(n-1); consecutive pairs share an
   array, so the ideal grouping is pairs {u0,u1} {u2,u3} ... *)
let unit_model name arrays =
  {
    PM.unit_name = name;
    flops = 10_000.0;
    bytes = 80_000.0;
    runtime_us = 5.0;
    arrays =
      List.map
        (fun a -> { PM.host = a; reads = 4; writes = 1; radius = (1, 1, 0); traffic_share = 1.0 /. float_of_int (List.length arrays) })
        arrays;
    block = (16, 8, 1);
    domain = (32, 16, 1);
    nest_depth = 1;
    fusable = true;
  }

let pair_problem n =
  let units =
    List.init n (fun i ->
        unit_model (Printf.sprintf "u%d" i) [ Printf.sprintf "S%d" (i / 2); Printf.sprintf "O%d" i ])
  in
  {
    Gga.units;
    fission_parts = [];
    part_arrays = [];
    feasible = (fun _ -> true);
    solution_feasible = (fun ~groups:_ ~fissioned:_ -> true);
    objective = PM.objective Util.device;
    shared_ok = (fun _ -> true);
  }

let small = { Gga.default_params with generations = 60; population = 24 }

let test_deterministic () =
  let p = pair_problem 6 in
  let r1 = Gga.run small p and r2 = Gga.run small p in
  Alcotest.(check bool) "same best" true (r1.best.groups = r2.best.groups);
  Util.check_float "same fitness" r1.best.fitness r2.best.fitness;
  let r3 = Gga.run { small with seed = small.seed + 1 } p in
  ignore r3 (* different seed may differ; just must not crash *)

let test_partition_invariant () =
  let p = pair_problem 8 in
  let r = Gga.run small p in
  let all = List.concat r.best.groups |> List.sort compare in
  let expected = List.init 8 (fun i -> Printf.sprintf "u%d" i) |> List.sort compare in
  Alcotest.(check (list string)) "groups partition the units" expected all

let test_finds_sharing_pairs () =
  let p = pair_problem 6 in
  let r = Gga.run { small with generations = 120 } p in
  (* the sharing pairs must be grouped together *)
  let together a b =
    List.exists (fun g -> List.mem a g && List.mem b g) r.best.groups
  in
  Alcotest.(check bool) "u0+u1" true (together "u0" "u1");
  Alcotest.(check bool) "u2+u3" true (together "u2" "u3");
  Alcotest.(check bool) "u4+u5" true (together "u4" "u5")

let test_improves_over_singletons () =
  let p = pair_problem 6 in
  let r = Gga.run small p in
  let singletons = p.objective (List.map (fun (u : PM.unit_model) -> [ u ]) p.units) in
  Alcotest.(check bool) "beats singletons" true (r.best.raw_objective > singletons)

let test_respects_feasibility () =
  let p = pair_problem 4 in
  let p = { p with feasible = (fun g -> List.length g <= 1) } in
  let r = Gga.run small p in
  Alcotest.(check int) "no violations" 0 r.best.violations;
  Alcotest.(check bool) "all singletons" true (List.for_all (fun g -> List.length g = 1) r.best.groups)

let test_joint_feasibility_penalized () =
  let p = pair_problem 4 in
  (* forbid any solution with more than one multi-group *)
  let p =
    { p with
      solution_feasible =
        (fun ~groups ~fissioned:_ ->
          List.length (List.filter (fun g -> List.length g > 1) groups) <= 1) }
  in
  let r = Gga.run { small with generations = 120 } p in
  Alcotest.(check int) "no violations in best" 0 r.best.violations;
  Alcotest.(check bool) "at most one fused group" true
    (List.length (List.filter (fun g -> List.length g > 1) r.best.groups) <= 1)

let test_lazy_fission_triggers () =
  (* one big unit whose staging violates capacity; its parts fit and pair
     with a small consumer *)
  let big = unit_model "big" [ "X"; "Y"; "Z"; "W" ] in
  let partner = unit_model "p" [ "X" ] in
  let parts = [ unit_model "big__f1" [ "X" ]; unit_model "big__f2" [ "Y"; "Z"; "W" ] ] in
  let problem =
    {
      Gga.units = [ big; partner ];
      fission_parts = [ ("big", parts) ];
      part_arrays = [ ("big__f1", [ "X" ]); ("big__f2", [ "Y"; "Z"; "W" ]) ];
      feasible = (fun _ -> true);
      solution_feasible = (fun ~groups:_ ~fissioned:_ -> true);
      objective = PM.objective Util.device;
      shared_ok =
        (fun models ->
          (* any group containing "big" whole violates capacity *)
          not (List.exists (fun (m : PM.unit_model) -> m.unit_name = "big") models
               && List.length models > 1));
    }
  in
  let r = Gga.run { small with generations = 120 } problem in
  Alcotest.(check bool) "fission happened during search" true (r.fission_events > 0);
  Alcotest.(check bool) "avg fissions positive" true (r.avg_fissions_per_generation > 0.0)

let test_fission_disabled () =
  let big = unit_model "big" [ "X"; "Y" ] in
  let problem =
    {
      (pair_problem 2) with
      Gga.units = [ big ];
      fission_parts = [ ("big", [ unit_model "big__f1" [ "X" ] ]) ];
      shared_ok = (fun _ -> false);
    }
  in
  let r = Gga.run { small with fission_enabled = false } problem in
  Alcotest.(check int) "no fission events" 0 r.fission_events

let test_history_monotone () =
  let p = pair_problem 8 in
  let r = Gga.run small p in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "best fitness non-decreasing" true (mono r.history);
  Alcotest.(check bool) "converged_at within budget" true
    (r.converged_at >= 0 && r.converged_at <= small.generations)

let suite =
  [
    Alcotest.test_case "parameter file roundtrip" `Quick test_params_roundtrip;
    Alcotest.test_case "partial parameter file" `Quick test_params_partial_file;
    Alcotest.test_case "malformed parameter file" `Quick test_params_malformed;
    Alcotest.test_case "deterministic for a seed" `Quick test_deterministic;
    Alcotest.test_case "groups partition units" `Quick test_partition_invariant;
    Alcotest.test_case "finds sharing pairs" `Quick test_finds_sharing_pairs;
    Alcotest.test_case "improves over singletons" `Quick test_improves_over_singletons;
    Alcotest.test_case "respects per-group feasibility" `Quick test_respects_feasibility;
    Alcotest.test_case "respects joint feasibility" `Quick test_joint_feasibility_penalized;
    Alcotest.test_case "lazy fission triggers" `Quick test_lazy_fission_triggers;
    Alcotest.test_case "fission can be disabled" `Quick test_fission_disabled;
    Alcotest.test_case "history monotone" `Quick test_history_monotone;
  ]
