(* Randomized end-to-end property: generate a random stencil program
   (random chains, radii, sharing and coefficients), run the full
   pipeline with a small GGA budget, and require bit-exact verification
   of the transformed program. This hammers the fusion feasibility rules
   and the code generator far beyond the hand-written cases. *)

open Kft_cuda.Ast
module F = Kft_framework.Framework

let dims = (24, 12, 6)

(* a random program over [n_arrays] fields: each kernel reads 1-2 random
   arrays at a random radius (0..2, horizontal or 3D) and writes a
   random array it does not read *)
type spec = {
  n_arrays : int;
  kernels : (int list * int * bool * int) list;
      (** (read array ids, written array id, threed, radius) *)
}

let spec_gen =
  let open QCheck.Gen in
  let* n_arrays = int_range 3 6 in
  let* n_kernels = int_range 2 7 in
  let* kernels =
    list_repeat n_kernels
      (let* w = int_range 0 (n_arrays - 1) in
       let* r1 = int_range 0 (n_arrays - 1) in
       let* r2 = int_range 0 (n_arrays - 1) in
       let* two = bool in
       let* threed = bool in
       let* radius = int_range 0 2 in
       let reads =
         List.sort_uniq compare (List.filter (fun a -> a <> w) (if two then [ r1; r2 ] else [ r1 ]))
       in
       let reads = if reads = [] then [ (w + 1) mod n_arrays ] else reads in
       return (reads, w, threed, radius))
  in
  return { n_arrays; kernels }

let program_of_spec spec =
  let nx, ny, nz = dims in
  let arr i = Printf.sprintf "A%d" i in
  let kernels_src =
    List.mapi
      (fun idx (reads, w, threed, radius) ->
        let name = Printf.sprintf "k%02d" idx in
        let k = Var "k" in
        let body_reads =
          List.concat_map
            (fun a ->
              let offs =
                if radius = 0 then [ (0, 0, 0) ]
                else
                  [ (radius, 0, 0); (-radius, 0, 0); (0, radius, 0); (0, -radius, 0) ]
                  @ (if threed then [ (0, 0, radius); (0, 0, -radius) ] else [])
              in
              List.map
                (fun (dx, dy, dz) ->
                  Index
                    ( arr a,
                      [
                        Binop
                          ( Add,
                            Binop
                              ( Mul,
                                Binop
                                  ( Add,
                                    Binop (Mul, Binop (Add, k, Int_lit dz), Var "ny"),
                                    Binop (Add, Var "j", Int_lit dy) ),
                                Var "nx" ),
                            Binop (Add, Var "i", Int_lit dx) );
                      ] ))
                offs)
            reads
        in
        let sum = List.fold_left (fun acc e -> Binop (Add, acc, e)) (Double_lit 0.125) body_reads in
        let m = max radius 1 in
        let mz = if threed then radius else 0 in
        let guard =
          Binop
            ( And,
              Binop
                ( And,
                  Binop (Ge, Var "i", Int_lit m),
                  Binop (Lt, Var "i", Binop (Sub, Var "nx", Int_lit m)) ),
              Binop
                ( And,
                  Binop (Ge, Var "j", Int_lit m),
                  Binop (Lt, Var "j", Binop (Sub, Var "ny", Int_lit m)) ) )
        in
        let params =
          List.map
            (fun a -> Array_param { name = arr a; elem_ty = Double; quals = [ Const ] })
            reads
          @ [ Array_param { name = arr w; elem_ty = Double; quals = [] };
              Scalar_param { name = "nx"; ty = Int };
              Scalar_param { name = "ny"; ty = Int };
              Scalar_param { name = "nz"; ty = Int };
              Scalar_param { name = "c"; ty = Double } ]
        in
        let body =
          [
            Decl (Int, "i", Some (Binop (Add, Binop (Mul, Builtin (Block_idx X), Builtin (Block_dim X)), Builtin (Thread_idx X))));
            Decl (Int, "j", Some (Binop (Add, Binop (Mul, Builtin (Block_idx Y), Builtin (Block_dim Y)), Builtin (Thread_idx Y))));
            If
              ( guard,
                [
                  For
                    {
                      index = "k";
                      lo = Int_lit mz;
                      hi = Binop (Sub, Var "nz", Int_lit mz);
                      step = 1;
                      body =
                        [
                          Assign
                            ( Lindex
                                ( arr w,
                                  [
                                    Binop
                                      ( Add,
                                        Binop (Mul, Binop (Add, Binop (Mul, k, Var "ny"), Var "j"), Var "nx"),
                                        Var "i" );
                                  ] ),
                              Binop (Mul, Var "c", sum) );
                        ];
                    };
                ],
                [] );
          ]
        in
        let launch =
          {
            l_kernel = name;
            l_domain = (nx, ny, 1);
            l_block = (8, 4, 1);
            l_args =
              List.map (fun a -> Arg_array (arr a)) reads
              @ [ Arg_array (arr w); Arg_int nx; Arg_int ny; Arg_int nz;
                  Arg_double (0.1 +. (0.01 *. float_of_int idx)) ];
          }
        in
        ({ k_name = name; k_params = params; k_body = body }, launch))
      spec.kernels
  in
  {
    p_name = "random";
    p_arrays =
      List.init spec.n_arrays (fun i ->
          { a_name = arr i; a_elem_ty = Double; a_dims = [ nx; ny; nz ] });
    p_kernels = List.map fst kernels_src;
    p_schedule = List.map (fun (_, l) -> Launch l) kernels_src;
  }

let config =
  {
    F.default_config with
    gga_params = { Kft_gga.Gga.default_params with generations = 25; population = 16 };
  }

let prop_random_pipeline_verifies =
  QCheck.Test.make ~name:"random program: transform verifies bit-exactly" ~count:25
    (QCheck.make ~print:(fun s -> Kft_cuda.Pp.program (program_of_spec s)) spec_gen)
    (fun spec ->
      let prog = program_of_spec spec in
      (* the generator can produce invalid programs only via a bug in this
         test; validate to keep failures meaningful *)
      match Kft_cuda.Check.program prog with
      | _ :: _ -> QCheck.assume_fail ()
      | [] -> (
          let r = F.transform ~config prog in
          match r.verified with
          | Ok () -> true
          | Error diffs ->
              QCheck.Test.fail_reportf "verification failed on %s for program:\n%s"
                (String.concat "," (List.map fst diffs))
                (Kft_cuda.Pp.program prog)))

let prop_random_pipeline_manual_codegen =
  QCheck.Test.make ~name:"random program: expert codegen verifies too" ~count:15
    (QCheck.make ~print:(fun s -> Kft_cuda.Pp.program (program_of_spec s)) spec_gen)
    (fun spec ->
      let prog = program_of_spec spec in
      match Kft_cuda.Check.program prog with
      | _ :: _ -> QCheck.assume_fail ()
      | [] -> (
          let r =
            F.transform
              ~config:{ config with codegen_options = Kft_codegen.Fusion.manual_options }
              prog
          in
          match r.verified with Ok () -> true | Error _ -> false))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_pipeline_verifies;
    QCheck_alcotest.to_alcotest prop_random_pipeline_manual_codegen;
  ]
