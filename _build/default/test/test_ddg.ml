(* DDG / OEG construction (Algorithm 1) and graph optimizations. *)

open Kft_cuda.Ast
module D = Kft_ddg.Ddg
module G = Kft_graph.Digraph

let prog = Util.producer_consumer_program ()

let test_arrays_touched () =
  let r, w = D.arrays_touched prog (Util.launch_of prog "produce") in
  Alcotest.(check (list string)) "reads" [ "A" ] r;
  Alcotest.(check (list string)) "writes" [ "B" ] w

let test_ddg_structure () =
  let g = D.build prog in
  (* nodes: produce, consume, A, B, C *)
  Alcotest.(check int) "5 ddg nodes" 5 (G.node_count g.ddg);
  Alcotest.(check bool) "A -> produce" true (G.mem_edge g.ddg "A" "produce");
  Alcotest.(check bool) "produce -> B" true (G.mem_edge g.ddg "produce" "B");
  Alcotest.(check bool) "B -> consume" true (G.mem_edge g.ddg "B" "consume");
  Alcotest.(check bool) "consume -> C" true (G.mem_edge g.ddg "consume" "C")

let test_oeg_precedence () =
  let g = D.build prog in
  Alcotest.(check bool) "produce before consume" true (D.oeg_precedes g "produce" "consume");
  Alcotest.(check bool) "not the reverse" false (D.oeg_precedes g "consume" "produce")

let chain_prog n =
  (* k_i : X_i -> X_{i+1}, a pointwise chain *)
  let dims = (8, 4, 2) in
  let src =
    String.concat "\n"
      (List.init n (fun i ->
           Util.pointwise_src ~name:(Printf.sprintf "k%d" i)
             ~a:(Printf.sprintf "X%d" i)
             ~b:(Printf.sprintf "X%d" i)
             ~dst:(Printf.sprintf "X%d" (i + 1))))
  in
  {
    p_name = "chain";
    p_arrays = List.init (n + 1) (fun i -> Util.arr3 dims (Printf.sprintf "X%d" i));
    p_kernels = Kft_cuda.Parse.kernels src;
    p_schedule =
      List.init n (fun i ->
          Launch
            {
              l_kernel = Printf.sprintf "k%d" i;
              l_domain = (8, 4, 1);
              l_block = (8, 4, 1);
              l_args =
                Util.std_args dims
                  [ Printf.sprintf "X%d" i; Printf.sprintf "X%d" i; Printf.sprintf "X%d" (i + 1) ]
                  0.5;
            });
  }

let test_transitive_reduction () =
  let g = D.build (chain_prog 4) in
  (* the OEG of a chain is exactly the chain after reduction *)
  Alcotest.(check int) "3 edges" 3 (G.edge_count g.oeg);
  Alcotest.(check bool) "k0 still precedes k3 transitively" true (D.oeg_precedes g "k0" "k3")

let test_fusion_feasible () =
  let g = D.build (chain_prog 4) in
  Alcotest.(check bool) "adjacent pair" true (D.fusion_feasible g [ "k0"; "k1" ]);
  Alcotest.(check bool) "whole chain" true (D.fusion_feasible g [ "k0"; "k1"; "k2"; "k3" ]);
  (* skipping the middle creates a path out and back: infeasible *)
  Alcotest.(check bool) "k0+k2 infeasible" false (D.fusion_feasible g [ "k0"; "k2" ]);
  Alcotest.(check bool) "singleton trivially ok" true (D.fusion_feasible g [ "k1" ])

let test_internal_precedence () =
  let g = D.build (chain_prog 3) in
  Alcotest.(check bool) "chain pair has precedence" true
    (D.group_has_internal_precedence g [ "k0"; "k1" ]);
  let g2 = D.build prog in
  ignore g2;
  (* two kernels writing unrelated arrays have none *)
  Alcotest.(check bool) "no precedence" false (D.group_has_internal_precedence g [ "k0" ])

let multi_writer_prog () =
  let dims = (8, 4, 2) in
  let src =
    Util.pointwise_src ~name:"w1" ~a:"A" ~b:"A" ~dst:"X"
    ^ Util.pointwise_src ~name:"r1" ~a:"X" ~b:"A" ~dst:"Y"
    ^ Util.pointwise_src ~name:"w2" ~a:"B" ~b:"B" ~dst:"X"
    ^ Util.pointwise_src ~name:"r2" ~a:"X" ~b:"B" ~dst:"Z"
  in
  {
    p_name = "mw";
    p_arrays = List.map (Util.arr3 dims) [ "A"; "B"; "X"; "Y"; "Z" ];
    p_kernels = Kft_cuda.Parse.kernels src;
    p_schedule =
      List.map
        (fun (k, args) ->
          Launch
            { l_kernel = k; l_domain = (8, 4, 1); l_block = (8, 4, 1);
              l_args = Util.std_args dims args 0.5 })
        [
          ("w1", [ "A"; "A"; "X" ]);
          ("r1", [ "X"; "A"; "Y" ]);
          ("w2", [ "B"; "B"; "X" ]);
          ("r2", [ "X"; "B"; "Z" ]);
        ];
  }

let test_multi_writer_versioning () =
  let g = D.build (multi_writer_prog ()) in
  (* X is written by w1 and w2: a redundant instance is created *)
  Alcotest.(check bool) "X versioned" true (List.mem_assoc "X" g.versioned_arrays);
  Alcotest.(check bool) "X@1 node exists" true (G.mem_node g.ddg "X@1");
  (* the second reader must read the second instance *)
  Alcotest.(check bool) "r2 reads X@1" true (G.mem_edge g.ddg "X@1" "r2");
  Alcotest.(check bool) "r1 reads original X" true (G.mem_edge g.ddg "X" "r1")

let test_repeated_invocation_keys () =
  let p = chain_prog 2 in
  let p = { p with p_schedule = p.p_schedule @ [ List.hd p.p_schedule ] } in
  let g = D.build p in
  Alcotest.(check bool) "k0#2 key" true (G.mem_node g.oeg "k0#2")

let test_dot_outputs () =
  let g = D.build prog in
  let ddg_dot = D.ddg_dot g and oeg_dot = D.oeg_dot g in
  Alcotest.(check bool) "ddg dot nonempty" true (String.length ddg_dot > 50);
  Alcotest.(check bool) "oeg dot nonempty" true (String.length oeg_dot > 30);
  (* the amended-OEG reader accepts its own output *)
  let edges = D.oeg_of_amended_dot g oeg_dot in
  Alcotest.(check (list (pair string string))) "oeg edges" [ ("produce", "consume") ] edges

let suite =
  [
    Alcotest.test_case "arrays touched" `Quick test_arrays_touched;
    Alcotest.test_case "DDG structure (Algorithm 1)" `Quick test_ddg_structure;
    Alcotest.test_case "OEG precedence" `Quick test_oeg_precedence;
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "fusion feasibility" `Quick test_fusion_feasible;
    Alcotest.test_case "internal precedence" `Quick test_internal_precedence;
    Alcotest.test_case "multi-writer versioning" `Quick test_multi_writer_versioning;
    Alcotest.test_case "repeated invocation keys" `Quick test_repeated_invocation_keys;
    Alcotest.test_case "DOT outputs" `Quick test_dot_outputs;
  ]
