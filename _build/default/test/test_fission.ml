(* Kernel fission (Algorithm 2): plans, semantics preservation. *)

open Kft_cuda.Ast
module F = Kft_fission.Fission
module Gen = Kft_apps.Gen

let dims = { Gen.nx = 16; ny = 8; nz = 6 }

(* a Figure-3 style already-fused kernel with two separable groups *)
let fused_built =
  Gen.multi_output dims ~name:"kern_a"
    ~groups:
      [
        ("R", [ "S"; "V" ], [ (1, 0, 0); (-1, 0, 0) ]);
        ("W", [ "Q"; "P" ], [ (0, 1, 0); (0, -1, 0) ]);
      ]
    ~coef:0.3 ()

let fused_prog =
  {
    p_name = "fig3";
    p_arrays = fused_built.arrays;
    p_kernels = [ fused_built.kernel ];
    p_schedule = [ Launch fused_built.launch ];
  }

let test_fissionable () =
  Alcotest.(check bool) "separable kernel" true (F.fissionable fused_built.kernel);
  let linked = Kft_cuda.Parse.kernel (Util.pointwise_src ~name:"pw" ~a:"A" ~b:"B" ~dst:"C") in
  Alcotest.(check bool) "single-output kernel" false (F.fissionable linked)

let test_plan_parts () =
  match F.plan fused_built.kernel with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
      Alcotest.(check int) "two parts" 2 (List.length plan.parts);
      List.iter
        (fun (p : F.part) ->
          (* each part only references its own arrays *)
          let refs = referenced_arrays p.part_kernel in
          Alcotest.(check bool)
            ("arrays confined: " ^ p.part_kernel.k_name)
            true
            (List.for_all (fun a -> List.mem a p.part_arrays) refs))
        plan.parts;
      (* pairwise disjoint and complete *)
      let all = List.concat_map (fun (p : F.part) -> p.part_arrays) plan.parts in
      Alcotest.(check int) "complete" 6 (List.length (List.sort_uniq compare all));
      Alcotest.(check int) "disjoint" (List.length all) (List.length (List.sort_uniq compare all))

let test_part_naming () =
  match F.plan fused_built.kernel with
  | Some plan ->
      List.iteri
        (fun i (p : F.part) ->
          Alcotest.(check string) "name" (Printf.sprintf "kern_a__f%d" (i + 1)) p.part_kernel.k_name)
        plan.parts
  | None -> Alcotest.fail "no plan"

let test_seed_changes_order_not_content () =
  let p1 = Option.get (F.plan ~seed:1 fused_built.kernel) in
  let p2 = Option.get (F.plan ~seed:2 fused_built.kernel) in
  let sets p =
    List.map (fun (x : F.part) -> List.sort compare x.part_arrays) p.F.parts
    |> List.sort compare
  in
  Alcotest.(check bool) "same components" true (sets p1 = sets p2)

let test_split_launch () =
  let plan = Option.get (F.plan fused_built.kernel) in
  let launches = F.split_launch fused_built.kernel plan fused_built.launch in
  Alcotest.(check int) "two launches" 2 (List.length launches);
  List.iter2
    (fun (l : launch) (p : F.part) ->
      Alcotest.(check string) "kernel name" p.part_kernel.k_name l.l_kernel;
      Alcotest.(check int) "arity" (List.length p.part_kernel.k_params) (List.length l.l_args))
    launches plan.parts

let test_fission_preserves_semantics () =
  let plan = Option.get (F.plan fused_built.kernel) in
  let fissioned = F.apply_to_program ~plans:[ ("kern_a", plan) ] fused_prog in
  Alcotest.(check int) "two kernels" 2 (List.length fissioned.p_kernels);
  let m1 = Util.run_to_memory fused_prog and m2 = Util.run_to_memory fissioned in
  Alcotest.(check bool) "identical results" true (Kft_sim.Memory.equal_within ~tol:0.0 m1 m2)

let test_fission_semantics_all_apps_kernel () =
  (* the AWP velocity kernel (three groups) *)
  let app = Kft_apps.Apps.awp_odc () in
  let vel = find_kernel app.program "vel_a" in
  let plan = Option.get (F.plan vel) in
  Alcotest.(check int) "three parts" 3 (List.length plan.parts);
  let prog' = F.apply_to_program ~plans:[ ("vel_a", plan) ] app.program in
  let m1 = Util.run_to_memory app.program and m2 = Util.run_to_memory prog' in
  Alcotest.(check bool) "identical results" true (Kft_sim.Memory.equal_within ~tol:0.0 m1 m2)

let test_iterate_plan_fixpoint () =
  match F.iterate_plan fused_built.kernel with
  | Some plan ->
      List.iter
        (fun (p : F.part) ->
          Alcotest.(check bool) "no part fissionable" false (F.fissionable p.part_kernel))
        plan.parts
  | None -> Alcotest.fail "expected plan"

let test_guard_kept_in_parts () =
  let plan = Option.get (F.plan fused_built.kernel) in
  List.iter
    (fun (p : F.part) ->
      let has_guard =
        fold_stmts (fun acc s -> acc || match s with If _ -> true | _ -> false) false
          p.part_kernel.k_body
      in
      Alcotest.(check bool) "guard preserved" true has_guard)
    plan.parts

let suite =
  [
    Alcotest.test_case "fissionable detection" `Quick test_fissionable;
    Alcotest.test_case "plan parts disjoint+complete" `Quick test_plan_parts;
    Alcotest.test_case "part naming" `Quick test_part_naming;
    Alcotest.test_case "seed independence of components" `Quick test_seed_changes_order_not_content;
    Alcotest.test_case "split launch" `Quick test_split_launch;
    Alcotest.test_case "fission preserves semantics" `Quick test_fission_preserves_semantics;
    Alcotest.test_case "fission of AWP velocity kernel" `Quick test_fission_semantics_all_apps_kernel;
    Alcotest.test_case "iterated fission fixpoint" `Quick test_iterate_plan_fixpoint;
    Alcotest.test_case "guards preserved in parts" `Quick test_guard_kept_in_parts;
  ]
