(* The codeless performance projection (GGA objective). *)

module PM = Kft_perfmodel.Perfmodel
module M = Kft_metadata.Metadata

let prog = Util.producer_consumer_program ()

let meta = lazy (fst (M.gather Util.device prog))

let models () =
  let m = Lazy.force meta in
  (PM.of_metadata m "produce", PM.of_metadata m "consume")

let test_of_metadata () =
  let p, c = models () in
  Alcotest.(check string) "name" "produce" p.unit_name;
  Alcotest.(check bool) "bytes positive" true (p.bytes > 0.0);
  Alcotest.(check bool) "fusable" true (p.fusable && c.fusable);
  let share = List.fold_left (fun acc (a : PM.array_info) -> acc +. a.traffic_share) 0.0 p.arrays in
  Util.check_float ~eps:1e-9 "traffic shares sum to 1" 1.0 share

let test_halo_fraction () =
  Util.check_float "no halo" 0.0 (PM.halo_fraction ~block:(16, 8, 1) ~radius:(0, 0, 0));
  (* (18*10 - 128)/128 = 0.40625 *)
  Util.check_float "radius 1" 0.40625 (PM.halo_fraction ~block:(16, 8, 1) ~radius:(1, 1, 0))

let test_group_savings () =
  let p, c = models () in
  let single_p = PM.eval_group Util.device [ p ] in
  let single_c = PM.eval_group Util.device [ c ] in
  let fused = PM.eval_group Util.device [ p; c ] in
  Alcotest.(check bool) "raw adds up" true
    (Float.abs (fused.raw_bytes -. (single_p.raw_bytes +. single_c.raw_bytes)) < 1.0);
  Alcotest.(check bool) "reuse saves traffic" true (fused.traffic_bytes < fused.raw_bytes);
  Alcotest.(check int) "one launch saved" 1 fused.saved_launches;
  Alcotest.(check bool) "projected faster than sum" true
    (fused.projected_time_us < single_p.projected_time_us +. single_c.projected_time_us)

let test_singleton_no_savings () =
  let p, _ = models () in
  let e = PM.eval_group Util.device [ p ] in
  Util.check_float "no savings alone" e.raw_bytes e.traffic_bytes;
  Alcotest.(check int) "no staging" 0 e.shared_bytes_needed

let test_objective_prefers_fusion () =
  let p, c = models () in
  let fused = PM.objective Util.device [ [ p; c ] ] in
  let split = PM.objective Util.device [ [ p ]; [ c ] ] in
  Alcotest.(check bool) "fusion wins for sharing pair" true (fused > split)

let test_shared_bytes_scale_with_block () =
  let p, c = models () in
  let small = PM.shared_bytes_for_group ~block:(16, 8, 1) [ p; c ] in
  let large = PM.shared_bytes_for_group ~block:(64, 16, 1) [ p; c ] in
  Alcotest.(check bool) "staging grows with block" true (large > small);
  Alcotest.(check bool) "staging positive" true (small > 0)

let test_occupancy_discourages_mega_groups () =
  (* duplicate one model many times with distinct array names so the
     staging footprint explodes *)
  let p, _ = models () in
  let clones =
    List.init 48 (fun i ->
        {
          p with
          unit_name = Printf.sprintf "clone%d" i;
          arrays =
            List.map
              (fun (a : PM.array_info) ->
                { a with host = Printf.sprintf "%s_%d" a.host (i / 2); radius = (2, 2, 0) })
              p.arrays;
        })
  in
  let mega = PM.eval_group Util.device clones in
  Alcotest.(check bool) "staging over capacity flagged" true (not mega.shared_ok);
  (* time per member must be worse than a small group's *)
  let pair = PM.eval_group Util.device [ List.nth clones 0; List.nth clones 1 ] in
  Alcotest.(check bool) "mega group per-member time worse" true
    (mega.projected_time_us /. 48.0 > (pair.projected_time_us /. 2.0) *. 0.5)

let test_nested_loop_discount () =
  let p, c = models () in
  let deep = { c with nest_depth = 2 } in
  let normal = PM.eval_group Util.device [ p; c ] in
  let discounted = PM.eval_group Util.device [ p; deep ] in
  Alcotest.(check bool) "deep nests realize less reuse" true
    (discounted.traffic_bytes > normal.traffic_bytes)

let suite =
  [
    Alcotest.test_case "model from metadata" `Quick test_of_metadata;
    Alcotest.test_case "halo fraction" `Quick test_halo_fraction;
    Alcotest.test_case "group savings" `Quick test_group_savings;
    Alcotest.test_case "singleton baseline" `Quick test_singleton_no_savings;
    Alcotest.test_case "objective prefers fusion" `Quick test_objective_prefers_fusion;
    Alcotest.test_case "staging scales with block" `Quick test_shared_bytes_scale_with_block;
    Alcotest.test_case "mega groups discouraged" `Quick test_occupancy_discourages_mega_groups;
    Alcotest.test_case "nested-loop discount" `Quick test_nested_loop_discount;
  ]

let test_alternative_objective () =
  let p, c = models () in
  let fused = PM.objective_traffic Util.device [ [ p; c ] ] in
  let split = PM.objective_traffic Util.device [ [ p ]; [ c ] ] in
  Alcotest.(check bool) "traffic objective also prefers fusion" true (fused > split)

let alt_suite =
  [ Alcotest.test_case "alternative (traffic) objective" `Quick test_alternative_objective ]
