(* End-to-end pipeline and programmer-guided hooks. *)

module F = Kft_framework.Framework

let quick_gga = { Kft_gga.Gga.default_params with generations = 50; population = 24 }

let config = { F.default_config with gga_params = quick_gga }

let pc = Util.producer_consumer_program ()

let test_end_to_end_verified () =
  let r = F.transform ~config pc in
  (match r.verified with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Printf.sprintf "verification failed (%d arrays)" (List.length d)));
  Alcotest.(check bool) "speedup reported" true (r.speedup > 0.0);
  Alcotest.(check bool) "baseline time positive" true (r.baseline.total_time_us > 0.0)

let test_pipeline_fuses_pair () =
  let r = F.transform ~config pc in
  Alcotest.(check bool) "pair fused" true
    (List.exists (fun g -> List.length g = 2) r.solution_groups);
  Alcotest.(check bool) "faster than baseline" true (r.speedup > 1.0)

let test_targets_classified () =
  let app = Kft_apps.Apps.mitgcm () in
  let r = F.transform ~config:{ config with device = Kft_apps.Apps.bench_device } app.program in
  let by_kind k =
    List.length (List.filter (fun (t : F.target_info) -> t.classification = k) r.targets)
  in
  Alcotest.(check int) "14 memory-bound targets" 14
    (List.length (List.filter (fun (t : F.target_info) -> t.eligible) r.targets));
  Alcotest.(check bool) "boundary kernels excluded" true (by_kind Kft_analysis.Classify.Boundary >= 10);
  Alcotest.(check bool) "compute kernels excluded" true
    (by_kind Kft_analysis.Classify.Compute_bound >= 5)

let test_manual_filter_sees_latency () =
  let app = Kft_apps.Apps.fluam ~chains:2 () in
  let auto = F.transform ~config:{ config with device = Kft_apps.Apps.bench_device } app.program in
  let manual =
    F.transform
      ~config:{ config with device = Kft_apps.Apps.bench_device; filter_mode = F.Manual }
      app.program
  in
  let eligible (r : F.report) =
    List.length (List.filter (fun (t : F.target_info) -> t.eligible) r.targets)
  in
  Alcotest.(check bool) "manual filter drops latency kernels" true
    (eligible manual < eligible auto)

let test_no_filtering_mode () =
  let app = Kft_apps.Apps.mitgcm () in
  let r =
    F.transform
      ~config:{ config with device = Kft_apps.Apps.bench_device; filter_mode = F.No_filtering }
      app.program
  in
  (* only repeated invocations and irregular kernels remain excluded *)
  Alcotest.(check bool) "nearly all kernels targeted" true
    (List.length (List.filter (fun (t : F.target_info) -> t.eligible) r.targets) >= 35)

let test_hook_amend_targets () =
  let hooks =
    { F.no_hooks with amend_targets = (fun ts -> List.map (fun (k, _) -> (k, false)) ts) }
  in
  let r = F.transform ~config ~hooks pc in
  Alcotest.(check bool) "nothing fused" true
    (List.for_all (fun g -> List.length g <= 1) r.solution_groups);
  Util.check_float ~eps:0.02 "speedup ~1" 1.0 r.speedup

let test_hook_amend_solution () =
  (* force singletons after the search *)
  let hooks =
    { F.no_hooks with
      amend_solution = (fun gs -> List.concat_map (fun g -> List.map (fun u -> [ u ]) g) gs) }
  in
  let r = F.transform ~config ~hooks pc in
  Alcotest.(check bool) "verified" true (r.verified = Ok ());
  Alcotest.(check bool) "all singleton" true (List.for_all (fun g -> List.length g = 1) r.solution_groups)

let test_hook_amend_metadata () =
  let hooks =
    { F.no_hooks with
      amend_metadata =
        (fun m ->
          {
            m with
            performance =
              List.map
                (fun (p : Kft_metadata.Metadata.perf_entry) -> { p with runtime_us = 99.0 })
                m.performance;
          }) }
  in
  let r = F.transform ~config ~hooks pc in
  List.iter
    (fun (p : Kft_metadata.Metadata.perf_entry) -> Util.check_float "amended" 99.0 p.runtime_us)
    r.metadata.performance

let test_stage_report_text () =
  let r = F.transform ~config pc in
  let text = F.stage_report r in
  List.iter
    (fun needle ->
      let found =
        let n = String.length text and m = String.length needle in
        let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("report mentions " ^ needle) true found)
    [ "stage 1"; "stage 2"; "stage 3"; "stage 4"; "stage 5"; "speedup" ]

let test_fission_flows_through () =
  let app = Kft_apps.Apps.awp_odc () in
  let r =
    F.transform
      ~config:
        { config with
          device = Kft_apps.Apps.bench_device;
          gga_params = { quick_gga with generations = 120; population = 40 } }
      app.program
  in
  Alcotest.(check bool) "verified" true (r.verified = Ok ());
  Alcotest.(check bool) "fission plans computed" true (List.length r.fission_plans >= 2);
  Alcotest.(check bool) "kernels fissioned in best solution" true (List.length r.fissioned >= 1);
  (* fission parts appear in the transformed program *)
  let part_names =
    List.filter
      (fun k ->
        let n = k.Kft_cuda.Ast.k_name in
        List.exists (fun f ->
            String.length n > String.length f && String.sub n 0 (String.length f) = f)
          r.fissioned)
      r.transformed.p_kernels
  in
  Alcotest.(check bool) "parts or their fusions emitted" true
    (List.length part_names > 0 || List.exists (fun g -> List.length g > 1) r.solution_groups)

let suite =
  [
    Alcotest.test_case "end-to-end verified" `Quick test_end_to_end_verified;
    Alcotest.test_case "pipeline fuses the pair" `Quick test_pipeline_fuses_pair;
    Alcotest.test_case "target classification" `Quick test_targets_classified;
    Alcotest.test_case "manual filter sees latency kernels" `Quick test_manual_filter_sees_latency;
    Alcotest.test_case "no-filtering mode" `Quick test_no_filtering_mode;
    Alcotest.test_case "hook: amend targets" `Quick test_hook_amend_targets;
    Alcotest.test_case "hook: amend solution" `Quick test_hook_amend_solution;
    Alcotest.test_case "hook: amend metadata" `Quick test_hook_amend_metadata;
    Alcotest.test_case "stage report text" `Quick test_stage_report_text;
    Alcotest.test_case "fission flows through pipeline" `Quick test_fission_flows_through;
  ]

let test_validation_gate () =
  let bad =
    { pc with
      p_schedule =
        [ Kft_cuda.Ast.Launch
            { l_kernel = "nope"; l_domain = (4, 4, 1); l_block = (4, 4, 1); l_args = [] } ] }
  in
  match F.transform ~config bad with
  | (_ : F.report) -> Alcotest.fail "expected validation failure"
  | exception Invalid_argument _ -> ()

let validation_suite =
  [ Alcotest.test_case "frontend validation gate" `Quick test_validation_gate ]
