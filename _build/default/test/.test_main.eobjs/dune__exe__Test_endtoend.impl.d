test/test_endtoend.ml: Kft_codegen Kft_cuda Kft_framework Kft_gga List Printf QCheck QCheck_alcotest String
