test/util.ml: Alcotest Float Fmt Kft_cuda Kft_device Kft_sim List Option Printf
