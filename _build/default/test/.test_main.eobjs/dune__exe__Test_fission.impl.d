test/test_fission.ml: Alcotest Kft_apps Kft_cuda Kft_fission Kft_sim List Option Printf Util
