test/test_analysis.ml: Alcotest Kft_analysis Kft_apps Kft_cuda Kft_fission List Printf QCheck QCheck_alcotest Util
