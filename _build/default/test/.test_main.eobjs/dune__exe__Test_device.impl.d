test/test_device.ml: Alcotest Kft_device List QCheck QCheck_alcotest String Util
