test/test_framework.ml: Alcotest Kft_analysis Kft_apps Kft_cuda Kft_framework Kft_gga Kft_metadata List Printf String Util
