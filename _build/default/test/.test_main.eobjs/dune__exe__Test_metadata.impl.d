test/test_metadata.ml: Alcotest Filename Kft_metadata Lazy List String Sys Unix Util
