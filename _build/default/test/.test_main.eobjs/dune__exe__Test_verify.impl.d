test/test_verify.ml: Alcotest Kft_apps Kft_codegen Kft_cuda Kft_framework Kft_gga Kft_verify List String Util
