test/test_codegen.ml: Alcotest Kft_apps Kft_codegen Kft_cuda Kft_sim List Printf String Util
