test/test_graph.ml: Alcotest Kft_graph List QCheck QCheck_alcotest String
