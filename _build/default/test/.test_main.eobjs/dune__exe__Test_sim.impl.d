test/test_sim.ml: Alcotest Array Float Kft_cuda Kft_ddg Kft_sim List Printf Util
