test/test_apps.ml: Alcotest Kft_apps Kft_codegen Kft_cuda Kft_fission Kft_sim Lazy List Printf String Util
