test/test_cuda.ml: Alcotest Float Kft_cuda List QCheck QCheck_alcotest Util
