test/test_ddg.ml: Alcotest Kft_cuda Kft_ddg Kft_graph List Printf String Util
