test/test_gga.ml: Alcotest Kft_gga Kft_perfmodel List Printf Util
