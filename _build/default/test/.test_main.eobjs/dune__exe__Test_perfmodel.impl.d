test/test_perfmodel.ml: Alcotest Float Kft_metadata Kft_perfmodel Lazy List Printf Util
