(* Code generation: canonicalization, fusion planning rules, generated
   kernels verified against the original on the simulator. *)

open Kft_cuda.Ast
module C = Kft_codegen.Canonical
module Fu = Kft_codegen.Fusion
module Cg = Kft_codegen.Codegen

let dims = (32, 16, 8)

let extract prog ?(deep = `Sequential) i name =
  C.extract ~deep ~index:i prog (Util.launch_of prog name)

let pc = Util.producer_consumer_program ~dims ()

let test_canonical_fields () =
  let m = extract pc 0 "produce" in
  Alcotest.(check string) "name" "produce" m.m_name;
  Alcotest.(check bool) "guard present" true (m.m_guard <> None);
  Alcotest.(check bool) "kloop bounds" true (m.m_kloop = Some (1, 7));
  Alcotest.(check bool) "reads A radius 1" true
    (List.length (C.reads_of m "A") = 6);
  Alcotest.(check bool) "writes B at origin" true (C.writes_of m "B" = [ (0, 0, 0) ]);
  Alcotest.(check (list string)) "touched arrays" [ "A"; "B" ] (List.sort compare (C.touched_arrays m))

let test_canonical_renaming () =
  let m = extract pc 1 "consume" in
  (* double params suffixed with the member index *)
  Alcotest.(check bool) "double arg renamed" true
    (List.exists (fun (n, _) -> n = "c__m2") m.m_double_args)

let test_canonical_wild_offsets () =
  let d = { Kft_apps.Gen.nx = 16; ny = 8; nz = 8 } in
  let b = Kft_apps.Gen.deep_nest d ~name:"deep" ~out:"O" ~band_in:"A" ~plane_ins:[ "P" ] () in
  let prog =
    { p_name = "t"; p_arrays = b.arrays; p_kernels = [ b.kernel ]; p_schedule = [ Launch b.launch ] }
  in
  (* under Inner_shared the outer loop hoists and the band reads are wild *)
  let m = extract prog ~deep:`Inner_shared 0 "deep" in
  Alcotest.(check bool) "kloop hoisted" true (m.m_kloop <> None);
  let a_offs = C.reads_of m "A" in
  Alcotest.(check bool) "band read is wild in z" true
    (List.exists (fun (_, _, dz) -> abs dz >= C.wild_offset) a_offs);
  (* under Sequential the nest stays opaque *)
  let m' = extract prog ~deep:`Sequential 0 "deep" in
  Alcotest.(check bool) "nest opaque" true (m'.m_kloop = None)

let test_affine_over () =
  let e = Kft_cuda.Parse.expr "32 * (16 * kv + gj) + gi + 2" in
  (match C.affine_over ~vars:[ "gi"; "gj"; "kv" ] e with
  | Some (coeffs, 2) ->
      Alcotest.(check bool) "coeffs" true
        (List.sort compare coeffs = [ ("gi", 1); ("gj", 32); ("kv", 512) ])
  | _ -> Alcotest.fail "expected affine");
  (* non-affine *)
  Alcotest.(check bool) "quadratic rejected" true
    (C.affine_over ~vars:[ "x" ] (Kft_cuda.Parse.expr "x * x") = None)

let check_plan members = Fu.check_group members

let test_plan_producer_stage () =
  let m0 = extract pc 0 "produce" and m1 = extract pc 1 "consume" in
  match check_plan [ m0; m1 ] with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check bool) "has kloop" true plan.p_has_kloop;
      Alcotest.(check bool) "unified bounds" true (plan.p_klo = 0 && plan.p_khi = 8);
      let b = List.find (fun (s : Fu.stage) -> s.s_array = "B") plan.p_stages in
      Alcotest.(check bool) "B produced by member 0" true (b.s_kind = Fu.Produced 0);
      Alcotest.(check int) "radius 0 (origin consumer)" 0 b.s_radius

let test_plan_reuse_stage () =
  (* two independent readers of A *)
  let src =
    Util.stencil_src ~name:"r1" ~src:"A" ~dst:"B" ~margin:1 ~threed:false
    ^ Util.stencil_src ~name:"r2" ~src:"A" ~dst:"C" ~margin:2 ~threed:false
  in
  let prog =
    {
      p_name = "t";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "B"; "C" ];
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule =
        List.map
          (fun (k, args) ->
            Launch { l_kernel = k; l_domain = (32, 16, 1); l_block = (16, 4, 1);
                     l_args = Util.std_args dims args 0.25 })
          [ ("r1", [ "A"; "B" ]); ("r2", [ "A"; "C" ]) ];
    }
  in
  let m0 = extract prog 0 "r1" and m1 = extract prog 1 "r2" in
  match check_plan [ m0; m1 ] with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      match plan.p_stages with
      | [ s ] ->
          Alcotest.(check string) "stages A" "A" s.s_array;
          Alcotest.(check bool) "reuse" true (s.s_kind = Fu.Reuse);
          Alcotest.(check int) "radius covers both readers" 1 s.s_radius
      | _ -> Alcotest.fail "expected exactly one stage")

let test_rule_war_offsets_rejected () =
  (* reader with offsets before an in-group writer of the same array *)
  let src =
    Util.stencil_src ~name:"rd" ~src:"A" ~dst:"B" ~margin:1 ~threed:false
    ^ Util.pointwise_src ~name:"wr" ~a:"B" ~b:"B" ~dst:"A"
  in
  let prog =
    {
      p_name = "t";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "B" ];
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule =
        List.map
          (fun (k, args) ->
            Launch { l_kernel = k; l_domain = (32, 16, 1); l_block = (16, 4, 1);
                     l_args = Util.std_args dims args 0.5 })
          [ ("rd", [ "A"; "B" ]); ("wr", [ "B"; "B"; "A" ]) ];
    }
  in
  let m0 = extract prog 0 "rd" and m1 = extract prog 1 "wr" in
  match check_plan [ m0; m1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "WAR with offsets must be infeasible"

let test_rule_vertical_consumer_rejected () =
  (* consumer reads the produced array at a vertical offset *)
  let src =
    Util.pointwise_src ~name:"mk" ~a:"A" ~b:"A" ~dst:"B"
    ^ Util.stencil_src ~name:"use" ~src:"B" ~dst:"C" ~margin:1 ~threed:true
  in
  let prog =
    {
      p_name = "t";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "B"; "C" ];
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule =
        List.map
          (fun (k, args) ->
            Launch { l_kernel = k; l_domain = (32, 16, 1); l_block = (16, 4, 1);
                     l_args = Util.std_args dims args 0.5 })
          [ ("mk", [ "A"; "A"; "B" ]); ("use", [ "B"; "C" ]) ];
    }
  in
  let m0 = extract prog 0 "mk" and m1 = extract prog 1 "use" in
  match check_plan [ m0; m1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vertical consumption of produced array must be infeasible"

let build_and_verify ?(options = Fu.auto_options) prog groups =
  let r = Cg.transform ~options Util.device prog ~groups in
  (match Kft_sim.Profiler.verify Util.device ~original:prog ~transformed:r.program with
  | Ok () -> ()
  | Error diffs ->
      Alcotest.fail
        (Printf.sprintf "verification failed on %s" (String.concat "," (List.map fst diffs))));
  r

let test_simple_fusion_verified () =
  let prog = pc in
  let groups = [ [ Util.launch_of prog "produce"; Util.launch_of prog "consume" ] ] in
  let r = build_and_verify prog groups in
  let fused = List.find (fun (rep : Cg.kernel_report) -> List.length rep.members = 2) r.reports in
  Alcotest.(check bool) "complex fusion (producer stage)" true (fused.fusion_kind = `Complex);
  Alcotest.(check bool) "shared memory used" true (fused.shared_bytes > 0)

let test_auto_vs_manual_divergence () =
  (* different-width members: per-statement guards multiply divergent
     conditional evaluations (the Figure 7 mechanism) *)
  let app = Kft_apps.Apps.homme ~chains:2 () in
  let prog = app.program in
  (* groups must be passed in schedule (topological) order: insert the
     pair at the first member's position *)
  let groups =
    List.filter_map
      (function
        | Launch l when l.l_kernel = "grad_02" ->
            Some [ l; Util.launch_of prog "div_02" ]
        | Launch l when l.l_kernel = "div_02" -> None
        | Launch l -> Some [ l ]
        | _ -> None)
      prog.p_schedule
  in
  let auto = build_and_verify ~options:{ Fu.auto_options with tune_blocks = false } prog groups in
  let manual = build_and_verify ~options:Fu.manual_options prog groups in
  let div_of (r : Cg.result) =
    let run = Kft_sim.Profiler.profile Util.device r.program in
    List.fold_left
      (fun acc (p : Kft_sim.Profiler.kernel_profile) ->
        acc + p.stats.divergent_warp_cond_evals)
      0 run.profiles
  in
  Alcotest.(check bool) "per-statement guards diverge more" true (div_of auto > div_of manual)

let test_fallback_on_infusable () =
  (* grouping two kernels with a WAR hazard falls back to singles *)
  let src =
    Util.stencil_src ~name:"rd" ~src:"A" ~dst:"B" ~margin:1 ~threed:false
    ^ Util.pointwise_src ~name:"wr" ~a:"B" ~b:"B" ~dst:"A"
  in
  let prog =
    {
      p_name = "t";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "B" ];
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule =
        List.map
          (fun (k, args) ->
            Launch { l_kernel = k; l_domain = (32, 16, 1); l_block = (16, 4, 1);
                     l_args = Util.std_args dims args 0.5 })
          [ ("rd", [ "A"; "B" ]); ("wr", [ "B"; "B"; "A" ]) ];
    }
  in
  let groups = [ [ Util.launch_of prog "rd"; Util.launch_of prog "wr" ] ] in
  let r = build_and_verify prog groups in
  Alcotest.(check int) "two singleton reports" 2 (List.length r.reports);
  Alcotest.(check bool) "fallback noted" true
    (List.exists (fun (rep : Cg.kernel_report) -> rep.notes <> []) r.reports)

let test_tuning_reported () =
  let prog = Util.producer_consumer_program ~dims ~block:(32, 2, 1) () in
  let groups =
    List.filter_map (function Launch l -> Some [ l ] | _ -> None) prog.p_schedule
  in
  let r = Cg.transform ~options:Fu.auto_options Util.device prog ~groups in
  List.iter
    (fun (rep : Cg.kernel_report) ->
      Alcotest.(check bool) "occupancy not worsened" true
        (rep.occupancy_after >= rep.occupancy_before -. 1e-9))
    r.reports

let test_generated_code_reparses () =
  let prog = pc in
  let groups = [ [ Util.launch_of prog "produce"; Util.launch_of prog "consume" ] ] in
  let r = Cg.transform ~options:Fu.auto_options Util.device prog ~groups in
  List.iter
    (fun k ->
      let text = Kft_cuda.Pp.kernel k in
      let k' = Kft_cuda.Parse.kernel text in
      Alcotest.(check bool) ("reparses: " ^ k.k_name) true (equal_kernel k k'))
    r.program.p_kernels

let test_three_member_pipeline () =
  (* A -> B -> C -> D chain fused as one kernel, with halos *)
  let src =
    Util.stencil_src ~name:"s1" ~src:"A" ~dst:"B" ~margin:1 ~threed:false
    ^ Util.stencil_src ~name:"s2" ~src:"B" ~dst:"C" ~margin:2 ~threed:false
    ^ Util.pointwise_src ~name:"s3" ~a:"C" ~b:"A" ~dst:"D"
  in
  let prog =
    {
      p_name = "pipe";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "B"; "C"; "D" ];
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule =
        List.map
          (fun (k, args) ->
            Launch { l_kernel = k; l_domain = (32, 16, 1); l_block = (16, 4, 1);
                     l_args = Util.std_args dims args 0.25 })
          [ ("s1", [ "A"; "B" ]); ("s2", [ "B"; "C" ]); ("s3", [ "C"; "A"; "D" ]) ];
    }
  in
  let groups = [ List.map (Util.launch_of prog) [ "s1"; "s2"; "s3" ] ] in
  let r = build_and_verify prog groups in
  let fused = List.find (fun (rep : Cg.kernel_report) -> List.length rep.members = 3) r.reports in
  (* B's tile must cover s2's reads *)
  Alcotest.(check bool) "B staged with radius >= 1" true
    (List.exists (fun (a, rad) -> a = "B" && rad >= 1) fused.staged_arrays)

let suite =
  [
    Alcotest.test_case "canonical member fields" `Quick test_canonical_fields;
    Alcotest.test_case "canonical renaming" `Quick test_canonical_renaming;
    Alcotest.test_case "wild offsets for band reads" `Quick test_canonical_wild_offsets;
    Alcotest.test_case "affine_over" `Quick test_affine_over;
    Alcotest.test_case "plan: producer staging" `Quick test_plan_producer_stage;
    Alcotest.test_case "plan: reuse staging" `Quick test_plan_reuse_stage;
    Alcotest.test_case "rule: WAR with offsets" `Quick test_rule_war_offsets_rejected;
    Alcotest.test_case "rule: vertical consumption" `Quick test_rule_vertical_consumer_rejected;
    Alcotest.test_case "complex fusion verified" `Quick test_simple_fusion_verified;
    Alcotest.test_case "divergence: auto vs manual" `Quick test_auto_vs_manual_divergence;
    Alcotest.test_case "fallback on infusable group" `Quick test_fallback_on_infusable;
    Alcotest.test_case "tuning never worsens occupancy" `Quick test_tuning_reported;
    Alcotest.test_case "generated code reparses" `Quick test_generated_code_reparses;
    Alcotest.test_case "three-member pipeline" `Quick test_three_member_pipeline;
  ]

(* Per-statement and hoisted guard schemes must be semantically equal *)
let test_branch_schemes_agree () =
  let prog = pc in
  let groups = [ [ Util.launch_of prog "produce"; Util.launch_of prog "consume" ] ] in
  let build opts = (Cg.transform ~options:opts Util.device prog ~groups).program in
  let run p =
    let mem = Kft_sim.Memory.create p.p_arrays in
    Kft_sim.Memory.init_seeded mem ~seed:17;
    ignore (Kft_sim.Interp.run_schedule mem p);
    mem
  in
  let m1 = run (build { Fu.auto_options with tune_blocks = false }) in
  let m2 = run (build Fu.manual_options) in
  Alcotest.(check bool) "identical results" true (Kft_sim.Memory.equal_within ~tol:0.0 m1 m2)

(* fused kernels are named K_fNN in emission order *)
let test_fused_naming () =
  let prog = pc in
  let groups = [ [ Util.launch_of prog "produce"; Util.launch_of prog "consume" ] ] in
  let r = Cg.transform ~options:Fu.auto_options Util.device prog ~groups in
  Alcotest.(check bool) "K_f01 emitted" true
    (List.exists (fun k -> k.k_name = "K_f01") r.program.p_kernels)

(* a singleton launch of a guarded kernel may be retuned; an unguarded
   kernel must keep its block (the grid may not overshoot) *)
let test_unguarded_not_tuned () =
  let src =
    {|
__global__ void plain(const double *A, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  B[j * nx + i] = c * A[j * nx + i];
}
|}
  in
  let prog =
    {
      p_name = "t";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "B" ];
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule =
        [ Launch { l_kernel = "plain"; l_domain = (32, 16, 1); l_block = (16, 4, 1);
                   l_args = Util.std_args dims [ "A"; "B" ] 1.0 } ];
    }
  in
  let block, _, _ = Cg.tune_single Util.device prog (Util.launch_of prog "plain") in
  Alcotest.(check bool) "block unchanged" true (block = (16, 4, 1))

let extra_suite =
  [
    Alcotest.test_case "branch schemes agree semantically" `Quick test_branch_schemes_agree;
    Alcotest.test_case "fused kernel naming" `Quick test_fused_naming;
    Alcotest.test_case "unguarded kernels not retuned" `Quick test_unguarded_not_tuned;
  ]
