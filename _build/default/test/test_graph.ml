(* Digraph substrate tests: structure, traversals, quotient, DOT. *)

module G = Kft_graph.Digraph

let mk edges nodes =
  let g = G.create () in
  List.iter (fun n -> G.add_node g ~key:n ()) nodes;
  List.iter (fun (a, b) -> G.add_edge g a b) edges;
  g

let test_add_and_query () =
  let g = mk [ ("a", "b"); ("b", "c") ] [ "a"; "b"; "c" ] in
  Alcotest.(check int) "node count" 3 (G.node_count g);
  Alcotest.(check int) "edge count" 2 (G.edge_count g);
  Alcotest.(check bool) "edge a->b" true (G.mem_edge g "a" "b");
  Alcotest.(check bool) "no edge b->a" false (G.mem_edge g "b" "a");
  Alcotest.(check (list string)) "succs of a" [ "b" ] (G.succs g "a");
  Alcotest.(check (list string)) "preds of c" [ "b" ] (G.preds g "c")

let test_duplicate_node () =
  let g = G.create () in
  G.add_node g ~key:"x" ();
  Alcotest.check_raises "duplicate raises" (G.Duplicate_node "x") (fun () ->
      G.add_node g ~key:"x" ())

let test_no_such_node () =
  let g = G.create () in
  G.add_node g ~key:"x" ();
  Alcotest.check_raises "missing endpoint" (G.No_such_node "y") (fun () -> G.add_edge g "x" "y")

let test_ensure_node_idempotent () =
  let g = G.create () in
  G.ensure_node g ~key:"x" 1;
  G.ensure_node g ~key:"x" 2;
  Alcotest.(check int) "payload kept" 1 (G.payload g "x")

let test_add_edge_idempotent () =
  let g = mk [ ("a", "b"); ("a", "b") ] [ "a"; "b" ] in
  Alcotest.(check int) "single edge" 1 (G.edge_count g)

let test_remove_node () =
  let g = mk [ ("a", "b"); ("b", "c"); ("a", "c") ] [ "a"; "b"; "c" ] in
  G.remove_node g "b";
  Alcotest.(check int) "nodes" 2 (G.node_count g);
  Alcotest.(check (list (pair string string))) "edges" [ ("a", "c") ] (G.edges g)

let test_remove_edge () =
  let g = mk [ ("a", "b") ] [ "a"; "b" ] in
  G.remove_edge g "a" "b";
  Alcotest.(check int) "edges" 0 (G.edge_count g)

let test_topo_order () =
  let g = mk [ ("a", "b"); ("b", "c"); ("a", "c") ] [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "topo" [ "a"; "b"; "c" ] (G.topo_sort g)

let test_topo_stable () =
  (* independent nodes keep insertion order *)
  let g = mk [] [ "z"; "m"; "a" ] in
  Alcotest.(check (list string)) "insertion order" [ "z"; "m"; "a" ] (G.topo_sort g)

let test_cycle_detection () =
  let g = mk [ ("a", "b"); ("b", "c"); ("c", "a") ] [ "a"; "b"; "c" ] in
  Alcotest.(check bool) "is_dag false" false (G.is_dag g);
  (match G.find_cycle g with
  | Some cycle ->
      Alcotest.(check bool) "cycle has 3 nodes" true (List.length cycle = 3);
      (* consecutive edges (with wraparound) must exist *)
      let ok =
        List.for_all2
          (fun a b -> G.mem_edge g a b)
          cycle
          (List.tl cycle @ [ List.hd cycle ])
      in
      Alcotest.(check bool) "witness edges exist" true ok
  | None -> Alcotest.fail "expected a cycle");
  match G.topo_sort g with
  | (_ : string list) -> Alcotest.fail "topo_sort should raise"
  | exception G.Cycle _ -> ()

let test_self_loop_cycle () =
  let g = mk [ ("a", "a") ] [ "a" ] in
  Alcotest.(check bool) "self loop cyclic" false (G.is_dag g)

let test_reachable () =
  let g = mk [ ("a", "b"); ("b", "c") ] [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check bool) "a reaches c" true (G.reachable g ~src:"a" ~dst:"c");
  Alcotest.(check bool) "c not a" false (G.reachable g ~src:"c" ~dst:"a");
  Alcotest.(check bool) "self" true (G.reachable g ~src:"a" ~dst:"a");
  Alcotest.(check bool) "disconnected" false (G.reachable g ~src:"a" ~dst:"d")

let test_bfs_undirected () =
  let g = mk [ ("a", "b"); ("c", "b") ] [ "a"; "b"; "c"; "d" ] in
  let comp = G.bfs g ~root:"a" in
  Alcotest.(check (list string)) "reaches through both directions" [ "a"; "b"; "c" ] comp

let test_components () =
  let g = mk [ ("a", "b"); ("c", "d") ] [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check int) "three components" 3 (List.length (G.components g));
  Alcotest.(check (list (list string))) "component contents"
    [ [ "a"; "b" ]; [ "c"; "d" ]; [ "e" ] ]
    (G.components g)

let test_quotient_collapse () =
  let g = mk [ ("a", "b"); ("b", "c") ] [ "a"; "b"; "c" ] in
  let q = G.quotient g ~group_of:(fun k -> if k = "a" || k = "b" then "g" else k) in
  Alcotest.(check int) "two nodes" 2 (G.node_count q);
  Alcotest.(check bool) "no self loop" false (G.mem_edge q "g" "g");
  Alcotest.(check bool) "edge kept" true (G.mem_edge q "g" "c")

let test_quotient_cycle () =
  (* a -> x -> b with a,b grouped: quotient must be cyclic *)
  let g = mk [ ("a", "x"); ("x", "b"); ("b", "y") ] [ "a"; "x"; "b"; "y" ] in
  let q = G.quotient g ~group_of:(fun k -> if k = "a" || k = "b" then "g" else k) in
  Alcotest.(check bool) "cyclic quotient" false (G.is_dag q)

let test_dot_roundtrip () =
  let g = mk [ ("k 1", "arr"); ("arr", "k\"2") ] [ "k 1"; "arr"; "k\"2" ] in
  let dot = G.to_dot g in
  let edges = G.of_dot_edges dot in
  Alcotest.(check (list (pair string string)))
    "edges recovered" [ ("k 1", "arr"); ("arr", "k\"2") ] edges

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_dot_attrs () =
  let g = mk [ ("a", "b") ] [ "a"; "b" ] in
  let dot = G.to_dot ~node_attrs:(fun k () -> [ ("label", k ^ "!") ]) g in
  Alcotest.(check bool) "label emitted" true (contains dot "label=\"a!\"")

let test_copy_independent () =
  let g = mk [ ("a", "b") ] [ "a"; "b" ] in
  let g' = G.copy g in
  G.add_node g' ~key:"c" ();
  G.add_edge g' "b" "c";
  Alcotest.(check int) "original nodes" 2 (G.node_count g);
  Alcotest.(check int) "copy nodes" 3 (G.node_count g')

(* property: topological order respects every edge of a random DAG *)
let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects edges" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let g = G.create () in
      for i = 0 to 19 do
        G.add_node g ~key:(string_of_int i) ()
      done;
      (* orient all edges low -> high: always a DAG *)
      List.iter
        (fun (a, b) ->
          if a <> b then
            let lo, hi = (min a b, max a b) in
            G.add_edge g (string_of_int lo) (string_of_int hi))
        pairs;
      let order = G.topo_sort g in
      let pos = List.mapi (fun i k -> (k, i)) order in
      List.for_all
        (fun (a, b) -> a = b || List.assoc (string_of_int (min a b)) pos < List.assoc (string_of_int (max a b)) pos)
        pairs)

(* property: components partition the node set *)
let prop_components_partition =
  QCheck.Test.make ~name:"components partition nodes" ~count:100
    QCheck.(list (pair (int_bound 14) (int_bound 14)))
    (fun pairs ->
      let g = G.create () in
      for i = 0 to 14 do
        G.add_node g ~key:(string_of_int i) ()
      done;
      List.iter
        (fun (a, b) -> if a <> b then G.add_edge g (string_of_int a) (string_of_int b))
        pairs;
      let comps = G.components g in
      let all = List.concat comps |> List.sort compare in
      all = (G.nodes g |> List.sort compare))

let suite =
  [
    Alcotest.test_case "add and query" `Quick test_add_and_query;
    Alcotest.test_case "duplicate node" `Quick test_duplicate_node;
    Alcotest.test_case "missing node" `Quick test_no_such_node;
    Alcotest.test_case "ensure_node idempotent" `Quick test_ensure_node_idempotent;
    Alcotest.test_case "add_edge idempotent" `Quick test_add_edge_idempotent;
    Alcotest.test_case "remove node" `Quick test_remove_node;
    Alcotest.test_case "remove edge" `Quick test_remove_edge;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "topo stability" `Quick test_topo_stable;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "self loop" `Quick test_self_loop_cycle;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "bfs is undirected" `Quick test_bfs_undirected;
    Alcotest.test_case "weak components" `Quick test_components;
    Alcotest.test_case "quotient collapse" `Quick test_quotient_collapse;
    Alcotest.test_case "quotient cycle" `Quick test_quotient_cycle;
    Alcotest.test_case "dot round trip" `Quick test_dot_roundtrip;
    Alcotest.test_case "dot node attributes" `Quick test_dot_attrs;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
    QCheck_alcotest.to_alcotest prop_components_partition;
  ]
