(* Golden-trace determinism gate (the @trace alias).

   For every program it transforms — the quickstart chain and, in full
   mode, the six bundled applications — the machine-JSON trace of the
   pipeline must be

   - syntactically valid JSON (Json_check, strict RFC 8259),
   - byte-identical across two consecutive runs, and
   - byte-identical between --jobs 1 and --jobs 4,

   which is the canonical-channel contract of Kft_trace.Trace: logical
   sequence numbers and counters only, wall clock and scheduling shape
   confined to the side channel. Every run gets a fresh profile cache
   so the hit/miss counters in the trace depend only on the program,
   never on what ran earlier in the process.

   Usage: trace_all [smoke]   -- smoke checks quickstart only (runtest) *)

module F = Kft_framework.Framework
module Trace = Kft_trace.Trace
module Engine = Kft_engine.Engine
module Apps = Kft_apps.Apps

let traced ~jobs (p : Kft_cuda.Ast.program) =
  let trace = Trace.create "kft-transform" in
  let config =
    {
      F.default_config with
      sim_cache = Some (Kft_metadata.Metadata.Sim_cache.create ());
      gga_params = { Kft_gga.Gga.default_params with generations = 5; population = 10 };
    }
  in
  let (_ : F.report) =
    Engine.with_engine ~jobs ~memo:true (fun engine ->
        F.transform ~config ~engine ~trace p)
  in
  Trace.render_json trace

let failures = ref 0

let check (a : Apps.app) =
  let name = a.program.Kft_cuda.Ast.p_name in
  let j1 = traced ~jobs:1 a.program in
  let j1' = traced ~jobs:1 a.program in
  let j4 = traced ~jobs:4 a.program in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.eprintf "[trace] %s: %s\n%!" name msg)
      fmt
  in
  (match Kft_trace.Json_check.check j1 with
  | Ok () -> ()
  | Error e -> fail "trace is not valid JSON: %s" e);
  if j1 <> j1' then fail "trace differs between two identical runs";
  if j1 <> j4 then fail "trace differs between --jobs 1 and --jobs 4";
  if j1 = j1' && j1 = j4 then
    Printf.printf "  %-12s ok: %5d bytes, identical across runs and jobs {1,4}\n%!" name
      (String.length j1)

let () =
  let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke" in
  print_endline "== golden trace: byte-stability of the machine-JSON pipeline trace ==";
  let apps = if smoke then [ Apps.quickstart () ] else Apps.quickstart () :: Apps.all () in
  List.iter check apps;
  if !failures > 0 then begin
    Printf.eprintf "[trace] %d check(s) failed\n%!" !failures;
    exit 1
  end
