(* CI driver behind the [schedflow] dune alias (`dune build @schedflow`):
   runs the whole-schedule dataflow analyzer over the quickstart example
   and the six bundled evaluation applications — the source programs AND
   the output of the full pipeline (small GGA budget, fatal verification
   gate) — with warnings as errors:

   - any dataflow issue (read-before-write, dead store) fails,
   - any dead-array / redundant-copy warning finding fails,
   - any Schedule-pass diagnostic from translation validation fails,
   - the schedule-DDG check must have full coverage: at least one source
     dependence checked end-to-end and zero unplaced launches
     (sched_fallback = 0) on every transformed program.

   `schedflow_all smoke` restricts the sweep to the quickstart program;
   the test suite uses it as a cheap guard inside `dune runtest`. *)

module F = Kft_framework.Framework
module Sf = Kft_schedflow.Schedflow
module L = Kft_absint.Lint
module V = Kft_verify.Verify

let failures = ref 0

let check_analysis what prog =
  let sf = Sf.analyze prog in
  let findings = Sf.lint sf in
  let w = L.warnings findings in
  let s = sf.Sf.stats in
  let ok = sf.Sf.issues = [] && w = 0 in
  Printf.printf
    "%-28s %s  (%d ops, %d deps, %d refined, %d/%d regions proved, %d issues, %d warnings, %d notes)\n"
    what
    (if ok then "clean" else "DEFECTS")
    s.Sf.st_ops s.st_deps s.st_deps_refined s.st_regions_proved
    (s.st_regions_proved + s.st_regions_fallback)
    (List.length sf.Sf.issues) w (L.infos findings);
  if not ok then begin
    incr failures;
    List.iter (fun i -> Printf.printf "    %s\n" (Sf.pp_issue i)) sf.Sf.issues;
    List.iter
      (fun (f : L.finding) ->
        if f.f_severity = L.Warn then Printf.printf "    %s\n" (L.render f))
      findings
  end

let check_schedule_pass what (r : V.report) =
  let sched =
    List.filter (fun (d : V.diagnostic) -> d.d_pass = V.Schedule) r.diagnostics
  in
  let covered = r.stats.sched_deps_checked > 0 && r.stats.sched_fallback = 0 in
  let ok = sched = [] && covered in
  Printf.printf "%-28s %s  (%d schedule deps checked end-to-end, %d unplaced, %d diagnostics)\n"
    what
    (if ok then "clean" else "DEFECTS")
    r.stats.sched_deps_checked r.stats.sched_fallback (List.length sched);
  if not ok then begin
    incr failures;
    List.iter (fun d -> Printf.printf "    %s\n" (V.pp_diagnostic d)) sched;
    if not covered then
      print_endline "    (incomplete schedule-DDG coverage: a launch could not be placed)"
  end

let small_config =
  {
    F.default_config with
    verify_mode = F.Verify_fatal;
    gga_params = { Kft_gga.Gga.default_params with population = 12; generations = 10 };
  }

let () =
  let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke" in
  let apps =
    if smoke then [ Kft_apps.Apps.quickstart () ]
    else Kft_apps.Apps.quickstart () :: Kft_apps.Apps.all ()
  in
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      check_analysis (a.app_name ^ " (source)") a.program)
    apps;
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      let rep = F.transform ~config:small_config a.program in
      check_analysis (a.app_name ^ " (transformed)") rep.F.transformed;
      check_schedule_pass (a.app_name ^ " (schedule DDG)") rep.F.verify_report)
    apps;
  if !failures > 0 then begin
    Printf.printf "schedflow: %d failures\n" !failures;
    exit 1
  end
  else print_endline "schedflow: all clean"
