(* CI driver behind the [lint] dune alias (`dune build @lint`): runs
   [kft lint] (the kft_absint rule set) over the quickstart example and
   the six bundled evaluation applications with warnings as errors.

   Every program is profiled once first so the footprint-drift rule can
   cross-check the static traffic estimates against the simulator's
   measured counters.  Advisory (info) findings are counted but do not
   fail the alias; any warning does.

   Exit codes distinguish what failed: 0 all clean, 1 at least one
   warning finding, 3 the analyzer itself crashed on some program (an
   internal error, not a lint result) -- so CI can tell "the code has
   diagnosable problems" from "the analyzer needs fixing".

   `lint_all smoke` restricts the sweep to the quickstart program; the
   test suite uses it as a cheap guard inside `dune runtest`. *)

module L = Kft_absint.Lint

let measured_of device (a : Kft_apps.Apps.app) =
  let run = Kft_sim.Profiler.profile device a.program in
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Kft_sim.Profiler.kernel_profile) ->
      let b =
        float_of_int
          (p.stats.Kft_sim.Interp.global_read_bytes
         + p.stats.Kft_sim.Interp.global_write_bytes)
      in
      let cur = match Hashtbl.find_opt tbl p.kernel with Some c -> c | None -> 0.0 in
      Hashtbl.replace tbl p.kernel (cur +. b))
    run.profiles;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let () =
  let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke" in
  let apps =
    if smoke then [ Kft_apps.Apps.quickstart () ]
    else Kft_apps.Apps.quickstart () :: Kft_apps.Apps.all ()
  in
  let device = Kft_device.Device.k20x in
  let failures = ref 0 in
  let crashes = ref 0 in
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      match L.program ~measured:(measured_of device a) a.program with
      | fs ->
          let w = L.warnings fs in
          Printf.printf "%-28s %s  (%d warnings, %d advisory notes)\n"
            a.program.Kft_cuda.Ast.p_name
            (if w = 0 then "clean" else "WARNINGS")
            w (L.infos fs);
          if w > 0 then begin
            incr failures;
            List.iter
              (fun (f : L.finding) ->
                if f.f_severity = L.Warn then Printf.printf "    %s\n" (L.render f))
              fs
          end
      | exception e ->
          (* an analyzer crash is an internal error, not a lint finding:
             report it distinctly and keep sweeping the other programs *)
          incr crashes;
          Printf.printf "%-28s ANALYZER ERROR  (%s)\n" a.program.Kft_cuda.Ast.p_name
            (Printexc.to_string e))
    apps;
  if !crashes > 0 then begin
    Printf.printf "lint: analyzer failed on %d programs\n" !crashes;
    exit 3
  end
  else if !failures > 0 then begin
    Printf.printf "lint: %d programs with warnings\n" !failures;
    exit 1
  end
  else print_endline "lint: all clean"
