(* CI driver behind the [verify] dune alias (`dune build @verify`):
   runs the kft_verify static analyzer over

   1. the quickstart example program (parsed from CUDA text, so the
      diagnostics exercise the source-position plumbing),
   2. the six bundled evaluation applications, both the original
      programs and the output of the full pipeline under the automated
      codegen options (small GGA budget, fatal verification gate).

   Exits non-zero on any diagnostic, incomplete report, or rejected
   group, so the alias fails loudly when a transformation regression
   introduces a race, divergent barrier, out-of-bounds access, or an
   order-violating fusion. *)

module F = Kft_framework.Framework
module V = Kft_verify.Verify

let failures = ref 0

let check what (r : V.report) =
  let ok = V.is_clean r && r.complete in
  Printf.printf "%-28s %s  (%d launches, %d blocks, %d threads, %d events, %d/%d bounds proved)\n"
    what
    (if ok then "clean" else "DEFECTS")
    r.stats.launches_checked r.stats.blocks_sampled r.stats.threads_walked r.stats.events
    r.stats.bounds_proved
    (r.stats.bounds_proved + r.stats.bounds_fallback);
  if not ok then begin
    incr failures;
    List.iter (fun d -> Printf.printf "    %s\n" (V.pp_diagnostic d)) r.diagnostics;
    if not r.complete then print_endline "    (event budget exhausted: report incomplete)"
  end

(* the three-kernel program of examples/quickstart.ml *)
let quickstart_source =
  {|
__global__ void diffuse(const double *U, double *V, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
    for (int k = 1; k < nz - 1; k++) {
      V[(k * ny + j) * nx + i] = c * (U[(k * ny + j) * nx + i + 1] + U[(k * ny + j) * nx + i - 1]
        + U[(k * ny + (j + 1)) * nx + i] + U[(k * ny + (j - 1)) * nx + i]
        + U[((k + 1) * ny + j) * nx + i] + U[((k - 1) * ny + j) * nx + i]
        - 6.0 * U[(k * ny + j) * nx + i]);
    }
  }
}
__global__ void smooth(const double *V, const double *U, double *W, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      W[(k * ny + j) * nx + i] = 0.25 * (V[(k * ny + j) * nx + i + 1] + V[(k * ny + j) * nx + i - 1]
        + V[(k * ny + (j + 1)) * nx + i] + V[(k * ny + (j - 1)) * nx + i])
        + c * U[(k * ny + j) * nx + i];
    }
  }
}
__global__ void relax(const double *W, double *U2, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      U2[(k * ny + j) * nx + i] = c * W[(k * ny + j) * nx + i];
    }
  }
}
|}

let quickstart_program () =
  let open Kft_cuda.Ast in
  let nx, ny, nz = (64, 16, 12) in
  let kernels = Kft_cuda.Parse.kernels quickstart_source in
  let arrays =
    List.map
      (fun a -> { a_name = a; a_elem_ty = Double; a_dims = [ nx; ny; nz ] })
      [ "U"; "V"; "W"; "U2" ]
  in
  let launch kernel args =
    Launch
      {
        l_kernel = kernel;
        l_domain = (nx, ny, 1);
        l_block = (16, 8, 1);
        l_args = args @ [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double 0.1 ];
      }
  in
  {
    p_name = "quickstart";
    p_arrays = arrays;
    p_kernels = kernels;
    p_schedule =
      [
        launch "diffuse" [ Arg_array "U"; Arg_array "V" ];
        launch "smooth" [ Arg_array "V"; Arg_array "U"; Arg_array "W" ];
        launch "relax" [ Arg_array "W"; Arg_array "U2" ];
      ];
  }

let small_config =
  {
    F.default_config with
    verify_mode = F.Verify_fatal;
    gga_params = { Kft_gga.Gga.default_params with population = 12; generations = 10 };
  }

let () =
  check "examples/quickstart" (V.verify_program (quickstart_program ()));
  let apps = Kft_apps.Apps.all () in
  List.iter
    (fun (a : Kft_apps.Apps.app) -> check (a.app_name ^ " (source)") (V.verify_program a.program))
    apps;
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      let rep = F.transform ~config:small_config a.program in
      check (a.app_name ^ " (transformed)") rep.verify_report;
      if rep.rejected_groups <> [] then begin
        incr failures;
        List.iter
          (fun (k, why) -> Printf.printf "    rejected %s: %s\n" k why)
          rep.rejected_groups
      end;
      match rep.verified with
      | Ok () -> ()
      | Error diffs ->
          incr failures;
          Printf.printf "    simulator verification failed on %s\n"
            (String.concat "," (List.map fst diffs)))
    apps;
  if !failures > 0 then begin
    Printf.printf "verify: %d failures\n" !failures;
    exit 1
  end
  else print_endline "verify: all clean"
