(* Bench regression guard, two-sided: compare the committed
   BENCH_sim.json against the committed BENCH_baseline.json and fail if
   any (app, config) speedup regressed by more than 10% — or jumped by
   more than 3x, which is never a genuine same-machine improvement of a
   ratio metric and almost always means the baseline has rotted (stale
   file after an optimization landed, or rows measured under a
   different methodology). A rotted baseline silently widens the
   regression head-room of every later commit, so it fails the build
   just like a regression; the fix is to refresh BENCH_baseline.json.

   Speedups are relative to the same run's reference interpreter, so
   machine-to-machine wall-clock differences largely cancel; a >10% drop
   in the ratio means the configuration itself got slower relative to
   the baseline commit, which is exactly the regression this guards.

   The parser is a line-oriented field scanner over the fixed format
   bench/main.ml emits (one JSON object per line for each config row) —
   no JSON library, by design: the repository has no such dependency.

   Usage: bench_check.exe [NEW.json BASELINE.json]  (defaults shown below) *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* value of a ["key": ...] field on [line], as a raw token (quoted
   strings lose their quotes); None when the key is absent *)
let field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let start = ref start in
      while !start < llen && line.[!start] = ' ' do
        incr start
      done;
      if !start >= llen then None
      else if line.[!start] = '"' then begin
        let stop = ref (!start + 1) in
        while !stop < llen && line.[!stop] <> '"' do
          incr stop
        done;
        Some (String.sub line (!start + 1) (!stop - !start - 1))
      end
      else begin
        let stop = ref !start in
        while
          !stop < llen
          && (match line.[!stop] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr stop
        done;
        if !stop = !start then None else Some (String.sub line !start (!stop - !start))
      end

(* ((section, config) -> speedup) rows: throughput configs keyed by
   their app, guard-elimination rows keyed by their program *)
let parse text =
  let rows = ref [] in
  let current = ref "" in
  List.iter
    (fun line ->
      (match field line "app" with Some a -> current := a | None -> ());
      (match field line "program" with Some p -> current := p | None -> ());
      let label =
        match field line "name" with
        | Some n -> Some n
        | None -> ( match field line "program" with Some _ -> Some "guard-splice" | None -> None)
      in
      match (label, field line "speedup") with
      | Some cfg, Some sp -> rows := ((!current, cfg), float_of_string sp) :: !rows
      | _ -> ())
    (String.split_on_char '\n' text);
  List.rev !rows

let () =
  let new_path, base_path =
    match Sys.argv with
    | [| _; n; b |] -> (n, b)
    | _ -> ("BENCH_sim.json", "BENCH_baseline.json")
  in
  let fresh = parse (read_file new_path) in
  let baseline = parse (read_file base_path) in
  if baseline = [] then begin
    Printf.eprintf "bench_check: no speedup rows found in %s\n" base_path;
    exit 1
  end;
  let failures = ref 0 in
  List.iter
    (fun ((section, cfg), base_speedup) ->
      match List.assoc_opt (section, cfg) fresh with
      | None ->
          incr failures;
          Printf.eprintf "bench_check: FAIL %s/%s present in baseline but missing from %s\n"
            section cfg new_path
      | Some sp when sp < base_speedup *. 0.9 ->
          incr failures;
          Printf.eprintf "bench_check: FAIL %s/%s regressed: %.3fx -> %.3fx (>10%% drop)\n"
            section cfg base_speedup sp
      | Some sp when sp > base_speedup *. 3.0 ->
          incr failures;
          Printf.eprintf
            "bench_check: FAIL %s/%s jumped %.3fx -> %.3fx (>3x): baseline rot — refresh %s\n"
            section cfg base_speedup sp base_path
      | Some _ -> ())
    baseline;
  if !failures > 0 then begin
    Printf.eprintf "bench_check: %d failure(s) against %s\n" !failures base_path;
    exit 1
  end;
  Printf.printf "bench_check: %d configs within [-10%%, +3x] of baseline (%d rows compared)\n"
    (List.length baseline) (List.length fresh)
