(* Quickstart: transform a three-kernel CUDA program end-to-end.

   The program is written as CUDA C text (see [Kft_apps.Apps.quickstart]),
   parsed by the frontend, transformed by the full pipeline (metadata ->
   filtering -> DDG/OEG -> GGA -> codegen) and verified on the GPU
   simulator. Run with:

     dune exec examples/quickstart.exe
*)

let () =
  let program = (Kft_apps.Apps.quickstart ()).program in
  print_endline "=== original program ===";
  print_string (Kft_cuda.Pp.program program);
  print_newline ();
  let config =
    {
      Kft_framework.Framework.default_config with
      gga_params = { Kft_gga.Gga.default_params with generations = 80; population = 30 };
    }
  in
  let report = Kft_framework.Framework.transform ~config program in
  print_endline "=== pipeline report ===";
  print_string (Kft_framework.Framework.stage_report report);
  print_newline ();
  print_endline "=== transformed program (compile with nvcc, no runtime dependencies) ===";
  print_string (Kft_cuda.Pp.program report.transformed)
