(* Engine: fixed-size domain pool (deterministic parallel map) and the
   string-keyed memo cache. *)

module Engine = Kft_engine.Engine

exception Boom of int

(* unequal per-item work so out-of-order completion is likely: without
   the submission-order reduce, the parallel path would interleave *)
let busy i =
  let n = if i mod 3 = 0 then 20_000 else 200 in
  let acc = ref 0 in
  for k = 1 to n do
    acc := !acc + (k mod 7)
  done;
  ignore (Sys.opaque_identity !acc);
  (i, i * i)

let with_pool jobs f =
  let p = Engine.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown p) (fun () -> f p)

let test_map_ordering () =
  let items = List.init 97 Fun.id in
  let expected = List.map busy items in
  List.iter
    (fun jobs ->
      with_pool jobs (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "order preserved at jobs=%d" jobs)
            true
            (Engine.Pool.map p busy items = expected)))
    [ 1; 2; 4; 7 ]

let test_map_empty () =
  with_pool 4 (fun p ->
      Alcotest.(check (list int)) "empty input" [] (Engine.Pool.map p (fun x -> x) []))

let test_reuse_after_completion () =
  with_pool 3 (fun p ->
      for round = 1 to 5 do
        let n = 10 * round in
        let got = Engine.Pool.map p (fun i -> i + round) (List.init n Fun.id) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.init n (fun i -> i + round))
          got
      done)

let test_exception_propagation () =
  with_pool 4 (fun p ->
      (* the *lowest submission index* failure is the one re-raised *)
      (match Engine.Pool.map p (fun i -> if i >= 5 then raise (Boom i) else i) (List.init 20 Fun.id) with
      | (_ : int list) -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 5 i);
      (* the pool survives a failing batch *)
      Alcotest.(check (list int)) "pool reusable after exception" [ 0; 1; 2; 3 ]
        (Engine.Pool.map p Fun.id (List.init 4 Fun.id)))

let test_map_after_shutdown () =
  let p = Engine.Pool.create ~jobs:2 in
  Engine.Pool.shutdown p;
  Engine.Pool.shutdown p;
  (* idempotent *)
  match Engine.Pool.map p Fun.id [ 1 ] with
  | (_ : int list) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_jobs_clamped () =
  with_pool 0 (fun p ->
      Alcotest.(check int) "jobs < 1 behaves as 1" 1 (Engine.Pool.jobs p);
      Alcotest.(check (list int)) "still maps" [ 2; 4 ] (Engine.Pool.map p (fun x -> 2 * x) [ 1; 2 ]))

let test_steal_stats () =
  with_pool 4 (fun p ->
      let items = List.init 50 Fun.id in
      let expected = List.map busy items in
      Alcotest.(check bool) "order preserved" true (Engine.Pool.map p busy items = expected);
      let s = Engine.Pool.stats p in
      Alcotest.(check int) "one batch" 1 s.Engine.Pool.st_batches;
      Alcotest.(check int) "all items" 50 s.Engine.Pool.st_items;
      Alcotest.(check bool) "deques were filled" true (s.Engine.Pool.st_max_queue >= 1);
      let tasks = List.fold_left ( + ) 0 s.Engine.Pool.st_worker_tasks in
      Alcotest.(check bool) "every chunk ran exactly once" true
        (tasks >= 1 && tasks <= s.Engine.Pool.st_max_queue);
      (* steals move tasks between domains; they can never exceed the
         number of tasks executed and never go negative *)
      Alcotest.(check bool) "steal counter bounded" true
        (s.Engine.Pool.st_steals >= 0 && s.Engine.Pool.st_steals <= tasks);
      (* a second batch reuses the same deques; stats accumulate *)
      ignore (Engine.Pool.map p busy items);
      let s2 = Engine.Pool.stats p in
      Alcotest.(check int) "two batches" 2 s2.Engine.Pool.st_batches;
      Alcotest.(check bool) "steals monotonic" true
        (s2.Engine.Pool.st_steals >= s.Engine.Pool.st_steals))

let test_cache_counters () =
  let c : int Engine.Cache.t = Engine.Cache.create () in
  Alcotest.(check bool) "miss on empty" true (Engine.Cache.find c "a" = None);
  Engine.Cache.add c "a" 1;
  Alcotest.(check bool) "hit after add" true (Engine.Cache.find c "a" = Some 1);
  Alcotest.(check bool) "peek does not count" true (Engine.Cache.peek c "a" = Some 1);
  Engine.Cache.add c "a" 99;
  Alcotest.(check bool) "first insertion wins" true (Engine.Cache.peek c "a" = Some 1);
  Engine.Cache.add c "b" 2;
  let s = Engine.Cache.stats c in
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "misses" 1 s.misses;
  Alcotest.(check int) "size" 2 s.size;
  Engine.Cache.clear c;
  let s = Engine.Cache.stats c in
  Alcotest.(check (list int)) "cleared" [ 0; 0; 0 ] [ s.hits; s.misses; s.size ]

let test_with_engine () =
  let leaked = ref None in
  let r =
    Engine.with_engine ~jobs:3 ~memo:false (fun e ->
        leaked := Some e;
        Alcotest.(check int) "jobs" 3 (Engine.jobs e);
        Alcotest.(check bool) "memo off" false (Engine.memo_enabled e);
        Engine.map e (fun x -> x + 1) [ 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "result" [ 2; 3; 4 ] r;
  (* shut down on the way out *)
  match Engine.map (Option.get !leaked) Fun.id [ 1 ] with
  | (_ : int list) -> Alcotest.fail "engine should be shut down"
  | exception Invalid_argument _ -> ()

let test_with_engine_on_exception () =
  let leaked = ref None in
  (match
     Engine.with_engine ~jobs:2 (fun e ->
         leaked := Some e;
         raise (Boom 1))
   with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ());
  match Engine.map (Option.get !leaked) Fun.id [ 1 ] with
  | (_ : int list) -> Alcotest.fail "engine should be shut down after exception"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "map preserves submission order" `Quick test_map_ordering;
    Alcotest.test_case "map on empty list" `Quick test_map_empty;
    Alcotest.test_case "pool reusable across batches" `Quick test_reuse_after_completion;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "map after shutdown rejected" `Quick test_map_after_shutdown;
    Alcotest.test_case "jobs clamped to >= 1" `Quick test_jobs_clamped;
    Alcotest.test_case "work-stealing stats are coherent" `Quick test_steal_stats;
    Alcotest.test_case "cache hit/miss/size counters" `Quick test_cache_counters;
    Alcotest.test_case "with_engine shuts down" `Quick test_with_engine;
    Alcotest.test_case "with_engine shuts down on exception" `Quick test_with_engine_on_exception;
  ]
