(* kft_verify: static race / barrier / bounds verification and
   translation validation.

   Negative fixtures are written as CUDA text and parsed, so the
   diagnostics also exercise the source-position plumbing (satellite of
   the same PR): a defect must be reported with the kernel name and a
   real line/column. *)

open Kft_cuda.Ast
module V = Kft_verify.Verify
module F = Kft_framework.Framework

let dims = (32, 8, 4)

let program_of ?(block = (16, 4, 1)) ~arrays ~src launches =
  let nx, ny, nz = dims in
  {
    p_name = "fixture";
    p_arrays =
      List.map (fun a -> { a_name = a; a_elem_ty = Double; a_dims = [ nx; ny; nz ] }) arrays;
    p_kernels = Kft_cuda.Parse.kernels src;
    p_schedule =
      List.map
        (fun (kernel, args) ->
          Launch { l_kernel = kernel; l_domain = (nx, ny, 1); l_block = block; l_args = args })
        launches;
  }

let has_pass pass (r : V.report) =
  List.exists (fun (d : V.diagnostic) -> d.d_pass = pass) r.diagnostics

let diag_of pass (r : V.report) =
  List.find (fun (d : V.diagnostic) -> d.d_pass = pass) r.diagnostics

(* ------------------------------------------------------------------ *)
(* negative fixtures                                                   *)
(* ------------------------------------------------------------------ *)

let test_shared_race () =
  (* every thread of a row writes s[ty][0]: intra-interval WW race *)
  let src =
    {|
__global__ void collide(const double *A, double *B, int nx, int ny) {
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int gi = blockIdx.x * blockDim.x + tx;
  int gj = blockIdx.y * blockDim.y + ty;
  __shared__ double s[4][16];
  s[ty][0] = A[gj * nx + gi];
  __syncthreads();
  if (gi < nx && gj < ny) {
    B[gj * nx + gi] = s[ty][0];
  }
}
|}
  in
  let nx, ny, _ = dims in
  let prog =
    program_of ~arrays:[ "A"; "B" ] ~src
      [ ("collide", [ Arg_array "A"; Arg_array "B"; Arg_int nx; Arg_int ny ]) ]
  in
  let r = V.verify_program prog in
  Alcotest.(check bool) "race reported" true (has_pass V.Race r);
  let d = diag_of V.Race r in
  Alcotest.(check string) "kernel named" "collide" d.d_kernel;
  Alcotest.(check bool) "carries a source line" true (d.d_loc.line > 0);
  Alcotest.(check bool) "names the tile" true
    (let open String in
     length d.d_message > 0 && d.d_stmt <> "")

let test_divergent_barrier () =
  let src =
    {|
__global__ void divb(double *B, int nx, int ny) {
  int tx = threadIdx.x;
  int gi = blockIdx.x * blockDim.x + tx;
  int gj = blockIdx.y * blockDim.y + threadIdx.y;
  if (tx < 8) {
    __syncthreads();
  }
  if (gi < nx && gj < ny) {
    B[gj * nx + gi] = 1.0;
  }
}
|}
  in
  let nx, ny, _ = dims in
  let prog =
    program_of ~arrays:[ "B" ] ~src
      [ ("divb", [ Arg_array "B"; Arg_int nx; Arg_int ny ]) ]
  in
  let r = V.verify_program prog in
  Alcotest.(check bool) "barrier divergence reported" true (has_pass V.Barrier r);
  let d = diag_of V.Barrier r in
  Alcotest.(check string) "kernel named" "divb" d.d_kernel;
  Alcotest.(check bool) "carries a source line" true (d.d_loc.line > 0);
  (* the frontend checker (same PR) rejects it statically too *)
  let k = List.find (fun k -> k.k_name = "divb") prog.p_kernels in
  Alcotest.(check bool) "Check.kernel rejects it" true (Kft_cuda.Check.kernel k <> [])

let test_oob_halo () =
  (* unguarded left-halo read: thread (0,_) of block (0,_) reads A[-1] *)
  let src =
    {|
__global__ void oob(const double *A, double *B, int nx, int ny) {
  int gi = blockIdx.x * blockDim.x + threadIdx.x;
  int gj = blockIdx.y * blockDim.y + threadIdx.y;
  if (gi < nx && gj < ny) {
    B[gj * nx + gi] = A[gj * nx + gi - 1];
  }
}
|}
  in
  let nx, ny, _ = dims in
  let prog =
    program_of ~arrays:[ "A"; "B" ] ~src
      [ ("oob", [ Arg_array "A"; Arg_array "B"; Arg_int nx; Arg_int ny ]) ]
  in
  let r = V.verify_program prog in
  Alcotest.(check bool) "bounds violation reported" true (has_pass V.Bounds r);
  let d = diag_of V.Bounds r in
  Alcotest.(check string) "kernel named" "oob" d.d_kernel;
  Alcotest.(check bool) "carries a source line" true (d.d_loc.line > 0);
  Alcotest.(check bool) "message names the array" true
    (let rec contains i =
       i + 1 <= String.length d.d_message && (String.sub d.d_message i 1 = "A" || contains (i + 1))
     in
     contains 0)

let test_order_violation () =
  (* producer/consumer fused in the wrong member order: check_group
     accepts it (origin-only WAR), but the member order contradicts the
     source DDG, which translation validation must reject *)
  let src =
    String.concat "\n"
      [
        Util.pointwise_src ~name:"produce" ~a:"A" ~b:"A" ~dst:"V";
        Util.pointwise_src ~name:"consume" ~a:"V" ~b:"V" ~dst:"W";
      ]
  in
  let nx, ny, nz = dims in
  let args arrays = Util.std_args (nx, ny, nz) arrays 0.5 in
  let prog =
    program_of ~arrays:[ "A"; "V"; "W" ] ~src
      [ ("produce", args [ "A"; "A"; "V" ]); ("consume", args [ "V"; "V"; "W" ]) ]
  in
  let launches =
    List.filter_map (function Launch l -> Some l | _ -> None) prog.p_schedule
  in
  let reversed = [ List.rev launches ] in
  let res =
    Kft_codegen.Codegen.transform Util.device prog ~groups:reversed
  in
  let fused =
    List.exists
      (fun (r : Kft_codegen.Codegen.kernel_report) -> r.fusion_kind <> `None)
      res.reports
  in
  Alcotest.(check bool) "the reversed group does fuse" true fused;
  let r = V.validate ~source:prog res in
  Alcotest.(check bool) "order violation reported" true (has_pass V.Translation r);
  let d = diag_of V.Translation r in
  Alcotest.(check bool) "diagnostic names the fused kernel" true
    (String.length d.d_kernel > 0 && d.d_kernel <> "produce" && d.d_kernel <> "consume")

let test_clean_program_is_clean () =
  let prog = Util.producer_consumer_program () in
  let r = V.verify_program prog in
  Alcotest.(check bool) "clean" true (V.is_clean r);
  Alcotest.(check bool) "complete" true r.complete;
  Alcotest.(check bool) "walked threads" true (r.stats.threads_walked > 0)

(* ------------------------------------------------------------------ *)
(* six applications: sources verify clean; pipeline output validates   *)
(* ------------------------------------------------------------------ *)

let test_apps_sources_clean () =
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      let r = V.verify_program a.program in
      Alcotest.(check bool) (a.app_name ^ " clean") true (V.is_clean r);
      Alcotest.(check bool) (a.app_name ^ " complete") true r.complete)
    (Kft_apps.Apps.all ())

let small_config =
  {
    F.default_config with
    verify_mode = F.Verify_fatal;
    gga_params = { Kft_gga.Gga.default_params with population = 10; generations = 8 };
  }

let test_pipeline_validates () =
  (* one representative app end-to-end under the fatal gate (the [verify]
     alias covers all six) *)
  let app = Kft_apps.Apps.mitgcm () in
  let rep = F.transform ~config:small_config app.program in
  Alcotest.(check bool) "verify_report clean" true (V.is_clean rep.verify_report);
  Alcotest.(check bool) "no rejected groups" true (rep.rejected_groups = []);
  Alcotest.(check bool) "some launches checked" true
    (rep.verify_report.stats.launches_checked > 0)

let test_budget_exhaustion () =
  let prog = Util.producer_consumer_program () in
  let r = V.verify_program ~budget:100 prog in
  Alcotest.(check bool) "incomplete under a tiny budget" true (not r.complete);
  Alcotest.(check bool) "not clean (engine note)" true (not (V.is_clean r))

(* ------------------------------------------------------------------ *)
(* round-trip: Parse (Pp.kernels k) == k                               *)
(* ------------------------------------------------------------------ *)

let roundtrip_kernels what kernels =
  let text = Kft_cuda.Pp.kernels kernels in
  let parsed = Kft_cuda.Parse.kernels text in
  Alcotest.(check int) (what ^ ": kernel count") (List.length kernels) (List.length parsed);
  List.iter2
    (fun (k : kernel) (k' : kernel) ->
      if k <> k' then
        Alcotest.failf "%s: kernel %s does not round-trip:\n%s\n  !=\n%s" what k.k_name
          (Kft_cuda.Pp.kernel k) (Kft_cuda.Pp.kernel k'))
    kernels parsed

let test_roundtrip_apps () =
  List.iter
    (fun (a : Kft_apps.Apps.app) -> roundtrip_kernels a.app_name a.program.p_kernels)
    (Kft_apps.Apps.all ())

let test_roundtrip_fused () =
  let app = Kft_apps.Apps.bcalm () in
  let rep = F.transform ~config:small_config app.program in
  let fused_names =
    List.filter_map
      (fun (r : Kft_codegen.Codegen.kernel_report) ->
        if r.fusion_kind <> `None then Some r.new_kernel else None)
      rep.codegen.reports
  in
  Alcotest.(check bool) "some kernels fused" true (fused_names <> []);
  let fused =
    List.filter (fun k -> List.mem k.k_name fused_names) rep.transformed.p_kernels
  in
  roundtrip_kernels "fused kernels" fused

let suite =
  [
    Alcotest.test_case "shared-memory race is reported with location" `Quick test_shared_race;
    Alcotest.test_case "divergent barrier is reported (verifier + checker)" `Quick
      test_divergent_barrier;
    Alcotest.test_case "out-of-bounds halo read is reported" `Quick test_oob_halo;
    Alcotest.test_case "DDG order violation fails translation validation" `Quick
      test_order_violation;
    Alcotest.test_case "clean producer/consumer program verifies clean" `Quick
      test_clean_program_is_clean;
    Alcotest.test_case "six application sources verify clean" `Quick test_apps_sources_clean;
    Alcotest.test_case "pipeline output validates under the fatal gate" `Quick
      test_pipeline_validates;
    Alcotest.test_case "event budget exhaustion is reported, not wrong" `Quick
      test_budget_exhaustion;
  ]

let roundtrip_suite =
  [
    Alcotest.test_case "app kernels round-trip through Pp.kernels/Parse" `Quick
      test_roundtrip_apps;
    Alcotest.test_case "fused kernels round-trip through Pp.kernels/Parse" `Quick
      test_roundtrip_fused;
  ]
