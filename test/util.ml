(* Shared helpers for the test suites. *)

open Kft_cuda.Ast

let device = Kft_device.Device.k20x

(* a 3D array declaration sized (nx, ny, nz) *)
let arr3 (nx, ny, nz) name = { a_name = name; a_elem_ty = Double; a_dims = [ nx; ny; nz ] }

(* standard launch args for the kernels produced by [stencil_src] *)
let std_args dims arrays coef =
  let nx, ny, nz = dims in
  List.map (fun a -> Arg_array a) arrays @ [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double coef ]

(* CUDA source for a guarded 7-point (or 5-point) stencil kernel *)
let stencil_src ~name ~src ~dst ~margin ~threed =
  let z_terms =
    if threed then
      Printf.sprintf
        "+ %s[((k + 1) * ny + j) * nx + i] + %s[((k - 1) * ny + j) * nx + i]" src src
    else ""
  in
  Printf.sprintf
    {|
__global__ void %s(const double *%s, double *%s, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= %d && i < nx - %d && j >= %d && j < ny - %d) {
    for (int k = %d; k < nz - %d; k++) {
      %s[(k * ny + j) * nx + i] = c * (%s[(k * ny + j) * nx + i + 1] + %s[(k * ny + j) * nx + i - 1]
        + %s[(k * ny + (j + 1)) * nx + i] + %s[(k * ny + (j - 1)) * nx + i] %s);
    }
  }
}
|}
    name src dst margin margin margin margin
    (if threed then margin else 0)
    (if threed then margin else 0)
    dst src src src src z_terms

(* pointwise kernel: dst = c * (a + b) *)
let pointwise_src ~name ~a ~b ~dst =
  Printf.sprintf
    {|
__global__ void %s(const double *%s, const double *%s, double *%s, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      %s[(k * ny + j) * nx + i] = c * (%s[(k * ny + j) * nx + i] + %s[(k * ny + j) * nx + i]);
    }
  }
}
|}
    name a b dst dst a b

(* two-kernel producer/consumer program used across suites *)
let producer_consumer_program ?(dims = (32, 16, 8)) ?(block = (16, 4, 1)) () =
  let nx, ny, _nz = dims in
  ignore _nz;
  let src =
    stencil_src ~name:"produce" ~src:"A" ~dst:"B" ~margin:1 ~threed:true
    ^ pointwise_src ~name:"consume" ~a:"B" ~b:"A" ~dst:"C"
  in
  let kernels = Kft_cuda.Parse.kernels src in
  {
    p_name = "producer_consumer";
    p_arrays = [ arr3 dims "A"; arr3 dims "B"; arr3 dims "C" ];
    p_kernels = kernels;
    p_schedule =
      [
        Launch
          { l_kernel = "produce"; l_domain = (nx, ny, 1); l_block = block;
            l_args = std_args dims [ "A"; "B" ] 0.2 };
        Launch
          { l_kernel = "consume"; l_domain = (nx, ny, 1); l_block = block;
            l_args = std_args dims [ "B"; "A"; "C" ] 0.5 };
      ];
  }

let launch_of prog kernel =
  List.find_map
    (function Launch l when l.l_kernel = kernel -> Some l | _ -> None)
    prog.p_schedule
  |> Option.get

(* float comparison for alcotest *)
let close eps = Alcotest.testable Fmt.float (fun a b -> Float.abs (a -. b) <= eps)

let check_float ?(eps = 1e-9) msg a b = Alcotest.check (close eps) msg a b

let run_to_memory ?(seed = 42) prog =
  let mem = Kft_sim.Memory.create prog.p_arrays in
  Kft_sim.Memory.init_seeded mem ~seed;
  ignore (Kft_sim.Interp.run_schedule mem prog);
  mem

(* The three-kernel program of examples/quickstart.ml (same source text
   as tools/verify_all.ml), used by the absint and lint tests. *)
let quickstart_source =
  {|
__global__ void diffuse(const double *U, double *V, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
    for (int k = 1; k < nz - 1; k++) {
      V[(k * ny + j) * nx + i] = c * (U[(k * ny + j) * nx + i + 1] + U[(k * ny + j) * nx + i - 1]
        + U[(k * ny + (j + 1)) * nx + i] + U[(k * ny + (j - 1)) * nx + i]
        + U[((k + 1) * ny + j) * nx + i] + U[((k - 1) * ny + j) * nx + i]
        - 6.0 * U[(k * ny + j) * nx + i]);
    }
  }
}
__global__ void smooth(const double *V, const double *U, double *W, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      W[(k * ny + j) * nx + i] = 0.25 * (V[(k * ny + j) * nx + i + 1] + V[(k * ny + j) * nx + i - 1]
        + V[(k * ny + (j + 1)) * nx + i] + V[(k * ny + (j - 1)) * nx + i])
        + c * U[(k * ny + j) * nx + i];
    }
  }
}
__global__ void relax(const double *W, double *U2, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      U2[(k * ny + j) * nx + i] = c * W[(k * ny + j) * nx + i];
    }
  }
}
|}

let quickstart_program () =
  let nx, ny, nz = (64, 16, 12) in
  let kernels = Kft_cuda.Parse.kernels quickstart_source in
  let launch kernel args =
    Launch
      {
        l_kernel = kernel;
        l_domain = (nx, ny, 1);
        l_block = (16, 8, 1);
        l_args = args @ [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double 0.1 ];
      }
  in
  {
    p_name = "quickstart";
    p_arrays = List.map (arr3 (nx, ny, nz)) [ "U"; "V"; "W"; "U2" ];
    p_kernels = kernels;
    p_schedule =
      [
        launch "diffuse" [ Arg_array "U"; Arg_array "V" ];
        launch "smooth" [ Arg_array "V"; Arg_array "U"; Arg_array "W" ];
        launch "relax" [ Arg_array "W"; Arg_array "U2" ];
      ];
  }
