(* Shared helpers for the test suites. *)

open Kft_cuda.Ast

let device = Kft_device.Device.k20x

(* a 3D array declaration sized (nx, ny, nz) *)
let arr3 (nx, ny, nz) name = { a_name = name; a_elem_ty = Double; a_dims = [ nx; ny; nz ] }

(* standard launch args for the kernels produced by [stencil_src] *)
let std_args dims arrays coef =
  let nx, ny, nz = dims in
  List.map (fun a -> Arg_array a) arrays @ [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double coef ]

(* CUDA source for a guarded 7-point (or 5-point) stencil kernel *)
let stencil_src ~name ~src ~dst ~margin ~threed =
  let z_terms =
    if threed then
      Printf.sprintf
        "+ %s[((k + 1) * ny + j) * nx + i] + %s[((k - 1) * ny + j) * nx + i]" src src
    else ""
  in
  Printf.sprintf
    {|
__global__ void %s(const double *%s, double *%s, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= %d && i < nx - %d && j >= %d && j < ny - %d) {
    for (int k = %d; k < nz - %d; k++) {
      %s[(k * ny + j) * nx + i] = c * (%s[(k * ny + j) * nx + i + 1] + %s[(k * ny + j) * nx + i - 1]
        + %s[(k * ny + (j + 1)) * nx + i] + %s[(k * ny + (j - 1)) * nx + i] %s);
    }
  }
}
|}
    name src dst margin margin margin margin
    (if threed then margin else 0)
    (if threed then margin else 0)
    dst src src src src z_terms

(* pointwise kernel: dst = c * (a + b) *)
let pointwise_src ~name ~a ~b ~dst =
  Printf.sprintf
    {|
__global__ void %s(const double *%s, const double *%s, double *%s, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      %s[(k * ny + j) * nx + i] = c * (%s[(k * ny + j) * nx + i] + %s[(k * ny + j) * nx + i]);
    }
  }
}
|}
    name a b dst dst a b

(* two-kernel producer/consumer program used across suites *)
let producer_consumer_program ?(dims = (32, 16, 8)) ?(block = (16, 4, 1)) () =
  let nx, ny, _nz = dims in
  ignore _nz;
  let src =
    stencil_src ~name:"produce" ~src:"A" ~dst:"B" ~margin:1 ~threed:true
    ^ pointwise_src ~name:"consume" ~a:"B" ~b:"A" ~dst:"C"
  in
  let kernels = Kft_cuda.Parse.kernels src in
  {
    p_name = "producer_consumer";
    p_arrays = [ arr3 dims "A"; arr3 dims "B"; arr3 dims "C" ];
    p_kernels = kernels;
    p_schedule =
      [
        Launch
          { l_kernel = "produce"; l_domain = (nx, ny, 1); l_block = block;
            l_args = std_args dims [ "A"; "B" ] 0.2 };
        Launch
          { l_kernel = "consume"; l_domain = (nx, ny, 1); l_block = block;
            l_args = std_args dims [ "B"; "A"; "C" ] 0.5 };
      ];
  }

let launch_of prog kernel =
  List.find_map
    (function Launch l when l.l_kernel = kernel -> Some l | _ -> None)
    prog.p_schedule
  |> Option.get

(* float comparison for alcotest *)
let close eps = Alcotest.testable Fmt.float (fun a b -> Float.abs (a -. b) <= eps)

let check_float ?(eps = 1e-9) msg a b = Alcotest.check (close eps) msg a b

let run_to_memory ?(seed = 42) prog =
  let mem = Kft_sim.Memory.create prog.p_arrays in
  Kft_sim.Memory.init_seeded mem ~seed;
  ignore (Kft_sim.Interp.run_schedule mem prog);
  mem

(* The three-kernel program of examples/quickstart.ml (same source text
   as tools/verify_all.ml), used by the absint and lint tests. *)
let quickstart_source =
  {|
__global__ void diffuse(const double *U, double *V, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
    for (int k = 1; k < nz - 1; k++) {
      V[(k * ny + j) * nx + i] = c * (U[(k * ny + j) * nx + i + 1] + U[(k * ny + j) * nx + i - 1]
        + U[(k * ny + (j + 1)) * nx + i] + U[(k * ny + (j - 1)) * nx + i]
        + U[((k + 1) * ny + j) * nx + i] + U[((k - 1) * ny + j) * nx + i]
        - 6.0 * U[(k * ny + j) * nx + i]);
    }
  }
}
__global__ void smooth(const double *V, const double *U, double *W, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      W[(k * ny + j) * nx + i] = 0.25 * (V[(k * ny + j) * nx + i + 1] + V[(k * ny + j) * nx + i - 1]
        + V[(k * ny + (j + 1)) * nx + i] + V[(k * ny + (j - 1)) * nx + i])
        + c * U[(k * ny + j) * nx + i];
    }
  }
}
__global__ void relax(const double *W, double *U2, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      U2[(k * ny + j) * nx + i] = c * W[(k * ny + j) * nx + i];
    }
  }
}
|}

let quickstart_program () =
  let nx, ny, nz = (64, 16, 12) in
  let kernels = Kft_cuda.Parse.kernels quickstart_source in
  let launch kernel args =
    Launch
      {
        l_kernel = kernel;
        l_domain = (nx, ny, 1);
        l_block = (16, 8, 1);
        l_args = args @ [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double 0.1 ];
      }
  in
  {
    p_name = "quickstart";
    p_arrays = List.map (arr3 (nx, ny, nz)) [ "U"; "V"; "W"; "U2" ];
    p_kernels = kernels;
    p_schedule =
      [
        launch "diffuse" [ Arg_array "U"; Arg_array "V" ];
        launch "smooth" [ Arg_array "V"; Arg_array "U"; Arg_array "W" ];
        launch "relax" [ Arg_array "W"; Arg_array "U2" ];
      ];
  }

(* ------------------------------------------------------------------ *)
(* Differential fuzzer: random well-formed stencil programs            *)
(* ------------------------------------------------------------------ *)

(* Random chains of guarded stencil kernels A0 -> A1 -> ... generated
   as CUDA source text from the same template family as [stencil_src],
   then parsed, so every sample is inside the frontend's subset and
   every array access is in bounds by construction: offsets stay within
   the guard margin (|di|,|dj| <= m with i in [m, nx-m), j in [m, ny-m))
   and within the k-loop margin (|dk| <= mk with k in [mk, nz-mk)).
   Coefficients come through the scalar parameter [c] and the only
   float literal is 0.0, so print/parse round-trips are exact. *)

let fuzz_term ~src (di, dj, dk) =
  let part v d =
    if d = 0 then v
    else if d > 0 then Printf.sprintf "(%s + %d)" v d
    else Printf.sprintf "(%s - %d)" v (-d)
  in
  Printf.sprintf "%s[(%s * ny + %s) * nx + %s]" src (part "k" dk) (part "j" dj)
    (part "i" di)

let fuzz_kernel_src ~name ~src ~dst ~m ~mk ~terms ~accum =
  let sum = String.concat " + " (List.map (fun t -> fuzz_term ~src t) terms) in
  let dst_idx = Printf.sprintf "%s[(k * ny + j) * nx + i]" dst in
  let body =
    match accum with
    | None -> Printf.sprintf "      %s = c * (%s);" dst_idx sum
    | Some rounds ->
        Printf.sprintf
          "      double acc = 0.0;\n\
          \      for (int r = 0; r < %d; r++) {\n\
          \        acc = acc + (%s);\n\
          \      }\n\
          \      %s = c * acc;"
          rounds sum dst_idx
  in
  let guard =
    if m = 0 then "i < nx && j < ny"
    else Printf.sprintf "i >= %d && i < nx - %d && j >= %d && j < ny - %d" m m m m
  in
  Printf.sprintf
    {|
__global__ void %s(const double *%s, double *%s, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (%s) {
    for (int k = %d; k < nz - %d; k++) {
%s
    }
  }
}
|}
    name src dst guard mk mk body

(* one generated sample: the program plus the source text it was parsed
   from (the round-trip property re-parses the pretty-printed AST) *)
type fuzz_sample = { fz_src : string; fz_program : program }

let fuzz_sample_gen : fuzz_sample QCheck.Gen.t =
  let open QCheck.Gen in
  let offset n = if n = 0 then return 0 else int_range (-n) n in
  int_range 8 16 >>= fun nx ->
  int_range 4 8 >>= fun ny ->
  int_range 3 6 >>= fun nz ->
  int_range 1 3 >>= fun nk ->
  oneofl [ (4, 2, 1); (8, 2, 1); (8, 4, 1); (16, 4, 1) ] >>= fun block ->
  let kernel_spec =
    int_range 0 (min 2 ((ny - 1) / 2)) >>= fun m ->
    int_range 0 (min 1 ((nz - 1) / 2)) >>= fun mk ->
    int_range 1 4 >>= fun nterms ->
    list_repeat nterms (triple (offset m) (offset m) (offset mk)) >>= fun terms ->
    oneofl [ 0.125; 0.25; 0.5; 0.75; 1.0; 2.0 ] >>= fun coef ->
    frequency [ (7, return None); (3, map (fun r -> Some r) (int_range 2 3)) ]
    >>= fun accum -> return (m, mk, terms, coef, accum)
  in
  list_repeat nk kernel_spec >>= fun specs ->
  let srcs =
    List.mapi
      (fun i (m, mk, terms, _, accum) ->
        fuzz_kernel_src
          ~name:(Printf.sprintf "s%d" i)
          ~src:(Printf.sprintf "A%d" i)
          ~dst:(Printf.sprintf "A%d" (i + 1))
          ~m ~mk ~terms ~accum)
      specs
  in
  let src = String.concat "" srcs in
  let launches =
    List.mapi
      (fun i (_, _, _, coef, _) ->
        Launch
          {
            l_kernel = Printf.sprintf "s%d" i;
            l_domain = (nx, ny, 1);
            l_block = block;
            l_args =
              [
                Arg_array (Printf.sprintf "A%d" i);
                Arg_array (Printf.sprintf "A%d" (i + 1));
                Arg_int nx;
                Arg_int ny;
                Arg_int nz;
                Arg_double coef;
              ];
          })
      specs
  in
  let program =
    {
      p_name = "fuzz";
      p_arrays =
        List.init (nk + 1) (fun i -> arr3 (nx, ny, nz) (Printf.sprintf "A%d" i));
      p_kernels = Kft_cuda.Parse.kernels src;
      p_schedule = launches;
    }
  in
  return { fz_src = src; fz_program = program }

let fuzz_sample_print s =
  Printf.sprintf "%s\n/* schedule */\n%s" s.fz_src
    (Kft_cuda.Pp.host_schedule s.fz_program)

let fuzz_sample_arb = QCheck.make ~print:fuzz_sample_print fuzz_sample_gen

(* ------------------------------------------------------------------ *)
(* stdout/stderr capture (for in-process CLI smoke tests)              *)
(* ------------------------------------------------------------------ *)

(* run [f] with stdout and stderr redirected to temp files; returns
   (result, stdout text, stderr text) *)
let capture_output f =
  let slurp path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let out_file = Filename.temp_file "kft_test" ".out" in
  let err_file = Filename.temp_file "kft_test" ".err" in
  flush stdout;
  flush stderr;
  let saved_out = Unix.dup Unix.stdout and saved_err = Unix.dup Unix.stderr in
  let redirect path target =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    Unix.dup2 fd target;
    Unix.close fd
  in
  redirect out_file Unix.stdout;
  redirect err_file Unix.stderr;
  let restore () =
    flush stdout;
    flush stderr;
    Unix.dup2 saved_out Unix.stdout;
    Unix.close saved_out;
    Unix.dup2 saved_err Unix.stderr;
    Unix.close saved_err
  in
  let r = Fun.protect ~finally:restore f in
  let out = slurp out_file and err = slurp err_file in
  Sys.remove out_file;
  Sys.remove err_file;
  (r, out, err)

(* naive substring search (no Str dependency in the test suites) *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
