(* kft_schedflow: whole-schedule dataflow, liveness, schedule DDG,
   dataflow issues, the three schedule-level lint rules, the
   liveness-driven arena overlay, and the byte-stable JSON report.

   Also hosts the regression test for the [Verify.merge] dedupe fix:
   diagnostics differing only in the array they are about must both
   survive a merge. *)

open Kft_cuda.Ast
module Sf = Kft_schedflow.Schedflow
module L = Kft_absint.Lint
module V = Kft_verify.Verify

let n = 64

let arrays names = List.map (fun a -> { a_name = a; a_elem_ty = Double; a_dims = [ n ] }) names

(* 1-D kernels over the full extent: every access is proved by absint *)
let kernels_src =
  {|
__global__ void wx(const double *A, double *X, int m) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) X[i] = A[i] + 1.0;
}
__global__ void rx(const double *X, double *B, int m) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) B[i] = X[i] * 2.0;
}
__global__ void copyk(const double *S, double *D, int m) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) D[i] = S[i];
}
__global__ void bump(double *T, int m) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) T[i] = T[i] + 1.0;
}
|}

let kernels = Kft_cuda.Parse.kernels kernels_src

let launch kernel args =
  Launch
    {
      l_kernel = kernel;
      l_domain = (n, 1, 1);
      l_block = (32, 1, 1);
      l_args = List.map (fun a -> Arg_array a) args @ [ Arg_int n ];
    }

let program name arrs schedule =
  { p_name = name; p_arrays = arrays arrs; p_kernels = kernels; p_schedule = schedule }

let find_array_info t name =
  List.find (fun (a : Sf.array_info) -> a.ai_name = name) t.Sf.arrays

(* ------------------------------------------------------------------ *)
(* degenerate schedules                                                *)
(* ------------------------------------------------------------------ *)

let test_empty_schedule () =
  let t = Sf.analyze (program "empty" [ "A"; "B" ] []) in
  Alcotest.(check int) "no ops" 0 t.Sf.stats.st_ops;
  Alcotest.(check int) "no deps" 0 t.stats.st_deps;
  Alcotest.(check int) "no issues" 0 (List.length t.Sf.issues);
  Alcotest.(check int) "both arrays described" 2 t.stats.st_arrays;
  Alcotest.(check bool) "never accessed" true
    (List.for_all (fun (a : Sf.array_info) -> a.ai_first = None && a.ai_last = None) t.Sf.arrays);
  Alcotest.(check (option (pair int int))) "no live interval" None (Sf.live_interval t "A");
  Alcotest.(check (option (pair int int))) "undeclared array" None (Sf.live_interval t "Z")

let test_single_launch () =
  let t = Sf.analyze (program "single" [ "A"; "X" ] [ launch "wx" [ "A"; "X" ] ]) in
  Alcotest.(check int) "one op" 1 t.Sf.stats.st_ops;
  Alcotest.(check int) "one launch" 1 t.stats.st_launches;
  Alcotest.(check int) "no deps" 0 t.stats.st_deps;
  Alcotest.(check int) "no issues (no copies: everything is input+output)" 0
    (List.length t.Sf.issues);
  Alcotest.(check (option (pair int int))) "A live at op 0" (Some (0, 0)) (Sf.live_interval t "A");
  Alcotest.(check (option (pair int int))) "X live at op 0" (Some (0, 0)) (Sf.live_interval t "X");
  Alcotest.(check bool) "every region proved" true
    (t.stats.st_regions_proved > 0 && t.stats.st_regions_fallback = 0)

(* with explicit copies, a write-only array that is copied out is a
   legitimate program output: no dead store, and its liveness shape is
   write-only until the copy *)
let test_write_only_output () =
  let t =
    Sf.analyze
      (program "wonly" [ "A"; "X" ]
         [ Copy_to_device "A"; launch "wx" [ "A"; "X" ]; Copy_to_host "X" ])
  in
  Alcotest.(check int) "no issues" 0 (List.length t.Sf.issues);
  Alcotest.(check int) "no lint findings" 0 (List.length (Sf.lint t));
  let a = find_array_info t "A" and x = find_array_info t "X" in
  Alcotest.(check (pair bool bool)) "A is input, not output" (true, false)
    (a.ai_input, a.ai_output);
  Alcotest.(check (pair bool bool)) "X is output, not input" (false, true)
    (x.ai_input, x.ai_output);
  Alcotest.(check (option int)) "X never read before the copy-out" (Some 2) x.ai_first_read;
  Alcotest.(check (option int)) "X first written by the launch" (Some 1) x.ai_first_write

(* ------------------------------------------------------------------ *)
(* dependences: an array redefined between two reads                   *)
(* ------------------------------------------------------------------ *)

let test_redefinition_deps () =
  let t =
    Sf.analyze
      (program "redef" [ "A"; "X"; "B"; "C" ]
         [
           launch "wx" [ "A"; "X" ];
           launch "rx" [ "X"; "B" ];
           launch "wx" [ "A"; "X" ];
           launch "rx" [ "X"; "C" ];
         ])
  in
  let has src dst kind =
    List.exists
      (fun (d : Sf.dep) ->
        d.dep_src = src && d.dep_dst = dst && d.dep_array = "X" && d.dep_kind = kind)
      t.Sf.deps
  in
  Alcotest.(check bool) "RAW def -> first read" true (has 0 1 Sf.Raw);
  Alcotest.(check bool) "WAR first read -> redefinition" true (has 1 2 Sf.War);
  Alcotest.(check bool) "WAW def -> redefinition" true (has 0 2 Sf.Waw);
  Alcotest.(check bool) "RAW redefinition -> second read" true (has 2 3 Sf.Raw);
  (* the launch-level obligation set carries the same edges *)
  let ld = Sf.launch_deps t in
  Alcotest.(check bool) "launch_deps carries (0,1,X) and (2,3,X)" true
    (List.mem (0, 1, "X") ld && List.mem (2, 3, "X") ld)

let test_quickstart_launch_deps () =
  let t = Sf.analyze (Kft_apps.Apps.quickstart ()).program in
  Alcotest.(check (list (triple int int string)))
    "quickstart schedule DDG" [ (0, 1, "V"); (1, 2, "W") ] (Sf.launch_deps t)

(* ------------------------------------------------------------------ *)
(* issues: read-before-write and dead store (need explicit copies)     *)
(* ------------------------------------------------------------------ *)

let test_issues () =
  let t =
    Sf.analyze
      (program "issues" [ "A"; "X"; "B"; "D" ]
         [
           Copy_to_device "A";
           (* X is read here but never copied in nor written before *)
           launch "rx" [ "X"; "B" ];
           (* D is written but never read nor copied out *)
           launch "wx" [ "A"; "D" ];
           Copy_to_host "B";
         ])
  in
  Alcotest.(check bool) "read-before-write on X at op 1" true
    (List.mem (Sf.Read_before_write { rb_array = "X"; rb_op = 1 }) t.Sf.issues);
  Alcotest.(check bool) "dead store to D at op 2" true
    (List.mem (Sf.Dead_store { ds_array = "D"; ds_op = 2 }) t.Sf.issues);
  List.iter (fun i -> Alcotest.(check bool) "printable" true (Sf.pp_issue i <> "")) t.Sf.issues

(* ------------------------------------------------------------------ *)
(* the three lint rules                                                *)
(* ------------------------------------------------------------------ *)

let rules fs = List.map (fun (f : L.finding) -> (f.f_rule, f.f_severity)) fs

let test_lint_dead_array () =
  let fs =
    Sf.lint_program
      (program "deadarr" [ "A"; "X"; "D"; "Z" ]
         [
           Copy_to_device "A";
           launch "wx" [ "A"; "X" ];
           (* D: written, never read back; Z: never accessed at all *)
           launch "wx" [ "A"; "D" ];
           Copy_to_host "X";
         ])
  in
  let dead = List.filter (fun (f : L.finding) -> f.f_rule = "dead-array") fs in
  Alcotest.(check int) "two dead arrays" 2 (List.length dead);
  Alcotest.(check bool) "both are warnings" true
    (List.for_all (fun (f : L.finding) -> f.f_severity = L.Warn) dead);
  Alcotest.(check bool) "names D and Z" true
    (List.exists (fun (f : L.finding) -> Util.contains f.f_message "D") dead
    && List.exists (fun (f : L.finding) -> Util.contains f.f_message "Z") dead)

let test_lint_redundant_copy () =
  let fs =
    Sf.lint_program
      (program "redcopy" [ "S"; "D"; "B" ]
         [ launch "copyk" [ "S"; "D" ]; launch "rx" [ "D"; "B" ] ])
  in
  match List.filter (fun (f : L.finding) -> f.f_rule = "redundant-copy") fs with
  | [ f ] ->
      Alcotest.(check bool) "warning severity" true (f.f_severity = L.Warn);
      Alcotest.(check string) "attributed to the copy kernel" "copyk" f.f_kernel;
      Alcotest.(check bool) "message names both host arrays" true
        (Util.contains f.f_message "S" && Util.contains f.f_message "D")
  | fs' -> Alcotest.failf "expected exactly one redundant-copy finding, got %d" (List.length fs')

(* a scaled copy (rx: B[i] = X[i] * 2.0) is NOT element-identical *)
let test_lint_no_false_redundant_copy () =
  let fs =
    Sf.lint_program
      (program "scaled" [ "X"; "B" ] [ launch "rx" [ "X"; "B" ] ])
  in
  Alcotest.(check bool) "scaled copy not flagged" true
    (not (List.mem_assoc "redundant-copy" (rules fs)))

let test_lint_transient_global () =
  let fs =
    Sf.lint_program
      (program "transient" [ "A"; "X"; "T" ]
         [
           Copy_to_device "A";
           launch "wx" [ "A"; "X" ];
           (* T's whole live range is the single bump launch *)
           launch "bump" [ "T" ];
           Copy_to_host "X";
         ])
  in
  match List.filter (fun (f : L.finding) -> f.f_rule = "transient-global") fs with
  | [ f ] ->
      Alcotest.(check bool) "info severity" true (f.f_severity = L.Info);
      Alcotest.(check string) "attributed to the launch" "bump" f.f_kernel;
      Alcotest.(check bool) "names T" true (Util.contains f.f_message "T")
  | fs' -> Alcotest.failf "expected exactly one transient-global finding, got %d" (List.length fs')

(* findings are deterministic and jobs-independent through the shared
   lint pipeline *)
let test_lint_programs_jobs_identical () =
  let progs =
    [
      (program "redcopy" [ "S"; "D"; "B" ]
         [ launch "copyk" [ "S"; "D" ]; launch "rx" [ "D"; "B" ] ]);
      (Kft_apps.Apps.quickstart ()).program;
      (program "deadarr" [ "A"; "X"; "Z" ]
         [ Copy_to_device "A"; launch "wx" [ "A"; "X" ]; Copy_to_host "X" ]);
    ]
  in
  let f1 = Sf.lint_programs ~jobs:1 progs in
  let f4 = Sf.lint_programs ~jobs:4 progs in
  Alcotest.(check bool) "same findings at jobs 1 and 4" true (f1 = f4);
  Alcotest.(check bool) "normalized (sorted, unique)" true (f1 = L.normalize f1)

(* ------------------------------------------------------------------ *)
(* liveness-driven arena overlay                                       *)
(* ------------------------------------------------------------------ *)

let test_arena_layout_quickstart () =
  let p = (Kft_apps.Apps.quickstart ()).program in
  let t = Sf.analyze p in
  match Sf.arena_layout t with
  | None -> Alcotest.fail "quickstart has a sharing opportunity (U2 never reads)"
  | Some layout ->
      let packed = List.fold_left (fun acc a -> acc + array_cells a) 0 p.p_arrays in
      Alcotest.(check bool) "overlay strictly smaller than packed" true
        (layout.Kft_sim.Memory.l_total < packed);
      Alcotest.(check int) "every array placed" (List.length p.p_arrays)
        (List.length layout.l_offsets);
      List.iter
        (fun a ->
          match List.assoc_opt a.a_name layout.l_offsets with
          | None -> Alcotest.failf "array %s missing from the layout" a.a_name
          | Some off ->
              Alcotest.(check bool) "inside the arena" true
                (off >= 0 && off + array_cells a <= layout.l_total))
        p.p_arrays;
      (* bit-identity: the overlay run reproduces the packed run's
         per-kernel statistics exactly (final memory is allowed to
         differ on shared slots -- the overlay is for discarded runs) *)
      let stats_of ?layout () =
        let r = Kft_sim.Profiler.profile ?layout Util.device p in
        let sts =
          List.map (fun (kp : Kft_sim.Profiler.kernel_profile) -> (kp.kernel, kp.stats)) r.profiles
        in
        Kft_sim.Memory.release r.memory;
        sts
      in
      Alcotest.(check bool) "overlay stats bit-identical to packed" true
        (stats_of () = stats_of ~layout ())

(* ------------------------------------------------------------------ *)
(* property: computed liveness is sound against the interpreter        *)
(* ------------------------------------------------------------------ *)

let prop_liveness_sound =
  QCheck.Test.make ~name:"every traced access falls inside the live interval" ~count:15
    (QCheck.make
       ~print:(fun s -> Kft_cuda.Pp.program (Test_endtoend.program_of_spec s))
       Test_endtoend.spec_gen)
    (fun spec ->
      let prog = Test_endtoend.program_of_spec spec in
      match Kft_cuda.Check.program prog with
      | _ :: _ -> QCheck.assume_fail ()
      | [] -> (
          let t = Sf.analyze prog in
          let mem = Kft_sim.Memory.create prog.p_arrays in
          Kft_sim.Memory.init_seeded mem ~seed:7;
          let violations = ref [] in
          (* generated schedules are launch-only, so the op index is the
             schedule position *)
          List.iteri
            (fun op stmt ->
              match stmt with
              | Copy_to_device _ | Copy_to_host _ -> ()
              | Launch l ->
                  Kft_sim.Interp.access_trace :=
                    Some
                      (fun ~write:_ arr _ ->
                        let ok =
                          match Sf.live_interval t arr with
                          | Some (first, last) -> first <= op && op <= last
                          | None -> false
                        in
                        if not ok then
                          violations :=
                            Printf.sprintf "op %d (%s) touches %s outside its live interval" op
                              l.l_kernel arr
                            :: !violations);
                  Fun.protect
                    ~finally:(fun () -> Kft_sim.Interp.access_trace := None)
                    (fun () -> ignore (Kft_sim.Interp.launch ~affine:false mem prog l)))
            prog.p_schedule;
          Kft_sim.Memory.release mem;
          match !violations with
          | [] -> true
          | v ->
              QCheck.Test.fail_reportf "unsound liveness:\n%s\nprogram:\n%s"
                (String.concat "\n" (List.sort_uniq compare v))
                (Kft_cuda.Pp.program prog)))

(* ------------------------------------------------------------------ *)
(* Verify.merge regression: dedupe keys on the array too               *)
(* ------------------------------------------------------------------ *)

let test_merge_keeps_distinct_arrays () =
  let d array =
    {
      V.d_kernel = "k";
      d_pass = V.Schedule;
      d_loc = Kft_cuda.Loc.none;
      d_stmt = "schedule";
      d_array = array;
      d_message = "dependence not preserved";
    }
  in
  let r array = { V.empty_report with diagnostics = [ d array ] } in
  let merged = V.merge (r "A") (r "B") in
  Alcotest.(check int)
    "diagnostics differing only in the array both survive the merge" 2
    (List.length merged.diagnostics);
  (* identical diagnostics still collapse *)
  let collapsed = V.merge (r "A") (r "A") in
  Alcotest.(check int) "identical diagnostics dedupe" 1 (List.length collapsed.diagnostics)

(* ------------------------------------------------------------------ *)
(* golden: byte-stable JSON report for quickstart                      *)
(* ------------------------------------------------------------------ *)

let golden_quickstart_json =
  {golden|{"tool":"kft-schedflow","version":1,"programs":[
 {"name":"quickstart","stats":{"ops":3,"launches":3,"arrays":4,"deps":2,"deps_refined":0,"regions_proved":7,"regions_fallback":0},
  "arrays":[
   {"name":"U","cells":12288,"input":true,"output":true,"first":0,"last":1,"first_read":0,"first_write":null,"last_read":1,"last_write":null},
   {"name":"U2","cells":12288,"input":true,"output":true,"first":2,"last":2,"first_read":null,"first_write":2,"last_read":null,"last_write":2},
   {"name":"V","cells":12288,"input":true,"output":true,"first":0,"last":1,"first_read":1,"first_write":0,"last_read":1,"last_write":0},
   {"name":"W","cells":12288,"input":true,"output":true,"first":1,"last":2,"first_read":2,"first_write":1,"last_read":2,"last_write":1}],
  "ops":[
   {"op":0,"kind":"launch","target":"diffuse","reads":[{"array":"U","region":[65,12222]}],"writes":[{"array":"V","region":[1089,11198]}]},
   {"op":1,"kind":"launch","target":"smooth","reads":[{"array":"U","region":[2178,10109]},{"array":"V","region":[2114,10173]}],"writes":[{"array":"W","region":[2178,10109]}]},
   {"op":2,"kind":"launch","target":"relax","reads":[{"array":"W","region":[0,12287]}],"writes":[{"array":"U2","region":[0,12287]}]}],
  "deps":[
   {"src":0,"dst":1,"array":"V","kind":"raw"},
   {"src":1,"dst":2,"array":"W","kind":"raw"}],
  "issues":[],
  "findings":[]}
],"warnings":0,"infos":0}
|golden}

let test_golden_json () =
  let out = Sf.render_json [ Sf.analyze (Kft_apps.Apps.quickstart ()).program ] in
  (match Kft_trace.Json_check.check out with
  | Ok () -> ()
  | Error e -> Alcotest.failf "schedflow JSON does not parse: %s" e);
  Alcotest.(check string) "pinned quickstart report bytes" golden_quickstart_json out

let suite =
  [
    Alcotest.test_case "empty schedule" `Quick test_empty_schedule;
    Alcotest.test_case "single launch" `Quick test_single_launch;
    Alcotest.test_case "write-only output array is not a dead store" `Quick
      test_write_only_output;
    Alcotest.test_case "redefinition between reads: RAW/WAR/WAW" `Quick test_redefinition_deps;
    Alcotest.test_case "quickstart launch-level schedule DDG" `Quick test_quickstart_launch_deps;
    Alcotest.test_case "read-before-write and dead-store issues" `Quick test_issues;
    Alcotest.test_case "lint: dead-array" `Quick test_lint_dead_array;
    Alcotest.test_case "lint: redundant-copy" `Quick test_lint_redundant_copy;
    Alcotest.test_case "lint: scaled copy is not redundant" `Quick
      test_lint_no_false_redundant_copy;
    Alcotest.test_case "lint: transient-global" `Quick test_lint_transient_global;
    Alcotest.test_case "lint_programs identical at any jobs" `Quick
      test_lint_programs_jobs_identical;
    Alcotest.test_case "arena overlay: placed, smaller, bit-identical stats" `Quick
      test_arena_layout_quickstart;
    QCheck_alcotest.to_alcotest prop_liveness_sound;
    Alcotest.test_case "Verify.merge keys on the array" `Quick test_merge_keeps_distinct_arrays;
    Alcotest.test_case "golden JSON report (quickstart)" `Quick test_golden_json;
  ]
