(* Golden bit-exactness regression.

   Pins the GGA search outcome (best fitness, fusion groups, fissioned
   set) for the quickstart example and two of the six applications at a
   fixed small budget. The engine determinism contract says these values
   are a pure function of (program, params, seed) — independent of the
   worker count and of whether the memo cache is on — so any drift here
   means a behavioural change in the search, the performance model, or
   the frontend, and the goldens must be re-derived consciously.

   To re-derive: run the suite; the Alcotest diff prints the actual
   rendered summary, which becomes the new golden string. *)

module F = Kft_framework.Framework
module Apps = Kft_apps.Apps
open Kft_cuda.Ast

(* Same three-kernel program as examples/quickstart.ml. *)
let quickstart_source =
  {|
__global__ void diffuse(const double *U, double *V, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
    for (int k = 1; k < nz - 1; k++) {
      V[(k * ny + j) * nx + i] = c * (U[(k * ny + j) * nx + i + 1] + U[(k * ny + j) * nx + i - 1]
        + U[(k * ny + (j + 1)) * nx + i] + U[(k * ny + (j - 1)) * nx + i]
        + U[((k + 1) * ny + j) * nx + i] + U[((k - 1) * ny + j) * nx + i]
        - 6.0 * U[(k * ny + j) * nx + i]);
    }
  }
}
__global__ void smooth(const double *V, const double *U, double *W, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      W[(k * ny + j) * nx + i] = 0.25 * (V[(k * ny + j) * nx + i + 1] + V[(k * ny + j) * nx + i - 1]
        + V[(k * ny + (j + 1)) * nx + i] + V[(k * ny + (j - 1)) * nx + i])
        + c * U[(k * ny + j) * nx + i];
    }
  }
}
__global__ void relax(const double *W, double *U2, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      U2[(k * ny + j) * nx + i] = c * W[(k * ny + j) * nx + i];
    }
  }
}
|}

let quickstart_program () =
  let nx, ny, nz = (64, 16, 12) in
  let kernels = Kft_cuda.Parse.kernels quickstart_source in
  let arr name = { a_name = name; a_elem_ty = Double; a_dims = [ nx; ny; nz ] } in
  let dims_args = [ Arg_int nx; Arg_int ny; Arg_int nz; Arg_double 0.125 ] in
  let launch kernel args =
    Launch { l_kernel = kernel; l_domain = (nx, ny, 1); l_block = (32, 4, 1); l_args = args }
  in
  {
    p_name = "quickstart";
    p_arrays = [ arr "U"; arr "V"; arr "W"; arr "U2" ];
    p_kernels = kernels;
    p_schedule =
      [
        launch "diffuse" ([ Arg_array "U"; Arg_array "V" ] @ dims_args);
        launch "smooth" ([ Arg_array "V"; Arg_array "U"; Arg_array "W" ] @ dims_args);
        launch "relax" ([ Arg_array "W"; Arg_array "U2" ] @ dims_args);
      ];
  }

(* Fixed small budget: large enough that the search does real work
   (crossover, mutation, fission decisions), small enough for tier-1. *)
let config =
  {
    F.default_config with
    gga_params =
      { Kft_gga.Gga.default_params with generations = 10; population = 12; seed = 20260806 };
  }

let render (report : F.report) =
  let b = Buffer.create 256 in
  (match report.gga with
  | None -> Buffer.add_string b "gga=none\n"
  | Some r ->
      Buffer.add_string b (Printf.sprintf "fitness=%.17g\n" r.best.fitness);
      Buffer.add_string b
        (Printf.sprintf "violations=%d evaluations=%d\n" r.best.violations r.evaluations));
  Buffer.add_string b
    (Printf.sprintf "groups=%s\n"
       (String.concat " " (List.map (String.concat "+") report.solution_groups)));
  Buffer.add_string b
    (Printf.sprintf "fissioned=%s\n" (String.concat "," report.fissioned));
  Buffer.contents b

let check_golden name program golden () =
  let report = F.transform ~config program in
  Alcotest.(check string) (name ^ " search outcome pinned") golden (render report)

let quickstart_golden =
  "fitness=11.939180487292035\n" ^ "violations=0 evaluations=112\n"
  ^ "groups=diffuse+relax+smooth\n" ^ "fissioned=\n"

let mitgcm_golden =
  "fitness=7.0158016449894038\n" ^ "violations=0 evaluations=112\n"
  ^ "groups=axpy_01+lap_01 axpy_02+lap_03 axpy_03 axpy_04 axpy_05 axpy_06+lap_07 axpy_07 \
     lap_02 lap_04 lap_05 lap_06\n" ^ "fissioned=\n"

let fluam_golden =
  "fitness=5.0422491561703335\n" ^ "violations=0 evaluations=112\n"
  ^ "groups=acc_01 acc_02 acc_03 acc_04 acc_05 acc_06 acc_07 acc_08 acc_09 acc_10 fvol_01 \
     fvol_02+rk_08 fvol_03 fvol_04 fvol_05+fvol_06 fvol_07 fvol_08 fvol_09 fvol_10 part_01 \
     part_02 part_03 part_04 part_05 part_06 part_07 part_08 part_09 part_10 part_11 part_12 \
     rk_01 rk_02 rk_03 rk_04 rk_05 rk_06 rk_07 rk_09 rk_10\n" ^ "fissioned=\n"

let suite =
  [
    Alcotest.test_case "quickstart golden" `Quick
      (fun () -> check_golden "quickstart" (quickstart_program ()) quickstart_golden ());
    Alcotest.test_case "MITgcm golden" `Quick
      (fun () -> check_golden "mitgcm" (Apps.mitgcm ()).program mitgcm_golden ());
    Alcotest.test_case "Fluam golden" `Quick
      (fun () -> check_golden "fluam" (Apps.fluam ()).program fluam_golden ());
  ]
