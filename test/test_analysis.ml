(* Static analyses: stencil access recovery, cost estimation, array
   dependence (fission substrate), Roofline classification. *)

open Kft_cuda.Ast
module Access = Kft_analysis.Access
module Cost = Kft_analysis.Cost
module Deps = Kft_analysis.Deps
module Classify = Kft_analysis.Classify

let dims = (32, 16, 8)

let env_of prog name = Access.env_of_launch prog (Util.launch_of prog name)

let stencil_prog = Util.producer_consumer_program ~dims ()

let test_offsets_recovered () =
  let k = find_kernel stencil_prog "produce" in
  let info = Access.analyze k (env_of stencil_prog "produce") in
  let offs = Access.read_offsets info "A" in
  Alcotest.(check int) "six read offsets" 6 (List.length offs);
  Alcotest.(check bool) "has (1,0,0)" true (List.mem (1, 0, 0) offs);
  Alcotest.(check bool) "has (0,0,-1)" true (List.mem (0, 0, -1) offs);
  Alcotest.(check bool) "radius (1,1,1)" true (Access.stencil_radius info "A" = (1, 1, 1));
  Alcotest.(check (list string)) "writes" [ "B" ] (Access.writes_arrays info);
  Alcotest.(check (list string)) "reads" [ "A" ] (Access.reads_arrays info)

let test_vertical_loop () =
  let k = find_kernel stencil_prog "produce" in
  let info = Access.analyze k (env_of stencil_prog "produce") in
  match info.loops with
  | [ l ] ->
      Alcotest.(check bool) "vertical" true (l.dimension = `Vertical);
      Alcotest.(check int) "trip count" 6 l.trip_count
  | _ -> Alcotest.fail "expected one loop"

let test_active_fraction () =
  let k = find_kernel stencil_prog "produce" in
  let info = Access.analyze k (env_of stencil_prog "produce") in
  (* margin-1 guard on 32x16: (30*14)/(32*16) = 0.82 *)
  Util.check_float ~eps:1e-3 "guard coverage" (30.0 *. 14.0 /. 512.0) info.active_fraction;
  let k2 = find_kernel stencil_prog "consume" in
  let info2 = Access.analyze k2 (env_of stencil_prog "consume") in
  Util.check_float "unguarded interior" 1.0 info2.active_fraction

let test_nest_depth () =
  let d = { Kft_apps.Gen.nx = 16; ny = 8; nz = 8 } in
  let b = Kft_apps.Gen.deep_nest d ~name:"deep" ~out:"O" ~band_in:"A" ~plane_ins:[ "P" ] () in
  let prog =
    { p_name = "t"; p_arrays = b.arrays; p_kernels = [ b.kernel ]; p_schedule = [ Launch b.launch ] }
  in
  let info = Access.analyze b.kernel (env_of prog "deep") in
  Alcotest.(check int) "depth 2" 2 info.max_nest_depth

let test_irregular_mutated_index () =
  let src =
    {|
__global__ void bad(const double *A, double *B, int nx, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int h = i;
  h = h * 7;
  if (i < nx) { B[h] = c * A[i]; }
}
|}
  in
  let k = Kft_cuda.Parse.kernel src in
  let prog =
    {
      p_name = "t";
      p_arrays = [ { a_name = "A"; a_elem_ty = Double; a_dims = [ 64 ] };
                   { a_name = "B"; a_elem_ty = Double; a_dims = [ 64 ] } ];
      p_kernels = [ k ];
      p_schedule =
        [ Launch { l_kernel = "bad"; l_domain = (8, 1, 1); l_block = (8, 1, 1);
                   l_args = [ Arg_array "A"; Arg_array "B"; Arg_int 8; Arg_double 1.0 ] } ];
    }
  in
  match Access.analyze_result k (env_of prog "bad") with
  | Error (Access.Mutated_index_variable "h") -> ()
  | Error r -> Alcotest.fail ("wrong reason: " ^ Access.reason_to_string r)
  | Ok _ -> Alcotest.fail "expected irregular"

let test_irregular_nonaffine () =
  let src =
    {|
__global__ void sq(const double *A, double *B, int nx, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < nx) { B[i * i] = c * A[i]; }
}
|}
  in
  let k = Kft_cuda.Parse.kernel src in
  let prog =
    {
      p_name = "t";
      p_arrays = [ { a_name = "A"; a_elem_ty = Double; a_dims = [ 64 ] };
                   { a_name = "B"; a_elem_ty = Double; a_dims = [ 64 ] } ];
      p_kernels = [ k ];
      p_schedule =
        [ Launch { l_kernel = "sq"; l_domain = (8, 1, 1); l_block = (8, 1, 1);
                   l_args = [ Arg_array "A"; Arg_array "B"; Arg_int 8; Arg_double 1.0 ] } ];
    }
  in
  match Access.analyze_result k (env_of prog "sq") with
  | Error (Access.Non_affine_index _) -> ()
  | Error r -> Alcotest.fail ("wrong reason: " ^ Access.reason_to_string r)
  | Ok _ -> Alcotest.fail "expected non-affine"

let test_specialize_inlines () =
  let k = find_kernel stencil_prog "produce" in
  let body = Access.specialize (env_of stencil_prog "produce") k in
  (* int decls are inlined away; no more references to nx/ny/nz params *)
  let has_int_decl =
    fold_stmts (fun acc s -> acc || match s with Decl (Int, _, _) -> true | _ -> false) false body
  in
  Alcotest.(check bool) "int decls gone" false has_int_decl;
  let refs_params =
    fold_exprs_in_stmts
      (fun acc e ->
        acc || fold_expr (fun a e -> a || e = Var "nx" || e = Var "ny" || e = Var "nz") false e)
      false body
  in
  Alcotest.(check bool) "dimension params folded" false refs_params

let test_affine_of_expr () =
  let env = env_of stencil_prog "produce" in
  (* blockIdx.x * blockDim.x + threadIdx.x is affine in gx with coeff 1
     after blockDim is inlined -- probe directly on thread/block builtins *)
  let e =
    Binop
      ( Add,
        Binop (Mul, Builtin (Block_idx X), Int_lit 16),
        Builtin (Thread_idx X) )
  in
  match Access.affine_of_expr env ~loops:[] e with
  | Some ([ ("gx", 1) ], 0) -> ()
  | Some _ -> Alcotest.fail "wrong coefficients"
  | None -> Alcotest.fail "expected affine"

let test_cost_counts () =
  let k = find_kernel stencil_prog "consume" in
  let c = Cost.of_kernel k (env_of stencil_prog "consume") in
  (* consume: per k-iteration, one add + one mul = 2 flops, 2 reads, 1 write; nz = 8 *)
  Util.check_float "flops" (2.0 *. 8.0) c.flops_per_thread;
  Util.check_float "reads" (2.0 *. 8.0) c.global_reads_per_thread;
  Util.check_float "writes" 8.0 c.global_writes_per_thread

let test_registers_bounded () =
  List.iter
    (fun k ->
      let r = Cost.estimate_registers k in
      Alcotest.(check bool) "regs in range" true (r >= 18 && r <= 128))
    stencil_prog.p_kernels

let test_dependent_chain () =
  let b = Kft_apps.Gen.latency_bound ~cells:64 ~name:"lat" ~out:"O" ~src:"I" ~hash_rounds:10 () in
  let prog =
    { p_name = "t"; p_arrays = b.arrays; p_kernels = [ b.kernel ]; p_schedule = [ Launch b.launch ] }
  in
  let c = Cost.of_kernel b.kernel (env_of prog "lat") in
  Alcotest.(check bool) "long chain" true (c.dependent_chain > 50);
  let k = find_kernel stencil_prog "consume" in
  let c2 = Cost.of_kernel k (env_of stencil_prog "consume") in
  Alcotest.(check bool) "short chain" true (c2.dependent_chain < 20)

let test_separable_groups () =
  (* B = f(A); D = g(C): two separable groups *)
  let src =
    Util.pointwise_src ~name:"two" ~a:"A" ~b:"A" ~dst:"B"
  in
  let k = Kft_cuda.Parse.kernel src in
  (* build a two-output kernel via the generator instead *)
  ignore k;
  let d = { Kft_apps.Gen.nx = 8; ny = 4; nz = 4 } in
  let b =
    Kft_apps.Gen.multi_output d ~name:"mo"
      ~groups:[ ("B", [ "A" ], [ (0, 0, 0) ]); ("D", [ "C" ], [ (0, 0, 0) ]) ]
      ()
  in
  let groups = Deps.separable_groups b.kernel in
  Alcotest.(check int) "two components" 2 (List.length groups);
  let flat = List.sort compare (List.concat groups) in
  Alcotest.(check (list string)) "covers arrays" [ "A"; "B"; "C"; "D" ] flat

let test_wide_kernel_edges () =
  (* a wide kernel: one output whose write reads from 60 input arrays.
     Pins the set-backed edge accumulator: exactly one (sorted) edge per
     distinct pair, no duplicates, single dependence component. *)
  let n = 60 in
  let inputs = List.init n (fun i -> Printf.sprintf "A%02d" i) in
  let rhs =
    List.fold_left
      (fun acc a -> Binop (Add, acc, Index (a, [ Var "i" ])))
      (Double_lit 0.0)
      inputs
  in
  let params =
    List.map (fun a -> Array_param { name = a; elem_ty = Double; quals = [ Const ] }) inputs
    @ [
        Array_param { name = "OUT"; elem_ty = Double; quals = [] };
        Scalar_param { name = "nx"; ty = Int };
      ]
  in
  let body =
    [
      Decl (Int, "i", Some (Binop (Add, Binop (Mul, Builtin (Block_idx X), Builtin (Block_dim X)), Builtin (Thread_idx X))));
      If (Binop (Lt, Var "i", Var "nx"), [ Assign (Lindex ("OUT", [ Var "i" ]), rhs) ], []);
    ]
  in
  let k = { k_name = "wide"; k_params = params; k_body = body } in
  let edges = Deps.array_dependence_edges k in
  Alcotest.(check int) "one edge per input" n (List.length edges);
  Alcotest.(check (list (pair string string)))
    "edges are sorted, deduped, canonical"
    (List.sort compare (List.map (fun a -> (a, "OUT")) inputs))
    edges;
  Alcotest.(check int) "single component" 1 (List.length (Deps.separable_groups k))

let test_not_separable_via_temp () =
  (* a scalar temp links the two outputs: t = f(A); B = t; D = t + C *)
  let src =
    {|
__global__ void linked(const double *A, const double *C, double *B, double *D, int nx, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < nx) {
    double t = c * A[i];
    B[i] = t;
    D[i] = t + C[i];
  }
}
|}
  in
  let k = Kft_cuda.Parse.kernel src in
  Alcotest.(check int) "single component" 1 (List.length (Deps.separable_groups k));
  Alcotest.(check bool) "not fissionable" false (Kft_fission.Fission.fissionable k)

let test_classify_roofline () =
  let d = Util.device in
  let mk flops bytes =
    Classify.classify_static ~device:d ~flops ~bytes ~domain_cells:1000 ~max_array_cells:1000
      ~active_fraction:1.0
  in
  Alcotest.(check bool) "memory bound" true (mk 100.0 1000.0 = Classify.Memory_bound);
  Alcotest.(check bool) "compute bound" true (mk 100000.0 1000.0 = Classify.Compute_bound)

let test_classify_boundary () =
  let d = Util.device in
  let k =
    Classify.classify_static ~device:d ~flops:10.0 ~bytes:1000.0 ~domain_cells:50
      ~max_array_cells:1000 ~active_fraction:1.0
  in
  Alcotest.(check bool) "boundary" true (k = Classify.Boundary)

let test_classify_latency () =
  let d = Util.device in
  (* low achieved bandwidth and low achieved flops *)
  let k =
    Classify.classify_measured ~device:d ~flops:100.0 ~bytes:1000.0 ~domain_cells:1000
      ~max_array_cells:1000 ~active_fraction:1.0 ~runtime_us:10.0
  in
  Alcotest.(check bool) "latency bound (measured)" true (k = Classify.Latency_bound);
  (* the static filter cannot see it *)
  let k' =
    Classify.classify_static ~device:d ~flops:100.0 ~bytes:1000.0 ~domain_cells:1000
      ~max_array_cells:1000 ~active_fraction:1.0
  in
  Alcotest.(check bool) "static says memory-bound" true (k' = Classify.Memory_bound)

(* property: decomposed offsets reconstruct the linear index *)
let prop_offset_reconstruction =
  QCheck.Test.make ~name:"canonical index recovers offsets" ~count:200
    QCheck.(triple (int_range (-2) 2) (int_range (-2) 2) (int_range (-2) 2))
    (fun (dx, dy, dz) ->
      let nx, ny, nz = (32, 16, 8) in
      ignore nz;
      let src =
        Printf.sprintf
          {|
__global__ void probe(const double *A, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= 2 && i < nx - 2 && j >= 2 && j < ny - 2) {
    for (int k = 2; k < nz - 2; k++) {
      B[(k * ny + j) * nx + i] = c * A[((k + %d) * ny + (j + %d)) * nx + i + %d];
    }
  }
}
|}
          dz dy dx
      in
      let k = Kft_cuda.Parse.kernel src in
      let prog =
        {
          p_name = "t";
          p_arrays = [ Util.arr3 (nx, ny, 8) "A"; Util.arr3 (nx, ny, 8) "B" ];
          p_kernels = [ k ];
          p_schedule =
            [ Launch { l_kernel = "probe"; l_domain = (nx, ny, 1); l_block = (16, 8, 1);
                       l_args = Util.std_args (nx, ny, 8) [ "A"; "B" ] 1.0 } ];
        }
      in
      let info = Access.analyze k (env_of prog "probe") in
      Access.read_offsets info "A" = [ (dx, dy, dz) ])

let suite =
  [
    Alcotest.test_case "stencil offsets recovered" `Quick test_offsets_recovered;
    Alcotest.test_case "vertical loop detected" `Quick test_vertical_loop;
    Alcotest.test_case "active fraction" `Quick test_active_fraction;
    Alcotest.test_case "nest depth" `Quick test_nest_depth;
    Alcotest.test_case "mutated index rejected" `Quick test_irregular_mutated_index;
    Alcotest.test_case "non-affine rejected" `Quick test_irregular_nonaffine;
    Alcotest.test_case "specialization inlines ints" `Quick test_specialize_inlines;
    Alcotest.test_case "affine_of_expr" `Quick test_affine_of_expr;
    Alcotest.test_case "cost counting" `Quick test_cost_counts;
    Alcotest.test_case "register estimate bounded" `Quick test_registers_bounded;
    Alcotest.test_case "dependent chain" `Quick test_dependent_chain;
    Alcotest.test_case "separable groups" `Quick test_separable_groups;
    Alcotest.test_case "temp links groups" `Quick test_not_separable_via_temp;
    Alcotest.test_case "wide kernel: deduped dependence edges" `Quick test_wide_kernel_edges;
    Alcotest.test_case "roofline classification" `Quick test_classify_roofline;
    Alcotest.test_case "boundary classification" `Quick test_classify_boundary;
    Alcotest.test_case "latency classification" `Quick test_classify_latency;
    QCheck_alcotest.to_alcotest prop_offset_reconstruction;
  ]
