(* kft_absint: abstract-interpretation bounds proofs, footprint
   soundness against the reference interpreter, guard elimination with
   translation validation, and the lint surface. *)

open Kft_cuda.Ast
module A = Kft_absint.Absint

let launches p = List.filter_map (function Launch l -> Some l | _ -> None) p.p_schedule

let analyze_all p =
  List.map
    (fun l ->
      match A.analyze_launch p l with
      | Some r -> r
      | None -> Alcotest.failf "analyze_launch failed for %s" l.l_kernel)
    (launches p)

(* ------------------------------------------------------------------ *)
(* zero-fallback bounds proofs on quickstart + the six applications    *)
(* ------------------------------------------------------------------ *)

let test_quickstart_all_proved () =
  let p = Util.quickstart_program () in
  List.iter
    (fun (r : A.result) ->
      Alcotest.(check bool) (r.res_kernel ^ " all proved") true r.res_all_proved;
      Alcotest.(check bool) (r.res_kernel ^ " has accesses") true (r.res_proved > 0))
    (analyze_all p)

let test_apps_all_proved () =
  List.iter
    (fun (a : Kft_apps.Apps.app) ->
      List.iter
        (fun (r : A.result) ->
          Alcotest.(check bool)
            (a.app_name ^ "/" ^ r.res_kernel ^ " all proved")
            true r.res_all_proved)
        (analyze_all a.program))
    (Kft_apps.Apps.all ())

(* the analyzer is not blindly optimistic: a genuine halo out-of-bounds
   read is not proved (interval straddles the extent) *)
let test_oob_not_proved () =
  let src =
    {|
__global__ void oob(const double *A, double *B, int nx, int ny) {
  int gi = blockIdx.x * blockDim.x + threadIdx.x;
  int gj = blockIdx.y * blockDim.y + threadIdx.y;
  if (gi < nx && gj < ny) {
    B[gj * nx + gi] = A[gj * nx + gi - 1];
  }
}
|}
  in
  let k = List.hd (Kft_cuda.Parse.kernels src) in
  let r =
    A.analyze_kernel ~block:(16, 4, 1) ~grid:(2, 2, 1)
      ~int_params:[ ("nx", 32); ("ny", 8) ]
      ~global_cells:[ ("A", 256); ("B", 256) ]
      k
  in
  Alcotest.(check bool) "not all proved" false r.res_all_proved;
  let bad =
    List.find (fun (a : A.access) -> a.acc_status <> A.Proved) r.res_accesses
  in
  Alcotest.(check string) "offender is A" "A" bad.acc_array;
  Alcotest.(check int) "range reaches -1" (-1) bad.acc_range.lo

(* footprints: quickstart diffuse reads U over the halo box, writes V
   interior only *)
let test_quickstart_footprints () =
  let p = Util.quickstart_program () in
  let r = List.hd (analyze_all p) in
  Alcotest.(check string) "first launch is diffuse" "diffuse" r.res_kernel;
  let fp name = List.assoc name r.res_footprints in
  let u = fp "U" and v = fp "V" in
  (match u.A.fp_reads with
  | Some i ->
      (* k in [0,nz-1] via the +-1 halo, j,i interior +-1: full box *)
      Alcotest.(check bool) "U read range inside array" true (i.A.lo >= 0 && i.A.hi < 64 * 16 * 12)
  | None -> Alcotest.fail "U has no read footprint");
  (match v.A.fp_writes with
  | Some i ->
      Alcotest.(check bool) "V writes are interior" true (i.A.lo > 0 && i.A.hi < 64 * 16 * 12 - 1)
  | None -> Alcotest.fail "V has no write footprint");
  Alcotest.(check bool) "U is never written" true (u.A.fp_writes = None)

let suite =
  [
    Alcotest.test_case "quickstart: every access proved in bounds" `Quick
      test_quickstart_all_proved;
    Alcotest.test_case "six apps: every access proved in bounds" `Quick test_apps_all_proved;
    Alcotest.test_case "halo out-of-bounds is not proved" `Quick test_oob_not_proved;
    Alcotest.test_case "quickstart footprints (halo box, interior writes)" `Quick
      test_quickstart_footprints;
  ]

(* ------------------------------------------------------------------ *)
(* guard elimination in fused kernels                                  *)
(* ------------------------------------------------------------------ *)

let count_ifs k =
  fold_stmts (fun n s -> match s with If _ -> n + 1 | _ -> n) 0 k.k_body

let test_fused_guard_elimination () =
  let module Cg = Kft_codegen.Codegen in
  let module Fu = Kft_codegen.Fusion in
  let p = Util.quickstart_program () in
  let groups = [ launches p ] in
  let on = Cg.transform ~options:Fu.auto_options Util.device p ~groups in
  let off =
    Cg.transform
      ~options:{ Fu.auto_options with eliminate_guards = false }
      Util.device p ~groups
  in
  let rep =
    List.find (fun (r : Cg.kernel_report) -> r.fusion_kind <> `None) on.reports
  in
  Alcotest.(check bool) "report notes the elimination" true
    (List.exists
       (fun n -> String.length n >= 10 && String.sub n 0 10 = "eliminated")
       rep.notes);
  let fused_of (res : Cg.result) =
    List.find (fun k -> k.k_name = rep.new_kernel) res.program.p_kernels
  in
  Alcotest.(check bool) "the spliced kernel has fewer guards" true
    (count_ifs (fused_of on) < count_ifs (fused_of off));
  (* translation validation: the spliced program still validates against
     the source, and is bit-identical to the unspliced build *)
  let v = Kft_verify.Verify.validate ~source:p on in
  Alcotest.(check bool) "kft_verify validates the spliced build" true
    (Kft_verify.Verify.is_clean v && v.complete);
  match
    Kft_sim.Profiler.verify ~tol:0.0 Util.device ~original:off.program
      ~transformed:on.program
  with
  | Ok () -> ()
  | Error diffs ->
      Alcotest.failf "guard elimination changed results on %s"
        (String.concat "," (List.map fst diffs))

let suite =
  suite
  @ [
      Alcotest.test_case "fused quickstart: provably-true guard eliminated and validated"
        `Quick test_fused_guard_elimination;
    ]

(* ------------------------------------------------------------------ *)
(* soundness: every dynamic global access of the reference interpreter *)
(* falls inside the static footprint                                   *)
(* ------------------------------------------------------------------ *)

let prop_footprint_sound =
  QCheck.Test.make ~name:"footprints contain every dynamic global access" ~count:20
    (QCheck.make
       ~print:(fun s -> Kft_cuda.Pp.program (Test_endtoend.program_of_spec s))
       Test_endtoend.spec_gen)
    (fun spec ->
      let prog = Test_endtoend.program_of_spec spec in
      match Kft_cuda.Check.program prog with
      | _ :: _ -> QCheck.assume_fail ()
      | [] -> (
          let mem = Kft_sim.Memory.create prog.p_arrays in
          Kft_sim.Memory.init_seeded mem ~seed:7;
          let violations = ref [] in
          List.iter
            (fun l ->
              let r =
                match A.analyze_launch prog l with
                | Some r -> r
                | None -> QCheck.Test.fail_reportf "analyze_launch failed for %s" l.l_kernel
              in
              Kft_sim.Interp.access_trace :=
                Some
                  (fun ~write arr i ->
                    let ok =
                      match List.assoc_opt arr r.A.res_footprints with
                      | None -> false
                      | Some fp -> (
                          match (if write then fp.A.fp_writes else fp.A.fp_reads) with
                          | None -> false
                          | Some itv -> itv.A.lo <= i && i <= itv.A.hi)
                    in
                    if not ok then
                      violations :=
                        Printf.sprintf "%s: %s %s[%d] outside footprint" l.l_kernel
                          (if write then "write" else "read")
                          arr i
                        :: !violations);
              Fun.protect
                ~finally:(fun () -> Kft_sim.Interp.access_trace := None)
                (fun () -> ignore (Kft_sim.Interp.launch ~affine:false mem prog l)))
            (launches prog);
          match !violations with
          | [] -> true
          | v ->
              QCheck.Test.fail_reportf "unsound footprints:\n%s\nprogram:\n%s"
                (String.concat "\n" (List.sort_uniq compare v))
                (Kft_cuda.Pp.program prog)))

(* ------------------------------------------------------------------ *)
(* deterministic diagnostic ordering in kft_verify                     *)
(* ------------------------------------------------------------------ *)

module V = Kft_verify.Verify

(* a program whose halo read trips the sampled bounds walker *)
let oob_program name =
  let src =
    Printf.sprintf
      {|
__global__ void %s(const double *A, double *B, int nx, int ny) {
  int gi = blockIdx.x * blockDim.x + threadIdx.x;
  int gj = blockIdx.y * blockDim.y + threadIdx.y;
  if (gi < nx && gj < ny) {
    B[gj * nx + gi] = A[gj * nx + gi - 1];
  }
}
|}
      name
  in
  let nx, ny = (32, 8) in
  {
    p_name = name;
    p_arrays =
      List.map (fun a -> { a_name = a; a_elem_ty = Double; a_dims = [ nx; ny ] }) [ "A"; "B" ];
    p_kernels = Kft_cuda.Parse.kernels src;
    p_schedule =
      [
        Launch
          {
            l_kernel = name;
            l_domain = (nx, ny, 1);
            l_block = (16, 4, 1);
            l_args = [ Arg_array "A"; Arg_array "B"; Arg_int nx; Arg_int ny ];
          };
      ];
  }

let test_diagnostic_ordering () =
  let r1 = V.verify_program (oob_program "zeta") in
  let r2 = V.verify_program (oob_program "alpha") in
  Alcotest.(check bool) "both find defects" true
    (r1.V.diagnostics <> [] && r2.V.diagnostics <> []);
  let d12 = (V.merge r1 r2).V.diagnostics in
  let d21 = (V.merge r2 r1).V.diagnostics in
  Alcotest.(check bool) "merge order does not change the report" true (d12 = d21);
  let keys =
    List.map
      (fun (d : V.diagnostic) ->
        (d.d_kernel, d.d_loc.Kft_cuda.Loc.line, d.d_loc.Kft_cuda.Loc.col))
      d12
  in
  Alcotest.(check bool) "diagnostics sorted by (kernel, line, col)" true
    (keys = List.sort compare keys);
  Alcotest.(check bool) "merge deduplicates self-merge" true
    ((V.merge r1 r1).V.diagnostics = r1.V.diagnostics)

(* ------------------------------------------------------------------ *)
(* lint surface                                                        *)
(* ------------------------------------------------------------------ *)

module L = Kft_absint.Lint

let lint_programs () =
  List.map
    (fun (a : Kft_apps.Apps.app) -> a.program)
    (Kft_apps.Apps.quickstart () :: Kft_apps.Apps.all ())

let test_lint_jobs_stable () =
  let ps = lint_programs () in
  let j1 = L.render_json (L.programs ~jobs:1 ps) in
  let j4 = L.render_json (L.programs ~jobs:4 ps) in
  Alcotest.(check string) "JSON byte-stable across --jobs" j1 j4

let test_lint_golden_quickstart () =
  let p = (Kft_apps.Apps.quickstart ()).program in
  let fs = L.program p in
  Alcotest.(check (list string))
    "golden quickstart findings"
    [
      "quickstart:diffuse:5:3: info [divergent-guard] thread-dependent guard (i >= 1 \
       && i < nx - 1 && j >= 1 && j < ny - 1) forces warp divergence: modeled \
       serialization factor 1.30";
      "quickstart:relax:28:3: info [dead-guard] guard (i < nx && j < ny) is \
       statically true: branch can be spliced away";
      "quickstart:smooth:17:3: info [divergent-guard] thread-dependent guard (i >= 2 \
       && i < nx - 2 && j >= 2 && j < ny - 2) forces warp divergence: modeled \
       serialization factor 1.59";
    ]
    (List.map L.render fs)

let test_lint_golden_awp () =
  let a =
    List.find
      (fun (a : Kft_apps.Apps.app) -> a.app_name = "AWP-ODC-GPU")
      (Kft_apps.Apps.all ())
  in
  let fs = L.program a.program in
  let count rule = List.length (List.filter (fun (f : L.finding) -> f.f_rule = rule) fs) in
  Alcotest.(check int) "no warnings" 0 (L.warnings fs);
  Alcotest.(check int) "twelve findings" 12 (List.length fs);
  Alcotest.(check int) "eight dead guards" 8 (count "dead-guard");
  Alcotest.(check int) "four divergent guards" 4 (count "divergent-guard")

let test_footprint_drift () =
  let p = (Kft_apps.Apps.quickstart ()).program in
  let r = List.hd (analyze_all p) in
  Alcotest.(check string) "first launch is diffuse" "diffuse" r.res_kernel;
  Alcotest.(check bool) "diffuse estimate is exact" true r.res_est_exact;
  let est = r.res_est_bytes in
  Alcotest.(check bool) "estimate is positive" true (est > 0.0);
  let drifted = L.program ~measured:[ ("diffuse", est *. 2.0) ] p in
  Alcotest.(check bool) "2x disagreement fires footprint-drift" true
    (List.exists
       (fun (f : L.finding) -> f.f_rule = "footprint-drift" && f.f_severity = L.Warn)
       drifted);
  let agreeing = L.program ~measured:[ ("diffuse", est) ] p in
  Alcotest.(check bool) "agreement is silent" true
    (not (List.exists (fun (f : L.finding) -> f.f_rule = "footprint-drift") agreeing))

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_footprint_sound;
      Alcotest.test_case "kft_verify: merged diagnostics are deterministically ordered"
        `Quick test_diagnostic_ordering;
      Alcotest.test_case "lint: JSON byte-stable across jobs" `Quick test_lint_jobs_stable;
      Alcotest.test_case "lint: golden quickstart report" `Quick test_lint_golden_quickstart;
      Alcotest.test_case "lint: golden AWP-ODC-GPU rule counts" `Quick test_lint_golden_awp;
      Alcotest.test_case "lint: footprint-drift cross-check" `Quick test_footprint_drift;
    ]
