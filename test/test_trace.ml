(* kft_trace: span tree semantics, the canonical/side channel split of
   the exporters, the strict JSON checker, and the golden determinism
   property: the machine-JSON trace of a full quickstart transformation
   is byte-identical across --jobs 1 / --jobs 4 and repeated runs. *)

module Trace = Kft_trace.Trace
module Jc = Kft_trace.Json_check
module F = Kft_framework.Framework
module Engine = Kft_engine.Engine

let contains = Util.contains

(* deterministic fake clock: advances 1 ms per reading *)
let ticking_clock () =
  let n = ref 0 in
  fun () ->
    incr n;
    float_of_int !n *. 0.001

let sample_trace () =
  let t = Trace.create ~clock:(ticking_clock ()) "root" in
  let tr = Some t in
  Trace.with_span tr "alpha" (fun () ->
      Trace.add tr "items" 2;
      Trace.add tr "items" 3;
      Trace.set tr "mode" (Trace.Str "fast");
      Trace.with_span tr "inner" (fun () -> Trace.add tr "hits" 1));
  Trace.with_span tr "beta" (fun () ->
      Trace.note tr "jobs" (Trace.Int 4);
      Trace.add tr "items" 5);
  t

let test_span_tree () =
  let t = sample_trace () in
  Alcotest.(check (list string))
    "top-level spans in open order" [ "alpha"; "beta" ]
    (List.map fst (Trace.top_spans t));
  Alcotest.(check (list (pair string int)))
    "bumps merge per key" [ ("items", 5) ]
    (Trace.counters t "alpha");
  Alcotest.(check (list (pair string int)))
    "nested span counters" [ ("hits", 1) ] (Trace.counters t "inner");
  (* [counters] sums over every span with the queried name *)
  let t2 = Trace.create ~clock:(ticking_clock ()) "root" in
  Trace.with_span (Some t2) "dup" (fun () -> Trace.add (Some t2) "n" 2);
  Trace.with_span (Some t2) "dup" (fun () -> Trace.add (Some t2) "n" 3);
  Alcotest.(check (list (pair string int)))
    "summed across same-named spans" [ ("n", 5) ] (Trace.counters t2 "dup")

let test_disabled_recording () =
  (* with [None] every recording call is a no-op and with_span just
     runs the thunk *)
  Alcotest.(check int) "with_span None passes through" 3
    (Trace.with_span None "x" (fun () -> 3));
  Trace.add None "k" 1;
  Trace.set None "k" (Trace.Int 1);
  Trace.note None "k" (Trace.Bool true)

let test_unbalanced_close () =
  (* a span body that raises still closes its span *)
  let t = Trace.create ~clock:(ticking_clock ()) "root" in
  (try Trace.with_span (Some t) "boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.with_span (Some t) "after" (fun () -> ());
  Alcotest.(check (list string))
    "both spans recorded at top level" [ "boom"; "after" ]
    (List.map fst (Trace.top_spans t))

let test_render_tree () =
  let s = Trace.render_tree (sample_trace ()) in
  Alcotest.(check bool) "root line" true
    (String.length s > 4 && String.sub s 0 4 = "root");
  let has sub = contains s sub in
  Alcotest.(check bool) "alpha branch" true (has "|- alpha");
  Alcotest.(check bool) "inner is last child of alpha" true (has "`- inner");
  Alcotest.(check bool) "beta is last top-level child" true (has "`- beta");
  Alcotest.(check bool) "counters rendered as k=v" true (has "items=5");
  Alcotest.(check bool) "notes rendered as k~v" true (has "jobs~4")

let test_json_channels () =
  let t = sample_trace () in
  let json = Trace.render_json t in
  (match Jc.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "render_json invalid: %s" e);
  let has sub = contains json sub in
  Alcotest.(check bool) "counters in canonical channel" true (has "\"items\":5");
  Alcotest.(check bool) "args in canonical channel" true (has "\"mode\":\"fast\"");
  Alcotest.(check bool) "sequence numbers present" true (has "\"seq\":2");
  Alcotest.(check bool) "notes excluded (side channel)" false (has "jobs");
  Alcotest.(check bool) "wall clock excluded" false (has "\"ts\"");
  (* the canonical channel is a pure function of the recording calls:
     re-recording the same structure yields the same bytes even though
     the wall clock readings differ *)
  Alcotest.(check string) "byte-stable across re-recordings" json
    (Trace.render_json (sample_trace ()))

let test_chrome_export () =
  let t = sample_trace () in
  let chrome = Trace.render_chrome t in
  (match Jc.check chrome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "render_chrome invalid: %s" e);
  let has sub = contains chrome sub in
  Alcotest.(check bool) "complete events" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "microsecond timestamps" true (has "\"ts\":");
  Alcotest.(check bool) "notes included in chrome args" true (has "\"jobs\":4");
  Alcotest.(check bool) "displayTimeUnit header" true (has "\"displayTimeUnit\":\"ms\"")

let test_float_args () =
  let t = Trace.create ~clock:(ticking_clock ()) "root" in
  Trace.with_span (Some t) "s" (fun () ->
      Trace.set (Some t) "f" (Trace.Float 0.1));
  let json = Trace.render_json t in
  let has sub = contains json sub in
  (* %.17g round-trips the double exactly and is quoted so the JSON
     stays parser-proof *)
  Alcotest.(check bool) "17 significant digits, quoted" true
    (has "\"f\":\"0.10000000000000001\"")

(* ------------------------------------------------------------------ *)
(* Json_check                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_check () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "valid: %s" s) true (Jc.is_valid s))
    [
      "{}";
      "[]";
      "null";
      "true";
      "-0.5e+10";
      "{\"a\":[1,2.5,{\"b\":null}],\"c\":\"x\\ny\\u00e9\"}";
      " [ 1 , 2 ] ";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "invalid: %s" s) false (Jc.is_valid s))
    [
      "";
      "{";
      "[1,]";
      "{\"a\":01}";
      "{\"a\" 1}";
      "{'a':1}";
      "[1] trailing";
      "\"\\x\"";
      "nul";
      "+1";
      "01.5";
    ]

(* ------------------------------------------------------------------ *)
(* Golden: quickstart pipeline trace                                   *)
(* ------------------------------------------------------------------ *)

let traced_quickstart ~jobs =
  let trace = Trace.create "kft-transform" in
  let config =
    {
      F.default_config with
      (* a fresh profile cache per run: the hit/miss counters in the
         trace must depend only on the program, not on what else ran in
         this test binary *)
      sim_cache = Some (Kft_metadata.Metadata.Sim_cache.create ());
      gga_params = { Kft_gga.Gga.default_params with generations = 5; population = 10 };
    }
  in
  let report =
    Engine.with_engine ~jobs ~memo:true (fun engine ->
        F.transform ~config ~engine ~trace (Kft_apps.Apps.quickstart ()).program)
  in
  (trace, report)

let stage_names =
  [
    "gather"; "ddg"; "schedflow"; "filter"; "fission"; "search"; "codegen"; "verify";
    "profile-transformed"; "output-verify"; "lint";
  ]

let test_golden_stage_tree () =
  let trace, report = traced_quickstart ~jobs:1 in
  Alcotest.(check (list string))
    "pinned stage span tree" stage_names
    (List.map fst (Trace.top_spans trace));
  Alcotest.(check (list (pair string int)))
    "pinned gather counters" [ ("kernels", 3) ] (Trace.counters trace "gather");
  Alcotest.(check (list (pair string int)))
    "pinned ddg counters"
    [ ("ddg_nodes", 7); ("ddg_edges", 7); ("oeg_nodes", 3); ("oeg_edges", 2) ]
    (Trace.counters trace "ddg");
  Alcotest.(check (list (pair string int)))
    "pinned schedflow counters"
    [
      ("ops", 3); ("launches", 3); ("deps", 2); ("deps_refined", 0);
      ("regions_proved", 7); ("regions_fallback", 0); ("issues", 0);
    ]
    (Trace.counters trace "schedflow");
  Alcotest.(check (list (pair string int)))
    "pinned filter counters" [ ("invocations", 3); ("targets", 3) ]
    (Trace.counters trace "filter");
  Alcotest.(check (list (pair string int)))
    "pinned diffuse launch counters"
    [ ("blocks", 8); ("threads", 1024); ("read_bytes", 486080); ("write_bytes", 69440) ]
    (Trace.counters trace "launch:diffuse");
  (* root-span counters: profile-cache attribution plus the memory-pool
     activity of the whole transform. Requests/cells are a pure function
     of the simulation call sequence, so exact values are a golden
     surface (pool hits/misses are warmth-dependent and live in the
     note side channel, excluded from canonical output). *)
  Alcotest.(check (list (pair string int)))
    "pinned root counters"
    [ ("sim_cache_hits", 2); ("sim_cache_misses", 2); ("pool_requests", 4); ("pool_cells", 196608) ]
    (Trace.counters trace "kft-transform");
  (* the stage report renders the tree when the report carries a trace *)
  Alcotest.(check bool) "report echoes the trace" true
    (match report.F.trace with Some t -> t == trace | None -> false);
  let sr = F.stage_report report in
  Alcotest.(check bool) "stage report has a trace section" true
    (contains sr "== trace ==")

let test_golden_byte_stability () =
  let j1, _ = traced_quickstart ~jobs:1 in
  let j1', _ = traced_quickstart ~jobs:1 in
  let j4, _ = traced_quickstart ~jobs:4 in
  let a = Trace.render_json j1 in
  (match Jc.check a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pipeline trace invalid JSON: %s" e);
  Alcotest.(check string) "byte-identical across two runs" a (Trace.render_json j1');
  Alcotest.(check string) "byte-identical across --jobs 1/4" a (Trace.render_json j4);
  (match Jc.check (Trace.render_chrome j4) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace invalid JSON: %s" e)

let suite =
  [
    Alcotest.test_case "span tree and counters" `Quick test_span_tree;
    Alcotest.test_case "disabled tracing is a no-op" `Quick test_disabled_recording;
    Alcotest.test_case "raising span body still closes" `Quick test_unbalanced_close;
    Alcotest.test_case "human tree rendering" `Quick test_render_tree;
    Alcotest.test_case "JSON canonical channel" `Quick test_json_channels;
    Alcotest.test_case "chrome trace_event export" `Quick test_chrome_export;
    Alcotest.test_case "float args are exact" `Quick test_float_args;
    Alcotest.test_case "strict JSON checker" `Quick test_json_check;
  ]

let golden_suite =
  [
    Alcotest.test_case "quickstart stage tree and counters" `Quick test_golden_stage_tree;
    Alcotest.test_case "quickstart trace byte-stability" `Slow test_golden_byte_stability;
  ]
