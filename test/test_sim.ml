(* GPU simulator: memory, interpreter semantics, statistics, timing. *)

open Kft_cuda.Ast
module Mem = Kft_sim.Memory
module I = Kft_sim.Interp
module T = Kft_sim.Timing

let dims = (16, 8, 4)
let cells = 16 * 8 * 4

let one_kernel_prog src name args_arrays coef =
  let k = Kft_cuda.Parse.kernel src in
  {
    p_name = "t";
    p_arrays = List.map (Util.arr3 dims) [ "A"; "B"; "C" ];
    p_kernels = [ k ];
    p_schedule =
      [
        Launch
          { l_kernel = name; l_domain = (16, 8, 1); l_block = (8, 4, 1);
            l_args = Util.std_args dims args_arrays coef };
      ];
  }

let test_memory_basics () =
  let mem = Mem.create [ Util.arr3 dims "A"; Util.arr3 dims "B" ] in
  Alcotest.(check (list string)) "names" [ "A"; "B" ] (Mem.names mem);
  Alcotest.(check int) "length" cells (Bigarray.Array1.dim (Mem.get mem "A"));
  Alcotest.(check bool) "dims" true (Mem.dims mem "A" = [ 16; 8; 4 ]);
  Util.check_float "zero init" 0.0 (Mem.get mem "A").{0}

let test_memory_seeded_deterministic () =
  let mem1 = Mem.create [ Util.arr3 dims "A" ] and mem2 = Mem.create [ Util.arr3 dims "A" ] in
  Mem.init_seeded mem1 ~seed:7;
  Mem.init_seeded mem2 ~seed:7;
  Alcotest.(check bool) "same fill" true (Mem.equal_within ~tol:0.0 mem1 mem2);
  Mem.init_seeded mem2 ~seed:8;
  Alcotest.(check bool) "different seed differs" false (Mem.equal_within ~tol:0.0 mem1 mem2);
  Alcotest.(check bool) "no zeros" true (Array.for_all (fun v -> v <> 0.0) (Mem.get_array mem1 "A"))

let test_memory_diff () =
  let mem1 = Mem.create [ Util.arr3 dims "A" ] and mem2 = Mem.create [ Util.arr3 dims "A" ] in
  (Mem.get mem2 "A").{5} <- 3.5;
  (match Mem.max_abs_diff mem1 mem2 with
  | [ ("A", d) ] -> Util.check_float "max diff" 3.5 d
  | _ -> Alcotest.fail "diff shape");
  Alcotest.(check bool) "not equal" false (Mem.equal_within ~tol:1.0 mem1 mem2);
  Alcotest.(check bool) "equal within 4" true (Mem.equal_within ~tol:4.0 mem1 mem2)

let test_pointwise_execution () =
  let prog = one_kernel_prog (Util.pointwise_src ~name:"pw" ~a:"A" ~b:"B" ~dst:"C") "pw"
      [ "A"; "B"; "C" ] 0.5 in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:1;
  let a = Mem.get_array mem "A" and b = Mem.get_array mem "B" in
  let stats = I.launch mem prog (Util.launch_of prog "pw") in
  let c = Mem.get_array mem "C" in
  Array.iteri (fun i av -> Util.check_float "c = 0.5(a+b)" (0.5 *. (av +. b.(i))) c.(i)) a;
  Alcotest.(check int) "write bytes" (cells * 8) stats.global_write_bytes;
  Alcotest.(check int) "read bytes" (cells * 2 * 8) stats.global_read_bytes;
  Util.check_float "flops (2 per cell)" (float_of_int (2 * cells)) stats.flops

let test_stencil_execution () =
  (* 5-point horizontal stencil checked against a reference loop *)
  let prog =
    one_kernel_prog
      (Util.stencil_src ~name:"st" ~src:"A" ~dst:"B" ~margin:1 ~threed:false)
      "st" [ "A"; "B" ] 0.25
  in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:2;
  let a = Mem.get_array mem "A" in
  let b0 = Mem.get_array mem "B" in
  ignore (I.launch mem prog (Util.launch_of prog "st"));
  let b = Mem.get_array mem "B" in
  let nx, ny, _ = dims in
  let idx i j k = ((k * ny) + j) * nx + i in
  for k = 0 to 3 do
    for j = 1 to ny - 2 do
      for i = 1 to nx - 2 do
        let expect =
          0.25 *. (a.(idx (i + 1) j k) +. a.(idx (i - 1) j k) +. a.(idx i (j + 1) k) +. a.(idx i (j - 1) k))
        in
        Util.check_float "stencil cell" expect b.(idx i j k)
      done
    done
  done;
  (* guarded boundary cells keep their previous contents *)
  Util.check_float "boundary untouched" b0.(idx 0 0 0) b.(idx 0 0 0)

let test_guard_divergence_counted () =
  let prog =
    one_kernel_prog
      (Util.stencil_src ~name:"st" ~src:"A" ~dst:"B" ~margin:1 ~threed:false)
      "st" [ "A"; "B" ] 0.25
  in
  let mem = Mem.create prog.p_arrays in
  let stats = I.launch mem prog (Util.launch_of prog "st") in
  Alcotest.(check bool) "cond evals counted" true (stats.warp_cond_evals > 0);
  Alcotest.(check bool) "divergence observed" true (stats.divergent_warp_cond_evals > 0)

let test_out_of_bounds () =
  let src =
    {|
__global__ void oob(const double *A, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    for (int k = 0; k < nz; k++) {
      B[(k * ny + j) * nx + i] = A[(k * ny + j) * nx + i + 1];
    }
  }
}
|}
  in
  let prog = one_kernel_prog src "oob" [ "A"; "B" ] 1.0 in
  let mem = Mem.create prog.p_arrays in
  match I.launch mem prog (Util.launch_of prog "oob") with
  | (_ : I.stats) -> Alcotest.fail "expected out-of-bounds error"
  | exception I.Sim_error { kernel = "oob"; _ } -> ()

let test_syncthreads_staging () =
  (* shared-memory staging with a barrier: same result as direct reads *)
  let src =
    {|
__global__ void stage(const double *A, double *B, int nx, int ny, int nz, double c) {
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int i = blockIdx.x * blockDim.x + tx;
  int j = blockIdx.y * blockDim.y + ty;
  __shared__ double s[4][8];
  for (int k = 0; k < nz; k++) {
    if (i < nx && j < ny) {
      s[ty][tx] = A[(k * ny + j) * nx + i];
    }
    __syncthreads();
    if (i < nx && j < ny) {
      B[(k * ny + j) * nx + i] = c * s[ty][tx];
    }
    __syncthreads();
  }
}
|}
  in
  let prog = one_kernel_prog src "stage" [ "A"; "B" ] 2.0 in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:3;
  let a = Mem.get_array mem "A" in
  let stats = I.launch mem prog (Util.launch_of prog "stage") in
  let b = Mem.get_array mem "B" in
  Array.iteri (fun i av -> Util.check_float "staged copy" (2.0 *. av) b.(i)) a;
  Alcotest.(check int) "shared bytes" (4 * 8 * 8) stats.shared_bytes_per_block;
  Alcotest.(check int) "no hazards with barrier" 0 stats.shared_hazards

let test_hazard_detection () =
  (* neighbour read of shared without a barrier: hazard flagged *)
  let src =
    {|
__global__ void racy(const double *A, double *B, int nx, int ny, int nz, double c) {
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int i = blockIdx.x * blockDim.x + tx;
  int j = blockIdx.y * blockDim.y + ty;
  __shared__ double s[4][8];
  for (int k = 0; k < nz; k++) {
    if (i < nx && j < ny) {
      s[ty][tx] = A[(k * ny + j) * nx + i];
    }
    if (i < nx && j < ny && tx > 0) {
      B[(k * ny + j) * nx + i] = c * s[ty][tx - 1];
    }
    __syncthreads();
  }
}
|}
  in
  let prog = one_kernel_prog src "racy" [ "A"; "B" ] 1.0 in
  let mem = Mem.create prog.p_arrays in
  let stats = I.launch mem prog (Util.launch_of prog "racy") in
  Alcotest.(check bool) "hazards detected" true (stats.shared_hazards > 0)

let test_barrier_divergence_rejected () =
  let src =
    {|
__global__ void baddiv(const double *A, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < 3) {
    __syncthreads();
  }
  B[0] = c * A[0];
}
|}
  in
  let prog = one_kernel_prog src "baddiv" [ "A"; "B" ] 1.0 in
  let mem = Mem.create prog.p_arrays in
  match I.launch mem prog (Util.launch_of prog "baddiv") with
  | (_ : I.stats) -> Alcotest.fail "expected barrier divergence error"
  | exception I.Sim_error _ -> ()

let test_return_guard () =
  let src =
    {|
__global__ void early(const double *A, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i >= nx) {
    return;
  }
  B[j * nx + i] = c * A[j * nx + i];
}
|}
  in
  let prog = one_kernel_prog src "early" [ "A"; "B" ] 3.0 in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:4;
  let a = Mem.get_array mem "A" in
  ignore (I.launch mem prog (Util.launch_of prog "early"));
  Util.check_float "plane written" (3.0 *. a.(0)) (Mem.get mem "B").{0}

let test_schedule_runs_in_order () =
  let prog = Util.producer_consumer_program ~dims:(16, 8, 4) ~block:(8, 4, 1) () in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:5;
  let results = I.run_schedule mem prog in
  Alcotest.(check int) "two launches" 2 (List.length results);
  (* consume must see produce's B values: C = 0.5 * (B_new + A) *)
  let b = Mem.get_array mem "B" and a = Mem.get_array mem "A" and c = Mem.get_array mem "C" in
  Array.iteri (fun i bv -> Util.check_float "RAW respected" (0.5 *. (bv +. a.(i))) c.(i)) b

let mk_stats ?(read = 0) ?(write = 0) ?(flops = 0.0) ?(div = 0) ?(evals = 0) ?(blocks = 8)
    ?(threads = 256) () =
  {
    I.global_read_bytes = read;
    global_write_bytes = write;
    flops;
    warp_cond_evals = evals;
    divergent_warp_cond_evals = div;
    shared_hazards = 0;
    threads_launched = threads;
    threads_active = threads;
    shared_bytes_per_block = 0;
    blocks_launched = blocks;
  }

let evaluate stats =
  T.evaluate
    { device = Util.device; stats; block = (16, 8, 1); regs_per_thread = 32; dependent_chain = 5 }

let test_timing_memory_bound () =
  let b = evaluate (mk_stats ~read:1_000_000 ~write:1_000_000 ~flops:1000.0 ()) in
  Alcotest.(check bool) "memory dominates" true (b.memory_time_us > b.compute_time_us);
  Alcotest.(check bool) "runtime includes overhead" true
    (b.runtime_us >= Util.device.kernel_launch_overhead_us)

let test_timing_more_bytes_slower () =
  let t1 = (evaluate (mk_stats ~read:1_000_000 ())).runtime_us in
  let t2 = (evaluate (mk_stats ~read:4_000_000 ())).runtime_us in
  Alcotest.(check bool) "monotone in traffic" true (t2 > t1)

let test_timing_divergence_penalty () =
  let t1 = (evaluate (mk_stats ~read:1_000_000 ~evals:100 ~div:0 ())).runtime_us in
  let t2 = (evaluate (mk_stats ~read:1_000_000 ~evals:100 ~div:100 ())).runtime_us in
  Alcotest.(check bool) "divergence costs" true (t2 > t1)

let test_timing_latency_term () =
  (* few warps + long chain: latency dominates *)
  let stats = mk_stats ~read:8_192 ~blocks:4 ~threads:128 () in
  let b =
    T.evaluate
      { device = Util.device; stats; block = (32, 1, 1); regs_per_thread = 32; dependent_chain = 400 }
  in
  Alcotest.(check bool) "latency dominates" true
    (b.latency_time_us > b.memory_time_us && b.latency_time_us > b.compute_time_us)

let suite =
  [
    Alcotest.test_case "memory basics" `Quick test_memory_basics;
    Alcotest.test_case "seeded memory deterministic" `Quick test_memory_seeded_deterministic;
    Alcotest.test_case "memory diff" `Quick test_memory_diff;
    Alcotest.test_case "pointwise execution" `Quick test_pointwise_execution;
    Alcotest.test_case "stencil execution vs reference" `Quick test_stencil_execution;
    Alcotest.test_case "divergence counted" `Quick test_guard_divergence_counted;
    Alcotest.test_case "out-of-bounds detected" `Quick test_out_of_bounds;
    Alcotest.test_case "shared staging with barrier" `Quick test_syncthreads_staging;
    Alcotest.test_case "hazard detection" `Quick test_hazard_detection;
    Alcotest.test_case "barrier divergence rejected" `Quick test_barrier_divergence_rejected;
    Alcotest.test_case "return guard" `Quick test_return_guard;
    Alcotest.test_case "schedule order" `Quick test_schedule_runs_in_order;
    Alcotest.test_case "timing: memory bound" `Quick test_timing_memory_bound;
    Alcotest.test_case "timing: monotone in bytes" `Quick test_timing_more_bytes_slower;
    Alcotest.test_case "timing: divergence penalty" `Quick test_timing_divergence_penalty;
    Alcotest.test_case "timing: latency term" `Quick test_timing_latency_term;
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic usage observation (the pointer-aliasing pre-run, Section 7) *)
(* ------------------------------------------------------------------ *)

let test_usage_observed () =
  let prog = Util.producer_consumer_program ~dims:(16, 8, 4) ~block:(8, 4, 1) () in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:9;
  let _, (reads, writes) = I.launch_with_usage mem prog (Util.launch_of prog "produce") in
  Alcotest.(check (list string)) "reads observed" [ "A" ] reads;
  Alcotest.(check (list string)) "writes observed" [ "B" ] writes

let test_usage_guarded_out () =
  (* an array bound to a parameter but never executed (guard always
     false) must NOT appear in the dynamic usage: the ground truth the
     paper's pre-run provides over static analysis *)
  let src =
    {|
__global__ void maybe(const double *A, const double *Z, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    if (nx > 9999) {
      B[j * nx + i] = Z[j * nx + i];
    } else {
      B[j * nx + i] = c * A[j * nx + i];
    }
  }
}
|}
  in
  let k = Kft_cuda.Parse.kernel src in
  let dims = (16, 8, 4) in
  let prog =
    {
      p_name = "t";
      p_arrays = List.map (Util.arr3 dims) [ "A"; "Z"; "B" ];
      p_kernels = [ k ];
      p_schedule =
        [ Launch { l_kernel = "maybe"; l_domain = (16, 8, 1); l_block = (8, 4, 1);
                   l_args = Util.std_args dims [ "A"; "Z"; "B" ] 0.5 } ];
    }
  in
  let mem = Mem.create prog.p_arrays in
  let _, (reads, writes) = I.launch_with_usage mem prog (Util.launch_of prog "maybe") in
  Alcotest.(check (list string)) "only the taken branch reads" [ "A" ] reads;
  (* static analysis over-approximates: it reports Z as touched *)
  let static_reads, _ = Kft_ddg.Ddg.arrays_touched prog (Util.launch_of prog "maybe") in
  Alcotest.(check (list string)) "static over-approximation" [ "A"; "Z" ] (List.sort compare static_reads);
  Alcotest.(check (list string)) "writes observed" [ "B" ] writes

let usage_suite =
  [
    Alcotest.test_case "usage: reads/writes observed" `Quick test_usage_observed;
    Alcotest.test_case "usage: dynamic vs static" `Quick test_usage_guarded_out;
  ]

(* ------------------------------------------------------------------ *)
(* Expression semantics details                                        *)
(* ------------------------------------------------------------------ *)

let run_expr_kernel body_src =
  let src =
    Printf.sprintf
      {|
__global__ void e(const double *A, double *B, int nx, int ny, int nz, double c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int j = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < nx && j < ny) {
    %s
  }
}
|}
      body_src
  in
  let prog = one_kernel_prog src "e" [ "A"; "B" ] 2.0 in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:11;
  let a = Mem.get_array mem "A" in
  ignore (I.launch mem prog (Util.launch_of prog "e"));
  (a, Mem.get_array mem "B")

let test_math_builtins () =
  let a, b = run_expr_kernel "B[j * nx + i] = sqrt(fabs(A[j * nx + i])) + fmax(A[j * nx + i], 0.0);" in
  Array.iteri
    (fun i av ->
      if i < 16 * 8 then
        Util.check_float "sqrt/fabs/fmax" (sqrt (Float.abs av) +. Float.max av 0.0) b.(i))
    a

let test_ternary_and_intops () =
  let _, b = run_expr_kernel "B[j * nx + i] = (i % 3 == 0 && j / 2 < 2) ? 1.0 : 0.0;" in
  let nx = 16 in
  for j = 0 to 7 do
    for i = 0 to nx - 1 do
      let expect = if i mod 3 = 0 && j / 2 < 2 then 1.0 else 0.0 in
      Util.check_float "ternary/int ops" expect b.((j * nx) + i)
    done
  done

let test_division_by_zero_caught () =
  match run_expr_kernel "int z = 0; B[j * nx + i] = A[(j * nx + i) / z];" with
  | (_ : float array * float array) -> Alcotest.fail "expected error"
  | exception I.Sim_error _ -> ()

let test_copies_are_noops () =
  let prog = Util.producer_consumer_program ~dims:(16, 8, 4) ~block:(8, 4, 1) () in
  let prog =
    { prog with p_schedule = (Copy_to_device "A" :: prog.p_schedule) @ [ Copy_to_host "C" ] }
  in
  let mem = Mem.create prog.p_arrays in
  Mem.init_seeded mem ~seed:5;
  let results = I.run_schedule mem prog in
  Alcotest.(check int) "copies skipped, launches run" 2 (List.length results)

let semantics_suite =
  [
    Alcotest.test_case "math builtins" `Quick test_math_builtins;
    Alcotest.test_case "ternary and integer ops" `Quick test_ternary_and_intops;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_caught;
    Alcotest.test_case "memcpy markers are no-ops" `Quick test_copies_are_noops;
  ]

(* ------------------------------------------------------------------ *)
(* Block-parallel execution, affine precomputation, memory edge cases   *)
(* ------------------------------------------------------------------ *)

module E = Kft_engine.Engine

let run_at ~jobs ~affine prog =
  let mem = Mem.create prog.Kft_cuda.Ast.p_arrays in
  Mem.init_seeded mem ~seed:17;
  let runs =
    if jobs <= 1 then I.run_schedule ~affine mem prog
    else
      E.with_engine ~jobs ~memo:false (fun e -> I.run_schedule ~engine:e ~affine mem prog)
  in
  (mem, List.map snd runs)

(* the tentpole determinism property: final memory and every stats field
   are bit-identical whatever the jobs setting and whether the affine
   fast path is on — the optimized compilation is differentially tested
   against the plain reference compilation *)
let test_block_parallel_determinism () =
  let prog = Util.producer_consumer_program ~dims:(32, 16, 8) ~block:(16, 4, 1) () in
  let ref_mem, ref_stats = run_at ~jobs:1 ~affine:false prog in
  List.iter
    (fun (jobs, affine) ->
      let mem, stats = run_at ~jobs ~affine prog in
      let label = Printf.sprintf "jobs=%d affine=%b" jobs affine in
      Alcotest.(check bool) (label ^ ": memory bit-identical") true
        (Mem.equal_within ~tol:0.0 ref_mem mem);
      Alcotest.(check bool) (label ^ ": stats identical") true (ref_stats = stats))
    [ (1, true); (2, false); (2, true); (4, false); (4, true) ]

let test_unknown_array () =
  let mem = Mem.create [ Util.arr3 dims "A" ] in
  (match Mem.get mem "nope" with
  | (_ : Mem.buf) -> Alcotest.fail "expected Unknown_array"
  | exception Mem.Unknown_array name -> Alcotest.(check string) "get carries name" "nope" name);
  match Mem.dims mem "gone" with
  | (_ : int list) -> Alcotest.fail "expected Unknown_array"
  | exception Mem.Unknown_array name -> Alcotest.(check string) "dims carries name" "gone" name

let test_max_abs_diff_one_sided () =
  let mem1 = Mem.create [ Util.arr3 dims "A" ] in
  let mem2 = Mem.create [ Util.arr3 dims "A"; Util.arr3 dims "B" ] in
  (match Mem.max_abs_diff mem1 mem2 with
  | [ ("A", a); ("B", b) ] ->
      Util.check_float "shared array agrees" 0.0 a;
      Alcotest.(check bool) "one-sided array reports infinity" true (b = infinity)
  | _ -> Alcotest.fail "diff shape");
  Alcotest.(check bool) "one-sided array breaks equality" false
    (Mem.equal_within ~tol:1e12 mem1 mem2)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_affine_rewrite_structure () =
  let k =
    Kft_cuda.Parse.kernel
      (Util.stencil_src ~name:"st" ~src:"A" ~dst:"B" ~margin:1 ~threed:true)
  in
  let k' = Kft_sim.Affine.rewrite_kernel k in
  Alcotest.(check bool) "original has no __aff" false (contains (Kft_cuda.Pp.kernel k) "__aff");
  Alcotest.(check bool) "rewrite introduces __aff induction variables" true
    (contains (Kft_cuda.Pp.kernel k') "__aff")

(* ------------------------------------------------------------------ *)
(* Off-heap substrate: snapshots, pooling, lifetime edge cases          *)
(* ------------------------------------------------------------------ *)

let test_zero_length_arrays () =
  (* a zero-cell array is legal: zero-length view, diffs agree, seeding
     is a no-op, and it coexists with non-empty neighbours in the arena *)
  let z = { a_name = "Z"; a_elem_ty = Double; a_dims = [ 0; 4; 4 ] } in
  let mem1 = Mem.create [ z; Util.arr3 dims "A" ] in
  let mem2 = Mem.create [ z; Util.arr3 dims "A" ] in
  Mem.init_seeded mem1 ~seed:3;
  Mem.init_seeded mem2 ~seed:3;
  Alcotest.(check int) "zero cells" 0 (Bigarray.Array1.dim (Mem.get mem1 "Z"));
  Alcotest.(check bool) "dims kept" true (Mem.dims mem1 "Z" = [ 0; 4; 4 ]);
  Alcotest.(check bool) "equal incl. empty array" true (Mem.equal_within ~tol:0.0 mem1 mem2);
  (match List.assoc_opt "Z" (Mem.max_abs_diff mem1 mem2) with
  | Some d -> Util.check_float "empty array diff is 0" 0.0 d
  | None -> Alcotest.fail "Z missing from diff");
  let s = Mem.snapshot mem1 in
  Alcotest.(check bool) "snapshot round-trips empty arrays" true
    (Mem.equal_within ~tol:0.0 mem1 (Mem.restore s))

let test_snapshot_restore_bit_identity =
  (* property: snapshot -> arbitrary mutations -> restore yields a
     memory bit-identical to the capture, and independent of the source *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"snapshot/mutate/restore is bit-exact" ~count:100
       QCheck.(
         triple small_nat (list (pair small_nat (float_range (-1e6) 1e6))) small_nat)
       (fun (seed, writes, extra) ->
         let decls = [ Util.arr3 dims "A"; Util.arr3 dims "B" ] in
         let mem = Mem.create decls in
         Mem.init_seeded mem ~seed;
         let s = Mem.snapshot mem in
         let reference = Mem.get_array mem "A" in
         (* mutate the source after capture: the snapshot must not alias *)
         List.iter
           (fun (i, v) ->
             let b = Mem.get mem (if i mod 2 = 0 then "A" else "B") in
             b.{i mod cells} <- v)
           ((extra mod cells, 1e9) :: writes);
         let r1 = Mem.restore s and r2 = Mem.restore s in
         let a1 = Mem.get_array r1 "A" in
         (* restored contents equal the capture exactly *)
         let eq = a1 = reference in
         (* restores are independent memories: mutating one leaves the
            other (and the snapshot) untouched *)
         (Mem.get r1 "A").{0} <- -12345.0;
         let r3 = Mem.restore s in
         let indep = Mem.get_array r2 "A" = reference && Mem.get_array r3 "A" = reference in
         Mem.release mem;
         Mem.release r1;
         Mem.release r2;
         Mem.release r3;
         eq && indep))

let test_release_lifecycle () =
  let mem = Mem.create [ Util.arr3 dims "A" ] in
  Mem.release mem;
  (match Mem.get mem "A" with
  | (_ : Mem.buf) -> Alcotest.fail "expected use-after-release failure"
  | exception Invalid_argument _ -> ());
  (match Mem.snapshot mem with
  | (_ : Mem.snapshot) -> Alcotest.fail "expected snapshot-after-release failure"
  | exception Invalid_argument _ -> ());
  (match Mem.copy mem with
  | (_ : Mem.t) -> Alcotest.fail "expected copy-after-release failure"
  | exception Invalid_argument _ -> ());
  match Mem.release mem with
  | () -> Alcotest.fail "expected double-release failure"
  | exception Invalid_argument _ -> ()

let test_pool_recycles () =
  let decls = [ Util.arr3 dims "A"; Util.arr3 dims "B" ] in
  let s0 = Mem.Pool.stats () in
  let m1 = Mem.create decls in
  Mem.init_seeded m1 ~seed:9;
  let keep = Mem.get_array m1 "A" in
  Mem.release m1;
  (* same-size create must recycle the arena just released... *)
  let m2 = Mem.create decls in
  let s1 = Mem.Pool.stats () in
  Alcotest.(check bool) "recycle is a pool hit" true (s1.Mem.Pool.hits > s0.Mem.Pool.hits);
  (* ...and recycled arenas still honour the zero-init contract *)
  Alcotest.(check bool) "recycled arena zeroed" true
    (Array.for_all (fun v -> v = 0.0) (Mem.get_array m2 "A"));
  Mem.release m2;
  (* a copy shares contents but not storage *)
  let m3 = Mem.create decls in
  Mem.init_seeded m3 ~seed:9;
  let c = Mem.copy m3 in
  Alcotest.(check bool) "copy equal" true (Mem.equal_within ~tol:0.0 m3 c);
  (Mem.get c "A").{1} <- 7.5;
  Alcotest.(check bool) "copy does not alias" true (Mem.get_array m3 "A" = keep);
  Mem.release m3;
  Mem.release c;
  let s2 = Mem.Pool.stats () in
  Alcotest.(check bool) "requests monotonic" true (s2.Mem.Pool.requests >= s1.Mem.Pool.requests + 2)

let parallel_suite =
  [
    Alcotest.test_case "determinism across jobs x affine" `Quick test_block_parallel_determinism;
    Alcotest.test_case "unknown array raises" `Quick test_unknown_array;
    Alcotest.test_case "one-sided diff is infinite" `Quick test_max_abs_diff_one_sided;
    Alcotest.test_case "affine rewrite structure" `Quick test_affine_rewrite_structure;
    Alcotest.test_case "zero-length arrays" `Quick test_zero_length_arrays;
    test_snapshot_restore_bit_identity;
    Alcotest.test_case "release lifecycle" `Quick test_release_lifecycle;
    Alcotest.test_case "arena pool recycles" `Quick test_pool_recycles;
  ]
