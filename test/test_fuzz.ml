(* Differential-fuzzing battery over randomly generated well-formed
   stencil kernel chains (Util.fuzz_sample_arb).

   Property 1: the frontend and unparser agree — every fuzzed kernel
   survives a print/parse round-trip structurally unchanged.

   Property 2: the simulator's execution strategies agree — the
   compiled-affine fast path ([affine:true]), the block-parallel engine
   path (jobs=4) and the whole-grid vectorized backend ([Vector]/[Auto],
   sequential and over the pool) reproduce the plain interpreter's
   memory and launch statistics bit for bit on every fuzzed program. *)

open Kft_cuda.Ast
module Interp = Kft_sim.Interp
module Memory = Kft_sim.Memory
module Engine = Kft_engine.Engine

(* one pool shared by all differential cases (spawning domains per
   QCheck case would dominate the runtime); shut down at exit *)
let shared_engine =
  lazy
    (let e = Engine.create ~jobs:4 ~memo:false () in
     at_exit (fun () -> Engine.shutdown e);
     e)

let run ?engine ~affine ?backend (p : program) =
  let mem = Memory.create p.p_arrays in
  Memory.init_seeded mem ~seed:7;
  let runs = Interp.run_schedule ?engine ~affine ?backend mem p in
  (mem, List.map snd runs)

let prop_roundtrip =
  QCheck.Test.make ~name:"fuzzed kernels survive a print/parse round-trip" ~count:150
    Util.fuzz_sample_arb
    (fun s ->
      let ks = s.Util.fz_program.p_kernels in
      let ks' = Kft_cuda.Parse.kernels (Kft_cuda.Pp.kernels ks) in
      List.length ks = List.length ks' && List.for_all2 equal_kernel ks ks')

let prop_differential =
  QCheck.Test.make
    ~name:"interpret / compiled-affine / block-parallel / vectorized simulations are bit-identical"
    ~count:120 Util.fuzz_sample_arb
    (fun s ->
      let p = s.Util.fz_program in
      let ref_mem, ref_stats = run ~affine:false p in
      List.for_all
        (fun (engine, affine, backend) ->
          let mem, stats = run ?engine ~affine ?backend p in
          Memory.equal_within ~tol:0.0 ref_mem mem && stats = ref_stats)
        [
          (None, true, None);
          (Some (Lazy.force shared_engine), false, None);
          (Some (Lazy.force shared_engine), true, None);
          (None, true, Some Interp.Vector);
          (Some (Lazy.force shared_engine), true, Some Interp.Vector);
          (None, true, Some Interp.Auto);
          (Some (Lazy.force shared_engine), true, Some Interp.Auto);
        ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_differential;
  ]
